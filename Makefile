GO ?= go

.PHONY: ci vet build test race bench fuzz

# Full local CI pass: what .github/workflows/ci.yml runs.
ci: vet build test race bench

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The equivalence harness lowers the block-scan threshold, so -race here
# exercises the parallel executor on real multi-block scans.
race:
	$(GO) test -race ./...

# One-iteration smoke pass over every benchmark, including the parallel
# executor families; see bench_parallel_test.go for the scaling runs.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Short fuzz session for the DIMACS parser.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParseDIMACS -fuzztime 30s ./internal/cnf/
