GO ?= go

.PHONY: ci vet build test race bench bench-baseline bench-layout bench-serving bench-wire bench-delta bench-store bench-obs bench-radix bench-batch serve-smoke obs-smoke fuzz fuzz-delta fuzz-store fuzz-radix fuzz-wire lint doccheck fmt-check

# Full local CI pass: what .github/workflows/ci.yml runs.
ci: lint build test race bench serve-smoke obs-smoke

# Docs/lint gate: formatting, vet, and a doc comment on every exported
# symbol of the public API surface (faq.go, internal/server, internal/wire,
# internal/store, internal/spec, internal/obs, internal/sortx).
lint: fmt-check vet doccheck

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
	  echo "gofmt needed on:"; echo "$$out"; exit 1; fi

doccheck:
	$(GO) run ./cmd/doccheck . ./internal/server ./internal/wire ./internal/store ./internal/spec ./internal/obs ./internal/sortx

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The equivalence harness lowers the block-scan threshold, so -race here
# exercises the parallel executor on real multi-block scans.
race:
	$(GO) test -race ./...

# One-iteration smoke pass over every benchmark, including the parallel
# executor families; see bench_parallel_test.go for the scaling runs.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Benchmark baseline: the parallel-executor and prepared-query families at
# -benchtime 3x, recorded as test2json events in BENCH_PR2.json (CI runs
# this as a non-blocking step; the JSON is the comparable artifact).
bench-baseline:
	$(GO) test -run '^$$' -bench 'BenchmarkParallel|BenchmarkPrepared' -benchtime 3x -json . | tee BENCH_PR2.json

# Data-layout benchmarks: CSR trie build (identity + permuted) and galloping
# probe, cold vs warm-cache elimination, columnar factor construction /
# lookup / grouping, plus the parallel and prepared families — all with
# -benchmem so allocation counts are part of the record.  CI runs this as a
# non-blocking step; BENCH_PR4.json is the comparable artifact.
bench-layout:
	$(GO) test -run '^$$' -bench 'BenchmarkLayout' -benchtime 3x -benchmem -json ./internal/join ./internal/factor | tee BENCH_PR4.json
	$(GO) test -run '^$$' -bench 'BenchmarkParallel|BenchmarkPrepared' -benchtime 3x -benchmem -json . | tee -a BENCH_PR4.json

# Serving smoke: boot faqd on a free port, hit /healthz and one /v1/query
# (verified against a local Solve), shut down gracefully.
serve-smoke:
	./scripts/faqd_harness.sh smoke

# Observability smoke: boot faqd with -slow-query=0, run traced queries
# whose span trees must account for wall time, assert /metrics parses as
# Prometheus text with the stage histograms and shape table, and validate
# the slow-query log entries (blocking in CI, alongside serve-smoke).
obs-smoke:
	./scripts/faqd_harness.sh obssmoke

# Serving benchmark: faqload drives shapes × concurrency × duration against
# a live faqd and records the throughput/latency table plus the final
# /statsz snapshot in BENCH_PR3.json (CI runs this as a non-blocking step).
bench-serving:
	./scripts/faqd_harness.sh bench BENCH_PR3.json

# Wire-format benchmark: triangle-fresh with JSON vs binary factor bodies
# (plus the int/tropical multi-domain shapes) against one live faqd;
# BENCH_PR5.json is the comparable artifact (non-blocking in CI).
bench-wire:
	./scripts/faqd_harness.sh benchwire BENCH_PR5.json

# Incremental-maintenance benchmark: triangle-fresh (full binary refresh
# per request, the PR 5 baseline) vs triangle-delta (row changes to
# per-client /v1/delta sessions, verified row for row); BENCH_PR6.json is
# the comparable artifact (non-blocking in CI).
bench-delta:
	./scripts/faqd_harness.sh benchdelta BENCH_PR6.json

# Dataset-store benchmark: triangle-fresh (full factor payload per request,
# JSON and binary — the ship-data baselines) vs triangle-dataset (factors
# uploaded once, queried by name from the mmap-served store with zero
# factor bytes on the wire); BENCH_PR7.json is the comparable artifact
# (non-blocking in CI).
bench-store:
	./scripts/faqd_harness.sh benchstore BENCH_PR7.json

# Observability-overhead benchmark: the plain-triangle cache-hit path with
# tracing disabled (the ≤1% regression gate vs earlier reports) plus
# per-stage breakdowns from one traced probe per shape; BENCH_PR8.json is
# the comparable artifact (non-blocking in CI).
bench-obs:
	./scripts/faqd_harness.sh benchobs BENCH_PR8.json

# Batch-protocol benchmark: small triangle queries driven as single
# requests (JSON and binary factor bodies) and as /v1/batch requests of 32
# items (JSON and fully binary: batch envelope in, streamed result records
# out), every item verified against the oracle.  The acceptance ratio is
# batch-32 triangle vs the single-query binary baseline, same run;
# BENCH_PR10.json is the comparable artifact (non-blocking in CI).
bench-batch:
	./scripts/faqd_harness.sh benchbatch BENCH_PR10.json

# Radix-sort benchmark: the shared packed-key kernel vs the comparison
# argsort it replaced (arity 1-5, 48k rows), the permuted trie build at
# arity 3-5 against its forced-comparison baseline (the ≥4x acceptance
# ratio), and the sort-based projection path — all with -benchmem.  The
# harness then appends a triangle-fresh + triangle-dataset serving probe so
# the stored-order build and probe-loop numbers are part of the same
# record.  BENCH_PR9.json is the comparable artifact (non-blocking in CI).
bench-radix:
	$(GO) test -run '^$$' -bench 'BenchmarkRadixArgsort|BenchmarkComparisonArgsort' -benchtime 30x -benchmem -json ./internal/sortx | tee BENCH_PR9.json
	$(GO) test -run '^$$' -bench 'BenchmarkLayoutTrieBuildPermutedArity|BenchmarkLayoutTrieBuildIdentity|BenchmarkLayoutTrieProbe' -benchtime 100x -benchmem -json ./internal/join | tee -a BENCH_PR9.json
	$(GO) test -run '^$$' -bench 'BenchmarkLayoutProjection' -benchtime 20x -benchmem -json ./internal/factor | tee -a BENCH_PR9.json
	./scripts/faqd_harness.sh benchradix BENCH_PR9.json

# Radix differential fuzz smoke: the packed-key kernel against the stable
# comparison reference over arbitrary blocks (arity, sign bytes, cutoffs).
fuzz-radix:
	$(GO) test -run '^$$' -fuzz FuzzRadixArgsort -fuzztime 10s ./internal/sortx/

# Short fuzz session for the DIMACS parser.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParseDIMACS -fuzztime 30s ./internal/cnf/

# Delta fuzz smoke: the wire delta codec round trip, the raw-byte delta
# decoder and the ApplyDeltas differential oracle, a few seconds each (CI
# runs this as a blocking step — it is cheap and catches codec drift).
fuzz-delta:
	$(GO) test -run '^$$' -fuzz FuzzDeltaFrameRoundTrip -fuzztime 5s ./internal/wire/
	$(GO) test -run '^$$' -fuzz FuzzDeltaDecode -fuzztime 5s ./internal/wire/
	$(GO) test -run '^$$' -fuzz FuzzApplyDeltas -fuzztime 5s ./internal/core/

# Store fuzz smoke: the dataset-file opener against arbitrary bytes — every
# corruption must surface as a typed error, never a panic or a bad read.
fuzz-store:
	$(GO) test -run '^$$' -fuzz FuzzStoreOpen -fuzztime 5s ./internal/store/

# Batch-protocol fuzz smoke: the batch envelope decoder against arbitrary
# bytes (every rejection a typed sentinel, every accepted envelope
# re-encoding identically) and the result-record codec round trip (CI runs
# this as a blocking step, alongside fuzz-delta).
fuzz-wire:
	$(GO) test -run '^$$' -fuzz FuzzBatchDecode -fuzztime 5s ./internal/wire/
	$(GO) test -run '^$$' -fuzz FuzzResultFrameRoundTrip -fuzztime 5s ./internal/wire/
