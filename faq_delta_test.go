// Differential IVM harness: random delta streams over random queries across
// the Float, Int, Bool and Tropical domains, asserting at every step that
// PreparedQuery.ApplyDeltas ≡ a full recompute over the updated factors —
// bit-identically, on both a sequential and a pooled engine, with the
// parallel threshold lowered so block scans engage.  The oracle maintains
// its own factor state through factor.ApplyDelta (an independent path from
// the executor's), re-prepares it fresh each step, and compares outputs with
// Factor.Equal, so a divergence of a single bit or a single row fails.
//
// Exactness caveat baked into the data: Float uses small non-negative
// integer values, so ring Δ-propagation (+/-) and max-product distribution
// are exact; Int is exact mod 2⁶⁴; Bool and Tropical are exact picks.
package faq

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/faqdb/faq/internal/factor"
)

// queryDomSizes maps the query's per-variable domain sizes onto one factor.
func queryDomSizes[V any](q *Query[V], f *Factor[V]) []int {
	ds := make([]int, len(f.Vars))
	for i, v := range f.Vars {
		ds[i] = q.DomSizes[v]
	}
	return ds
}

// randomDeltaBatches draws 1–3 delta batches against the current factor
// state and returns them along with the state they produce (maintained via
// factor.ApplyDelta so deletes always name live rows, even when a later
// batch hits a factor an earlier batch already changed).
func randomDeltaBatches[V any](rng *rand.Rand, q *Query[V], cur []*Factor[V],
	randVal func(*rand.Rand) V) ([]Delta[V], []*Factor[V]) {

	d := q.D
	next := append([]*Factor[V](nil), cur...)
	nb := 1 + rng.Intn(3)
	var out []Delta[V]
	for i := 0; i < nb; i++ {
		fi := rng.Intn(len(next))
		f := next[fi]
		arity := len(f.Vars)
		var dl Delta[V]
		if f.Size() > 0 && rng.Intn(10) < 3 {
			// Delete 1–2 distinct live rows.
			n := 1 + rng.Intn(min(2, f.Size()))
			seen := map[int]bool{}
			var rows []int32
			for len(seen) < n {
				ri := rng.Intn(f.Size())
				if seen[ri] {
					continue
				}
				seen[ri] = true
				rows = append(rows, f.Row(ri)...)
			}
			dl = Delta[V]{Factor: fi, Op: DeltaDelete, Rows: rows}
		} else {
			// Upsert 1–3 distinct rows (capped by the factor's full
			// domain); a quarter of the values are Zero, exercising
			// insert-as-removal.
			maxRows := 1
			for _, v := range f.Vars {
				maxRows *= q.DomSizes[v]
			}
			n := min(1+rng.Intn(3), maxRows)
			seen := map[string]bool{}
			var rows []int32
			var vals []V
			for len(vals) < n {
				row := make([]int32, arity)
				for j, v := range f.Vars {
					row[j] = int32(rng.Intn(q.DomSizes[v]))
				}
				key := fmt.Sprint(row)
				if seen[key] {
					continue
				}
				seen[key] = true
				rows = append(rows, row...)
				v := d.Zero
				if rng.Intn(4) != 0 {
					v = randVal(rng)
				}
				vals = append(vals, v)
			}
			dl = Delta[V]{Factor: fi, Op: DeltaInsert, Rows: rows, Values: vals}
		}
		nf, err := f.ApplyDelta(d, factor.Delta[V]{Op: dl.Op, Rows: dl.Rows, Values: dl.Values},
			queryDomSizes(q, f))
		if err != nil {
			panic(fmt.Sprintf("delta generator produced an invalid batch: %v", err))
		}
		next[fi] = nf
		out = append(out, dl)
	}
	return out, next
}

// runDeltaDifferential is the harness body for one domain.
func runDeltaDifferential[V any](t *testing.T, seed int64, trials int, d *Domain[V],
	ringOps, allOps []*Op[V], allowProduct bool, randVal func(*rand.Rand) V) {

	t.Helper()
	forceParallelBlocks(t)
	engSeq := NewEngine[V](EngineOptions{Workers: 1})
	t.Cleanup(engSeq.Close)
	engPar := NewEngine[V](EngineOptions{Workers: 4})
	t.Cleanup(engPar.Close)
	rng := rand.New(rand.NewSource(seed))
	ctx := context.Background()
	strategies := map[string]int{}
	for trial := 0; trial < trials; trial++ {
		q := randomQuery(rng, d, ringOps, allOps, allowProduct, randVal)
		if rng.Intn(3) == 0 {
			// Bias toward uniform bound aggregates: mixed ops are the
			// common draw, but the ring strategy only engages when every
			// bound variable shares one invertible op, so force that shape
			// on a third of the trials (replacing any product var too).
			op := ringOps[rng.Intn(len(ringOps))]
			for i := q.NumFree; i < q.NVars; i++ {
				q.Aggs[i] = SemiringAgg(op)
			}
		}
		opts := DefaultOptions()
		opts.IndicatorProjections = rng.Intn(4) != 0
		opts.FilterOutput = rng.Intn(4) != 0
		seqOpts, parOpts := opts, opts
		seqOpts.Workers = 1
		parOpts.Workers = 2 + rng.Intn(6)

		prepSeq, err := engSeq.PrepareOpts(q, seqOpts)
		if err != nil {
			t.Fatalf("trial %d: seq Prepare: %v", trial, err)
		}
		prepPar, err := engPar.PrepareOpts(q, parOpts)
		if err != nil {
			t.Fatalf("trial %d: par Prepare: %v", trial, err)
		}
		strategies[prepSeq.DeltaStrategy()]++

		cur := append([]*Factor[V](nil), q.Factors...)
		steps := 1 + rng.Intn(5)
		for step := 0; step < steps; step++ {
			var deltas []Delta[V]
			deltas, cur = randomDeltaBatches(rng, q, cur, randVal)

			resSeq, err := prepSeq.ApplyDeltas(ctx, deltas)
			if err != nil {
				t.Fatalf("trial %d step %d: seq ApplyDeltas: %v", trial, step, err)
			}
			resPar, err := prepPar.ApplyDeltas(ctx, deltas)
			if err != nil {
				t.Fatalf("trial %d step %d: par ApplyDeltas: %v", trial, step, err)
			}

			// Full-recompute oracle over the independently maintained state.
			nq := *q
			nq.Factors = cur
			oraclePrep, err := engSeq.PrepareOpts(&nq, seqOpts)
			if err != nil {
				t.Fatalf("trial %d step %d: oracle Prepare: %v", trial, step, err)
			}
			want, err := oraclePrep.Run(ctx)
			if err != nil {
				t.Fatalf("trial %d step %d: oracle Run: %v", trial, step, err)
			}

			if !resSeq.Output.Equal(d, want.Output) {
				t.Fatalf("trial %d step %d (%s): sequential ApplyDeltas ≠ recompute\nquery: nvars=%d free=%d doms=%v opts=%+v\ndeltas: %+v\ngot  %v\nwant %v",
					trial, step, prepSeq.DeltaStrategy(), q.NVars, q.NumFree, q.DomSizes, opts,
					deltas, resSeq.Output, want.Output)
			}
			if !resPar.Output.Equal(d, resSeq.Output) {
				t.Fatalf("trial %d step %d (%s): Workers=1 and Workers=%d ApplyDeltas outputs differ\ngot  %v\nwant %v",
					trial, step, prepPar.DeltaStrategy(), parOpts.Workers, resPar.Output, resSeq.Output)
			}

			// The executor's internal factor state must track the oracle's.
			for i, f := range prepSeq.CurrentFactors() {
				if !f.Equal(d, cur[i]) {
					t.Fatalf("trial %d step %d: CurrentFactors[%d] diverged\ngot  %v\nwant %v",
						trial, step, i, f, cur[i])
				}
			}
		}

		// A rejected batch must not disturb the maintained state: replay a
		// guaranteed failure (factor index out of range) and re-check.
		if _, err := prepSeq.ApplyDeltas(ctx, []Delta[V]{{Factor: len(q.Factors)}}); !errors.Is(err, ErrDeltaFactor) {
			t.Fatalf("trial %d: out-of-range factor index: got %v, want ErrDeltaFactor", trial, err)
		}
		res, err := prepSeq.ApplyDeltas(ctx, nil)
		if err != nil {
			t.Fatalf("trial %d: post-rejection ApplyDeltas: %v", trial, err)
		}
		nq := *q
		nq.Factors = cur
		oraclePrep, err := engSeq.PrepareOpts(&nq, seqOpts)
		if err != nil {
			t.Fatalf("trial %d: post-rejection oracle Prepare: %v", trial, err)
		}
		want, err := oraclePrep.Run(ctx)
		if err != nil {
			t.Fatalf("trial %d: post-rejection oracle Run: %v", trial, err)
		}
		if !res.Output.Equal(d, want.Output) {
			t.Fatalf("trial %d: state disturbed by a rejected batch\ngot  %v\nwant %v",
				trial, res.Output, want.Output)
		}
	}
	t.Logf("maintenance strategies drawn: %v", strategies)
}

func TestDeltaDifferentialFloat(t *testing.T) {
	all := []*Op[float64]{OpFloatSum(), OpFloatMax()}
	ring := []*Op[float64]{OpFloatSum()}
	runDeltaDifferential(t, 2001, 40, Float(), ring, all, true,
		func(rng *rand.Rand) float64 { return float64(1 + rng.Intn(4)) })
}

func TestDeltaDifferentialInt(t *testing.T) {
	all := []*Op[int64]{OpIntSum(), OpIntMax()}
	ring := []*Op[int64]{OpIntSum()}
	runDeltaDifferential(t, 2002, 40, Int(), ring, all, true,
		func(rng *rand.Rand) int64 { return int64(1 + rng.Intn(3)) })
}

func TestDeltaDifferentialBool(t *testing.T) {
	ops := []*Op[bool]{OpOr()}
	runDeltaDifferential(t, 2003, 30, Bool(), ops, ops, true,
		func(*rand.Rand) bool { return true })
}

func TestDeltaDifferentialTropical(t *testing.T) {
	ops := []*Op[float64]{OpTropicalMin()}
	runDeltaDifferential(t, 2004, 40, Tropical(), ops, ops, true,
		func(rng *rand.Rand) float64 { return float64(rng.Intn(6)) })
}

// TestDeltaStrategySelection pins the strategy router: a pure sum query is
// ring-maintainable, an idempotent scalar query re-executes blocks, and a
// product variable at the lead forces recompute.
func TestDeltaStrategySelection(t *testing.T) {
	eng := NewEngine[float64](EngineOptions{Workers: 1})
	t.Cleanup(eng.Close)
	d := Float()
	edges := func(vars []int) *Factor[float64] {
		return FromFunc(d, vars, []int{4, 4, 4}, func(t []int) float64 {
			return float64((t[0]+t[1])%3) + 1
		})
	}
	base := func(agg Aggregate[float64]) *Query[float64] {
		return &Query[float64]{
			D: d, NVars: 3, DomSizes: []int{4, 4, 4}, NumFree: 0,
			Aggs:    []Aggregate[float64]{agg, agg, agg},
			Factors: []*Factor[float64]{edges([]int{0, 1}), edges([]int{1, 2}), edges([]int{0, 2})},
		}
	}

	sum := base(SemiringAgg(OpFloatSum()))
	prep, err := eng.Prepare(sum)
	if err != nil {
		t.Fatal(err)
	}
	if got := prep.DeltaStrategy(); got != "ring" {
		t.Fatalf("pure-sum query: strategy %q, want ring", got)
	}

	maxq := base(SemiringAgg(OpFloatMax()))
	prep, err = eng.Prepare(maxq)
	if err != nil {
		t.Fatal(err)
	}
	if got := prep.DeltaStrategy(); got != "blocks" {
		t.Fatalf("max-product scalar query: strategy %q, want blocks", got)
	}

	prod := base(SemiringAgg(OpFloatMax()))
	prod.Aggs = []Aggregate[float64]{ProductAgg[float64](), SemiringAgg(OpFloatMax()), SemiringAgg(OpFloatMax())}
	prep, err = eng.PrepareOrder(prod, []int{0, 1, 2}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := prep.DeltaStrategy(); got != "recompute" {
		t.Fatalf("product-at-lead query: strategy %q, want recompute", got)
	}
}
