// Benchmarks for the block-parallel executor.  Every family runs the same
// workload on the sequential executor (Workers=1) and the worker pool sized
// to GOMAXPROCS (Workers=0), so
//
//	go test -bench 'Triangle|FourCycle|PGM|SharpSAT' -cpu 1,4
//
// shows the scaling directly: at -cpu 1 the pool collapses to the sequential
// path; at -cpu N the pool series should beat seq on the join-heavy
// workloads.  Both series are asserted to produce identical results.
package faq

import (
	"math/rand"
	"testing"

	"github.com/faqdb/faq/internal/cnf"
)

// randomPairs builds a sparse 0/1 binary factor with n distinct tuples.
func randomPairs(rng *rand.Rand, d *Domain[float64], vars []int, dom, n int) *Factor[float64] {
	seen := map[[2]int]bool{}
	var tuples [][]int
	var values []float64
	for len(tuples) < n {
		e := [2]int{rng.Intn(dom), rng.Intn(dom)}
		if seen[e] || e[0] == e[1] {
			continue
		}
		seen[e] = true
		tuples = append(tuples, []int{e[0], e[1]})
		values = append(values, 1)
	}
	f, err := NewFactor(d, vars, tuples, values, nil)
	if err != nil {
		panic(err)
	}
	return f
}

// benchExecutors runs the query under Workers=1 and Workers=0 (GOMAXPROCS)
// and asserts that the two executors agree bit-for-bit.
func benchExecutors[V any](b *testing.B, q *Query[V], order []int) {
	seq := DefaultOptions()
	seq.Workers = 1
	pool := DefaultOptions()
	pool.Workers = 0 // GOMAXPROCS: tracks -cpu
	rs, err := InsideOut(q, order, seq)
	if err != nil {
		b.Fatal(err)
	}
	rp, err := InsideOut(q, order, pool)
	if err != nil {
		b.Fatal(err)
	}
	if !rs.Output.Equal(q.D, rp.Output) {
		b.Fatalf("sequential and pool executors disagree: %v vs %v", rs.Output, rp.Output)
	}
	for _, bc := range []struct {
		name string
		opts Options
	}{{"seq", seq}, {"pool", pool}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := InsideOut(q, order, bc.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelTriangle counts triangles (Example A.8) on a random graph:
// three pairwise factors, AGM bound N^1.5.
func BenchmarkParallelTriangle(b *testing.B) {
	rng := rand.New(rand.NewSource(20))
	const nodes, edges = 3000, 48000
	d := Float()
	q := &Query[float64]{
		D: d, NVars: 3, DomSizes: []int{nodes, nodes, nodes}, NumFree: 0,
		Aggs: []Aggregate[float64]{
			SemiringAgg(OpFloatSum()), SemiringAgg(OpFloatSum()), SemiringAgg(OpFloatSum()),
		},
		Factors: []*Factor[float64]{
			randomPairs(rng, d, []int{0, 1}, nodes, edges),
			randomPairs(rng, d, []int{1, 2}, nodes, edges),
			randomPairs(rng, d, []int{0, 2}, nodes, edges),
		},
	}
	benchExecutors(b, q, []int{0, 1, 2})
}

// BenchmarkParallelFourCycle counts 4-cycles: ψ(0,1)ψ(1,2)ψ(2,3)ψ(0,3).
func BenchmarkParallelFourCycle(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	const nodes, edges = 2000, 32000
	d := Float()
	q := &Query[float64]{
		D: d, NVars: 4, DomSizes: []int{nodes, nodes, nodes, nodes}, NumFree: 0,
		Aggs: []Aggregate[float64]{
			SemiringAgg(OpFloatSum()), SemiringAgg(OpFloatSum()),
			SemiringAgg(OpFloatSum()), SemiringAgg(OpFloatSum()),
		},
		Factors: []*Factor[float64]{
			randomPairs(rng, d, []int{0, 1}, nodes, edges),
			randomPairs(rng, d, []int{1, 2}, nodes, edges),
			randomPairs(rng, d, []int{2, 3}, nodes, edges),
			randomPairs(rng, d, []int{0, 3}, nodes, edges),
		},
	}
	benchExecutors(b, q, []int{0, 1, 2, 3})
}

// BenchmarkParallelPGMMarginal computes the unnormalized marginal of x0 on a
// dense 6-cycle MRF with a large domain: sum-product elimination whose
// intermediates are dom² tables.
func BenchmarkParallelPGMMarginal(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	const vars, dom = 6, 96
	d := Float()
	var factors []*Factor[float64]
	for i := 0; i < vars; i++ {
		u, v := i, (i+1)%vars
		if u > v {
			u, v = v, u
		}
		factors = append(factors, FromFunc(d, []int{u, v},
			func() []int {
				ds := make([]int, vars)
				for j := range ds {
					ds[j] = dom
				}
				return ds
			}(),
			func(t []int) float64 { return float64(1 + (t[0]*31+t[1]*17+rng.Intn(7))%13) }))
	}
	aggs := make([]Aggregate[float64], vars)
	aggs[0] = Free[float64]()
	for i := 1; i < vars; i++ {
		aggs[i] = SemiringAgg(OpFloatSum())
	}
	ds := make([]int, vars)
	for i := range ds {
		ds[i] = dom
	}
	q := &Query[float64]{D: d, NVars: vars, DomSizes: ds, NumFree: 1, Aggs: aggs, Factors: factors}
	_, plan, err := Solve(q, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	benchExecutors(b, q, plan.Order)
}

// BenchmarkParallelSharpSAT counts models of a random interval CNF as an FAQ
// query over the counting semiring (Z, +, ·): each clause is a listing
// factor with 2^k − 1 satisfying rows (cnf.FAQQuery, Table 1 row #SAT).
func BenchmarkParallelSharpSAT(b *testing.B) {
	f := cnf.RandomInterval(rand.New(rand.NewSource(23)), 20, 36, 12)
	q := f.FAQQuery()
	_, plan, err := Solve(q, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	benchExecutors(b, q, plan.Order)
}
