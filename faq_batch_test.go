// Batch-equivalence harness for the public API: PreparedQuery.RunBatch
// must be indistinguishable from issuing the same items as sequential
// Run/RunWithFactors calls — bit-identical outputs per item, across the
// four value domains, on both a sequential and a pooled engine, at
// several batch parallel widths.  Like the main equivalence harness it is
// goroutine-leak-checked and runs under -race in CI.
package faq

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

// runBatchEquivalence draws random queries, regenerates each query's
// factor values per item (same shape, fresh data — exactly the prepared
// serving pattern), and checks RunBatch against the sequential oracle.
func runBatchEquivalence[V any](t *testing.T, seed int64, trials int, d *Domain[V],
	ringOps, allOps []*Op[V], allowProduct bool, randVal func(*rand.Rand) V) {

	t.Helper()
	checkGoroutineLeak(t)
	forceParallelBlocks(t)
	engSeq := NewEngine[V](EngineOptions{Workers: 1})
	t.Cleanup(engSeq.Close)
	engPar := NewEngine[V](EngineOptions{Workers: 4})
	t.Cleanup(engPar.Close)
	rng := rand.New(rand.NewSource(seed))

	for trial := 0; trial < trials; trial++ {
		q := randomQuery(rng, d, ringOps, allOps, allowProduct, randVal)
		const nitems = 6
		sets := make([][]*Factor[V], nitems)
		for i := range sets {
			if i%3 == 2 {
				continue // nil item: run the prepared factors themselves
			}
			fresh := make([]*Factor[V], len(q.Factors))
			for j, f := range q.Factors {
				fresh[j] = FromFunc(d, f.Vars, q.DomSizes, func([]int) V {
					if rng.Float64() < 0.35 {
						return d.Zero
					}
					return randVal(rng)
				})
			}
			sets[i] = fresh
		}

		for name, eng := range map[string]*Engine[V]{"seq": engSeq, "par": engPar} {
			prep, err := eng.Prepare(q)
			if err != nil {
				t.Fatalf("trial %d: %s engine Prepare: %v", trial, name, err)
			}
			// The oracle: each item as its own sequential call.
			want := make([]*Result[V], nitems)
			for i, set := range sets {
				if set == nil {
					want[i], err = prep.Run(context.Background())
				} else {
					want[i], err = prep.RunWithFactors(context.Background(), set)
				}
				if err != nil {
					t.Fatalf("trial %d: %s engine item %d: %v", trial, name, i, err)
				}
			}
			for _, parallel := range []int{1, 3, 8} {
				got := make([]*Result[V], nitems)
				calls := make([]int, nitems)
				err := prep.RunBatch(context.Background(), sets, parallel,
					func(i int, res *Result[V], _ time.Duration, err error) {
						if err != nil {
							t.Errorf("trial %d: %s engine batch item %d: %v", trial, name, i, err)
							return
						}
						got[i] = res
						calls[i]++
					})
				if err != nil {
					t.Fatalf("trial %d: %s engine RunBatch(parallel=%d): %v", trial, name, parallel, err)
				}
				for i := range got {
					if calls[i] != 1 {
						t.Fatalf("trial %d: item %d emitted %d times", trial, i, calls[i])
					}
					if got[i] == nil || !got[i].Output.Equal(d, want[i].Output) {
						t.Fatalf("trial %d: %s engine parallel=%d item %d: RunBatch diverged from sequential\ngot  %v\nwant %v",
							trial, name, parallel, i, got[i].Output, want[i].Output)
					}
				}
			}
		}
	}
}

func TestBatchEquivalenceFloat(t *testing.T) {
	runBatchEquivalence(t, 4101, 20, Float(),
		[]*Op[float64]{OpFloatSum()}, []*Op[float64]{OpFloatSum(), OpFloatMax()}, true,
		func(rng *rand.Rand) float64 { return float64(1 + rng.Intn(4)) })
}

func TestBatchEquivalenceInt(t *testing.T) {
	runBatchEquivalence(t, 4102, 20, Int(),
		[]*Op[int64]{OpIntSum()}, []*Op[int64]{OpIntSum(), OpIntMax()}, true,
		func(rng *rand.Rand) int64 { return int64(1 + rng.Intn(3)) })
}

func TestBatchEquivalenceBool(t *testing.T) {
	ops := []*Op[bool]{OpOr()}
	runBatchEquivalence(t, 4103, 20, Bool(), ops, ops, true,
		func(*rand.Rand) bool { return true })
}

func TestBatchEquivalenceTropical(t *testing.T) {
	ops := []*Op[float64]{OpTropicalMin()}
	runBatchEquivalence(t, 4104, 20, Tropical(), ops, ops, true,
		func(rng *rand.Rand) float64 { return float64(rng.Intn(6)) })
}
