// Package faq is a Go implementation of the Functional Aggregate Query
// (FAQ) framework of Abo Khamis, Ngo and Rudra, "FAQ: Questions Asked
// Frequently" (PODS 2016).
//
// An FAQ query (Eq. (1) of the paper) is
//
//	φ(x_1..x_f) = ⊕^(f+1)_{x_{f+1}} ... ⊕^(n)_{x_n}  ⊗_{S∈E} ψ_S(x_S)
//
// over one domain D with product ⊗: the first f variables are free, each
// bound variable carries an aggregate that either forms a commutative
// semiring with ⊗ or is ⊗ itself.  Joins, CSPs, marginal/MAP inference in
// graphical models, quantified and counting conjunctive queries, matrix
// chain multiplication, the DFT, SAT and #SAT are all instances.
//
// The engine solves FAQ with InsideOut — variable elimination whose
// intermediate sub-problems run on a worst-case-optimal backtracking join
// (OutsideIn) with indicator projections — in time Õ(N^{faqw(σ)} + ‖φ‖).
// Orderings σ are planned through the paper's machinery: expression trees,
// precedence posets, the exact dynamic program over LinEx(P) and the
// Section 7 approximation algorithm.
//
// The serving API follows the paper's phase split — and the workload its
// title names: questions asked *frequently*.  An Engine is a long-lived
// handle holding a plan cache (an LRU keyed by the query's untyped Shape,
// so shape-identical queries across calls share one planning pass) and a
// persistent executor worker pool reused across elimination steps, runs and
// queries.  Prepare runs the Section 6–7 planners once; Run and
// RunWithFactors execute InsideOut against the cached plan with fresh data:
//
//	eng := faq.NewEngine[float64](faq.EngineOptions{}) // Workers: 0 = GOMAXPROCS
//	defer eng.Close()
//
//	d := faq.Float()
//	q := &faq.Query[float64]{
//	    D: d, NVars: 3, DomSizes: []int{64, 64, 64}, NumFree: 0,
//	    Aggs: []faq.Aggregate[float64]{
//	        faq.SemiringAgg(faq.OpFloatSum()),
//	        faq.SemiringAgg(faq.OpFloatSum()),
//	        faq.SemiringAgg(faq.OpFloatSum()),
//	    },
//	    Factors: []*faq.Factor[float64]{r, s, t}, // ψ_{01}, ψ_{12}, ψ_{02}
//	}
//	prep, err := eng.Prepare(q)                // Sections 6–7, once
//	res, err := prep.Run(ctx)                  // InsideOut: res.Scalar() is the
//	                                           // triangle count, Width ≈ 1.5
//	res, err = prep.RunWithFactors(ctx, fresh) // same shape, new data: no replan
//	res, err = prep.ApplyDeltas(ctx, deltas)   // evolving data: incremental
//	                                           // maintenance, not a recompute
//
// For evolving data, PreparedQuery.ApplyDeltas maintains the result under
// batches of row inserts and deletes: ring semirings (sum over float/int)
// propagate an algebraic Δ, idempotent ones (bool, tropical, max) re-execute
// only the key-range blocks a batch touches, and factor versions roll
// through the engine-wide versioned trie cache so unchanged tries are shared
// by every run and prepared query.
//
// Runs observe ctx between elimination steps and at the block boundaries of
// every scan: a cancelled run returns ctx.Err() cleanly with no goroutine
// leaked.  Engine.Stats reports plans cached, cache hits and runs served.
//
// Solve and InsideOut remain as one-shot compatibility wrappers over the
// default engine: same semantics as before (Solve replans on every call),
// now executing on the shared persistent pool.  New code — and any caller
// issuing the same query shape repeatedly — should prefer Prepare/Run; the
// wrappers may be deprecated once the cmd/ and examples/ surface has fully
// moved to the Engine API.
//
// Each elimination step runs on a pluggable executor.  The default is the
// engine's worker pool (Options.Workers: 0 = the pool width, 1 = sequential) that
// partitions every elimination scan and output join into contiguous
// key-range blocks of the outermost join variable, builds factor tries and
// indicator projections concurrently, sorts large intermediates with a
// parallel merge sort (sized to GOMAXPROCS, at most one in flight
// process-wide so pools never oversubscribe), and merges block outputs in
// block order — so every
// worker count returns bit-identical results (scalar-output scans stay
// sequential; ⊕-folds are never re-associated).  Parallel scaling is
// benchmarked by
//
//	go test -bench 'ParallelTriangle|ParallelFourCycle|ParallelPGM|ParallelSharpSAT' -cpu 1,4
//
// where each family compares Workers=1 against the pool, and plan
// amortization by the BenchmarkPrepared* families.  The randomized
// cross-semiring harness in faq_equivalence_test.go asserts Solve ≡ InsideOut
// ≡ Engine.Prepare+Run ≡ BruteForce with identical outputs across worker
// counts.
//
// Domain-specific front ends live in the internal packages and are
// exercised by the examples/ programs and cmd/ tools: logic queries
// (BCQ/CQ/#CQ/QCQ/#QCQ), natural joins, graphical models, matrix chain
// multiplication, the DFT, and β-acyclic SAT/#SAT.
package faq

import (
	"context"

	"github.com/faqdb/faq/internal/core"
	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/hypergraph"
	"github.com/faqdb/faq/internal/semiring"
)

// Core model types.
type (
	// Query is an FAQ instance in the normal form of Eq. (1).
	Query[V any] = core.Query[V]
	// Aggregate is a per-variable aggregate ⊕(i).
	Aggregate[V any] = core.Aggregate[V]
	// Factor is a function in listing representation (Definition 4.1).
	Factor[V any] = factor.Factor[V]
	// Domain is the shared multiplicative structure (⊗, 0, 1) of a query.
	Domain[V any] = semiring.Domain[V]
	// Op is a named semiring aggregate operator.
	Op[V any] = semiring.Op[V]
	// Result is an InsideOut outcome.
	Result[V any] = core.Result[V]
	// Factorized is the Section 8.4 factorized output representation.
	Factorized[V any] = core.Factorized[V]
	// Options tunes an InsideOut run.
	Options = core.Options
	// Plan is a chosen variable ordering with its FAQ-width.
	Plan = core.Plan
	// Shape is the untyped skeleton used by the ordering theory.
	Shape = core.Shape
	// ExprNode is an expression-tree node (Definition 6.18).
	ExprNode = core.ExprNode
	// Poset is the precedence poset over variables (Definition 6.22).
	Poset = core.Poset
	// Hypergraph is a query hypergraph.
	Hypergraph = hypergraph.Hypergraph
	// WidthCalc computes ρ, ρ*, AGM, tw and fhtw against a hypergraph.
	WidthCalc = hypergraph.WidthCalc
	// Stats reports work counters from an InsideOut run.
	Stats = core.Stats
	// Engine is a long-lived serving handle: a plan cache plus a
	// persistent executor pool (see NewEngine).
	Engine[V any] = core.Engine[V]
	// PreparedQuery is a planned query bound to an Engine: Prepare once,
	// Run / RunWithFactors many times.
	PreparedQuery[V any] = core.PreparedQuery[V]
	// EngineOptions configures an Engine (pool size, plan-cache size,
	// planner strategy).
	EngineOptions = core.EngineOptions
	// EngineStats are an Engine's cumulative serving counters.
	EngineStats = core.EngineStats
	// Delta is one batch of row changes against a prepared query's factor,
	// applied through PreparedQuery.ApplyDeltas.
	Delta[V any] = core.Delta[V]
	// DeltaOp selects what a delta batch does to its rows.
	DeltaOp = factor.DeltaOp
)

// Delta batch operations.
const (
	// DeltaInsert upserts rows: present rows take the batch value, absent
	// rows are added, and a zero batch value removes the row.
	DeltaInsert = factor.DeltaInsert
	// DeltaDelete removes rows; every row must be present.
	DeltaDelete = factor.DeltaDelete
)

// Sentinel errors of the delta path, matched with errors.Is.  A rejected
// batch leaves the prepared query's state unchanged.
var (
	// ErrDeltaArity reports a batch whose row block or value count does not
	// match the target factor's arity.
	ErrDeltaArity = factor.ErrDeltaArity
	// ErrDeltaDup reports a batch listing the same row twice.
	ErrDeltaDup = factor.ErrDeltaDup
	// ErrDeltaAbsent reports a delete of a row the factor does not hold.
	ErrDeltaAbsent = factor.ErrDeltaAbsent
	// ErrDeltaRange reports a key outside its variable's domain.
	ErrDeltaRange = factor.ErrDeltaRange
	// ErrDeltaFactor reports a delta addressed at a factor index the
	// prepared query does not have.
	ErrDeltaFactor = core.ErrDeltaFactor
)

// NewEngine creates a long-lived engine with its own plan cache and
// persistent worker pool.  Call Close when done.
func NewEngine[V any](opts EngineOptions) *Engine[V] { return core.NewEngine[V](opts) }

// DefaultEngine returns a handle on the shared process-wide engine backing
// the Solve and InsideOut compatibility wrappers.
func DefaultEngine[V any]() *Engine[V] { return core.DefaultEngine[V]() }

// Retype returns a handle of value type V2 onto the same engine runtime:
// both handles share the plan cache, the persistent pool and the stats.
// Plans depend only on the untyped query shape, so a multi-domain server
// can serve every value type from one cache.
func Retype[V2, V1 any](e *Engine[V1]) *Engine[V2] { return core.Retype[V2](e) }

// Free marks an output variable.
func Free[V any]() Aggregate[V] { return core.Free[V]() }

// SemiringAgg wraps a semiring aggregate operator.
func SemiringAgg[V any](op *Op[V]) Aggregate[V] { return core.SemiringAgg(op) }

// ProductAgg marks a variable aggregated by ⊗ itself.
func ProductAgg[V any]() Aggregate[V] { return core.ProductAgg[V]() }

// Standard domains and operators (see internal/semiring).
var (
	Bool          = semiring.Bool
	Float         = semiring.Float
	Int           = semiring.Int
	Complex       = semiring.Complex
	Rat           = semiring.Rat
	Set           = semiring.Set
	Tropical      = semiring.Tropical
	OpOr          = semiring.OpOr
	OpFloatSum    = semiring.OpFloatSum
	OpFloatMax    = semiring.OpFloatMax
	OpFloatMin    = semiring.OpFloatMin
	OpIntSum      = semiring.OpIntSum
	OpIntMax      = semiring.OpIntMax
	OpComplexSum  = semiring.OpComplexSum
	OpRatSum      = semiring.OpRatSum
	OpUnion       = semiring.OpUnion
	OpTropicalMin = semiring.OpTropicalMin
)

// NewFactor builds a listing-representation factor over sorted variable ids.
// Duplicate tuples are combined with combine (nil means duplicates are an
// error); zero values are dropped.
func NewFactor[V any](d *Domain[V], vars []int, tuples [][]int, values []V,
	combine func(a, b V) V) (*Factor[V], error) {
	return factor.New(d, vars, tuples, values, combine)
}

// FromFunc materializes a factor from a dense function, keeping non-zeros.
func FromFunc[V any](d *Domain[V], vars []int, domSizes []int, f func(tuple []int) V) *Factor[V] {
	return factor.FromFunc(d, vars, domSizes, f)
}

// DefaultOptions returns the Algorithm-1 configuration: indicator
// projections on, Yannakakis-style output filters on, listed output.
func DefaultOptions() Options { return core.DefaultOptions() }

// InsideOut evaluates the query along a φ-equivalent variable ordering
// (Algorithm 1 of the paper).  One-shot compatibility wrapper over the
// default engine.
//
// Deprecated: use Engine.PrepareOrder and PreparedQuery.Run — a prepared
// query validates once, reuses the engine's persistent pool, and caches its
// factor tries across runs; InsideOut re-does all of that every call.
func InsideOut[V any](q *Query[V], order []int, opts Options) (*Result[V], error) {
	return core.InsideOut(q, order, opts)
}

// InsideOutCtx is InsideOut under a context: cancellation is observed
// between elimination steps and at block boundaries, with no goroutine
// leaked.
//
// Deprecated: use Engine.PrepareOrder and PreparedQuery.Run with the
// context, for the same reasons as InsideOut.
func InsideOutCtx[V any](ctx context.Context, q *Query[V], order []int, opts Options) (*Result[V], error) {
	return core.InsideOutCtx(ctx, q, order, opts)
}

// Solve plans an ordering (exact DP over LinEx(P) for small queries, the
// Section 7 approximation otherwise) and runs InsideOut.  One-shot
// compatibility wrapper over the default engine.
//
// Deprecated: use Engine.Prepare and PreparedQuery.Run — Solve re-runs the
// Section 6–7 planners on every call and rebuilds every trie; the prepared
// path plans once per shape (LRU-cached across value types) and serves
// repeat runs from cached tries.
func Solve[V any](q *Query[V], opts Options) (*Result[V], *Plan, error) {
	return core.Solve(q, opts)
}

// SolveCtx is Solve under a context, observed by the exact planner and at
// the block boundaries of every scan.
//
// Deprecated: use Engine.PrepareCtx and PreparedQuery.Run with the context,
// for the same reasons as Solve.
func SolveCtx[V any](ctx context.Context, q *Query[V], opts Options) (*Result[V], *Plan, error) {
	return core.SolveCtx(ctx, q, opts)
}

// BruteForce evaluates the query by enumeration — the testing oracle and
// the "no non-trivial algorithm" baseline.
func BruteForce[V any](q *Query[V]) (*Factor[V], error) { return core.BruteForce(q) }

// BruteForcePar is BruteForce with the outermost variable's domain fanned
// out over a worker pool (0 = GOMAXPROCS); partials fold back in domain
// order, so every worker count returns the bit-identical factor.
func BruteForcePar[V any](q *Query[V], workers int) (*Factor[V], error) {
	return core.BruteForcePar(q, workers)
}

// BruteForceScalar is BruteForce for queries without free variables.
func BruteForceScalar[V any](q *Query[V]) (V, error) { return core.BruteForceScalar(q) }

// Planning and width analysis.
var (
	// BuildExprTree constructs the (flat-rewriting-sound) expression tree.
	BuildExprTree = core.BuildExprTree
	// BuildExprTreeScoped is Definition 6.18 verbatim (Figures 2–6).
	BuildExprTreeScoped = core.BuildExprTreeScoped
	// NewPoset derives the precedence poset of an expression tree.
	NewPoset = core.NewPoset
	// InEVO tests membership in EVO(φ) via CW-equivalence.
	InEVO = core.InEVO
	// EnumerateEVO lists EVO(φ) exhaustively (tests/tools).
	EnumerateEVO = core.EnumerateEVO
	// CWEquivalent tests component-wise equivalence of two orderings.
	CWEquivalent = core.CWEquivalent
	// FAQWidth computes faqw(σ) (Definition 5.10).
	FAQWidth = core.FAQWidth
	// PlanExpression, PlanExact, PlanGreedy, PlanApprox and ChoosePlan are
	// the ordering planners of Sections 6–7.
	PlanExpression = core.PlanExpression
	PlanExact      = core.PlanExact
	PlanGreedy     = core.PlanGreedy
	PlanApprox     = core.PlanApprox
	ChoosePlan     = core.ChoosePlan
	// ExactDecomp and GreedyDecomp are fhtw black boxes for PlanApprox.
	ExactDecomp  = core.ExactDecomp
	GreedyDecomp = core.GreedyDecomp
	// NewWidthCalc builds a width calculator over a hypergraph.
	NewWidthCalc = hypergraph.NewWidthCalc
)

// NewHypergraph builds a hypergraph on n vertices from vertex-list edges.
func NewHypergraph(n int, edges ...[]int) *Hypergraph {
	return hypergraph.NewWithEdges(n, edges...)
}
