// Quantified and counting conjunctive queries (Table 1 rows #QCQ, QCQ,
// #CQ), including the Chen–Dalmau family of Section 7.2.1 where the
// FAQ-width stays ≤ 2 while prefix-based widths grow with the query.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	faq "github.com/faqdb/faq"
	"github.com/faqdb/faq/internal/logicq"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	const dom = 16

	// Random binary relations.
	rel := func(name string, size int) *logicq.Relation {
		r := &logicq.Relation{Name: name, Arity: 2}
		seen := map[[2]int]bool{}
		for len(seen) < size {
			e := [2]int{rng.Intn(dom), rng.Intn(dom)}
			if !seen[e] {
				seen[e] = true
				r.Add(e[0], e[1])
			}
		}
		return r
	}
	r1, r2, r3 := rel("R1", dom*dom*3/4), rel("R2", dom*dom*3/4), rel("R3", dom*dom*3/4)

	// #QCQ: count x0 with ∀x1 ∃x2 ∀x3 (R1(x0,x1) ∧ R2(x0,x2) ∧ R3(x2,x3)).
	q := &logicq.Query{
		NumVars:  4,
		NumFree:  1,
		DomSizes: []int{dom, dom, dom, dom},
		Quants:   []logicq.Quantifier{logicq.ForAll, logicq.Exists, logicq.ForAll},
		Atoms: []logicq.Atom{
			{Rel: r1, Vars: []int{0, 1}},
			{Rel: r2, Vars: []int{0, 2}},
			{Rel: r3, Vars: []int{2, 3}},
		},
	}
	count, err := logicq.CountQCQ(q)
	if err != nil {
		log.Fatal(err)
	}
	naive, err := logicq.NaiveCount(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("#QCQ  ∀∃∀ star query: InsideOut = %d, naive = %d\n", count, naive)

	// #CQ: same atoms, all-∃ prefix.
	q.Quants = []logicq.Quantifier{logicq.Exists, logicq.Exists, logicq.Exists}
	count, err = logicq.CountCQ(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("#CQ   ∃∃∃ star query: %d satisfying x0 values\n", count)

	// Chen–Dalmau: ∀X_0..∀X_{n-1} ∃X_n (S(X_0..X_{n-1}) ∧ ⋀ R(X_i, X_n)).
	n := 4
	s := &logicq.Relation{Name: "S", Arity: n}
	tuple := make([]int, n)
	var fill func(i int)
	fill = func(i int) {
		if i == n {
			s.Add(tuple...)
			return
		}
		for v := 0; v < 3; v++ {
			tuple[i] = v
			fill(i + 1)
		}
	}
	fill(0)
	succ := &logicq.Relation{Name: "R", Arity: 2}
	for a := 0; a < 3; a++ {
		succ.Add(a, (a+1)%3)
	}
	cd := logicq.ChenDalmau(n, s, succ, 3)
	out, err := logicq.SolveQCQ(cd)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("QCQ   Chen–Dalmau n=%d: holds = %v\n", n, out.Size() > 0)

	// The width story of Section 7.2.1: faqw stays ~2, prefix width is n+1.
	cq, err := logicq.CompileQCQ(cd)
	if err != nil {
		log.Fatal(err)
	}
	shape := cq.Shape()
	wc := faq.NewWidthCalc(shape.H)
	plan, err := faq.PlanExact(shape, wc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("      faqw(φ) = %.3f (prefix width would be %d)\n", plan.Width, n+1)

	// Engine-served #QCQ: the same ∀∃∀ star shape over growing domains
	// compiles to one query shape, so the engine plans it once and serves
	// every subsequent domain size from the plan cache.
	eng := faq.NewEngine[int64](faq.EngineOptions{})
	defer eng.Close()
	ctx := context.Background()
	fmt.Println("engine-served #QCQ sweep (∀∃∀ star):")
	for _, sweepDom := range []int{8, 12, 16} {
		srel := func(name string) *logicq.Relation {
			r := &logicq.Relation{Name: name, Arity: 2}
			seen := map[[2]int]bool{}
			for len(seen) < sweepDom*sweepDom*3/4 {
				e := [2]int{rng.Intn(sweepDom), rng.Intn(sweepDom)}
				if !seen[e] {
					seen[e] = true
					r.Add(e[0], e[1])
				}
			}
			return r
		}
		sq := &logicq.Query{
			NumVars:  4,
			NumFree:  1,
			DomSizes: []int{sweepDom, sweepDom, sweepDom, sweepDom},
			Quants:   []logicq.Quantifier{logicq.ForAll, logicq.Exists, logicq.ForAll},
			Atoms: []logicq.Atom{
				{Rel: srel("S1"), Vars: []int{0, 1}},
				{Rel: srel("S2"), Vars: []int{0, 2}},
				{Rel: srel("S3"), Vars: []int{2, 3}},
			},
		}
		scq, err := logicq.CompileSharpQCQ(sq)
		if err != nil {
			log.Fatal(err)
		}
		prep, err := eng.Prepare(scq)
		if err != nil {
			log.Fatal(err)
		}
		res, err := prep.Run(ctx)
		if err != nil {
			log.Fatal(err)
		}
		want, err := logicq.NaiveCount(sq)
		if err != nil {
			log.Fatal(err)
		}
		if res.Scalar() != want {
			log.Fatalf("engine #QCQ = %d, naive = %d", res.Scalar(), want)
		}
		fmt.Printf("  dom %2d: count %4d (plan %s)\n", sweepDom, res.Scalar(), prep.Plan().Method)
	}
	st := eng.Stats()
	fmt.Printf("  engine: %d prepares, %d planning pass(es), %d cache hits\n",
		st.Prepared, st.PlanCacheMisses, st.PlanCacheHits)
}
