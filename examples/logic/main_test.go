package main

import (
	"strings"
	"testing"

	"github.com/faqdb/faq/internal/testutil"
)

// TestLogicExampleSmoke runs the QCQ/#CQ example in-process; it panics via
// log.Fatal if InsideOut and the naive baseline ever disagree.
func TestLogicExampleSmoke(t *testing.T) {
	out := testutil.CaptureStdout(t, main)
	for _, want := range []string{"#QCQ", "#CQ", "Chen–Dalmau"} {
		if !strings.Contains(out, want) {
			t.Fatalf("logic example output missing %q:\n%s", want, out)
		}
	}
}
