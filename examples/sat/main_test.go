package main

import (
	"strings"
	"testing"

	"github.com/faqdb/faq/internal/testutil"
)

// TestSATExampleSmoke runs the β-acyclic SAT/#SAT example in-process,
// including its built-in elimination-vs-enumeration oracle check.
func TestSATExampleSmoke(t *testing.T) {
	out := testutil.CaptureStdout(t, main)
	for _, want := range []string{"β-acyclic: true", "SAT (NEO directional resolution)", "oracle check"} {
		if !strings.Contains(out, want) {
			t.Fatalf("sat example output missing %q:\n%s", want, out)
		}
	}
}
