// β-acyclic SAT and #SAT (Section 8.3, Theorems 8.3/8.4): CNF clauses are
// box factors; along a nested elimination order, Davis–Putnam directional
// resolution decides SAT with no clause blowup, and the weighted #WSAT
// elimination counts models exactly in polynomial time — where generic
// enumeration needs 2^n.  The generic route — compiling the formula to a
// counting-semiring FAQ (cnf.FAQQuery) and serving it through an Engine —
// is cross-checked against both.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"github.com/faqdb/faq/internal/cnf"
	"github.com/faqdb/faq/internal/core"
)

func main() {
	rng := rand.New(rand.NewSource(13))
	const n, clauses = 48, 40
	f := cnf.RandomInterval(rng, n, clauses, 5)

	fmt.Printf("random interval CNF: %d variables, %d clauses\n", n, len(f.Clauses))
	fmt.Printf("β-acyclic: %v\n", f.IsBetaAcyclic())

	order, ok := f.NestedEliminationOrder()
	if !ok {
		log.Fatal("interval formulas are always β-acyclic")
	}

	t0 := time.Now()
	sat, peak := f.SolveDirectional(order)
	fmt.Printf("SAT (NEO directional resolution): %v in %v, peak clauses %d (input %d)\n",
		sat, time.Since(t0).Round(time.Microsecond), peak, len(f.Clauses))

	t0 = time.Now()
	count, err := f.CountBetaAcyclic()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("#SAT (Theorem 8.4 elimination):   %s models in %v  (out of 2^%d = %.3g)\n",
		count, time.Since(t0).Round(time.Microsecond), n, float64(uint64(1)<<uint(min(n, 63))))

	// Cross-check on a truncated instance small enough to enumerate —
	// three ways: brute enumeration, Theorem 8.4 elimination, and the FAQ
	// engine on the compiled counting query.
	small := cnf.RandomInterval(rng, 16, 24, 4)
	want := small.CountAssignmentsBrute()
	got, err := small.CountBetaAcyclic()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("oracle check (16 vars): elimination %s == enumeration %s\n", got, want)

	eng := core.NewEngine[int64](core.EngineOptions{})
	defer eng.Close()
	prep, err := eng.Prepare(small.FAQQuery())
	if err != nil {
		log.Fatal(err)
	}
	res, err := prep.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine check (16 vars): FAQ count %d via plan %s (width %.2f)\n",
		res.Scalar(), prep.Plan().Method, prep.Plan().Width)
	if fmt.Sprint(res.Scalar()) != want.String() {
		log.Fatalf("FAQ engine count %d != enumeration %s", res.Scalar(), want)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
