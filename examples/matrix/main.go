// Matrix operations as FAQ instances (Table 1 rows MCM and DFT):
// matrix chain multiplication, where the planner's exact DP recovers the
// textbook parenthesization, and the DFT over Z_{2^m}, where variable
// elimination along the expression order is the Cooley–Tukey FFT.  The DFT
// runs on the prepared-transform API: matrixops.NewFFT plans the size-N
// transform once on an engine, then Transform streams signals through the
// cached plan — the repeated-transform loop of a DSP pipeline.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/cmplx"
	"math/rand"

	"github.com/faqdb/faq/internal/core"
	"github.com/faqdb/faq/internal/matrixops"
)

func main() {
	rng := rand.New(rand.NewSource(5))

	// --- Matrix chain multiplication ---
	dims := []int{10, 100, 5, 50}
	ms := make([]*matrixops.Matrix, len(dims)-1)
	for i := range ms {
		ms[i] = matrixops.NewMatrix(dims[i], dims[i+1])
		for j := range ms[i].Data {
			ms[i].Data[j] = rng.Float64()
		}
	}
	dpOut, dpCost, dpOps, err := matrixops.ChainDP(ms)
	if err != nil {
		log.Fatal(err)
	}
	faqOut, plan, err := matrixops.ChainFAQ(ms)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MCM dims %v\n", dims)
	fmt.Printf("  DP parenthesization cost: %d scalar multiplies (performed %d)\n", dpCost, dpOps)
	fmt.Printf("  FAQ planner ordering:     %v (width %.2f)\n", plan.Order, plan.Width)
	maxDiff := 0.0
	for i := range dpOut.Data {
		if d := math.Abs(dpOut.Data[i] - faqOut.Data[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("  max |DP − FAQ| entry:     %.2e\n", maxDiff)

	// --- DFT / FFT: prepare the transform once, stream signals through ---
	const m = 10
	n := 1 << m
	eng := core.NewEngine[complex128](core.EngineOptions{})
	defer eng.Close()
	fft, err := matrixops.NewFFT(eng, 2, m)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	fmt.Printf("DFT N=%d (p=2, m=%d), prepared once\n", n, m)
	for signal := 0; signal < 3; signal++ {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.Float64()*2-1, 0)
		}
		fast, err := fft.Transform(ctx, x)
		if err != nil {
			log.Fatal(err)
		}
		slow := matrixops.NaiveDFT(x)
		worst := 0.0
		for i := range slow {
			if d := cmplx.Abs(fast[i] - slow[i]); d > worst {
				worst = d
			}
		}
		fmt.Printf("  signal %d: max |FAQ-FFT − naive DFT| = %.2e\n", signal, worst)
	}
	st := eng.Stats()
	fmt.Printf("  engine: %d prepare, %d transforms on the cached plan\n", st.Prepared, st.Runs)
	fmt.Println("  (the FAQ eliminates y-digits one by one: each step costs O(pN) — Cooley–Tukey)")
}
