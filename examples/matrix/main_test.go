package main

import (
	"strings"
	"testing"

	"github.com/faqdb/faq/internal/testutil"
)

// TestMatrixExampleSmoke runs the MCM + DFT example in-process.
func TestMatrixExampleSmoke(t *testing.T) {
	out := testutil.CaptureStdout(t, main)
	for _, want := range []string{"MCM dims", "DP parenthesization", "FFT"} {
		if !strings.Contains(out, want) {
			t.Fatalf("matrix example output missing %q:\n%s", want, out)
		}
	}
}
