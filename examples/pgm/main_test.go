package main

import (
	"strings"
	"testing"

	"github.com/faqdb/faq/internal/testutil"
)

// TestPGMExampleSmoke runs the grid-MRF inference example in-process,
// including its MAP ≤ Z consistency check.
func TestPGMExampleSmoke(t *testing.T) {
	out := testutil.CaptureStdout(t, main)
	for _, want := range []string{"partition function", "MAP value", "check: MAP ≤ Z"} {
		if !strings.Contains(out, want) {
			t.Fatalf("pgm example output missing %q:\n%s", want, out)
		}
	}
}
