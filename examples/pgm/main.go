// PGM inference on a grid model: marginals (sum-product), the partition
// function, and MAP (max-product) — Table 1 rows "Marginal" and "MAP".
//
// The model is a 3×4 grid Markov random field with random pairwise
// potentials.  InsideOut plans a variable ordering whose fractional
// hypertree width matches the grid's treewidth structure; brute force
// would enumerate d^12 assignments.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/faqdb/faq/internal/pgm"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	const rows, cols, dom = 3, 4, 4
	m := pgm.Grid(rng, rows, cols, dom)

	z, err := m.Partition()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid %dx%d, domain %d\n", rows, cols, dom)
	fmt.Printf("partition function Z = %.6g\n", z)

	mu, err := m.Marginal([]int{0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("normalized marginal of x0:")
	for i, tup := range mu.Tuples {
		fmt.Printf("  P(x0=%d) = %.4f\n", tup[0], mu.Values[i]/z)
	}

	// Pairwise marginal of two opposite corners.
	corner, err := m.Marginal([]int{0, rows*cols - 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("joint marginal of x0 and x%d has %d entries\n", rows*cols-1, corner.Size())

	assignment, val, err := m.MAPAssignment()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MAP value = %.6g at assignment %v\n", val, assignment)

	// Consistency: the MAP value is the max-product objective, bounded by Z.
	if val > z {
		log.Fatal("MAP value exceeded the partition function")
	}
	fmt.Println("check: MAP ≤ Z ✓")
}
