// PGM inference on a grid model: marginals (sum-product), the partition
// function, and MAP (max-product) — Table 1 rows "Marginal" and "MAP" —
// served through a long-lived FAQ engine.
//
// The model is a 3×4 grid Markov random field with random pairwise
// potentials.  InsideOut plans a variable ordering whose fractional
// hypertree width matches the grid's treewidth structure; brute force
// would enumerate d^12 assignments.  The model is bound to an engine with
// UseEngine: repeated shapes (notably the n·d conditioned MAP evaluations
// of MAPAssignment, which all share one shape) are answered from the plan
// cache — inference is the archetypal prepare-once-run-many workload.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/faqdb/faq/internal/core"
	"github.com/faqdb/faq/internal/pgm"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	const rows, cols, dom = 3, 4, 4
	eng := core.NewEngine[float64](core.EngineOptions{})
	defer eng.Close()
	m := pgm.Grid(rng, rows, cols, dom).UseEngine(eng)

	z, err := m.Partition()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid %dx%d, domain %d\n", rows, cols, dom)
	fmt.Printf("partition function Z = %.6g\n", z)

	mu, err := m.Marginal([]int{0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("normalized marginal of x0:")
	for i := 0; i < mu.Size(); i++ {
		fmt.Printf("  P(x0=%d) = %.4f\n", mu.Row(i)[0], mu.Values[i]/z)
	}

	// A full single-site marginal sweep; symmetric site positions compile
	// to identical shapes and share cached plans.
	total := 0.0
	for v := 0; v < rows*cols; v++ {
		mv, err := m.Marginal([]int{v})
		if err != nil {
			log.Fatal(err)
		}
		for _, val := range mv.Values {
			total += val
		}
	}
	fmt.Printf("marginal sweep: Σ_v Σ_x μ_v(x) = %.6g (= %d·Z)\n", total, rows*cols)

	// Pairwise marginal of two opposite corners.
	corner, err := m.Marginal([]int{0, rows*cols - 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("joint marginal of x0 and x%d has %d entries\n", rows*cols-1, corner.Size())

	assignment, val, err := m.MAPAssignment()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MAP value = %.6g at assignment %v\n", val, assignment)

	// Consistency: the MAP value is the max-product objective, bounded by Z.
	if val > z {
		log.Fatal("MAP value exceeded the partition function")
	}
	fmt.Println("check: MAP ≤ Z ✓")

	st := eng.Stats()
	fmt.Printf("engine: %d prepares served by %d planning passes (%d cache hits), %d runs\n",
		st.Prepared, st.PlanCacheMisses, st.PlanCacheHits, st.Runs)
}
