// Serving: the full faqd loop in one process — boot the HTTP daemon on a
// loopback port, query it through the wire-protocol client, and watch the
// shape-keyed plan cache amortize planning across requests.
//
// This is the network half of the "questions asked frequently" workload:
// the quickstart example shares a plan across calls inside one process; the
// server shares it across clients.  Three requests arrive with the same
// query shape (a triangle count) but different edge sets: the first plans,
// the rest reuse, and /statsz shows 1 miss + 2 hits.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"

	"github.com/faqdb/faq/internal/server"
)

const dom = 64

// triangleSpec renders Σ_{x,y,z} ψ(x,y)·ψ(y,z)·ψ(x,z) with seed-scaled
// edge weights: same shape every time, different data every seed, so the
// weighted triangle count grows as (1+seed)³.
func triangleSpec(seed int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "var x %d sum\nvar y %d sum\nvar z %d sum\n", dom, dom, dom)
	for _, e := range [][2]string{{"x", "y"}, {"y", "z"}, {"x", "z"}} {
		fmt.Fprintf(&b, "factor %s %s\n", e[0], e[1])
		for a := 0; a < dom; a++ {
			for c := 0; c < dom; c++ {
				if (a*7+c*3)%5 == 0 && a != c {
					fmt.Fprintf(&b, "%d %d = %d\n", a, c, 1+seed)
				}
			}
		}
		b.WriteString("end\n")
	}
	return b.String()
}

func main() {
	ctx := context.Background()

	// Boot: the same server faqd runs, on an ephemeral loopback port.
	srv, err := server.New(server.Config{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Shutdown(ctx)
	fmt.Printf("serving on http://%s\n", ln.Addr())

	client := server.NewClient("http://" + ln.Addr().String())
	if err := client.Healthz(ctx); err != nil {
		log.Fatal(err)
	}

	// Three clients ask the same question over different data.
	for seed := 0; seed < 3; seed++ {
		resp, err := client.Query(ctx, &server.QueryRequest{Spec: triangleSpec(seed)})
		if err != nil {
			log.Fatal(err)
		}
		v, err := resp.FloatValue()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("seed %d: %.0f triangles  (plan %s, width %.2f, %.1fms)\n",
			seed, v, resp.Plan.Method, resp.Plan.Width, resp.ElapsedMS)
	}

	// The plan report for the shape every request shared.
	rep, err := client.Plan(ctx, triangleSpec(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan report: %d orderings, fhtw %.2f\n", len(rep.Plans), rep.FHTW)

	// The cache did the sharing: one planning pass for three requests.
	st, err := client.Statsz(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("statsz: %d plan misses, %d hits, %d runs over %d request(s)\n",
		st.Engine.PlanCacheMisses, st.Engine.PlanCacheHits, st.Engine.Runs, st.Server.Requests)
}
