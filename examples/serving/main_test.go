package main

import (
	"strings"
	"testing"

	"github.com/faqdb/faq/internal/testutil"
)

func TestServingExample(t *testing.T) {
	out := testutil.CaptureStdout(t, main)
	for _, want := range []string{"serving on http://127.0.0.1:", "seed 2:", "1 plan misses, 2 hits"} {
		if !strings.Contains(out, want) {
			t.Fatalf("serving example output missing %q:\n%s", want, out)
		}
	}
}
