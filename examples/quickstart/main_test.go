package main

import (
	"strings"
	"testing"

	"github.com/faqdb/faq/internal/testutil"
)

// TestQuickstartSmoke runs the example in-process and checks it reaches the
// triangle count and the oracle cross-check.
func TestQuickstartSmoke(t *testing.T) {
	out := testutil.CaptureStdout(t, main)
	for _, want := range []string{"directed triangles:", "planned ordering:", "oracle check"} {
		if !strings.Contains(out, want) {
			t.Fatalf("quickstart output missing %q:\n%s", want, out)
		}
	}
}
