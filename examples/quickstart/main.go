// Quickstart: count triangles in a graph with a single FAQ query
// (Example A.8 of the paper).
//
// The triangle count is the SumProd instance
//
//	φ = Σ_{x0} Σ_{x1} Σ_{x2}  ψ(x0,x1) · ψ(x1,x2) · ψ(x0,x2)
//
// over the sum-product semiring, whose hypergraph is the triangle with
// fractional cover number 3/2 — so InsideOut runs in Õ(N^1.5) where any
// pairwise join plan needs Θ(N²) on skewed inputs.
package main

import (
	"fmt"
	"log"
	"math/rand"

	faq "github.com/faqdb/faq"
)

func main() {
	const nodes = 400
	const edges = 2400
	rng := rand.New(rand.NewSource(42))

	// A random directed edge set; ψ(u,v) = 1 when (u,v) is an edge.
	seen := map[[2]int]bool{}
	var tuples [][]int
	var values []float64
	for len(tuples) < edges {
		e := [2]int{rng.Intn(nodes), rng.Intn(nodes)}
		if seen[e] || e[0] == e[1] {
			continue
		}
		seen[e] = true
		tuples = append(tuples, []int{e[0], e[1]})
		values = append(values, 1)
	}

	d := faq.Float()
	mk := func(vars []int) *faq.Factor[float64] {
		f, err := faq.NewFactor(d, vars, tuples, values, nil)
		if err != nil {
			log.Fatal(err)
		}
		return f
	}
	q := &faq.Query[float64]{
		D:        d,
		NVars:    3,
		DomSizes: []int{nodes, nodes, nodes},
		NumFree:  0,
		Aggs: []faq.Aggregate[float64]{
			faq.SemiringAgg(faq.OpFloatSum()),
			faq.SemiringAgg(faq.OpFloatSum()),
			faq.SemiringAgg(faq.OpFloatSum()),
		},
		Factors: []*faq.Factor[float64]{mk([]int{0, 1}), mk([]int{1, 2}), mk([]int{0, 2})},
	}

	res, plan, err := faq.Solve(q, faq.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("directed triangles: %.0f\n", res.Scalar())
	fmt.Printf("planned ordering:   %v (method %s)\n", plan.Order, plan.Method)
	fmt.Printf("faqw of plan:       %.2f (= ρ* of the triangle query)\n", plan.Width)
	fmt.Printf("max intermediate:   %d rows\n", res.Stats.MaxIntermediate)

	// Cross-check on a small sample with the brute-force oracle.
	small := &faq.Query[float64]{
		D: d, NVars: 3, DomSizes: []int{8, 8, 8}, NumFree: 0,
		Aggs:    q.Aggs,
		Factors: nil,
	}
	var smallTuples [][]int
	var smallValues []float64
	for _, t := range tuples {
		if t[0] < 8 && t[1] < 8 {
			smallTuples = append(smallTuples, t)
			smallValues = append(smallValues, 1)
		}
	}
	if len(smallTuples) > 0 {
		f, err := faq.NewFactor(d, []int{0, 1}, smallTuples, smallValues, nil)
		if err != nil {
			log.Fatal(err)
		}
		g, _ := faq.NewFactor(d, []int{1, 2}, smallTuples, smallValues, nil)
		h, _ := faq.NewFactor(d, []int{0, 2}, smallTuples, smallValues, nil)
		small.Factors = []*faq.Factor[float64]{f, g, h}
		want, err := faq.BruteForceScalar(small)
		if err != nil {
			log.Fatal(err)
		}
		got, _, err := faq.Solve(small, faq.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("oracle check (8-node subgraph): InsideOut %.0f == brute force %.0f\n",
			got.Scalar(), want)
	}
}
