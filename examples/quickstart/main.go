// Quickstart: count triangles in a graph with a single FAQ query
// (Example A.8 of the paper), served through the Engine API.
//
// The triangle count is the SumProd instance
//
//	φ = Σ_{x0} Σ_{x1} Σ_{x2}  ψ(x0,x1) · ψ(x1,x2) · ψ(x0,x2)
//
// over the sum-product semiring, whose hypergraph is the triangle with
// fractional cover number 3/2 — so InsideOut runs in Õ(N^1.5) where any
// pairwise join plan needs Θ(N²) on skewed inputs.
//
// The query is prepared once (the Section 6–7 planners run a single time)
// and then run against several edge sets via RunWithFactors — the
// "questions asked frequently" serving loop: plan once, answer many.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	faq "github.com/faqdb/faq"
)

const nodes = 400

// edgeFactors draws a random directed edge set and returns the three
// ψ factors of the triangle query (all three share the edge list).
func edgeFactors(seed int64, d *faq.Domain[float64]) []*faq.Factor[float64] {
	rng := rand.New(rand.NewSource(seed))
	const edges = 2400
	seen := map[[2]int]bool{}
	var tuples [][]int
	var values []float64
	for len(tuples) < edges {
		e := [2]int{rng.Intn(nodes), rng.Intn(nodes)}
		if seen[e] || e[0] == e[1] {
			continue
		}
		seen[e] = true
		tuples = append(tuples, []int{e[0], e[1]})
		values = append(values, 1)
	}
	mk := func(vars []int) *faq.Factor[float64] {
		f, err := faq.NewFactor(d, vars, tuples, values, nil)
		if err != nil {
			log.Fatal(err)
		}
		return f
	}
	return []*faq.Factor[float64]{mk([]int{0, 1}), mk([]int{1, 2}), mk([]int{0, 2})}
}

func main() {
	ctx := context.Background()
	eng := faq.NewEngine[float64](faq.EngineOptions{}) // Workers 0 = GOMAXPROCS
	defer eng.Close()

	d := faq.Float()
	q := &faq.Query[float64]{
		D:        d,
		NVars:    3,
		DomSizes: []int{nodes, nodes, nodes},
		NumFree:  0,
		Aggs: []faq.Aggregate[float64]{
			faq.SemiringAgg(faq.OpFloatSum()),
			faq.SemiringAgg(faq.OpFloatSum()),
			faq.SemiringAgg(faq.OpFloatSum()),
		},
		Factors: edgeFactors(42, d),
	}

	// Prepare once: the planner (exact DP over LinEx(P) here) runs a single
	// time and the plan is cached on the engine.
	prep, err := eng.Prepare(q)
	if err != nil {
		log.Fatal(err)
	}
	plan := prep.Plan()
	fmt.Printf("planned ordering:   %v (method %s)\n", plan.Order, plan.Method)
	fmt.Printf("faqw of plan:       %.2f (= ρ* of the triangle query)\n", plan.Width)

	res, err := prep.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("directed triangles: %.0f (graph seed 42)\n", res.Scalar())
	fmt.Printf("max intermediate:   %d rows\n", res.Stats.MaxIntermediate)

	// The serving loop: same shape, fresh data — no replanning.
	for seed := int64(43); seed <= 45; seed++ {
		res, err := prep.RunWithFactors(ctx, edgeFactors(seed, d))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("directed triangles: %.0f (graph seed %d, reused plan)\n", res.Scalar(), seed)
	}
	st := eng.Stats()
	fmt.Printf("engine stats:       %d prepare, %d runs, %d plan misses\n",
		st.Prepared, st.Runs, st.PlanCacheMisses)

	// Cross-check on a small sample with the brute-force oracle.
	smallFactors := edgeFactors(42, d)
	var smallTuples [][]int
	var smallValues []float64
	for i := 0; i < smallFactors[0].Size(); i++ {
		t := smallFactors[0].Tuple(i, nil)
		if t[0] < 8 && t[1] < 8 {
			smallTuples = append(smallTuples, t)
			smallValues = append(smallValues, smallFactors[0].Values[i])
		}
	}
	if len(smallTuples) > 0 {
		small := &faq.Query[float64]{
			D: d, NVars: 3, DomSizes: []int{8, 8, 8}, NumFree: 0, Aggs: q.Aggs,
		}
		f, err := faq.NewFactor(d, []int{0, 1}, smallTuples, smallValues, nil)
		if err != nil {
			log.Fatal(err)
		}
		g, _ := faq.NewFactor(d, []int{1, 2}, smallTuples, smallValues, nil)
		h, _ := faq.NewFactor(d, []int{0, 2}, smallTuples, smallValues, nil)
		small.Factors = []*faq.Factor[float64]{f, g, h}
		want, err := faq.BruteForceScalar(small)
		if err != nil {
			log.Fatal(err)
		}
		sp, err := eng.Prepare(small) // same shape: plan-cache hit
		if err != nil {
			log.Fatal(err)
		}
		got, err := sp.Run(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("oracle check (8-node subgraph): engine %.0f == brute force %.0f (plan hits now %d)\n",
			got.Scalar(), want, eng.Stats().PlanCacheHits)
	}
}
