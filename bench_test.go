// Benchmarks regenerating every row of Table 1 of the paper plus the
// Example 5.6 and Section 8.3 experiments.  Each family compares InsideOut
// against the paper's "previous algorithm" baseline on the same workload;
// what must reproduce is the asymptotic shape (who wins, slopes,
// crossovers), not absolute times.  cmd/experiments prints the same
// comparisons as tables; EXPERIMENTS.md records the measured outcomes.
package faq

import (
	"math/big"
	"math/rand"
	"testing"

	"github.com/faqdb/faq/internal/cnf"
	"github.com/faqdb/faq/internal/logicq"
	"github.com/faqdb/faq/internal/matrixops"
	"github.com/faqdb/faq/internal/pgm"
	"github.com/faqdb/faq/internal/reljoin"
)

// --- T1.1: #QCQ -----------------------------------------------------------

// sharpQCQInstance builds a star-shaped ∃/∀ query over random relations:
// Φ(x0) = ∀x1 ∃x2 ∀x3 (R1(x0,x1) ∧ R2(x0,x2) ∧ R3(x2,x3)), counted over x0.
func sharpQCQInstance(rng *rand.Rand, dom int) *logicq.Query {
	rel := func(name string, size int) *logicq.Relation {
		r := &logicq.Relation{Name: name, Arity: 2}
		seen := map[[2]int]bool{}
		for len(seen) < size {
			e := [2]int{rng.Intn(dom), rng.Intn(dom)}
			if !seen[e] {
				seen[e] = true
				r.Add(e[0], e[1])
			}
		}
		return r
	}
	size := dom * dom * 3 / 4
	if size < 1 {
		size = 1
	}
	return &logicq.Query{
		NumVars:  4,
		NumFree:  1,
		DomSizes: []int{dom, dom, dom, dom},
		Quants:   []logicq.Quantifier{logicq.ForAll, logicq.Exists, logicq.ForAll},
		Atoms: []logicq.Atom{
			{Rel: rel("R1", size), Vars: []int{0, 1}},
			{Rel: rel("R2", size), Vars: []int{0, 2}},
			{Rel: rel("R3", size), Vars: []int{2, 3}},
		},
	}
}

func BenchmarkTable1SharpQCQ(b *testing.B) {
	for _, dom := range []int{8, 16, 32} {
		q := sharpQCQInstance(rand.New(rand.NewSource(1)), dom)
		b.Run(sizeName("insideout", dom), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := logicq.CountQCQ(q); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(sizeName("naive", dom), func(b *testing.B) {
			if dom > 16 {
				b.Skip("naive enumeration infeasible beyond dom=16")
			}
			for i := 0; i < b.N; i++ {
				if _, err := logicq.NaiveCount(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- T1.2: QCQ (Chen–Dalmau family) ---------------------------------------

func chenDalmauInstance(n, dom int) *logicq.Query {
	s := &logicq.Relation{Name: "S", Arity: n}
	// S = full relation (the adversarial case for prefix-width algorithms).
	tuple := make([]int, n)
	var fill func(i int)
	var count int
	fill = func(i int) {
		if count > 4096 {
			return
		}
		if i == n {
			s.Add(tuple...)
			count++
			return
		}
		for v := 0; v < dom; v++ {
			tuple[i] = v
			fill(i + 1)
		}
	}
	fill(0)
	r := &logicq.Relation{Name: "R", Arity: 2}
	for a := 0; a < dom; a++ {
		r.Add(a, a%dom)
	}
	return logicq.ChenDalmau(n, s, r, dom)
}

func BenchmarkTable1QCQ(b *testing.B) {
	for _, n := range []int{3, 4, 5} {
		q := chenDalmauInstance(n, 4)
		b.Run(sizeName("insideout", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := logicq.SolveQCQ(q); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(sizeName("naive", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := logicq.NaiveBool(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- T1.3: #CQ --------------------------------------------------------------

func sharpCQInstance(rng *rand.Rand, dom int) *logicq.Query {
	q := sharpQCQInstance(rng, dom)
	q.Quants = []logicq.Quantifier{logicq.Exists, logicq.Exists, logicq.Exists}
	return q
}

func BenchmarkTable1SharpCQ(b *testing.B) {
	for _, dom := range []int{8, 16, 32} {
		q := sharpCQInstance(rand.New(rand.NewSource(2)), dom)
		b.Run(sizeName("insideout", dom), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := logicq.CountCQ(q); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(sizeName("naive", dom), func(b *testing.B) {
			if dom > 16 {
				b.Skip("naive enumeration infeasible beyond dom=16")
			}
			for i := 0; i < b.N; i++ {
				if _, err := logicq.NaiveCount(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- T1.4: Joins (triangle, skew instance) ---------------------------------

func BenchmarkTable1Joins(b *testing.B) {
	for _, n := range []int{128, 512, 2048} {
		edges, dom := reljoin.SkewTriangleEdges(n)
		in := reljoin.Triangle(dom, edges)
		b.Run(sizeName("insideout", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := in.RunInsideOut(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(sizeName("hashjoin", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := in.RunHashJoin(nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- T1.5 / T1.6: Marginal and MAP -----------------------------------------

func BenchmarkTable1Marginal(b *testing.B) {
	for _, dom := range []int{4, 8, 16} {
		m := pgm.Cycle(rand.New(rand.NewSource(3)), 6, dom)
		b.Run(sizeName("insideout", dom), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := m.Marginal([]int{0}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(sizeName("bruteforce", dom), func(b *testing.B) {
			if dom > 8 {
				b.Skip("brute force infeasible beyond dom=8")
			}
			for i := 0; i < b.N; i++ {
				if _, err := m.MarginalBrute([]int{0}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable1MAP(b *testing.B) {
	for _, dom := range []int{4, 8, 16} {
		m := pgm.Grid(rand.New(rand.NewSource(4)), 3, 3, dom)
		b.Run(sizeName("insideout", dom), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := m.MAPValue(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(sizeName("bruteforce", dom), func(b *testing.B) {
			if dom > 4 {
				b.Skip("brute force infeasible beyond dom=4")
			}
			for i := 0; i < b.N; i++ {
				if _, err := m.MAPBrute(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- T1.7: Matrix Chain Multiplication -------------------------------------

func BenchmarkTable1MCM(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	dims := []int{24, 4, 32, 6, 28, 8}
	ms := make([]*matrixops.Matrix, len(dims)-1)
	for i := range ms {
		ms[i] = matrixops.NewMatrix(dims[i], dims[i+1])
		for j := range ms[i].Data {
			ms[i].Data[j] = rng.Float64()
		}
	}
	b.Run("faq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := matrixops.ChainFAQ(ms); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, _, err := matrixops.ChainDP(ms); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- T1.8: DFT ---------------------------------------------------------------

func BenchmarkTable1DFT(b *testing.B) {
	for _, m := range []int{8, 10, 12} {
		n := 1 << m
		rng := rand.New(rand.NewSource(6))
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.Float64(), 0)
		}
		b.Run(sizeName("faqfft", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := matrixops.FFTViaFAQ(x, 2, m); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(sizeName("naive", n), func(b *testing.B) {
			if n > 1024 {
				b.Skip("quadratic DFT too slow beyond 1024")
			}
			for i := 0; i < b.N; i++ {
				matrixops.NaiveDFT(x)
			}
		})
	}
}

// --- Example 5.6: effect of the variable ordering ---------------------------

// example56Query instantiates Example 5.6 with {0,1}-valued factors and the
// adversarial skew: ψ{0,4} and ψ{1,4} concentrate on one x4 value, so the
// width-2 expression order pays an N²-row intermediate while the paper's
// width-1 ordering (4,0,1,2,3,5) stays linear.
func example56Query(rng *rand.Rand, n int) *Query[float64] {
	d := Float()
	dom := n
	skew := func(vars []int) *Factor[float64] {
		var tuples [][]int
		var values []float64
		for i := 0; i < n; i++ {
			tuples = append(tuples, []int{i, 0})
			values = append(values, 1)
		}
		f, err := NewFactor(d, vars, tuples, values, nil)
		if err != nil {
			panic(err)
		}
		return f
	}
	random3 := func(vars []int) *Factor[float64] {
		seen := map[[3]int]bool{}
		var tuples [][]int
		var values []float64
		for len(tuples) < n {
			t := [3]int{rng.Intn(dom), rng.Intn(dom), rng.Intn(dom)}
			if seen[t] {
				continue
			}
			seen[t] = true
			tuples = append(tuples, []int{t[0], t[1], t[2]})
			values = append(values, 1)
		}
		f, err := NewFactor(d, vars, tuples, values, nil)
		if err != nil {
			panic(err)
		}
		return f
	}
	return &Query[float64]{
		D:        d,
		NVars:    6,
		DomSizes: []int{dom, dom, dom, dom, dom, dom},
		NumFree:  0,
		Aggs: []Aggregate[float64]{
			SemiringAgg(OpFloatMax()),
			SemiringAgg(OpFloatMax()),
			ProductAgg[float64](),
			SemiringAgg(OpFloatSum()),
			SemiringAgg(OpFloatMax()),
			SemiringAgg(OpFloatMax()),
		},
		Factors: []*Factor[float64]{
			skew([]int{0, 4}), skew([]int{1, 4}),
			random3([]int{0, 2, 3}), random3([]int{1, 2, 5}),
		},
		IdempotentInputs: true,
	}
}

func BenchmarkExample56Orderings(b *testing.B) {
	for _, n := range []int{32, 64, 128} {
		q := example56Query(rand.New(rand.NewSource(7)), n)
		expr := q.Shape().ExpressionOrder()
		paper := []int{4, 0, 1, 2, 3, 5} // the width-1 ordering of the paper
		b.Run(sizeName("width2-expression", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := InsideOut(q, expr, DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(sizeName("width1-planned", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := InsideOut(q, paper, DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Section 8.3: β-acyclic SAT and #SAT -------------------------------------

func BenchmarkBetaAcyclicSAT(b *testing.B) {
	for _, n := range []int{24, 48, 96} {
		f := cnf.RandomInterval(rand.New(rand.NewSource(8)), n, n*3/2, 5)
		order, ok := f.NestedEliminationOrder()
		if !ok {
			b.Fatal("interval formula must be β-acyclic")
		}
		b.Run(sizeName("neo-resolution", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f.SolveDirectional(order)
			}
		})
		b.Run(sizeName("dpll", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f.SolveDPLL()
			}
		})
	}
}

func BenchmarkBetaAcyclicSharpSAT(b *testing.B) {
	for _, n := range []int{16, 20, 64} {
		f := cnf.RandomInterval(rand.New(rand.NewSource(9)), n, n*3/2, 4)
		b.Run(sizeName("wsat-elim", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := f.CountBetaAcyclic(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(sizeName("enumerate", n), func(b *testing.B) {
			if n > 20 {
				b.Skip("2^n enumeration infeasible")
			}
			var sink *big.Int
			for i := 0; i < b.N; i++ {
				sink = f.CountAssignmentsBrute()
			}
			_ = sink
		})
	}
}

// --- Ablations ----------------------------------------------------------------

// BenchmarkAblationIndicatorProjections measures Eq. (7)'s semijoin-style
// reduction: a selective third relation prunes the intermediate result only
// when indicator projections participate.
func BenchmarkAblationIndicatorProjections(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	n, dom := 4096, 256
	d := Float()
	pairs := func(vars []int) *Factor[float64] {
		var tuples [][]int
		var values []float64
		for i := 0; i < n; i++ {
			tuples = append(tuples, []int{rng.Intn(dom), rng.Intn(dom)})
			values = append(values, 1)
		}
		f, err := NewFactor(d, vars, tuples, values, func(a, b float64) float64 { return a })
		if err != nil {
			b.Fatal(err)
		}
		return f
	}
	// Selective unary factor on x0: only a few values survive.
	sel := FromFunc(d, []int{0}, []int{dom, dom, dom}, func(t []int) float64 {
		if t[0] < 4 {
			return 1
		}
		return 0
	})
	q := &Query[float64]{
		D: d, NVars: 3, DomSizes: []int{dom, dom, dom}, NumFree: 0,
		Aggs: []Aggregate[float64]{
			SemiringAgg(OpFloatSum()), SemiringAgg(OpFloatSum()), SemiringAgg(OpFloatSum()),
		},
		Factors: []*Factor[float64]{pairs([]int{0, 1}), pairs([]int{1, 2}), sel},
	}
	order := []int{0, 1, 2}
	for _, on := range []bool{true, false} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			opts := DefaultOptions()
			opts.IndicatorProjections = on
			for i := 0; i < b.N; i++ {
				if _, err := InsideOut(q, order, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPlanner compares the expression-order width against the
// planned width on a cycle written in the worst order.
func BenchmarkAblationPlanner(b *testing.B) {
	m := pgm.Cycle(rand.New(rand.NewSource(11)), 8, 6)
	b.Run("planned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.Partition(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bruteforce", func(b *testing.B) {
		b.Skip("6^8 enumeration recorded once in EXPERIMENTS.md")
	})
}

// BenchmarkAblationOutputFilters isolates the Section 5.2.3 output phase:
// dangling tuples are pruned only with the 01-OR filters.
func BenchmarkAblationOutputFilters(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	n, dom := 4096, 512
	d := Bool()
	mk := func(vars []int, dangling bool) *Factor[bool] {
		var tuples [][]int
		var values []bool
		for i := 0; i < n; i++ {
			a := rng.Intn(dom)
			c := rng.Intn(dom)
			if dangling {
				// Most tuples have join partners only on a small fragment.
				a = 4 + rng.Intn(dom-4)
			}
			tuples = append(tuples, []int{a, c})
			values = append(values, true)
		}
		for i := 0; i < 4; i++ {
			tuples = append(tuples, []int{i, i})
			values = append(values, true)
		}
		f, err := NewFactor(d, vars, tuples, values, func(a, b bool) bool { return a })
		if err != nil {
			b.Fatal(err)
		}
		return f
	}
	q := &Query[bool]{
		D: d, NVars: 3, DomSizes: []int{dom, dom, dom}, NumFree: 3,
		Aggs:             []Aggregate[bool]{Free[bool](), Free[bool](), Free[bool]()},
		Factors:          []*Factor[bool]{mk([]int{0, 1}, true), mk([]int{1, 2}, false)},
		IdempotentInputs: true,
	}
	order := []int{0, 1, 2}
	for _, on := range []bool{true, false} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			opts := DefaultOptions()
			opts.FilterOutput = on
			for i := 0; i < b.N; i++ {
				if _, err := InsideOut(q, order, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(kind string, n int) string {
	return kind + "/n=" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
