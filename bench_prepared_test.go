// Benchmarks for the prepare-once-run-many serving path.  Each family runs
// the same workload three ways:
//
//   - solve:     faq.Solve per call — replans the ordering every time (the
//     pre-engine cost model);
//   - prepared:  PreparedQuery.Run per call — planning amortized away;
//   - insideout: bare faq.InsideOut on a precomputed order — the floor.
//
// The amortization claim of the Engine API is that steady-state prepared
// cost sits within noise of the bare InsideOut call and strictly below the
// per-call Solve cost:
//
//	go test -bench 'BenchmarkPrepared' -benchtime 3x
//
// BenchmarkPreparedSwapFactors additionally swaps fresh data into the
// prepared query each iteration (RunWithFactors), the serving-loop shape.
package faq

import (
	"context"
	"math/rand"
	"testing"
)

// preparedTriangle is the BenchmarkParallelTriangle workload (3000 nodes,
// 48000 edges per relation).
func preparedTriangle(seed int64) *Query[float64] {
	rng := rand.New(rand.NewSource(seed))
	const nodes, edges = 3000, 48000
	d := Float()
	return &Query[float64]{
		D: d, NVars: 3, DomSizes: []int{nodes, nodes, nodes}, NumFree: 0,
		Aggs: []Aggregate[float64]{
			SemiringAgg(OpFloatSum()), SemiringAgg(OpFloatSum()), SemiringAgg(OpFloatSum()),
		},
		Factors: []*Factor[float64]{
			randomPairs(rng, d, []int{0, 1}, nodes, edges),
			randomPairs(rng, d, []int{1, 2}, nodes, edges),
			randomPairs(rng, d, []int{0, 2}, nodes, edges),
		},
	}
}

// preparedPGM is the BenchmarkParallelPGMMarginal workload: the
// unnormalized marginal of x0 on a dense 6-cycle MRF with domain 96.
func preparedPGM(seed int64) *Query[float64] {
	rng := rand.New(rand.NewSource(seed))
	const vars, dom = 6, 96
	d := Float()
	ds := make([]int, vars)
	for i := range ds {
		ds[i] = dom
	}
	var factors []*Factor[float64]
	for i := 0; i < vars; i++ {
		u, v := i, (i+1)%vars
		if u > v {
			u, v = v, u
		}
		factors = append(factors, FromFunc(d, []int{u, v}, ds,
			func(t []int) float64 { return float64(1 + (t[0]*31+t[1]*17+rng.Intn(7))%13) }))
	}
	aggs := make([]Aggregate[float64], vars)
	aggs[0] = Free[float64]()
	for i := 1; i < vars; i++ {
		aggs[i] = SemiringAgg(OpFloatSum())
	}
	return &Query[float64]{D: d, NVars: vars, DomSizes: ds, NumFree: 1, Aggs: aggs, Factors: factors}
}

// benchPrepared runs the solve / prepared / insideout triple on one query.
func benchPrepared(b *testing.B, q *Query[float64]) {
	ctx := context.Background()
	eng := NewEngine[float64](EngineOptions{})
	b.Cleanup(eng.Close)
	prep, err := eng.Prepare(q)
	if err != nil {
		b.Fatal(err)
	}
	order := prep.Plan().Order

	// Sanity: the three paths agree before we time them.
	want, _, err := Solve(q, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	got, err := prep.Run(ctx)
	if err != nil {
		b.Fatal(err)
	}
	if !got.Output.Equal(q.D, want.Output) {
		b.Fatal("prepared path diverged from Solve")
	}

	b.Run("solve", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := Solve(q, DefaultOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prepared", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := prep.Run(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("insideout", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := InsideOut(q, order, DefaultOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkPreparedRepeatTriangle(b *testing.B) {
	benchPrepared(b, preparedTriangle(20))
}

func BenchmarkPreparedRepeatPGM(b *testing.B) {
	benchPrepared(b, preparedPGM(22))
}

// BenchmarkPreparedSwapFactors times the full serving loop: each iteration
// refreshes the prepared triangle query with one of several pre-built edge
// sets via RunWithFactors.
func BenchmarkPreparedSwapFactors(b *testing.B) {
	ctx := context.Background()
	eng := NewEngine[float64](EngineOptions{})
	b.Cleanup(eng.Close)
	datasets := []*Query[float64]{preparedTriangle(20), preparedTriangle(21), preparedTriangle(22)}
	prep, err := eng.Prepare(datasets[0])
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prep.RunWithFactors(ctx, datasets[i%len(datasets)].Factors); err != nil {
			b.Fatal(err)
		}
	}
}
