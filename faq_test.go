package faq

import (
	"math"
	"math/rand"
	"testing"
)

// TestAppendixA2KColorability: k-colorability (Example A.2) as a Boolean
// FAQ: ψ_{uv}(c1, c2) = (c1 ≠ c2) for every edge.
func TestAppendixA2KColorability(t *testing.T) {
	d := Bool()
	neq := func(k, n, u, v int) *Factor[bool] {
		doms := make([]int, n)
		for i := range doms {
			doms[i] = k
		}
		return FromFunc(d, []int{u, v}, doms, func(tup []int) bool {
			return tup[0] != tup[1]
		})
	}
	color := func(k int, edges [][2]int, n int) bool {
		q := &Query[bool]{
			D: d, NVars: n, DomSizes: make([]int, n), NumFree: 0,
			Aggs:             make([]Aggregate[bool], n),
			IdempotentInputs: true,
		}
		for i := 0; i < n; i++ {
			q.DomSizes[i] = k
			q.Aggs[i] = SemiringAgg(OpOr())
		}
		for _, e := range edges {
			q.Factors = append(q.Factors, neq(k, n, e[0], e[1]))
		}
		res, _, err := Solve(q, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return res.Scalar()
	}
	triangle := [][2]int{{0, 1}, {1, 2}, {0, 2}}
	if color(2, triangle, 3) {
		t.Fatal("triangle is not 2-colorable")
	}
	if !color(3, triangle, 3) {
		t.Fatal("triangle is 3-colorable")
	}
	// K4 needs 4 colors.
	k4 := [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if color(3, k4, 4) {
		t.Fatal("K4 is not 3-colorable")
	}
	if !color(4, k4, 4) {
		t.Fatal("K4 is 4-colorable")
	}
}

// TestAppendixA11Permanent: the permanent (Example A.11) as a sum-product
// FAQ with singleton factors ψ_i(j) = a_ij and inequality factors between
// all column variables.
func TestAppendixA11Permanent(t *testing.T) {
	d := Float()
	a := [][]float64{
		{1, 2, 3},
		{4, 5, 6},
		{7, 8, 10},
	}
	n := len(a)
	doms := []int{n, n, n}
	q := &Query[float64]{
		D: d, NVars: n, DomSizes: doms, NumFree: 0,
		Aggs: make([]Aggregate[float64], n),
	}
	for i := 0; i < n; i++ {
		q.Aggs[i] = SemiringAgg(OpFloatSum())
		row := a[i]
		q.Factors = append(q.Factors, FromFunc(d, []int{i}, doms, func(tup []int) float64 {
			return row[tup[0]]
		}))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			q.Factors = append(q.Factors, FromFunc(d, []int{i, j}, doms, func(tup []int) float64 {
				if tup[0] == tup[1] {
					return 0
				}
				return 1
			}))
		}
	}
	res, _, err := Solve(q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// perm = Σ_π Π a_{iπ(i)} over the 6 permutations:
	// 1·5·10 + 2·6·7 + 3·4·8 + 1·6·8 + 2·4·10 + 3·5·7 = 50+84+96+48+80+105 = 463.
	if got := res.Scalar(); math.Abs(got-463) > 1e-9 {
		t.Fatalf("permanent = %v, want 463", got)
	}
}

// TestAppendixA1SATAsFAQ: a CNF formula as a Boolean FAQ where each clause
// is a factor (Example A.1) — expanded to listing representation.
func TestAppendixA1SATAsFAQ(t *testing.T) {
	d := Bool()
	doms := []int{2, 2, 2}
	clause := func(vars []int, f func([]int) bool) *Factor[bool] {
		return FromFunc(d, vars, doms, f)
	}
	// (x0 ∨ ¬x1) ∧ (x1 ∨ x2) ∧ (¬x0 ∨ ¬x2)
	q := &Query[bool]{
		D: d, NVars: 3, DomSizes: doms, NumFree: 0,
		Aggs: []Aggregate[bool]{
			SemiringAgg(OpOr()), SemiringAgg(OpOr()), SemiringAgg(OpOr()),
		},
		Factors: []*Factor[bool]{
			clause([]int{0, 1}, func(tup []int) bool { return tup[0] == 1 || tup[1] == 0 }),
			clause([]int{1, 2}, func(tup []int) bool { return tup[0] == 1 || tup[1] == 1 }),
			clause([]int{0, 2}, func(tup []int) bool { return tup[0] == 0 || tup[1] == 0 }),
		},
		IdempotentInputs: true,
	}
	res, _, err := Solve(q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Scalar() {
		t.Fatal("formula is satisfiable (e.g. x0=1, x1=1, x2=0)")
	}
}

// TestSetSemiringProvenance: variable elimination over the set semiring
// (∪, ∩) — Yannakakis as InsideOut (Section 3.1).  Each tuple carries a
// bitmask of source ids; the query result is the intersection-of-unions
// provenance of the join.
func TestSetSemiringProvenance(t *testing.T) {
	d := Set()
	r, err := NewFactor(d, []int{0, 1},
		[][]int{{0, 0}, {0, 1}, {1, 1}},
		[]uint64{1 << 0, 1 << 1, 1 << 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewFactor(d, []int{1, 2},
		[][]int{{0, 0}, {1, 0}},
		[]uint64{1 << 3, 1 << 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := &Query[uint64]{
		D: d, NVars: 3, DomSizes: []int{2, 2, 2}, NumFree: 1,
		Aggs: []Aggregate[uint64]{
			Free[uint64](),
			SemiringAgg(OpUnion()),
			SemiringAgg(OpUnion()),
		},
		Factors: []*Factor[uint64]{r, s},
	}
	res, _, err := Solve(q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want, err := BruteForce(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output.Equal(d, want) {
		t.Fatalf("set-semiring output mismatch: %v vs %v", res.Output, want)
	}
	// φ(x0=0): tuples through (0,0,0): r-token 0 ∩ s-token 3, plus through
	// (0,1,0): tokens 1 ∩ 4 — union = {0∩3} ∪ {1∩4}... with bitmask
	// semantics: (1|?)&(8) ∪ (2)&(16) = 0 ∪ 0 = 0?  Intersections of
	// disjoint singleton sets are empty, so the provenance must be empty.
	if v, ok := res.Output.Value([]int{0}); ok && v != 0 {
		t.Fatalf("disjoint token sets must intersect to ∅, got %b", v)
	}
}

// TestTropicalShortestPath: min-plus matrix chain = shortest paths; the
// tropical semiring's ⊗ is +, so a path query computes single-pair
// shortest-path lengths.
func TestTropicalShortestPath(t *testing.T) {
	d := Tropical()
	inf := math.Inf(1)
	// Layered graph with 3 layers of 3 nodes; weights w1[i][j], w2[j][k].
	w1 := [][]float64{{1, 5, inf}, {2, 1, 4}, {inf, 3, 1}}
	w2 := [][]float64{{2, inf, 1}, {1, 2, inf}, {4, 1, 3}}
	doms := []int{3, 3, 3}
	mk := func(vars []int, w [][]float64) *Factor[float64] {
		return FromFunc(d, vars, doms, func(tup []int) float64 {
			return w[tup[0]][tup[1]]
		})
	}
	q := &Query[float64]{
		D: d, NVars: 3, DomSizes: doms, NumFree: 2,
		Aggs: []Aggregate[float64]{
			Free[float64](), Free[float64](), SemiringAgg(OpTropicalMin()),
		},
		// Variables: 0 = source layer, 1 = target layer, 2 = middle layer.
		// Second factor: ψ(x1 = k, x2 = j) = w2[j][k].
		Factors: []*Factor[float64]{
			mk([]int{0, 2}, w1),
			FromFunc(d, []int{1, 2}, doms, func(tup []int) float64 { return w2[tup[1]][tup[0]] }),
		},
	}
	res, _, err := Solve(q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// d(i, k) = min_j w1[i][j] + w2[j][k]; check a few entries.
	for i := 0; i < 3; i++ {
		for k := 0; k < 3; k++ {
			want := inf
			for j := 0; j < 3; j++ {
				if c := w1[i][j] + w2[j][k]; c < want {
					want = c
				}
			}
			got := res.Output.ValueOrZero(d, []int{i, k})
			if got != want && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
				t.Fatalf("d(%d,%d) = %v, want %v", i, k, got, want)
			}
		}
	}
}

// TestFacadeSolveMatchesBruteForce is a sanity check for the re-exported
// API on a random mixed query.
func TestFacadeSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	d := Float()
	doms := []int{3, 2, 3}
	r := FromFunc(d, []int{0, 1}, doms, func(tup []int) float64 {
		return float64(rng.Intn(3))
	})
	s := FromFunc(d, []int{1, 2}, doms, func(tup []int) float64 {
		return float64(rng.Intn(3))
	})
	q := &Query[float64]{
		D: d, NVars: 3, DomSizes: doms, NumFree: 1,
		Aggs: []Aggregate[float64]{
			Free[float64](), SemiringAgg(OpFloatMax()), SemiringAgg(OpFloatSum()),
		},
		Factors: []*Factor[float64]{r, s},
	}
	res, plan, err := Solve(q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want, err := BruteForce(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output.Equal(d, want) {
		t.Fatalf("Solve (%s) disagrees with brute force", plan.Method)
	}
	if ok, err := InEVO(q.Shape(), plan.Order); err != nil || !ok {
		t.Fatalf("planned order %v not in EVO: %v", plan.Order, err)
	}
}
