package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/faqdb/faq/internal/wire"
)

// Store is the on-disk dataset catalog: a directory of .faqds files plus
// an in-memory index of the opened (mapped) datasets, safe for concurrent
// use.  The catalog holds one reference on every resident dataset; Get
// hands the caller an additional reference, so a dataset replaced or
// deleted mid-request stays mapped until its last user releases it.
type Store struct {
	dir string

	mu     sync.RWMutex
	byName map[string]*Dataset
	closed bool

	checksumFailures atomic.Int64
	loadErrs         []string
}

// OpenDir opens (creating if needed) the dataset directory and maps every
// valid .faqds file in it — the faqd warm-restart path.  Files that fail
// verification are skipped, recorded in LoadErrors, and counted in
// ChecksumFailures when the failure is a CRC mismatch; one bad file never
// blocks the rest of the catalog.
func OpenDir(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, byName: make(map[string]*Dataset)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), FileSuffix) {
			continue
		}
		name := strings.TrimSuffix(e.Name(), FileSuffix)
		if !ValidName(name) {
			s.loadErrs = append(s.loadErrs, fmt.Sprintf("%s: %v", e.Name(), ErrBadName))
			continue
		}
		ds, err := Open(filepath.Join(dir, e.Name()))
		if err != nil {
			if errors.Is(err, ErrChecksum) {
				s.checksumFailures.Add(1)
			}
			s.loadErrs = append(s.loadErrs, err.Error())
			continue
		}
		s.byName[name] = ds
	}
	return s, nil
}

// Dir returns the dataset directory.
func (s *Store) Dir() string { return s.dir }

// Put canonicalizes frames, writes them as a dataset file (atomic
// temp-file + rename), re-opens the published file through the same
// verification path a cold start uses, and swaps it into the catalog.
// An existing dataset of the same name is replaced; its mapping lives on
// until the last in-flight reference releases it.
func (s *Store) Put(name string, frames []*wire.Frame) (Manifest, error) {
	if !ValidName(name) {
		return Manifest{}, fmt.Errorf("%w: %q", ErrBadName, name)
	}
	path := filepath.Join(s.dir, name+FileSuffix)

	// Serialize writers per store: concurrent PUTs of one name must not
	// interleave write/open/swap.
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Manifest{}, ErrClosed
	}
	if _, err := WriteFile(path, name, frames); err != nil {
		return Manifest{}, err
	}
	ds, err := Open(path)
	if err != nil {
		if errors.Is(err, ErrChecksum) {
			s.checksumFailures.Add(1)
		}
		os.Remove(path)
		return Manifest{}, fmt.Errorf("store: verifying published dataset: %w", err)
	}
	if old := s.byName[name]; old != nil {
		defer old.Release()
	}
	s.byName[name] = ds
	return ds.Manifest(), nil
}

// Get returns the named dataset with a reference held for the caller,
// who must Release it when done.
func (s *Store) Get(name string) (*Dataset, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	ds := s.byName[name]
	if ds == nil {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	ds.Acquire()
	return ds, nil
}

// Delete removes the named dataset from the catalog and deletes its file.
// In-flight users of the dataset keep a valid mapping until they release.
func (s *Store) Delete(name string) error {
	if !ValidName(name) {
		return fmt.Errorf("%w: %q", ErrBadName, name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	ds := s.byName[name]
	if ds == nil {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(s.byName, name)
	if err := os.Remove(filepath.Join(s.dir, name+FileSuffix)); err != nil {
		ds.Release()
		return fmt.Errorf("store: %w", err)
	}
	return ds.Release()
}

// List returns the manifests of every resident dataset, sorted by name.
func (s *Store) List() []Manifest {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Manifest, 0, len(s.byName))
	for _, ds := range s.byName {
		out = append(out, ds.Manifest())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of resident datasets.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byName)
}

// BytesMapped returns the total mapped bytes across resident datasets.
func (s *Store) BytesMapped() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total int64
	for _, ds := range s.byName {
		total += int64(ds.Bytes())
	}
	return total
}

// ChecksumFailures returns how many dataset opens have failed with a CRC
// mismatch over the store's lifetime (boot scan plus later operations).
func (s *Store) ChecksumFailures() int64 { return s.checksumFailures.Load() }

// LoadErrors returns the per-file failures recorded while scanning the
// directory at OpenDir time.
func (s *Store) LoadErrors() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.loadErrs...)
}

// Close drops the catalog's references.  Datasets still held by callers
// stay mapped until those references release.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for name, ds := range s.byName {
		if err := ds.Release(); err != nil && first == nil {
			first = err
		}
		delete(s.byName, name)
	}
	return first
}
