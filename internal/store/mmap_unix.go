//go:build unix

package store

import (
	"os"
	"syscall"
)

// mapFile memory-maps size bytes of f read-only.  The mapping base is
// page-aligned, so the format's 8-aligned column offsets stay 8-aligned
// in memory — the precondition for the in-place column views.  Pages are
// faulted in on demand, so datasets larger than RAM serve fine.
func mapFile(f *os.File, size int) (data []byte, unmap func() error, err error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return b, func() error { return syscall.Munmap(b) }, nil
}
