//go:build !linux

package store

// madvise is Linux-gated rather than unix-gated: syscall.Madvise is absent
// on several unix ports, and the hints are pure optimizations anyway.
func adviseSequential([]byte) error { return nil }

func adviseWillNeed([]byte) error { return nil }
