package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"sync/atomic"
	"unsafe"

	"github.com/faqdb/faq/internal/wire"
)

// Dataset is one opened dataset file: verified, memory-mapped (where the
// platform supports it) and served zero-copy.  The row and value column
// accessors return slices aliasing the mapped file — callers must treat
// them as read-only and must hold a reference (Acquire/Release) for as
// long as they use them; the mapping is released when the last reference
// drops.
type Dataset struct {
	manifest Manifest
	domain   wire.Domain
	path     string

	data  []byte
	unmap func() error

	refs    atomic.Int64
	factors []segView
}

// segView holds the fixed-up column views of one segment.
type segView struct {
	rows   []int32
	floats []float64
	ints   []int64
	bools  []bool
}

// littleEndianHost reports whether the host stores integers little-endian
// — the precondition for reinterpreting the on-disk columns in place.
func littleEndianHost() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

// Open maps and fully verifies one dataset file: magic, version, manifest
// CRC and structure, every segment CRC, and the consistency of each
// segment's embedded frame header with the manifest.  On success the
// returned Dataset holds one reference (the caller's) and serves its
// columns as views directly over the mapped bytes — no decode, no copy.
// Errors wrap the package sentinels.
func Open(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if st.Size() > int64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("%w: %d bytes", ErrTruncated, st.Size())
	}
	data, unmap, err := mapFile(f, int(st.Size()))
	if err != nil {
		return nil, fmt.Errorf("store: mapping %s: %w", path, err)
	}
	// openBytes CRC-verifies the whole file front to back; tell the kernel
	// so readahead runs deep.  Hints only — failures don't affect serving.
	_ = adviseSequential(data)
	ds, err := openBytes(data)
	if err != nil {
		unmap()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	// Verified and about to serve: prefault ahead of first query use and
	// drop the sequential readahead pattern (queries do point lookups and
	// range scans).
	_ = adviseWillNeed(data)
	ds.path = path
	ds.unmap = unmap
	return ds, nil
}

// openBytes verifies and fixes up a complete dataset image.  The returned
// Dataset aliases data.
func openBytes(data []byte) (*Dataset, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w", ErrBadMagic)
	}
	pos := len(magic)
	ver, n := binary.Uvarint(data[pos:])
	if n <= 0 {
		return nil, fmt.Errorf("%w: unreadable format version", ErrTruncated)
	}
	pos += n
	if ver != FormatVersion {
		return nil, fmt.Errorf("%w: format version %d (want %d)", ErrVersion, ver, FormatVersion)
	}
	mlen, n := binary.Uvarint(data[pos:])
	if n <= 0 {
		return nil, fmt.Errorf("%w: unreadable manifest length", ErrTruncated)
	}
	pos += n
	if mlen > maxManifestBytes {
		return nil, fmt.Errorf("%w: %d-byte manifest (limit %d)", ErrManifest, mlen, maxManifestBytes)
	}
	if uint64(len(data)-pos) < mlen+4 {
		return nil, fmt.Errorf("%w: file ends inside the manifest", ErrTruncated)
	}
	manJSON := data[pos : pos+int(mlen)]
	pos += int(mlen)
	wantCRC := binary.LittleEndian.Uint32(data[pos:])
	if got := crc32.ChecksumIEEE(data[:pos]); got != wantCRC {
		return nil, fmt.Errorf("%w: manifest CRC %08x, computed %08x", ErrChecksum, wantCRC, got)
	}
	pos += 4
	segBase := pos + pad8(pos)
	if segBase > len(data) {
		return nil, fmt.Errorf("%w: file ends inside header padding", ErrTruncated)
	}
	for ; pos < segBase; pos++ {
		if data[pos] != 0 {
			return nil, fmt.Errorf("%w: non-zero header padding at byte %d", ErrManifest, pos)
		}
	}

	ds := &Dataset{data: data, unmap: func() error { return nil }}
	if err := json.Unmarshal(manJSON, &ds.manifest); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrManifest, err)
	}
	dom, err := wire.ParseDomain(ds.manifest.Domain)
	if err != nil {
		return nil, fmt.Errorf("%w: domain %q", ErrManifest, ds.manifest.Domain)
	}
	ds.domain = dom
	if len(ds.manifest.Factors) == 0 {
		return nil, fmt.Errorf("%w: no factors", ErrManifest)
	}

	next := int64(0)
	for i, meta := range ds.manifest.Factors {
		if meta.Offset != next {
			return nil, fmt.Errorf("%w: factor %d at offset %d, expected %d", ErrManifest, i, meta.Offset, next)
		}
		if meta.Offset%8 != 0 {
			return nil, fmt.Errorf("%w: factor %d offset %d not 8-aligned", ErrManifest, i, meta.Offset)
		}
		if meta.Arity < 0 || meta.Arity > wire.MaxArity || meta.Rows < 0 {
			return nil, fmt.Errorf("%w: factor %d shape %d×%d", ErrManifest, i, meta.Rows, meta.Arity)
		}
		hdr := wire.FrameHeader{Domain: dom, Arity: meta.Arity, Rows: meta.Rows}
		rowsOff, valsOff, length := segmentLayout(hdr)
		if int64(length) != meta.Length {
			return nil, fmt.Errorf("%w: factor %d length %d, layout needs %d", ErrManifest, i, meta.Length, length)
		}
		segStart := int64(segBase) + meta.Offset
		segEnd := segStart + meta.Length
		if segEnd > int64(len(data)) {
			return nil, fmt.Errorf("%w: file ends inside factor %d", ErrTruncated, i)
		}
		seg := data[segStart:segEnd]
		if got := crc32.ChecksumIEEE(seg); got != meta.CRC32 {
			return nil, fmt.Errorf("%w: factor %d CRC %08x, computed %08x", ErrChecksum, i, meta.CRC32, got)
		}
		got, hlen, err := wire.ParseFrameHeader(seg)
		if err != nil {
			return nil, fmt.Errorf("%w: factor %d header: %v", ErrManifest, i, err)
		}
		if got != hdr {
			return nil, fmt.Errorf("%w: factor %d header %+v, manifest says %+v", ErrManifest, i, got, hdr)
		}
		for _, p := range seg[hlen:rowsOff] {
			if p != 0 {
				return nil, fmt.Errorf("%w: factor %d non-zero header padding", ErrManifest, i)
			}
		}
		view, err := fixupSegment(seg, dom, meta, rowsOff, valsOff)
		if err != nil {
			return nil, fmt.Errorf("factor %d: %w", i, err)
		}
		ds.factors = append(ds.factors, view)
		next = segEnd - int64(segBase)
	}
	if int64(segBase)+next != int64(len(data)) {
		return nil, fmt.Errorf("%w: %d trailing bytes after the last factor",
			ErrManifest, int64(len(data))-int64(segBase)-next)
	}
	ds.refs.Store(1)
	return ds, nil
}

// fixupSegment builds the typed column views over one verified segment.
// On little-endian hosts this is pure pointer fixup; a big-endian host
// falls back to a decoded heap copy so results stay correct everywhere.
func fixupSegment(seg []byte, dom wire.Domain, meta FactorMeta, rowsOff, valsOff int) (segView, error) {
	var v segView
	nCells := meta.Rows * meta.Arity
	vals := seg[valsOff : valsOff+dom.ValueSize()*meta.Rows]
	if dom == wire.DomainBool {
		// One byte per bool; stored factors hold only non-zero values, so
		// every byte must be exactly 1 for the []bool reinterpretation (and
		// the listing semantics) to be sound.
		for i, b := range vals {
			if b != 1 {
				return v, fmt.Errorf("%w: bool value %d at row %d (want 1)", ErrManifest, b, i)
			}
		}
	}
	if littleEndianHost() {
		if nCells > 0 {
			v.rows = unsafe.Slice((*int32)(unsafe.Pointer(&seg[rowsOff])), nCells)
		}
		if meta.Rows > 0 {
			switch dom {
			case wire.DomainFloat, wire.DomainTropical:
				v.floats = unsafe.Slice((*float64)(unsafe.Pointer(&vals[0])), meta.Rows)
			case wire.DomainInt:
				v.ints = unsafe.Slice((*int64)(unsafe.Pointer(&vals[0])), meta.Rows)
			case wire.DomainBool:
				v.bools = unsafe.Slice((*bool)(unsafe.Pointer(&vals[0])), meta.Rows)
			}
		}
		return v, nil
	}
	v.rows = make([]int32, nCells)
	for i := range v.rows {
		v.rows[i] = int32(binary.LittleEndian.Uint32(seg[rowsOff+4*i:]))
	}
	switch dom {
	case wire.DomainFloat, wire.DomainTropical:
		v.floats = make([]float64, meta.Rows)
		for i := range v.floats {
			bits := binary.LittleEndian.Uint64(vals[8*i:])
			v.floats[i] = *(*float64)(unsafe.Pointer(&bits))
		}
	case wire.DomainInt:
		v.ints = make([]int64, meta.Rows)
		for i := range v.ints {
			v.ints[i] = int64(binary.LittleEndian.Uint64(vals[8*i:]))
		}
	case wire.DomainBool:
		v.bools = make([]bool, meta.Rows)
		for i := range v.bools {
			v.bools[i] = vals[i] == 1
		}
	}
	return v, nil
}

// Name returns the dataset name recorded in the manifest.
func (d *Dataset) Name() string { return d.manifest.Name }

// Domain returns the wire value domain shared by every factor.
func (d *Dataset) Domain() wire.Domain { return d.domain }

// Path returns the file the dataset was opened from.
func (d *Dataset) Path() string { return d.path }

// Bytes returns the size of the mapped file in bytes.
func (d *Dataset) Bytes() int { return len(d.data) }

// NumFactors returns the number of stored factors.
func (d *Dataset) NumFactors() int { return len(d.factors) }

// Meta returns the manifest entry of factor i.
func (d *Dataset) Meta(i int) FactorMeta { return d.manifest.Factors[i] }

// Manifest returns a copy of the file manifest.
func (d *Dataset) Manifest() Manifest {
	m := d.manifest
	m.Factors = append([]FactorMeta(nil), d.manifest.Factors...)
	return m
}

// Rows returns factor i's row-major tuple block as a view over the mapped
// file; read-only, valid while the caller holds a reference.
func (d *Dataset) Rows(i int) []int32 { return d.factors[i].rows }

// Floats returns factor i's value column for float and tropical datasets;
// read-only, valid while the caller holds a reference.
func (d *Dataset) Floats(i int) []float64 { return d.factors[i].floats }

// Ints returns factor i's value column for int datasets; read-only, valid
// while the caller holds a reference.
func (d *Dataset) Ints(i int) []int64 { return d.factors[i].ints }

// Bools returns factor i's value column for bool datasets; read-only,
// valid while the caller holds a reference.
func (d *Dataset) Bools(i int) []bool { return d.factors[i].bools }

// Acquire takes an additional reference; every Acquire must be paired
// with a Release.
func (d *Dataset) Acquire() { d.refs.Add(1) }

// Release drops one reference; the last release unmaps the file.  Using
// any column view after the final Release is a use-after-unmap.
func (d *Dataset) Release() error {
	if n := d.refs.Add(-1); n == 0 {
		return d.unmap()
	} else if n < 0 {
		panic("store: Dataset released more times than acquired")
	}
	return nil
}
