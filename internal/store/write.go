package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/semiring"
	"github.com/faqdb/faq/internal/wire"
)

// canonFrame rewrites one uploaded frame into storage canonical form —
// rows strictly sorted, duplicates rejected, zero values dropped — by
// round-tripping it through factor.NewRows over positional variables.
// This is what guarantees every stored segment satisfies the invariants
// factor.NewView requires, so serving never has to copy or re-sort.
func canonFrame(f *wire.Frame) (*wire.Frame, error) {
	switch f.Domain {
	case wire.DomainFloat:
		rows, vals, err := canonColumns(semiring.Float(), f, f.Floats)
		return &wire.Frame{Domain: f.Domain, Arity: f.Arity, Rows: rows, Floats: vals}, err
	case wire.DomainTropical:
		rows, vals, err := canonColumns(semiring.Tropical(), f, f.Floats)
		return &wire.Frame{Domain: f.Domain, Arity: f.Arity, Rows: rows, Floats: vals}, err
	case wire.DomainInt:
		rows, vals, err := canonColumns(semiring.Int(), f, f.Ints)
		return &wire.Frame{Domain: f.Domain, Arity: f.Arity, Rows: rows, Ints: vals}, err
	case wire.DomainBool:
		rows, vals, err := canonColumns(semiring.Bool(), f, f.Bools)
		return &wire.Frame{Domain: f.Domain, Arity: f.Arity, Rows: rows, Bools: vals}, err
	}
	return nil, fmt.Errorf("%w: %d", wire.ErrDomain, byte(f.Domain))
}

// canonColumns sorts, deduplicates and zero-compacts one frame's columns.
// Duplicate tuples are an upload error (combine is nil), matching the
// /v1/query fresh-data path.
func canonColumns[V any](d *semiring.Domain[V], f *wire.Frame, vals []V) ([]int32, []V, error) {
	vars := make([]int, f.Arity)
	for i := range vars {
		vars[i] = i
	}
	// NewRows takes ownership and compacts in place; copy so the caller's
	// frame survives.
	fac, err := factor.NewRows(d, vars,
		append([]int32(nil), f.Rows...), append([]V(nil), vals...), nil)
	if err != nil {
		return nil, nil, err
	}
	return fac.Rows(), fac.Values, nil
}

// segmentLayout computes a segment's internal offsets (relative to the
// segment start) from its header: where the row block and value column
// begin and the total padded length.
func segmentLayout(h wire.FrameHeader) (rowsOff, valsOff, length int) {
	hdr := wire.AppendFrameHeader(nil, h)
	rowsOff = len(hdr) + pad8(len(hdr))
	rowsEnd := rowsOff + 4*h.Rows*h.Arity
	valsOff = rowsEnd + pad8(rowsEnd)
	valsEnd := valsOff + h.Domain.ValueSize()*h.Rows
	length = valsEnd + pad8(valsEnd)
	return rowsOff, valsOff, length
}

// appendSegment appends one canonical frame in the segment encoding and
// returns the extended buffer plus the segment's metadata (Offset left for
// the caller to fill).
func appendSegment(buf []byte, f *wire.Frame) ([]byte, FactorMeta) {
	start := len(buf)
	n := f.NumRows()
	buf = wire.AppendFrameHeader(buf, wire.FrameHeader{Domain: f.Domain, Arity: f.Arity, Rows: n})
	buf = append(buf, make([]byte, pad8(len(buf)-start))...)
	for _, x := range f.Rows {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(x))
	}
	buf = append(buf, make([]byte, pad8(len(buf)-start))...)
	switch f.Domain {
	case wire.DomainFloat, wire.DomainTropical:
		for _, v := range f.Floats {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	case wire.DomainInt:
		for _, v := range f.Ints {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
		}
	case wire.DomainBool:
		for _, v := range f.Bools {
			if v {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		}
	}
	buf = append(buf, make([]byte, pad8(len(buf)-start))...)
	seg := buf[start:]
	return buf, FactorMeta{
		Arity:  f.Arity,
		Rows:   n,
		Length: int64(len(seg)),
		CRC32:  crc32.ChecksumIEEE(seg),
	}
}

// EncodeDataset canonicalizes frames (sort, dedup, drop zeros) and encodes
// the complete dataset file image.  Every frame must share one domain; at
// least one frame is required.
func EncodeDataset(name string, frames []*wire.Frame) ([]byte, *Manifest, error) {
	if !ValidName(name) {
		return nil, nil, fmt.Errorf("%w: %q", ErrBadName, name)
	}
	if len(frames) == 0 {
		return nil, nil, fmt.Errorf("%w: dataset %q has no factors", ErrUpload, name)
	}
	dom := frames[0].Domain
	if !dom.Valid() {
		return nil, nil, fmt.Errorf("%w: factor 0 domain %d", ErrUpload, byte(dom))
	}
	man := &Manifest{Name: name, Domain: dom.String()}
	var segs []byte
	for i, f := range frames {
		if f.Domain != dom {
			return nil, nil, fmt.Errorf("%w: factor %d has domain %v, dataset is %v", ErrUpload, i, f.Domain, dom)
		}
		canon, err := canonFrame(f)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: factor %d: %v", ErrUpload, i, err)
		}
		start := int64(len(segs))
		var meta FactorMeta
		segs, meta = appendSegment(segs, canon)
		meta.Offset = start
		man.Factors = append(man.Factors, meta)
	}

	manJSON, err := json.Marshal(man)
	if err != nil {
		return nil, nil, fmt.Errorf("store: encoding manifest: %w", err)
	}
	buf := append([]byte(nil), magic...)
	buf = binary.AppendUvarint(buf, FormatVersion)
	buf = binary.AppendUvarint(buf, uint64(len(manJSON)))
	buf = append(buf, manJSON...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	buf = append(buf, make([]byte, pad8(len(buf)))...)
	buf = append(buf, segs...)
	return buf, man, nil
}

// WriteFile encodes the dataset and publishes it at path atomically: the
// image is written to a temp file in the same directory, fsynced, and
// renamed into place, so readers never observe a partial file and a crash
// mid-write leaves any previous version untouched.
func WriteFile(path, name string, frames []*wire.Frame) (*Manifest, error) {
	img, man, err := EncodeDataset(name, frames)
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return nil, fmt.Errorf("store: creating temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(img); err != nil {
		tmp.Close()
		return nil, fmt.Errorf("store: writing %s: %w", tmp.Name(), err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return nil, fmt.Errorf("store: syncing %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return nil, fmt.Errorf("store: closing %s: %w", tmp.Name(), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return nil, fmt.Errorf("store: publishing %s: %w", path, err)
	}
	return man, nil
}
