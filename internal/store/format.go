// Package store implements the faqd persistent dataset store: named,
// checksummed, versioned on-disk factor sets that the server memory-maps
// and serves zero-copy.  A dataset file holds a JSON manifest plus one
// segment per factor in the internal/wire frame layout (uvarint header,
// row-major []int32 block, raw little-endian value column), so the bytes
// on disk are exactly the bytes internal/factor uses in memory: a cold
// start is checksum verification plus pointer fixup, with no decode and no
// heap copy of factor data.
//
// # File layout (.faqds, version 1)
//
// Every multi-byte integer is little-endian; varint fields use the
// unsigned LEB128 encoding of encoding/binary.
//
//	"FAQS"   4-byte magic
//	uvarint  format version (currently 1)
//	uvarint  manifest length, then that many bytes of manifest JSON
//	uint32   CRC-32 (IEEE) of every byte above, including the magic
//	zeros    padding to the next multiple of 8 — the segment base
//	segments one per factor, contiguous, each starting 8-aligned
//
// Each segment repeats the wire frame payload with 8-byte alignment pads
// so the row and value columns can be reinterpreted in place:
//
//	header   wire frame prelude: uvarint version, domain byte,
//	         uvarint arity, uvarint row count
//	zeros    padding to the next multiple of 8 from the segment start
//	rows     row count × arity × int32, row-major
//	zeros    padding to the next multiple of 8
//	values   row count × value (8-byte float64/int64, 1-byte bool)
//	zeros    padding to the next multiple of 8
//
// The manifest records each segment's offset (relative to the segment
// base), padded length and a CRC-32 over the whole padded segment.  Rows
// in every segment are strictly lexicographically sorted, duplicate-free
// and zero-value-free (the writer canonicalizes uploads through
// factor.NewRows), which is what lets factor.NewView adopt the mapped
// columns without copying.
//
// Files are written to a temp file in the dataset directory, fsynced and
// atomically renamed into place, so a crashed writer never publishes a
// half dataset.
package store

import (
	"errors"
	"regexp"
)

// magic starts every dataset file.
const magic = "FAQS"

// FormatVersion is the on-disk format version this package writes and the
// only version it accepts when opening.
const FormatVersion = 1

// FileSuffix is the dataset file extension under the store directory.
const FileSuffix = ".faqds"

// maxManifestBytes bounds the declared manifest length so a corrupt
// prefix cannot drive a huge allocation.
const maxManifestBytes = 1 << 24

// Sentinel errors returned (wrapped, with detail) by Open and the Store
// methods.  Match with errors.Is.
var (
	// ErrBadMagic means the file does not start with the "FAQS" magic.
	ErrBadMagic = errors.New("store: bad dataset magic")
	// ErrVersion means the file declares an unsupported format version.
	ErrVersion = errors.New("store: unsupported format version")
	// ErrTruncated means the file ends before its declared contents do.
	ErrTruncated = errors.New("store: truncated dataset file")
	// ErrChecksum means a manifest or segment CRC does not match its bytes.
	ErrChecksum = errors.New("store: checksum mismatch")
	// ErrManifest means the manifest is unparseable or structurally
	// inconsistent with the file (bad offsets, mismatched headers,
	// non-zero padding, trailing bytes).
	ErrManifest = errors.New("store: invalid dataset manifest")
	// ErrBadName means a dataset name fails validation (see ValidName).
	ErrBadName = errors.New("store: invalid dataset name")
	// ErrUpload means uploaded factor data could not be canonicalized
	// (duplicate tuples, mixed domains, no factors) — a client error.
	ErrUpload = errors.New("store: invalid upload")
	// ErrNotFound means the named dataset is not in the store.
	ErrNotFound = errors.New("store: dataset not found")
	// ErrClosed means the store has been closed.
	ErrClosed = errors.New("store: closed")
)

// Manifest describes a dataset file: its name, the value domain shared by
// every factor, and one FactorMeta per segment in spec order.
type Manifest struct {
	// Name is the dataset name the file was published under.
	Name string `json:"name"`
	// Domain is the spec-format domain name ("float", "int", "bool",
	// "tropical") shared by every factor in the dataset.
	Domain string `json:"domain"`
	// Factors lists the segments in order; spec references (@0, @1, …)
	// index into this list.
	Factors []FactorMeta `json:"factors"`
}

// FactorMeta describes one stored factor segment.
type FactorMeta struct {
	// Arity is the number of columns per row.
	Arity int `json:"arity"`
	// Rows is the number of stored (non-zero) tuples.
	Rows int `json:"rows"`
	// Offset is the segment start relative to the file's segment base;
	// always a multiple of 8.
	Offset int64 `json:"offset"`
	// Length is the padded segment length in bytes.
	Length int64 `json:"length"`
	// CRC32 is the CRC-32 (IEEE) of the padded segment bytes.
	CRC32 uint32 `json:"crc32"`
}

// nameRE validates dataset names: they become file names, so the alphabet
// excludes path separators and a leading dot (no hidden files, no "..").
var nameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$`)

// ValidName reports whether name is a legal dataset name: 1–128 characters
// of [A-Za-z0-9._-], not starting with '.', '_' or '-'.
func ValidName(name string) bool { return nameRE.MatchString(name) }

// pad8 returns the number of zero bytes needed to advance n to the next
// multiple of 8.
func pad8(n int) int { return (8 - n%8) % 8 }
