package store

import (
	"errors"
	"testing"
	"unsafe"

	"github.com/faqdb/faq/internal/wire"
)

// goodImage builds one complete, valid dataset image for corruption tests.
func goodImage(t testing.TB) []byte {
	t.Helper()
	img, _, err := EncodeDataset("c", []*wire.Frame{floatFrame(), floatFrame()})
	if err != nil {
		t.Fatalf("EncodeDataset: %v", err)
	}
	return img
}

// typedStoreError reports whether err wraps one of the package's open-time
// sentinels — the contract every corruption must satisfy: a typed error,
// never a panic, never a silently wrong dataset.
func typedStoreError(err error) bool {
	return errors.Is(err, ErrBadMagic) || errors.Is(err, ErrVersion) ||
		errors.Is(err, ErrTruncated) || errors.Is(err, ErrChecksum) ||
		errors.Is(err, ErrManifest)
}

// aligned8 copies b into an 8-aligned buffer, matching the alignment
// guarantee of the real mmap and fallback read paths.
func aligned8(b []byte) []byte {
	words := make([]uint64, (len(b)+7)/8+1)
	out := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), len(b))
	copy(out, b)
	return out
}

// TestOpenTruncatedAtEveryBoundary truncates the image at every byte
// position: each prefix must yield a typed sentinel error.
func TestOpenTruncatedAtEveryBoundary(t *testing.T) {
	img := goodImage(t)
	for n := 0; n < len(img); n++ {
		ds, err := openBytes(aligned8(img[:n]))
		if err == nil {
			ds.Release()
			t.Fatalf("truncation at %d/%d bytes opened successfully", n, len(img))
		}
		if !typedStoreError(err) {
			t.Fatalf("truncation at %d: untyped error %v", n, err)
		}
	}
}

// TestOpenFlippedEveryByte flips every byte of the image in turn: header,
// manifest, CRC and payload corruption must all be detected.
func TestOpenFlippedEveryByte(t *testing.T) {
	img := goodImage(t)
	for i := range img {
		mut := aligned8(img)
		mut[i] ^= 0xFF
		ds, err := openBytes(mut)
		if err == nil {
			ds.Release()
			t.Fatalf("flipping byte %d/%d went undetected", i, len(img))
		}
		if !typedStoreError(err) {
			t.Fatalf("flipping byte %d: untyped error %v", i, err)
		}
	}
}

// TestOpenTrailingBytes appends garbage after a valid image; the exact
// length check must reject it.
func TestOpenTrailingBytes(t *testing.T) {
	img := append(goodImage(t), 0, 0, 0, 0, 0, 0, 0, 0)
	if _, err := openBytes(aligned8(img)); !errors.Is(err, ErrManifest) {
		t.Fatalf("trailing bytes: err = %v, want ErrManifest", err)
	}
}

func FuzzStoreOpen(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("FAQS"))
	img, _, err := EncodeDataset("seed", []*wire.Frame{floatFrame()})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(img)
	imgInt, _, err := EncodeDataset("seed2", []*wire.Frame{intFrame(), intFrame()})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(imgInt)
	imgBool, _, err := EncodeDataset("seed3", []*wire.Frame{boolFrame()})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(imgBool)

	f.Fuzz(func(t *testing.T, data []byte) {
		ds, err := openBytes(aligned8(data))
		if err != nil {
			if !typedStoreError(err) {
				t.Fatalf("untyped open error: %v", err)
			}
			return
		}
		// A successful open must be internally consistent and safe to read.
		for i := 0; i < ds.NumFactors(); i++ {
			meta := ds.Meta(i)
			if len(ds.Rows(i)) != meta.Rows*meta.Arity {
				t.Fatalf("factor %d: %d row cells for %d×%d", i, len(ds.Rows(i)), meta.Rows, meta.Arity)
			}
		}
		ds.Release()
	})
}
