//go:build linux

package store

import "syscall"

// adviseSequential hints the kernel that the mapping is about to be read
// front to back — Open's full-file CRC verification — so readahead runs
// deep instead of the default window.  Advisory only: errors are returned
// for tests but callers ignore them.
func adviseSequential(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	return syscall.Madvise(data, syscall.MADV_SEQUENTIAL)
}

// adviseWillNeed asks the kernel to start faulting the verified dataset in
// ahead of first query use, and resets the readahead pattern to normal
// (query access is point lookups and range scans, not one sweep).
func adviseWillNeed(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	if err := syscall.Madvise(data, syscall.MADV_NORMAL); err != nil {
		return err
	}
	return syscall.Madvise(data, syscall.MADV_WILLNEED)
}
