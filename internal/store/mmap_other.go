//go:build !unix

package store

import (
	"io"
	"os"
	"unsafe"
)

// mapFile on platforms without syscall.Mmap reads the file into an
// 8-aligned heap buffer (backed by []uint64, so the in-place column views
// keep their alignment guarantee).  Serving still works identically; only
// the larger-than-RAM property is lost.
func mapFile(f *os.File, size int) (data []byte, unmap func() error, err error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	words := make([]uint64, (size+7)/8)
	data = unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, int64(size)), data); err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
