package store

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/faqdb/faq/internal/wire"
)

// floatFrame returns a small float frame with deliberately unsorted rows:
// the writer must canonicalize, and the opened dataset must serve the
// sorted order.
func floatFrame() *wire.Frame {
	return &wire.Frame{
		Domain: wire.DomainFloat, Arity: 2,
		Rows:   []int32{5, 1, 0, 2, 3, 4},
		Floats: []float64{2.5, 0.25, 7},
	}
}

func intFrame() *wire.Frame {
	return &wire.Frame{
		Domain: wire.DomainInt, Arity: 1,
		Rows: []int32{9, 4},
		Ints: []int64{-3, 1 << 40},
	}
}

func boolFrame() *wire.Frame {
	return &wire.Frame{
		Domain: wire.DomainBool, Arity: 2,
		Rows:  []int32{1, 2, 0, 1},
		Bools: []bool{true, true},
	}
}

func tropicalFrame() *wire.Frame {
	return &wire.Frame{
		Domain: wire.DomainTropical, Arity: 1,
		Rows:   []int32{3, 1},
		Floats: []float64{1.5, -2},
	}
}

func TestWriteOpenRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tri"+FileSuffix)
	if _, err := WriteFile(path, "tri", []*wire.Frame{floatFrame(), floatFrame()}); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	ds, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer ds.Release()

	if ds.Name() != "tri" || ds.Domain() != wire.DomainFloat || ds.NumFactors() != 2 {
		t.Fatalf("dataset identity: name=%q domain=%v factors=%d", ds.Name(), ds.Domain(), ds.NumFactors())
	}
	wantRows := []int32{0, 2, 3, 4, 5, 1} // canonical lexicographic order
	wantVals := []float64{0.25, 7, 2.5}
	for i := 0; i < 2; i++ {
		rows, vals := ds.Rows(i), ds.Floats(i)
		if len(rows) != len(wantRows) || len(vals) != len(wantVals) {
			t.Fatalf("factor %d shape: %d cells, %d values", i, len(rows), len(vals))
		}
		for j := range wantRows {
			if rows[j] != wantRows[j] {
				t.Fatalf("factor %d rows = %v, want %v", i, rows, wantRows)
			}
		}
		for j := range wantVals {
			if math.Float64bits(vals[j]) != math.Float64bits(wantVals[j]) {
				t.Fatalf("factor %d values = %v, want %v", i, vals, wantVals)
			}
		}
	}
	if ds.Meta(0).Rows != 3 || ds.Meta(0).Arity != 2 {
		t.Fatalf("meta = %+v", ds.Meta(0))
	}
}

func TestRoundTripAllDomains(t *testing.T) {
	cases := []struct {
		name  string
		frame *wire.Frame
	}{
		{"float", floatFrame()},
		{"int", intFrame()},
		{"bool", boolFrame()},
		{"tropical", tropicalFrame()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "d"+FileSuffix)
			if _, err := WriteFile(path, "d", []*wire.Frame{tc.frame}); err != nil {
				t.Fatalf("WriteFile: %v", err)
			}
			ds, err := Open(path)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			defer ds.Release()
			if ds.Domain() != tc.frame.Domain {
				t.Fatalf("domain = %v, want %v", ds.Domain(), tc.frame.Domain)
			}
			if got := ds.Meta(0).Rows; got != tc.frame.NumRows() {
				t.Fatalf("rows = %d, want %d", got, tc.frame.NumRows())
			}
			switch tc.frame.Domain {
			case wire.DomainFloat, wire.DomainTropical:
				if ds.Floats(0) == nil {
					t.Fatal("nil float column")
				}
			case wire.DomainInt:
				if got := ds.Ints(0); got[0] != -3 && got[1] != -3 {
					t.Fatalf("int column = %v", got)
				}
			case wire.DomainBool:
				for _, b := range ds.Bools(0) {
					if !b {
						t.Fatalf("bool column = %v", ds.Bools(0))
					}
				}
			}
		})
	}
}

func TestEncodeDatasetZeroValuesDropped(t *testing.T) {
	f := &wire.Frame{
		Domain: wire.DomainFloat, Arity: 1,
		Rows:   []int32{0, 1, 2},
		Floats: []float64{1, 0, 3}, // the float zero is the domain zero
	}
	_, man, err := EncodeDataset("z", []*wire.Frame{f})
	if err != nil {
		t.Fatalf("EncodeDataset: %v", err)
	}
	if man.Factors[0].Rows != 2 {
		t.Fatalf("stored %d rows, want 2 (zero dropped)", man.Factors[0].Rows)
	}
}

func TestEncodeDatasetUploadErrors(t *testing.T) {
	dup := &wire.Frame{
		Domain: wire.DomainFloat, Arity: 1,
		Rows:   []int32{1, 1},
		Floats: []float64{2, 3},
	}
	if _, _, err := EncodeDataset("d", []*wire.Frame{dup}); !errors.Is(err, ErrUpload) {
		t.Fatalf("duplicate rows: err = %v, want ErrUpload", err)
	}
	if _, _, err := EncodeDataset("d", nil); !errors.Is(err, ErrUpload) {
		t.Fatalf("no frames: err = %v, want ErrUpload", err)
	}
	mixed := []*wire.Frame{floatFrame(), intFrame()}
	if _, _, err := EncodeDataset("d", mixed); !errors.Is(err, ErrUpload) {
		t.Fatalf("mixed domains: err = %v, want ErrUpload", err)
	}
	if _, _, err := EncodeDataset("../escape", []*wire.Frame{floatFrame()}); !errors.Is(err, ErrBadName) {
		t.Fatalf("bad name: err = %v, want ErrBadName", err)
	}
}

func TestValidName(t *testing.T) {
	for _, ok := range []string{"a", "tri", "data-set_1.v2", "A0"} {
		if !ValidName(ok) {
			t.Errorf("ValidName(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"", ".", "..", ".hidden", "-x", "_x", "a/b", "a\\b", "a b",
		"x..y/..", string(make([]byte, 200))} {
		if ValidName(bad) {
			t.Errorf("ValidName(%q) = true, want false", bad)
		}
	}
}

func TestStoreLifecycle(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDir(dir)
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	defer s.Close()

	if _, err := s.Get("tri"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get before Put: %v, want ErrNotFound", err)
	}
	man, err := s.Put("tri", []*wire.Frame{floatFrame()})
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if man.Name != "tri" || len(man.Factors) != 1 {
		t.Fatalf("manifest = %+v", man)
	}
	if _, err := s.Put("bools", []*wire.Frame{boolFrame()}); err != nil {
		t.Fatalf("Put bools: %v", err)
	}
	if s.Len() != 2 || s.BytesMapped() <= 0 {
		t.Fatalf("Len=%d BytesMapped=%d", s.Len(), s.BytesMapped())
	}
	list := s.List()
	if len(list) != 2 || list[0].Name != "bools" || list[1].Name != "tri" {
		t.Fatalf("List = %+v", list)
	}

	ds, err := s.Get("tri")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	// Replace while a reference is out: the old mapping must stay valid.
	if _, err := s.Put("tri", []*wire.Frame{floatFrame(), floatFrame()}); err != nil {
		t.Fatalf("Put replace: %v", err)
	}
	if ds.NumFactors() != 1 || ds.Rows(0)[0] != 0 {
		t.Fatal("old mapping corrupted after replace")
	}
	ds.Release()

	ds2, err := s.Get("tri")
	if err != nil {
		t.Fatalf("Get replaced: %v", err)
	}
	if ds2.NumFactors() != 2 {
		t.Fatalf("replaced dataset has %d factors, want 2", ds2.NumFactors())
	}
	ds2.Release()

	if err := s.Delete("tri"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := s.Delete("tri"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double Delete: %v, want ErrNotFound", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "tri"+FileSuffix)); !os.IsNotExist(err) {
		t.Fatalf("file survives Delete: %v", err)
	}
	if _, err := s.Put("../escape", []*wire.Frame{floatFrame()}); !errors.Is(err, ErrBadName) {
		t.Fatalf("Put traversal name: %v, want ErrBadName", err)
	}
}

func TestOpenDirWarmRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDir(dir)
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	if _, err := s.Put("tri", []*wire.Frame{floatFrame()}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := s.Put("ints", []*wire.Frame{intFrame()}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := s.Get("tri"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after Close: %v, want ErrClosed", err)
	}

	// A corrupt file and a stray file must not block the rest.
	img, err := os.ReadFile(filepath.Join(dir, "tri"+FileSuffix))
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)-1] ^= 0xFF
	if err := os.WriteFile(filepath.Join(dir, "bad"+FileSuffix), img, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenDir(dir)
	if err != nil {
		t.Fatalf("OpenDir restart: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 2 {
		t.Fatalf("restart Len = %d, want 2", s2.Len())
	}
	if s2.ChecksumFailures() != 1 || len(s2.LoadErrors()) != 1 {
		t.Fatalf("ChecksumFailures=%d LoadErrors=%v", s2.ChecksumFailures(), s2.LoadErrors())
	}
	ds, err := s2.Get("tri")
	if err != nil {
		t.Fatalf("Get after restart: %v", err)
	}
	defer ds.Release()
	if ds.Rows(0)[0] != 0 || math.Float64bits(ds.Floats(0)[0]) != math.Float64bits(0.25) {
		t.Fatalf("restart served rows=%v values=%v", ds.Rows(0), ds.Floats(0))
	}
}
