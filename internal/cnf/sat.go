package cnf

import (
	"sort"
)

// SolveDirectional decides satisfiability by directional resolution (the
// Davis–Putnam procedure, Section 8.3.1): variables are eliminated along
// the given vertex ordering from the back; eliminating v replaces the
// clauses mentioning v with all non-tautological resolvents of a positive
// and a negative occurrence, with subsumption removal.  The procedure is
// complete for any ordering; along a nested elimination order of a
// β-acyclic formula every resolution is a subsumption resolution, the
// clause set never grows, and the run is polynomial (Theorem 8.3).
// It returns the satisfiability verdict and the peak number of live clauses
// (the certificate that β-acyclic runs stay polynomial).
func (f *Formula) SolveDirectional(order []int) (sat bool, peakClauses int) {
	clauses := dedupe(f.Clauses)
	peakClauses = len(clauses)
	for k := len(order) - 1; k >= 0; k-- {
		v := order[k]
		var pos, neg, rest []Clause
		for _, c := range clauses {
			p, ok := c.Contains(v)
			switch {
			case !ok:
				rest = append(rest, c)
			case p:
				pos = append(pos, c)
			default:
				neg = append(neg, c)
			}
		}
		for _, cp := range pos {
			for _, cn := range neg {
				res, taut := resolve(cp, cn, v)
				if taut {
					continue
				}
				if len(res.Lits) == 0 {
					return false, peakClauses
				}
				rest = append(rest, res)
			}
		}
		clauses = subsume(dedupe(rest))
		if len(clauses) > peakClauses {
			peakClauses = len(clauses)
		}
	}
	// All variables eliminated without deriving ⊥.
	for _, c := range clauses {
		if len(c.Lits) == 0 {
			return false, peakClauses
		}
	}
	return true, peakClauses
}

// Satisfiable picks the best available strategy: a nested elimination order
// when the formula is β-acyclic (polynomial), otherwise DPLL.
func (f *Formula) Satisfiable() bool {
	if order, ok := f.NestedEliminationOrder(); ok {
		sat, _ := f.SolveDirectional(order)
		return sat
	}
	return f.SolveDPLL()
}

// resolve returns the resolvent of cp (containing v) and cn (containing ¬v)
// on v, reporting tautology.
func resolve(cp, cn Clause, v int) (Clause, bool) {
	lits := make([]Lit, 0, len(cp.Lits)+len(cn.Lits)-2)
	for _, l := range cp.Lits {
		if l.Var() != v {
			lits = append(lits, l)
		}
	}
	for _, l := range cn.Lits {
		if l.Var() != v {
			lits = append(lits, l)
		}
	}
	return NewClause(lits...)
}

func dedupe(clauses []Clause) []Clause {
	seen := map[string]bool{}
	var out []Clause
	for _, c := range clauses {
		k := c.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, c)
		}
	}
	return out
}

// subsume removes clauses that are supersets of another clause.
func subsume(clauses []Clause) []Clause {
	sort.Slice(clauses, func(i, j int) bool { return len(clauses[i].Lits) < len(clauses[j].Lits) })
	var out []Clause
	for _, c := range clauses {
		keep := true
		for _, d := range out {
			if d.SubsetOf(c) {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, c)
		}
	}
	return out
}

// SolveDPLL is the classical branching baseline with unit propagation.
// Exponential in the worst case; it is the comparison point for the
// β-acyclic fast path in benchmarks.
func (f *Formula) SolveDPLL() bool {
	clauses := dedupe(f.Clauses)
	assignment := make([]int8, f.NumVars) // 0 unknown, 1 true, -1 false
	return dpll(clauses, assignment)
}

func dpll(clauses []Clause, assignment []int8) bool {
	// Unit propagation loop.
	for {
		unit := Lit(0)
		for _, c := range clauses {
			unassigned := 0
			var last Lit
			satisfied := false
			for _, l := range c.Lits {
				switch {
				case assignment[l.Var()] == 0:
					unassigned++
					last = l
				case (assignment[l.Var()] == 1) == l.Pos():
					satisfied = true
				}
				if satisfied {
					break
				}
			}
			if satisfied {
				continue
			}
			if unassigned == 0 {
				return false // conflict
			}
			if unassigned == 1 {
				unit = last
				break
			}
		}
		if unit == 0 {
			break
		}
		if unit.Pos() {
			assignment[unit.Var()] = 1
		} else {
			assignment[unit.Var()] = -1
		}
	}
	// Pick an unassigned variable occurring in an unsatisfied clause.
	branch := -1
	allSat := true
	for _, c := range clauses {
		satisfied := false
		for _, l := range c.Lits {
			if assignment[l.Var()] != 0 && (assignment[l.Var()] == 1) == l.Pos() {
				satisfied = true
				break
			}
		}
		if satisfied {
			continue
		}
		allSat = false
		for _, l := range c.Lits {
			if assignment[l.Var()] == 0 {
				branch = l.Var()
				break
			}
		}
		if branch >= 0 {
			break
		}
	}
	if allSat {
		return true
	}
	if branch < 0 {
		return false
	}
	for _, val := range []int8{1, -1} {
		next := append([]int8(nil), assignment...)
		next[branch] = val
		if dpll(clauses, next) {
			return true
		}
	}
	return false
}
