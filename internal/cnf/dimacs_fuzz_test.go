package cnf

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseDIMACS hardens the DIMACS reader against malformed clause lines,
// header mismatches and pathological literals.  Accepted inputs must
// round-trip: re-parsing WriteDIMACS output yields the same variable count
// and the identical clause list.
func FuzzParseDIMACS(f *testing.F) {
	for _, seed := range []string{
		"",
		"c a comment only\n",
		"p cnf 3 2\n1 -2 0\n2 3 0\n",
		"p cnf 2 1\n1 -1 0\n",         // tautology, dropped
		"p cnf 0 0\n",                 // empty formula
		"p cnf 2 2\n1 2 0\n",          // fewer clauses than declared
		"p cnf 2 1\n1 2 0\n-1 -2 0\n", // more clauses than declared
		"p cnf -1 0\n",                // negative header count
		"p cnf 99999999999999999999 1\n1 0\n",
		"1 2 0\n-3 0\n",             // clauses with no header
		"p cnf 3 1\n1 2",            // clause without terminating 0
		"p cnf 3 1\n1 x 0\n",        // junk literal
		"-9223372036854775808 0\n",  // minInt literal, negation overflows
		"p cnf 2 1\n2000000000 0\n", // literal past maxDIMACSVar
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		f1, err := ParseDIMACS(bytes.NewReader(data))
		if err != nil {
			return // malformed input rejected cleanly — nothing to check
		}
		if f1.NumVars < 0 || f1.NumVars > maxDIMACSVar {
			t.Fatalf("accepted formula with NumVars=%d", f1.NumVars)
		}
		for _, c := range f1.Clauses {
			for _, l := range c.Lits {
				if v := l.Var(); v < 0 || v >= f1.NumVars {
					t.Fatalf("clause %v has variable %d outside [0, %d)", c.Lits, v, f1.NumVars)
				}
			}
		}
		var buf strings.Builder
		if err := f1.WriteDIMACS(&buf); err != nil {
			t.Fatalf("WriteDIMACS: %v", err)
		}
		f2, err := ParseDIMACS(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("round-trip re-parse failed: %v\noutput:\n%s", err, buf.String())
		}
		if f2.NumVars != f1.NumVars {
			t.Fatalf("round-trip NumVars %d != %d", f2.NumVars, f1.NumVars)
		}
		if len(f2.Clauses) != len(f1.Clauses) {
			t.Fatalf("round-trip clause count %d != %d", len(f2.Clauses), len(f1.Clauses))
		}
		for i := range f1.Clauses {
			a, b := f1.Clauses[i].Lits, f2.Clauses[i].Lits
			if len(a) != len(b) {
				t.Fatalf("round-trip clause %d arity %d != %d", i, len(b), len(a))
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("round-trip clause %d literal %d: %d != %d", i, j, b[j], a[j])
				}
			}
		}
	})
}
