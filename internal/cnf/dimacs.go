package cnf

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
)

// maxDIMACSVar bounds accepted variable ids: headers and literals beyond it
// are rejected rather than letting a hostile file size NumVars (and every
// per-variable allocation downstream) arbitrarily.
const maxDIMACSVar = 1 << 24

// ParseDIMACS reads a CNF formula in DIMACS format.  Tautological clauses
// are dropped (they are identically true factors).
func ParseDIMACS(r io.Reader) (*Formula, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	f := &Formula{}
	declared := -1
	var lits []Lit
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) < 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("cnf: bad problem line %q", line)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 || n > maxDIMACSVar {
				return nil, fmt.Errorf("cnf: bad variable count in %q", line)
			}
			m, err := strconv.Atoi(fields[3])
			if err != nil || m < 0 {
				return nil, fmt.Errorf("cnf: bad clause count in %q", line)
			}
			declared = m
			f.NumVars = n
			continue
		}
		for _, tok := range strings.Fields(line) {
			x, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("cnf: bad literal %q", tok)
			}
			if x == 0 {
				c, taut := NewClause(lits...)
				if !taut {
					f.Clauses = append(f.Clauses, c)
				}
				lits = lits[:0]
				continue
			}
			v := x
			if v < 0 {
				v = -v
			}
			if v < 0 || v > maxDIMACSVar { // v < 0: x was minInt, -x overflowed
				return nil, fmt.Errorf("cnf: literal %d out of range", x)
			}
			if v > f.NumVars {
				f.NumVars = v
			}
			lits = append(lits, Lit(x))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(lits) > 0 {
		c, taut := NewClause(lits...)
		if !taut {
			f.Clauses = append(f.Clauses, c)
		}
	}
	if declared >= 0 && declared != len(f.Clauses) {
		// Tautology dropping makes a smaller count legitimate.
		if len(f.Clauses) > declared {
			return nil, fmt.Errorf("cnf: %d clauses parsed, %d declared", len(f.Clauses), declared)
		}
	}
	return f, nil
}

// WriteDIMACS renders the formula in DIMACS format.
func (f *Formula) WriteDIMACS(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "p cnf %d %d\n", f.NumVars, len(f.Clauses)); err != nil {
		return err
	}
	for _, c := range f.Clauses {
		var b strings.Builder
		for _, l := range c.Lits {
			fmt.Fprintf(&b, "%d ", int(l))
		}
		b.WriteString("0\n")
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// RandomInterval generates a β-acyclic formula: every clause's variable set
// is a contiguous interval of [0, n), so all incident-edge sets are nested
// at the leftmost live variable — interval hypergraphs are β-acyclic.
// maxLen bounds clause length.
func RandomInterval(rng *rand.Rand, numVars, numClauses, maxLen int) *Formula {
	f := &Formula{NumVars: numVars}
	for len(f.Clauses) < numClauses {
		ln := 1 + rng.Intn(maxLen)
		if ln > numVars {
			ln = numVars
		}
		start := rng.Intn(numVars - ln + 1)
		lits := make([]Lit, ln)
		for i := 0; i < ln; i++ {
			lits[i] = MkLit(start+i, rng.Intn(2) == 0)
		}
		c, taut := NewClause(lits...)
		if !taut {
			f.Clauses = append(f.Clauses, c)
		}
	}
	return f
}

// RandomGeneral generates an arbitrary random k-CNF (no acyclicity
// guarantee) for baseline comparisons.
func RandomGeneral(rng *rand.Rand, numVars, numClauses, k int) *Formula {
	f := &Formula{NumVars: numVars}
	for len(f.Clauses) < numClauses {
		seen := map[int]bool{}
		var lits []Lit
		for len(lits) < k {
			v := rng.Intn(numVars)
			if seen[v] {
				continue
			}
			seen[v] = true
			lits = append(lits, MkLit(v, rng.Intn(2) == 0))
		}
		c, taut := NewClause(lits...)
		if !taut {
			f.Clauses = append(f.Clauses, c)
		}
	}
	return f
}
