// Package cnf implements the Section 8 "compact input representation" side
// of the paper: CNF formulas as FAQ instances over box factors (Definition
// 8.2), the Davis–Putnam directional-resolution SAT solver that runs in
// polynomial time on β-acyclic formulas (Theorem 8.3), and the weighted
// model-counting elimination (#WSAT) that proves Theorem 8.4.  Counting is
// exact over big.Rat: eliminating a variable turns integer clause weights
// into fractions.
package cnf

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"github.com/faqdb/faq/internal/hypergraph"
)

// Lit is a literal: variable v (0-based) occurs positively as v+1 and
// negatively as -(v+1).
type Lit int

// Var returns the 0-based variable of the literal.
func (l Lit) Var() int {
	if l < 0 {
		return int(-l) - 1
	}
	return int(l) - 1
}

// Pos reports whether the literal is positive.
func (l Lit) Pos() bool { return l > 0 }

// Neg returns the complementary literal.
func (l Lit) Neg() Lit { return -l }

// MkLit builds a literal from a variable and polarity.
func MkLit(v int, pos bool) Lit {
	if pos {
		return Lit(v + 1)
	}
	return Lit(-(v + 1))
}

// Clause is a disjunction of literals over distinct variables, kept sorted
// by variable.
type Clause struct {
	Lits []Lit
}

// NewClause normalizes literals: sorts by variable, rejects duplicate
// variables with conflicting polarity by reporting a tautology.
func NewClause(lits ...Lit) (Clause, bool) {
	sorted := append([]Lit(nil), lits...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Var() < sorted[j].Var() })
	var out []Lit
	for _, l := range sorted {
		if len(out) > 0 && out[len(out)-1].Var() == l.Var() {
			if out[len(out)-1] != l {
				return Clause{}, true // v ∨ ¬v: tautology
			}
			continue
		}
		out = append(out, l)
	}
	return Clause{Lits: out}, false
}

// Vars returns the clause's variables (sorted).
func (c Clause) Vars() []int {
	vs := make([]int, len(c.Lits))
	for i, l := range c.Lits {
		vs[i] = l.Var()
	}
	return vs
}

// Contains reports whether the clause mentions variable v, and with which
// polarity if so.
func (c Clause) Contains(v int) (pos, ok bool) {
	for _, l := range c.Lits {
		if l.Var() == v {
			return l.Pos(), true
		}
	}
	return false, false
}

// Without returns the clause with variable v's literal dropped.
func (c Clause) Without(v int) Clause {
	out := make([]Lit, 0, len(c.Lits))
	for _, l := range c.Lits {
		if l.Var() != v {
			out = append(out, l)
		}
	}
	return Clause{Lits: out}
}

// SubsetOf reports whether every literal of c appears in d.
func (c Clause) SubsetOf(d Clause) bool {
	i := 0
	for _, l := range d.Lits {
		if i < len(c.Lits) && c.Lits[i] == l {
			i++
		}
	}
	return i == len(c.Lits)
}

// Satisfied reports whether the clause is satisfied under the (total)
// assignment (assignment[v] == true means v is true).
func (c Clause) Satisfied(assignment []bool) bool {
	for _, l := range c.Lits {
		if assignment[l.Var()] == l.Pos() {
			return true
		}
	}
	return false
}

// String renders the clause like "(x0 ∨ ¬x2)".
func (c Clause) String() string {
	if len(c.Lits) == 0 {
		return "⊥"
	}
	parts := make([]string, len(c.Lits))
	for i, l := range c.Lits {
		if l.Pos() {
			parts[i] = fmt.Sprintf("x%d", l.Var())
		} else {
			parts[i] = fmt.Sprintf("¬x%d", l.Var())
		}
	}
	return "(" + strings.Join(parts, " ∨ ") + ")"
}

// Formula is a CNF formula.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// Hypergraph returns the formula's hypergraph: one edge per clause support.
func (f *Formula) Hypergraph() *hypergraph.Hypergraph {
	h := hypergraph.New(f.NumVars)
	for _, c := range f.Clauses {
		h.AddEdge(c.Vars()...)
	}
	return h
}

// IsBetaAcyclic reports whether the clause hypergraph is β-acyclic.
func (f *Formula) IsBetaAcyclic() bool {
	return f.Hypergraph().IsBetaAcyclic()
}

// NestedEliminationOrder returns a NEO of the clause hypergraph (Proposition
// 4.10) and whether one exists.
func (f *Formula) NestedEliminationOrder() ([]int, bool) {
	return f.Hypergraph().NestedEliminationOrder()
}

// CountAssignmentsBrute counts satisfying assignments by enumeration
// (testing oracle; exponential).
func (f *Formula) CountAssignmentsBrute() *big.Int {
	if f.NumVars > 30 {
		panic("cnf: brute-force counting limited to 30 variables")
	}
	count := big.NewInt(0)
	one := big.NewInt(1)
	assignment := make([]bool, f.NumVars)
	var rec func(i int)
	rec = func(i int) {
		if i == f.NumVars {
			for _, c := range f.Clauses {
				if !c.Satisfied(assignment) {
					return
				}
			}
			count.Add(count, one)
			return
		}
		assignment[i] = false
		rec(i + 1)
		assignment[i] = true
		rec(i + 1)
	}
	rec(0)
	return count
}

// SatisfiableBrute reports satisfiability by enumeration (testing oracle).
func (f *Formula) SatisfiableBrute() bool {
	return f.CountAssignmentsBrute().Sign() > 0
}
