package cnf

import (
	"fmt"
	"math/big"
	"sort"
)

// WeightedClause is a clause C together with weight(C): the box factor
// ψ_{vars(C)}(x) = 1 if x satisfies C, weight(C) otherwise (Section 8.3.2).
// Plain #SAT uses weight 0 everywhere.
type WeightedClause struct {
	Clause Clause
	Weight *big.Rat
}

// CountBetaAcyclic counts the satisfying assignments of a β-acyclic formula
// by the #WSAT variable elimination of Theorem 8.4 (Brault-Baron, Capelli,
// Mengel via the FAQ lens).  It errs if the formula is not β-acyclic.
func (f *Formula) CountBetaAcyclic() (*big.Int, error) {
	order, ok := f.NestedEliminationOrder()
	if !ok {
		return nil, fmt.Errorf("cnf: formula is not β-acyclic")
	}
	wcs := make([]WeightedClause, len(f.Clauses))
	for i, c := range f.Clauses {
		wcs[i] = WeightedClause{Clause: c, Weight: new(big.Rat)}
	}
	total := CountWSAT(f.NumVars, wcs, order)
	if !total.IsInt() {
		return nil, fmt.Errorf("cnf: elimination produced the non-integer count %s", total.RatString())
	}
	return new(big.Int).Set(total.Num()), nil
}

// CountWSAT evaluates Σ_x Π_C ψ_C(x) for weighted clauses along a vertex
// ordering (eliminating from the back).  Along a NEO of a β-acyclic formula
// the number of live clauses never grows (each elimination replaces ∂(v)
// with |∂(v)|+1 clauses over nested supports), keeping the run polynomial.
func CountWSAT(numVars int, clauses []WeightedClause, order []int) *big.Rat {
	live := append([]WeightedClause(nil), clauses...)
	for k := len(order) - 1; k >= 0; k-- {
		live = eliminateWSAT(live, order[k])
	}
	// Only empty clauses remain: each contributes its weight.
	total := big.NewRat(1, 1)
	for _, wc := range live {
		total.Mul(total, wc.Weight)
	}
	return total
}

// eliminateWSAT implements Σ_{x_v} over the clauses of ∂(v), producing the
// clause set C'_v of Section 8.3.2: C'_0 is the empty clause of weight 2 and
// C'_i = [C_i] − v with the telescoping color-ratio weight.
func eliminateWSAT(clauses []WeightedClause, v int) []WeightedClause {
	var boundary, rest []WeightedClause
	for _, wc := range clauses {
		if _, ok := wc.Clause.Contains(v); ok {
			boundary = append(boundary, wc)
		} else {
			rest = append(rest, wc)
		}
	}
	if len(boundary) == 0 {
		// Free multiplier: Σ_{x_v} 1 = 2.
		rest = append(rest, WeightedClause{Clause: Clause{}, Weight: big.NewRat(2, 1)})
		return rest
	}
	// Sort ∂(v) ascending by support size; along a NEO the supports form an
	// inclusion chain so this is the paper's (C_1, ..., C_{|∂(v)|}).
	sort.SliceStable(boundary, func(i, j int) bool {
		return len(boundary[i].Clause.Lits) < len(boundary[j].Clause.Lits)
	})

	// color(prefix, target): Π weights of prefix clauses implying target,
	// where target is C'_i ∨ l and implication is literal-subset.
	color := func(upTo int, target Clause, pol bool) *big.Rat {
		prod := big.NewRat(1, 1)
		for j := 0; j < upTo; j++ {
			cj := boundary[j].Clause
			p, _ := cj.Contains(v)
			if p != pol {
				continue // wrong polarity block (∂_P vs ∂_N)
			}
			if cj.Without(v).SubsetOf(target) {
				prod.Mul(prod, boundary[j].Weight)
			}
		}
		return prod
	}

	out := rest
	out = append(out, WeightedClause{Clause: Clause{}, Weight: big.NewRat(2, 1)})
	for i := range boundary {
		ci := boundary[i].Clause.Without(v)
		num := new(big.Rat).Add(color(i+1, ci, true), color(i+1, ci, false))
		den := new(big.Rat).Add(color(i, ci, true), color(i, ci, false))
		w := new(big.Rat)
		if den.Sign() != 0 {
			w.Quo(num, den)
		}
		out = append(out, WeightedClause{Clause: ci, Weight: w})
	}
	return out
}

// CountWSATBrute evaluates Σ_x Π_C ψ_C(x) by enumeration (testing oracle).
func CountWSATBrute(numVars int, clauses []WeightedClause) *big.Rat {
	if numVars > 22 {
		panic("cnf: brute-force #WSAT limited to 22 variables")
	}
	total := new(big.Rat)
	assignment := make([]bool, numVars)
	var rec func(i int)
	rec = func(i int) {
		if i == numVars {
			prod := big.NewRat(1, 1)
			for _, wc := range clauses {
				if !wc.Clause.Satisfied(assignment) {
					prod.Mul(prod, wc.Weight)
					if prod.Sign() == 0 {
						break
					}
				}
			}
			total.Add(total, prod)
			return
		}
		assignment[i] = false
		rec(i + 1)
		assignment[i] = true
		rec(i + 1)
	}
	rec(0)
	return total
}
