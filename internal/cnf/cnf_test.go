package cnf

import (
	"bytes"
	"math/big"
	"math/rand"
	"strings"
	"testing"
)

func clause(t testing.TB, lits ...Lit) Clause {
	t.Helper()
	c, taut := NewClause(lits...)
	if taut {
		t.Fatalf("unexpected tautology from %v", lits)
	}
	return c
}

func TestLiterals(t *testing.T) {
	l := MkLit(3, true)
	if l.Var() != 3 || !l.Pos() {
		t.Fatal("positive literal malformed")
	}
	n := l.Neg()
	if n.Var() != 3 || n.Pos() {
		t.Fatal("negation malformed")
	}
}

func TestNewClauseNormalization(t *testing.T) {
	c, taut := NewClause(MkLit(2, false), MkLit(0, true), MkLit(2, false))
	if taut {
		t.Fatal("not a tautology")
	}
	if len(c.Lits) != 2 || c.Lits[0].Var() != 0 || c.Lits[1].Var() != 2 {
		t.Fatalf("clause = %v", c)
	}
	if _, taut := NewClause(MkLit(1, true), MkLit(1, false)); !taut {
		t.Fatal("x ∨ ¬x should be a tautology")
	}
}

func TestClauseOps(t *testing.T) {
	c := clause(t, MkLit(0, true), MkLit(1, false), MkLit(2, true))
	if pos, ok := c.Contains(1); !ok || pos {
		t.Fatal("Contains(1) wrong")
	}
	if _, ok := c.Contains(5); ok {
		t.Fatal("Contains(5) wrong")
	}
	w := c.Without(1)
	if len(w.Lits) != 2 {
		t.Fatalf("Without = %v", w)
	}
	small := clause(t, MkLit(0, true))
	if !small.SubsetOf(c) || c.SubsetOf(small) {
		t.Fatal("SubsetOf wrong")
	}
	if !c.Satisfied([]bool{true, true, false}) {
		t.Fatal("x0 satisfies the clause")
	}
	if c.Satisfied([]bool{false, true, false}) {
		t.Fatal("assignment violates every literal")
	}
}

func TestSolveDirectionalSmall(t *testing.T) {
	// (x0 ∨ x1) ∧ (¬x0) ∧ (¬x1): unsatisfiable.
	f := &Formula{NumVars: 2, Clauses: []Clause{
		clause(t, MkLit(0, true), MkLit(1, true)),
		clause(t, MkLit(0, false)),
		clause(t, MkLit(1, false)),
	}}
	if sat, _ := f.SolveDirectional([]int{0, 1}); sat {
		t.Fatal("should be UNSAT")
	}
	// Drop one unit: satisfiable.
	f2 := &Formula{NumVars: 2, Clauses: f.Clauses[:2]}
	if sat, _ := f2.SolveDirectional([]int{0, 1}); !sat {
		t.Fatal("should be SAT")
	}
}

func TestDPLLMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 120; trial++ {
		f := RandomGeneral(rng, 3+rng.Intn(5), 2+rng.Intn(10), 1+rng.Intn(3))
		want := f.SatisfiableBrute()
		if got := f.SolveDPLL(); got != want {
			t.Fatalf("trial %d: DPLL %v, brute force %v (%v)", trial, got, want, f.Clauses)
		}
	}
}

func TestDirectionalMatchesBruteForceAnyOrder(t *testing.T) {
	// Directional resolution is complete for arbitrary orderings, not just
	// NEOs (only the running time degrades).
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 120; trial++ {
		n := 3 + rng.Intn(4)
		f := RandomGeneral(rng, n, 2+rng.Intn(8), 1+rng.Intn(3))
		order := rng.Perm(n)
		want := f.SatisfiableBrute()
		if got, _ := f.SolveDirectional(order); got != want {
			t.Fatalf("trial %d: directional %v, brute force %v", trial, got, want)
		}
	}
}

func TestIntervalFormulasAreBetaAcyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		f := RandomInterval(rng, 4+rng.Intn(8), 3+rng.Intn(10), 4)
		if !f.IsBetaAcyclic() {
			t.Fatalf("trial %d: interval formula not β-acyclic: %v", trial, f.Clauses)
		}
		if _, ok := f.NestedEliminationOrder(); !ok {
			t.Fatalf("trial %d: no NEO found", trial)
		}
	}
}

func TestSatisfiableFastPathAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 80; trial++ {
		f := RandomInterval(rng, 3+rng.Intn(6), 2+rng.Intn(8), 3)
		want := f.SatisfiableBrute()
		if got := f.Satisfiable(); got != want {
			t.Fatalf("trial %d: Satisfiable %v, brute %v (%v)", trial, got, want, f.Clauses)
		}
	}
}

// Theorem 8.3's certificate: along a NEO the live clause count never exceeds
// the input clause count (after subsumption), so directional resolution is
// polynomial on β-acyclic inputs.
func TestDirectionalNEOClauseBound(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		f := RandomInterval(rng, 6+rng.Intn(10), 5+rng.Intn(15), 5)
		order, ok := f.NestedEliminationOrder()
		if !ok {
			t.Fatal("interval formula must have a NEO")
		}
		_, peak := f.SolveDirectional(order)
		if peak > len(f.Clauses)+1 {
			t.Fatalf("trial %d: peak clauses %d exceeds input %d along NEO",
				trial, peak, len(f.Clauses))
		}
	}
}

func TestCountBetaAcyclicSmall(t *testing.T) {
	// #SAT of (x0 ∨ x1) = 3.
	f := &Formula{NumVars: 2, Clauses: []Clause{clause(t, MkLit(0, true), MkLit(1, true))}}
	got, err := f.CountBetaAcyclic()
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewInt(3)) != 0 {
		t.Fatalf("#SAT = %s, want 3", got)
	}
	// Unsatisfiable pair of units.
	f2 := &Formula{NumVars: 1, Clauses: []Clause{
		clause(t, MkLit(0, true)), clause(t, MkLit(0, false)),
	}}
	got2, err := f2.CountBetaAcyclic()
	if err != nil {
		t.Fatal(err)
	}
	if got2.Sign() != 0 {
		t.Fatalf("#SAT = %s, want 0", got2)
	}
}

func TestCountBetaAcyclicUnconstrainedVars(t *testing.T) {
	// A variable in no clause doubles the count.
	f := &Formula{NumVars: 3, Clauses: []Clause{clause(t, MkLit(0, true))}}
	got, err := f.CountBetaAcyclic()
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewInt(4)) != 0 {
		t.Fatalf("#SAT = %s, want 4", got)
	}
}

// Property: the #WSAT elimination matches brute-force counting on random
// β-acyclic (interval) formulas.
func TestQuickCountMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 120; trial++ {
		f := RandomInterval(rng, 2+rng.Intn(7), 1+rng.Intn(9), 4)
		want := f.CountAssignmentsBrute()
		got, err := f.CountBetaAcyclic()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("trial %d: count = %s, brute force %s\nclauses: %v",
				trial, got, want, f.Clauses)
		}
	}
}

// Property: weighted counting with random rational weights matches brute
// force (the full #WSAT semantics, not just weight-0 #SAT).
func TestQuickWeightedCountMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 80; trial++ {
		f := RandomInterval(rng, 2+rng.Intn(6), 1+rng.Intn(6), 3)
		wcs := make([]WeightedClause, len(f.Clauses))
		for i, c := range f.Clauses {
			wcs[i] = WeightedClause{Clause: c, Weight: big.NewRat(int64(rng.Intn(4)), 1)}
		}
		order, ok := f.NestedEliminationOrder()
		if !ok {
			t.Fatal("no NEO")
		}
		got := CountWSAT(f.NumVars, wcs, order)
		want := CountWSATBrute(f.NumVars, wcs)
		if got.Cmp(want) != 0 {
			t.Fatalf("trial %d: WSAT = %s, brute force %s", trial, got.RatString(), want.RatString())
		}
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f := RandomGeneral(rng, 6, 10, 3)
	var buf bytes.Buffer
	if err := f.WriteDIMACS(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ParseDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVars != f.NumVars || len(g.Clauses) != len(f.Clauses) {
		t.Fatalf("round trip lost structure: %d/%d vars, %d/%d clauses",
			g.NumVars, f.NumVars, len(g.Clauses), len(f.Clauses))
	}
	for i := range f.Clauses {
		if f.Clauses[i].String() != g.Clauses[i].String() {
			t.Fatalf("clause %d: %v vs %v", i, f.Clauses[i], g.Clauses[i])
		}
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	if _, err := ParseDIMACS(strings.NewReader("p cnf x 3\n")); err == nil {
		t.Fatal("bad header should fail")
	}
	if _, err := ParseDIMACS(strings.NewReader("p cnf 2 1\n1 z 0\n")); err == nil {
		t.Fatal("bad literal should fail")
	}
	f, err := ParseDIMACS(strings.NewReader("c comment\np cnf 2 2\n1 2 0\n-1 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVars != 2 || len(f.Clauses) != 2 {
		t.Fatalf("parsed %d vars %d clauses", f.NumVars, len(f.Clauses))
	}
}

func BenchmarkBetaAcyclicCount(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	f := RandomInterval(rng, 60, 80, 6)
	order, ok := f.NestedEliminationOrder()
	if !ok {
		b.Fatal("no NEO")
	}
	wcs := make([]WeightedClause, len(f.Clauses))
	for i, c := range f.Clauses {
		wcs[i] = WeightedClause{Clause: c, Weight: new(big.Rat)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CountWSAT(f.NumVars, wcs, order)
	}
}
