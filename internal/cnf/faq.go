// Compilation of CNF model counting into the FAQ framework (Table 1 row
// #SAT / Section 8.3): each clause becomes a listing factor over the
// counting semiring (Z, +, ·) with one row per satisfying local assignment,
// and the model count is the all-Σ FAQ.  Unlike the β-acyclic fast path of
// sharpsat.go, this route goes through the generic planner and the engine,
// so it works (within width limits) on arbitrary clause hypergraphs and
// benefits from plan caching when the same formula family is counted
// repeatedly.
package cnf

import (
	"github.com/faqdb/faq/internal/core"
	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/semiring"
)

// FAQQuery compiles the formula into a #SAT FAQ instance: variables are
// Boolean (domain size 2), every variable is Σ-aggregated, and each clause
// contributes a 0/1 factor listing its 2^k − 1 satisfying rows.  Variables
// in no clause get unit factors so they are counted as free choices.
func (f *Formula) FAQQuery() *core.Query[int64] {
	d := semiring.Int()
	ds := make([]int, f.NumVars)
	aggs := make([]core.Aggregate[int64], f.NumVars)
	for i := range ds {
		ds[i] = 2
		aggs[i] = core.SemiringAgg(semiring.OpIntSum())
	}
	var factors []*factor.Factor[int64]
	covered := make([]bool, f.NumVars)
	for _, c := range f.Clauses {
		c := c
		for _, v := range c.Vars() {
			covered[v] = true
		}
		factors = append(factors, factor.FromFunc(d, c.Vars(), ds, func(t []int) int64 {
			for i, l := range c.Lits {
				if (t[i] == 1) == l.Pos() {
					return 1
				}
			}
			return 0
		}))
	}
	for v, ok := range covered {
		if !ok {
			factors = append(factors, factor.FromFunc(d, []int{v}, ds, func([]int) int64 { return 1 }))
		}
	}
	return &core.Query[int64]{
		D: d, NVars: f.NumVars, DomSizes: ds, NumFree: 0, Aggs: aggs, Factors: factors,
	}
}
