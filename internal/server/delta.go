// POST /v1/delta: incremental maintenance over the wire.  A delta request
// names a spec and a batch of row changes; the server resolves the spec to
// a long-lived delta session — a PreparedQuery whose factor state evolves
// in place — applies the batch through core.ApplyDeltas (ring propagation,
// affected-block re-execution or recompute, whichever the query admits)
// and answers with the maintained result.  The first request for a session
// seeds its state from the spec's inline factor data; later requests ship
// only the changes, which is the whole point: the work is proportional to
// the delta, not to the database.
//
// Sessions are keyed by the request's explicit "session" name, or by the
// spec text itself when none is given, and the registry is LRU-bounded
// (Config.MaxSessions) so an open-ended stream of one-shot specs cannot
// pin unbounded factor state.  Batches arrive as JSON ("deltas") or as a
// binary delta stream (Content-Type application/x-faq-deltas): the same
// "FAQW" envelope as factor streams, carrying delta frames instead.
package server

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"mime"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/faqdb/faq/internal/core"
	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/spec"
	"github.com/faqdb/faq/internal/store"
	"github.com/faqdb/faq/internal/wire"
)

// defaultMaxSessions bounds the delta-session registry when Config leaves
// MaxSessions at zero.
const defaultMaxSessions = 256

// deltaSession is one entry of the session registry: the prepared query
// whose state the deltas evolve, plus what the response encoder needs.
// prep and q are stored untyped (the registry spans all four value
// domains); serveDelta re-types them and answers 400 on a domain mismatch.
type deltaSession struct {
	domain string
	prep   any // *core.PreparedQuery[V]
	q      any // *core.Query[V]
	layout [][]int
}

// sessionRegistry is an LRU-bounded map of delta sessions.
type sessionRegistry struct {
	mu  sync.Mutex
	max int
	lru *list.List // *sessionNode; front = most recently used
	by  map[string]*list.Element
}

type sessionNode struct {
	key  string
	sess *deltaSession
}

func newSessionRegistry(max int) *sessionRegistry {
	if max <= 0 {
		max = defaultMaxSessions
	}
	return &sessionRegistry{max: max, lru: list.New(), by: map[string]*list.Element{}}
}

// get returns the session for key, refreshing its recency.
func (r *sessionRegistry) get(key string) *deltaSession {
	r.mu.Lock()
	defer r.mu.Unlock()
	if el, ok := r.by[key]; ok {
		r.lru.MoveToFront(el)
		return el.Value.(*sessionNode).sess
	}
	return nil
}

// add stores sess under key unless another request won the race, in which
// case the stored session is returned instead (one evolving state per key).
func (r *sessionRegistry) add(key string, sess *deltaSession) *deltaSession {
	r.mu.Lock()
	defer r.mu.Unlock()
	if el, ok := r.by[key]; ok {
		r.lru.MoveToFront(el)
		return el.Value.(*sessionNode).sess
	}
	r.by[key] = r.lru.PushFront(&sessionNode{key: key, sess: sess})
	for r.lru.Len() > r.max {
		last := r.lru.Back()
		delete(r.by, last.Value.(*sessionNode).key)
		r.lru.Remove(last)
	}
	return sess
}

// len reports the current session population for /statsz.
func (r *sessionRegistry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lru.Len()
}

// sessionKey resolves the registry key: an explicit session name wins,
// otherwise the spec text itself keys the state (same spec = same evolving
// database).
func sessionKey(req *DeltaRequest) string {
	if req.Session != "" {
		return "name:" + req.Session
	}
	return "spec:" + req.Spec
}

// maxDeltaFrames caps the frame count of one binary delta stream; a batch
// larger than this should be split across requests anyway.
const maxDeltaFrames = 65536

// decodeDeltaRequest reads the body of POST /v1/delta in either encoding:
// plain JSON, or — under application/x-faq-deltas — a wire stream whose
// envelope header is the DeltaRequest JSON (without "deltas") followed by
// delta frames.
func (s *Server) decodeDeltaRequest(w http.ResponseWriter, r *http.Request) (req DeltaRequest, frames []*wire.DeltaFrame, binary bool, err error) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	ct := r.Header.Get("Content-Type")
	if mt, _, mtErr := mime.ParseMediaType(ct); mtErr == nil && mt == wire.DeltaContentType {
		dec := wire.NewDecoder(body)
		dec.SetMaxFrameBytes(int(min(s.cfg.MaxBodyBytes, int64(wire.DefaultMaxFrameBytes))))
		header, n, hErr := dec.ReadStreamHeader(maxStreamHeaderBytes)
		if hErr != nil {
			return req, nil, true, hErr
		}
		jdec := json.NewDecoder(strings.NewReader(string(header)))
		jdec.DisallowUnknownFields()
		if jErr := jdec.Decode(&req); jErr != nil {
			return req, nil, true, fmt.Errorf("stream header: %w", jErr)
		}
		if req.Deltas != nil {
			return req, nil, true, errors.New(`binary requests carry deltas as frames, not as JSON "deltas"`)
		}
		if n > maxDeltaFrames {
			return req, nil, true, fmt.Errorf("stream declares %d delta frames (limit %d)", n, maxDeltaFrames)
		}
		frames = make([]*wire.DeltaFrame, 0, min(n, 1024))
		for i := 0; i < n; i++ {
			f, fErr := dec.DecodeDelta()
			if fErr != nil {
				return req, nil, true, fmt.Errorf("delta frame %d of %d: %w", i, n, fErr)
			}
			frames = append(frames, f)
		}
		if _, tErr := dec.DecodeDelta(); tErr != io.EOF {
			return req, nil, true, fmt.Errorf("stream declares %d delta frames but carries more", n)
		}
		return req, frames, true, nil
	}
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	err = dec.Decode(&req)
	return req, nil, false, err
}

func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ro := reqObsFrom(r.Context())
	endParse := ro.stage(stageParse)
	defer endParse() // idempotent; covers the early error returns
	req, frames, binary, err := s.decodeDeltaRequest(w, r)
	if err != nil {
		writeDecodeError(w, err)
		return
	}
	if binary {
		s.m.deltasBinary.Add(1)
	}
	if strings.TrimSpace(req.Spec) == "" {
		writeError(w, http.StatusBadRequest, "empty spec")
		return
	}
	if req.Workers < 0 {
		writeError(w, http.StatusBadRequest, "workers must be >= 0, got %d", req.Workers)
		return
	}
	doc, err := spec.ParseDocument(strings.NewReader(req.Spec))
	endParse()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	switch doc.Domain {
	case spec.DomainFloat:
		serveDelta(s, w, r, start, &req, doc, frames, s.eng, floatCodec)
	case spec.DomainInt:
		serveDelta(s, w, r, start, &req, doc, frames, s.engInt, intCodec)
	case spec.DomainBool:
		serveDelta(s, w, r, start, &req, doc, frames, s.engBool, boolCodec)
	case spec.DomainTropical:
		serveDelta(s, w, r, start, &req, doc, frames, s.eng, tropicalCodec)
	default:
		writeError(w, http.StatusBadRequest, "unsupported spec domain %q", doc.Domain)
	}
}

// serveDelta is the domain-generic tail of handleDelta: resolve (or seed)
// the session, translate the batch, apply it under the request context and
// the MaxInflight bound, and write the maintained result.
func serveDelta[V any](s *Server, w http.ResponseWriter, r *http.Request, start time.Time,
	req *DeltaRequest, doc *spec.Document, frames []*wire.DeltaFrame,
	eng *core.Engine[V], cv domainCodec[V]) {

	ro := reqObsFrom(r.Context())
	endResolve := ro.stage(stageResolve)
	defer endResolve()
	key := sessionKey(req)
	sess := s.sessions.get(key)
	if sess == nil {
		// First request of the session: the spec's inline factor data is
		// the initial state.  Prepare outside the registry lock; a racing
		// request for the same key may win, in which case its state is the
		// session (add returns the stored one).
		var resolvers []spec.Resolver[V]
		var seedDS *store.Dataset
		if doc.Dataset != "" {
			// A dataset spec seeds the session from resident factors — but
			// session state evolves in place, so the seed must be a deep
			// heap copy, never the mapped (read-only) columns themselves.
			ds, derr := resolveDataset(s, doc, cv)
			if derr != nil {
				writeStoreError(w, derr)
				return
			}
			seedDS = ds
			resolvers = append(resolvers, cloningResolver(datasetResolver(ds, cv.storeCol)))
		}
		q, layout, err := cv.build(doc, resolvers...)
		if seedDS != nil {
			// The session owns heap copies now; drop the mapping ref.
			seedDS.Release()
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		opts := core.DefaultOptions()
		opts.Workers = req.Workers
		prepCtx, cancel := context.WithTimeout(r.Context(), s.queryTimeout(req.TimeoutMS))
		// Close the resolve stage around the prepare so the two histograms
		// stay disjoint; a second resolve stage below covers the batch
		// translation.
		endResolve()
		endPrep := ro.stage(stagePrepare)
		prep, err := eng.PrepareCtx(prepCtx, q, opts)
		endPrep()
		cancel()
		if err != nil {
			s.writeRunError(w, r.Context(), err)
			return
		}
		sess = s.sessions.add(key, &deltaSession{domain: cv.name, prep: prep, q: q, layout: layout})
	}
	prep, ok := sess.prep.(*core.PreparedQuery[V])
	if !ok || sess.domain != cv.name {
		writeError(w, http.StatusBadRequest,
			"session %q holds a %s-domain query, request spec declares %s",
			req.Session, sess.domain, cv.name)
		return
	}
	q := sess.q.(*core.Query[V])

	endResolve()
	endTranslate := ro.stage(stageResolve)
	deltas, err := buildDeltas(q, sess.layout, req.Deltas, frames, cv)
	endTranslate()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ro.setQuery(cv.name, doc.Dataset, prep.ShapeKey())

	ctx, cancel := context.WithTimeout(r.Context(), s.queryTimeout(req.TimeoutMS))
	defer cancel()
	if !s.acquireRunSlot() {
		s.m.rejected.Add(1)
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.retryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests,
			"server is at its %d-run concurrency bound, retry later", s.cfg.MaxInflight)
		return
	}
	var res *core.Result[V]
	err = func() (err error) {
		defer s.releaseRunSlot()
		endExec := ro.stage(stageExecute)
		defer endExec()
		ro.runLabeled(ctx, func(ctx context.Context) {
			res, err = prep.ApplyDeltas(ctx, deltas)
		})
		return err
	}()
	if err != nil {
		s.writeDeltaError(w, ctx, err)
		return
	}
	s.m.countDomain(cv.name)

	endEncode := ro.stage(stageEncode)
	resp := &DeltaResponse{
		Domain:    cv.name,
		Strategy:  prep.DeltaStrategy(),
		Applied:   len(deltas),
		ElapsedMS: durationMS(time.Since(start)),
	}
	resp.Stats = RunStats{
		Eliminations:     res.Stats.Eliminations,
		IntermediateRows: res.Stats.IntermediateRows,
		MaxIntermediate:  res.Stats.MaxIntermediate,
		JoinProbes:       res.Stats.Join.Probes,
	}
	if q.NumFree == 0 {
		resp.Value = cv.encode(res.Scalar())
	} else {
		tuples := res.Output.Tuples()
		if tuples == nil {
			tuples = [][]int{}
		}
		values := res.Output.Values
		if values == nil {
			values = []V{}
		}
		out := &OutputData{Tuples: tuples, Values: cv.encodeColumn(values)}
		for _, v := range res.Output.Vars {
			out.Vars = append(out.Vars, q.VarName(v))
		}
		resp.Output = out
	}
	endEncode()
	resp.Trace = ro.traceData()
	writeJSON(w, http.StatusOK, resp)
}

// writeDeltaError maps an ApplyDeltas failure: the factor-layer sentinels
// (bad rows, absent deletes, duplicate or out-of-domain keys) are client
// mistakes → 400 with the sentinel text; the rest routes like a run error.
func (s *Server) writeDeltaError(w http.ResponseWriter, ctx context.Context, err error) {
	switch {
	case errors.Is(err, factor.ErrDeltaArity), errors.Is(err, factor.ErrDeltaDup),
		errors.Is(err, factor.ErrDeltaAbsent), errors.Is(err, factor.ErrDeltaRange),
		errors.Is(err, core.ErrDeltaFactor):
		writeError(w, http.StatusBadRequest, "%v", err)
	default:
		s.writeRunError(w, ctx, err)
	}
}

// deltaOpOf maps the JSON op spelling to the factor-layer op.
func deltaOpOf(op string) (factor.DeltaOp, error) {
	switch op {
	case "insert":
		return factor.DeltaInsert, nil
	case "delete":
		return factor.DeltaDelete, nil
	}
	return 0, fmt.Errorf("unknown delta op %q (want \"insert\" or \"delete\")", op)
}

// buildDeltas translates the request's batch — JSON DeltaData or binary
// delta frames, whichever arrived — into core deltas.  Tuple columns are in
// the spec factor block's declaration order and are permuted to the sorted
// storage order here, exactly as fresh factor data is.
func buildDeltas[V any](q *core.Query[V], layout [][]int, data []DeltaData,
	frames []*wire.DeltaFrame, cv domainCodec[V]) ([]core.Delta[V], error) {

	if frames != nil {
		return buildDeltasWire(q, layout, frames, cv)
	}
	deltas := make([]core.Delta[V], 0, len(data))
	for i, dd := range data {
		if dd.Factor < 0 || dd.Factor >= len(q.Factors) {
			return nil, fmt.Errorf("delta %d: factor index %d out of range (spec declares %d factors)",
				i, dd.Factor, len(q.Factors))
		}
		op, err := deltaOpOf(dd.Op)
		if err != nil {
			return nil, fmt.Errorf("delta %d: %w", i, err)
		}
		decl := layout[dd.Factor]
		perm, _ := declPerm(decl)
		rows := make([]int32, 0, len(dd.Tuples)*len(decl))
		for _, tup := range dd.Tuples {
			if len(tup) != len(decl) {
				return nil, fmt.Errorf("delta %d: tuple %v has arity %d, want %d", i, tup, len(tup), len(decl))
			}
			for _, p := range perm {
				if tup[p] < math.MinInt32 || tup[p] > math.MaxInt32 {
					return nil, fmt.Errorf("delta %d: tuple %v exceeds the int32 domain-value range", i, tup)
				}
				rows = append(rows, int32(tup[p]))
			}
		}
		dl := core.Delta[V]{Factor: dd.Factor, Op: op, Rows: rows}
		if op == factor.DeltaInsert {
			if len(dd.Values) != len(dd.Tuples) {
				return nil, fmt.Errorf("delta %d: %d values for %d tuples", i, len(dd.Values), len(dd.Tuples))
			}
			dl.Values = make([]V, len(dd.Values))
			for j, raw := range dd.Values {
				v, err := cv.fromJSON(raw)
				if err != nil {
					return nil, fmt.Errorf("delta %d value %d: %v", i, j, err)
				}
				dl.Values[j] = v
			}
		} else if len(dd.Values) != 0 {
			return nil, fmt.Errorf("delta %d: delete carries %d values", i, len(dd.Values))
		}
		deltas = append(deltas, dl)
	}
	return deltas, nil
}

// frameDeltaCol selects a delta frame's insert value column for the codec's
// value type (the delta twin of domainCodec.frameCol).
func frameDeltaCol[V any](cv domainCodec[V], f *wire.DeltaFrame) []V {
	fr := &wire.Frame{Domain: f.Domain, Arity: f.Arity,
		Floats: f.Floats, Ints: f.Ints, Bools: f.Bools}
	return cv.frameCol(fr)
}

// buildDeltasWire is buildDeltas for binary delta frames.
func buildDeltasWire[V any](q *core.Query[V], layout [][]int, frames []*wire.DeltaFrame,
	cv domainCodec[V]) ([]core.Delta[V], error) {

	deltas := make([]core.Delta[V], 0, len(frames))
	for i, fr := range frames {
		if fr.Factor < 0 || fr.Factor >= len(q.Factors) {
			return nil, fmt.Errorf("delta frame %d: factor index %d out of range (spec declares %d factors)",
				i, fr.Factor, len(q.Factors))
		}
		if fr.Domain != cv.wireDom {
			return nil, fmt.Errorf("delta frame %d carries domain %v, spec declares %s", i, fr.Domain, cv.name)
		}
		decl := layout[fr.Factor]
		if fr.Arity != len(decl) {
			return nil, fmt.Errorf("delta frame %d has arity %d, spec factor has %d", i, fr.Arity, len(decl))
		}
		rows := fr.Rows
		if perm, identity := declPerm(decl); !identity {
			k := len(decl)
			rows = make([]int32, len(fr.Rows))
			for r := 0; r < len(fr.Rows)/k; r++ {
				src := fr.Rows[r*k : r*k+k]
				dst := rows[r*k : r*k+k]
				for j, p := range perm {
					dst[j] = src[p]
				}
			}
		}
		dl := core.Delta[V]{Factor: fr.Factor, Op: factor.DeltaOp(fr.Op), Rows: rows}
		if fr.Op == wire.DeltaOpInsert {
			dl.Values = frameDeltaCol(cv, fr)
		}
		deltas = append(deltas, dl)
	}
	return deltas, nil
}
