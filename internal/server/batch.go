// POST /v1/batch: many same-shape queries amortizing one HTTP round trip,
// one spec parse and one prepare.  The request carries one spec plus N
// factor sets — as JSON, or as the internal/wire batch envelope
// (Content-Type: application/x-faq-batch) — and the items are pipelined
// onto the engine pool through core.RunBatch: prepare once, run N times,
// at most `parallel` items in flight.  A batch claims exactly one
// MaxInflight run slot (connection-level backpressure counts requests,
// not items); the per-item concurrency respects the engine pool caps.
//
// Responses come in two encodings.  The default is one JSON
// BatchResponse with every item in index order.  Under
// Accept: application/x-faq-results the server instead streams binary
// result records (internal/wire "FAQR") over a chunked response, one
// record flushed per completed item in completion order — each record
// carries its item index, so clients reassemble out-of-order completions
// — terminated by an end record with the batch summary.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"runtime"
	"strings"
	"time"

	"github.com/faqdb/faq/internal/core"
	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/obs"
	"github.com/faqdb/faq/internal/spec"
	"github.com/faqdb/faq/internal/wire"
)

// BatchRequest is the body of POST /v1/batch: one spec, N factor sets and
// the batch execution knobs.  As JSON it is the whole body; in a binary
// batch envelope it is the header (without Items — the per-item frame
// groups carry the data).
type BatchRequest struct {
	// Spec is the query in the internal/spec format, shared by every item.
	// Specs with a `use <dataset>` directive are rejected: resident factors
	// make per-item factor sets meaningless — issue single queries instead.
	Spec string `json:"spec"`
	// Items are the batch items, each a factor set for one run.  Binary
	// requests must leave Items empty and ship frame groups instead.
	Items []BatchItem `json:"items,omitempty"`
	// TimeoutMS bounds the whole batch — prepare plus every item; 0 means
	// the server default.  On expiry (or client disconnect) the remaining
	// items are aborted and the response reports partial results.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Workers caps each item run's executor concurrency, as in
	// QueryRequest; 0 means the pool's full width.
	Workers int `json:"workers,omitempty"`
	// Parallel caps how many items run concurrently; 0 means the server
	// picks (the engine pool width).  Items are admitted in index order.
	Parallel int `json:"parallel,omitempty"`
}

// BatchItem is one batch item: the factor data for one run of the spec.
type BatchItem struct {
	// Factors replaces the spec's factor data for this item, with the same
	// shape and column-order contract as QueryRequest.Factors.  An empty
	// list runs the spec's own inline data (the warm trie-cache path).
	Factors []FactorData `json:"factors,omitempty"`
}

// BatchResponse is the JSON body of a successful POST /v1/batch.
type BatchResponse struct {
	// Domain names the value domain the spec declared.
	Domain string `json:"domain"`
	// Plan summarizes the ordering every item executed (one prepare serves
	// the whole batch).
	Plan PlanSummary `json:"plan"`
	// Items holds one result per requested item, in index order.
	Items []BatchItemResult `json:"items"`
	// Completed counts the items that produced a result.
	Completed int `json:"completed"`
	// Status is "ok" when every item completed, "partial" otherwise (some
	// items failed or were aborted by the deadline; see each item's Error).
	Status string `json:"status"`
	// ElapsedMS is the server-side wall time of the whole batch.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Trace is the stage-timing span tree with per-item spans under
	// execute, present when the request asked for it.
	Trace *obs.TraceData `json:"trace,omitempty"`
}

// BatchItemResult is one item's outcome.  Exactly one of Value/Output is
// set on success (by the spec's free-variable count); Error is set on
// failure.  Value and Output follow the QueryResponse conventions.
type BatchItemResult struct {
	// Index is the item's position in the request.
	Index int `json:"index"`
	// Value is the scalar result (no free variables); use the typed
	// accessors rather than asserting.
	Value any `json:"value,omitempty"`
	// Output is the listing result (free variables).  In a binary result
	// record only Vars is populated here — the record's embedded frame
	// carries the tuples and values.
	Output *OutputData `json:"output,omitempty"`
	// Stats are the item run's work counters.
	Stats RunStats `json:"stats"`
	// Error describes the item's failure; empty on success.
	Error string `json:"error,omitempty"`
	// ElapsedMS is the item run's wall time.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// FloatValue returns the item's scalar result for float- and
// tropical-domain batches.
func (r *BatchItemResult) FloatValue() (float64, error) { return floatOf(r.Value) }

// IntValue returns the item's scalar result for int-domain batches.
func (r *BatchItemResult) IntValue() (int64, error) { return intOf(r.Value) }

// BoolValue returns the item's scalar result for bool-domain batches.
func (r *BatchItemResult) BoolValue() (bool, error) { return boolOf(r.Value) }

// BatchStreamHeader is the result-stream envelope header of a streamed
// batch response: what the client knows before the first item completes.
type BatchStreamHeader struct {
	// Domain names the value domain the spec declared.
	Domain string `json:"domain"`
	// Plan summarizes the ordering every item executes.
	Plan PlanSummary `json:"plan"`
	// Items is the number of requested items; the stream carries one item
	// or error record per item (in completion order) plus the end record.
	Items int `json:"items"`
}

// BatchSummary is the end record's header in a streamed batch response:
// the batch outcome, mirroring the summary fields of BatchResponse.
type BatchSummary struct {
	// Completed counts the items that produced a result.
	Completed int `json:"completed"`
	// Status is "ok" or "partial", as in BatchResponse.
	Status string `json:"status"`
	// ElapsedMS is the server-side wall time of the whole batch.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Trace is the batch's span tree, present when the request asked for
	// it (the end record is the last place it can travel).
	Trace *obs.TraceData `json:"trace,omitempty"`
}

// The BatchResponse.Status values.
const (
	// BatchStatusOK means every item completed.
	BatchStatusOK = "ok"
	// BatchStatusPartial means some items failed or were aborted.
	BatchStatusPartial = "partial"
)

// maxBatchItems bounds the declared item count of one batch: above it the
// batch is rejected outright rather than queued for minutes.
const maxBatchItems = 4096

// decodeBatchRequest reads the request body in either encoding: a plain
// JSON BatchRequest, or — under Content-Type application/x-faq-batch — a
// wire batch envelope whose header is the BatchRequest JSON (without
// "items") and whose frame groups carry the per-item factor data.  For
// the binary encoding, items[i] is the i-th group (nil when the item
// declared zero frames: run the spec's own data).
func (s *Server) decodeBatchRequest(w http.ResponseWriter, r *http.Request) (req BatchRequest, items [][]*wire.Frame, binary bool, err error) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	ct := r.Header.Get("Content-Type")
	if mt, _, mtErr := mime.ParseMediaType(ct); mtErr == nil && mt == wire.BatchContentType {
		dec := wire.NewDecoder(body)
		dec.SetMaxFrameBytes(int(min(s.cfg.MaxBodyBytes, int64(wire.DefaultMaxFrameBytes))))
		header, n, hErr := dec.ReadBatchHeader(maxStreamHeaderBytes)
		if hErr != nil {
			return req, nil, true, hErr
		}
		jdec := json.NewDecoder(bytes.NewReader(header))
		jdec.DisallowUnknownFields()
		if jErr := jdec.Decode(&req); jErr != nil {
			return req, nil, true, fmt.Errorf("batch header: %w", jErr)
		}
		if req.Items != nil {
			return req, nil, true, errors.New(`binary batches carry items as frame groups, not as JSON "items"`)
		}
		if n > maxBatchItems {
			return req, nil, true, fmt.Errorf("batch declares %d items (limit %d)", n, maxBatchItems)
		}
		// Grow as items actually arrive: n is attacker-chosen and a missing
		// group surfaces as truncation below.
		items = make([][]*wire.Frame, 0, min(n, 1024))
		for i := 0; i < n; i++ {
			m, mErr := dec.ReadBatchItemHeader()
			if mErr != nil {
				return req, nil, true, fmt.Errorf("batch item %d of %d: %w", i, n, mErr)
			}
			var group []*wire.Frame
			for j := 0; j < m; j++ {
				f, fErr := dec.Decode()
				if fErr != nil {
					return req, nil, true, fmt.Errorf("batch item %d frame %d of %d: %w", i, j, m, fErr)
				}
				group = append(group, f)
			}
			items = append(items, group)
		}
		// An item count that undersells the body would silently drop data.
		if _, tErr := dec.Decode(); tErr != io.EOF {
			return req, nil, true, fmt.Errorf("batch declares %d items but carries more", n)
		}
		return req, items, true, nil
	}
	jdec := json.NewDecoder(body)
	jdec.DisallowUnknownFields()
	err = jdec.Decode(&req)
	return req, nil, false, err
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ro := reqObsFrom(r.Context())
	endParse := ro.stage(stageParse)
	defer endParse() // idempotent; covers the early error returns
	req, wireItems, binary, err := s.decodeBatchRequest(w, r)
	if err != nil {
		writeDecodeError(w, err)
		return
	}
	if binary {
		s.m.batchBinary.Add(1)
	}
	if strings.TrimSpace(req.Spec) == "" {
		writeError(w, http.StatusBadRequest, "empty spec")
		return
	}
	if req.Workers < 0 || req.Parallel < 0 {
		writeError(w, http.StatusBadRequest, "workers and parallel must be >= 0")
		return
	}
	n := len(req.Items)
	if binary {
		n = len(wireItems)
	}
	if n == 0 {
		writeError(w, http.StatusBadRequest, "batch has no items")
		return
	}
	if n > maxBatchItems {
		writeError(w, http.StatusBadRequest, "batch declares %d items (limit %d)", n, maxBatchItems)
		return
	}
	doc, err := spec.ParseDocument(strings.NewReader(req.Spec))
	endParse()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if doc.Dataset != "" {
		writeError(w, http.StatusBadRequest,
			"spec uses dataset %q: batch items ship their own factors; query resident datasets with /v1/query", doc.Dataset)
		return
	}
	switch doc.Domain {
	case spec.DomainFloat:
		serveBatchDomain(s, w, r, start, &req, doc, wireItems, s.eng, floatCodec)
	case spec.DomainInt:
		serveBatchDomain(s, w, r, start, &req, doc, wireItems, s.engInt, intCodec)
	case spec.DomainBool:
		serveBatchDomain(s, w, r, start, &req, doc, wireItems, s.engBool, boolCodec)
	case spec.DomainTropical:
		serveBatchDomain(s, w, r, start, &req, doc, wireItems, s.eng, tropicalCodec)
	default:
		writeError(w, http.StatusBadRequest, "unsupported spec domain %q", doc.Domain)
	}
}

// serveBatchDomain is the domain-generic tail of handleBatch: build the
// typed query once, decode and validate every item's factors up front
// (any malformed item fails the whole batch with 400 before any work
// runs), then prepare once and pipeline the items through core.RunBatch
// under one MaxInflight slot.
func serveBatchDomain[V any](s *Server, w http.ResponseWriter, r *http.Request, start time.Time,
	req *BatchRequest, doc *spec.Document, wireItems [][]*wire.Frame,
	eng *core.Engine[V], cv domainCodec[V]) {

	ro := reqObsFrom(r.Context())
	endResolve := ro.stage(stageResolve)
	defer endResolve()
	q, layout, err := cv.build(doc)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Decode every item before claiming the run slot: body-paced work must
	// not pin the concurrency bound, and a malformed item anywhere rejects
	// the batch before any item has run.
	var sets [][]*factor.Factor[V]
	if wireItems != nil {
		sets = make([][]*factor.Factor[V], len(wireItems))
		for i, group := range wireItems {
			if group == nil {
				continue // zero frames: run the spec's own data
			}
			if sets[i], err = buildFactorsWire(q, layout, group, cv); err != nil {
				writeError(w, http.StatusBadRequest, "batch item %d: %v", i, err)
				return
			}
		}
	} else {
		sets = make([][]*factor.Factor[V], len(req.Items))
		for i, item := range req.Items {
			if item.Factors == nil {
				continue
			}
			if sets[i], err = buildFactorsJSON(q, layout, item.Factors, cv); err != nil {
				writeError(w, http.StatusBadRequest, "batch item %d: %v", i, err)
				return
			}
		}
	}
	endResolve()

	streaming := acceptsMediaType(r, wire.ResultContentType)

	ctx, cancel := context.WithTimeout(r.Context(), s.queryTimeout(req.TimeoutMS))
	defer cancel()

	opts := core.DefaultOptions()
	opts.Workers = req.Workers

	// One run slot covers the whole batch — prepare through the last item.
	// MaxInflight is connection-level backpressure: a batch is one request,
	// and its internal parallelism is bounded separately below.
	if !s.acquireRunSlot() {
		s.m.rejected.Add(1)
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.retryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests,
			"server is at its %d-run concurrency bound, retry later", s.cfg.MaxInflight)
		return
	}
	defer s.releaseRunSlot()

	endPrep := ro.stage(stagePrepare)
	prep, err := eng.PrepareCtx(ctx, q, opts)
	endPrep()
	if err != nil {
		s.writeRunError(w, ctx, err)
		return
	}
	ro.setQuery(cv.name, "", prep.ShapeKey())

	parallel := req.Parallel
	if parallel <= 0 {
		parallel = s.cfg.Workers
		if parallel <= 0 {
			parallel = runtime.GOMAXPROCS(0)
		}
	}
	if parallel > len(sets) {
		parallel = len(sets)
	}

	if streaming {
		s.m.batchStreams.Add(1)
		serveBatchStream(s, w, ctx, ro, req, q, prep, sets, parallel, cv, start)
		return
	}

	items := make([]BatchItemResult, len(sets))
	completed := 0
	var firstErr error
	endExec := ro.stage(stageExecute)
	ro.runLabeled(ctx, func(ctx context.Context) {
		err = prep.RunBatch(ctx, sets, parallel, func(i int, res *core.Result[V], elapsed time.Duration, runErr error) {
			// Serialized by RunBatch: plain writes are safe here.
			items[i] = encodeBatchItem(cv, q, i, res, runErr, elapsed)
			ro.recordItemSpan(i, time.Now().Add(-elapsed), elapsed, runErr != nil)
			if runErr != nil {
				if firstErr == nil {
					firstErr = runErr
				}
				s.m.batchItemErr.Add(1)
				return
			}
			completed++
		})
	})
	endExec()
	s.m.batchItems.Add(int64(len(sets)))
	if completed == 0 {
		// Nothing to report: surface the failure as a plain error response
		// (deadline → 504, disconnect → 499), like a single query would.
		if firstErr == nil {
			firstErr = err
		}
		s.writeRunError(w, ctx, firstErr)
		return
	}
	s.m.countDomain(cv.name)
	status := BatchStatusOK
	if completed < len(sets) {
		status = BatchStatusPartial
	}
	endEncode := ro.stage(stageEncode)
	resp := &BatchResponse{
		Domain:    cv.name,
		Plan:      planSummary(prep.Plan(), q.VarName),
		Items:     items,
		Completed: completed,
		Status:    status,
		ElapsedMS: durationMS(time.Since(start)),
	}
	endEncode()
	resp.Trace = ro.traceData()
	writeJSON(w, http.StatusOK, resp)
}

// encodeBatchItem renders one item outcome.  elapsed is the item's own
// run wall time as measured by RunBatch (zero for items aborted before
// admission).
func encodeBatchItem[V any](cv domainCodec[V], q *core.Query[V], index int,
	res *core.Result[V], runErr error, elapsed time.Duration) BatchItemResult {

	item := BatchItemResult{Index: index, ElapsedMS: durationMS(elapsed)}
	if runErr != nil {
		item.Error = runErr.Error()
		return item
	}
	item.Stats = RunStats{
		Eliminations:     res.Stats.Eliminations,
		IntermediateRows: res.Stats.IntermediateRows,
		MaxIntermediate:  res.Stats.MaxIntermediate,
		JoinProbes:       res.Stats.Join.Probes,
	}
	if q.NumFree == 0 {
		item.Value = cv.encode(res.Scalar())
		return item
	}
	tuples := res.Output.Tuples()
	if tuples == nil {
		tuples = [][]int{}
	}
	values := res.Output.Values
	if values == nil {
		values = []V{}
	}
	out := &OutputData{Tuples: tuples, Values: cv.encodeColumn(values)}
	for _, v := range res.Output.Vars {
		out.Vars = append(out.Vars, q.VarName(v))
	}
	item.Output = out
	return item
}

// outputFrame renders a free-variable output factor as one wire frame:
// the factor's flat row block and native value column are adopted without
// copying (the frame is written, never mutated).
func outputFrame[V any](cv domainCodec[V], out *factor.Factor[V]) *wire.Frame {
	f := &wire.Frame{Domain: cv.wireDom, Arity: out.Arity(), Rows: out.Rows()}
	switch col := any(out.Values).(type) {
	case []float64:
		f.Floats = col
	case []int64:
		f.Ints = col
	case []bool:
		f.Bools = col
	}
	return f
}

// encodeBinaryQueryResponse renders a completed /v1/query run as a binary
// factor stream: the QueryResponse JSON (Output carrying only Vars) as
// the envelope header, then zero frames (scalar result — the value stays
// in the header) or one frame with the free-variable output.  The frame's
// value column is the run's native column, so float bits — including the
// non-finite tropical identities — travel exactly.
func encodeBinaryQueryResponse[V any](cv domainCodec[V], q *core.Query[V],
	prep *core.PreparedQuery[V], res *core.Result[V], start time.Time, tr *obs.TraceData) ([]byte, error) {

	resp := &QueryResponse{
		Domain: cv.name,
		Plan:   planSummary(prep.Plan(), q.VarName),
		Stats: RunStats{
			Eliminations:     res.Stats.Eliminations,
			IntermediateRows: res.Stats.IntermediateRows,
			MaxIntermediate:  res.Stats.MaxIntermediate,
			JoinProbes:       res.Stats.Join.Probes,
		},
		ElapsedMS: durationMS(time.Since(start)),
		Trace:     tr,
	}
	var frame *wire.Frame
	if q.NumFree == 0 {
		resp.Value = cv.encode(res.Scalar())
	} else {
		out := &OutputData{}
		for _, v := range res.Output.Vars {
			out.Vars = append(out.Vars, q.VarName(v))
		}
		resp.Output = out
		frame = outputFrame(cv, res.Output)
	}
	header, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	var body bytes.Buffer
	enc := wire.NewEncoder(&body)
	nframes := 0
	if frame != nil {
		nframes = 1
	}
	if err := enc.WriteStreamHeader(header, nframes); err != nil {
		return nil, err
	}
	if frame != nil {
		if err := enc.Encode(frame); err != nil {
			return nil, err
		}
	}
	return body.Bytes(), nil
}

// serveBatchStream is the streamed half of serveBatchDomain: a 200 with
// Content-Type application/x-faq-results, the stream header, then one
// result record flushed per completed item (in completion order) and the
// end record with the batch summary.  The status code is committed before
// the first item runs, so runtime failures are reported in-band: failed
// items as error records, the overall outcome in the end record's status.
func serveBatchStream[V any](s *Server, w http.ResponseWriter, ctx context.Context,
	ro *reqObs, req *BatchRequest, q *core.Query[V], prep *core.PreparedQuery[V],
	sets [][]*factor.Factor[V], parallel int, cv domainCodec[V], start time.Time) {

	header, err := json.Marshal(&BatchStreamHeader{
		Domain: cv.name,
		Plan:   planSummary(prep.Plan(), q.VarName),
		Items:  len(sets),
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding stream header: %v", err)
		return
	}
	w.Header().Set("Content-Type", wire.ResultContentType)
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	enc := wire.NewEncoder(w)
	if err := enc.WriteResultHeader(header); err != nil {
		return // client went away; items were never started
	}
	rc.Flush()

	completed := 0
	endExec := ro.stage(stageExecute)
	ro.runLabeled(ctx, func(ctx context.Context) {
		prep.RunBatch(ctx, sets, parallel, func(i int, res *core.Result[V], elapsed time.Duration, runErr error) {
			// Serialized by RunBatch: the encoder and counters are safe.
			item := encodeBatchItem(cv, q, i, res, runErr, elapsed)
			ro.recordItemSpan(i, time.Now().Add(-elapsed), elapsed, runErr != nil)
			rf := &wire.ResultFrame{Index: i}
			if runErr != nil {
				s.m.batchItemErr.Add(1)
				rf.Kind = wire.ResultError
			} else {
				completed++
				rf.Kind = wire.ResultItem
				if item.Output != nil {
					// The frame carries the output data; the record header
					// keeps only the variable names.
					rf.Output = outputFrame(cv, res.Output)
					item.Output = &OutputData{Vars: item.Output.Vars}
				}
			}
			hdr, mErr := json.Marshal(&item)
			if mErr != nil {
				return // unrepresentable item; the end record's count reflects it
			}
			rf.Header = hdr
			if enc.EncodeResult(rf) == nil {
				rc.Flush()
			}
		})
	})
	endExec()
	s.m.batchItems.Add(int64(len(sets)))
	if completed > 0 {
		s.m.countDomain(cv.name)
	}
	status := BatchStatusOK
	if completed < len(sets) {
		status = BatchStatusPartial
	}
	summary, err := json.Marshal(&BatchSummary{
		Completed: completed,
		Status:    status,
		ElapsedMS: durationMS(time.Since(start)),
		Trace:     ro.traceData(),
	})
	if err != nil {
		return
	}
	if enc.EncodeResult(&wire.ResultFrame{
		Kind:   wire.ResultEnd,
		Index:  completed,
		Header: summary,
	}) == nil {
		rc.Flush()
	}
}
