package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"github.com/faqdb/faq/internal/wire"
)

// triEdge is the deterministic edge predicate shared by the inline specs
// and the uploaded frames, so the two query paths see identical data.  The
// off-diagonal-complete graph guarantees a nonzero triangle count at every
// size, so a wrong or stale answer cannot hide behind an empty result.
func triEdge(a, c int) bool { return a != c }

// triFrames builds the three triangle edge factors as wire frames, with a
// distinct value per edge so permutation or column mixups change answers.
func triFrames(dom wire.Domain, size int) []*wire.Frame {
	frames := make([]*wire.Frame, 3)
	for i := range frames {
		f := &wire.Frame{Domain: dom, Arity: 2}
		for a := 0; a < size; a++ {
			for c := 0; c < size; c++ {
				if !triEdge(a, c) {
					continue
				}
				f.Rows = append(f.Rows, int32(a), int32(c))
				switch dom {
				case wire.DomainFloat, wire.DomainTropical:
					f.Floats = append(f.Floats, float64(a*size+c+1))
				case wire.DomainInt:
					f.Ints = append(f.Ints, int64(a*size+c+1))
				case wire.DomainBool:
					f.Bools = append(f.Bools, true)
				}
			}
		}
		frames[i] = f
	}
	return frames
}

// triDomSpec renders the triangle spec for one domain, either with inline
// data (refs=false) or as @<i> references against a dataset (refs=true).
// The inline data matches triFrames exactly.
func triDomSpec(dom wire.Domain, size, nfree int, refs bool, dataset string) string {
	var b strings.Builder
	agg, domLine := "sum", ""
	switch dom {
	case wire.DomainInt:
		domLine = "domain int\n"
	case wire.DomainBool:
		agg, domLine = "or", "domain bool\n"
	case wire.DomainTropical:
		agg, domLine = "min", "domain tropical\n"
	}
	b.WriteString(domLine)
	if refs {
		fmt.Fprintf(&b, "use %s\n", dataset)
	}
	for i, n := range []string{"x", "y", "z"} {
		a := agg
		if i < nfree {
			a = "free"
		}
		fmt.Fprintf(&b, "var %s %d %s\n", n, size, a)
	}
	for i, pair := range [][2]string{{"x", "y"}, {"y", "z"}, {"x", "z"}} {
		if refs {
			fmt.Fprintf(&b, "factor %s %s @%d\n", pair[0], pair[1], i)
			continue
		}
		fmt.Fprintf(&b, "factor %s %s\n", pair[0], pair[1])
		for a := 0; a < size; a++ {
			for c := 0; c < size; c++ {
				if !triEdge(a, c) {
					continue
				}
				if dom == wire.DomainBool {
					fmt.Fprintf(&b, "%d %d = 1\n", a, c)
				} else {
					fmt.Fprintf(&b, "%d %d = %d\n", a, c, a*size+c+1)
				}
			}
		}
		b.WriteString("end\n")
	}
	return b.String()
}

func TestDatasetEndpointsWithoutStore(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	if _, err := c.Datasets(ctx); err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("list without store: %v, want 503", err)
	}
	if _, err := c.PutDataset(ctx, "tri", triFrames(wire.DomainFloat, 4)); err == nil ||
		!strings.Contains(err.Error(), "503") {
		t.Fatalf("put without store: %v, want 503", err)
	}
	if err := c.DeleteDataset(ctx, "tri"); err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("delete without store: %v, want 503", err)
	}
	useSpec := triDomSpec(wire.DomainFloat, 4, 0, true, "tri")
	if _, err := c.Query(ctx, &QueryRequest{Spec: useSpec}); err == nil ||
		!strings.Contains(err.Error(), "503") {
		t.Fatalf("use-spec without store: %v, want 503", err)
	}
	if st, err := c.Statsz(ctx); err != nil || st.Store != nil {
		t.Fatalf("statsz without store: store=%+v err=%v", st.Store, err)
	}
}

func TestDatasetLifecycle(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 1, DataDir: t.TempDir()})
	ctx := context.Background()

	info, err := c.PutDataset(ctx, "tri", triFrames(wire.DomainFloat, 4))
	if err != nil {
		t.Fatalf("PutDataset: %v", err)
	}
	if info.Name != "tri" || info.Domain != "float" || len(info.Factors) != 3 || info.Bytes <= 0 {
		t.Fatalf("put info = %+v", info)
	}
	for i, f := range info.Factors {
		if f.Arity != 2 || f.Rows <= 0 || f.Bytes <= 0 || len(f.CRC32) != 8 {
			t.Fatalf("factor %d info = %+v", i, f)
		}
	}
	got, err := c.Dataset(ctx, "tri")
	if err != nil {
		t.Fatalf("Dataset: %v", err)
	}
	if !reflect.DeepEqual(info, got) {
		t.Fatalf("GET %+v != PUT %+v", got, info)
	}
	list, err := c.Datasets(ctx)
	if err != nil || len(list) != 1 || list[0].Name != "tri" {
		t.Fatalf("Datasets = %+v, %v", list, err)
	}
	if err := c.DeleteDataset(ctx, "tri"); err != nil {
		t.Fatalf("DeleteDataset: %v", err)
	}
	if _, err := c.Dataset(ctx, "tri"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("GET after delete: %v, want 404", err)
	}
	if err := c.DeleteDataset(ctx, "tri"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("double delete: %v, want 404", err)
	}
}

func TestDatasetPutErrors(t *testing.T) {
	_, ts, c := newTestServer(t, Config{Workers: 1, DataDir: t.TempDir()})
	ctx := context.Background()

	if _, err := c.PutDataset(ctx, "bad/name", triFrames(wire.DomainFloat, 4)); err == nil ||
		!strings.Contains(err.Error(), "400") {
		t.Fatalf("traversal name: %v, want 400", err)
	}
	if _, err := c.PutDataset(ctx, "empty", nil); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("no frames: %v, want 400", err)
	}
	mixed := []*wire.Frame{triFrames(wire.DomainFloat, 4)[0], triFrames(wire.DomainInt, 4)[0]}
	if _, err := c.PutDataset(ctx, "mixed", mixed); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("mixed domains: %v, want 400", err)
	}

	// A PUT that is not a binary factor stream is rejected by media type.
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/datasets/tri", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/plain")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("text/plain upload: HTTP %d, want 415", resp.StatusCode)
	}
}

func TestDatasetQueryErrors(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 1, DataDir: t.TempDir()})
	ctx := context.Background()

	useSpec := triDomSpec(wire.DomainFloat, 4, 0, true, "ghost")
	if _, err := c.Query(ctx, &QueryRequest{Spec: useSpec}); err == nil ||
		!strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown dataset: %v, want 404", err)
	}

	if _, err := c.PutDataset(ctx, "tri", triFrames(wire.DomainFloat, 4)); err != nil {
		t.Fatal(err)
	}
	// A use spec must not also ship factor data.
	shipped := &QueryRequest{
		Spec:    triDomSpec(wire.DomainFloat, 4, 0, true, "tri"),
		Factors: []FactorData{{Tuples: [][]int{{0, 1}}, Values: []float64{1}}},
	}
	if _, err := c.Query(ctx, shipped); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("use + shipped factors: %v, want 400", err)
	}
	// The spec's domain must match the dataset's.
	intSpec := triDomSpec(wire.DomainInt, 4, 0, true, "tri")
	if _, err := c.Query(ctx, &QueryRequest{Spec: intSpec}); err == nil ||
		!strings.Contains(err.Error(), "400") {
		t.Fatalf("domain mismatch: %v, want 400", err)
	}
	// A reference past the stored factor count is the spec's mistake.
	refSpec := strings.Replace(triDomSpec(wire.DomainFloat, 4, 0, true, "tri"), "@2", "@9", 1)
	if _, err := c.Query(ctx, &QueryRequest{Spec: refSpec}); err == nil ||
		!strings.Contains(err.Error(), "400") {
		t.Fatalf("out-of-range ref: %v, want 400", err)
	}
}

// TestDatasetQueryEquivalence is the equivalence harness of the resident
// path: for every domain and worker count, a query over an uploaded
// dataset must match the same query with inline data bit for bit — value,
// output listing and run stats.
func TestDatasetQueryEquivalence(t *testing.T) {
	_, _, c := newTestServer(t, Config{DataDir: t.TempDir()})
	ctx := context.Background()
	const size = 6
	for _, dom := range []wire.Domain{wire.DomainFloat, wire.DomainInt, wire.DomainBool, wire.DomainTropical} {
		name := fmt.Sprintf("eq-%d", int(dom))
		if _, err := c.PutDataset(ctx, name, triFrames(dom, size)); err != nil {
			t.Fatalf("PutDataset %v: %v", dom, err)
		}
		for _, nfree := range []int{0, 2} {
			for _, workers := range []int{1, 4} {
				t.Run(fmt.Sprintf("%v/free%d/w%d", dom, nfree, workers), func(t *testing.T) {
					inline, err := c.Query(ctx, &QueryRequest{
						Spec: triDomSpec(dom, size, nfree, false, ""), Workers: workers,
					})
					if err != nil {
						t.Fatalf("inline query: %v", err)
					}
					byName, err := c.Query(ctx, &QueryRequest{
						Spec: triDomSpec(dom, size, nfree, true, name), Workers: workers,
					})
					if err != nil {
						t.Fatalf("dataset query: %v", err)
					}
					if !reflect.DeepEqual(inline.Value, byName.Value) {
						t.Fatalf("value: inline %v != dataset %v", inline.Value, byName.Value)
					}
					if !reflect.DeepEqual(inline.Output, byName.Output) {
						t.Fatalf("output: inline %+v != dataset %+v", inline.Output, byName.Output)
					}
					if !reflect.DeepEqual(inline.Stats, byName.Stats) {
						t.Fatalf("stats: inline %+v != dataset %+v", inline.Stats, byName.Stats)
					}
					if inline.Domain != byName.Domain {
						t.Fatalf("domain: %q != %q", inline.Domain, byName.Domain)
					}
				})
			}
		}
	}
}

// TestDatasetResidentReuse checks the prepared-query registry: repeats hit
// the resident entry, a replace invalidates it, and /statsz counts both.
func TestDatasetResidentReuse(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 1, DataDir: t.TempDir()})
	ctx := context.Background()

	if _, err := c.PutDataset(ctx, "tri", triFrames(wire.DomainFloat, 4)); err != nil {
		t.Fatal(err)
	}
	useSpec := triDomSpec(wire.DomainFloat, 4, 0, true, "tri")
	first, err := c.Query(ctx, &QueryRequest{Spec: useSpec})
	if err != nil {
		t.Fatalf("first query: %v", err)
	}
	second, err := c.Query(ctx, &QueryRequest{Spec: useSpec})
	if err != nil {
		t.Fatalf("second query: %v", err)
	}
	if !reflect.DeepEqual(first.Value, second.Value) {
		t.Fatalf("resident hit changed the answer: %v != %v", first.Value, second.Value)
	}

	st, err := c.Statsz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Store == nil {
		t.Fatal("statsz has no store section")
	}
	if st.Store.Datasets != 1 || st.Store.BytesMapped <= 0 {
		t.Fatalf("store statsz = %+v", st.Store)
	}
	if st.Store.DatasetQueries != 2 || st.Store.ResidentPrepared != 1 {
		t.Fatalf("queries=%d resident=%d, want 2 and 1", st.Store.DatasetQueries, st.Store.ResidentPrepared)
	}
	if st.Store.ChecksumFailures != 0 || st.Store.LoadErrors != 0 {
		t.Fatalf("unexpected failures in %+v", st.Store)
	}

	// Replacing the dataset must evict the resident entry and serve the
	// new data, not the old mapping.
	bigger := triFrames(wire.DomainFloat, 4)
	for _, f := range bigger {
		for i := range f.Floats {
			f.Floats[i] *= 2
		}
	}
	if _, err := c.PutDataset(ctx, "tri", bigger); err != nil {
		t.Fatal(err)
	}
	replaced, err := c.Query(ctx, &QueryRequest{Spec: useSpec})
	if err != nil {
		t.Fatalf("query after replace: %v", err)
	}
	if reflect.DeepEqual(first.Value, replaced.Value) {
		t.Fatalf("replace served stale data: still %v", replaced.Value)
	}
	want := fval(t, first) * 8 // three factors, each value doubled
	if got := fval(t, replaced); got != want {
		t.Fatalf("replaced value = %v, want %v", got, want)
	}
}

// TestDatasetColdRestart uploads through one server, shuts it down, and
// starts a second over the same directory: the dataset must be served from
// the verified on-disk file with no re-upload, bit-identical.
func TestDatasetColdRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	useSpec := triDomSpec(wire.DomainFloat, 5, 0, true, "tri")

	warm, err := New(Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tsWarm := httptest.NewServer(warm.Handler())
	cw := NewClient(tsWarm.URL)
	cw.HTTPClient = tsWarm.Client()
	if _, err := cw.PutDataset(ctx, "tri", triFrames(wire.DomainFloat, 5)); err != nil {
		t.Fatal(err)
	}
	warmResp, err := cw.Query(ctx, &QueryRequest{Spec: useSpec})
	if err != nil {
		t.Fatal(err)
	}
	tsWarm.Close()
	warm.Close()

	_, _, cold := newTestServer(t, Config{Workers: 1, DataDir: dir})
	list, err := cold.Datasets(ctx)
	if err != nil || len(list) != 1 || list[0].Name != "tri" {
		t.Fatalf("cold catalog = %+v, %v", list, err)
	}
	coldResp, err := cold.Query(ctx, &QueryRequest{Spec: useSpec})
	if err != nil {
		t.Fatalf("cold query: %v", err)
	}
	if !reflect.DeepEqual(warmResp.Value, coldResp.Value) {
		t.Fatalf("cold restart changed the answer: %v != %v", warmResp.Value, coldResp.Value)
	}
	st, err := cold.Statsz(ctx)
	if err != nil || st.Store == nil {
		t.Fatalf("cold statsz: %+v, %v", st, err)
	}
	if st.Store.Datasets != 1 || st.Store.LoadErrors != 0 || st.Store.ChecksumFailures != 0 {
		t.Fatalf("cold store statsz = %+v", st.Store)
	}
}

// TestDatasetDeltaSeed seeds a /v1/delta session from a dataset: the
// session evolves a private copy, and the dataset itself stays untouched.
func TestDatasetDeltaSeed(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 1, DataDir: t.TempDir()})
	ctx := context.Background()
	const size = 4

	if _, err := c.PutDataset(ctx, "tri", triFrames(wire.DomainFloat, size)); err != nil {
		t.Fatal(err)
	}
	useSpec := triDomSpec(wire.DomainFloat, size, 0, true, "tri")
	base, err := c.Query(ctx, &QueryRequest{Spec: useSpec})
	if err != nil {
		t.Fatal(err)
	}

	// Insert one edge that the deterministic predicate excludes.
	resp, err := c.Delta(ctx, &DeltaRequest{
		Spec: useSpec,
		Deltas: []DeltaData{
			{Factor: 0, Op: "insert", Tuples: [][]int{{0, 0}}, Values: []float64{5}},
		},
	})
	if err != nil {
		t.Fatalf("Delta: %v", err)
	}
	if resp.Applied != 1 {
		t.Fatalf("applied = %d, want 1", resp.Applied)
	}
	// Oracle: the inline spec with the same extra row in factor 0.
	inline := triDomSpec(wire.DomainFloat, size, 0, false, "")
	oracleSpec := strings.Replace(inline, "factor x y\n", "factor x y\n0 0 = 5\n", 1)
	want := solveSpec(t, oracleSpec).Scalar()
	got, err := resp.FloatValue()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("delta value = %v, oracle = %v", got, want)
	}

	// The session evolved a copy: querying the dataset again must give the
	// original answer.
	again, err := c.Query(ctx, &QueryRequest{Spec: useSpec})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Value, again.Value) {
		t.Fatalf("delta session mutated the dataset: %v != %v", again.Value, base.Value)
	}
}
