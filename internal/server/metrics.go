package server

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyRingSize is the window of recent query latencies kept for the
// /statsz percentiles.  A power of two keeps the modulo cheap; 2048 samples
// are plenty for a p99 with a few percent of noise.
const latencyRingSize = 2048

// latencyRing is a fixed-size ring of the most recent query latencies.  A
// small mutex (observe is two stores, snapshot a copy) keeps it simpler and
// safer than a lock-free ring at the request rates a planner-bound daemon
// can sustain.
type latencyRing struct {
	mu  sync.Mutex
	buf [latencyRingSize]time.Duration
	n   int64 // total observations; buf holds the last min(n, size)
}

func (r *latencyRing) observe(d time.Duration) {
	r.mu.Lock()
	r.buf[r.n%latencyRingSize] = d
	r.n++
	r.mu.Unlock()
}

// quantiles returns the given quantiles (in [0, 1]) plus the window max
// and the window size (how many samples they were computed over, at most
// latencyRingSize).  All zero when nothing has been observed.
func (r *latencyRing) quantiles(qs ...float64) (out []time.Duration, max time.Duration, window int64) {
	r.mu.Lock()
	n := r.n
	if n > latencyRingSize {
		n = latencyRingSize
	}
	samples := make([]time.Duration, n)
	copy(samples, r.buf[:n])
	r.mu.Unlock()

	out = make([]time.Duration, len(qs))
	if n == 0 {
		return out, 0, 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for i, q := range qs {
		idx := int(q * float64(n-1))
		out[i] = samples[idx]
	}
	return out, samples[n-1], n
}

// metrics are the server-level counters behind /statsz.
type metrics struct {
	start        time.Time
	requests     atomic.Int64 // all requests, any endpoint
	ok           atomic.Int64 // responses with status < 400
	errs         atomic.Int64 // responses with status >= 400
	inFlight     atomic.Int64 // non-monitoring requests currently being handled
	queries      atomic.Int64 // /v1/query requests
	binary       atomic.Int64 // /v1/query requests with binary factor streams
	binaryResp   atomic.Int64 // /v1/query responses in the binary encoding
	rejected     atomic.Int64 // query/batch requests shed with 429 (backpressure)
	batches      atomic.Int64 // /v1/batch requests
	batchBinary  atomic.Int64 // /v1/batch requests with the binary envelope
	batchStreams atomic.Int64 // /v1/batch responses streamed as result records
	batchItems   atomic.Int64 // executed batch items
	batchItemErr atomic.Int64 // batch items that failed
	deltas       atomic.Int64 // /v1/delta requests
	deltasBinary atomic.Int64 // /v1/delta requests with binary delta streams
	datasetQ     atomic.Int64 // /v1/query requests served from resident datasets
	lat          latencyRing  // /v1/query + /v1/delta latencies
	domFloat     atomic.Int64 // executed queries per value domain
	domInt       atomic.Int64
	domBool      atomic.Int64
	domTrop      atomic.Int64
}

// countDomain bumps the per-domain executed-query counter.
func (m *metrics) countDomain(name string) {
	switch name {
	case "float":
		m.domFloat.Add(1)
	case "int":
		m.domInt.Add(1)
	case "bool":
		m.domBool.Add(1)
	case "tropical":
		m.domTrop.Add(1)
	}
}

func (m *metrics) snapshot() ServerStatz {
	qs, max, window := m.lat.quantiles(0.50, 0.90, 0.99)
	return ServerStatz{
		Requests:      m.requests.Load(),
		RequestsOK:    m.ok.Load(),
		RequestsErr:   m.errs.Load(),
		InFlight:      m.inFlight.Load(),
		Queries:       m.queries.Load(),
		QueriesBinary: m.binary.Load(),
		QueriesByDomain: map[string]int64{
			"float":    m.domFloat.Load(),
			"int":      m.domInt.Load(),
			"bool":     m.domBool.Load(),
			"tropical": m.domTrop.Load(),
		},
		QueriesBinaryResp: m.binaryResp.Load(),
		Deltas:            m.deltas.Load(),
		DeltasBinary:      m.deltasBinary.Load(),
		Rejected:          m.rejected.Load(),
		Batches:           m.batches.Load(),
		BatchesBinary:     m.batchBinary.Load(),
		BatchStreams:      m.batchStreams.Load(),
		BatchItems:        m.batchItems.Load(),
		BatchItemsErr:     m.batchItemErr.Load(),
		LatencyP50MS:      durationMS(qs[0]),
		LatencyP90MS:      durationMS(qs[1]),
		LatencyP99MS:      durationMS(qs[2]),
		LatencyMaxMS:      durationMS(max),
		LatencyWindow:     window,
		Goroutines:        runtime.NumGoroutine(),
	}
}

func durationMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
