package server

import (
	"context"
	"fmt"

	"github.com/faqdb/faq/internal/core"
	"github.com/faqdb/faq/internal/hypergraph"
)

// BuildPlanReport runs the Figure-1 pipeline on a shape and collects the
// result: the expression trees, the precedence poset, every planner's
// ordering and width, and the fhtw lower bound.  name maps variable ids to
// display names; nil falls back to x0, x1, ...  The exact DP — the only
// exponential stage — observes ctx, so a serving handler can bound an
// adversarially wide shape.  This is the single source of the plan report
// served by /v1/plan and printed by faqplan -json.
func BuildPlanReport(ctx context.Context, s *core.Shape, name func(int) string) (*PlanReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if name == nil {
		name = func(v int) string { return fmt.Sprintf("x%d", v) }
	}
	rep := &PlanReport{
		Hypergraph: s.H.String(),
		NumFree:    s.NumFree,
		Tags:       append([]string(nil), s.Tags...),
	}
	for v := 0; v < s.N; v++ {
		rep.Vars = append(rep.Vars, name(v))
	}

	scoped := core.BuildExprTreeScoped(s)
	rep.ExpressionTree = scoped.Pretty(name)
	sound := core.BuildExprTree(s)
	if sound.Render() != scoped.Render() {
		rep.SoundExpressionTree = sound.Pretty(name)
	}

	poset, err := core.NewPoset(sound, s.N)
	if err != nil {
		return nil, err
	}
	for u := 0; u < s.N; u++ {
		for v := 0; v < s.N; v++ {
			if poset.Less(u, v) {
				rep.PosetPairs++
			}
		}
	}
	rep.LinearExtensions = poset.CountLinearExtensions(10000)

	wc := hypergraph.NewWidthCalc(s.H)
	addPlan := func(p *core.Plan, err error) {
		if err != nil {
			return
		}
		rep.Plans = append(rep.Plans, planSummary(p, name))
	}
	addPlan(core.PlanExpression(s, wc))
	if s.N <= 18 { // the exact DP is exponential in n
		p, err := core.PlanExactCtx(ctx, s, wc)
		if err != nil && ctx.Err() != nil {
			return nil, err // cancelled mid-DP: report the cancellation
		}
		addPlan(p, err)
	}
	addPlan(core.PlanGreedy(s, wc))
	addPlan(core.PlanApprox(s, wc, core.GreedyDecomp))
	rep.FHTW, _ = wc.FHTW()
	return rep, nil
}

// planSummary renders a plan's ordering through the variable-name map.
func planSummary(p *core.Plan, name func(int) string) PlanSummary {
	sum := PlanSummary{Method: p.Method, Width: p.Width}
	for _, v := range p.Order {
		sum.Order = append(sum.Order, name(v))
	}
	return sum
}

// BuiltinExample returns a named query shape from the paper, used by
// faqplan -example and GET /v1/plan?example=.  The paper's variables are
// 1-indexed, so display names are x1..xn.
func BuiltinExample(which string) (*core.Shape, func(int) string, error) {
	mk := func(n int, tags []string, edges [][]int, idem bool) *core.Shape {
		s := &core.Shape{
			H: hypergraph.NewWithEdges(n, edges...), N: n,
			Tags: tags, IdempotentInputs: idem,
		}
		for i, t := range tags {
			if t == "⊗" {
				s.Product.Add(i)
			}
			if t == "op:sum" {
				s.NonClosed.Add(i)
			}
		}
		return s
	}
	name := func(v int) string { return fmt.Sprintf("x%d", v+1) }
	switch which {
	case "6.2":
		return mk(7,
			[]string{"op:sum", "op:sum", "op:max", "op:sum", "op:sum", "op:max", "op:max"},
			[][]int{{0, 1}, {0, 2, 4}, {0, 3}, {1, 3, 5}, {1, 6}, {2, 6}}, false), name, nil
	case "6.19":
		return mk(8,
			[]string{"op:max", "op:max", "op:sum", "op:sum", "⊗", "op:max", "⊗", "op:max"},
			[][]int{{0, 2}, {1, 3}, {2, 3}, {0, 4}, {0, 5}, {1, 5}, {1, 4, 6}, {0, 5, 6}, {1, 6, 7}}, true), name, nil
	case "5.6":
		return mk(6,
			[]string{"op:max", "op:max", "⊗", "op:sum", "op:max", "op:max"},
			[][]int{{0, 4}, {1, 4}, {0, 2, 3}, {1, 2, 5}}, true), name, nil
	case "chen-dalmau":
		n := 4
		tags := make([]string, n+1)
		var edges [][]int
		var sEdge []int
		for i := 0; i < n; i++ {
			tags[i] = "⊗"
			sEdge = append(sEdge, i)
			edges = append(edges, []int{i, n})
		}
		tags[n] = "op:max"
		edges = append(edges, sEdge)
		return mk(n+1, tags, edges, true), name, nil
	}
	return nil, nil, fmt.Errorf("unknown example %q (want 6.2, 6.19, 5.6 or chen-dalmau)", which)
}
