package server

import (
	"testing"
	"time"
)

func TestLatencyRingQuantiles(t *testing.T) {
	var r latencyRing
	qs, max := r.quantiles(0.5, 0.99)
	if qs[0] != 0 || qs[1] != 0 || max != 0 {
		t.Fatalf("empty ring: %v %v", qs, max)
	}
	for i := 1; i <= 100; i++ {
		r.observe(time.Duration(i) * time.Millisecond)
	}
	qs, max = r.quantiles(0.5, 0.99)
	if qs[0] != 50*time.Millisecond || qs[1] != 99*time.Millisecond || max != 100*time.Millisecond {
		t.Fatalf("p50=%v p99=%v max=%v", qs[0], qs[1], max)
	}
}

// TestLatencyRingWraps overfills the ring and checks only the newest window
// is reported.
func TestLatencyRingWraps(t *testing.T) {
	var r latencyRing
	for i := 0; i < latencyRingSize+10; i++ {
		r.observe(time.Duration(i))
	}
	qs, _ := r.quantiles(0)
	// The minimum surviving sample is from the newest window, not sample 0.
	if qs[0] < 10 {
		t.Fatalf("stale sample %v survived the wrap", qs[0])
	}
}
