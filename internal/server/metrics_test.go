package server

import (
	"testing"
	"time"
)

func TestLatencyRingQuantilesEmpty(t *testing.T) {
	var r latencyRing
	qs, max, window := r.quantiles(0.5, 0.9, 0.99)
	if qs[0] != 0 || qs[1] != 0 || qs[2] != 0 || max != 0 || window != 0 {
		t.Fatalf("empty ring: qs=%v max=%v window=%d", qs, max, window)
	}
}

func TestLatencyRingQuantiles(t *testing.T) {
	var r latencyRing
	for i := 1; i <= 100; i++ {
		r.observe(time.Duration(i) * time.Millisecond)
	}
	qs, max, window := r.quantiles(0.5, 0.9, 0.99)
	if qs[0] != 50*time.Millisecond || qs[1] != 90*time.Millisecond || qs[2] != 99*time.Millisecond {
		t.Fatalf("p50=%v p90=%v p99=%v", qs[0], qs[1], qs[2])
	}
	if max != 100*time.Millisecond {
		t.Fatalf("max=%v", max)
	}
	if window != 100 {
		t.Fatalf("window=%d, want 100", window)
	}
}

// TestLatencyRingWraps overfills the ring (n > latencyRingSize) and checks
// that only the newest window is reported and the window size caps at the
// ring size.
func TestLatencyRingWraps(t *testing.T) {
	var r latencyRing
	for i := 0; i < latencyRingSize+10; i++ {
		r.observe(time.Duration(i))
	}
	qs, max, window := r.quantiles(0)
	// The minimum surviving sample is from the newest window, not sample 0.
	if qs[0] < 10 {
		t.Fatalf("stale sample %v survived the wrap", qs[0])
	}
	if max != time.Duration(latencyRingSize+9) {
		t.Fatalf("max=%v, want the newest sample %d", max, latencyRingSize+9)
	}
	if window != latencyRingSize {
		t.Fatalf("window=%d, want the ring size %d", window, latencyRingSize)
	}
}
