package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"testing"

	"github.com/faqdb/faq/internal/wire"
)

// pairSpec is Σ-style two-variable spec text for one domain, with the
// factor block declared in *unsorted* variable order (y x) so both decode
// paths must apply the declaration-order permutation.
func pairSpec(domain, agg string) string {
	var b strings.Builder
	if domain != "float" {
		fmt.Fprintf(&b, "domain %s\n", domain)
	}
	fmt.Fprintf(&b, "var x 4 %s\nvar y 4 %s\n", agg, agg)
	b.WriteString("factor y x\n0 1 = 1\nend\n")
	return b.String()
}

// TestBinaryAndJSONAgreePerDomain is the cross-encoding acceptance test:
// for every value domain, shipping the same fresh factor data as JSON
// "factors" and as a binary wire stream must produce bit-identical
// results.
func TestBinaryAndJSONAgreePerDomain(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	fresh := FactorData{
		// Columns in declaration order (y, x).
		Tuples: [][]int{{0, 1}, {1, 2}, {2, 0}, {3, 3}},
		Values: []float64{2, 3, 5, 1},
	}
	boolFresh := FactorData{Tuples: fresh.Tuples, Values: []float64{1, 0, 1, 1}}

	cases := []struct {
		domain, agg string
		data        FactorData
		wireDom     wire.Domain
		check       func(t *testing.T, jr, br *QueryResponse)
	}{
		{"float", "sum", fresh, wire.DomainFloat, func(t *testing.T, jr, br *QueryResponse) {
			jv, err := jr.FloatValue()
			if err != nil {
				t.Fatal(err)
			}
			bv, err := br.FloatValue()
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(jv) != math.Float64bits(bv) || jv != 11 {
				t.Fatalf("json %v, binary %v, want 11 for both", jv, bv)
			}
		}},
		{"int", "sum", fresh, wire.DomainInt, func(t *testing.T, jr, br *QueryResponse) {
			jv, err := jr.IntValue()
			if err != nil {
				t.Fatal(err)
			}
			bv, err := br.IntValue()
			if err != nil {
				t.Fatal(err)
			}
			if jv != bv || jv != 11 {
				t.Fatalf("json %d, binary %d, want 11 for both", jv, bv)
			}
		}},
		{"bool", "or", boolFresh, wire.DomainBool, func(t *testing.T, jr, br *QueryResponse) {
			jv, err := jr.BoolValue()
			if err != nil {
				t.Fatal(err)
			}
			bv, err := br.BoolValue()
			if err != nil {
				t.Fatal(err)
			}
			if jv != bv || jv != true {
				t.Fatalf("json %v, binary %v, want true for both", jv, bv)
			}
		}},
		{"tropical", "min", fresh, wire.DomainTropical, func(t *testing.T, jr, br *QueryResponse) {
			jv, err := jr.FloatValue()
			if err != nil {
				t.Fatal(err)
			}
			bv, err := br.FloatValue()
			if err != nil {
				t.Fatal(err)
			}
			// min over the shipped costs {2, 3, 5, 1} is 1.
			if math.Float64bits(jv) != math.Float64bits(bv) || jv != 1 {
				t.Fatalf("json %v, binary %v, want 1 for both", jv, bv)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.domain, func(t *testing.T) {
			specText := pairSpec(tc.domain, tc.agg)
			jr, err := c.Query(ctx, &QueryRequest{Spec: specText, Factors: []FactorData{tc.data}})
			if err != nil {
				t.Fatalf("json query: %v", err)
			}
			br, err := c.QueryWire(ctx, &QueryRequest{Spec: specText, Factors: []FactorData{tc.data}}, tc.wireDom)
			if err != nil {
				t.Fatalf("binary query: %v", err)
			}
			if jr.Domain != tc.domain || br.Domain != tc.domain {
				t.Fatalf("response domains %q / %q, want %q", jr.Domain, br.Domain, tc.domain)
			}
			tc.check(t, jr, br)
		})
	}
}

// TestBinaryInt64Precision proves the binary encoding carries int64 values
// JSON cannot: a count beyond 2^53 survives exactly.
func TestBinaryInt64Precision(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 1})
	big := int64(1)<<60 + 3
	resp, err := c.QueryFrames(context.Background(),
		&QueryRequest{Spec: "domain int\nvar x 2 sum\nfactor x\n0 = 1\nend\n"},
		[]*wire.Frame{{Domain: wire.DomainInt, Arity: 1, Rows: []int32{1}, Ints: []int64{big}}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := resp.IntValue()
	if err != nil {
		t.Fatal(err)
	}
	if got != big {
		t.Fatalf("int64 mangled in flight: got %d, want %d", got, big)
	}
	// The JSON factor path must refuse the value rather than round it.
	_, err = c.Query(context.Background(), &QueryRequest{
		Spec:    "domain int\nvar x 2 sum\nfactor x\n0 = 1\nend\n",
		Factors: []FactorData{{Tuples: [][]int{{1}}, Values: []float64{float64(big)}}},
	})
	if err == nil {
		t.Fatal("JSON path accepted an inexact int64")
	}
}

// TestTropicalInfinityResult pins the non-finite value contract: an empty
// tropical min is +Inf, which JSON numbers cannot express — it must
// travel as the string "inf" and decode back to +Inf, not surface as a
// 200 with an empty body.
func TestTropicalInfinityResult(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 1})
	// Two factors that share variable y but no joining tuple: min over
	// the empty set of assignments.
	resp, err := c.Query(context.Background(), &QueryRequest{
		Spec: "domain tropical\nvar x 3 min\nvar y 3 min\nvar z 3 min\n" +
			"factor x y\n0 1 = 2.5\nend\nfactor y z\n2 0 = 1.5\nend\n",
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := resp.FloatValue()
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(v, 1) {
		t.Fatalf("empty tropical min: got %v, want +Inf", v)
	}
}

// TestMultiDomainPlanSharing is the acceptance test for multi-domain
// routing: every domain runs on one shared engine runtime, so an int query
// of a shape the float path already planned is a cache hit — plan misses
// do not grow per domain.
func TestMultiDomainPlanSharing(t *testing.T) {
	s, _, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	// The same triangle text in three domains: float and int share
	// aggregate tags ("op:sum"), tropical differs ("op:min").
	triangle := func(domain, agg string) string {
		var b strings.Builder
		if domain != "float" {
			fmt.Fprintf(&b, "domain %s\n", domain)
		}
		for _, v := range []string{"x", "y", "z"} {
			fmt.Fprintf(&b, "var %s 6 %s\n", v, agg)
		}
		for _, e := range [][2]string{{"x", "y"}, {"y", "z"}, {"x", "z"}} {
			fmt.Fprintf(&b, "factor %s %s\n", e[0], e[1])
			for a := 0; a < 6; a++ {
				for c := 0; c < 6; c++ {
					if a < c {
						fmt.Fprintf(&b, "%d %d = 1\n", a, c)
					}
				}
			}
			b.WriteString("end\n")
		}
		return b.String()
	}

	misses := func() int64 { return s.Engine().StatsSnapshot().PlanCacheMisses }

	fresp, err := c.Query(ctx, &QueryRequest{Spec: triangle("float", "sum")})
	if err != nil {
		t.Fatal(err)
	}
	if got := misses(); got != 1 {
		t.Fatalf("after float query: %d misses, want 1", got)
	}

	// Int, same shape: no new planning pass — the float plan serves it.
	iresp, err := c.Query(ctx, &QueryRequest{Spec: triangle("int", "sum")})
	if err != nil {
		t.Fatal(err)
	}
	if got := misses(); got != 1 {
		t.Fatalf("int query added a plan miss: %d, want 1 (shape shared across domains)", got)
	}
	fv, err := fresp.FloatValue()
	if err != nil {
		t.Fatal(err)
	}
	iv, err := iresp.IntValue()
	if err != nil {
		t.Fatal(err)
	}
	// C(6,3) = 20 triangles under the a<c support, in both algebras.
	if fv != 20 || iv != 20 {
		t.Fatalf("triangle counts: float %v, int %d, want 20", fv, iv)
	}

	// Tropical has different aggregate tags → one (and only one) new plan.
	for i := 0; i < 3; i++ {
		tresp, err := c.Query(ctx, &QueryRequest{Spec: triangle("tropical", "min")})
		if err != nil {
			t.Fatal(err)
		}
		if tv, err := tresp.FloatValue(); err != nil || tv != 3 {
			t.Fatalf("tropical cheapest triangle: %v, %v, want 3", tv, err)
		}
	}
	if got := misses(); got != 2 {
		t.Fatalf("after 3 tropical queries: %d misses, want 2 (planned once)", got)
	}

	// Repeats in every domain stay hits.
	for _, spec := range []string{triangle("float", "sum"), triangle("int", "sum")} {
		if _, err := c.Query(ctx, &QueryRequest{Spec: spec}); err != nil {
			t.Fatal(err)
		}
	}
	if got := misses(); got != 2 {
		t.Fatalf("repeat queries grew misses to %d, want 2", got)
	}

	st := s.Statsz()
	if st.Server.QueriesByDomain["float"] != 2 || st.Server.QueriesByDomain["int"] != 2 ||
		st.Server.QueriesByDomain["tropical"] != 3 {
		t.Fatalf("per-domain counters: %+v", st.Server.QueriesByDomain)
	}
}

// TestBinaryRequestErrors walks the binary decode error paths at the HTTP
// layer: each malformed stream must be a 400 (or 413), never a 5xx and
// never a hang.
func TestBinaryRequestErrors(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 1 << 20})
	specText := pairSpec("float", "sum")
	goodFrame := &wire.Frame{Domain: wire.DomainFloat, Arity: 2, Rows: []int32{0, 1}, Floats: []float64{2}}

	post := func(body []byte) int {
		resp, err := http.Post(ts.URL+"/v1/query", wire.ContentType, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var apiErr ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil || apiErr.Error == "" {
			t.Fatalf("error body missing (decode err %v)", err)
		}
		return resp.StatusCode
	}
	stream := func(header []byte, declared int, frames ...*wire.Frame) []byte {
		var buf bytes.Buffer
		enc := wire.NewEncoder(&buf)
		if err := enc.WriteStreamHeader(header, declared); err != nil {
			t.Fatal(err)
		}
		for _, f := range frames {
			if err := enc.Encode(f); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	header, err := json.Marshal(&QueryRequest{Spec: specText})
	if err != nil {
		t.Fatal(err)
	}

	if code := post([]byte("not a stream at all")); code != http.StatusBadRequest {
		t.Fatalf("garbage body: %d, want 400", code)
	}
	if code := post(stream(header, 2, goodFrame)); code != http.StatusBadRequest {
		t.Fatalf("missing frame: %d, want 400", code)
	}
	if code := post(stream(header, 0, goodFrame)); code != http.StatusBadRequest {
		t.Fatalf("undeclared trailing frame: %d, want 400", code)
	}
	if code := post(stream(header, 1, &wire.Frame{Domain: wire.DomainInt, Arity: 2,
		Rows: []int32{0, 1}, Ints: []int64{2}})); code != http.StatusBadRequest {
		t.Fatalf("domain mismatch with spec: %d, want 400", code)
	}
	if code := post(stream(header, 1, &wire.Frame{Domain: wire.DomainFloat, Arity: 3,
		Rows: []int32{0, 1, 2}, Floats: []float64{2}})); code != http.StatusBadRequest {
		t.Fatalf("arity mismatch with spec: %d, want 400", code)
	}
	jsonAndFrames, err := json.Marshal(&QueryRequest{Spec: specText,
		Factors: []FactorData{{Tuples: [][]int{{0, 1}}, Values: []float64{1}}}})
	if err != nil {
		t.Fatal(err)
	}
	if code := post(stream(jsonAndFrames, 1, goodFrame)); code != http.StatusBadRequest {
		t.Fatalf("JSON factors inside a binary stream: %d, want 400", code)
	}

	// A tiny body declaring an absurd frame count must fail fast — as a
	// length-limit 413 or a truncation 400 — without the server
	// allocating a frame slice of the declared size.
	for _, count := range []int{1 << 24, 100_000} {
		var hostile bytes.Buffer
		if err := wire.NewEncoder(&hostile).WriteStreamHeader(header, count); err != nil {
			t.Fatal(err)
		}
		code := post(hostile.Bytes())
		if code != http.StatusBadRequest && code != http.StatusRequestEntityTooLarge {
			t.Fatalf("hostile frame count %d: %d, want 400 or 413", count, code)
		}
	}

	// A binary body past MaxBodyBytes is a 413 (same contract as JSON):
	// the MaxBytesError must survive the wire decoder's error wrapping.
	big := &wire.Frame{Domain: wire.DomainFloat, Arity: 2,
		Rows: make([]int32, 300_000), Floats: make([]float64, 150_000)}
	for i := range big.Rows {
		big.Rows[i] = int32(i) // distinct rows; size alone should reject it
	}
	if code := post(stream(header, 1, big)); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized binary body: %d, want 413", code)
	}

	// A valid stream still works through the raw HTTP path.
	resp, err := http.Post(ts.URL+"/v1/query", wire.ContentType,
		bytes.NewReader(stream(header, 1, goodFrame)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid stream: %d, want 200", resp.StatusCode)
	}
}
