package server

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestConcurrentServing is the PR-3 acceptance test: ≥32 goroutines issue a
// mix of same-shape and distinct-shape queries against a running server and
// every response must be bit-identical to a single-threaded Solve of the
// same spec; the shared shapes are planned exactly once each (the
// singleflight guard), and shutting the server down leaks no goroutines.
// Run under -race.
func TestConcurrentServing(t *testing.T) {
	before := runtime.NumGoroutine()

	s, err := New(Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	client := NewClient(ts.URL)
	transport := &http.Transport{MaxIdleConnsPerHost: 64}
	client.HTTPClient = &http.Client{Transport: transport}

	// Four distinct shapes over one hypergraph; two data variants per shape
	// exercise same-shape-different-data sharing.
	type variant struct {
		spec string
		want []uint64 // bit patterns of the oracle's values, in output order
	}
	var variants []variant
	for _, nfree := range []int{0, 1, 2} {
		for _, shift := range []float64{0, 0.25} {
			sp := triangleSpec(7, nfree, shift)
			res := solveSpec(t, sp)
			var bits []uint64
			if nfree == 0 {
				bits = []uint64{math.Float64bits(res.Scalar())}
			} else {
				for _, v := range res.Output.Values {
					bits = append(bits, math.Float64bits(v))
				}
			}
			variants = append(variants, variant{spec: sp, want: bits})
		}
	}
	// A fourth shape: max-product instead of sum-product.
	maxSpec := "var x 5 max\nvar y 5 max\nfactor x y\n"
	maxSpec += "0 1 = 2\n1 2 = 3\n2 3 = 5\nend\n"
	variants = append(variants, variant{spec: maxSpec,
		want: []uint64{math.Float64bits(solveSpec(t, maxSpec).Scalar())}})
	const distinctShapes = 4

	const (
		goroutines   = 32
		perGoroutine = 12
	)
	start := make(chan struct{})
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			ctx := context.Background()
			for i := 0; i < perGoroutine; i++ {
				v := variants[(g+i)%len(variants)]
				resp, err := client.Query(ctx, &QueryRequest{Spec: v.spec})
				if err != nil {
					errs <- err
					return
				}
				var got []uint64
				if resp.Value != nil {
					v, err := resp.FloatValue()
					if err != nil {
						errs <- err
						return
					}
					got = []uint64{math.Float64bits(v)}
				} else {
					vals, err := resp.Output.FloatValues()
					if err != nil {
						errs <- err
						return
					}
					for _, x := range vals {
						got = append(got, math.Float64bits(x))
					}
				}
				if len(got) != len(v.want) {
					errs <- errMismatch(g, i, len(got), len(v.want))
					return
				}
				for j := range got {
					if got[j] != v.want[j] {
						errs <- errMismatch(g, i, got[j], v.want[j])
						return
					}
				}
			}
			errs <- nil
		}(g)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	st := s.Engine().StatsSnapshot()
	if st.PlanCacheMisses != distinctShapes {
		t.Fatalf("planned %d times for %d distinct shapes: %+v", st.PlanCacheMisses, distinctShapes, st)
	}
	if want := int64(goroutines * perGoroutine); st.Prepared != want || st.Runs != want {
		t.Fatalf("prepared %d runs %d, want %d: %+v", st.Prepared, st.Runs, want, st)
	}
	if st.PlanCacheHits+st.PlanCoalesced != int64(goroutines*perGoroutine-distinctShapes) {
		t.Fatalf("hits %d + coalesced %d != %d", st.PlanCacheHits, st.PlanCoalesced,
			goroutines*perGoroutine-distinctShapes)
	}

	// Shutdown: the test server drains handlers, Close stops the pool.  No
	// goroutine may outlive them (a few scheduler ticks of grace).
	ts.Close()
	transport.CloseIdleConnections()
	s.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d before, %d after shutdown\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func errMismatch(g, i int, got, want any) error {
	return fmt.Errorf("goroutine %d request %d: response %v not bit-identical to Solve %v", g, i, got, want)
}
