// The server half of the observability layer (internal/obs): per-request
// stage timing, the Prometheus /metrics surface, the slow-query log and
// opt-in pprof execution labels.
//
// Every API request gets a reqObs carried on its context.  Stage
// checkpoints (parse → resolve → prepare → execute → encode) always feed
// the per-stage latency histograms; when the request asked for a trace
// (?trace=1 or X-FAQ-Trace: 1) — or a slow-query log is configured — the
// reqObs also carries an obs.Trace, and the same checkpoints open spans on
// it, so the span tree and the histograms can never disagree about where
// time went.  The engine layers deepen the trace (per-elimination spans,
// plan-cache annotations) through the same context; with no trace attached
// those hooks are nil-checked no-ops.
package server

import (
	"context"
	"net/http"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/faqdb/faq/internal/core"
	"github.com/faqdb/faq/internal/join"
	"github.com/faqdb/faq/internal/obs"
	"github.com/faqdb/faq/internal/sortx"
)

// The stage names, in request-pipeline order.  They are the fixed label
// set of faqd_stage_duration_seconds and the top-level span names of a
// request trace.
const (
	stageParse   = "parse"
	stageResolve = "resolve"
	stagePrepare = "prepare"
	stageExecute = "execute"
	stageEncode  = "encode"
)

var stageNames = []string{stageParse, stageResolve, stagePrepare, stageExecute, stageEncode}

// endpointNames is the fixed label set of faqd_request_duration_seconds.
var endpointNames = []string{"query", "batch", "delta", "plan", "dataset"}

// shapeTopK bounds how many per-shape series /metrics exposes (the table
// itself holds obs.DefaultMaxShapes; the exposition shows the top K by
// count plus the overflow counter).
const shapeTopK = 32

// isMonitoringPath reports whether the path is a monitoring or
// introspection endpoint.  These stay out of the in-flight gauge so an
// idle daemon reads in_flight == 0 even while being polled ("wait for
// in_flight == 0, then stop" must terminate).
func isMonitoringPath(path string) bool {
	return path == "/healthz" || path == "/statsz" || path == "/metrics" ||
		strings.HasPrefix(path, "/debug/pprof/")
}

// endpointOf maps a request to its metric endpoint label, "" for requests
// outside the instrumented API surface.
func endpointOf(r *http.Request) string {
	switch {
	case r.URL.Path == "/v1/query" && r.Method == http.MethodPost:
		return "query"
	case r.URL.Path == "/v1/batch" && r.Method == http.MethodPost:
		return "batch"
	case r.URL.Path == "/v1/delta" && r.Method == http.MethodPost:
		return "delta"
	case r.URL.Path == "/v1/plan":
		return "plan"
	case r.URL.Path == "/v1/datasets" || strings.HasPrefix(r.URL.Path, "/v1/datasets/"):
		return "dataset"
	}
	return ""
}

// serverObs owns the server's metric registry, stage/endpoint histograms,
// the bounded per-shape table and the slow-query log.  One per Server,
// built in New.
type serverObs struct {
	reg       *obs.Registry
	stageHist map[string]*obs.Histogram
	epHist    map[string]*obs.Histogram
	shapes    *obs.ShapeTable
	slowLog   *obs.SlowLog // nil unless Config.SlowQueryLog was set
	slowAfter time.Duration
	labels    bool // attach pprof labels around execution
}

// newServerObs builds the observability state and registers every metric.
// Counters that already exist as /statsz atomics are exposed through
// scrape-time callbacks so nothing is ever double-counted.
func newServerObs(s *Server) *serverObs {
	o := &serverObs{
		reg:       obs.NewRegistry(),
		stageHist: map[string]*obs.Histogram{},
		epHist:    map[string]*obs.Histogram{},
		shapes:    obs.NewShapeTable(obs.DefaultMaxShapes),
		slowLog:   obs.NewSlowLog(s.cfg.SlowQueryLog),
		slowAfter: s.cfg.SlowQuery,
		labels:    s.cfg.ProfileLabels,
	}
	reg := o.reg
	reg.GaugeFunc("faqd_uptime_seconds", "Seconds since the server was created.",
		func() float64 { return time.Since(s.m.start).Seconds() })
	reg.CounterFunc("faqd_requests_total", "Requests on any endpoint.",
		func() float64 { return float64(s.m.requests.Load()) })
	reg.CounterFunc("faqd_requests_ok_total", "Responses with status < 400.",
		func() float64 { return float64(s.m.ok.Load()) })
	reg.CounterFunc("faqd_requests_err_total", "Responses with status >= 400.",
		func() float64 { return float64(s.m.errs.Load()) })
	reg.GaugeFunc("faqd_in_flight", "Non-monitoring requests currently being handled.",
		func() float64 { return float64(s.m.inFlight.Load()) })
	reg.CounterFunc("faqd_queries_total", "POST /v1/query requests.",
		func() float64 { return float64(s.m.queries.Load()) })
	reg.CounterFunc("faqd_queries_binary_total", "Queries shipping binary factor streams.",
		func() float64 { return float64(s.m.binary.Load()) })
	reg.CounterFunc("faqd_queries_binary_responses_total", "Query responses in the binary factor encoding.",
		func() float64 { return float64(s.m.binaryResp.Load()) })
	reg.CounterFunc("faqd_queries_rejected_total", "Queries shed with 429 (backpressure).",
		func() float64 { return float64(s.m.rejected.Load()) })
	reg.CounterFunc("faqd_batches_total", "POST /v1/batch requests.",
		func() float64 { return float64(s.m.batches.Load()) })
	reg.CounterFunc("faqd_batches_binary_total", "Batch requests shipping the binary envelope.",
		func() float64 { return float64(s.m.batchBinary.Load()) })
	reg.CounterFunc("faqd_batch_streams_total", "Batch responses streamed as binary result records.",
		func() float64 { return float64(s.m.batchStreams.Load()) })
	reg.CounterFunc("faqd_batch_items_total", "Executed batch items across all batches.",
		func() float64 { return float64(s.m.batchItems.Load()) })
	reg.CounterFunc("faqd_batch_items_err_total", "Batch items that failed.",
		func() float64 { return float64(s.m.batchItemErr.Load()) })
	reg.CounterFunc("faqd_dataset_queries_total", "Queries served from resident datasets.",
		func() float64 { return float64(s.m.datasetQ.Load()) })
	reg.CounterFunc("faqd_deltas_total", "POST /v1/delta requests.",
		func() float64 { return float64(s.m.deltas.Load()) })
	reg.CounterFunc("faqd_deltas_binary_total", "Delta requests shipping binary streams.",
		func() float64 { return float64(s.m.deltasBinary.Load()) })
	reg.GaugeFunc("faqd_delta_sessions", "Evolving delta sessions currently resident.",
		func() float64 { return float64(s.sessions.len()) })
	reg.GaugeFunc("faqd_goroutines", "runtime.NumGoroutine at scrape time.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	for _, dom := range []struct {
		name string
		v    interface{ Load() int64 }
	}{
		{"float", &s.m.domFloat}, {"int", &s.m.domInt},
		{"bool", &s.m.domBool}, {"tropical", &s.m.domTrop},
	} {
		v := dom.v
		reg.CounterFunc("faqd_queries_domain_total", "Executed queries per value domain.",
			func() float64 { return float64(v.Load()) }, obs.Label{Name: "domain", Value: dom.name})
	}
	reg.CounterFunc("faqd_slow_queries_total", "Requests written to the slow-query log.",
		func() float64 { return float64(o.slowLog.Count()) })

	// Data-plane sort and scan-split strategy counters, process-wide like
	// the atomics they read.
	reg.CounterFunc("faqd_sort_radix_total", "Row-block argsorts served by the packed-key radix kernel.",
		func() float64 { return float64(sortx.RadixSorts()) })
	reg.CounterFunc("faqd_sort_comparison_total", "Row-block argsorts below the radix cutoff (comparison sort).",
		func() float64 { return float64(sortx.ComparisonSorts()) })
	reg.CounterFunc("faqd_scan_splits_total", "Scans split into parallel blocks.",
		func() float64 { scans, _, _ := join.SplitStats(); return float64(scans) })
	reg.CounterFunc("faqd_scan_splits_cache_aware_total", "Parallel scans whose block count was cache-target sized.",
		func() float64 { _, cache, _ := join.SplitStats(); return float64(cache) })
	reg.GaugeFunc("faqd_scan_block_keys", "Lead keys per block chosen by the most recent split.",
		func() float64 { _, _, keys := join.SplitStats(); return float64(keys) })

	// Engine counters mirror core.EngineStats; each callback takes its own
	// snapshot (a handful of atomic loads — scraping is the cold path).
	engCounter := func(name, help string, f func(core.EngineStats) int64) {
		reg.CounterFunc(name, help, func() float64 { return float64(f(s.eng.StatsSnapshot())) })
	}
	engGauge := func(name, help string, f func(core.EngineStats) int64) {
		reg.GaugeFunc(name, help, func() float64 { return float64(f(s.eng.StatsSnapshot())) })
	}
	engCounter("faqd_engine_prepared_total", "Prepared queries.",
		func(e core.EngineStats) int64 { return e.Prepared })
	engCounter("faqd_engine_plan_cache_hits_total", "Plan-LRU hits.",
		func(e core.EngineStats) int64 { return e.PlanCacheHits })
	engCounter("faqd_engine_plan_cache_misses_total", "Plan-LRU misses.",
		func(e core.EngineStats) int64 { return e.PlanCacheMisses })
	engCounter("faqd_engine_plan_coalesced_total", "Prepares that adopted an in-flight planning pass.",
		func(e core.EngineStats) int64 { return e.PlanCoalesced })
	engGauge("faqd_engine_plans_cached", "Current plan-LRU population.",
		func(e core.EngineStats) int64 { return e.PlansCached })
	engCounter("faqd_engine_runs_total", "Completed engine runs.",
		func(e core.EngineStats) int64 { return e.Runs })
	engCounter("faqd_engine_runs_cancelled_total", "Context-aborted engine runs.",
		func(e core.EngineStats) int64 { return e.RunsCancelled })
	engCounter("faqd_engine_deltas_applied_total", "Committed ApplyDeltas batches.",
		func(e core.EngineStats) int64 { return e.DeltasApplied })
	engCounter("faqd_engine_delta_ring_runs_total", "Delta batches maintained by ring propagation.",
		func(e core.EngineStats) int64 { return e.DeltaRingRuns })
	engCounter("faqd_engine_delta_block_runs_total", "Delta batches maintained by block re-execution.",
		func(e core.EngineStats) int64 { return e.DeltaBlockRuns })
	engCounter("faqd_engine_delta_recomputes_total", "Delta batches maintained by full recompute.",
		func(e core.EngineStats) int64 { return e.DeltaRecomputes })
	engCounter("faqd_engine_trie_cache_hits_total", "Trie-cache hits.",
		func(e core.EngineStats) int64 { return e.TrieCacheHits })
	engCounter("faqd_engine_trie_cache_misses_total", "Trie-cache misses.",
		func(e core.EngineStats) int64 { return e.TrieCacheMisses })
	engCounter("faqd_engine_trie_cache_invalidations_total", "Trie-cache entries dropped by factor updates.",
		func(e core.EngineStats) int64 { return e.TrieCacheInvalidations })
	engCounter("faqd_engine_trie_cache_evictions_total", "Trie-cache capacity evictions.",
		func(e core.EngineStats) int64 { return e.TrieCacheEvictions })
	engGauge("faqd_engine_trie_cache_entries", "Current trie-cache population.",
		func(e core.EngineStats) int64 { return e.TrieCacheEntries })

	if s.store != nil {
		st := s.store
		reg.GaugeFunc("faqd_store_datasets", "Resident (mapped) datasets.",
			func() float64 { return float64(st.Len()) })
		reg.GaugeFunc("faqd_store_bytes_mapped", "Mapped bytes across resident datasets.",
			func() float64 { return float64(st.BytesMapped()) })
		reg.CounterFunc("faqd_store_checksum_failures_total", "Dataset opens rejected by CRC mismatch.",
			func() float64 { return float64(st.ChecksumFailures()) })
		reg.GaugeFunc("faqd_store_resident_prepared", "Prepared queries kept warm against resident data.",
			func() float64 { return float64(s.resident.len()) })
		reg.CounterFunc("faqd_store_load_errors_total", "Dataset files skipped at startup.",
			func() float64 { return float64(len(st.LoadErrors())) })
	}

	for _, ep := range endpointNames {
		o.epHist[ep] = reg.Histogram("faqd_request_duration_seconds",
			"Request wall time per endpoint.", nil, obs.Label{Name: "endpoint", Value: ep})
	}
	for _, st := range stageNames {
		o.stageHist[st] = reg.Histogram("faqd_stage_duration_seconds",
			"Request-pipeline stage time (parse, resolve, prepare, execute, encode).",
			nil, obs.Label{Name: "stage", Value: st})
	}
	return o
}

// reqObs is one request's observation state, carried on the request
// context.  The handler goroutine writes domain/dataset/shape before the
// response; the middleware reads them after ServeHTTP returns — same
// goroutine, no races.  A nil *reqObs is valid everywhere (handlers
// invoked outside the middleware, e.g. direct-mux tests) and does nothing.
type reqObs struct {
	o        *serverObs
	endpoint string
	// tr is non-nil when this request is being traced (the client asked,
	// or a slow-query log wants stage breakdowns for slow requests).
	tr *obs.Trace
	// wantTrace is set when the client asked for the trace in the
	// response (?trace=1 or X-FAQ-Trace: 1).
	wantTrace bool
	domain    string
	dataset   string
	shape     string
}

type reqObsKey struct{}

// reqObsFrom returns the request's observation state, nil outside the
// middleware.
func reqObsFrom(ctx context.Context) *reqObs {
	ro, _ := ctx.Value(reqObsKey{}).(*reqObs)
	return ro
}

// begin attaches a reqObs (and, when tracing, an obs.Trace) to the
// request context.
func (o *serverObs) begin(r *http.Request, endpoint string) (*reqObs, *http.Request) {
	ro := &reqObs{o: o, endpoint: endpoint}
	if endpoint == "query" || endpoint == "batch" || endpoint == "delta" {
		// The RawQuery check keeps the no-query-string hot path free of the
		// url.Values allocation r.URL.Query() would pay on every request.
		if r.URL.RawQuery != "" && r.URL.Query().Get("trace") == "1" {
			ro.wantTrace = true
		} else if r.Header.Get("X-FAQ-Trace") == "1" {
			ro.wantTrace = true
		}
		if ro.wantTrace || o.slowLog != nil {
			ro.tr = obs.NewTrace()
		}
	}
	ctx := context.WithValue(r.Context(), reqObsKey{}, ro)
	if ro.tr != nil {
		ctx = obs.WithTrace(ctx, ro.tr)
	}
	return ro, r.WithContext(ctx)
}

// finish closes out a request: endpoint histogram, shape table, and the
// slow-query log when the request crossed the threshold.
func (o *serverObs) finish(ro *reqObs, status int, wall time.Duration) {
	if h := o.epHist[ro.endpoint]; h != nil {
		h.Observe(wall)
	}
	if ro.shape != "" {
		o.shapes.Observe(ro.shape, wall)
	}
	if o.slowLog != nil && wall >= o.slowAfter && ro.tr != nil {
		o.slowLog.Log(&obs.SlowQueryEntry{
			Time:     time.Now().UTC().Format(time.RFC3339Nano),
			Endpoint: ro.endpoint,
			Domain:   ro.domain,
			Dataset:  ro.dataset,
			Shape:    ro.shape,
			Status:   status,
			WallMS:   durationMS(wall),
			Trace:    ro.tr.Finish(),
		})
	}
}

// stage begins one pipeline stage: the returned func (idempotent, so it
// can be deferred for early returns AND called explicitly on the main
// path) feeds the stage histogram and ends the stage's trace span.
func (ro *reqObs) stage(name string) func() {
	if ro == nil {
		return func() {}
	}
	sp := ro.tr.Start(name) // nil-safe: no span unless tracing
	start := time.Now()
	done := false
	return func() {
		if done {
			return
		}
		done = true
		ro.o.stageHist[name].Observe(time.Since(start))
		sp.End()
	}
}

// setQuery records what the request resolved to, for the shape table,
// pprof labels and the slow-query log.
func (ro *reqObs) setQuery(domain, dataset, shape string) {
	if ro == nil {
		return
	}
	ro.domain, ro.dataset, ro.shape = domain, dataset, shape
}

// recordItemSpan appends one completed batch item's span to the trace,
// under the batch's open execute stage.  Batch items run concurrently, so
// their spans cannot use the sequential stage Start/End discipline; each
// item times itself and is recorded here from the serialized completion
// callback (see core.RunBatch), which keeps the trace's span stack
// single-writer.
func (ro *reqObs) recordItemSpan(index int, start time.Time, d time.Duration, errored bool) {
	if ro == nil || ro.tr == nil {
		return
	}
	attrs := []obs.Attr{{Key: "index", Val: index}}
	if errored {
		attrs = append(attrs, obs.Attr{Key: "error", Val: true})
	}
	ro.tr.RecordSpan("item", start, d, attrs...)
}

// traceData returns the finished span tree when the client asked for it,
// nil otherwise (server-side-only traces stay out of responses).
func (ro *reqObs) traceData() *obs.TraceData {
	if ro == nil || !ro.wantTrace {
		return nil
	}
	return ro.tr.Finish()
}

// runLabeled runs f under pprof labels (endpoint, domain, shape) when
// profiling labels are enabled, so CPU profiles attribute execution
// samples to what was being served.
func (ro *reqObs) runLabeled(ctx context.Context, f func(context.Context)) {
	if ro == nil || !ro.o.labels {
		f(ctx)
		return
	}
	pprof.Do(ctx, pprof.Labels(
		"endpoint", ro.endpoint, "domain", ro.domain, "shape", ro.shape), f)
}

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format: the registered families plus the bounded per-shape table.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.obs.reg.WritePrometheus(w)
	s.obs.shapes.WritePrometheus(w, shapeTopK)
}
