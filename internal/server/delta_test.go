package server

import (
	"context"
	"strings"
	"testing"

	"github.com/faqdb/faq/internal/wire"
)

// deltaSpec is the evolving-database fixture: a scalar triangle count over
// {0,1}³ whose three relations start as full cross products (answer 8).
// The third block declares its variables as "z x" — reversed relative to
// sorted storage order — so delta tuples exercise the same declaration-
// order permutation fresh factor data goes through.
func deltaSpec() string {
	var b strings.Builder
	b.WriteString("var x 2 sum\nvar y 2 sum\nvar z 2 sum\n")
	for _, vars := range []string{"x y", "y z", "z x"} {
		b.WriteString("factor " + vars + "\n")
		b.WriteString("0 0 = 1\n0 1 = 1\n1 0 = 1\n1 1 = 1\nend\n")
	}
	return b.String()
}

// deltaOracle recomputes the expected answer for the evolving state by
// shipping the full data through the already-verified /v1/query fresh-
// factor path.  data[i] maps a declaration-order tuple to its value.
func deltaOracle(t *testing.T, c *Client, specText string, data []map[[2]int]float64) float64 {
	t.Helper()
	req := &QueryRequest{Spec: specText}
	for _, m := range data {
		var fd FactorData
		for tup, v := range m {
			fd.Tuples = append(fd.Tuples, []int{tup[0], tup[1]})
			fd.Values = append(fd.Values, v)
		}
		req.Factors = append(req.Factors, fd)
	}
	resp, err := c.Query(context.Background(), req)
	if err != nil {
		t.Fatalf("oracle query: %v", err)
	}
	v, err := resp.FloatValue()
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// fullCross is the starting state of every deltaSpec factor.
func fullCross() map[[2]int]float64 {
	return map[[2]int]float64{{0, 0}: 1, {0, 1}: 1, {1, 0}: 1, {1, 1}: 1}
}

// applyData mirrors one DeltaData onto the test-side tracking state.
func applyData(m map[[2]int]float64, dd DeltaData) {
	for i, tup := range dd.Tuples {
		k := [2]int{tup[0], tup[1]}
		if dd.Op == "delete" {
			delete(m, k)
		} else if dd.Values[i] == 0 {
			delete(m, k)
		} else {
			m[k] = dd.Values[i]
		}
	}
}

// TestDeltaSessionJSON drives a JSON delta session end to end: the first
// request seeds the state from the spec, each batch's maintained answer
// matches a full fresh-data recompute, and a batch against the permuted
// "z x" block lands on the right rows.
func TestDeltaSessionJSON(t *testing.T) {
	s, _, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()
	specText := deltaSpec()
	data := []map[[2]int]float64{fullCross(), fullCross(), fullCross()}

	resp, err := c.Delta(ctx, &DeltaRequest{Spec: specText, Session: "evolve"})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := resp.FloatValue(); err != nil || v != 8 {
		t.Fatalf("seeded session answers %v (%v), want 8", v, err)
	}
	if resp.Strategy == "" || resp.Applied != 0 {
		t.Fatalf("empty batch: strategy %q, applied %d", resp.Strategy, resp.Applied)
	}

	batches := [][]DeltaData{
		{{Factor: 0, Op: "insert", Tuples: [][]int{{0, 0}}, Values: []float64{5}}},
		{{Factor: 1, Op: "delete", Tuples: [][]int{{1, 0}, {1, 1}}}},
		// Factor 2 is declared "z x": the tuple (z, x) = (0, 1) must reach
		// storage as (x, z) = (1, 0).
		{{Factor: 2, Op: "insert", Tuples: [][]int{{0, 1}}, Values: []float64{3}},
			{Factor: 0, Op: "insert", Tuples: [][]int{{0, 0}}, Values: []float64{0}}},
	}
	for bi, batch := range batches {
		resp, err := c.Delta(ctx, &DeltaRequest{Spec: specText, Session: "evolve", Deltas: batch})
		if err != nil {
			t.Fatalf("batch %d: %v", bi, err)
		}
		for _, dd := range batch {
			applyData(data[dd.Factor], dd)
		}
		want := deltaOracle(t, c, specText, data)
		if got, err := resp.FloatValue(); err != nil || got != want {
			t.Fatalf("batch %d: maintained answer %v (%v), want %v", bi, got, err, want)
		}
		if resp.Applied != len(batch) {
			t.Fatalf("batch %d: applied %d of %d", bi, resp.Applied, len(batch))
		}
	}

	st := s.Statsz()
	if st.Server.Deltas != int64(1+len(batches)) {
		t.Fatalf("deltas counter = %d, want %d", st.Server.Deltas, 1+len(batches))
	}
	if st.Server.DeltaSessions != 1 {
		t.Fatalf("delta_sessions = %d, want 1", st.Server.DeltaSessions)
	}
	if st.Engine.DeltasApplied != int64(1+len(batches)) {
		t.Fatalf("engine deltas_applied = %d, want %d", st.Engine.DeltasApplied, 1+len(batches))
	}
	if st.Engine.DeltaRingRuns+st.Engine.DeltaBlockRuns+st.Engine.DeltaRecomputes == 0 {
		t.Fatal("no maintenance strategy counter moved")
	}
}

// TestDeltaSessionBinary drives the same evolution through binary delta
// streams and requires answers identical to the JSON path.
func TestDeltaSessionBinary(t *testing.T) {
	s, _, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()
	specText := deltaSpec()

	seed, err := c.DeltaFrames(ctx, &DeltaRequest{Spec: specText, Session: "bin"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := seed.FloatValue(); err != nil || v != 8 {
		t.Fatalf("seeded session answers %v (%v), want 8", v, err)
	}

	// The same three batches as the JSON test, as frames; frame 2 ships
	// declaration-order (z, x) columns.
	frames := [][]*wire.DeltaFrame{
		{{Op: wire.DeltaOpInsert, Domain: wire.DomainFloat, Factor: 0, Arity: 2,
			Rows: []int32{0, 0}, Floats: []float64{5}}},
		{{Op: wire.DeltaOpDelete, Domain: wire.DomainFloat, Factor: 1, Arity: 2,
			Rows: []int32{1, 0, 1, 1}}},
		{{Op: wire.DeltaOpInsert, Domain: wire.DomainFloat, Factor: 2, Arity: 2,
			Rows: []int32{0, 1}, Floats: []float64{3}},
			{Op: wire.DeltaOpInsert, Domain: wire.DomainFloat, Factor: 0, Arity: 2,
				Rows: []int32{0, 0}, Floats: []float64{0}}},
	}
	jsonBatches := [][]DeltaData{
		{{Factor: 0, Op: "insert", Tuples: [][]int{{0, 0}}, Values: []float64{5}}},
		{{Factor: 1, Op: "delete", Tuples: [][]int{{1, 0}, {1, 1}}}},
		{{Factor: 2, Op: "insert", Tuples: [][]int{{0, 1}}, Values: []float64{3}},
			{Factor: 0, Op: "insert", Tuples: [][]int{{0, 0}}, Values: []float64{0}}},
	}
	if _, err := c.Delta(ctx, &DeltaRequest{Spec: specText, Session: "json"}); err != nil {
		t.Fatal(err)
	}
	for bi := range frames {
		bres, err := c.DeltaFrames(ctx, &DeltaRequest{Spec: specText, Session: "bin"}, frames[bi])
		if err != nil {
			t.Fatalf("binary batch %d: %v", bi, err)
		}
		jres, err := c.Delta(ctx, &DeltaRequest{Spec: specText, Session: "json", Deltas: jsonBatches[bi]})
		if err != nil {
			t.Fatalf("json batch %d: %v", bi, err)
		}
		bv, _ := bres.FloatValue()
		jv, _ := jres.FloatValue()
		if bv != jv {
			t.Fatalf("batch %d: binary session answers %v, JSON session %v", bi, bv, jv)
		}
	}

	st := s.Statsz()
	if st.Server.DeltasBinary != int64(1+len(frames)) {
		t.Fatalf("deltas_binary = %d, want %d", st.Server.DeltasBinary, 1+len(frames))
	}
	if st.Server.DeltaSessions != 2 {
		t.Fatalf("delta_sessions = %d, want 2", st.Server.DeltaSessions)
	}
}

// TestDeltaRejections maps client mistakes to 400s and proves a rejected
// batch leaves the session state untouched.
func TestDeltaRejections(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()
	specText := deltaSpec()
	if _, err := c.Delta(ctx, &DeltaRequest{Spec: specText}); err != nil {
		t.Fatal(err)
	}

	cases := map[string]*DeltaRequest{
		"unknown op": {Spec: specText,
			Deltas: []DeltaData{{Factor: 0, Op: "upsert", Tuples: [][]int{{0, 0}}, Values: []float64{1}}}},
		"factor out of range": {Spec: specText,
			Deltas: []DeltaData{{Factor: 3, Op: "delete", Tuples: [][]int{{0, 0}}}}},
		"arity mismatch": {Spec: specText,
			Deltas: []DeltaData{{Factor: 0, Op: "delete", Tuples: [][]int{{0}}}}},
		"value count off": {Spec: specText,
			Deltas: []DeltaData{{Factor: 0, Op: "insert", Tuples: [][]int{{0, 0}}, Values: []float64{1, 2}}}},
		"delete with values": {Spec: specText,
			Deltas: []DeltaData{{Factor: 0, Op: "delete", Tuples: [][]int{{0, 0}}, Values: []float64{1}}}},
		"out of domain": {Spec: specText,
			Deltas: []DeltaData{{Factor: 0, Op: "insert", Tuples: [][]int{{0, 9}}, Values: []float64{1}}}},
		"absent delete": {Spec: specText,
			Deltas: []DeltaData{
				{Factor: 0, Op: "delete", Tuples: [][]int{{0, 0}}},
				{Factor: 0, Op: "delete", Tuples: [][]int{{0, 0}}}}},
		"empty spec": {Spec: "   "},
	}
	for name, req := range cases {
		if _, err := c.Delta(ctx, req); err == nil || !strings.Contains(err.Error(), "400") {
			t.Errorf("%s: err = %v, want HTTP 400", name, err)
		}
	}

	// Binary mistakes: JSON deltas inside a binary envelope, and a frame
	// domain that contradicts the spec.
	if _, err := EncodeDeltaStream(&DeltaRequest{Spec: specText,
		Deltas: []DeltaData{{Factor: 0, Op: "insert"}}}, nil); err == nil {
		t.Error("EncodeDeltaStream accepted JSON deltas")
	}
	if _, err := c.DeltaFrames(ctx, &DeltaRequest{Spec: specText},
		[]*wire.DeltaFrame{{Op: wire.DeltaOpInsert, Domain: wire.DomainInt, Factor: 0, Arity: 2,
			Rows: []int32{0, 0}, Ints: []int64{1}}}); err == nil || !strings.Contains(err.Error(), "400") {
		t.Errorf("frame domain mismatch: err = %v, want HTTP 400", err)
	}

	// After every rejection the state still answers 8.
	resp, err := c.Delta(ctx, &DeltaRequest{Spec: specText})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := resp.FloatValue(); err != nil || v != 8 {
		t.Fatalf("state after rejections answers %v (%v), want 8", v, err)
	}
}

// TestDeltaSessionDomainMismatch: reusing a session name across value
// domains is a client error, not a panic or a silent re-seed.
func TestDeltaSessionDomainMismatch(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()
	if _, err := c.Delta(ctx, &DeltaRequest{Spec: deltaSpec(), Session: "shared"}); err != nil {
		t.Fatal(err)
	}
	intSpec := "domain int\n" + strings.Join([]string{
		"var a 2 sum", "factor a", "0 = 1", "1 = 2", "end", ""}, "\n")
	_, err := c.Delta(ctx, &DeltaRequest{Spec: intSpec, Session: "shared"})
	if err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("cross-domain session reuse: err = %v, want HTTP 400", err)
	}
}

// TestDeltaSessionLRU: the registry drops the least recently used session
// at MaxSessions, and a dropped session transparently re-seeds.
func TestDeltaSessionLRU(t *testing.T) {
	s, _, c := newTestServer(t, Config{Workers: 2, MaxSessions: 1})
	ctx := context.Background()
	specText := deltaSpec()

	if _, err := c.Delta(ctx, &DeltaRequest{Spec: specText, Session: "a",
		Deltas: []DeltaData{{Factor: 0, Op: "insert", Tuples: [][]int{{0, 0}}, Values: []float64{5}}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Delta(ctx, &DeltaRequest{Spec: specText, Session: "b"}); err != nil {
		t.Fatal(err)
	}
	if n := s.Statsz().Server.DeltaSessions; n != 1 {
		t.Fatalf("delta_sessions = %d, want 1", n)
	}
	// Session "a" was evicted: coming back re-seeds from the spec, so its
	// earlier insert is gone and the answer is the pristine 8.
	resp, err := c.Delta(ctx, &DeltaRequest{Spec: specText, Session: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := resp.FloatValue(); err != nil || v != 8 {
		t.Fatalf("re-seeded session answers %v (%v), want 8", v, err)
	}
}
