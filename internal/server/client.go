package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"
)

// Client is a Go client for the faqd API, used by faqload, the smoke
// harness and the examples.  Zero-value fields get sane defaults from
// NewClient.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.  Per-call deadlines come
	// from the caller's context (and the request's timeout_ms), not from
	// the transport.
	HTTPClient *http.Client
}

// NewClient returns a client for the given base URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTPClient: http.DefaultClient}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues one request and decodes the JSON response into out; non-2xx
// responses are decoded as ErrorResponse and returned as errors.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var apiErr ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("faqd: %s %s: %s (HTTP %d)", method, path, apiErr.Error, resp.StatusCode)
		}
		return fmt.Errorf("faqd: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Query runs one query.
func (c *Client) Query(ctx context.Context, req *QueryRequest) (*QueryResponse, error) {
	var resp QueryResponse
	if err := c.do(ctx, http.MethodPost, "/v1/query", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Plan fetches the plan report for a spec-format query.
func (c *Client) Plan(ctx context.Context, specText string) (*PlanReport, error) {
	var rep PlanReport
	if err := c.do(ctx, http.MethodPost, "/v1/plan", &QueryRequest{Spec: specText}, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// PlanExample fetches the plan report for a built-in paper example.
func (c *Client) PlanExample(ctx context.Context, example string) (*PlanReport, error) {
	var rep PlanReport
	path := "/v1/plan?example=" + url.QueryEscape(example)
	if err := c.do(ctx, http.MethodGet, path, nil, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Statsz fetches the serving counters.
func (c *Client) Statsz(ctx context.Context) (*StatszResponse, error) {
	var st StatszResponse
	if err := c.do(ctx, http.MethodGet, "/statsz", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Healthz checks liveness.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// WaitHealthy polls /healthz until it answers, ctx expires or timeout
// elapses — the startup handshake of the smoke and load tools.
func (c *Client) WaitHealthy(ctx context.Context, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		attempt, cancel := context.WithTimeout(ctx, time.Second)
		err := c.Healthz(attempt)
		cancel()
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("faqd at %s not healthy after %v: %w", c.BaseURL, timeout, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
