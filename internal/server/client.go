package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"time"

	"github.com/faqdb/faq/internal/wire"
)

// Client is a Go client for the faqd API, used by faqload, the smoke
// harness and the examples.  Zero-value fields get sane defaults from
// NewClient.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.  Per-call deadlines come
	// from the caller's context (and the request's timeout_ms), not from
	// the transport.
	HTTPClient *http.Client
}

// NewClient returns a client for the given base URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTPClient: http.DefaultClient}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues one request and decodes the JSON response into out; non-2xx
// responses are decoded as ErrorResponse and returned as errors.  The
// decoder keeps numbers as json.Number so int-domain values survive
// exactly (see QueryResponse.IntValue).
func (c *Client) do(ctx context.Context, method, path, contentType string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var apiErr ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("faqd: %s %s: %s (HTTP %d)", method, path, apiErr.Error, resp.StatusCode)
		}
		return fmt.Errorf("faqd: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	dec := json.NewDecoder(resp.Body)
	dec.UseNumber()
	return dec.Decode(out)
}

// doJSON marshals body (when non-nil) and issues the request as JSON.
func (c *Client) doJSON(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	contentType := ""
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
		contentType = "application/json"
	}
	return c.do(ctx, method, path, contentType, rd, out)
}

// Query runs one query with a JSON body (including any fresh factors).
func (c *Client) Query(ctx context.Context, req *QueryRequest) (*QueryResponse, error) {
	var resp QueryResponse
	if err := c.doJSON(ctx, http.MethodPost, "/v1/query", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// QueryWithTrace runs one JSON query asking the server for its stage
// trace (?trace=1).  The response's Trace field carries the span tree —
// parse/resolve/prepare/execute/encode at the top level, per-elimination
// spans under execute.
func (c *Client) QueryWithTrace(ctx context.Context, req *QueryRequest) (*QueryResponse, error) {
	var resp QueryResponse
	if err := c.doJSON(ctx, http.MethodPost, "/v1/query?trace=1", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Metrics fetches the raw Prometheus text exposition from GET /metrics.
// Callers parse it with obs.ParsePromText or hand it to a scraper.
func (c *Client) Metrics(ctx context.Context) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("faqd: GET /metrics: HTTP %d", resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// QueryFrames runs one query shipping fresh factor data as the binary
// wire framing: req (whose Factors must be empty — the frames carry the
// data) becomes the stream's envelope header and frames follow, one per
// spec factor in spec order, columns in each spec block's declaration
// order.  This is the fast data-refresh path: the server decodes frames
// straight into flat factor blocks with no per-row allocation.
func (c *Client) QueryFrames(ctx context.Context, req *QueryRequest, frames []*wire.Frame) (*QueryResponse, error) {
	stream, err := EncodeQueryStream(req, frames)
	if err != nil {
		return nil, err
	}
	return c.QueryStream(ctx, stream)
}

// EncodeQueryStream renders a binary /v1/query body: req (whose Factors
// must be empty) as the envelope header, then the frames.  Callers
// re-issuing one refresh payload many times — load generators, replicated
// writers — encode once and post the bytes with QueryStream.
func EncodeQueryStream(req *QueryRequest, frames []*wire.Frame) ([]byte, error) {
	if req.Factors != nil {
		return nil, fmt.Errorf("faqd: binary query request carries JSON factors; ship them as frames")
	}
	header, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var body bytes.Buffer
	enc := wire.NewEncoder(&body)
	if err := enc.WriteStreamHeader(header, len(frames)); err != nil {
		return nil, err
	}
	for i, f := range frames {
		if err := enc.Encode(f); err != nil {
			return nil, fmt.Errorf("faqd: encoding factor frame %d: %w", i, err)
		}
	}
	return body.Bytes(), nil
}

// QueryStream posts an already-encoded binary query body (see
// EncodeQueryStream).
func (c *Client) QueryStream(ctx context.Context, stream []byte) (*QueryResponse, error) {
	var resp QueryResponse
	if err := c.do(ctx, http.MethodPost, "/v1/query", wire.ContentType, bytes.NewReader(stream), &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// QueryWire is QueryFrames for callers holding FactorData: it converts
// req.Factors to frames of the given wire domain (float values must fit
// the domain: integral for DomainInt, 0/1 for DomainBool) and ships them
// binary.  Factors with no rows cannot declare their arity through
// FactorData; use QueryFrames directly for those.
func (c *Client) QueryWire(ctx context.Context, req *QueryRequest, dom wire.Domain) (*QueryResponse, error) {
	frames := make([]*wire.Frame, len(req.Factors))
	for i, fd := range req.Factors {
		f, err := FactorFrame(dom, fd)
		if err != nil {
			return nil, fmt.Errorf("faqd: factor %d: %w", i, err)
		}
		frames[i] = f
	}
	hdr := *req
	hdr.Factors = nil
	return c.QueryFrames(ctx, &hdr, frames)
}

// FactorFrame converts one FactorData to a wire frame of the given
// domain, with the same value conventions as the JSON path (int values
// must be integral, bool values 0 or 1).
func FactorFrame(dom wire.Domain, fd FactorData) (*wire.Frame, error) {
	if len(fd.Tuples) == 0 {
		return nil, fmt.Errorf("empty factor cannot declare its arity; build a wire.Frame directly")
	}
	arity := len(fd.Tuples[0])
	f := &wire.Frame{Domain: dom, Arity: arity}
	f.Rows = make([]int32, 0, len(fd.Tuples)*arity)
	for _, tup := range fd.Tuples {
		if len(tup) != arity {
			return nil, fmt.Errorf("tuple %v has arity %d, want %d", tup, len(tup), arity)
		}
		for _, x := range tup {
			if x < math.MinInt32 || x > math.MaxInt32 {
				return nil, fmt.Errorf("tuple %v exceeds the int32 domain-value range", tup)
			}
			f.Rows = append(f.Rows, int32(x))
		}
	}
	// Value conversions are the server's own JSON rules (jsonToInt,
	// jsonToBool), so a frame the client builds is exactly a frame the
	// server accepts.
	var err error
	switch dom {
	case wire.DomainFloat, wire.DomainTropical:
		f.Floats = fd.Values
	case wire.DomainInt:
		f.Ints = make([]int64, len(fd.Values))
		for i, v := range fd.Values {
			if f.Ints[i], err = jsonToInt(v); err != nil {
				return nil, err
			}
		}
	case wire.DomainBool:
		f.Bools = make([]bool, len(fd.Values))
		for i, v := range fd.Values {
			if f.Bools[i], err = jsonToBool(v); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("invalid wire domain %v", dom)
	}
	return f, nil
}

// Plan fetches the plan report for a spec-format query.
func (c *Client) Plan(ctx context.Context, specText string) (*PlanReport, error) {
	var rep PlanReport
	if err := c.doJSON(ctx, http.MethodPost, "/v1/plan", &QueryRequest{Spec: specText}, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// PlanExample fetches the plan report for a built-in paper example.
func (c *Client) PlanExample(ctx context.Context, example string) (*PlanReport, error) {
	var rep PlanReport
	path := "/v1/plan?example=" + url.QueryEscape(example)
	if err := c.doJSON(ctx, http.MethodGet, path, nil, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Statsz fetches the serving counters.
func (c *Client) Statsz(ctx context.Context) (*StatszResponse, error) {
	var st StatszResponse
	if err := c.doJSON(ctx, http.MethodGet, "/statsz", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Healthz checks liveness.
func (c *Client) Healthz(ctx context.Context) error {
	return c.doJSON(ctx, http.MethodGet, "/healthz", nil, nil)
}

// WaitHealthy polls /healthz until it answers, ctx expires or timeout
// elapses — the startup handshake of the smoke and load tools.
func (c *Client) WaitHealthy(ctx context.Context, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		attempt, cancel := context.WithTimeout(ctx, time.Second)
		err := c.Healthz(attempt)
		cancel()
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("faqd at %s not healthy after %v: %w", c.BaseURL, timeout, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// PutDataset uploads frames as the named dataset — a binary factor stream
// under PUT /v1/datasets/{name} — replacing any existing version, and
// returns the stored manifest.  After the upload, a spec with
// `use <name>` and @<i> factor references queries the dataset with no
// factor bytes on the wire.
func (c *Client) PutDataset(ctx context.Context, name string, frames []*wire.Frame) (*DatasetInfo, error) {
	var body bytes.Buffer
	enc := wire.NewEncoder(&body)
	if err := enc.WriteStreamHeader(nil, len(frames)); err != nil {
		return nil, err
	}
	for i, f := range frames {
		if err := enc.Encode(f); err != nil {
			return nil, fmt.Errorf("faqd: encoding factor frame %d: %w", i, err)
		}
	}
	var info DatasetInfo
	path := "/v1/datasets/" + url.PathEscape(name)
	if err := c.do(ctx, http.MethodPut, path, wire.ContentType, &body, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Dataset fetches one dataset's manifest: factor shapes, sizes, checksums.
func (c *Client) Dataset(ctx context.Context, name string) (*DatasetInfo, error) {
	var info DatasetInfo
	path := "/v1/datasets/" + url.PathEscape(name)
	if err := c.doJSON(ctx, http.MethodGet, path, nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Datasets lists every dataset resident on the server.
func (c *Client) Datasets(ctx context.Context) ([]DatasetInfo, error) {
	var resp DatasetListResponse
	if err := c.doJSON(ctx, http.MethodGet, "/v1/datasets", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Datasets, nil
}

// DeleteDataset removes the named dataset from the server's catalog and
// disk.
func (c *Client) DeleteDataset(ctx context.Context, name string) error {
	path := "/v1/datasets/" + url.PathEscape(name)
	return c.doJSON(ctx, http.MethodDelete, path, nil, nil)
}

// Delta posts one JSON delta batch to /v1/delta: row changes against the
// named session's evolving factor state (seeded from the spec on first
// contact).  The response carries the maintained result.
func (c *Client) Delta(ctx context.Context, req *DeltaRequest) (*DeltaResponse, error) {
	var resp DeltaResponse
	if err := c.doJSON(ctx, http.MethodPost, "/v1/delta", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// DeltaFrames posts one binary delta batch: req (whose Deltas must be
// empty — the frames carry the changes) becomes the stream's envelope
// header and delta frames follow.  This is the fast maintenance path: the
// server decodes frames straight into flat delta row blocks.
func (c *Client) DeltaFrames(ctx context.Context, req *DeltaRequest, frames []*wire.DeltaFrame) (*DeltaResponse, error) {
	stream, err := EncodeDeltaStream(req, frames)
	if err != nil {
		return nil, err
	}
	return c.DeltaStream(ctx, stream)
}

// EncodeDeltaStream renders a binary /v1/delta body: req (whose Deltas
// must be empty) as the envelope header, then the delta frames.  Load
// generators replaying one batch many times encode once and post the
// bytes with DeltaStream.
func EncodeDeltaStream(req *DeltaRequest, frames []*wire.DeltaFrame) ([]byte, error) {
	if req.Deltas != nil {
		return nil, fmt.Errorf("faqd: binary delta request carries JSON deltas; ship them as frames")
	}
	header, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var body bytes.Buffer
	enc := wire.NewEncoder(&body)
	if err := enc.WriteStreamHeader(header, len(frames)); err != nil {
		return nil, err
	}
	for i, f := range frames {
		if err := enc.EncodeDelta(f); err != nil {
			return nil, fmt.Errorf("faqd: encoding delta frame %d: %w", i, err)
		}
	}
	return body.Bytes(), nil
}

// DeltaStream posts an already-encoded binary delta body (see
// EncodeDeltaStream).
func (c *Client) DeltaStream(ctx context.Context, stream []byte) (*DeltaResponse, error) {
	var resp DeltaResponse
	if err := c.do(ctx, http.MethodPost, "/v1/delta", wire.DeltaContentType, bytes.NewReader(stream), &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
