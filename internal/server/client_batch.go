// Client-side batch and binary-response support: QueryBatch and friends
// for POST /v1/batch (JSON or binary envelope in, JSON or streamed binary
// result records out) and QueryBinary for single queries negotiating a
// binary factor-frame response.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"github.com/faqdb/faq/internal/wire"
)

// QueryBinary runs one JSON query asking for a binary response
// (Accept: application/x-faq-factors): the scalar value or the output
// listing comes back as a factor stream instead of JSON, preserving
// exact float bits and full-range int64 values.  The decoded response
// is a plain QueryResponse; read outputs through the typed accessors
// as usual.
func (c *Client) QueryBinary(ctx context.Context, req *QueryRequest) (*QueryResponse, error) {
	buf, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	return c.doBinaryQuery(ctx, "application/json", bytes.NewReader(buf))
}

// QueryStreamBinary posts an already-encoded binary query body (see
// EncodeQueryStream) and asks for a binary response too — fully binary
// in both directions.
func (c *Client) QueryStreamBinary(ctx context.Context, stream []byte) (*QueryResponse, error) {
	return c.doBinaryQuery(ctx, wire.ContentType, bytes.NewReader(stream))
}

// doBinaryQuery posts the body with Accept: application/x-faq-factors and
// decodes the binary response stream.
func (c *Client) doBinaryQuery(ctx context.Context, contentType string, body io.Reader) (*QueryResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/query", body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	req.Header.Set("Accept", wire.ContentType)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var apiErr ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error != "" {
			return nil, fmt.Errorf("faqd: POST /v1/query: %s (HTTP %d)", apiErr.Error, resp.StatusCode)
		}
		return nil, fmt.Errorf("faqd: POST /v1/query: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != wire.ContentType {
		return nil, fmt.Errorf("faqd: server answered %q, not the requested binary encoding", ct)
	}
	return DecodeBinaryQueryResponse(resp.Body)
}

// DecodeBinaryQueryResponse reads a binary /v1/query response stream: the
// QueryResponse JSON envelope header, then zero frames (scalar result)
// or one frame carrying the output listing, which is spliced back into
// Output.Tuples and Output.Values.
func DecodeBinaryQueryResponse(r io.Reader) (*QueryResponse, error) {
	dec := wire.NewDecoder(r)
	header, nframes, err := dec.ReadStreamHeader(maxStreamHeaderBytes)
	if err != nil {
		return nil, fmt.Errorf("faqd: binary response header: %w", err)
	}
	var resp QueryResponse
	jdec := json.NewDecoder(bytes.NewReader(header))
	jdec.UseNumber()
	if err := jdec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("faqd: binary response header: %w", err)
	}
	switch nframes {
	case 0:
		return &resp, nil
	case 1:
	default:
		return nil, fmt.Errorf("faqd: binary query response carries %d frames, want 0 or 1", nframes)
	}
	f, err := dec.Decode()
	if err != nil {
		return nil, fmt.Errorf("faqd: binary response output frame: %w", err)
	}
	if resp.Output == nil {
		resp.Output = &OutputData{}
	}
	spliceOutputFrame(resp.Output, f)
	return &resp, nil
}

// spliceOutputFrame fills an OutputData's Tuples and Values from a
// decoded output frame; Vars stay as the JSON header delivered them.
func spliceOutputFrame(out *OutputData, f *wire.Frame) {
	n := f.NumRows()
	tuples := make([][]int, n)
	for i := 0; i < n; i++ {
		row := make([]int, f.Arity)
		for j := 0; j < f.Arity; j++ {
			row[j] = int(f.Rows[i*f.Arity+j])
		}
		tuples[i] = row
	}
	out.Tuples = tuples
	switch f.Domain {
	case wire.DomainFloat, wire.DomainTropical:
		out.Values = f.Floats
	case wire.DomainInt:
		out.Values = f.Ints
	case wire.DomainBool:
		out.Values = f.Bools
	}
}

// QueryBatch runs a batch of same-spec queries in one request with JSON
// in both directions.  Items come back in index order; check
// resp.Status for "partial" and each item's Error.
func (c *Client) QueryBatch(ctx context.Context, req *BatchRequest) (*BatchResponse, error) {
	var resp BatchResponse
	if err := c.doJSON(ctx, http.MethodPost, "/v1/batch", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// EncodeBatchStream renders a binary /v1/batch body: req (whose Items
// must be empty — the frame groups carry the data) as the envelope
// header, then one frame group per item.  A nil group means "run the
// spec's own inline data" for that item.
func EncodeBatchStream(req *BatchRequest, items [][]*wire.Frame) ([]byte, error) {
	if req.Items != nil {
		return nil, fmt.Errorf("faqd: binary batch request carries JSON items; ship them as frame groups")
	}
	header, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var body bytes.Buffer
	enc := wire.NewEncoder(&body)
	if err := enc.WriteBatchHeader(header, len(items)); err != nil {
		return nil, err
	}
	for i, group := range items {
		if err := enc.WriteBatchItemHeader(len(group)); err != nil {
			return nil, err
		}
		for j, f := range group {
			if err := enc.Encode(f); err != nil {
				return nil, fmt.Errorf("faqd: encoding batch item %d frame %d: %w", i, j, err)
			}
		}
	}
	return body.Bytes(), nil
}

// QueryBatchFrames runs a batch shipping the per-item factor data as
// binary frame groups (see EncodeBatchStream); the response is JSON.
func (c *Client) QueryBatchFrames(ctx context.Context, req *BatchRequest, items [][]*wire.Frame) (*BatchResponse, error) {
	stream, err := EncodeBatchStream(req, items)
	if err != nil {
		return nil, err
	}
	var resp BatchResponse
	if err := c.do(ctx, http.MethodPost, "/v1/batch", wire.BatchContentType, bytes.NewReader(stream), &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// QueryBatchStream runs a batch asking for the streamed binary result
// encoding (Accept: application/x-faq-results): the server pushes one
// result record per item as it completes, in completion order.  body is
// an encoded request in either direction — JSON (contentType
// "application/json") or a binary envelope from EncodeBatchStream
// (wire.BatchContentType).
//
// When onItem is non-nil it observes every item record in arrival
// (completion) order, before reassembly; a non-nil return aborts the
// stream.  The returned BatchResponse has items back in index order,
// exactly as the JSON encoding would deliver them.  A stream that ends
// without the terminating end record fails with an error rather than
// passing off a truncated batch as complete.
func (c *Client) QueryBatchStream(ctx context.Context, contentType string, body []byte,
	onItem func(*BatchItemResult) error) (*BatchResponse, error) {

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	req.Header.Set("Accept", wire.ResultContentType)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var apiErr ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error != "" {
			return nil, fmt.Errorf("faqd: POST /v1/batch: %s (HTTP %d)", apiErr.Error, resp.StatusCode)
		}
		return nil, fmt.Errorf("faqd: POST /v1/batch: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != wire.ResultContentType {
		return nil, fmt.Errorf("faqd: server answered %q, not the requested result-stream encoding", ct)
	}

	dec := wire.NewDecoder(resp.Body)
	header, err := dec.ReadResultHeader(maxStreamHeaderBytes)
	if err != nil {
		return nil, fmt.Errorf("faqd: result stream header: %w", err)
	}
	var sh BatchStreamHeader
	if err := json.Unmarshal(header, &sh); err != nil {
		return nil, fmt.Errorf("faqd: result stream header: %w", err)
	}
	out := &BatchResponse{
		Domain: sh.Domain,
		Plan:   sh.Plan,
		Items:  make([]BatchItemResult, sh.Items),
	}
	for i := range out.Items {
		out.Items[i] = BatchItemResult{Index: i, Error: "missing from result stream"}
	}
	for {
		rf, err := dec.DecodeResult()
		if err == io.EOF {
			return nil, fmt.Errorf("faqd: result stream ended without its end record (%d items seen)", sh.Items)
		}
		if err != nil {
			return nil, fmt.Errorf("faqd: result stream: %w", err)
		}
		if rf.Kind == wire.ResultEnd {
			var sum BatchSummary
			if err := json.Unmarshal(rf.Header, &sum); err != nil {
				return nil, fmt.Errorf("faqd: result stream summary: %w", err)
			}
			out.Completed = sum.Completed
			out.Status = sum.Status
			out.ElapsedMS = sum.ElapsedMS
			out.Trace = sum.Trace
			return out, nil
		}
		var item BatchItemResult
		jdec := json.NewDecoder(bytes.NewReader(rf.Header))
		jdec.UseNumber()
		if err := jdec.Decode(&item); err != nil {
			return nil, fmt.Errorf("faqd: result record %d header: %w", rf.Index, err)
		}
		if rf.Output != nil {
			if item.Output == nil {
				item.Output = &OutputData{}
			}
			spliceOutputFrame(item.Output, rf.Output)
		}
		if onItem != nil {
			if err := onItem(&item); err != nil {
				return nil, err
			}
		}
		if item.Index < 0 || item.Index >= len(out.Items) {
			return nil, fmt.Errorf("faqd: result record index %d out of range (%d items)", item.Index, len(out.Items))
		}
		out.Items[item.Index] = item
	}
}
