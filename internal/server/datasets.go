// The dataset catalog endpoints and the resident-query path: PUT/GET/
// DELETE /v1/datasets/{name} manage named, checksummed on-disk factor sets
// (internal/store), and a spec with a `use <dataset>` directive runs
// /v1/query against the mapped factors with zero factor bytes on the wire.
//
// Resident queries are served through a prepared-query registry keyed by
// (dataset, spec, workers): the first request resolves the spec's @<ref>
// blocks to zero-copy views over the mapped file (factor.NewView — no
// decode, no heap copy) and prepares once; every later request reuses the
// prepared query, whose stable factor pointers keep the engine's trie
// cache warm.  Entries pin their dataset's mapping with a reference and
// are dropped — releasing it — when the dataset is replaced or deleted,
// when the LRU bound evicts them, or when a staleness check notices a
// newer version.
package server

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/faqdb/faq/internal/core"
	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/semiring"
	"github.com/faqdb/faq/internal/spec"
	"github.com/faqdb/faq/internal/store"
	"github.com/faqdb/faq/internal/wire"
)

// maxDatasetFrames caps the factor count of one dataset upload.
const maxDatasetFrames = 65536

// Store exposes the server's dataset store; nil when the server runs
// without a data directory.
func (s *Server) Store() *store.Store { return s.store }

// requireStore answers 503 when the server has no dataset store.
func (s *Server) requireStore(w http.ResponseWriter) bool {
	if s.store == nil {
		writeError(w, http.StatusServiceUnavailable,
			"dataset store not configured (start faqd with -data <dir>)")
		return false
	}
	return true
}

// datasetInfoOf renders a store manifest for the API.
func datasetInfoOf(m store.Manifest, bytes int64) DatasetInfo {
	info := DatasetInfo{Name: m.Name, Domain: m.Domain, Bytes: bytes}
	for _, f := range m.Factors {
		info.Factors = append(info.Factors, DatasetFactorInfo{
			Arity: f.Arity, Rows: f.Rows, Bytes: f.Length,
			CRC32: fmt.Sprintf("%08x", f.CRC32),
		})
	}
	return info
}

// errDatasetMismatch marks a spec whose declared domain disagrees with the
// dataset it uses — the client's mistake.
var errDatasetMismatch = errors.New("dataset domain mismatch")

// writeStoreError maps a store failure to a status: a bad name or a
// domain mismatch is the client's, an absent dataset is 404, everything
// else is the server's.
func writeStoreError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, store.ErrBadName), errors.Is(err, errDatasetMismatch):
		writeError(w, http.StatusBadRequest, "%v", err)
	case errors.Is(err, store.ErrNotFound):
		writeError(w, http.StatusNotFound, "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// handleDatasetPut stores the request body — a binary factor stream, the
// same Content-Type and framing as a binary /v1/query — as the named
// dataset, replacing any existing version, and answers with its manifest.
func (s *Server) handleDatasetPut(w http.ResponseWriter, r *http.Request) {
	if !s.requireStore(w) {
		return
	}
	name := r.PathValue("name")
	if !store.ValidName(name) {
		writeError(w, http.StatusBadRequest, "invalid dataset name %q", name)
		return
	}
	ct := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(ct); err != nil || mt != wire.ContentType {
		writeError(w, http.StatusUnsupportedMediaType,
			"dataset uploads must be %s factor streams, got %q", wire.ContentType, ct)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := wire.NewDecoder(body)
	dec.SetMaxFrameBytes(int(min(s.cfg.MaxBodyBytes, int64(wire.DefaultMaxFrameBytes))))
	// The envelope's opaque header is unused for uploads (clients send it
	// empty); only the frames matter.
	_, n, err := dec.ReadStreamHeader(maxStreamHeaderBytes)
	if err != nil {
		writeDecodeError(w, err)
		return
	}
	if n == 0 {
		writeError(w, http.StatusBadRequest, "dataset upload carries no factor frames")
		return
	}
	if n > maxDatasetFrames {
		writeError(w, http.StatusBadRequest, "dataset upload declares %d frames (limit %d)", n, maxDatasetFrames)
		return
	}
	frames := make([]*wire.Frame, 0, min(n, 1024))
	for i := 0; i < n; i++ {
		f, err := dec.Decode()
		if err != nil {
			writeDecodeError(w, fmt.Errorf("factor frame %d of %d: %w", i, n, err))
			return
		}
		frames = append(frames, f)
	}
	if _, err := dec.Decode(); err != io.EOF {
		writeError(w, http.StatusBadRequest, "stream declares %d frames but carries more", n)
		return
	}
	man, err := s.store.Put(name, frames)
	if err != nil {
		switch {
		case errors.Is(err, store.ErrBadName), errors.Is(err, store.ErrUpload):
			// Canonicalization failures (duplicate rows, mixed domains) are
			// the upload's fault.
			writeError(w, http.StatusBadRequest, "%v", err)
		case errors.Is(err, store.ErrClosed):
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		default:
			writeError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	// Replacing a dataset invalidates every prepared query built over its
	// previous mapping.
	s.resident.purgeDataset(name)
	ds, dsErr := s.store.Get(name)
	var bytes int64
	if dsErr == nil {
		bytes = int64(ds.Bytes())
		ds.Release()
	}
	writeJSON(w, http.StatusOK, datasetInfoOf(man, bytes))
}

// handleDatasetGet describes one dataset: shapes, sizes and checksums.
func (s *Server) handleDatasetGet(w http.ResponseWriter, r *http.Request) {
	if !s.requireStore(w) {
		return
	}
	ds, err := s.store.Get(r.PathValue("name"))
	if err != nil {
		writeStoreError(w, err)
		return
	}
	defer ds.Release()
	writeJSON(w, http.StatusOK, datasetInfoOf(ds.Manifest(), int64(ds.Bytes())))
}

// handleDatasetList lists every resident dataset.
func (s *Server) handleDatasetList(w http.ResponseWriter, r *http.Request) {
	if !s.requireStore(w) {
		return
	}
	resp := DatasetListResponse{Datasets: []DatasetInfo{}}
	for _, m := range s.store.List() {
		var bytes int64
		if ds, err := s.store.Get(m.Name); err == nil {
			bytes = int64(ds.Bytes())
			ds.Release()
		}
		resp.Datasets = append(resp.Datasets, datasetInfoOf(m, bytes))
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleDatasetDelete removes a dataset from the catalog and disk.
// In-flight queries over it finish against the old mapping.
func (s *Server) handleDatasetDelete(w http.ResponseWriter, r *http.Request) {
	if !s.requireStore(w) {
		return
	}
	name := r.PathValue("name")
	if err := s.store.Delete(name); err != nil {
		writeStoreError(w, err)
		return
	}
	s.resident.purgeDataset(name)
	w.WriteHeader(http.StatusNoContent)
}

// residentEntry is one prepared resident query: the dataset version it was
// built over (holding one reference on its mapping), the typed prepared
// query and everything the response encoder needs.
type residentEntry struct {
	dataset string
	ds      *store.Dataset // referenced; released when the entry dies
	domain  string
	prep    any // *core.PreparedQuery[V]
	q       any // *core.Query[V]
}

// residentRegistry is an LRU-bounded map of resident prepared queries,
// keyed by (dataset, spec text, workers).  It is the dataset twin of the
// delta sessionRegistry, with dataset-version staleness and reference
// management on top.
type residentRegistry struct {
	mu  sync.Mutex
	max int
	lru *list.List // *residentNode; front = most recently used
	by  map[string]*list.Element
}

type residentNode struct {
	key   string
	entry *residentEntry
}

func newResidentRegistry(max int) *residentRegistry {
	if max <= 0 {
		max = defaultMaxSessions
	}
	return &residentRegistry{max: max, lru: list.New(), by: map[string]*list.Element{}}
}

// residentKey builds the registry key for one (dataset, spec, workers).
func residentKey(dataset, specText string, workers int) string {
	return fmt.Sprintf("%s\x00%d\x00%s", dataset, workers, specText)
}

// get returns the entry for key if it was built over current — the
// still-resident dataset version — refreshing its recency.  A stale entry
// (the dataset was replaced since) is dropped, its reference released, and
// nil returned so the caller rebuilds.
func (r *residentRegistry) get(key string, current *store.Dataset) *residentEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.by[key]
	if !ok {
		return nil
	}
	entry := el.Value.(*residentNode).entry
	if entry.ds != current {
		delete(r.by, key)
		r.lru.Remove(el)
		entry.ds.Release()
		return nil
	}
	r.lru.MoveToFront(el)
	return entry
}

// add stores entry under key unless a racing request won, in which case
// the duplicate's reference is released and the stored entry returned.
// LRU overflow evicts (and releases) the least recently used entry.
func (r *residentRegistry) add(key string, entry *residentEntry) *residentEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if el, ok := r.by[key]; ok {
		stored := el.Value.(*residentNode).entry
		if stored.ds == entry.ds {
			r.lru.MoveToFront(el)
			entry.ds.Release()
			return stored
		}
		// The stored entry is for an older dataset version: replace it.
		delete(r.by, key)
		r.lru.Remove(el)
		stored.ds.Release()
	}
	r.by[key] = r.lru.PushFront(&residentNode{key: key, entry: entry})
	for r.lru.Len() > r.max {
		last := r.lru.Back()
		node := last.Value.(*residentNode)
		delete(r.by, node.key)
		r.lru.Remove(last)
		node.entry.ds.Release()
	}
	return entry
}

// purgeDataset drops (and releases) every entry built over the named
// dataset — called when the dataset is replaced or deleted.
func (r *residentRegistry) purgeDataset(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for el := r.lru.Front(); el != nil; {
		next := el.Next()
		node := el.Value.(*residentNode)
		if node.entry.dataset == name {
			delete(r.by, node.key)
			r.lru.Remove(el)
			node.entry.ds.Release()
		}
		el = next
	}
}

// purgeAll drops every entry; used at server close.
func (r *residentRegistry) purgeAll() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for el := r.lru.Front(); el != nil; el = el.Next() {
		el.Value.(*residentNode).entry.ds.Release()
	}
	r.lru.Init()
	r.by = map[string]*list.Element{}
}

// len reports the registry population for /statsz.
func (r *residentRegistry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lru.Len()
}

// datasetResolver resolves @<ref> blocks against one dataset: refs are
// decimal factor indices, stored columns are read in the block's
// declaration order, and when that order is already sorted (the common
// case) the factor is a zero-copy view over the mapped file.  An unsorted
// declaration permutes into fresh heap columns, exactly as shipped frames
// are permuted.
func datasetResolver[V any](ds *store.Dataset, col func(*store.Dataset, int) []V) spec.Resolver[V] {
	return func(d *semiring.Domain[V], ref string, declVars []int) (*factor.Factor[V], error) {
		idx, err := strconv.Atoi(ref)
		if err != nil || idx < 0 || idx >= ds.NumFactors() {
			return nil, fmt.Errorf("dataset %q has no factor @%s (%d factors)",
				ds.Name(), ref, ds.NumFactors())
		}
		meta := ds.Meta(idx)
		if meta.Arity != len(declVars) {
			return nil, fmt.Errorf("dataset %q factor @%d has arity %d, block declares %d",
				ds.Name(), idx, meta.Arity, len(declVars))
		}
		rows := ds.Rows(idx)
		values := col(ds, idx)
		perm, identity := declPerm(declVars)
		sorted := make([]int, len(declVars))
		for i, p := range perm {
			sorted[i] = declVars[p]
		}
		if identity {
			return factor.NewView(d, sorted, rows, values)
		}
		k := len(declVars)
		prows := make([]int32, len(rows))
		for r := 0; r < meta.Rows; r++ {
			src := rows[r*k : r*k+k]
			dst := prows[r*k : r*k+k]
			for j, p := range perm {
				dst[j] = src[p]
			}
		}
		// NewRows compacts and sorts in place: it must never touch the
		// mapped columns, so the permuted path hands it heap copies.
		return factor.NewRows(d, sorted, prows, append([]V(nil), values...), nil)
	}
}

// cloningResolver wraps a resolver so every resolved factor is a deep heap
// copy — the seed path of /v1/delta sessions, whose factor state evolves
// in place and must not alias (or pin) the read-only mapping.
func cloningResolver[V any](inner spec.Resolver[V]) spec.Resolver[V] {
	return func(d *semiring.Domain[V], ref string, declVars []int) (*factor.Factor[V], error) {
		f, err := inner(d, ref, declVars)
		if err != nil {
			return nil, err
		}
		return f.Clone(), nil
	}
}

// resolveDataset fetches the spec's dataset (with a reference for the
// caller) and checks its domain against the request's.
func resolveDataset[V any](s *Server, doc *spec.Document, cv domainCodec[V]) (*store.Dataset, error) {
	ds, err := s.store.Get(doc.Dataset)
	if err != nil {
		return nil, err
	}
	if ds.Domain() != cv.wireDom {
		ds.Release()
		return nil, fmt.Errorf("%w: dataset %q holds %v factors, spec declares %s",
			errDatasetMismatch, doc.Dataset, ds.Domain(), cv.name)
	}
	return ds, nil
}

// serveDatasetQuery is the resident-data tail of handleQuery: resolve the
// prepared query from the registry (or build it over zero-copy views and
// register it), run, and encode.  No factor bytes arrive on the wire and
// no factor decode happens on the hit path — the win that makes
// query-by-name faster than shipping data.
func serveDatasetQuery[V any](s *Server, w http.ResponseWriter, r *http.Request, start time.Time,
	req *QueryRequest, doc *spec.Document, eng *core.Engine[V], cv domainCodec[V]) {

	if !s.requireStore(w) {
		return
	}
	ro := reqObsFrom(r.Context())
	endResolve := ro.stage(stageResolve)
	defer endResolve()
	key := residentKey(doc.Dataset, req.Spec, req.Workers)
	ds, err := resolveDataset(s, doc, cv)
	if err != nil {
		writeStoreError(w, err)
		return
	}
	// The request's reference pins the mapping through the run: a
	// concurrent delete or replace purges the registry (releasing its
	// reference) but cannot unmap pages this run is reading.
	defer ds.Release()
	entry := s.resident.get(key, ds)
	if entry == nil {
		// Build over zero-copy views; the registry entry takes its own
		// reference on the mapping.
		q, _, err := cv.build(doc, datasetResolver(ds, cv.storeCol))
		endResolve()
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		opts := core.DefaultOptions()
		opts.Workers = req.Workers
		prepCtx, cancel := context.WithTimeout(r.Context(), s.queryTimeout(req.TimeoutMS))
		endPrep := ro.stage(stagePrepare)
		prep, err := eng.PrepareCtx(prepCtx, q, opts)
		endPrep()
		cancel()
		if err != nil {
			s.writeRunError(w, r.Context(), err)
			return
		}
		ds.Acquire()
		entry = s.resident.add(key, &residentEntry{
			dataset: doc.Dataset, ds: ds, domain: cv.name, prep: prep, q: q,
		})
	}
	// A registry hit skips the prepare stage entirely — a traced response
	// with no "prepare" span means the resident prepared query served it.
	endResolve()
	prep := entry.prep.(*core.PreparedQuery[V])
	q := entry.q.(*core.Query[V])
	ro.setQuery(cv.name, doc.Dataset, prep.ShapeKey())

	ctx, cancel := context.WithTimeout(r.Context(), s.queryTimeout(req.TimeoutMS))
	defer cancel()
	if !s.acquireRunSlot() {
		s.m.rejected.Add(1)
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.retryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests,
			"server is at its %d-run concurrency bound, retry later", s.cfg.MaxInflight)
		return
	}
	var res *core.Result[V]
	err = func() (err error) {
		defer s.releaseRunSlot()
		endExec := ro.stage(stageExecute)
		defer endExec()
		ro.runLabeled(ctx, func(ctx context.Context) {
			res, err = prep.Run(ctx)
		})
		return err
	}()
	if err != nil {
		s.writeRunError(w, ctx, err)
		return
	}
	s.m.countDomain(cv.name)
	s.m.datasetQ.Add(1)
	endEncode := ro.stage(stageEncode)
	if acceptsMediaType(r, wire.ContentType) {
		// Same binary response negotiation as the fresh-data path: dataset
		// queries with large free-variable outputs gain the most from it.
		s.m.binaryResp.Add(1)
		stream, encErr := encodeBinaryQueryResponse(cv, q, prep, res, start, ro.traceData())
		endEncode()
		if encErr != nil {
			writeError(w, http.StatusInternalServerError, "encoding binary response: %v", encErr)
			return
		}
		w.Header().Set("Content-Type", wire.ContentType)
		w.Write(stream) // nothing to do about a broken connection here
		return
	}
	resp := encodeQueryResponse(cv, q, prep, res, start)
	endEncode()
	resp.Trace = ro.traceData()
	writeJSON(w, http.StatusOK, resp)
}
