package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/faqdb/faq/internal/obs"
)

// syncBuffer is a goroutine-safe bytes.Buffer for the slow-query log: the
// middleware writes entries after the response bytes are flushed, so the
// test goroutine and the handler goroutine can touch it concurrently.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func (b *syncBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Len()
}

// newTraceHeaderRequest builds a JSON POST asking for the trace via the
// X-FAQ-Trace header rather than the query parameter.
func newTraceHeaderRequest(url string, body []byte) (*http.Request, error) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-FAQ-Trace", "1")
	return req, nil
}

// waitFor polls cond until it holds or a deadline passes.  Request-level
// metrics and the slow-query log are written after the response is
// flushed, so a client that just got its answer may observe them a beat
// later.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestIsMonitoringPath(t *testing.T) {
	for _, p := range []string{"/healthz", "/statsz", "/metrics", "/debug/pprof/", "/debug/pprof/heap"} {
		if !isMonitoringPath(p) {
			t.Errorf("isMonitoringPath(%q) = false, want true", p)
		}
	}
	for _, p := range []string{"/v1/query", "/v1/delta", "/v1/datasets", "/", "/debug/pprofx"} {
		if isMonitoringPath(p) {
			t.Errorf("isMonitoringPath(%q) = true, want false", p)
		}
	}
}

// spanNames collects the top-level span names of a trace in order.
func spanNames(td *obs.TraceData) []string {
	names := make([]string, len(td.Spans))
	for i, sp := range td.Spans {
		names[i] = sp.Name
	}
	return names
}

func findSpan(td *obs.TraceData, name string) *obs.SpanData {
	for i := range td.Spans {
		if td.Spans[i].Name == name {
			return &td.Spans[i]
		}
	}
	return nil
}

func TestQueryTrace(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 1})
	specText := triangleSpec(8, 0, 0)

	// An untraced query must not carry a trace.
	plain, err := c.Query(context.Background(), &QueryRequest{Spec: specText})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Fatalf("untraced query returned a trace: %+v", plain.Trace)
	}

	resp, err := c.QueryWithTrace(context.Background(), &QueryRequest{Spec: specText})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Trace == nil {
		t.Fatal("?trace=1 returned no trace")
	}
	td := resp.Trace

	// The pipeline stages appear in order.  This run hits the plan cache
	// warmed by the untraced query above, so prepare is present (it is the
	// cache lookup) and annotated as a hit.
	want := []string{"parse", "resolve", "prepare", "execute", "encode"}
	got := spanNames(td)
	if len(got) != len(want) {
		t.Fatalf("top-level spans %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("top-level spans %v, want %v", got, want)
		}
	}
	prep := findSpan(td, "prepare")
	if prep.Attrs["plan"] != "hit" {
		t.Fatalf("warm prepare span attrs %v, want plan=hit", prep.Attrs)
	}

	// The execute span holds per-elimination children (3 bound variables)
	// plus the listing span.
	exec := findSpan(td, "execute")
	elims := 0
	for _, kid := range exec.Spans {
		if kid.Name == "eliminate" {
			elims++
			if kid.Attrs["var"] == nil || kid.Attrs["kind"] == nil {
				t.Fatalf("eliminate span missing attrs: %v", kid.Attrs)
			}
		}
	}
	if elims != 3 {
		t.Fatalf("execute span has %d eliminate children, want 3", elims)
	}

	// Stage spans partition the request: their durations sum to no more
	// than the trace wall time, and every duration is non-negative.
	var sum float64
	for _, sp := range td.Spans {
		if sp.DurMS < 0 {
			t.Fatalf("negative span duration: %+v", sp)
		}
		sum += sp.DurMS
	}
	if sum > td.DurMS*1.001+0.1 {
		t.Fatalf("stage durations sum to %.3fms > trace wall %.3fms", sum, td.DurMS)
	}
}

func TestQueryTraceHeader(t *testing.T) {
	_, ts, c := newTestServer(t, Config{Workers: 1})
	body, err := json.Marshal(&QueryRequest{Spec: triangleSpec(6, 0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	req, err := newTraceHeaderRequest(ts.URL+"/v1/query", body)
	if err != nil {
		t.Fatal(err)
	}
	httpResp, err := c.httpClient().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var resp QueryResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Trace == nil {
		t.Fatal("X-FAQ-Trace: 1 returned no trace")
	}
}

func TestMetricsExposition(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 1})
	specText := triangleSpec(8, 0, 0)
	if _, err := c.Query(context.Background(), &QueryRequest{Spec: specText}); err != nil {
		t.Fatal(err)
	}

	// The request histogram and shape table are fed after the response is
	// flushed; scrape until the query has fully landed.
	var raw []byte
	var samples obs.PromSamples
	waitFor(t, func() bool {
		var err error
		raw, err = c.Metrics(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		samples, err = obs.ParsePromText(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("/metrics is not valid Prometheus text: %v\n%s", err, raw)
		}
		return samples[`faqd_request_duration_seconds_count{endpoint="query"}`] == 1
	})

	if v := samples[`faqd_queries_total`]; v != 1 {
		t.Fatalf("faqd_queries_total = %v, want 1", v)
	}
	if v := samples[`faqd_queries_domain_total{domain="float"}`]; v != 1 {
		t.Fatalf(`faqd_queries_domain_total{domain="float"} = %v, want 1`, v)
	}
	// Every stage histogram observed the one query.
	for _, st := range stageNames {
		key := `faqd_stage_duration_seconds_count{stage="` + st + `"}`
		if v := samples[key]; v != 1 {
			t.Fatalf("%s = %v, want 1", key, v)
		}
	}
	if v := samples[`faqd_request_duration_seconds_count{endpoint="query"}`]; v != 1 {
		t.Fatalf("request histogram count = %v, want 1", v)
	}
	// The query's shape landed in the bounded shape table.
	found := false
	for k := range samples {
		if strings.HasPrefix(k, "faqd_shape_queries_total{") {
			found = true
			if samples[k] != 1 {
				t.Fatalf("%s = %v, want 1", k, samples[k])
			}
		}
	}
	if !found {
		t.Fatalf("no faqd_shape_queries_total series in:\n%s", raw)
	}
	if _, ok := samples["faqd_shape_overflow_total"]; !ok {
		t.Fatal("faqd_shape_overflow_total missing")
	}
	// Engine metrics flow through the scrape-time callbacks.
	if v := samples["faqd_engine_runs_total"]; v != 1 {
		t.Fatalf("faqd_engine_runs_total = %v, want 1", v)
	}
	if v := samples["faqd_engine_plan_cache_misses_total"]; v != 1 {
		t.Fatalf("faqd_engine_plan_cache_misses_total = %v, want 1", v)
	}
}

func TestSlowQueryLog(t *testing.T) {
	var buf syncBuffer
	// SlowQuery 0 logs every request, so one query yields one entry.
	_, _, c := newTestServer(t, Config{Workers: 1, SlowQueryLog: &buf, SlowQuery: 0})
	if _, err := c.Query(context.Background(), &QueryRequest{Spec: triangleSpec(8, 0, 0)}); err != nil {
		t.Fatal(err)
	}

	waitFor(t, func() bool { return buf.Len() > 0 })
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("slow log has %d lines, want 1:\n%s", len(lines), buf.String())
	}
	var entry obs.SlowQueryEntry
	if err := json.Unmarshal([]byte(lines[0]), &entry); err != nil {
		t.Fatalf("slow log line is not JSON: %v\n%s", err, lines[0])
	}
	if entry.Endpoint != "query" || entry.Status != 200 {
		t.Fatalf("slow log entry: %+v", entry)
	}
	if entry.Domain != "float" || entry.Shape == "" {
		t.Fatalf("slow log entry missing query identity: %+v", entry)
	}
	if entry.Trace == nil || len(entry.Trace.Spans) == 0 {
		t.Fatalf("slow log entry has no stage breakdown: %+v", entry)
	}
	if _, err := time.Parse(time.RFC3339Nano, entry.Time); err != nil {
		t.Fatalf("slow log timestamp %q: %v", entry.Time, err)
	}
	if entry.WallMS < 0 {
		t.Fatalf("slow log wall %v", entry.WallMS)
	}
	// A threshold above any test-query latency logs nothing.
	var quiet syncBuffer
	_, _, c2 := newTestServer(t, Config{Workers: 1, SlowQueryLog: &quiet, SlowQuery: time.Hour})
	if _, err := c2.Query(context.Background(), &QueryRequest{Spec: triangleSpec(8, 0, 0)}); err != nil {
		t.Fatal(err)
	}
	if quiet.Len() != 0 {
		t.Fatalf("fast query crossed an hour-long slow threshold:\n%s", quiet.String())
	}
}

// BenchmarkReqObsOverhead prices the whole untraced per-request
// observability path — begin, five stage checkpoints, finish — to keep
// it honest against the ≤1% serving-overhead budget (requests are
// milliseconds; this must stay microseconds).
func BenchmarkReqObsOverhead(b *testing.B) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	r := httptest.NewRequest(http.MethodPost, "/v1/query", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ro, _ := s.obs.begin(r, "query")
		for _, st := range stageNames {
			end := ro.stage(st)
			end()
		}
		ro.setQuery("float", "", "bench-shape")
		s.obs.finish(ro, http.StatusOK, time.Millisecond)
	}
}

func TestDeltaTrace(t *testing.T) {
	_, ts, c := newTestServer(t, Config{Workers: 1})
	body, err := json.Marshal(&DeltaRequest{Session: "obs-test", Spec: triangleSpec(8, 0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	req, err := newTraceHeaderRequest(ts.URL+"/v1/delta", body)
	if err != nil {
		t.Fatal(err)
	}
	httpResp, err := c.httpClient().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var resp DeltaResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Trace == nil || len(resp.Trace.Spans) == 0 {
		t.Fatal("traced delta returned no span tree")
	}
	if findSpan(resp.Trace, "parse") == nil || findSpan(resp.Trace, "execute") == nil {
		t.Fatalf("delta trace spans: %v", spanNames(resp.Trace))
	}
}
