package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/faqdb/faq/internal/core"
	"github.com/faqdb/faq/internal/spec"
)

// triangleSpec renders a triangle-count spec over a deterministic edge set:
// Σ_{x,y,z} ψ(x,y)·ψ(y,z)·ψ(x,z).  nfree frees the first variables (same
// hypergraph, distinct shape), shift perturbs the data (same shape,
// different answers).
func triangleSpec(dom, nfree int, shift float64) string {
	var b strings.Builder
	aggs := []string{"sum", "sum", "sum"}
	names := []string{"x", "y", "z"}
	for i, n := range names {
		agg := aggs[i]
		if i < nfree {
			agg = "free"
		}
		fmt.Fprintf(&b, "var %s %d %s\n", n, dom, agg)
	}
	edge := func(u, v string) {
		fmt.Fprintf(&b, "factor %s %s\n", u, v)
		for a := 0; a < dom; a++ {
			for c := 0; c < dom; c++ {
				if (a*7+c*3)%4 == 0 && a != c {
					fmt.Fprintf(&b, "%d %d = %g\n", a, c, 1+shift)
				}
			}
		}
		b.WriteString("end\n")
	}
	edge("x", "y")
	edge("y", "z")
	edge("x", "z")
	return b.String()
}

// solveSpec evaluates a spec single-threaded through the one-shot Solve
// path — the oracle the server must match bit-for-bit.
func solveSpec(t *testing.T, specText string) *core.Result[float64] {
	t.Helper()
	q, err := spec.Parse(strings.NewReader(specText))
	if err != nil {
		t.Fatalf("oracle parse: %v", err)
	}
	opts := core.DefaultOptions()
	opts.Workers = 1
	res, _, err := core.Solve(q, opts)
	if err != nil {
		t.Fatalf("oracle solve: %v", err)
	}
	return res
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *Client) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	c := NewClient(ts.URL)
	c.HTTPClient = ts.Client()
	return s, ts, c
}

// fval unwraps a float-domain scalar response.
func fval(t *testing.T, resp *QueryResponse) float64 {
	t.Helper()
	v, err := resp.FloatValue()
	if err != nil {
		t.Fatalf("scalar value: %v", err)
	}
	return v
}

func TestQueryScalar(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 1})
	specText := triangleSpec(8, 0, 0)
	resp, err := c.Query(context.Background(), &QueryRequest{Spec: specText})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Value == nil || resp.Output != nil {
		t.Fatalf("scalar query: value=%v output=%v", resp.Value, resp.Output)
	}
	want := solveSpec(t, specText).Scalar()
	if got := fval(t, resp); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("server %v != solve %v", got, want)
	}
	if resp.Plan.Method == "" || resp.Plan.Width <= 0 || len(resp.Plan.Order) != 3 {
		t.Fatalf("plan summary: %+v", resp.Plan)
	}
	if resp.Stats.Eliminations == 0 {
		t.Fatalf("run stats missing: %+v", resp.Stats)
	}
}

func TestQueryFreeVariables(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 1})
	specText := triangleSpec(6, 2, 0.5)
	resp, err := c.Query(context.Background(), &QueryRequest{Spec: specText})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Output == nil || resp.Value != nil {
		t.Fatalf("free-variable query: value=%v output=%v", resp.Value, resp.Output)
	}
	want := solveSpec(t, specText)
	wantTuples := want.Output.Tuples()
	gotValues, err := resp.Output.FloatValues()
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Output.Tuples) != len(wantTuples) {
		t.Fatalf("output size %d != %d", len(resp.Output.Tuples), len(wantTuples))
	}
	for i := range wantTuples {
		for j := range wantTuples[i] {
			if resp.Output.Tuples[i][j] != wantTuples[i][j] {
				t.Fatalf("tuple %d: %v != %v", i, resp.Output.Tuples[i], wantTuples[i])
			}
		}
		if math.Float64bits(gotValues[i]) != math.Float64bits(want.Output.Values[i]) {
			t.Fatalf("value %d: %v != %v", i, gotValues[i], want.Output.Values[i])
		}
	}
	if want := []string{"x", "y"}; resp.Output.Vars[0] != want[0] || resp.Output.Vars[1] != want[1] {
		t.Fatalf("output vars %v, want %v", resp.Output.Vars, want)
	}
}

// TestQueryWithFreshFactors exercises the RunWithFactors path: the spec
// carries placeholder data, the request body carries the real data, and
// repeated shapes keep hitting one cached plan.
func TestQueryWithFreshFactors(t *testing.T) {
	s, _, c := newTestServer(t, Config{Workers: 1})
	specText := triangleSpec(6, 0, 0)

	fresh := func(w float64) []FactorData {
		fd := FactorData{}
		for a := 0; a < 6; a++ {
			for b := 0; b < 6; b++ {
				if a < b { // different support than the spec data
					fd.Tuples = append(fd.Tuples, []int{a, b})
					fd.Values = append(fd.Values, w)
				}
			}
		}
		return []FactorData{fd, fd, fd}
	}

	for i, w := range []float64{1, 2, 3} {
		resp, err := c.Query(context.Background(), &QueryRequest{Spec: specText, Factors: fresh(w)})
		if err != nil {
			t.Fatal(err)
		}
		// x<y<z over the upper-triangular support: C(6,3)=20 triangles, w³ each.
		want := 20 * w * w * w
		if got := fval(t, resp); got != want {
			t.Fatalf("fresh factors w=%g: got %v, want %v", w, got, want)
		}
		st := s.Engine().StatsSnapshot()
		if st.PlanCacheMisses != 1 || int(st.PlanCacheHits) != i {
			t.Fatalf("after request %d: %+v", i, st)
		}
	}

	// Wrong factor count and wrong arity are client errors.
	if _, err := c.Query(context.Background(), &QueryRequest{Spec: specText, Factors: fresh(1)[:2]}); err == nil {
		t.Fatal("short factor list accepted")
	}
	bad := fresh(1)
	bad[0].Tuples[0] = []int{1}
	if _, err := c.Query(context.Background(), &QueryRequest{Spec: specText, Factors: bad}); err == nil {
		t.Fatal("bad arity accepted")
	}
}

// TestQueryFreshFactorsDeclarationOrder pins the fresh-factors column
// contract: tuple columns follow the spec factor block's *declaration*
// order, even when that order is unsorted, exactly like the spec's own
// data lines.  A transposition here silently corrupts results, so the
// asymmetric factor ψ(y=0, x=1) = 7 must round-trip unswapped.
func TestQueryFreshFactorsDeclarationOrder(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 1})
	// factor y x: columns of its data lines (and of fresh factors) are
	// (y, x); storage order is sorted (x, y).
	specText := "var x 3 sum\nvar y 3 sum\nfactor y x\n0 1 = 1\nend\n"
	resp, err := c.Query(context.Background(), &QueryRequest{
		Spec:    specText,
		Factors: []FactorData{{Tuples: [][]int{{0, 1}}, Values: []float64{7}}}, // ψ(y=0, x=1) = 7
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := fval(t, resp); got != 7 {
		t.Fatalf("declaration-order factor transposed: got %v, want 7", got)
	}
	// The same data through the spec's inline path agrees.
	inline, err := c.Query(context.Background(), &QueryRequest{
		Spec: "var x 3 sum\nvar y 3 sum\nfactor y x\n0 1 = 7\nend\n",
	})
	if err != nil {
		t.Fatal(err)
	}
	if fval(t, inline) != fval(t, resp) {
		t.Fatalf("inline %v != fresh %v", fval(t, inline), fval(t, resp))
	}
}

func TestQueryTimeoutOverflow(t *testing.T) {
	s, _, c := newTestServer(t, Config{Workers: 1, MaxTimeout: time.Second})
	// An absurd timeout_ms must not wrap negative (which would expire the
	// context instantly and dodge the MaxTimeout clamp): the tiny query
	// below still succeeds under the clamped deadline.
	resp, err := c.Query(context.Background(), &QueryRequest{
		Spec:      "var x 2 sum\nfactor x\n0 = 1\n1 = 2\nend\n",
		TimeoutMS: 1 << 62,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := fval(t, resp); got != 3 {
		t.Fatalf("got %v, want 3", got)
	}
	if to := s.queryTimeout(1 << 62); to != time.Second {
		t.Fatalf("overflowing timeout resolved to %v, want the 1s clamp", to)
	}
	if to := s.queryTimeout(0); to != time.Second {
		t.Fatalf("zero timeout resolved to %v, want the clamped default (1s)", to)
	}
}

func TestQueryBadRequests(t *testing.T) {
	_, ts, c := newTestServer(t, Config{Workers: 1})
	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var apiErr ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil || apiErr.Error == "" {
			t.Fatalf("error body missing for %q (decode err %v)", body, err)
		}
		return resp.StatusCode
	}
	for _, tc := range []string{
		"{not json",
		`{"spec": ""}`,
		`{"spec": "var x 2 sum\nbogus"}`,
		`{"spec": "var x 2 min\nfactor x\n0 = 1\nend"}`, // unlawful aggregate
		`{"unknown_field": 1}`,
	} {
		if code := post(tc); code != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", tc, code)
		}
	}
	// GET on a POST route is a 405 from the method-aware mux.
	resp, err := http.Get(ts.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/query: %d, want 405", resp.StatusCode)
	}
	_ = c
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Planner: "gredy"}); err == nil {
		t.Fatal("misspelled planner accepted")
	}
	if _, err := New(Config{Workers: -1}); err == nil {
		t.Fatal("negative workers accepted")
	}
}

func TestQueryBodyTooLarge(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 128})
	body := `{"spec": "` + strings.Repeat("# padding\\n", 64) + `"}`
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

func TestQueryDeadline(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{Workers: 1})
	// A dense 200-node triangle with free variables runs for tens of
	// milliseconds across several executor phases, each of which polls the
	// context: a 1 ms deadline must cancel between phases and map to 504.
	body, err := json.Marshal(&QueryRequest{Spec: triangleSpec(200, 2, 0), TimeoutMS: 1})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
}

func TestPlanEndpoint(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	rep, err := c.PlanExample(ctx, "6.2")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Vars) != 7 || rep.ExpressionTree == "" || len(rep.Plans) == 0 || rep.FHTW <= 0 {
		t.Fatalf("example report: %+v", rep)
	}

	rep, err = c.Plan(ctx, triangleSpec(4, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Vars) != 3 || rep.Vars[0] != "x" {
		t.Fatalf("spec report vars: %v", rep.Vars)
	}
	// The triangle's exact plan has width ρ* = 1.5.
	var sawExact bool
	for _, p := range rep.Plans {
		if p.Method == "exact-dp" {
			sawExact = true
			if p.Width != 1.5 {
				t.Fatalf("exact triangle width %v, want 1.5", p.Width)
			}
		}
	}
	if !sawExact {
		t.Fatalf("no exact-dp plan in %+v", rep.Plans)
	}

	if _, err := c.PlanExample(ctx, "nope"); err == nil {
		t.Fatal("unknown example accepted")
	}
}

func TestHealthzAndStatsz(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	if err := c.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
	specText := triangleSpec(6, 0, 0)
	for i := 0; i < 3; i++ {
		if _, err := c.Query(ctx, &QueryRequest{Spec: specText}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Statsz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Engine.Runs != 3 || st.Engine.PlanCacheMisses != 1 || st.Engine.PlanCacheHits != 2 {
		t.Fatalf("engine statsz: %+v", st.Engine)
	}
	if st.Server.Queries != 3 || st.Server.RequestsOK < 4 || st.Server.RequestsErr != 0 {
		t.Fatalf("server statsz: %+v", st.Server)
	}
	if st.Server.LatencyP50MS <= 0 || st.Server.LatencyP99MS < st.Server.LatencyP50MS {
		t.Fatalf("latency percentiles: %+v", st.Server)
	}
	if st.UptimeSeconds <= 0 {
		t.Fatalf("uptime %v", st.UptimeSeconds)
	}
}

func TestWaitHealthy(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 1})
	if err := c.WaitHealthy(context.Background(), time.Second); err != nil {
		t.Fatal(err)
	}
	dead := NewClient("http://127.0.0.1:1") // nothing listens on port 1
	if err := dead.WaitHealthy(context.Background(), 100*time.Millisecond); err == nil {
		t.Fatal("WaitHealthy against a dead address succeeded")
	}
}
