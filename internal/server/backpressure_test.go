package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestBackpressure429 drives the MaxInflight bound: with the single run
// slot held, /v1/query must shed load with 429 + Retry-After (counted in
// /statsz) instead of queueing, and admit again once the slot frees.
func TestBackpressure429(t *testing.T) {
	s, err := New(Config{Workers: 1, MaxInflight: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func() *http.Response {
		body, _ := json.Marshal(&QueryRequest{Spec: triangleSpec(6, 0, 0)})
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Hold the only run slot, as an in-flight query would.
	if !s.acquireRunSlot() {
		t.Fatal("fresh server should have a free slot")
	}
	resp := post()
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server answered %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 carries no Retry-After header")
	}
	if got := s.Statsz().Server.Rejected; got != 1 {
		t.Fatalf("statsz rejected = %d, want 1", got)
	}

	// Releasing the slot readmits queries.
	s.releaseRunSlot()
	resp = post()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("freed server answered %d, want 200", resp.StatusCode)
	}
	if got := s.Statsz().Server.Rejected; got != 1 {
		t.Fatalf("statsz rejected moved to %d after an admitted query", got)
	}
}

// TestBackpressureUnbounded checks that the default config never sheds.
func TestBackpressureUnbounded(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 4; i++ {
		if !s.acquireRunSlot() {
			t.Fatal("unbounded server must always admit")
		}
	}
}

func TestBackpressureConfigValidate(t *testing.T) {
	if err := (Config{MaxInflight: -1}).Validate(); err == nil {
		t.Fatal("negative max-inflight should fail validation")
	}
	if err := (Config{MaxInflight: 8}).Validate(); err != nil {
		t.Fatalf("positive max-inflight rejected: %v", err)
	}
}
