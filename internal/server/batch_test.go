package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/faqdb/faq/internal/obs"
	"github.com/faqdb/faq/internal/wire"
)

// batchPairData builds N per-item factor sets for pairSpec: the same four
// rows with values scaled per item, so every item has a distinct answer.
func batchPairData(n int, scale func(i int) float64) []BatchItem {
	return batchPairItems(n, func(i int) []float64 {
		s := scale(i)
		return []float64{2 * s, 3 * s, 5 * s, 1 * s}
	})
}

// batchPairItems is batchPairData with full control of the row values
// (the bool domain only accepts 0/1).
func batchPairItems(n int, vals func(i int) []float64) []BatchItem {
	items := make([]BatchItem, n)
	for i := range items {
		items[i] = BatchItem{Factors: []FactorData{{
			Tuples: [][]int{{0, 1}, {1, 2}, {2, 0}, {3, 3}},
			Values: vals(i),
		}}}
	}
	return items
}

// TestBatchEquivalencePerDomain is the batch acceptance test: for every
// value domain, for several parallel widths, a batch of N items must be
// bit-identical to N sequential /v1/query calls with the same factor
// sets — via both the JSON response and the streamed binary result
// records.
func TestBatchEquivalencePerDomain(t *testing.T) {
	_, _, c := newTestServer(t, Config{})
	ctx := context.Background()
	const n = 7

	scaled := func(i int) []float64 {
		s := float64(i + 1)
		return []float64{2 * s, 3 * s, 5 * s, 1 * s}
	}
	domains := []struct {
		domain, agg string
		vals        func(i int) []float64
	}{
		{"float", "sum", scaled},
		{"int", "sum", scaled},
		{"bool", "or", func(i int) []float64 {
			s := float64(i % 2)
			return []float64{s, 1 - s, s, s}
		}},
		{"tropical", "min", scaled},
	}
	for _, d := range domains {
		t.Run(d.domain, func(t *testing.T) {
			specText := pairSpec(d.domain, d.agg)
			items := batchPairItems(n, d.vals)

			// The oracle: each item as its own single query.
			want := make([]*QueryResponse, n)
			for i, item := range items {
				var err error
				want[i], err = c.Query(ctx, &QueryRequest{Spec: specText, Factors: item.Factors})
				if err != nil {
					t.Fatalf("single query %d: %v", i, err)
				}
			}

			for _, parallel := range []int{1, 3, 16} {
				req := &BatchRequest{Spec: specText, Items: items, Parallel: parallel}
				br, err := c.QueryBatch(ctx, req)
				if err != nil {
					t.Fatalf("batch parallel=%d: %v", parallel, err)
				}
				checkBatchMatchesSingles(t, d.domain, br, want, n)

				// Same request, streamed binary result records.
				body, err := json.Marshal(req)
				if err != nil {
					t.Fatal(err)
				}
				seen := 0
				sr, err := c.QueryBatchStream(ctx, "application/json", body,
					func(*BatchItemResult) error { seen++; return nil })
				if err != nil {
					t.Fatalf("batch stream parallel=%d: %v", parallel, err)
				}
				if seen != n {
					t.Fatalf("stream callback saw %d items, want %d", seen, n)
				}
				checkBatchMatchesSingles(t, d.domain, sr, want, n)
			}
		})
	}
}

// checkBatchMatchesSingles compares every batch item against its
// single-query oracle, bit-exactly for float-valued domains.
func checkBatchMatchesSingles(t *testing.T, domain string, br *BatchResponse, want []*QueryResponse, n int) {
	t.Helper()
	if br.Domain != domain {
		t.Fatalf("batch domain %q, want %q", br.Domain, domain)
	}
	if br.Status != BatchStatusOK || br.Completed != n || len(br.Items) != n {
		t.Fatalf("batch status=%q completed=%d items=%d, want ok/%d/%d",
			br.Status, br.Completed, len(br.Items), n, n)
	}
	for i, item := range br.Items {
		if item.Index != i {
			t.Fatalf("item %d carries index %d", i, item.Index)
		}
		if item.Error != "" {
			t.Fatalf("item %d failed: %s", i, item.Error)
		}
		switch domain {
		case "float", "tropical":
			got, err := item.FloatValue()
			if err != nil {
				t.Fatalf("item %d value: %v", i, err)
			}
			ref := fval(t, want[i])
			if math.Float64bits(got) != math.Float64bits(ref) {
				t.Fatalf("item %d: batch %v != single %v", i, got, ref)
			}
		case "int":
			got, err := item.IntValue()
			if err != nil {
				t.Fatalf("item %d value: %v", i, err)
			}
			ref, err := want[i].IntValue()
			if err != nil {
				t.Fatal(err)
			}
			if got != ref {
				t.Fatalf("item %d: batch %d != single %d", i, got, ref)
			}
		case "bool":
			got, err := item.BoolValue()
			if err != nil {
				t.Fatalf("item %d value: %v", i, err)
			}
			ref, err := want[i].BoolValue()
			if err != nil {
				t.Fatal(err)
			}
			if got != ref {
				t.Fatalf("item %d: batch %v != single %v", i, got, ref)
			}
		}
		if item.Stats.Eliminations == 0 {
			t.Fatalf("item %d carries no run stats", i)
		}
	}
}

// TestBatchBinaryEnvelope ships the per-item factor data as a binary
// batch envelope and checks the results against the JSON-items batch.
func TestBatchBinaryEnvelope(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	specText := pairSpec("float", "sum")
	const n = 5
	items := batchPairData(n, func(i int) float64 { return float64(i + 1) })

	jr, err := c.QueryBatch(ctx, &BatchRequest{Spec: specText, Items: items})
	if err != nil {
		t.Fatal(err)
	}

	groups := make([][]*wire.Frame, n)
	for i, item := range items {
		f, err := FactorFrame(wire.DomainFloat, item.Factors[0])
		if err != nil {
			t.Fatal(err)
		}
		groups[i] = []*wire.Frame{f}
	}
	br, err := c.QueryBatchFrames(ctx, &BatchRequest{Spec: specText}, groups)
	if err != nil {
		t.Fatal(err)
	}
	if br.Status != BatchStatusOK || br.Completed != n {
		t.Fatalf("binary batch status=%q completed=%d", br.Status, br.Completed)
	}
	for i := range br.Items {
		jv, err := jr.Items[i].FloatValue()
		if err != nil {
			t.Fatal(err)
		}
		bv, err := br.Items[i].FloatValue()
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(jv) != math.Float64bits(bv) {
			t.Fatalf("item %d: json %v != binary %v", i, jv, bv)
		}
	}

	// Binary envelope + streamed binary results: fully binary round trip.
	stream, err := EncodeBatchStream(&BatchRequest{Spec: specText}, groups)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := c.QueryBatchStream(ctx, wire.BatchContentType, stream, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sr.Items {
		jv, err := jr.Items[i].FloatValue()
		if err != nil {
			t.Fatal(err)
		}
		sv, err := sr.Items[i].FloatValue()
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(jv) != math.Float64bits(sv) {
			t.Fatalf("item %d: json %v != stream %v", i, jv, sv)
		}
	}
}

// TestBatchFreeVariableOutputs checks listing results survive both batch
// encodings: a free-variable spec's per-item outputs must match the
// single-query oracle row for row, via JSON items and streamed records
// (whose outputs travel as embedded binary frames).
func TestBatchFreeVariableOutputs(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	specText := "var x 4 free\nvar y 4 sum\nfactor y x\n0 1 = 1\nend\n"
	const n = 4
	items := batchPairData(n, func(i int) float64 { return float64(i + 1) })

	want := make([]*QueryResponse, n)
	for i, item := range items {
		var err error
		want[i], err = c.Query(ctx, &QueryRequest{Spec: specText, Factors: item.Factors})
		if err != nil {
			t.Fatal(err)
		}
	}

	br, err := c.QueryBatch(ctx, &BatchRequest{Spec: specText, Items: items})
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(&BatchRequest{Spec: specText, Items: items})
	if err != nil {
		t.Fatal(err)
	}
	sr, err := c.QueryBatchStream(ctx, "application/json", body, nil)
	if err != nil {
		t.Fatal(err)
	}

	for name, resp := range map[string]*BatchResponse{"json": br, "stream": sr} {
		for i, item := range resp.Items {
			if item.Output == nil {
				t.Fatalf("%s item %d has no output", name, i)
			}
			wantOut := want[i].Output
			if fmt.Sprint(item.Output.Vars) != fmt.Sprint(wantOut.Vars) {
				t.Fatalf("%s item %d vars %v, want %v", name, i, item.Output.Vars, wantOut.Vars)
			}
			if fmt.Sprint(item.Output.Tuples) != fmt.Sprint(wantOut.Tuples) {
				t.Fatalf("%s item %d tuples %v, want %v", name, i, item.Output.Tuples, wantOut.Tuples)
			}
			got, err := item.Output.FloatValues()
			if err != nil {
				t.Fatal(err)
			}
			ref, err := wantOut.FloatValues()
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(ref) {
				t.Fatalf("%s item %d: %d values, want %d", name, i, len(got), len(ref))
			}
			for j := range got {
				if math.Float64bits(got[j]) != math.Float64bits(ref[j]) {
					t.Fatalf("%s item %d value %d: %v != %v", name, i, j, got[j], ref[j])
				}
			}
		}
	}
}

// TestBatchRequestErrors drives the batch rejection paths: every
// malformed request must fail whole with 400 before any item runs.
func TestBatchRequestErrors(t *testing.T) {
	_, ts, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	specText := pairSpec("float", "sum")

	post := func(t *testing.T, contentType string, body []byte) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/batch", contentType, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	t.Run("no items", func(t *testing.T) {
		if _, err := c.QueryBatch(ctx, &BatchRequest{Spec: specText}); err == nil ||
			!strings.Contains(err.Error(), "no items") {
			t.Fatalf("empty batch: %v", err)
		}
	})
	t.Run("empty spec", func(t *testing.T) {
		if _, err := c.QueryBatch(ctx, &BatchRequest{Items: batchPairData(1, func(int) float64 { return 1 })}); err == nil {
			t.Fatal("empty spec accepted")
		}
	})
	t.Run("dataset spec", func(t *testing.T) {
		req := &BatchRequest{
			Spec:  "use mystore\nvar x 4 sum\nvar y 4 sum\nfactor y x\nend\n",
			Items: batchPairData(1, func(int) float64 { return 1 }),
		}
		if _, err := c.QueryBatch(ctx, req); err == nil ||
			!strings.Contains(err.Error(), "dataset") {
			t.Fatalf("dataset batch: %v", err)
		}
	})
	t.Run("bad item fails whole batch", func(t *testing.T) {
		items := batchPairData(3, func(int) float64 { return 1 })
		items[1].Factors = append(items[1].Factors, items[1].Factors[0]) // one factor too many
		if _, err := c.QueryBatch(ctx, &BatchRequest{Spec: specText, Items: items}); err == nil ||
			!strings.Contains(err.Error(), "item 1") {
			t.Fatalf("bad item: %v", err)
		}
	})
	t.Run("binary envelope with JSON items", func(t *testing.T) {
		stream, err := EncodeBatchStream(&BatchRequest{Spec: specText,
			Items: batchPairData(1, func(int) float64 { return 1 })}, nil)
		if err == nil {
			t.Fatalf("encoder accepted JSON items in a binary envelope: %d bytes", len(stream))
		}
		// Hand-build the same malformed envelope; the server must 400 it.
		header, _ := json.Marshal(&BatchRequest{Spec: specText,
			Items: batchPairData(1, func(int) float64 { return 1 })})
		var body bytes.Buffer
		enc := wire.NewEncoder(&body)
		if err := enc.WriteBatchHeader(header, 0); err != nil {
			t.Fatal(err)
		}
		resp := post(t, wire.BatchContentType, body.Bytes())
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("HTTP %d, want 400", resp.StatusCode)
		}
	})
	t.Run("truncated binary envelope", func(t *testing.T) {
		header, _ := json.Marshal(&BatchRequest{Spec: specText})
		var body bytes.Buffer
		enc := wire.NewEncoder(&body)
		if err := enc.WriteBatchHeader(header, 3); err != nil { // declares 3 items, ships none
			t.Fatal(err)
		}
		resp := post(t, wire.BatchContentType, body.Bytes())
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("HTTP %d, want 400", resp.StatusCode)
		}
	})
	t.Run("oversized item count", func(t *testing.T) {
		body, _ := json.Marshal(&BatchRequest{Spec: specText,
			Items: make([]BatchItem, maxBatchItems+1)})
		resp := post(t, "application/json", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("HTTP %d, want 400", resp.StatusCode)
		}
	})
}

// TestBatchCancellationNoLeak drives the mid-batch abort paths: a batch
// whose deadline expires part-way must answer with partial results (or a
// clean timeout error when nothing completed), stop running the
// remaining items, and leak no goroutines.  A client disconnect must do
// the same server-side.
func TestBatchCancellationNoLeak(t *testing.T) {
	s, ts, c := newTestServer(t, Config{})
	ctx := context.Background()

	// A spec heavy enough that a batch of them cannot finish in 1ms.
	specText := triangleSpec(48, 0, 0)
	items := make([]BatchItem, 16)

	before := runtime.NumGoroutine()

	t.Run("deadline", func(t *testing.T) {
		br, err := c.QueryBatch(ctx, &BatchRequest{Spec: specText, Items: items, TimeoutMS: 1, Parallel: 2})
		if err != nil {
			// Nothing completed: the server reports one clean 504.
			if !strings.Contains(err.Error(), "504") && !strings.Contains(err.Error(), "deadline") {
				t.Fatalf("timeout batch failed oddly: %v", err)
			}
		} else {
			if br.Status != BatchStatusPartial || br.Completed >= len(items) {
				t.Fatalf("timeout batch status=%q completed=%d", br.Status, br.Completed)
			}
			aborted := 0
			for _, item := range br.Items {
				if item.Error != "" {
					aborted++
				}
			}
			if aborted != len(items)-br.Completed {
				t.Fatalf("%d errored items, completed=%d of %d", aborted, br.Completed, len(items))
			}
		}
	})

	t.Run("disconnect", func(t *testing.T) {
		body, _ := json.Marshal(&BatchRequest{Spec: specText, Items: items, Parallel: 2})
		reqCtx, cancel := context.WithCancel(ctx)
		req, err := http.NewRequestWithContext(reqCtx, http.MethodPost, ts.URL+"/v1/batch",
			bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		go func() {
			time.Sleep(10 * time.Millisecond)
			cancel() // hang up mid-batch
		}()
		resp, err := ts.Client().Do(req)
		if err == nil {
			resp.Body.Close()
		}
	})

	// Every item goroutine must drain: poll because the aborted runs
	// finish their in-flight block before observing cancellation.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after cancelled batches", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The server still answers cleanly after the aborts.
	if _, err := c.Query(ctx, &QueryRequest{Spec: pairSpec("float", "sum")}); err != nil {
		t.Fatalf("server wedged after cancelled batches: %v", err)
	}
	_ = s
}

// TestBatchBackpressureOneSlot pins the batch admission contract: a whole
// batch occupies exactly one MaxInflight slot — so a saturated server
// sheds batches with 429 + Retry-After, and one running batch saturates
// a MaxInflight=1 server for single queries too.
func TestBatchBackpressureOneSlot(t *testing.T) {
	s, ts, c := newTestServer(t, Config{Workers: 1, MaxInflight: 1})
	ctx := context.Background()
	specText := pairSpec("float", "sum")
	items := batchPairData(4, func(i int) float64 { return float64(i + 1) })

	// Hold the only slot, as an in-flight request would: batches shed.
	if !s.acquireRunSlot() {
		t.Fatal("fresh server should have a free slot")
	}
	body, _ := json.Marshal(&BatchRequest{Spec: specText, Items: items})
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server answered %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 carries no Retry-After header")
	}
	if got := s.Statsz().Server.Rejected; got != 1 {
		t.Fatalf("statsz rejected = %d, want 1", got)
	}

	// Releasing the slot admits the whole batch — N items under ONE slot.
	s.releaseRunSlot()
	br, err := c.QueryBatch(ctx, &BatchRequest{Spec: specText, Items: items})
	if err != nil {
		t.Fatal(err)
	}
	if br.Status != BatchStatusOK || br.Completed != len(items) {
		t.Fatalf("batch after release: status=%q completed=%d", br.Status, br.Completed)
	}
	if got := s.Statsz().Server.Rejected; got != 1 {
		t.Fatalf("admitted batch moved rejected to %d", got)
	}

	stats := s.Statsz().Server
	if stats.Batches != 2 || stats.BatchItems != int64(len(items)) {
		t.Fatalf("statsz batches=%d batch_items=%d, want 2 and %d",
			stats.Batches, stats.BatchItems, len(items))
	}
}

// TestBatchStatszAndMetrics checks the batch counters surface in /statsz
// and /metrics.
func TestBatchStatszAndMetrics(t *testing.T) {
	s, _, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	specText := pairSpec("float", "sum")
	items := batchPairData(3, func(i int) float64 { return float64(i + 1) })

	if _, err := c.QueryBatch(ctx, &BatchRequest{Spec: specText, Items: items}); err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(&BatchRequest{Spec: specText, Items: items})
	if _, err := c.QueryBatchStream(ctx, "application/json", body, nil); err != nil {
		t.Fatal(err)
	}

	stats := s.Statsz().Server
	if stats.Batches != 2 || stats.BatchItems != 6 || stats.BatchStreams != 1 {
		t.Fatalf("statsz batches=%d items=%d streams=%d, want 2/6/1",
			stats.Batches, stats.BatchItems, stats.BatchStreams)
	}
	raw, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{
		"faqd_batches_total 2",
		"faqd_batch_items_total 6",
		"faqd_batch_streams_total 1",
	} {
		if !strings.Contains(string(raw), metric) {
			t.Fatalf("/metrics lacks %q", metric)
		}
	}
}

// TestBatchTrace checks ?trace=1 batches carry per-item spans under the
// execute stage.
func TestBatchTrace(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{Workers: 1})
	specText := pairSpec("float", "sum")
	items := batchPairData(3, func(i int) float64 { return float64(i + 1) })
	body, _ := json.Marshal(&BatchRequest{Spec: specText, Items: items})
	resp, err := http.Post(ts.URL+"/v1/batch?trace=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if br.Trace == nil {
		t.Fatal("traced batch carries no trace")
	}
	itemSpans := 0
	var walk func(spans []obs.SpanData)
	walk = func(spans []obs.SpanData) {
		for _, sp := range spans {
			if sp.Name == "item" {
				itemSpans++
			}
			walk(sp.Spans)
		}
	}
	walk(br.Trace.Spans)
	if itemSpans != len(items) {
		t.Fatalf("trace carries %d item spans, want %d", itemSpans, len(items))
	}
}
