// Server is the faqd HTTP front end over a shared Engine: the network half
// of the paper's "questions asked frequently" workload.  Every /v1/query
// request is parsed with internal/spec, resolved to a PreparedQuery through
// the engine's shape-keyed plan LRU (same-shape concurrent requests share
// one plan, and a cold shape is planned exactly once under a thundering
// herd — see engineRT.planFor), and executed under the request's context:
// the run observes the timeout_ms deadline and client disconnects at block
// boundaries, so abandoned queries stop consuming the pool.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"time"

	"github.com/faqdb/faq/internal/core"
	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/spec"
)

// Config tunes a Server.  The zero value serves with GOMAXPROCS workers,
// the default plan cache and planner, a 30s default query deadline and a
// 16 MiB request-body cap.
type Config struct {
	// Workers, PlanCacheSize and Planner configure the shared engine (see
	// core.EngineOptions).
	Workers       int
	PlanCacheSize int
	Planner       string
	// DefaultTimeout bounds queries that carry no timeout_ms; <= 0 means
	// defaultQueryTimeout.  MaxTimeout clamps client-requested deadlines;
	// <= 0 means no clamp.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxBodyBytes caps /v1/query request bodies; <= 0 means
	// defaultMaxBodyBytes.
	MaxBodyBytes int64
	// MaxInflight bounds concurrent /v1/query runs (connection-level
	// backpressure): beyond the bound the server answers 429 with a
	// Retry-After hint instead of queueing work onto a saturated engine
	// pool.  <= 0 means unbounded.
	MaxInflight int
}

const (
	defaultQueryTimeout = 30 * time.Second
	defaultMaxBodyBytes = 16 << 20
)

// Server serves the faqd API over one engine.  Create with New, expose with
// Handler, stop with Close after the HTTP server has drained (Close stops
// the engine pool, so it must not race in-flight runs).
type Server struct {
	cfg Config
	eng *core.Engine[float64]
	mux *http.ServeMux
	m   metrics
	sem chan struct{} // query-run slots; nil when MaxInflight <= 0
}

// Validate checks the engine-facing configuration.  New calls it; command
// front ends (faqd) call it at flag-parse time for a usage-style exit.
func (c Config) Validate() error {
	switch c.Planner {
	case "", "auto", "exact", "greedy", "approx", "expression":
	default:
		return fmt.Errorf("unknown planner %q (want auto, exact, greedy, approx or expression)", c.Planner)
	}
	if c.Workers < 0 {
		return fmt.Errorf("workers must be >= 0 (0 = GOMAXPROCS, 1 = sequential), got %d", c.Workers)
	}
	if c.MaxInflight < 0 {
		return fmt.Errorf("max-inflight must be >= 0 (0 = unbounded), got %d", c.MaxInflight)
	}
	return nil
}

// New builds a server and its engine.  Config mistakes surface here, not
// as per-request 400s blamed on clients.
func New(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = defaultQueryTimeout
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = defaultMaxBodyBytes
	}
	s := &Server{
		cfg: cfg,
		eng: core.NewEngine[float64](core.EngineOptions{
			Workers:       cfg.Workers,
			PlanCacheSize: cfg.PlanCacheSize,
			Planner:       cfg.Planner,
		}),
		mux: http.NewServeMux(),
	}
	if cfg.MaxInflight > 0 {
		s.sem = make(chan struct{}, cfg.MaxInflight)
	}
	s.m.start = time.Now()
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("GET /v1/plan", s.handlePlan)
	s.mux.HandleFunc("POST /v1/plan", s.handlePlan)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	return s, nil
}

// Engine exposes the underlying engine (the faqd process shares it between
// the HTTP front end and any embedded instrumentation).
func (s *Server) Engine() *core.Engine[float64] { return s.eng }

// Close stops the engine's persistent workers.  Call after the HTTP server
// has shut down gracefully: http.Server.Shutdown drains in-flight handlers,
// and every run belongs to some handler.
func (s *Server) Close() { s.eng.Close() }

// Handler returns the root handler: the API mux wrapped in the metrics
// middleware.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.m.requests.Add(1)
		// The monitoring endpoints stay out of the in-flight gauge so an
		// idle daemon reads 0 even while being polled ("wait for
		// in_flight == 0, then stop" must terminate).
		if r.URL.Path != "/healthz" && r.URL.Path != "/statsz" {
			s.m.inFlight.Add(1)
			defer s.m.inFlight.Add(-1)
		}
		cw := &countingWriter{ResponseWriter: w}
		start := time.Now()
		s.mux.ServeHTTP(cw, r)
		if r.Method == http.MethodPost && r.URL.Path == "/v1/query" {
			s.m.queries.Add(1)
			s.m.lat.observe(time.Since(start))
		}
		if cw.status() < 400 {
			s.m.ok.Add(1)
		} else {
			s.m.errs.Add(1)
		}
	})
}

// countingWriter records the response status for the ok/err counters.
type countingWriter struct {
	http.ResponseWriter
	wrote int
}

func (w *countingWriter) WriteHeader(code int) {
	if w.wrote == 0 {
		w.wrote = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *countingWriter) Write(b []byte) (int, error) {
	if w.wrote == 0 {
		w.wrote = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *countingWriter) status() int {
	if w.wrote == 0 {
		return http.StatusOK
	}
	return w.wrote
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v) // nothing to do about a broken connection here
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeDecodeError distinguishes an oversized body (413: actionable —
// shrink the factors or raise MaxBodyBytes) from malformed JSON (400).
func writeDecodeError(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeError(w, http.StatusRequestEntityTooLarge,
			"request body exceeds the %d-byte limit", tooBig.Limit)
		return
	}
	writeError(w, http.StatusBadRequest, "bad request body: %v", err)
}

// statusClientClosedRequest is the nginx convention for "the client went
// away before we could answer"; no standard code fits.
const statusClientClosedRequest = 499

// maxTimeoutMS bounds client-supplied timeout_ms before the Duration
// multiply: a larger value would overflow int64 nanoseconds to a negative
// duration, expire instantly and dodge the MaxTimeout clamp.
const maxTimeoutMS = int64(24 * time.Hour / time.Millisecond)

// queryTimeout resolves a client's timeout_ms against the server default
// and the operator's MaxTimeout clamp.
func (s *Server) queryTimeout(timeoutMS int64) time.Duration {
	timeout := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		timeout = time.Duration(min(timeoutMS, maxTimeoutMS)) * time.Millisecond
	}
	if s.cfg.MaxTimeout > 0 && timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	return timeout
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Statsz())
}

// Statsz assembles the /statsz snapshot: engine counters (atomic, untorn)
// plus the server-level metrics.
func (s *Server) Statsz() StatszResponse {
	es := s.eng.StatsSnapshot()
	return StatszResponse{
		UptimeSeconds: time.Since(s.m.start).Seconds(),
		Engine: EngineStatz{
			Prepared:        es.Prepared,
			PlanCacheHits:   es.PlanCacheHits,
			PlanCacheMisses: es.PlanCacheMisses,
			PlanCoalesced:   es.PlanCoalesced,
			PlansCached:     es.PlansCached,
			Runs:            es.Runs,
			RunsCancelled:   es.RunsCancelled,
		},
		Server: s.m.snapshot(),
	}
}

// acquireRunSlot claims a query-run slot without blocking; it reports false
// when the server is at MaxInflight.  A nil semaphore always admits.
func (s *Server) acquireRunSlot() bool {
	if s.sem == nil {
		return true
	}
	select {
	case s.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

func (s *Server) releaseRunSlot() {
	if s.sem != nil {
		<-s.sem
	}
}

// retryAfterSeconds is the backpressure hint sent with 429 responses: the
// window p50 query latency rounded up, at least one second — roughly when a
// run slot should free up.
func (s *Server) retryAfterSeconds() int {
	qs, _ := s.m.lat.quantiles(0.50)
	if sec := int((qs[0] + time.Second - 1) / time.Second); sec > 1 {
		return sec
	}
	return 1
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	var req QueryRequest
	if err := dec.Decode(&req); err != nil {
		writeDecodeError(w, err)
		return
	}
	if strings.TrimSpace(req.Spec) == "" {
		writeError(w, http.StatusBadRequest, "empty spec")
		return
	}
	q, layout, err := spec.ParseLayout(strings.NewReader(req.Spec))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Workers < 0 {
		writeError(w, http.StatusBadRequest, "workers must be >= 0, got %d", req.Workers)
		return
	}

	// Decode fresh factor data before claiming a run slot: body I/O and
	// JSON work are client-paced and must not pin the concurrency bound.
	var factors []*factor.Factor[float64]
	if req.Factors != nil {
		var ferr error
		factors, ferr = buildFactors(q, layout, req.Factors)
		if ferr != nil {
			writeError(w, http.StatusBadRequest, "%v", ferr)
			return
		}
	}

	// The run's context: cancelled when the client disconnects, bounded by
	// the request deadline (clamped to the server maximum).
	ctx, cancel := context.WithTimeout(r.Context(), s.queryTimeout(req.TimeoutMS))
	defer cancel()

	opts := core.DefaultOptions()
	opts.Workers = req.Workers

	// The run slot covers exactly the engine work — prepare through run —
	// not request decoding above or response encoding below, so MaxInflight
	// bounds concurrent runs, and a slow client can't starve the bound.
	if !s.acquireRunSlot() {
		s.m.rejected.Add(1)
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.retryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests,
			"server is at its %d-run concurrency bound, retry later", s.cfg.MaxInflight)
		return
	}
	var prep *core.PreparedQuery[float64]
	var res *core.Result[float64]
	err = func() error {
		// Deferred so a panicking run (recovered by net/http) cannot leak
		// the slot and wedge the bound shut.
		defer s.releaseRunSlot()
		var err error
		prep, err = s.eng.PrepareCtx(ctx, q, opts)
		if err != nil {
			return err
		}
		if factors != nil {
			res, err = prep.RunWithFactors(ctx, factors)
		} else {
			res, err = prep.Run(ctx)
		}
		return err
	}()
	if err != nil {
		s.writeRunError(w, ctx, err)
		return
	}

	resp := &QueryResponse{
		Plan: planSummary(prep.Plan(), q.VarName),
		Stats: RunStats{
			Eliminations:     res.Stats.Eliminations,
			IntermediateRows: res.Stats.IntermediateRows,
			MaxIntermediate:  res.Stats.MaxIntermediate,
			JoinProbes:       res.Stats.Join.Probes,
		},
		ElapsedMS: durationMS(time.Since(start)),
	}
	if q.NumFree == 0 {
		v := res.Scalar()
		resp.Value = &v
	} else {
		out := &OutputData{Tuples: res.Output.Tuples(), Values: res.Output.Values}
		if out.Tuples == nil {
			out.Tuples = [][]int{} // an empty output is [], not null
		}
		if out.Values == nil {
			out.Values = []float64{}
		}
		for _, v := range res.Output.Vars {
			out.Vars = append(out.Vars, q.VarName(v))
		}
		resp.Output = out
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeRunError maps a prepare/run failure to a status: deadline → 504,
// client disconnect → 499, a planner that died serving someone's in-flight
// prepare → 500 (server bug, not this client's query), anything else is a
// bad query → 400.
func (s *Server) writeRunError(w http.ResponseWriter, ctx context.Context, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "query deadline exceeded")
	case errors.Is(err, context.Canceled) && ctx.Err() != nil:
		writeError(w, statusClientClosedRequest, "client closed request")
	case errors.Is(err, core.ErrPlannerPanic):
		writeError(w, http.StatusInternalServerError, "%v", err)
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
	}
}

// buildFactors turns the request's fresh factor data into factors with the
// spec query's variable scopes — the same-shape contract RunWithFactors
// enforces.  Request tuple columns are in the spec factor block's
// *declaration* order (the same column order as the spec's own data lines);
// they are permuted here to the sorted order factors store, exactly as
// spec.Parse permutes inline data, so a client can ship fresh data in the
// layout of its own spec without silent transposition.
func buildFactors(q *core.Query[float64], layout [][]int, data []FactorData) ([]*factor.Factor[float64], error) {
	if len(data) != len(q.Factors) {
		return nil, fmt.Errorf("request has %d factors, spec declares %d", len(data), len(q.Factors))
	}
	factors := make([]*factor.Factor[float64], len(data))
	for i, fd := range data {
		decl := layout[i]
		perm := make([]int, len(decl))
		for j := range perm {
			perm[j] = j
		}
		sort.Slice(perm, func(a, b int) bool { return decl[perm[a]] < decl[perm[b]] })
		// Decode straight into the factor's flat row block — the fresh-data
		// path ships whole relations per request, so skipping the [][]int
		// intermediate is a measurable slice of triangle-fresh latency.
		rows := make([]int32, 0, len(fd.Tuples)*len(decl))
		for _, tup := range fd.Tuples {
			if len(tup) != len(decl) {
				return nil, fmt.Errorf("factor %d: tuple %v has arity %d, want %d", i, tup, len(tup), len(decl))
			}
			for _, p := range perm {
				if tup[p] < math.MinInt32 || tup[p] > math.MaxInt32 {
					return nil, fmt.Errorf("factor %d: tuple %v exceeds the int32 domain-value range", i, tup)
				}
				rows = append(rows, int32(tup[p]))
			}
		}
		f, err := factor.NewRows(q.D, q.Factors[i].Vars, rows, fd.Values, nil)
		if err != nil {
			return nil, fmt.Errorf("factor %d: %v", i, err)
		}
		factors[i] = f
	}
	return factors, nil
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var shape *core.Shape
	var name func(int) string
	var timeoutMS int64
	switch {
	case r.Method == http.MethodGet && r.URL.Query().Get("example") != "":
		var err error
		shape, name, err = BuiltinExample(r.URL.Query().Get("example"))
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	case r.Method == http.MethodPost:
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
		dec.DisallowUnknownFields()
		var req QueryRequest
		if err := dec.Decode(&req); err != nil {
			writeDecodeError(w, err)
			return
		}
		q, err := spec.Parse(strings.NewReader(req.Spec))
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		shape, name, timeoutMS = q.Shape(), q.VarName, req.TimeoutMS
	default:
		writeError(w, http.StatusBadRequest,
			"plan wants GET ?example=<name> or POST {\"spec\": ...}")
		return
	}
	// Like /v1/query, the report honors the request's timeout_ms (and the
	// operator's clamp) and is cancelled when the client disconnects: the
	// exact DP inside is the one exponential stage a wide shape could wedge
	// the daemon on.
	ctx, cancel := context.WithTimeout(r.Context(), s.queryTimeout(timeoutMS))
	defer cancel()
	rep, err := BuildPlanReport(ctx, shape, name)
	if err != nil {
		s.writeRunError(w, ctx, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}
