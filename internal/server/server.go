// Server is the faqd HTTP front end over a shared engine runtime: the
// network half of the paper's "questions asked frequently" workload.
// Every /v1/query request is parsed with internal/spec, routed by its
// declared value domain to the engine handle of the matching value type
// (all handles share one runtime via core.Retype, so every domain shares
// the plan LRU), resolved to a PreparedQuery through the shape-keyed plan
// cache (same-shape concurrent requests share one plan, and a cold shape
// is planned exactly once under a thundering herd — see engineRT.planFor),
// and executed under the request's context: the run observes the
// timeout_ms deadline and client disconnects at block boundaries, so
// abandoned queries stop consuming the pool.
//
// Fresh factor data arrives either as JSON ("factors" in the request body)
// or as the internal/wire binary framing (Content-Type:
// application/x-faq-factors), which decodes straight into the flat row
// blocks factors store natively.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"mime"
	"net/http"
	"sort"
	"strings"
	"time"

	"github.com/faqdb/faq/internal/core"
	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/join"
	"github.com/faqdb/faq/internal/sortx"
	"github.com/faqdb/faq/internal/spec"
	"github.com/faqdb/faq/internal/store"
	"github.com/faqdb/faq/internal/wire"
)

// Config tunes a Server.  The zero value serves with GOMAXPROCS workers,
// the default plan cache and planner, a 30s default query deadline and a
// 16 MiB request-body cap.
type Config struct {
	// Workers, PlanCacheSize and Planner configure the shared engine (see
	// core.EngineOptions).
	Workers       int
	PlanCacheSize int
	Planner       string
	// DefaultTimeout bounds queries that carry no timeout_ms; <= 0 means
	// defaultQueryTimeout.  MaxTimeout clamps client-requested deadlines;
	// <= 0 means no clamp.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxBodyBytes caps /v1/query request bodies; <= 0 means
	// defaultMaxBodyBytes.
	MaxBodyBytes int64
	// MaxInflight bounds concurrent /v1/query runs (connection-level
	// backpressure): beyond the bound the server answers 429 with a
	// Retry-After hint instead of queueing work onto a saturated engine
	// pool.  <= 0 means unbounded.
	MaxInflight int
	// MaxSessions bounds the /v1/delta session registry: beyond it the
	// least recently used session's evolving state is dropped (a later
	// request for it re-seeds from its spec).  <= 0 means
	// defaultMaxSessions.  The resident dataset-query registry shares the
	// same bound.
	MaxSessions int
	// DataDir names the dataset directory: uploads under
	// PUT /v1/datasets/{name} persist there and are memory-mapped back on
	// restart.  Empty disables the dataset endpoints (they answer 503).
	DataDir string
	// SlowQueryLog receives the structured slow-query log as JSON lines;
	// nil disables slow-query logging.  SlowQuery is the wall-time
	// threshold at or above which a /v1/query or /v1/delta request is
	// logged — 0 logs every request (useful for smoke tests and short
	// captures).
	SlowQueryLog io.Writer
	SlowQuery    time.Duration
	// ProfileLabels attaches pprof labels (endpoint, domain, shape) around
	// query execution, so CPU profiles attribute samples to what was being
	// served.  faqd enables it with -debug-addr.
	ProfileLabels bool
}

const (
	defaultQueryTimeout = 30 * time.Second
	defaultMaxBodyBytes = 16 << 20
)

// Server serves the faqd API over one engine runtime.  Create with New,
// expose with Handler, stop with Close after the HTTP server has drained
// (Close stops the engine pool, so it must not race in-flight runs).
type Server struct {
	cfg Config
	// eng is the float64 handle; engInt and engBool are core.Retype
	// handles onto the same runtime (tropical shares eng's value type).
	// One plan LRU, one pool, one stats block serve every domain.
	eng      *core.Engine[float64]
	engInt   *core.Engine[int64]
	engBool  *core.Engine[bool]
	mux      *http.ServeMux
	m        metrics
	sem      chan struct{} // query-run slots; nil when MaxInflight <= 0
	sessions *sessionRegistry
	store    *store.Store // nil without Config.DataDir
	resident *residentRegistry
	obs      *serverObs
}

// Validate checks the engine-facing configuration.  New calls it; command
// front ends (faqd) call it at flag-parse time for a usage-style exit.
func (c Config) Validate() error {
	switch c.Planner {
	case "", "auto", "exact", "greedy", "approx", "expression":
	default:
		return fmt.Errorf("unknown planner %q (want auto, exact, greedy, approx or expression)", c.Planner)
	}
	if c.Workers < 0 {
		return fmt.Errorf("workers must be >= 0 (0 = GOMAXPROCS, 1 = sequential), got %d", c.Workers)
	}
	if c.MaxInflight < 0 {
		return fmt.Errorf("max-inflight must be >= 0 (0 = unbounded), got %d", c.MaxInflight)
	}
	return nil
}

// New builds a server and its engine.  Config mistakes surface here, not
// as per-request 400s blamed on clients.
func New(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = defaultQueryTimeout
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = defaultMaxBodyBytes
	}
	s := &Server{
		cfg: cfg,
		eng: core.NewEngine[float64](core.EngineOptions{
			Workers:       cfg.Workers,
			PlanCacheSize: cfg.PlanCacheSize,
			Planner:       cfg.Planner,
		}),
		mux: http.NewServeMux(),
	}
	s.engInt = core.Retype[int64](s.eng)
	s.engBool = core.Retype[bool](s.eng)
	if cfg.MaxInflight > 0 {
		s.sem = make(chan struct{}, cfg.MaxInflight)
	}
	s.sessions = newSessionRegistry(cfg.MaxSessions)
	s.resident = newResidentRegistry(cfg.MaxSessions)
	if cfg.DataDir != "" {
		st, err := store.OpenDir(cfg.DataDir)
		if err != nil {
			s.eng.Close()
			return nil, fmt.Errorf("server: opening dataset store: %w", err)
		}
		s.store = st
	}
	s.m.start = time.Now()
	s.obs = newServerObs(s)
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/delta", s.handleDelta)
	s.mux.HandleFunc("GET /v1/plan", s.handlePlan)
	s.mux.HandleFunc("POST /v1/plan", s.handlePlan)
	s.mux.HandleFunc("PUT /v1/datasets/{name}", s.handleDatasetPut)
	s.mux.HandleFunc("GET /v1/datasets/{name}", s.handleDatasetGet)
	s.mux.HandleFunc("DELETE /v1/datasets/{name}", s.handleDatasetDelete)
	s.mux.HandleFunc("GET /v1/datasets", s.handleDatasetList)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// Engine exposes the underlying float64 engine handle (the faqd process
// shares it between the HTTP front end and any embedded instrumentation;
// its stats are runtime-wide, covering every domain).
func (s *Server) Engine() *core.Engine[float64] { return s.eng }

// Close stops the engine's persistent workers, drops resident prepared
// queries and unmaps the dataset store.  Call after the HTTP server has
// shut down gracefully: http.Server.Shutdown drains in-flight handlers,
// and every run belongs to some handler.
func (s *Server) Close() {
	s.eng.Close()
	s.resident.purgeAll()
	if s.store != nil {
		s.store.Close()
	}
}

// Handler returns the root handler: the API mux wrapped in the metrics
// and observability middleware.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.m.requests.Add(1)
		if !isMonitoringPath(r.URL.Path) {
			s.m.inFlight.Add(1)
			defer s.m.inFlight.Add(-1)
		}
		cw := &countingWriter{ResponseWriter: w}
		start := time.Now()
		var ro *reqObs
		if ep := endpointOf(r); ep != "" {
			ro, r = s.obs.begin(r, ep)
		}
		s.mux.ServeHTTP(cw, r)
		wall := time.Since(start)
		if r.Method == http.MethodPost && r.URL.Path == "/v1/query" {
			s.m.queries.Add(1)
			s.m.lat.observe(wall)
		}
		if r.Method == http.MethodPost && r.URL.Path == "/v1/batch" {
			s.m.batches.Add(1)
			s.m.lat.observe(wall)
		}
		if r.Method == http.MethodPost && r.URL.Path == "/v1/delta" {
			s.m.deltas.Add(1)
			s.m.lat.observe(wall)
		}
		if cw.status() < 400 {
			s.m.ok.Add(1)
		} else {
			s.m.errs.Add(1)
		}
		if ro != nil {
			s.obs.finish(ro, cw.status(), wall)
		}
	})
}

// countingWriter records the response status for the ok/err counters.
type countingWriter struct {
	http.ResponseWriter
	wrote int
}

func (w *countingWriter) WriteHeader(code int) {
	if w.wrote == 0 {
		w.wrote = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *countingWriter) Write(b []byte) (int, error) {
	if w.wrote == 0 {
		w.wrote = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Unwrap exposes the underlying writer so http.ResponseController can
// reach Flush through the wrapper — the streamed batch path flushes after
// every result record.
func (w *countingWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func (w *countingWriter) status() int {
	if w.wrote == 0 {
		return http.StatusOK
	}
	return w.wrote
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v) // nothing to do about a broken connection here
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeDecodeError distinguishes an oversized body or frame (413:
// actionable — shrink the factors or raise MaxBodyBytes) from a malformed
// one (400).
func writeDecodeError(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	switch {
	case errors.As(err, &tooBig):
		writeError(w, http.StatusRequestEntityTooLarge,
			"request body exceeds the %d-byte limit", tooBig.Limit)
	case errors.Is(err, wire.ErrTooLarge):
		writeError(w, http.StatusRequestEntityTooLarge, "%v", err)
	default:
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
	}
}

// statusClientClosedRequest is the nginx convention for "the client went
// away before we could answer"; no standard code fits.
const statusClientClosedRequest = 499

// maxTimeoutMS bounds client-supplied timeout_ms before the Duration
// multiply: a larger value would overflow int64 nanoseconds to a negative
// duration, expire instantly and dodge the MaxTimeout clamp.
const maxTimeoutMS = int64(24 * time.Hour / time.Millisecond)

// queryTimeout resolves a client's timeout_ms against the server default
// and the operator's MaxTimeout clamp.
func (s *Server) queryTimeout(timeoutMS int64) time.Duration {
	timeout := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		timeout = time.Duration(min(timeoutMS, maxTimeoutMS)) * time.Millisecond
	}
	if s.cfg.MaxTimeout > 0 && timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	return timeout
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Statsz())
}

// Statsz assembles the /statsz snapshot: engine counters (atomic, untorn)
// plus the server-level metrics.
func (s *Server) Statsz() StatszResponse {
	es := s.eng.StatsSnapshot()
	sv := s.m.snapshot()
	sv.DeltaSessions = int64(s.sessions.len())
	var st *StoreStatz
	if s.store != nil {
		st = &StoreStatz{
			Datasets:         int64(s.store.Len()),
			BytesMapped:      s.store.BytesMapped(),
			ChecksumFailures: s.store.ChecksumFailures(),
			DatasetQueries:   s.m.datasetQ.Load(),
			ResidentPrepared: int64(s.resident.len()),
			LoadErrors:       int64(len(s.store.LoadErrors())),
		}
	}
	splitScans, splitCache, splitKeys := join.SplitStats()
	return StatszResponse{
		Store:         st,
		UptimeSeconds: time.Since(s.m.start).Seconds(),
		Sort: SortStatz{
			RadixSorts:       sortx.RadixSorts(),
			ComparisonSorts:  sortx.ComparisonSorts(),
			ParallelScans:    splitScans,
			CacheAwareSplits: splitCache,
			LastBlockKeys:    splitKeys,
		},
		Engine: EngineStatz{
			Prepared:        es.Prepared,
			PlanCacheHits:   es.PlanCacheHits,
			PlanCacheMisses: es.PlanCacheMisses,
			PlanCoalesced:   es.PlanCoalesced,
			PlansCached:     es.PlansCached,
			Runs:            es.Runs,
			RunsCancelled:   es.RunsCancelled,

			DeltasApplied:   es.DeltasApplied,
			DeltaRingRuns:   es.DeltaRingRuns,
			DeltaBlockRuns:  es.DeltaBlockRuns,
			DeltaRecomputes: es.DeltaRecomputes,

			TrieCacheHits:          es.TrieCacheHits,
			TrieCacheMisses:        es.TrieCacheMisses,
			TrieCacheInvalidations: es.TrieCacheInvalidations,
			TrieCacheEvictions:     es.TrieCacheEvictions,
			TrieCacheEntries:       es.TrieCacheEntries,
		},
		Server: sv,
	}
}

// acquireRunSlot claims a query-run slot without blocking; it reports false
// when the server is at MaxInflight.  A nil semaphore always admits.
func (s *Server) acquireRunSlot() bool {
	if s.sem == nil {
		return true
	}
	select {
	case s.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

func (s *Server) releaseRunSlot() {
	if s.sem != nil {
		<-s.sem
	}
}

// retryAfterSeconds is the backpressure hint sent with 429 responses: the
// window p50 query latency rounded up, at least one second — roughly when a
// run slot should free up.
func (s *Server) retryAfterSeconds() int {
	qs, _, _ := s.m.lat.quantiles(0.50)
	if sec := int((qs[0] + time.Second - 1) / time.Second); sec > 1 {
		return sec
	}
	return 1
}

// maxStreamHeaderBytes bounds the JSON envelope of a binary request; the
// spec text lives there, so it shares the request-body scale, not the
// frame scale.
const maxStreamHeaderBytes = 4 << 20

// decodeQueryRequest reads the request body in either encoding: a plain
// JSON QueryRequest, or — under Content-Type application/x-faq-factors — a
// wire stream whose envelope header is the QueryRequest JSON (without
// "factors") and whose frames carry the factor data.  The binary flag
// feeds the queries_binary counter.
func (s *Server) decodeQueryRequest(w http.ResponseWriter, r *http.Request) (req QueryRequest, frames []*wire.Frame, binary bool, err error) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	ct := r.Header.Get("Content-Type")
	if mt, _, mtErr := mime.ParseMediaType(ct); mtErr == nil && mt == wire.ContentType {
		dec := wire.NewDecoder(body)
		dec.SetMaxFrameBytes(int(min(s.cfg.MaxBodyBytes, int64(wire.DefaultMaxFrameBytes))))
		header, n, hErr := dec.ReadStreamHeader(maxStreamHeaderBytes)
		if hErr != nil {
			return req, nil, true, hErr
		}
		jdec := json.NewDecoder(strings.NewReader(string(header)))
		jdec.DisallowUnknownFields()
		if jErr := jdec.Decode(&req); jErr != nil {
			return req, nil, true, fmt.Errorf("stream header: %w", jErr)
		}
		if req.Factors != nil {
			return req, nil, true, errors.New(`binary requests carry factors as frames, not as JSON "factors"`)
		}
		// Grow the slice as frames actually arrive: n is attacker-chosen,
		// and preallocating by it would let a few header bytes demand a
		// huge slice.  A missing frame surfaces as truncation below.
		frames = make([]*wire.Frame, 0, min(n, 1024))
		for i := 0; i < n; i++ {
			f, fErr := dec.Decode()
			if fErr != nil {
				return req, nil, true, fmt.Errorf("factor frame %d of %d: %w", i, n, fErr)
			}
			frames = append(frames, f)
		}
		// A frame count that undersells the body would silently drop data.
		if _, tErr := dec.Decode(); tErr != io.EOF {
			return req, nil, true, fmt.Errorf("stream declares %d frames but carries more", n)
		}
		return req, frames, true, nil
	}
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	err = dec.Decode(&req)
	return req, nil, false, err
}

// domainCodec binds one value domain's serving pieces: its spec builder,
// wire code, JSON value conversion and response encoding.  The four
// instances below are what handleQuery dispatches on.
type domainCodec[V any] struct {
	name     string
	wireDom  wire.Domain
	build    func(*spec.Document, ...spec.Resolver[V]) (*core.Query[V], [][]int, error)
	fromJSON func(float64) (V, error)
	frameCol func(*wire.Frame) []V
	// storeCol reads one stored factor's value column from a mapped dataset
	// (the zero-copy feed for datasetResolver).
	storeCol func(*store.Dataset, int) []V
	// encode and encodeColumn render response values.  They exist for the
	// float domains: JSON has no Inf or NaN, so non-finite float64 values
	// — the tropical additive identity +Inf in particular — travel as the
	// strings "inf", "-inf", "nan" (the spec text vocabulary), which the
	// client accessors parse back exactly.
	encode       func(V) any
	encodeColumn func([]V) any
}

// encodeFloat renders a float64 response value; non-finite values become
// their spec-text string forms (json.Marshal rejects them as numbers).
func encodeFloat(v float64) any {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	case math.IsNaN(v):
		return "nan"
	}
	return v
}

// encodeFloatColumn keeps the raw slice when every value is finite (the
// common case, marshaled identically) and falls back to element-wise
// encoding otherwise.
func encodeFloatColumn(vs []float64) any {
	for i, v := range vs {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			out := make([]any, len(vs))
			for j, w := range vs[:i] {
				out[j] = w
			}
			for j := i; j < len(vs); j++ {
				out[j] = encodeFloat(vs[j])
			}
			return out
		}
	}
	return vs
}

func identityEncode[V any](v V) any    { return v }
func identityColumn[V any](vs []V) any { return vs }
func jsonToInt(v float64) (int64, error) {
	if v != math.Trunc(v) || math.Abs(v) > 1<<53 {
		return 0, fmt.Errorf("value %v is not an exact int64 (ship int factors in the binary encoding for full precision)", v)
	}
	return int64(v), nil
}

func jsonToBool(v float64) (bool, error) {
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	}
	return false, fmt.Errorf("value %v is not a bool (want 0 or 1)", v)
}

var (
	floatCodec = domainCodec[float64]{
		name: spec.DomainFloat, wireDom: wire.DomainFloat,
		build:    (*spec.Document).BuildFloat,
		fromJSON: func(v float64) (float64, error) { return v, nil },
		frameCol: func(f *wire.Frame) []float64 { return f.Floats },
		storeCol: (*store.Dataset).Floats,
		encode:   encodeFloat, encodeColumn: encodeFloatColumn,
	}
	tropicalCodec = domainCodec[float64]{
		name: spec.DomainTropical, wireDom: wire.DomainTropical,
		build:    (*spec.Document).BuildTropical,
		fromJSON: func(v float64) (float64, error) { return v, nil },
		frameCol: func(f *wire.Frame) []float64 { return f.Floats },
		storeCol: (*store.Dataset).Floats,
		encode:   encodeFloat, encodeColumn: encodeFloatColumn,
	}
	intCodec = domainCodec[int64]{
		name: spec.DomainInt, wireDom: wire.DomainInt,
		build:    (*spec.Document).BuildInt,
		fromJSON: jsonToInt,
		frameCol: func(f *wire.Frame) []int64 { return f.Ints },
		storeCol: (*store.Dataset).Ints,
		encode:   identityEncode[int64], encodeColumn: identityColumn[int64],
	}
	boolCodec = domainCodec[bool]{
		name: spec.DomainBool, wireDom: wire.DomainBool,
		build:    (*spec.Document).BuildBool,
		fromJSON: jsonToBool,
		frameCol: func(f *wire.Frame) []bool { return f.Bools },
		storeCol: (*store.Dataset).Bools,
		encode:   identityEncode[bool], encodeColumn: identityColumn[bool],
	}
)

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ro := reqObsFrom(r.Context())
	endParse := ro.stage(stageParse)
	defer endParse() // idempotent; covers the early error returns
	req, frames, binary, err := s.decodeQueryRequest(w, r)
	if err != nil {
		writeDecodeError(w, err)
		return
	}
	if binary {
		s.m.binary.Add(1)
	}
	if strings.TrimSpace(req.Spec) == "" {
		writeError(w, http.StatusBadRequest, "empty spec")
		return
	}
	if req.Workers < 0 {
		writeError(w, http.StatusBadRequest, "workers must be >= 0, got %d", req.Workers)
		return
	}
	doc, err := spec.ParseDocument(strings.NewReader(req.Spec))
	endParse()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Per-domain dispatch: each branch runs the same generic pipeline
	// against the engine handle of its value type.  All handles share one
	// runtime (plan LRU, pool, stats) via core.Retype, so an int request
	// for a shape the float path already planned is a cache hit.
	switch doc.Domain {
	case spec.DomainFloat:
		serveDomain(s, w, r, start, &req, doc, frames, s.eng, floatCodec)
	case spec.DomainInt:
		serveDomain(s, w, r, start, &req, doc, frames, s.engInt, intCodec)
	case spec.DomainBool:
		serveDomain(s, w, r, start, &req, doc, frames, s.engBool, boolCodec)
	case spec.DomainTropical:
		serveDomain(s, w, r, start, &req, doc, frames, s.eng, tropicalCodec)
	default:
		writeError(w, http.StatusBadRequest, "unsupported spec domain %q", doc.Domain)
	}
}

// serveDomain is the domain-generic tail of handleQuery: build the typed
// query, decode fresh factors (JSON or frames), run under the request
// context and the MaxInflight bound, and write the typed response.
func serveDomain[V any](s *Server, w http.ResponseWriter, r *http.Request, start time.Time,
	req *QueryRequest, doc *spec.Document, frames []*wire.Frame,
	eng *core.Engine[V], cv domainCodec[V]) {

	if doc.Dataset != "" {
		// A dataset spec runs against resident mapped factors: fresh factor
		// data in the same request would be ambiguous (which source wins?),
		// so it is rejected outright.
		if frames != nil || req.Factors != nil {
			writeError(w, http.StatusBadRequest,
				"spec uses dataset %q: drop the shipped factors (resident factors serve this query)", doc.Dataset)
			return
		}
		serveDatasetQuery(s, w, r, start, req, doc, eng, cv)
		return
	}

	ro := reqObsFrom(r.Context())
	endResolve := ro.stage(stageResolve)
	defer endResolve()
	q, layout, err := cv.build(doc)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Decode fresh factor data before claiming a run slot: body I/O and
	// decoding work are client-paced and must not pin the concurrency
	// bound.
	var factors []*factor.Factor[V]
	switch {
	case frames != nil:
		if factors, err = buildFactorsWire(q, layout, frames, cv); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	case req.Factors != nil:
		if factors, err = buildFactorsJSON(q, layout, req.Factors, cv); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	endResolve()

	// The run's context: cancelled when the client disconnects, bounded by
	// the request deadline (clamped to the server maximum).
	ctx, cancel := context.WithTimeout(r.Context(), s.queryTimeout(req.TimeoutMS))
	defer cancel()

	opts := core.DefaultOptions()
	opts.Workers = req.Workers

	// The run slot covers exactly the engine work — prepare through run —
	// not request decoding above or response encoding below, so MaxInflight
	// bounds concurrent runs, and a slow client can't starve the bound.
	if !s.acquireRunSlot() {
		s.m.rejected.Add(1)
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.retryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests,
			"server is at its %d-run concurrency bound, retry later", s.cfg.MaxInflight)
		return
	}
	var prep *core.PreparedQuery[V]
	var res *core.Result[V]
	err = func() (err error) {
		// Deferred so a panicking run (recovered by net/http) cannot leak
		// the slot and wedge the bound shut.
		defer s.releaseRunSlot()
		endPrep := ro.stage(stagePrepare)
		prep, err = eng.PrepareCtx(ctx, q, opts)
		endPrep()
		if err != nil {
			return err
		}
		ro.setQuery(cv.name, "", prep.ShapeKey())
		endExec := ro.stage(stageExecute)
		defer endExec()
		ro.runLabeled(ctx, func(ctx context.Context) {
			if factors != nil {
				res, err = prep.RunWithFactors(ctx, factors)
			} else {
				res, err = prep.Run(ctx)
			}
		})
		return err
	}()
	if err != nil {
		s.writeRunError(w, ctx, err)
		return
	}
	s.m.countDomain(cv.name)
	endEncode := ro.stage(stageEncode)
	if acceptsMediaType(r, wire.ContentType) {
		// Binary response negotiation: the free-variable output travels as
		// one factor frame instead of JSON rows (see
		// encodeBinaryQueryResponse), closing the PR 5 wire asymmetry.
		s.m.binaryResp.Add(1)
		stream, encErr := encodeBinaryQueryResponse(cv, q, prep, res, start, ro.traceData())
		endEncode()
		if encErr != nil {
			writeError(w, http.StatusInternalServerError, "encoding binary response: %v", encErr)
			return
		}
		w.Header().Set("Content-Type", wire.ContentType)
		w.Write(stream) // nothing to do about a broken connection here
		return
	}
	resp := encodeQueryResponse(cv, q, prep, res, start)
	endEncode()
	resp.Trace = ro.traceData()
	writeJSON(w, http.StatusOK, resp)
}

// acceptsMediaType reports whether the request's Accept header names the
// given media type exactly.  Parameters are ignored and wildcards do not
// match: the binary response encodings are strictly opt-in, so a plain
// */* keeps meaning JSON.
func acceptsMediaType(r *http.Request, mediaType string) bool {
	for _, hdr := range r.Header.Values("Accept") {
		for _, part := range strings.Split(hdr, ",") {
			if mt, _, err := mime.ParseMediaType(strings.TrimSpace(part)); err == nil && mt == mediaType {
				return true
			}
		}
	}
	return false
}

// encodeQueryResponse renders a completed run as the /v1/query response
// body; shared by the fresh-data path and the resident dataset path.
func encodeQueryResponse[V any](cv domainCodec[V], q *core.Query[V],
	prep *core.PreparedQuery[V], res *core.Result[V], start time.Time) *QueryResponse {

	resp := &QueryResponse{
		Domain: cv.name,
		Plan:   planSummary(prep.Plan(), q.VarName),
		Stats: RunStats{
			Eliminations:     res.Stats.Eliminations,
			IntermediateRows: res.Stats.IntermediateRows,
			MaxIntermediate:  res.Stats.MaxIntermediate,
			JoinProbes:       res.Stats.Join.Probes,
		},
		ElapsedMS: durationMS(time.Since(start)),
	}
	if q.NumFree == 0 {
		resp.Value = cv.encode(res.Scalar())
	} else {
		tuples := res.Output.Tuples()
		if tuples == nil {
			tuples = [][]int{} // an empty output is [], not null
		}
		values := res.Output.Values
		if values == nil {
			values = []V{}
		}
		out := &OutputData{Tuples: tuples, Values: cv.encodeColumn(values)}
		for _, v := range res.Output.Vars {
			out.Vars = append(out.Vars, q.VarName(v))
		}
		resp.Output = out
	}
	return resp
}

// writeRunError maps a prepare/run failure to a status: deadline → 504,
// client disconnect → 499, a planner that died serving someone's in-flight
// prepare → 500 (server bug, not this client's query), anything else is a
// bad query → 400.
func (s *Server) writeRunError(w http.ResponseWriter, ctx context.Context, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "query deadline exceeded")
	case errors.Is(err, context.Canceled) && ctx.Err() != nil:
		writeError(w, statusClientClosedRequest, "client closed request")
	case errors.Is(err, core.ErrPlannerPanic):
		writeError(w, http.StatusInternalServerError, "%v", err)
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
	}
}

// declPerm returns the permutation from a factor block's declaration-order
// columns to the sorted storage order, and whether it is the identity.
func declPerm(decl []int) (perm []int, identity bool) {
	perm = make([]int, len(decl))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return decl[perm[a]] < decl[perm[b]] })
	identity = true
	for i, p := range perm {
		if p != i {
			identity = false
			break
		}
	}
	return perm, identity
}

// buildFactorsJSON turns the request's JSON factor data into factors with
// the spec query's variable scopes — the same-shape contract
// RunWithFactors enforces.  Request tuple columns are in the spec factor
// block's *declaration* order (the same column order as the spec's own
// data lines); they are permuted here to the sorted order factors store,
// exactly as the spec parser permutes inline data, so a client can ship
// fresh data in the layout of its own spec without silent transposition.
func buildFactorsJSON[V any](q *core.Query[V], layout [][]int, data []FactorData,
	cv domainCodec[V]) ([]*factor.Factor[V], error) {

	if len(data) != len(q.Factors) {
		return nil, fmt.Errorf("request has %d factors, spec declares %d", len(data), len(q.Factors))
	}
	factors := make([]*factor.Factor[V], len(data))
	for i, fd := range data {
		decl := layout[i]
		perm, _ := declPerm(decl)
		// Decode straight into the factor's flat row block — the fresh-data
		// path ships whole relations per request, so skipping the [][]int
		// intermediate is a measurable slice of triangle-fresh latency.
		rows := make([]int32, 0, len(fd.Tuples)*len(decl))
		for _, tup := range fd.Tuples {
			if len(tup) != len(decl) {
				return nil, fmt.Errorf("factor %d: tuple %v has arity %d, want %d", i, tup, len(tup), len(decl))
			}
			for _, p := range perm {
				if tup[p] < math.MinInt32 || tup[p] > math.MaxInt32 {
					return nil, fmt.Errorf("factor %d: tuple %v exceeds the int32 domain-value range", i, tup)
				}
				rows = append(rows, int32(tup[p]))
			}
		}
		values := make([]V, len(fd.Values))
		for j, raw := range fd.Values {
			v, err := cv.fromJSON(raw)
			if err != nil {
				return nil, fmt.Errorf("factor %d value %d: %v", i, j, err)
			}
			values[j] = v
		}
		f, err := factor.NewRows(q.D, q.Factors[i].Vars, rows, values, nil)
		if err != nil {
			return nil, fmt.Errorf("factor %d: %v", i, err)
		}
		factors[i] = f
	}
	return factors, nil
}

// buildFactorsWire is buildFactorsJSON for binary frames: the frame's row
// block and value column feed factor.NewRows directly — when the spec
// declared the block's variables in sorted order (the common case) both
// columns are adopted without copying.
func buildFactorsWire[V any](q *core.Query[V], layout [][]int, frames []*wire.Frame,
	cv domainCodec[V]) ([]*factor.Factor[V], error) {

	if len(frames) != len(q.Factors) {
		return nil, fmt.Errorf("request has %d factor frames, spec declares %d", len(frames), len(q.Factors))
	}
	factors := make([]*factor.Factor[V], len(frames))
	for i, fr := range frames {
		decl := layout[i]
		if fr.Domain != cv.wireDom {
			return nil, fmt.Errorf("factor frame %d carries domain %v, spec declares %s",
				i, fr.Domain, cv.name)
		}
		if fr.Arity != len(decl) {
			return nil, fmt.Errorf("factor frame %d has arity %d, spec factor has %d",
				i, fr.Arity, len(decl))
		}
		rows := fr.Rows
		if perm, identity := declPerm(decl); !identity {
			// The spec declared this block's columns out of sorted order:
			// permute each row, exactly as the spec parser does for the
			// block's own data lines.
			k := len(decl)
			rows = make([]int32, len(fr.Rows))
			for r := 0; r < fr.NumRows(); r++ {
				src := fr.Rows[r*k : r*k+k]
				dst := rows[r*k : r*k+k]
				for j, p := range perm {
					dst[j] = src[p]
				}
			}
		}
		f, err := factor.NewRows(q.D, q.Factors[i].Vars, rows, cv.frameCol(fr), nil)
		if err != nil {
			return nil, fmt.Errorf("factor frame %d: %v", i, err)
		}
		factors[i] = f
	}
	return factors, nil
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var shape *core.Shape
	var name func(int) string
	var timeoutMS int64
	switch {
	case r.Method == http.MethodGet && r.URL.Query().Get("example") != "":
		var err error
		shape, name, err = BuiltinExample(r.URL.Query().Get("example"))
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	case r.Method == http.MethodPost:
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
		dec.DisallowUnknownFields()
		var req QueryRequest
		if err := dec.Decode(&req); err != nil {
			writeDecodeError(w, err)
			return
		}
		var err error
		shape, name, err = planShape(req.Spec)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		timeoutMS = req.TimeoutMS
	default:
		writeError(w, http.StatusBadRequest,
			"plan wants GET ?example=<name> or POST {\"spec\": ...}")
		return
	}
	// Like /v1/query, the report honors the request's timeout_ms (and the
	// operator's clamp) and is cancelled when the client disconnects: the
	// exact DP inside is the one exponential stage a wide shape could wedge
	// the daemon on.
	ctx, cancel := context.WithTimeout(r.Context(), s.queryTimeout(timeoutMS))
	defer cancel()
	rep, err := BuildPlanReport(ctx, shape, name)
	if err != nil {
		s.writeRunError(w, ctx, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// planShape resolves a spec of any domain to its untyped shape: plans are
// domain-independent, so /v1/plan serves every domain through one path.
func planShape(specText string) (*core.Shape, func(int) string, error) {
	doc, err := spec.ParseDocument(strings.NewReader(specText))
	if err != nil {
		return nil, nil, err
	}
	switch doc.Domain {
	case spec.DomainInt:
		return shapeOf(doc, intCodec.build)
	case spec.DomainBool:
		return shapeOf(doc, boolCodec.build)
	case spec.DomainTropical:
		return shapeOf(doc, tropicalCodec.build)
	default:
		return shapeOf(doc, floatCodec.build)
	}
}

// shapeOf builds the typed query just long enough to extract its untyped
// shape and name table.  Dataset references resolve through the stub
// resolver: a plan needs variable scopes, not factor data.
func shapeOf[V any](doc *spec.Document, build func(*spec.Document, ...spec.Resolver[V]) (*core.Query[V], [][]int, error)) (*core.Shape, func(int) string, error) {
	q, _, err := build(doc, spec.StubResolver[V]())
	if err != nil {
		return nil, nil, err
	}
	return q.Shape(), q.VarName, nil
}
