package server

import (
	"context"
	"fmt"
	"net/http/httptest"

	"github.com/faqdb/faq/internal/wire"
)

// ExampleClient runs one query against an in-process server: the same
// Client faqload and the smoke harness drive against a network daemon.
func ExampleClient() {
	srv, err := New(Config{Workers: 1})
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := NewClient(ts.URL)
	resp, err := c.Query(context.Background(), &QueryRequest{
		Spec: "var x 3 sum\nvar y 3 sum\nfactor x y\n0 1 = 2\n1 2 = 3\nend\n",
	})
	if err != nil {
		panic(err)
	}
	v, err := resp.FloatValue()
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s %g (plan %s)\n", resp.Domain, v, resp.Plan.Method)
	// Output: float 5 (plan exact-dp)
}

// ExampleClient_QueryFrames ships fresh factor data in the binary wire
// framing — the fast data-refresh path: the spec holds placeholder data,
// the frame holds this request's rows, and the server decodes it straight
// into a flat factor block.
func ExampleClient_QueryFrames() {
	srv, err := New(Config{Workers: 1})
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := NewClient(ts.URL)
	resp, err := c.QueryFrames(context.Background(),
		&QueryRequest{Spec: "var x 3 sum\nvar y 3 sum\nfactor x y\n0 0 = 1\nend\n"},
		[]*wire.Frame{{
			Domain: wire.DomainFloat,
			Arity:  2,
			Rows:   []int32{0, 1, 1, 2}, // rows (0,1) and (1,2)
			Floats: []float64{2, 3},
		}})
	if err != nil {
		panic(err)
	}
	v, err := resp.FloatValue()
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s %g\n", resp.Domain, v)
	// Output: float 5
}
