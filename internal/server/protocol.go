// The faqd wire protocol: JSON request/response types shared by the server
// handlers, the Go client and the cmd tools (faqload, faqplan -json).  The
// protocol is deliberately plain HTTP/JSON — the serving win of the FAQ
// engine is plan amortization, not wire encoding, and JSON keeps curl and
// load tools first-class citizens.
package server

// QueryRequest is the body of POST /v1/query: a query in the internal/spec
// text format, optionally with fresh factor data and per-request execution
// knobs.
type QueryRequest struct {
	// Spec is the query in the internal/spec format: variable declarations
	// (domain size + aggregate) followed by factor blocks with listing
	// data.  The spec's untyped shape is the plan-cache key, so requests
	// that differ only in data share one planning pass.
	Spec string `json:"spec"`
	// Factors optionally replaces the spec's factor data with fresh
	// same-shape data — the RunWithFactors path of a serving loop.  One
	// entry per spec factor, in spec order; tuple columns follow the
	// factor block's variable *declaration* order, i.e. the same column
	// layout as the spec's own data lines (the server permutes to sorted
	// storage order, exactly as the spec parser does for inline data).
	Factors []FactorData `json:"factors,omitempty"`
	// TimeoutMS bounds planning + execution; 0 means the server default.
	// The run is also cancelled when the client disconnects.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Workers caps the run's executor concurrency below the engine pool:
	// 0 means the pool's full width, 1 forces the sequential executor.
	Workers int `json:"workers,omitempty"`
}

// FactorData is fresh listing data for one factor: parallel tuple/value
// slices, zero values dropped server-side.
type FactorData struct {
	Tuples [][]int   `json:"tuples"`
	Values []float64 `json:"values"`
}

// QueryResponse is the body of a successful POST /v1/query.  Exactly one of
// Value (no free variables) and Output (free variables) is set.
type QueryResponse struct {
	Value     *float64    `json:"value,omitempty"`
	Output    *OutputData `json:"output,omitempty"`
	Plan      PlanSummary `json:"plan"`
	Stats     RunStats    `json:"stats"`
	ElapsedMS float64     `json:"elapsed_ms"`
}

// OutputData is a free-variable result in listing representation.
type OutputData struct {
	Vars   []string  `json:"vars"`
	Tuples [][]int   `json:"tuples"`
	Values []float64 `json:"values"`
}

// PlanSummary is one planned ordering with its FAQ-width.
type PlanSummary struct {
	Method string   `json:"method"`
	Width  float64  `json:"width"`
	Order  []string `json:"order"`
}

// RunStats are the InsideOut work counters of one run.
type RunStats struct {
	Eliminations     int   `json:"eliminations"`
	IntermediateRows int64 `json:"intermediate_rows"`
	MaxIntermediate  int64 `json:"max_intermediate"`
	JoinProbes       int64 `json:"join_probes"`
}

// PlanReport is the Figure-1 ordering-theory pipeline for one query shape:
// hypergraph → expression tree → precedence poset → planned orderings and
// widths.  It is served by /v1/plan and emitted by faqplan -json.
type PlanReport struct {
	Hypergraph string   `json:"hypergraph"`
	Vars       []string `json:"vars"`
	NumFree    int      `json:"num_free"`
	Tags       []string `json:"tags"`
	// ExpressionTree is the Definition 6.18 tree (Figures 2–6);
	// SoundExpressionTree is set only when the flat-rewriting-sound form
	// (non-closed Σ anchored) differs from it.
	ExpressionTree      string `json:"expression_tree"`
	SoundExpressionTree string `json:"sound_expression_tree,omitempty"`
	PosetPairs          int    `json:"poset_pairs"`
	// LinearExtensions counts |LinEx(P)|, capped at 10000.
	LinearExtensions int           `json:"linear_extensions"`
	Plans            []PlanSummary `json:"plans"`
	FHTW             float64       `json:"fhtw"`
}

// StatszResponse is the body of GET /statsz: a race-safe snapshot of the
// engine counters plus server-level serving metrics.
type StatszResponse struct {
	UptimeSeconds float64     `json:"uptime_seconds"`
	Engine        EngineStatz `json:"engine"`
	Server        ServerStatz `json:"server"`
}

// EngineStatz mirrors core.EngineStats (see Engine.StatsSnapshot).
type EngineStatz struct {
	Prepared        int64 `json:"prepared"`
	PlanCacheHits   int64 `json:"plan_cache_hits"`
	PlanCacheMisses int64 `json:"plan_cache_misses"`
	PlanCoalesced   int64 `json:"plan_coalesced"`
	PlansCached     int64 `json:"plans_cached"`
	Runs            int64 `json:"runs"`
	RunsCancelled   int64 `json:"runs_cancelled"`
}

// ServerStatz are the HTTP-level counters.  InFlight excludes the
// monitoring endpoints (/healthz, /statsz) — an idle daemon reads 0 even
// while being polled.  Latency percentiles are over a ring of the most
// recent /v1/query requests (successful or not), so they track current
// behavior, not lifetime history.
type ServerStatz struct {
	Requests     int64   `json:"requests"`
	RequestsOK   int64   `json:"requests_ok"`
	RequestsErr  int64   `json:"requests_err"`
	InFlight     int64   `json:"in_flight"`
	Queries      int64   `json:"queries"`
	Rejected     int64   `json:"rejected"`
	LatencyP50MS float64 `json:"latency_p50_ms"`
	LatencyP99MS float64 `json:"latency_p99_ms"`
	LatencyMaxMS float64 `json:"latency_max_ms"`
	Goroutines   int     `json:"goroutines"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}
