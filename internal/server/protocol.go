// The faqd wire protocol: the request/response types shared by the server
// handlers, the Go client and the cmd tools (faqload, faqplan -json).
// Control flow is plain HTTP/JSON — the serving win of the FAQ engine is
// plan amortization, and JSON keeps curl and load tools first-class
// citizens — while bulk factor data may alternatively travel as the
// internal/wire binary framing (Content-Type: application/x-faq-factors),
// which skips the JSON tuple-decoding cost that dominates refresh-heavy
// workloads.  docs/PROTOCOL.md is the complete reference.
package server

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"

	"github.com/faqdb/faq/internal/obs"
)

// QueryRequest is the body of POST /v1/query: a query in the internal/spec
// text format, optionally with fresh factor data and per-request execution
// knobs.  As JSON it is the whole body; in a binary factor stream it is the
// envelope header (without Factors — the frames carry the data).
type QueryRequest struct {
	// Spec is the query in the internal/spec format: an optional domain
	// directive, variable declarations (domain size + aggregate) and
	// factor blocks with listing data.  The spec's untyped shape is the
	// plan-cache key, so requests that differ only in data — or only in
	// value domain — share one planning pass.
	Spec string `json:"spec"`
	// Factors optionally replaces the spec's factor data with fresh
	// same-shape data — the RunWithFactors path of a serving loop.  One
	// entry per spec factor, in spec order; tuple columns follow the
	// factor block's variable *declaration* order, i.e. the same column
	// layout as the spec's own data lines (the server permutes to sorted
	// storage order, exactly as the spec parser does for inline data).
	// Binary requests must leave Factors empty and ship frames instead.
	Factors []FactorData `json:"factors,omitempty"`
	// TimeoutMS bounds planning + execution; 0 means the server default.
	// The run is also cancelled when the client disconnects.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Workers caps the run's executor concurrency below the engine pool:
	// 0 means the pool's full width, 1 forces the sequential executor.
	Workers int `json:"workers,omitempty"`
}

// FactorData is fresh listing data for one factor: parallel tuple/value
// slices, zero values dropped server-side.  Values are JSON numbers for
// every domain: int-domain values must be integral (and within ±2^53, the
// exact range of a float64 — use the binary encoding for full int64
// precision), bool-domain values must be 0 or 1.
type FactorData struct {
	// Tuples are the data rows, columns in the spec factor block's
	// declaration order.
	Tuples [][]int `json:"tuples"`
	// Values are the row values, parallel to Tuples.
	Values []float64 `json:"values"`
}

// DeltaRequest is the body of POST /v1/delta: a delta batch against an
// evolving query session.  As JSON it is the whole body; in a binary delta
// stream (Content-Type application/x-faq-deltas) it is the envelope header
// (without Deltas — the delta frames carry the changes).
type DeltaRequest struct {
	// Spec is the query in the internal/spec format.  On the session's
	// first request the spec's inline factor data seeds the evolving state;
	// on later requests it identifies the query shape (and, when Session is
	// empty, the session itself).
	Spec string `json:"spec"`
	// Session optionally names the evolving state.  Requests sharing a
	// session name evolve one database; when empty, the spec text is the
	// session key, so identical specs share state.
	Session string `json:"session,omitempty"`
	// Deltas is the batch, applied atomically in order: either the whole
	// batch commits and the response carries the maintained result, or the
	// state is untouched and the response is an error.  Binary requests
	// must leave Deltas empty and ship delta frames instead.
	Deltas []DeltaData `json:"deltas,omitempty"`
	// TimeoutMS bounds the incremental run; 0 means the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Workers caps executor concurrency for the session's first prepare;
	// an established session keeps the concurrency it was prepared with.
	Workers int `json:"workers,omitempty"`
}

// DeltaData is one batch entry: row changes against a single factor.
type DeltaData struct {
	// Factor is the spec-order index of the factor the rows change.
	Factor int `json:"factor"`
	// Op is "insert" (upsert; a zero value removes the row) or "delete"
	// (every named row must be present).
	Op string `json:"op"`
	// Tuples are the changed rows, columns in the spec factor block's
	// declaration order, exactly as in FactorData.
	Tuples [][]int `json:"tuples"`
	// Values are the inserted row values, parallel to Tuples; deletes
	// carry none.  The same JSON number conventions as FactorData apply.
	Values []float64 `json:"values,omitempty"`
}

// DeltaResponse is the body of a successful POST /v1/delta: the maintained
// query result after the batch, plus how it was maintained.  Value/Output
// follow the QueryResponse convention.
type DeltaResponse struct {
	// Domain names the value domain the spec declared.
	Domain string `json:"domain"`
	// Value is the scalar result (no free variables), typed as in
	// QueryResponse.
	Value any `json:"value,omitempty"`
	// Output is the listing result (free variables).
	Output *OutputData `json:"output,omitempty"`
	// Strategy names the maintenance path the session uses: "ring"
	// (Δ-propagation), "blocks" (affected-block re-execution) or
	// "recompute" (full re-run).
	Strategy string `json:"strategy"`
	// Applied is the number of deltas committed by this request.
	Applied int `json:"applied"`
	// Stats are the incremental run's work counters.
	Stats RunStats `json:"stats"`
	// ElapsedMS is the server-side wall time of the request.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Trace is the stage-timing span tree, present when the request asked
	// for it (?trace=1 or the X-FAQ-Trace: 1 header).
	Trace *obs.TraceData `json:"trace,omitempty"`
}

// FloatValue returns the scalar result of a float- or tropical-domain
// delta response.
func (r *DeltaResponse) FloatValue() (float64, error) { return floatOf(r.Value) }

// IntValue returns the scalar result of an int-domain delta response.
func (r *DeltaResponse) IntValue() (int64, error) { return intOf(r.Value) }

// BoolValue returns the scalar result of a bool-domain delta response.
func (r *DeltaResponse) BoolValue() (bool, error) { return boolOf(r.Value) }

// QueryResponse is the body of a successful POST /v1/query.  Exactly one
// of Value (no free variables) and Output (free variables) is set, typed
// by Domain.
type QueryResponse struct {
	// Domain names the value domain the spec declared: "float", "int",
	// "bool" or "tropical".
	Domain string `json:"domain"`
	// Value is the scalar result of a query without free variables: a
	// JSON number (float/int/tropical) or boolean (bool).  Use the typed
	// accessors (FloatValue, IntValue, BoolValue) rather than asserting —
	// a client-side decode yields json.Number, an in-process response the
	// native Go value.
	Value any `json:"value,omitempty"`
	// Output is the listing result of a query with free variables.
	Output *OutputData `json:"output,omitempty"`
	// Plan summarizes the ordering the run executed.
	Plan PlanSummary `json:"plan"`
	// Stats are the run's InsideOut work counters.
	Stats RunStats `json:"stats"`
	// ElapsedMS is the server-side wall time of the request.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Trace is the stage-timing span tree, present when the request asked
	// for it (?trace=1 or the X-FAQ-Trace: 1 header).
	Trace *obs.TraceData `json:"trace,omitempty"`
}

// FloatValue returns the scalar result of a float- or tropical-domain
// query.
func (r *QueryResponse) FloatValue() (float64, error) {
	v, err := floatOf(r.Value)
	if err != nil {
		return 0, fmt.Errorf("faqd: %s-domain scalar: %w", r.Domain, err)
	}
	return v, nil
}

// IntValue returns the scalar result of an int-domain query, exact over
// the full int64 range.
func (r *QueryResponse) IntValue() (int64, error) {
	v, err := intOf(r.Value)
	if err != nil {
		return 0, fmt.Errorf("faqd: %s-domain scalar: %w", r.Domain, err)
	}
	return v, nil
}

// BoolValue returns the scalar result of a bool-domain query.
func (r *QueryResponse) BoolValue() (bool, error) {
	v, err := boolOf(r.Value)
	if err != nil {
		return false, fmt.Errorf("faqd: %s-domain scalar: %w", r.Domain, err)
	}
	return v, nil
}

// OutputData is a free-variable result in listing representation, typed by
// the response's Domain.
type OutputData struct {
	// Vars are the free variables' spec names, in output column order.
	Vars []string `json:"vars"`
	// Tuples are the output rows.
	Tuples [][]int `json:"tuples"`
	// Values are the row values: JSON numbers or booleans per the
	// response domain.  Use the typed accessors (FloatValues, IntValues,
	// BoolValues) rather than asserting.
	Values any `json:"values"`
}

// FloatValues returns the output column of a float- or tropical-domain
// query.
func (o *OutputData) FloatValues() ([]float64, error) { return columnOf(o.Values, floatOf) }

// IntValues returns the output column of an int-domain query.
func (o *OutputData) IntValues() ([]int64, error) { return columnOf(o.Values, intOf) }

// BoolValues returns the output column of a bool-domain query.
func (o *OutputData) BoolValues() ([]bool, error) { return columnOf(o.Values, boolOf) }

// floatOf, intOf and boolOf read one domain value from its native Go form
// (server-side) or its decoded JSON form (client-side: json.Number, or
// float64/bool from a vanilla decoder).  Non-finite float values travel
// as the strings "inf", "-inf", "nan" — JSON numbers cannot express them;
// +Inf in particular is the tropical domain's additive identity (an empty
// min), so it is a legitimate result.
func floatOf(v any) (float64, error) {
	switch x := v.(type) {
	case float64:
		return x, nil
	case json.Number:
		return strconv.ParseFloat(x.String(), 64)
	case string:
		switch x {
		case "inf", "-inf", "nan": // the wire spellings, exactly
			return strconv.ParseFloat(x, 64)
		}
		return 0, fmt.Errorf("string value %q is not a float spelling", x)
	case nil:
		return 0, fmt.Errorf("no value")
	}
	return 0, fmt.Errorf("value %v (%T) is not a number", v, v)
}

func intOf(v any) (int64, error) {
	switch x := v.(type) {
	case int64:
		return x, nil
	case json.Number:
		return x.Int64()
	case float64:
		if x != math.Trunc(x) || math.Abs(x) > 1<<53 {
			return 0, fmt.Errorf("value %v is not an exact int64", x)
		}
		return int64(x), nil
	case nil:
		return 0, fmt.Errorf("no value")
	}
	return 0, fmt.Errorf("value %v (%T) is not an integer", v, v)
}

func boolOf(v any) (bool, error) {
	switch x := v.(type) {
	case bool:
		return x, nil
	case nil:
		return false, fmt.Errorf("no value")
	}
	return false, fmt.Errorf("value %v (%T) is not a bool", v, v)
}

// columnOf reads a whole output column through one of the scalar readers.
func columnOf[V any](vs any, one func(any) (V, error)) ([]V, error) {
	switch col := vs.(type) {
	case []V: // server-side native column
		return col, nil
	case []any: // client-side decoded column
		out := make([]V, len(col))
		for i, v := range col {
			x, err := one(v)
			if err != nil {
				return nil, fmt.Errorf("faqd: output value %d: %w", i, err)
			}
			out[i] = x
		}
		return out, nil
	case nil:
		return nil, fmt.Errorf("faqd: output has no values")
	}
	return nil, fmt.Errorf("faqd: output values have unexpected type %T", vs)
}

// PlanSummary is one planned ordering with its FAQ-width.
type PlanSummary struct {
	// Method names the planner that produced the ordering.
	Method string `json:"method"`
	// Width is the ordering's FAQ-width.
	Width float64 `json:"width"`
	// Order lists the variables in elimination order (outermost first).
	Order []string `json:"order"`
}

// RunStats are the InsideOut work counters of one run.
type RunStats struct {
	// Eliminations counts the variable-elimination steps executed.
	Eliminations int `json:"eliminations"`
	// IntermediateRows totals the rows of every intermediate factor.
	IntermediateRows int64 `json:"intermediate_rows"`
	// MaxIntermediate is the largest single intermediate factor.
	MaxIntermediate int64 `json:"max_intermediate"`
	// JoinProbes counts OutsideIn trie probes.
	JoinProbes int64 `json:"join_probes"`
}

// PlanReport is the Figure-1 ordering-theory pipeline for one query shape:
// hypergraph → expression tree → precedence poset → planned orderings and
// widths.  It is served by /v1/plan and emitted by faqplan -json.
type PlanReport struct {
	// Hypergraph renders the query hypergraph.
	Hypergraph string `json:"hypergraph"`
	// Vars are the variable names in expression order.
	Vars []string `json:"vars"`
	// NumFree counts the free prefix.
	NumFree int `json:"num_free"`
	// Tags are the per-variable aggregate tags of the untyped shape.
	Tags []string `json:"tags"`
	// ExpressionTree is the Definition 6.18 tree (Figures 2–6);
	// SoundExpressionTree is set only when the flat-rewriting-sound form
	// (non-closed Σ anchored) differs from it.
	ExpressionTree      string `json:"expression_tree"`
	SoundExpressionTree string `json:"sound_expression_tree,omitempty"`
	// PosetPairs counts the precedence poset's order pairs.
	PosetPairs int `json:"poset_pairs"`
	// LinearExtensions counts |LinEx(P)|, capped at 10000.
	LinearExtensions int `json:"linear_extensions"`
	// Plans are the planned orderings, one per planner that ran.
	Plans []PlanSummary `json:"plans"`
	// FHTW is the fractional hypertree width of the query hypergraph.
	FHTW float64 `json:"fhtw"`
}

// DatasetInfo describes one stored dataset: the body of a successful
// GET /v1/datasets/{name} and the acknowledgment of a PUT.
type DatasetInfo struct {
	// Name is the dataset name.
	Name string `json:"name"`
	// Domain is the value domain shared by every factor ("float", "int",
	// "bool" or "tropical").
	Domain string `json:"domain"`
	// Bytes is the on-disk (and mapped) file size.
	Bytes int64 `json:"bytes"`
	// Factors lists the stored factors in reference order (@0, @1, …).
	Factors []DatasetFactorInfo `json:"factors"`
}

// DatasetFactorInfo is the shape, size and checksum of one stored factor.
type DatasetFactorInfo struct {
	// Arity is the number of columns per row.
	Arity int `json:"arity"`
	// Rows is the number of stored (non-zero) tuples.
	Rows int `json:"rows"`
	// Bytes is the factor's padded segment length on disk.
	Bytes int64 `json:"bytes"`
	// CRC32 is the segment's CRC-32 (IEEE), in hex.
	CRC32 string `json:"crc32"`
}

// DatasetListResponse is the body of GET /v1/datasets.
type DatasetListResponse struct {
	// Datasets lists every resident dataset, sorted by name.
	Datasets []DatasetInfo `json:"datasets"`
}

// StoreStatz are the dataset-store counters of /statsz, present when the
// server was started with a data directory.
type StoreStatz struct {
	// Datasets is the number of resident (mapped) datasets.
	Datasets int64 `json:"datasets"`
	// BytesMapped is the total mapped bytes across resident datasets.
	BytesMapped int64 `json:"bytes_mapped"`
	// ChecksumFailures counts dataset opens rejected by a CRC mismatch
	// over the store's lifetime.
	ChecksumFailures int64 `json:"store_checksum_failures"`
	// DatasetQueries counts /v1/query requests served against resident
	// dataset factors (specs with a use directive).
	DatasetQueries int64 `json:"dataset_queries"`
	// ResidentPrepared is the current population of the dataset
	// prepared-query registry (queries kept warm against resident data).
	ResidentPrepared int64 `json:"resident_prepared"`
	// LoadErrors counts files skipped at startup because they failed
	// verification.
	LoadErrors int64 `json:"load_errors"`
}

// StatszResponse is the body of GET /statsz: a race-safe snapshot of the
// engine counters plus server-level serving metrics.
type StatszResponse struct {
	// UptimeSeconds is the time since the server was created.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Engine mirrors core.EngineStats; one engine runtime serves every
	// domain, so these counters are process-wide.
	Engine EngineStatz `json:"engine"`
	// Server holds the HTTP-level counters.
	Server ServerStatz `json:"server"`
	// Store holds the dataset-store counters; nil when the server runs
	// without a data directory.
	Store *StoreStatz `json:"store,omitempty"`
	// Sort holds the data-plane sort and scan-split counters.
	Sort SortStatz `json:"sort"`
}

// SortStatz are the process-wide data-plane counters of the shared radix
// sort kernel and the block-parallel scan splitter.
type SortStatz struct {
	// RadixSorts / ComparisonSorts count row-block argsorts by strategy:
	// the packed-key radix kernel vs the below-cutoff comparison sort.
	RadixSorts      int64 `json:"radix_sorts"`
	ComparisonSorts int64 `json:"comparison_sorts"`
	// ParallelScans counts scans split into parallel blocks;
	// CacheAwareSplits the subset whose block count was sized to the
	// cache footprint target rather than the worker floor.
	ParallelScans    int64 `json:"parallel_scans"`
	CacheAwareSplits int64 `json:"cache_aware_splits"`
	// LastBlockKeys is the lead-keys-per-block choice of the most recent
	// split.
	LastBlockKeys int64 `json:"last_block_keys"`
}

// EngineStatz mirrors core.EngineStats (see Engine.StatsSnapshot).
type EngineStatz struct {
	// Prepared counts Prepare calls that returned a prepared query.
	Prepared int64 `json:"prepared"`
	// PlanCacheHits / PlanCacheMisses count plan-LRU outcomes.
	PlanCacheHits   int64 `json:"plan_cache_hits"`
	PlanCacheMisses int64 `json:"plan_cache_misses"`
	// PlanCoalesced counts prepares that adopted another request's
	// in-flight planning pass.
	PlanCoalesced int64 `json:"plan_coalesced"`
	// PlansCached is the current plan-LRU population.
	PlansCached int64 `json:"plans_cached"`
	// Runs / RunsCancelled count completed and context-aborted runs.
	Runs          int64 `json:"runs"`
	RunsCancelled int64 `json:"runs_cancelled"`
	// DeltasApplied counts committed ApplyDeltas batches; the three run
	// counters attribute them to maintenance strategies (ring
	// Δ-propagation, affected-block re-execution, full recompute).
	DeltasApplied   int64 `json:"deltas_applied"`
	DeltaRingRuns   int64 `json:"delta_ring_runs"`
	DeltaBlockRuns  int64 `json:"delta_block_runs"`
	DeltaRecomputes int64 `json:"delta_recomputes"`
	// TrieCache* mirror the engine-wide versioned trie cache: lookup
	// outcomes, entries dropped by factor updates, capacity evictions and
	// the current population.
	TrieCacheHits          int64 `json:"trie_cache_hits"`
	TrieCacheMisses        int64 `json:"trie_cache_misses"`
	TrieCacheInvalidations int64 `json:"trie_cache_invalidations"`
	TrieCacheEvictions     int64 `json:"trie_cache_evictions"`
	TrieCacheEntries       int64 `json:"trie_cache_entries"`
}

// ServerStatz are the HTTP-level counters.  InFlight excludes the
// monitoring endpoints (/healthz, /statsz) — an idle daemon reads 0 even
// while being polled.  Latency percentiles are over a ring of the most
// recent /v1/query requests (successful or not), so they track current
// behavior, not lifetime history.
type ServerStatz struct {
	// Requests counts every request on any endpoint; RequestsOK and
	// RequestsErr split them by status (< 400 vs >= 400).
	Requests    int64 `json:"requests"`
	RequestsOK  int64 `json:"requests_ok"`
	RequestsErr int64 `json:"requests_err"`
	// InFlight is the number of non-monitoring requests currently being
	// handled.
	InFlight int64 `json:"in_flight"`
	// Queries counts POST /v1/query requests; QueriesBinary the subset
	// that shipped binary factor streams; QueriesBinaryResp the subset
	// whose response was negotiated into the binary factor encoding
	// (Accept: application/x-faq-factors).
	Queries           int64 `json:"queries"`
	QueriesBinary     int64 `json:"queries_binary"`
	QueriesBinaryResp int64 `json:"queries_binary_responses"`
	// Batches counts POST /v1/batch requests; BatchesBinary the subset
	// that shipped the binary batch envelope; BatchStreams the subset
	// whose response was streamed as binary result records (Accept:
	// application/x-faq-results).  BatchItems counts executed batch items
	// across all batches; BatchItemsErr the items that failed.
	Batches       int64 `json:"batches"`
	BatchesBinary int64 `json:"batches_binary"`
	BatchStreams  int64 `json:"batch_streams"`
	BatchItems    int64 `json:"batch_items"`
	BatchItemsErr int64 `json:"batch_items_err"`
	// QueriesByDomain counts executed queries per value domain.
	QueriesByDomain map[string]int64 `json:"queries_by_domain"`
	// Deltas counts POST /v1/delta requests; DeltasBinary the subset that
	// shipped binary delta streams.  DeltaSessions is the current session
	// registry population (LRU-bounded by Config.MaxSessions).
	Deltas        int64 `json:"deltas"`
	DeltasBinary  int64 `json:"deltas_binary"`
	DeltaSessions int64 `json:"delta_sessions"`
	// Rejected counts queries shed with 429 (backpressure).
	Rejected int64 `json:"rejected"`
	// LatencyP50MS / LatencyP90MS / LatencyP99MS / LatencyMaxMS are
	// percentiles over the recent-query latency ring; LatencyWindow is the
	// number of samples they were computed over (at most the ring size),
	// so a reader can judge how trustworthy the tail percentiles are.
	LatencyP50MS  float64 `json:"latency_p50_ms"`
	LatencyP90MS  float64 `json:"latency_p90_ms"`
	LatencyP99MS  float64 `json:"latency_p99_ms"`
	LatencyMaxMS  float64 `json:"latency_max_ms"`
	LatencyWindow int64   `json:"latency_window"`
	// Goroutines is runtime.NumGoroutine at snapshot time.
	Goroutines int `json:"goroutines"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	// Error is a human-readable description of what was wrong.
	Error string `json:"error"`
}
