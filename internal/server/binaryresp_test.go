package server

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"testing"

	"github.com/faqdb/faq/internal/wire"
)

// TestBinaryResponsePerDomain checks the response-side binary
// negotiation: for every domain, Accept: application/x-faq-factors must
// deliver the same scalar the JSON encoding does, bit-exactly.
func TestBinaryResponsePerDomain(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	fresh := FactorData{
		Tuples: [][]int{{0, 1}, {1, 2}, {2, 0}, {3, 3}},
		Values: []float64{2, 3, 5, 1},
	}
	boolFresh := FactorData{Tuples: fresh.Tuples, Values: []float64{1, 0, 1, 1}}

	cases := []struct {
		domain, agg string
		data        FactorData
	}{
		{"float", "sum", fresh},
		{"int", "sum", fresh},
		{"bool", "or", boolFresh},
		{"tropical", "min", fresh},
	}
	for _, tc := range cases {
		t.Run(tc.domain, func(t *testing.T) {
			specText := pairSpec(tc.domain, tc.agg)
			req := &QueryRequest{Spec: specText, Factors: []FactorData{tc.data}}
			jr, err := c.Query(ctx, req)
			if err != nil {
				t.Fatalf("json query: %v", err)
			}
			br, err := c.QueryBinary(ctx, req)
			if err != nil {
				t.Fatalf("binary-response query: %v", err)
			}
			if br.Domain != tc.domain {
				t.Fatalf("binary response domain %q, want %q", br.Domain, tc.domain)
			}
			switch tc.domain {
			case "float", "tropical":
				jv := fval(t, jr)
				bv := fval(t, br)
				if math.Float64bits(jv) != math.Float64bits(bv) {
					t.Fatalf("json %v != binary %v", jv, bv)
				}
			case "int":
				jv, err := jr.IntValue()
				if err != nil {
					t.Fatal(err)
				}
				bv, err := br.IntValue()
				if err != nil {
					t.Fatal(err)
				}
				if jv != bv {
					t.Fatalf("json %d != binary %d", jv, bv)
				}
			case "bool":
				jv, err := jr.BoolValue()
				if err != nil {
					t.Fatal(err)
				}
				bv, err := br.BoolValue()
				if err != nil {
					t.Fatal(err)
				}
				if jv != bv {
					t.Fatalf("json %v != binary %v", jv, bv)
				}
			}
			if br.Plan.Method == "" || br.Stats.Eliminations == 0 {
				t.Fatalf("binary response lacks plan/stats: %+v", br)
			}
		})
	}
}

// TestBinaryResponseOutput checks a free-variable query's output listing
// survives the binary response frame, row for row and bit for bit —
// fully binary in both directions via QueryStreamBinary.
func TestBinaryResponseOutput(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	specText := "var x 4 free\nvar y 4 sum\nfactor y x\n0 1 = 1\nend\n"
	fresh := FactorData{
		Tuples: [][]int{{0, 1}, {1, 2}, {2, 0}, {3, 3}},
		Values: []float64{2, 3, 5, 1},
	}

	jr, err := c.Query(ctx, &QueryRequest{Spec: specText, Factors: []FactorData{fresh}})
	if err != nil {
		t.Fatal(err)
	}
	frame, err := FactorFrame(wire.DomainFloat, fresh)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := EncodeQueryStream(&QueryRequest{Spec: specText}, []*wire.Frame{frame})
	if err != nil {
		t.Fatal(err)
	}
	br, err := c.QueryStreamBinary(ctx, stream)
	if err != nil {
		t.Fatal(err)
	}
	if br.Output == nil || jr.Output == nil {
		t.Fatalf("outputs: json=%v binary=%v", jr.Output, br.Output)
	}
	if len(br.Output.Vars) != 1 || br.Output.Vars[0] != jr.Output.Vars[0] {
		t.Fatalf("binary vars %v, json vars %v", br.Output.Vars, jr.Output.Vars)
	}
	if len(br.Output.Tuples) != len(jr.Output.Tuples) {
		t.Fatalf("binary %d rows, json %d rows", len(br.Output.Tuples), len(jr.Output.Tuples))
	}
	jv, err := jr.Output.FloatValues()
	if err != nil {
		t.Fatal(err)
	}
	bv, err := br.Output.FloatValues()
	if err != nil {
		t.Fatal(err)
	}
	for i := range jv {
		if br.Output.Tuples[i][0] != jr.Output.Tuples[i][0] {
			t.Fatalf("row %d: binary tuple %v, json tuple %v", i, br.Output.Tuples[i], jr.Output.Tuples[i])
		}
		if math.Float64bits(jv[i]) != math.Float64bits(bv[i]) {
			t.Fatalf("row %d: json %v != binary %v", i, jv[i], bv[i])
		}
	}
}

// TestBinaryResponseInt64Precision proves the binary response carries
// int64 outputs JSON cannot: a value beyond 2^53 comes back exact.
func TestBinaryResponseInt64Precision(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 1})
	big := int64(1)<<60 + 3
	stream, err := EncodeQueryStream(
		&QueryRequest{Spec: "domain int\nvar x 2 free\nfactor x\n0 = 1\nend\n"},
		[]*wire.Frame{{Domain: wire.DomainInt, Arity: 1, Rows: []int32{1}, Ints: []int64{big}}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.QueryStreamBinary(context.Background(), stream)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := resp.Output.IntValues()
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 || vals[0] != big {
		t.Fatalf("binary output %v, want [%d]", vals, big)
	}
}

// TestBinaryResponseNegotiation checks the Accept handshake: only the
// exact media type opts in, plain and wildcard Accepts keep JSON, and
// /statsz counts the binary responses served.
func TestBinaryResponseNegotiation(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{Workers: 1})
	body, _ := json.Marshal(&QueryRequest{Spec: pairSpec("float", "sum")})

	post := func(t *testing.T, accept string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	for _, accept := range []string{"", "*/*", "application/json", "application/x-faq-factors-not"} {
		if ct := post(t, accept).Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("Accept %q answered %q, want JSON", accept, ct)
		}
	}
	for _, accept := range []string{
		wire.ContentType,
		"application/json, application/x-faq-factors;q=0.9",
	} {
		if ct := post(t, accept).Header.Get("Content-Type"); ct != wire.ContentType {
			t.Fatalf("Accept %q answered %q, want %q", accept, ct, wire.ContentType)
		}
	}
	if got := s.Statsz().Server.QueriesBinaryResp; got != 2 {
		t.Fatalf("statsz queries_binary_responses = %d, want 2", got)
	}
}

// TestBinaryResponseDataset checks the negotiation also covers dataset
// queries (a `use <dataset>` spec served from resident factors).
func TestBinaryResponseDataset(t *testing.T) {
	_, ts, c := newTestServer(t, Config{Workers: 1, DataDir: t.TempDir()})
	ctx := context.Background()

	frame, err := FactorFrame(wire.DomainFloat, FactorData{
		Tuples: [][]int{{0, 1}, {1, 2}, {2, 0}, {3, 3}},
		Values: []float64{2, 3, 5, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PutDataset(ctx, "pairs", []*wire.Frame{frame}); err != nil {
		t.Fatal(err)
	}
	specText := "use pairs\nvar x 4 sum\nvar y 4 sum\nfactor y x\nend\n"

	jr, err := c.Query(ctx, &QueryRequest{Spec: specText})
	if err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(&QueryRequest{Spec: specText})
	breq, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	breq.Header.Set("Content-Type", "application/json")
	breq.Header.Set("Accept", wire.ContentType)
	bresp, err := ts.Client().Do(breq)
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	if ct := bresp.Header.Get("Content-Type"); ct != wire.ContentType {
		t.Fatalf("dataset query answered %q, want %q", ct, wire.ContentType)
	}
	br, err := DecodeBinaryQueryResponse(bresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	jv := fval(t, jr)
	bv := fval(t, br)
	if math.Float64bits(jv) != math.Float64bits(bv) {
		t.Fatalf("dataset json %v != binary %v", jv, bv)
	}
}
