package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNilTraceIsFree(t *testing.T) {
	var tr *Trace
	sp := tr.Start("parse")
	if sp != nil {
		t.Fatalf("nil trace returned a live span")
	}
	sp.Set("k", 1) // must not panic
	sp.End()
	tr.Annotate("k", 2)
	if d := tr.Finish(); d != nil {
		t.Fatalf("nil trace finished to %v", d)
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("bare context carries a trace: %v", got)
	}
	if ctx := WithTrace(context.Background(), nil); FromContext(ctx) != nil {
		t.Fatalf("WithTrace(nil) installed a trace")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tr := FromContext(context.Background())
		sp := tr.Start("execute")
		tr.Annotate("cache", "hit")
		sp.Set("blocks", 4)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates %.1f per op, want 0", allocs)
	}
}

func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatalf("trace did not round-trip through the context")
	}
	p := tr.Start("parse")
	p.End()
	e := tr.Start("execute")
	s1 := tr.Start("eliminate")
	tr.Annotate("var", "z") // lands on the innermost open span (s1)
	s1.End()
	s2 := tr.Start("eliminate")
	s2.Set("blocks", 8)
	s2.End()
	e.End()
	data := tr.Finish()
	if data == nil || len(data.Spans) != 2 {
		t.Fatalf("want 2 top-level spans, got %+v", data)
	}
	if data.Spans[0].Name != "parse" || data.Spans[1].Name != "execute" {
		t.Fatalf("top-level spans out of order: %+v", data.Spans)
	}
	exec := data.Spans[1]
	if len(exec.Spans) != 2 {
		t.Fatalf("execute should have 2 children, got %+v", exec)
	}
	if exec.Spans[0].Attrs["var"] != "z" {
		t.Fatalf("Annotate missed the open span: %+v", exec.Spans[0])
	}
	if exec.Spans[1].Attrs["blocks"] != 8 {
		t.Fatalf("Set missed: %+v", exec.Spans[1])
	}
	if again := tr.Finish(); again != data {
		t.Fatalf("second Finish rebuilt the snapshot")
	}
	if _, err := json.Marshal(data); err != nil {
		t.Fatalf("trace data does not marshal: %v", err)
	}
}

func TestTraceRecordSpan(t *testing.T) {
	var nilTr *Trace
	nilTr.RecordSpan("item", time.Now(), time.Millisecond) // must not panic

	tr := NewTrace()
	e := tr.Start("execute")
	start := time.Now()
	tr.RecordSpan("item", start, 2*time.Millisecond, Attr{Key: "index", Val: 3})
	tr.RecordSpan("item", start.Add(-time.Hour), time.Millisecond) // pre-trace start clamps to 0
	e.End()
	data := tr.Finish()
	if len(data.Spans) != 1 || len(data.Spans[0].Spans) != 2 {
		t.Fatalf("recorded spans misplaced: %+v", data)
	}
	kids := data.Spans[0].Spans
	if kids[0].Name != "item" || kids[0].DurMS != 2 || kids[0].Attrs["index"] != 3 {
		t.Fatalf("recorded span lost its fields: %+v", kids[0])
	}
	if kids[1].StartMS != 0 {
		t.Fatalf("pre-trace start not clamped: %+v", kids[1])
	}
	tr2 := NewTrace()
	tr2.RecordSpan("item", time.Now(), time.Millisecond)
	if d := tr2.Finish(); len(d.Spans) != 1 {
		t.Fatalf("top-level recorded span lost: %+v", d)
	}
}

func TestTraceFinishClosesOpenSpans(t *testing.T) {
	tr := NewTrace()
	tr.Start("execute")
	tr.Start("eliminate")
	time.Sleep(time.Millisecond)
	data := tr.Finish()
	if len(data.Spans) != 1 || len(data.Spans[0].Spans) != 1 {
		t.Fatalf("open spans lost: %+v", data)
	}
	if data.Spans[0].DurMS <= 0 || data.Spans[0].Spans[0].DurMS <= 0 {
		t.Fatalf("open spans not closed with a duration: %+v", data)
	}
}

func TestRegistryExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests served.", Label{"endpoint", "query"})
	c.Add(41)
	c.Inc()
	r.CounterFunc("test_runs_total", "Runs.", func() float64 { return 7 })
	r.GaugeFunc("test_in_flight", "In flight.", func() float64 { return 3 })
	h := r.Histogram("test_latency_seconds", "Latency.", nil, Label{"stage", "execute"})
	h.Observe(700 * time.Microsecond) // le=0.001
	h.Observe(700 * time.Microsecond)
	h.Observe(20 * time.Second) // +Inf
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	text := buf.String()

	samples, err := ParsePromText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, text)
	}
	if got := samples[`test_requests_total{endpoint="query"}`]; got != 42 {
		t.Fatalf("counter sample = %v, want 42", got)
	}
	if got := samples[`test_runs_total`]; got != 7 {
		t.Fatalf("counterfunc sample = %v, want 7", got)
	}
	if got := samples[`test_in_flight`]; got != 3 {
		t.Fatalf("gauge sample = %v, want 3", got)
	}
	if got := samples[`test_latency_seconds_bucket{stage="execute",le="0.001"}`]; got != 2 {
		t.Fatalf("le=0.001 bucket = %v, want 2", got)
	}
	if got := samples[`test_latency_seconds_bucket{stage="execute",le="0.0005"}`]; got != 0 {
		t.Fatalf("le=0.0005 bucket = %v, want 0", got)
	}
	if got := samples[`test_latency_seconds_bucket{stage="execute",le="+Inf"}`]; got != 3 {
		t.Fatalf("+Inf bucket = %v, want 3 (cumulative)", got)
	}
	if got := samples[`test_latency_seconds_count{stage="execute"}`]; got != 3 {
		t.Fatalf("histogram count = %v, want 3", got)
	}
	if got := samples[`test_latency_seconds_sum{stage="execute"}`]; got < 20 || got > 21 {
		t.Fatalf("histogram sum = %v, want ~20.0014", got)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_esc_total", "Escaping.", Label{"shape", "a\"b\\c\nd"})
	c.Inc()
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	samples, err := ParsePromText(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("escaped exposition does not parse: %v\n%s", err, buf.String())
	}
	if len(samples) != 1 {
		t.Fatalf("want exactly one sample, got %v", samples)
	}
}

func TestParsePromTextRejectsGarbage(t *testing.T) {
	bad := []string{
		"9name 1\n",
		"name{unterminated=\"x 1\n",
		"name nope\n",
		"# TYPE name\n",
		"# TYPE name nonsense\n",
	}
	for _, text := range bad {
		if _, err := ParsePromText(strings.NewReader(text)); err == nil {
			t.Errorf("parser accepted %q", text)
		}
	}
}

func TestShapeTableBounds(t *testing.T) {
	tab := NewShapeTable(2)
	tab.Observe("a", time.Millisecond)
	tab.Observe("a", time.Millisecond)
	tab.Observe("b", time.Millisecond)
	tab.Observe("c", time.Millisecond) // beyond capacity -> overflow
	tab.Observe("c", time.Millisecond)
	rows, overflow := tab.TopK(10)
	if len(rows) != 2 {
		t.Fatalf("table grew past its bound: %+v", rows)
	}
	if rows[0].Key != "a" || rows[0].Count != 2 {
		t.Fatalf("top row wrong: %+v", rows)
	}
	if overflow != 2 {
		t.Fatalf("overflow = %d, want 2", overflow)
	}
	var buf bytes.Buffer
	tab.WritePrometheus(&buf, 10)
	samples, err := ParsePromText(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("shape exposition does not parse: %v\n%s", err, buf.String())
	}
	if got := samples[`faqd_shape_queries_total{shape="a"}`]; got != 2 {
		t.Fatalf("shape a count = %v, want 2", got)
	}
	if got := samples[`faqd_shape_overflow_total`]; got != 2 {
		t.Fatalf("overflow sample = %v, want 2", got)
	}
}

func TestSlowLogJSONLines(t *testing.T) {
	if nilLog := NewSlowLog(nil); nilLog != nil {
		t.Fatalf("nil writer should disable the log")
	}
	var nilLog *SlowLog
	nilLog.Log(&SlowQueryEntry{}) // must not panic
	if nilLog.Count() != 0 {
		t.Fatalf("nil log counted")
	}

	var buf bytes.Buffer
	l := NewSlowLog(&buf)
	l.Log(&SlowQueryEntry{Time: "t0", Endpoint: "query", Domain: "float", Shape: "n=3", Status: 200, WallMS: 1.5})
	l.Log(&SlowQueryEntry{Time: "t1", Endpoint: "delta", Status: 400, WallMS: 0.2})
	if l.Count() != 2 {
		t.Fatalf("count = %d, want 2", l.Count())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lines, got %q", buf.String())
	}
	var e SlowQueryEntry
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatalf("line 0 is not JSON: %v", err)
	}
	if e.Endpoint != "query" || e.Shape != "n=3" || e.WallMS != 1.5 {
		t.Fatalf("entry did not round-trip: %+v", e)
	}
}
