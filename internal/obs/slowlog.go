// SlowLog: the structured slow-query log.  Entries are JSON, one object
// per line, written under a mutex so concurrent handlers never interleave
// bytes; each entry carries the request's plan-shape key, domain, dataset
// and the stage-timing span tree, so a slow query explains where its time
// went without a debugger attached.
package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// SlowQueryEntry is one slow-query log line.
type SlowQueryEntry struct {
	// Time is the entry's wall-clock timestamp (RFC 3339, nanoseconds).
	Time string `json:"time"`
	// Endpoint names the request path family ("query", "delta", ...).
	Endpoint string `json:"endpoint"`
	// Domain is the spec's value domain, when known.
	Domain string `json:"domain,omitempty"`
	// Dataset is the resident dataset the spec used, when any.
	Dataset string `json:"dataset,omitempty"`
	// Shape is the plan-shape key (core.Shape.Key form), when known.
	Shape string `json:"shape,omitempty"`
	// Status is the HTTP status the request was answered with.
	Status int `json:"status"`
	// WallMS is the request's server-side wall time.
	WallMS float64 `json:"wall_ms"`
	// Trace is the stage-timing span tree.
	Trace *TraceData `json:"trace,omitempty"`
}

// SlowLog writes slow-query entries as JSON lines.  A nil *SlowLog is
// valid and drops everything, so callers log unconditionally.
type SlowLog struct {
	mu sync.Mutex
	w  io.Writer
	n  atomic.Int64
}

// NewSlowLog wraps w as a slow-query log; a nil writer returns a nil log
// (logging disabled).
func NewSlowLog(w io.Writer) *SlowLog {
	if w == nil {
		return nil
	}
	return &SlowLog{w: w}
}

// Log writes one entry as a JSON line.  Marshal failures are impossible
// for SlowQueryEntry's field types; write errors are deliberately
// swallowed — a full disk must not fail queries.
func (l *SlowLog) Log(e *SlowQueryEntry) {
	if l == nil {
		return
	}
	buf, err := json.Marshal(e)
	if err != nil {
		return
	}
	buf = append(buf, '\n')
	l.mu.Lock()
	l.w.Write(buf)
	l.mu.Unlock()
	l.n.Add(1)
}

// Count returns the number of entries logged, for the
// faqd_slow_queries_total counter.
func (l *SlowLog) Count() int64 {
	if l == nil {
		return 0
	}
	return l.n.Load()
}
