// A tiny Prometheus text-format parser: just enough to let tests and the
// obs-smoke gate assert that GET /metrics emits well-formed exposition
// without importing a client library.  It validates comment lines, metric
// name syntax, label-block quoting and sample values, and returns every
// sample keyed by its full series identity (name plus rendered labels).
package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PromSamples maps a series identity — `name{labels}` exactly as written
// — to its parsed value.
type PromSamples map[string]float64

// ParsePromText parses Prometheus text exposition, returning every sample
// or the first syntax error (with its line number).
func ParsePromText(r io.Reader) (PromSamples, error) {
	out := PromSamples{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := checkComment(line); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			continue
		}
		key, val, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		out[key] = val
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// checkComment validates a # HELP / # TYPE line.
func checkComment(line string) error {
	fields := strings.Fields(line)
	if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return fmt.Errorf("malformed comment %q (want # HELP/TYPE name ...)", line)
	}
	if !validMetricName(fields[2]) {
		return fmt.Errorf("invalid metric name %q", fields[2])
	}
	if fields[1] == "TYPE" {
		if len(fields) < 4 {
			return fmt.Errorf("TYPE line %q missing a type", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
	}
	return nil
}

// parseSample splits `name{labels} value` (labels optional) and validates
// each piece.
func parseSample(line string) (key string, val float64, err error) {
	var namePart, valPart string
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", 0, fmt.Errorf("unbalanced label braces in %q", line)
		}
		if err := checkLabels(line[i+1 : j]); err != nil {
			return "", 0, err
		}
		namePart = line[:i]
		key = line[:j+1]
		valPart = strings.TrimSpace(line[j+1:])
	} else {
		k := strings.IndexAny(line, " \t")
		if k < 0 {
			return "", 0, fmt.Errorf("sample %q has no value", line)
		}
		namePart = line[:k]
		key = namePart
		valPart = strings.TrimSpace(line[k:])
	}
	if !validMetricName(namePart) {
		return "", 0, fmt.Errorf("invalid metric name %q", namePart)
	}
	v, perr := strconv.ParseFloat(valPart, 64)
	if perr != nil {
		return "", 0, fmt.Errorf("bad sample value %q: %v", valPart, perr)
	}
	return key, v, nil
}

// checkLabels validates the inside of a label block: name="value" pairs,
// comma-separated, quotes balanced with backslash escapes.
func checkLabels(s string) error {
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Errorf("label %q missing =", s)
		}
		name := s[:eq]
		if !validLabelName(name) {
			return fmt.Errorf("invalid label name %q", name)
		}
		rest := s[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return fmt.Errorf("label %s value not quoted", name)
		}
		// Scan the quoted value honoring backslash escapes.
		i := 1
		for i < len(rest) {
			if rest[i] == '\\' {
				i += 2
				continue
			}
			if rest[i] == '"' {
				break
			}
			i++
		}
		if i >= len(rest) {
			return fmt.Errorf("label %s value unterminated", name)
		}
		s = rest[i+1:]
		if len(s) > 0 {
			if s[0] != ',' {
				return fmt.Errorf("labels not comma-separated at %q", s)
			}
			s = s[1:]
		}
	}
	return nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}
