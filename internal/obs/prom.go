// Hand-rolled Prometheus text exposition (format version 0.0.4): counter,
// gauge and fixed-bucket histogram families with pre-rendered label sets,
// registered once and written on every scrape.  No client_golang — the
// daemon's metric surface is small and fixed, and the exposition format is
// a few dozen lines of code.
package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency histogram bucket upper bounds in
// seconds: half-millisecond resolution at the fast end (a warm cache-hit
// query is under a millisecond of engine time), stretching to 10 s so a
// planner-bound cold shape still lands in a finite bucket.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Label is one metric label pair; values are escaped at registration.
type Label struct {
	Name  string
	Value string
}

// Registry is an ordered collection of metric families, written as
// Prometheus text by WritePrometheus.  Register every series up front
// (registration takes a lock); Observe/Add on the returned handles are
// lock-free.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// family is one metric name: HELP/TYPE plus its label-distinct series.
type family struct {
	name, help, typ string
	series          []*series
}

// series is one labeled sample source within a family.
type series struct {
	labels string // pre-rendered {k="v",...} or ""
	ctr    *Counter
	fn     func() float64
	hist   *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

func (r *Registry) register(name, help, typ string, s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.byName[name] = f
		r.fams = append(r.fams, f)
	}
	f.series = append(f.series, s)
}

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Counter registers (or extends) a counter family and returns the handle
// for the given label set.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", &series{labels: renderLabels(labels), ctr: c})
	return c
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for counters that already live elsewhere as atomics
// (the /statsz fields), so exposition never double-counts.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, "counter", &series{labels: renderLabels(labels), fn: fn})
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, "gauge", &series{labels: renderLabels(labels), fn: fn})
}

// Histogram is a fixed-bucket latency histogram: per-bucket atomic
// counts (non-cumulative internally; exposition accumulates), an atomic
// nanosecond sum and a total count.  Observe is lock-free.
type Histogram struct {
	bounds []float64 // upper bounds in seconds, ascending
	counts []atomic.Int64
	sumNS  atomic.Int64
	count  atomic.Int64
}

// Histogram registers (or extends) a histogram family with the given
// bucket upper bounds in seconds (nil means DefBuckets) and returns the
// handle for the given label set.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	h := &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	r.register(name, help, "histogram", &series{labels: renderLabels(labels), hist: h})
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	sec := d.Seconds()
	i := 0
	for ; i < len(h.bounds); i++ {
		if sec <= h.bounds[i] {
			break
		}
	}
	h.counts[i].Add(1) // i == len(bounds) is the +Inf bucket
	h.sumNS.Add(int64(d))
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// WritePrometheus writes every registered family in the Prometheus text
// exposition format, families in registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			switch {
			case s.ctr != nil:
				writeSample(w, f.name, s.labels, float64(s.ctr.Value()))
			case s.fn != nil:
				writeSample(w, f.name, s.labels, s.fn())
			case s.hist != nil:
				writeHistogram(w, f.name, s.labels, s.hist)
			}
		}
	}
}

func writeHistogram(w io.Writer, name, labels string, h *Histogram) {
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		writeSample(w, name+"_bucket", mergeLabels(labels, "le", formatBound(b)), float64(cum))
	}
	cum += h.counts[len(h.bounds)].Load()
	writeSample(w, name+"_bucket", mergeLabels(labels, "le", "+Inf"), float64(cum))
	writeSample(w, name+"_sum", labels, float64(h.sumNS.Load())/1e9)
	writeSample(w, name+"_count", labels, float64(h.count.Load()))
}

func writeSample(w io.Writer, name, labels string, v float64) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, strconv.FormatFloat(v, 'g', -1, 64))
}

// formatBound renders a bucket bound the way Prometheus clients do
// (shortest float form, no exponent for the usual latency range).
func formatBound(b float64) string { return strconv.FormatFloat(b, 'g', -1, 64) }

// renderLabels pre-renders a label set as {k="v",...} with Prometheus
// escaping; an empty set renders as "".
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(EscapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLabels inserts one extra label pair into a pre-rendered label set
// (used for histogram "le" labels).
func mergeLabels(labels, name, value string) string {
	extra := name + `="` + EscapeLabelValue(value) + `"`
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// EscapeLabelValue escapes a label value per the exposition format:
// backslash, double quote and newline.
func EscapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
