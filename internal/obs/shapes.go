// ShapeTable: the bounded per-plan-shape-key aggregation behind the
// faqd_shape_* metrics.  Shape keys are client-controlled (every distinct
// spec skeleton makes one), so the table is capacity-bounded: the first
// MaxShapes distinct keys get their own series and everything beyond is
// folded into one overflow counter, keeping /metrics label cardinality
// fixed no matter what traffic arrives.
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// DefaultMaxShapes is the shape-table capacity when NewShapeTable is
// given a non-positive bound.
const DefaultMaxShapes = 64

// ShapeTable aggregates query count and total latency per plan-shape key,
// bounded to a fixed number of distinct keys.
type ShapeTable struct {
	mu       sync.Mutex
	max      int
	entries  map[string]*shapeEntry
	overflow shapeEntry // everything beyond the first max distinct keys
}

type shapeEntry struct {
	count int64
	sumNS int64
}

// ShapeCount is one row of the table snapshot.
type ShapeCount struct {
	// Key is the plan-shape key (core.Shape.Key form).
	Key string
	// Count is the number of observed queries of this shape.
	Count int64
	// SumSeconds is the total observed latency.
	SumSeconds float64
}

// NewShapeTable returns a table bounded to max distinct shape keys
// (non-positive means DefaultMaxShapes).
func NewShapeTable(max int) *ShapeTable {
	if max <= 0 {
		max = DefaultMaxShapes
	}
	return &ShapeTable{max: max, entries: map[string]*shapeEntry{}}
}

// Observe records one query of the given shape key.
func (t *ShapeTable) Observe(key string, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[key]
	if !ok {
		if len(t.entries) >= t.max {
			t.overflow.count++
			t.overflow.sumNS += int64(d)
			return
		}
		e = &shapeEntry{}
		t.entries[key] = e
	}
	e.count++
	e.sumNS += int64(d)
}

// TopK returns the k highest-count shapes, descending by count (ties by
// key so the order is deterministic), plus the overflow row count.
func (t *ShapeTable) TopK(k int) (rows []ShapeCount, overflow int64) {
	t.mu.Lock()
	rows = make([]ShapeCount, 0, len(t.entries))
	for key, e := range t.entries {
		rows = append(rows, ShapeCount{Key: key, Count: e.count, SumSeconds: float64(e.sumNS) / 1e9})
	}
	overflow = t.overflow.count
	t.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		return rows[i].Key < rows[j].Key
	})
	if k > 0 && len(rows) > k {
		rows = rows[:k]
	}
	return rows, overflow
}

// WritePrometheus writes the top-k table as three counter families:
// faqd_shape_queries_total and faqd_shape_seconds_total labeled by shape
// key, plus faqd_shape_overflow_total for observations beyond capacity.
func (t *ShapeTable) WritePrometheus(w io.Writer, k int) {
	rows, overflow := t.TopK(k)
	fmt.Fprintf(w, "# HELP faqd_shape_queries_total Executed queries per plan-shape key (top %d by count; capacity-bounded).\n", k)
	fmt.Fprintf(w, "# TYPE faqd_shape_queries_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(w, "faqd_shape_queries_total{shape=\"%s\"} %d\n", EscapeLabelValue(r.Key), r.Count)
	}
	fmt.Fprintf(w, "# HELP faqd_shape_seconds_total Total query latency per plan-shape key.\n")
	fmt.Fprintf(w, "# TYPE faqd_shape_seconds_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(w, "faqd_shape_seconds_total{shape=\"%s\"} %g\n", EscapeLabelValue(r.Key), r.SumSeconds)
	}
	fmt.Fprintf(w, "# HELP faqd_shape_overflow_total Queries whose shape fell beyond the table's capacity.\n")
	fmt.Fprintf(w, "# TYPE faqd_shape_overflow_total counter\n")
	fmt.Fprintf(w, "faqd_shape_overflow_total %d\n", overflow)
}
