// Package obs is faqd's zero-dependency observability layer: request
// stage tracing (Trace / Span, carried on the context), hand-rolled
// Prometheus text exposition (Registry, Counter, Histogram — no
// client_golang), a bounded per-plan-shape aggregation table (ShapeTable)
// and a structured slow-query log (SlowLog).
//
// The tracing half is built to cost nothing when disabled: FromContext on
// a context without a trace returns a nil *Trace, and every method of
// *Trace and *Span is a no-op on a nil receiver, so instrumented code
// calls them unconditionally without branching or allocating.  A serving
// path that never enables tracing therefore pays one context lookup per
// request and zero allocations.
package obs

import (
	"context"
	"sync"
	"time"
)

// traceKey is the context key a Trace travels under.
type traceKey struct{}

// WithTrace returns a context carrying tr.  A nil tr returns ctx
// unchanged, so callers can thread an optional trace without branching.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, tr)
}

// FromContext returns the context's trace, or nil when tracing is
// disabled for this request.  The nil result is usable: every Trace and
// Span method no-ops on it.
func FromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}

// Trace records a tree of timed spans for one request.  Spans are opened
// with Start and closed with End; Start nests the new span under the
// innermost still-open one, which matches the strictly sequential stage
// structure of a request (parse → resolve → prepare → execute → encode,
// with per-elimination-step children under execute).  All methods are
// safe for concurrent use and no-ops on a nil receiver.
type Trace struct {
	mu    sync.Mutex
	t0    time.Time
	roots []*Span
	stack []*Span // open spans, innermost last
	data  *TraceData
}

// NewTrace starts a trace whose clock begins now.
func NewTrace() *Trace { return &Trace{t0: time.Now()} }

// Span is one timed interval of a trace, with optional key/value
// attributes and child spans.  Spans are created by Trace.Start and
// closed by End; all methods are no-ops on a nil receiver.
type Span struct {
	tr    *Trace
	name  string
	start time.Duration // offset from the trace's start
	dur   time.Duration // zero until End
	attrs []Attr
	kids  []*Span
}

// Attr is one span attribute.  Values should be strings or numbers so
// the trace marshals cleanly.
type Attr struct {
	Key string
	Val any
}

// Start opens a span named name under the innermost open span (or at the
// top level) and returns it.  On a nil trace it returns a nil span, so
// disabled tracing allocates nothing.
func (t *Trace) Start(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := &Span{tr: t, name: name, start: time.Since(t.t0)}
	if n := len(t.stack); n > 0 {
		parent := t.stack[n-1]
		parent.kids = append(parent.kids, sp)
	} else {
		t.roots = append(t.roots, sp)
	}
	t.stack = append(t.stack, sp)
	return sp
}

// Annotate attaches an attribute to the innermost open span; it is how a
// lower layer (the engine's plan cache, say) tags the stage span its
// caller opened without needing a handle on it.  No-op on a nil trace or
// when no span is open.
func (t *Trace) Annotate(key string, val any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := len(t.stack); n > 0 {
		sp := t.stack[n-1]
		sp.attrs = append(sp.attrs, Attr{Key: key, Val: val})
	}
}

// RecordSpan appends an already-completed span under the innermost open
// span (or at the top level when none is open).  Start/End nesting
// assumes strictly sequential stages, so concurrent work — the pipelined
// items of a batch — times itself and is recorded retroactively from a
// serialized completion callback instead.  start is placed on the
// trace's clock; a start before the trace began is clamped to offset
// zero.  No-op on a nil trace.
func (t *Trace) RecordSpan(name string, start time.Time, dur time.Duration, attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	off := start.Sub(t.t0)
	if off < 0 {
		off = 0
	}
	sp := &Span{tr: t, name: name, start: off, dur: dur, attrs: attrs}
	if n := len(t.stack); n > 0 {
		parent := t.stack[n-1]
		parent.kids = append(parent.kids, sp)
	} else {
		t.roots = append(t.roots, sp)
	}
}

// End closes the span.  Well-nested use closes children before parents;
// defensively, ending a span also ends any still-open spans nested inside
// it.  No-op on a nil span or a span already ended.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Since(t.t0)
	for n := len(t.stack); n > 0; n-- {
		open := t.stack[n-1]
		if open.dur == 0 {
			open.dur = now - open.start
		}
		if open == s {
			t.stack = t.stack[:n-1]
			return
		}
	}
	// s was not on the stack (already ended): leave the stack alone.
	if s.dur == 0 {
		s.dur = now - s.start
	}
}

// Set attaches an attribute to the span.  No-op on a nil span.
func (s *Span) Set(key string, val any) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Val: val})
	s.tr.mu.Unlock()
}

// TraceData is the marshal-ready snapshot of a finished trace: the span
// tree with millisecond timings, the shape /v1/query returns under
// "trace" and the slow-query log embeds.
type TraceData struct {
	// DurMS is the wall time from the trace's start to Finish.
	DurMS float64 `json:"dur_ms"`
	// Spans are the top-level stage spans in start order.
	Spans []SpanData `json:"spans"`
}

// SpanData is one marshal-ready span.
type SpanData struct {
	// Name is the span name (a stage or step label).
	Name string `json:"name"`
	// StartMS is the span's start offset from the trace start.
	StartMS float64 `json:"start_ms"`
	// DurMS is the span's duration.
	DurMS float64 `json:"dur_ms"`
	// Attrs are the span's attributes, if any.
	Attrs map[string]any `json:"attrs,omitempty"`
	// Spans are the child spans, if any.
	Spans []SpanData `json:"spans,omitempty"`
}

// Finish closes any still-open spans and returns the snapshot.  The first
// call freezes the trace; later calls return the same snapshot.  Nil
// receiver returns nil.
func (t *Trace) Finish() *TraceData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.data != nil {
		return t.data
	}
	now := time.Since(t.t0)
	for _, sp := range t.stack {
		if sp.dur == 0 {
			sp.dur = now - sp.start
		}
	}
	t.stack = nil
	out := &TraceData{DurMS: durMS(now), Spans: spanData(t.roots)}
	t.data = out
	return out
}

func spanData(spans []*Span) []SpanData {
	if len(spans) == 0 {
		return nil
	}
	out := make([]SpanData, len(spans))
	for i, sp := range spans {
		d := SpanData{Name: sp.name, StartMS: durMS(sp.start), DurMS: durMS(sp.dur)}
		if len(sp.attrs) > 0 {
			d.Attrs = make(map[string]any, len(sp.attrs))
			for _, a := range sp.attrs {
				d.Attrs[a.Key] = a.Val
			}
		}
		d.Spans = spanData(sp.kids)
		out[i] = d
	}
	return out
}

func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
