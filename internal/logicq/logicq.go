// Package logicq implements the logic-side reductions of the paper
// (Examples 1.3, A.3, A.5, A.20 and Table 1 rows 1–3): Boolean conjunctive
// queries, conjunctive query evaluation, counting CQs (#CQ), quantified
// conjunctive queries (QCQ) and counting quantified conjunctive queries
// (#QCQ), all compiled to FAQ instances over {0,1}-valued factors and solved
// by InsideOut.  Naive enumeration baselines are provided for every problem.
package logicq

import (
	"context"
	"fmt"

	"github.com/faqdb/faq/internal/core"
	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/semiring"
)

// Relation is a set of tuples over a fixed arity; attribute values are
// small non-negative ints.
type Relation struct {
	Name   string
	Arity  int
	Tuples [][]int
}

// Add appends a tuple (no dedup; duplicates are deduped at compile time).
func (r *Relation) Add(tuple ...int) {
	if len(tuple) != r.Arity {
		panic(fmt.Sprintf("logicq: tuple %v has arity %d, want %d", tuple, len(tuple), r.Arity))
	}
	r.Tuples = append(r.Tuples, append([]int(nil), tuple...))
}

// Atom applies a relation to query variables, e.g. R(x2, x0).
// Repeated variables (R(x, x)) are allowed.
type Atom struct {
	Rel  *Relation
	Vars []int
}

// Quantifier marks a bound variable of a quantified query.
type Quantifier int

const (
	// Exists is ∃ (compiled to the max/∨ aggregate).
	Exists Quantifier = iota
	// ForAll is ∀ (compiled to the product aggregate).
	ForAll
)

func (q Quantifier) String() string {
	if q == ForAll {
		return "∀"
	}
	return "∃"
}

// Query is a (quantified) conjunctive query
//
//	Φ(x_0, ..., x_{f-1}) = Q_f x_f ... Q_{n-1} x_{n-1} ⋀ atoms
//
// over variables 0..NumVars-1 with the first NumFree free; Quants lists the
// quantifiers of the bound variables in prefix order.
type Query struct {
	NumVars  int
	NumFree  int
	DomSizes []int
	Quants   []Quantifier // length NumVars-NumFree
	Atoms    []Atom
}

// Validate checks the query's structure.
func (q *Query) Validate() error {
	if len(q.DomSizes) != q.NumVars {
		return fmt.Errorf("logicq: %d domain sizes for %d variables", len(q.DomSizes), q.NumVars)
	}
	if len(q.Quants) != q.NumVars-q.NumFree {
		return fmt.Errorf("logicq: %d quantifiers for %d bound variables", len(q.Quants), q.NumVars-q.NumFree)
	}
	for _, a := range q.Atoms {
		if len(a.Vars) != a.Rel.Arity {
			return fmt.Errorf("logicq: atom %s%v does not match arity %d", a.Rel.Name, a.Vars, a.Rel.Arity)
		}
		for _, v := range a.Vars {
			if v < 0 || v >= q.NumVars {
				return fmt.Errorf("logicq: atom %s mentions unknown variable %d", a.Rel.Name, v)
			}
		}
	}
	return nil
}

// atomFactor compiles an atom into a {0,1}-valued indicator factor over the
// atom's distinct variables; repeated variables become equality selections.
func atomFactor[V any](d *semiring.Domain[V], a Atom, domSizes []int) (*factor.Factor[V], error) {
	positions := map[int][]int{} // variable -> positions in the atom
	var vars []int
	for i, v := range a.Vars {
		if _, seen := positions[v]; !seen {
			vars = append(vars, v)
		}
		positions[v] = append(positions[v], i)
	}
	sortInts(vars)
	var tuples [][]int
	var values []V
	for _, t := range a.Rel.Tuples {
		ok := true
		row := make([]int, len(vars))
		for i, v := range vars {
			ps := positions[v]
			row[i] = t[ps[0]]
			for _, p := range ps[1:] {
				if t[p] != t[ps[0]] {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
			if row[i] < 0 || row[i] >= domSizes[v] {
				return nil, fmt.Errorf("logicq: relation %s value %d exceeds domain of variable %d",
					a.Rel.Name, row[i], v)
			}
		}
		if ok {
			tuples = append(tuples, row)
			values = append(values, d.One)
		}
	}
	return factor.New(d, vars, tuples, values, func(x, y V) V { return x })
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// ---------------------------------------------------------------------------
// Compilations to FAQ.
// ---------------------------------------------------------------------------

// compile builds a core.Query over the given domain with per-bound-variable
// aggregates produced by agg.
func compile[V any](q *Query, d *semiring.Domain[V],
	agg func(qu Quantifier) core.Aggregate[V]) (*core.Query[V], error) {

	if err := q.Validate(); err != nil {
		return nil, err
	}
	cq := &core.Query[V]{
		D:                d,
		NVars:            q.NumVars,
		DomSizes:         append([]int(nil), q.DomSizes...),
		NumFree:          q.NumFree,
		Aggs:             make([]core.Aggregate[V], q.NumVars),
		IdempotentInputs: true, // all factors are {0,1}-valued
	}
	for i := 0; i < q.NumVars; i++ {
		if i < q.NumFree {
			cq.Aggs[i] = core.Free[V]()
		} else {
			cq.Aggs[i] = agg(q.Quants[i-q.NumFree])
		}
	}
	for _, a := range q.Atoms {
		f, err := atomFactor(d, a, q.DomSizes)
		if err != nil {
			return nil, err
		}
		cq.Factors = append(cq.Factors, f)
	}
	return cq, nil
}

// CompileQCQ compiles Φ to a Boolean FAQ: ∃ becomes ∨ and ∀ becomes ∧ (the
// product of the Boolean semiring).  Table 1, row QCQ.
func CompileQCQ(q *Query) (*core.Query[bool], error) {
	return compile(q, semiring.Bool(), func(qu Quantifier) core.Aggregate[bool] {
		if qu == ForAll {
			return core.ProductAgg[bool]()
		}
		return core.SemiringAgg(semiring.OpOr())
	})
}

// CompileSharpQCQ compiles #QCQ (Example 1.3): count the free-variable
// tuples satisfying Φ.  The query is rewritten with no free variables —
// the former free variables get Σ aggregates over D = N, ∃ becomes max and
// ∀ becomes ×.  Table 1, row #QCQ.
func CompileSharpQCQ(q *Query) (*core.Query[int64], error) {
	cq, err := compile(q, semiring.Int(), func(qu Quantifier) core.Aggregate[int64] {
		if qu == ForAll {
			return core.ProductAgg[int64]()
		}
		return core.SemiringAgg(semiring.OpIntMax())
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < cq.NumFree; i++ {
		cq.Aggs[i] = core.SemiringAgg(semiring.OpIntSum())
	}
	cq.NumFree = 0
	return cq, nil
}

// SolveQCQ evaluates a quantified conjunctive query: for NumFree = 0 the
// Boolean answer, otherwise the listing of free-variable tuples satisfying
// Φ.  The variable ordering is chosen by the planner.
func SolveQCQ(q *Query) (*factor.Factor[bool], error) {
	cq, err := CompileQCQ(q)
	if err != nil {
		return nil, err
	}
	// Prepared on the shared default engine: a sweep of shape-identical
	// queries (examples/logic) plans once and hits the plan LRU thereafter.
	prep, err := core.DefaultEngine[bool]().Prepare(cq)
	if err != nil {
		return nil, err
	}
	res, err := prep.Run(context.Background())
	if err != nil {
		return nil, err
	}
	return res.Output, nil
}

// CountQCQ solves #QCQ: the number of free-variable assignments satisfying
// the quantified query.
func CountQCQ(q *Query) (int64, error) {
	cq, err := CompileSharpQCQ(q)
	if err != nil {
		return 0, err
	}
	prep, err := core.DefaultEngine[int64]().Prepare(cq)
	if err != nil {
		return 0, err
	}
	res, err := prep.Run(context.Background())
	if err != nil {
		return 0, err
	}
	return res.Scalar(), nil
}

// CountCQ solves #CQ (Table 1 row 3): the number of free-variable tuples
// with an extension satisfying all atoms; all bound variables are ∃.
func CountCQ(q *Query) (int64, error) {
	for _, qu := range q.Quants {
		if qu != Exists {
			return 0, fmt.Errorf("logicq: #CQ requires all bound quantifiers to be ∃")
		}
	}
	return CountQCQ(q)
}

// EvalCQ evaluates a conjunctive query (Example A.5): the listing of free
// variable tuples.  All bound variables must be ∃.
func EvalCQ(q *Query) (*factor.Factor[bool], error) {
	for _, qu := range q.Quants {
		if qu != Exists {
			return nil, fmt.Errorf("logicq: CQ evaluation requires all bound quantifiers to be ∃")
		}
	}
	return SolveQCQ(q)
}

// BoolCQ answers a Boolean conjunctive query (Example A.3): all variables
// bound by ∃.
func BoolCQ(q *Query) (bool, error) {
	if q.NumFree != 0 {
		return false, fmt.Errorf("logicq: BCQ has no free variables")
	}
	out, err := SolveQCQ(q)
	if err != nil {
		return false, err
	}
	return out.Size() > 0, nil
}

// ---------------------------------------------------------------------------
// Naive baselines (Table 1 "previous algorithm" column for #QCQ: no
// non-trivial algorithm, i.e. enumeration).
// ---------------------------------------------------------------------------

// NaiveCount evaluates #QCQ by enumerating all assignments; exponential.
func NaiveCount(q *Query) (int64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	assignment := make([]int, q.NumVars)
	var evalBound func(i int) bool
	evalBound = func(i int) bool {
		if i == q.NumVars {
			return satisfiesAll(q, assignment)
		}
		qu := q.Quants[i-q.NumFree]
		for x := 0; x < q.DomSizes[i]; x++ {
			assignment[i] = x
			v := evalBound(i + 1)
			if qu == Exists && v {
				return true
			}
			if qu == ForAll && !v {
				return false
			}
		}
		return qu == ForAll
	}
	var count int64
	var rec func(i int)
	rec = func(i int) {
		if i == q.NumFree {
			if evalBound(q.NumFree) {
				count++
			}
			return
		}
		for x := 0; x < q.DomSizes[i]; x++ {
			assignment[i] = x
			rec(i + 1)
		}
	}
	rec(0)
	return count, nil
}

// NaiveBool evaluates a sentence (NumFree = 0) by enumeration.
func NaiveBool(q *Query) (bool, error) {
	n, err := NaiveCount(q)
	return n > 0, err
}

func satisfiesAll(q *Query, assignment []int) bool {
	for _, a := range q.Atoms {
		found := false
		for _, t := range a.Rel.Tuples {
			match := true
			for i, v := range a.Vars {
				if t[i] != assignment[v] {
					match = false
					break
				}
			}
			if match {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// ChenDalmau builds the Section 7.2.1 family
// Φ = ∀X_0 ... ∀X_{n-1} ∃X_n (S(X_0,...,X_{n-1}) ∧ ⋀_i R(X_i, X_n))
// over the given relations.
func ChenDalmau(n int, s, r *Relation, dom int) *Query {
	q := &Query{
		NumVars:  n + 1,
		NumFree:  0,
		DomSizes: make([]int, n+1),
	}
	var sVars []int
	for i := 0; i <= n; i++ {
		q.DomSizes[i] = dom
	}
	for i := 0; i < n; i++ {
		q.Quants = append(q.Quants, ForAll)
		sVars = append(sVars, i)
	}
	q.Quants = append(q.Quants, Exists)
	q.Atoms = append(q.Atoms, Atom{Rel: s, Vars: sVars})
	for i := 0; i < n; i++ {
		q.Atoms = append(q.Atoms, Atom{Rel: r, Vars: []int{i, n}})
	}
	return q
}
