package logicq

import (
	"math/rand"
	"testing"
)

// pathQuery builds Φ(x0) = Q1 x1 Q2 x2 (R(x0,x1) ∧ S(x1,x2)) over dom.
func pathQuery(r, s *Relation, dom, numFree int, quants ...Quantifier) *Query {
	return &Query{
		NumVars:  3,
		NumFree:  numFree,
		DomSizes: []int{dom, dom, dom},
		Quants:   quants,
		Atoms: []Atom{
			{Rel: r, Vars: []int{0, 1}},
			{Rel: s, Vars: []int{1, 2}},
		},
	}
}

func randomRelation(rng *rand.Rand, name string, arity, dom, size int) *Relation {
	r := &Relation{Name: name, Arity: arity}
	for i := 0; i < size; i++ {
		t := make([]int, arity)
		for j := range t {
			t[j] = rng.Intn(dom)
		}
		r.Add(t...)
	}
	return r
}

func TestBoolCQ(t *testing.T) {
	r := &Relation{Name: "R", Arity: 2}
	r.Add(0, 1)
	s := &Relation{Name: "S", Arity: 2}
	s.Add(1, 0)
	q := pathQuery(r, s, 2, 0, Exists, Exists, Exists)
	q.Quants = []Quantifier{Exists, Exists, Exists}
	got, err := BoolCQ(q)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("R(0,1), S(1,0) satisfies the path query")
	}
	// Remove the join partner.
	s.Tuples = [][]int{{0, 0}}
	got, err = BoolCQ(q)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("no joining tuple exists")
	}
}

func TestEvalCQListsAnswers(t *testing.T) {
	r := &Relation{Name: "R", Arity: 2}
	r.Add(0, 1)
	r.Add(1, 1)
	s := &Relation{Name: "S", Arity: 2}
	s.Add(1, 0)
	q := pathQuery(r, s, 2, 1, Exists, Exists)
	out, err := EvalCQ(q)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 2 {
		t.Fatalf("answers = %d, want 2 (x0 ∈ {0,1})", out.Size())
	}
}

func TestCountCQ(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		dom := 2 + rng.Intn(3)
		r := randomRelation(rng, "R", 2, dom, 1+rng.Intn(6))
		s := randomRelation(rng, "S", 2, dom, 1+rng.Intn(6))
		q := pathQuery(r, s, dom, 1, Exists, Exists)
		got, err := CountCQ(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := NaiveCount(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: #CQ = %d, naive %d", trial, got, want)
		}
	}
}

func TestCountCQRejectsForAll(t *testing.T) {
	r := &Relation{Name: "R", Arity: 2}
	q := pathQuery(r, r, 2, 1, ForAll, Exists)
	if _, err := CountCQ(q); err == nil {
		t.Fatal("#CQ with ∀ should be rejected")
	}
}

func TestQCQAlternation(t *testing.T) {
	// Φ = ∀x0 ∃x1 R(x0, x1): true iff every domain value has an R-successor.
	r := &Relation{Name: "R", Arity: 2}
	r.Add(0, 1)
	r.Add(1, 0)
	q := &Query{
		NumVars: 2, NumFree: 0, DomSizes: []int{2, 2},
		Quants: []Quantifier{ForAll, Exists},
		Atoms:  []Atom{{Rel: r, Vars: []int{0, 1}}},
	}
	out, err := SolveQCQ(q)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() == 0 {
		t.Fatal("∀∃ should hold")
	}
	r.Tuples = [][]int{{0, 1}} // value 1 now has no successor
	out, err = SolveQCQ(q)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 0 {
		t.Fatal("∀∃ should fail")
	}
}

func TestRepeatedVariableAtom(t *testing.T) {
	// Φ = ∃x0 R(x0, x0): diagonal membership.
	r := &Relation{Name: "R", Arity: 2}
	r.Add(0, 1)
	r.Add(1, 1)
	q := &Query{
		NumVars: 1, NumFree: 0, DomSizes: []int{2},
		Quants: []Quantifier{Exists},
		Atoms:  []Atom{{Rel: r, Vars: []int{0, 0}}},
	}
	got, err := BoolCQ(q)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("R(1,1) witnesses the diagonal")
	}
}

// Property: #QCQ via InsideOut equals naive enumeration on random quantified
// queries with mixed prefixes.
func TestQuickSharpQCQMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		nv := 2 + rng.Intn(3)
		nf := rng.Intn(nv)
		dom := 2 + rng.Intn(2)
		doms := make([]int, nv)
		for i := range doms {
			doms[i] = dom
		}
		q := &Query{NumVars: nv, NumFree: nf, DomSizes: doms}
		for i := nf; i < nv; i++ {
			if rng.Intn(2) == 0 {
				q.Quants = append(q.Quants, Exists)
			} else {
				q.Quants = append(q.Quants, ForAll)
			}
		}
		// Random binary atoms covering all variables.
		covered := make([]bool, nv)
		for len(q.Atoms) < 2 || !allCovered(covered) {
			a, b := rng.Intn(nv), rng.Intn(nv)
			rel := randomRelation(rng, "R", 2, dom, 1+rng.Intn(dom*dom))
			q.Atoms = append(q.Atoms, Atom{Rel: rel, Vars: []int{a, b}})
			covered[a], covered[b] = true, true
		}
		got, err := CountQCQ(q)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, err := NaiveCount(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: #QCQ = %d, naive = %d (quants %v)", trial, got, want, q.Quants)
		}
	}
}

func allCovered(bs []bool) bool {
	for _, b := range bs {
		if !b {
			return false
		}
	}
	return true
}

// TestChenDalmauSemantics checks the Section 7.2.1 family end to end: with R
// the complete relation the sentence holds; removing every successor of one
// tuple breaks it.
func TestChenDalmauSemantics(t *testing.T) {
	n, dom := 3, 2
	s := &Relation{Name: "S", Arity: n}
	var fill func(t []int)
	fill = func(tu []int) {
		if len(tu) == n {
			s.Add(tu...)
			return
		}
		for v := 0; v < dom; v++ {
			fill(append(tu, v))
		}
	}
	fill(nil)
	r := &Relation{Name: "R", Arity: 2}
	for a := 0; a < dom; a++ {
		r.Add(a, 0)
	}
	q := ChenDalmau(n, s, r, dom)
	got, err := NaiveBool(q)
	if err != nil {
		t.Fatal(err)
	}
	out, err := SolveQCQ(q)
	if err != nil {
		t.Fatal(err)
	}
	if (out.Size() > 0) != got {
		t.Fatalf("InsideOut %v, naive %v", out.Size() > 0, got)
	}
	if !got {
		t.Fatal("complete S and total R should satisfy the sentence")
	}
	// Break totality of R for value 1.
	r.Tuples = [][]int{{0, 0}}
	out, err = SolveQCQ(q)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := NaiveBool(q)
	if (out.Size() > 0) != want {
		t.Fatalf("after breaking R: InsideOut %v, naive %v", out.Size() > 0, want)
	}
}

func TestValidationErrors(t *testing.T) {
	r := &Relation{Name: "R", Arity: 2}
	q := &Query{NumVars: 2, NumFree: 0, DomSizes: []int{2},
		Quants: []Quantifier{Exists, Exists},
		Atoms:  []Atom{{Rel: r, Vars: []int{0, 1}}}}
	if err := q.Validate(); err == nil {
		t.Fatal("domain size mismatch should fail")
	}
	q.DomSizes = []int{2, 2}
	q.Atoms[0].Vars = []int{0}
	if err := q.Validate(); err == nil {
		t.Fatal("arity mismatch should fail")
	}
	q.Atoms[0].Vars = []int{0, 7}
	if err := q.Validate(); err == nil {
		t.Fatal("unknown variable should fail")
	}
}
