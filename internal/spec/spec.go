// Package spec parses a small text format describing FAQ queries, used by
// cmd/faqrun, cmd/faqplan and the faqd serving daemon.
//
// Format (line oriented, '#' starts a comment):
//
//	domain <name>                  # optional, first; float (default),
//	                               # int, bool or tropical
//	use <dataset>                  # optional: name a server-resident dataset
//	var <name> <domSize> <agg>     # agg ∈ free | prod | <domain aggregate>
//	factor <name> <name> ...       # starts a factor block over those vars
//	<v1> <v2> ... = <value>        # one listed tuple per line
//	end                            # closes the factor block
//	factor <name> <name> ... @<i>  # whole block: factor i of the used
//	                               # dataset, columns in declaration order
//
// The domain directive selects the value algebra of the whole query and
// with it the lawful aggregates and the value syntax:
//
//	domain    values               aggregates (besides free, prod)
//	float     float64 literals     sum, max
//	int       int64 literals       sum, max
//	bool      true/false or 1/0    or
//	tropical  float64 literals     min        (the (min, +) semiring)
//
// "min" over the float domain is rejected with an explanatory error:
// min-product over the reals is not a lawful FAQ semiring (the shared
// additive identity is 0 and min(x, 0) ≠ x); lawful min-product is the
// tropical domain, where ⊗ is + and the additive identity is +∞.
//
// Variables must be declared with all free variables first (the FAQ normal
// form of Eq. (1)); factors may list variables in any order.
//
// A factor line ending in @<ref> declares no inline data: its rows come
// from the named dataset's factor <ref> (server-resident, zero factor
// bytes on the wire), with stored columns interpreted in the block's
// declaration order exactly like shipped factor frames.  Such references
// require a preceding use directive, and building them requires a
// Resolver (the serving tier supplies one backed by its dataset store).
//
// Parsing is two-phase: ParseDocument reads the text into an untyped
// Document (syntax and structure only), and the per-domain builders
// (BuildFloat, BuildInt, BuildBool, BuildTropical) instantiate a typed
// core.Query from it.  The split is what multi-domain serving dispatches
// on: faqd parses once, reads Document.Domain, and routes to the engine
// handle of the matching value type.
package spec

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"github.com/faqdb/faq/internal/core"
	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/semiring"
)

// Canonical domain names, the accepted operands of the domain directive.
const (
	// DomainFloat is the real sum/max-product domain (float64, ·).
	DomainFloat = "float"
	// DomainInt is the counting domain (int64, ·) of #CQ / #QCQ.
	DomainInt = "int"
	// DomainBool is the Boolean domain ({false, true}, ∨, ∧).
	DomainBool = "bool"
	// DomainTropical is the min-plus semiring (R ∪ {+∞}, min, +).
	DomainTropical = "tropical"
)

// Domains lists the canonical domain names in directive order.
var Domains = []string{DomainFloat, DomainInt, DomainBool, DomainTropical}

// Document is a parsed spec before domain instantiation: structure and
// syntax are checked, values are still raw tokens (their grammar belongs
// to the domain).  Build it into a typed query with one of the Build
// methods matching Domain.
type Document struct {
	// Domain is the canonical value-domain name; DomainFloat when the
	// directive is absent.
	Domain string
	// Dataset is the name from the use directive, "" when absent.  Blocks
	// with a non-empty Ref draw their data from this dataset.
	Dataset string
	// Vars are the variable declarations in declaration (= expression)
	// order.
	Vars []VarDecl
	// Blocks are the factor blocks in declaration order.
	Blocks []FactorBlock
}

// VarDecl is one var line.
type VarDecl struct {
	// Name is the variable's spec name.
	Name string
	// Dom is the domain size (the variable ranges over 0..Dom-1).
	Dom int
	// Agg is the raw aggregate token: "free", "prod", or a domain
	// aggregate name ("sum", "max", "min", "or").
	Agg string
	// Line is the source line of the declaration, for error messages.
	Line int
}

// FactorBlock is one factor block: variables and tuple columns in
// *declaration order* (the column order of the block's data lines), values
// as raw tokens.
type FactorBlock struct {
	// Vars are the block's variable names in declaration order.
	Vars []string
	// VarIDs are the corresponding variable indices (positions in
	// Document.Vars), parallel to Vars.
	VarIDs []int
	// Tuples are the data rows, columns in declaration order.
	Tuples [][]int
	// Values are the raw value tokens, parallel to Tuples.
	Values []string
	// Ref is the dataset factor reference of an @<ref> block ("" for an
	// inline block, the token after '@' otherwise).  Ref blocks carry no
	// Tuples or Values; their data is resolved at build time.
	Ref string
	// Line is the source line of the factor directive; ValueLines are the
	// source lines of the data rows, for error messages.
	Line       int
	ValueLines []int
}

// ParseDocument reads a spec into its untyped Document form, checking
// syntax and structure (declaration order, arity, known variables) but not
// domain semantics: aggregate lawfulness and value grammar are checked by
// the Build methods, which know the value algebra.
func ParseDocument(r io.Reader) (*Document, error) {
	doc := &Document{Domain: DomainFloat}
	names := map[string]int{}
	numFree := 0
	sawDomain := false
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)

	lineNo := 0
	var blk *FactorBlock // nil when outside a factor block
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "domain":
			if sawDomain {
				return nil, fmt.Errorf("spec:%d: duplicate domain directive", lineNo)
			}
			if len(doc.Vars) > 0 || len(doc.Blocks) > 0 || blk != nil {
				return nil, fmt.Errorf("spec:%d: domain directive must precede all declarations", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("spec:%d: want 'domain <name>'", lineNo)
			}
			switch fields[1] {
			case DomainFloat, DomainInt, DomainBool, DomainTropical:
				doc.Domain = fields[1]
			default:
				return nil, fmt.Errorf("spec:%d: unknown domain %q (want %s)",
					lineNo, fields[1], strings.Join(Domains, ", "))
			}
			sawDomain = true
		case "use":
			if blk != nil {
				return nil, fmt.Errorf("spec:%d: use inside factor block", lineNo)
			}
			if doc.Dataset != "" {
				return nil, fmt.Errorf("spec:%d: duplicate use directive", lineNo)
			}
			if len(doc.Blocks) > 0 {
				return nil, fmt.Errorf("spec:%d: use directive must precede all factor blocks", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("spec:%d: want 'use <dataset>'", lineNo)
			}
			doc.Dataset = fields[1]
		case "var":
			if blk != nil {
				return nil, fmt.Errorf("spec:%d: var inside factor block", lineNo)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("spec:%d: want 'var <name> <dom> <agg>'", lineNo)
			}
			name := fields[1]
			if _, dup := names[name]; dup {
				return nil, fmt.Errorf("spec:%d: duplicate variable %q", lineNo, name)
			}
			dom, err := strconv.Atoi(fields[2])
			if err != nil || dom < 1 {
				return nil, fmt.Errorf("spec:%d: bad domain size %q", lineNo, fields[2])
			}
			if fields[3] == "free" {
				if numFree != len(doc.Vars) {
					return nil, fmt.Errorf("spec:%d: free variable %q after a bound variable", lineNo, name)
				}
				numFree++
			}
			names[name] = len(doc.Vars)
			doc.Vars = append(doc.Vars, VarDecl{Name: name, Dom: dom, Agg: fields[3], Line: lineNo})
		case "factor":
			if blk != nil {
				return nil, fmt.Errorf("spec:%d: nested factor block", lineNo)
			}
			varNames := fields[1:]
			ref := ""
			if len(varNames) > 0 && strings.HasPrefix(varNames[len(varNames)-1], "@") {
				ref = varNames[len(varNames)-1][1:]
				varNames = varNames[:len(varNames)-1]
				if ref == "" {
					return nil, fmt.Errorf("spec:%d: empty factor reference", lineNo)
				}
				if doc.Dataset == "" {
					return nil, fmt.Errorf("spec:%d: factor reference @%s without a use directive", lineNo, ref)
				}
			}
			if len(varNames) == 0 {
				return nil, fmt.Errorf("spec:%d: factor needs at least one variable", lineNo)
			}
			blk = &FactorBlock{Line: lineNo, Ref: ref}
			for _, name := range varNames {
				v, ok := names[name]
				if !ok {
					return nil, fmt.Errorf("spec:%d: unknown variable %q", lineNo, name)
				}
				blk.Vars = append(blk.Vars, name)
				blk.VarIDs = append(blk.VarIDs, v)
			}
			if ref != "" {
				// A reference block is complete on its factor line: no data
				// lines, no end.
				doc.Blocks = append(doc.Blocks, *blk)
				blk = nil
			}
		case "end":
			if blk == nil {
				return nil, fmt.Errorf("spec:%d: end outside factor block", lineNo)
			}
			doc.Blocks = append(doc.Blocks, *blk)
			blk = nil
		default:
			if blk == nil {
				return nil, fmt.Errorf("spec:%d: unexpected %q outside a factor block", lineNo, fields[0])
			}
			eq := -1
			for i, f := range fields {
				if f == "=" {
					eq = i
					break
				}
			}
			if eq != len(blk.Vars) || len(fields) != eq+2 {
				return nil, fmt.Errorf("spec:%d: want '%d values = weight'", lineNo, len(blk.Vars))
			}
			tup := make([]int, len(blk.Vars))
			for i := range tup {
				x, err := strconv.Atoi(fields[i])
				if err != nil {
					return nil, fmt.Errorf("spec:%d: bad value %q", lineNo, fields[i])
				}
				tup[i] = x
			}
			blk.Tuples = append(blk.Tuples, tup)
			blk.Values = append(blk.Values, fields[eq+1])
			blk.ValueLines = append(blk.ValueLines, lineNo)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if blk != nil {
		return nil, fmt.Errorf("spec: unterminated factor block")
	}
	return doc, nil
}

// Resolver supplies the factor data of an @<ref> block from an external
// source (the serving tier's dataset store).  declVars are the block's
// variable ids in declaration order — the column order of the stored
// rows, exactly as for shipped factor frames — and the returned factor
// must carry those variables sorted ascending (permuting columns as
// needed).  The Build methods fail on any reference block when no
// resolver is supplied.
type Resolver[V any] func(d *semiring.Domain[V], ref string, declVars []int) (*factor.Factor[V], error)

// StubResolver resolves every reference to an empty factor over the
// declared variables: the right resolver for shape-only consumers
// (/v1/plan), where factor data never influences the output.
func StubResolver[V any]() Resolver[V] {
	return func(d *semiring.Domain[V], _ string, declVars []int) (*factor.Factor[V], error) {
		sorted := append([]int(nil), declVars...)
		sort.Ints(sorted)
		return factor.New(d, sorted, nil, nil, nil)
	}
}

// NumFree counts the leading free variables.
func (doc *Document) NumFree() int {
	n := 0
	for _, v := range doc.Vars {
		if v.Agg != "free" {
			break
		}
		n++
	}
	return n
}

// BuildFloat instantiates the document over the real domain (float64, ·)
// with sum/max aggregates.  The layout result holds each factor's
// variables in declaration order (see ParseLayout).  An optional Resolver
// supplies the data of @<ref> blocks; without one, reference blocks are a
// build error.
func (doc *Document) BuildFloat(resolve ...Resolver[float64]) (*core.Query[float64], [][]int, error) {
	if err := doc.requireDomain(DomainFloat); err != nil {
		return nil, nil, err
	}
	return buildQuery(doc, semiring.Float(), floatAgg, parseFloatValue, pickResolver(resolve))
}

// BuildInt instantiates the document over the counting domain (int64, ·)
// with sum/max aggregates.
func (doc *Document) BuildInt(resolve ...Resolver[int64]) (*core.Query[int64], [][]int, error) {
	if err := doc.requireDomain(DomainInt); err != nil {
		return nil, nil, err
	}
	return buildQuery(doc, semiring.Int(), intAgg, parseIntValue, pickResolver(resolve))
}

// BuildBool instantiates the document over the Boolean domain (∨, ∧).
func (doc *Document) BuildBool(resolve ...Resolver[bool]) (*core.Query[bool], [][]int, error) {
	if err := doc.requireDomain(DomainBool); err != nil {
		return nil, nil, err
	}
	return buildQuery(doc, semiring.Bool(), boolAgg, parseBoolValue, pickResolver(resolve))
}

// BuildTropical instantiates the document over the tropical semiring
// (min, +): values are path costs, min is the lawful aggregate, and the
// additive identity is +∞ ("inf" in spec text).
func (doc *Document) BuildTropical(resolve ...Resolver[float64]) (*core.Query[float64], [][]int, error) {
	if err := doc.requireDomain(DomainTropical); err != nil {
		return nil, nil, err
	}
	return buildQuery(doc, semiring.Tropical(), tropicalAgg, parseFloatValue, pickResolver(resolve))
}

// pickResolver unwraps the optional variadic resolver argument.
func pickResolver[V any](rs []Resolver[V]) Resolver[V] {
	if len(rs) > 0 {
		return rs[0]
	}
	return nil
}

func (doc *Document) requireDomain(want string) error {
	if doc.Domain != want {
		return fmt.Errorf("spec: document declares domain %q, not %q", doc.Domain, want)
	}
	return nil
}

// buildQuery instantiates a Document over one value algebra: aggregates
// through aggOf, value tokens through parseVal, tuples permuted from
// declaration order to the sorted variable order factors store — exactly
// the permutation faqd applies to out-of-band factor data, so inline and
// shipped data mean the same thing.
func buildQuery[V any](doc *Document, d *semiring.Domain[V],
	aggOf func(string) (core.Aggregate[V], error),
	parseVal func(string) (V, error), resolve Resolver[V]) (*core.Query[V], [][]int, error) {

	q := &core.Query[V]{D: d, NVars: len(doc.Vars), NumFree: doc.NumFree()}
	for _, vd := range doc.Vars {
		agg, err := aggOf(vd.Agg)
		if err != nil {
			return nil, nil, fmt.Errorf("spec:%d: %v", vd.Line, err)
		}
		q.Names = append(q.Names, vd.Name)
		q.DomSizes = append(q.DomSizes, vd.Dom)
		q.Aggs = append(q.Aggs, agg)
	}
	layout := make([][]int, 0, len(doc.Blocks))
	for _, blk := range doc.Blocks {
		perm := make([]int, len(blk.VarIDs))
		for i := range perm {
			perm[i] = i
		}
		sort.Slice(perm, func(a, b int) bool { return blk.VarIDs[perm[a]] < blk.VarIDs[perm[b]] })
		sortedVars := make([]int, len(perm))
		for i, p := range perm {
			sortedVars[i] = blk.VarIDs[p]
		}
		if blk.Ref != "" {
			if resolve == nil {
				return nil, nil, fmt.Errorf(
					"spec:%d: factor reference @%s needs a dataset resolver", blk.Line, blk.Ref)
			}
			f, err := resolve(d, blk.Ref, blk.VarIDs)
			if err != nil {
				return nil, nil, fmt.Errorf("spec:%d: @%s: %w", blk.Line, blk.Ref, err)
			}
			if len(f.Vars) != len(sortedVars) {
				return nil, nil, fmt.Errorf("spec:%d: @%s: resolver returned arity %d, block declares %d",
					blk.Line, blk.Ref, len(f.Vars), len(sortedVars))
			}
			for i := range sortedVars {
				if f.Vars[i] != sortedVars[i] {
					return nil, nil, fmt.Errorf("spec:%d: @%s: resolver variables %v, block declares %v",
						blk.Line, blk.Ref, f.Vars, sortedVars)
				}
			}
			q.Factors = append(q.Factors, f)
			layout = append(layout, blk.VarIDs)
			continue
		}
		tuples := make([][]int, len(blk.Tuples))
		for i, raw := range blk.Tuples {
			tup := make([]int, len(perm))
			for j, p := range perm {
				tup[j] = raw[p]
			}
			tuples[i] = tup
		}
		values := make([]V, len(blk.Values))
		for i, tok := range blk.Values {
			v, err := parseVal(tok)
			if err != nil {
				return nil, nil, fmt.Errorf("spec:%d: bad %s weight %q", blk.ValueLines[i], doc.Domain, tok)
			}
			values[i] = v
		}
		f, err := factor.New(d, sortedVars, tuples, values, nil)
		if err != nil {
			return nil, nil, fmt.Errorf("spec:%d: %v", blk.Line, err)
		}
		q.Factors = append(q.Factors, f)
		layout = append(layout, blk.VarIDs)
	}
	if err := q.Validate(); err != nil {
		return nil, nil, err
	}
	return q, layout, nil
}

// Parse reads a float-domain query specification; specs declaring another
// domain are rejected with a pointer to the typed builders.  It is the
// compatibility entry point of the float-only tools (faqrun, faqplan).
func Parse(r io.Reader) (*core.Query[float64], error) {
	q, _, err := ParseLayout(r)
	return q, err
}

// ParseLayout is Parse, additionally returning each factor's variables in
// *declaration order* (the column order of its data lines).  Factors in
// the parsed query always carry sorted variables with permuted tuples;
// callers accepting out-of-band data in spec column order (the faqd
// `factors` request field and binary factor frames) need the declared
// layout to apply the same permutation.
func ParseLayout(r io.Reader) (*core.Query[float64], [][]int, error) {
	doc, err := ParseDocument(r)
	if err != nil {
		return nil, nil, err
	}
	if doc.Domain != DomainFloat {
		builder := map[string]string{
			DomainInt: "BuildInt", DomainBool: "BuildBool", DomainTropical: "BuildTropical",
		}[doc.Domain]
		return nil, nil, fmt.Errorf(
			"spec: domain %q in a float-only context (use ParseDocument and %s)",
			doc.Domain, builder)
	}
	return doc.BuildFloat()
}

func floatAgg(s string) (core.Aggregate[float64], error) {
	switch s {
	case "free":
		return core.Free[float64](), nil
	case "sum":
		return core.SemiringAgg(semiring.OpFloatSum()), nil
	case "max":
		return core.SemiringAgg(semiring.OpFloatMax()), nil
	case "min":
		// Rejected at build time rather than at Validate time: min over
		// (float64, ·, 0) is not a lawful FAQ aggregate (min(x, 0) = 0 ≠ x).
		// The lawful alternative is one directive away.
		return core.Aggregate[float64]{}, fmt.Errorf(
			"aggregate \"min\" is not a lawful semiring over the real product " +
				"(min(x, 0) = 0 ≠ x); lawful min-product is the tropical semiring " +
				"(min, +) — declare 'domain tropical'")
	case "prod":
		return core.ProductAgg[float64](), nil
	}
	return core.Aggregate[float64]{}, fmt.Errorf("unknown aggregate %q for domain float (want free|sum|max|prod)", s)
}

func intAgg(s string) (core.Aggregate[int64], error) {
	switch s {
	case "free":
		return core.Free[int64](), nil
	case "sum":
		return core.SemiringAgg(semiring.OpIntSum()), nil
	case "max":
		return core.SemiringAgg(semiring.OpIntMax()), nil
	case "prod":
		return core.ProductAgg[int64](), nil
	}
	return core.Aggregate[int64]{}, fmt.Errorf("unknown aggregate %q for domain int (want free|sum|max|prod)", s)
}

func boolAgg(s string) (core.Aggregate[bool], error) {
	switch s {
	case "free":
		return core.Free[bool](), nil
	case "or":
		return core.SemiringAgg(semiring.OpOr()), nil
	case "prod":
		return core.ProductAgg[bool](), nil
	}
	return core.Aggregate[bool]{}, fmt.Errorf("unknown aggregate %q for domain bool (want free|or|prod)", s)
}

func tropicalAgg(s string) (core.Aggregate[float64], error) {
	switch s {
	case "free":
		return core.Free[float64](), nil
	case "min":
		return core.SemiringAgg(semiring.OpTropicalMin()), nil
	case "prod":
		return core.ProductAgg[float64](), nil
	}
	return core.Aggregate[float64]{}, fmt.Errorf("unknown aggregate %q for domain tropical (want free|min|prod)", s)
}

func parseFloatValue(s string) (float64, error) { return strconv.ParseFloat(s, 64) }

func parseIntValue(s string) (int64, error) { return strconv.ParseInt(s, 10, 64) }

func parseBoolValue(s string) (bool, error) {
	switch s {
	case "1", "true":
		return true, nil
	case "0", "false":
		return false, nil
	}
	return false, fmt.Errorf("bad bool %q", s)
}
