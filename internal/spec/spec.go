// Package spec parses a small text format describing FAQ queries over the
// real sum/max-product semirings, used by cmd/faqrun and cmd/faqplan.
//
// Format (line oriented, '#' starts a comment):
//
//	var <name> <domSize> <agg>     # agg ∈ free | sum | max | prod
//	factor <name> <name> ...       # starts a factor block over those vars
//	<v1> <v2> ... = <value>        # one listed tuple per line
//	end                            # closes the factor block
//
// "min" is rejected with an explanatory error: min-product over the reals
// is not a lawful FAQ semiring (the shared additive identity is 0 and
// min(x, 0) ≠ x); lawful min-product lives in the tropical domain, which
// this float-only format does not express.
//
// Variables must be declared with all free variables first (the FAQ normal
// form of Eq. (1)); factors may list variables in any order.
package spec

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"github.com/faqdb/faq/internal/core"
	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/semiring"
)

// Parse reads a query specification.
func Parse(r io.Reader) (*core.Query[float64], error) {
	q, _, err := ParseLayout(r)
	return q, err
}

// ParseLayout is Parse, additionally returning each factor's variables in
// *declaration order* (the column order of its data lines).  Factors in the
// parsed query always carry sorted variables with permuted tuples; callers
// accepting out-of-band data in spec column order (the faqd `factors`
// request field) need the declared layout to apply the same permutation.
func ParseLayout(r io.Reader) (*core.Query[float64], [][]int, error) {
	d := semiring.Float()
	q := &core.Query[float64]{D: d}
	names := map[string]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)

	lineNo := 0
	var factorVars []int // nil when outside a factor block
	var tuples [][]int
	var values []float64
	var perm []int // column permutation to sorted vars
	var sortedVars []int

	var layout [][]int // per factor: variables in declaration order

	closeFactor := func() error {
		f, err := factor.New(d, sortedVars, tuples, values, nil)
		if err != nil {
			return err
		}
		q.Factors = append(q.Factors, f)
		layout = append(layout, factorVars)
		factorVars, tuples, values, perm, sortedVars = nil, nil, nil, nil, nil
		return nil
	}

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "var":
			if factorVars != nil {
				return nil, nil, fmt.Errorf("spec:%d: var inside factor block", lineNo)
			}
			if len(fields) != 4 {
				return nil, nil, fmt.Errorf("spec:%d: want 'var <name> <dom> <agg>'", lineNo)
			}
			name := fields[1]
			if _, dup := names[name]; dup {
				return nil, nil, fmt.Errorf("spec:%d: duplicate variable %q", lineNo, name)
			}
			dom, err := strconv.Atoi(fields[2])
			if err != nil || dom < 1 {
				return nil, nil, fmt.Errorf("spec:%d: bad domain size %q", lineNo, fields[2])
			}
			agg, err := parseAgg(fields[3])
			if err != nil {
				return nil, nil, fmt.Errorf("spec:%d: %v", lineNo, err)
			}
			if agg.Kind == core.KindFree {
				if q.NumFree != q.NVars {
					return nil, nil, fmt.Errorf("spec:%d: free variable %q after a bound variable", lineNo, name)
				}
				q.NumFree++
			}
			names[name] = q.NVars
			q.Names = append(q.Names, name)
			q.DomSizes = append(q.DomSizes, dom)
			q.Aggs = append(q.Aggs, agg)
			q.NVars++
		case "factor":
			if factorVars != nil {
				return nil, nil, fmt.Errorf("spec:%d: nested factor block", lineNo)
			}
			if len(fields) < 2 {
				return nil, nil, fmt.Errorf("spec:%d: factor needs at least one variable", lineNo)
			}
			for _, name := range fields[1:] {
				v, ok := names[name]
				if !ok {
					return nil, nil, fmt.Errorf("spec:%d: unknown variable %q", lineNo, name)
				}
				factorVars = append(factorVars, v)
			}
			perm = make([]int, len(factorVars))
			for i := range perm {
				perm[i] = i
			}
			fv := factorVars
			sort.Slice(perm, func(a, b int) bool { return fv[perm[a]] < fv[perm[b]] })
			sortedVars = make([]int, len(factorVars))
			for i, p := range perm {
				sortedVars[i] = factorVars[p]
			}
		case "end":
			if factorVars == nil {
				return nil, nil, fmt.Errorf("spec:%d: end outside factor block", lineNo)
			}
			if err := closeFactor(); err != nil {
				return nil, nil, fmt.Errorf("spec:%d: %v", lineNo, err)
			}
		default:
			if factorVars == nil {
				return nil, nil, fmt.Errorf("spec:%d: unexpected %q outside a factor block", lineNo, fields[0])
			}
			eq := -1
			for i, f := range fields {
				if f == "=" {
					eq = i
					break
				}
			}
			if eq != len(factorVars) || len(fields) != eq+2 {
				return nil, nil, fmt.Errorf("spec:%d: want '%d values = weight'", lineNo, len(factorVars))
			}
			tup := make([]int, len(factorVars))
			for i, p := range perm {
				x, err := strconv.Atoi(fields[p])
				if err != nil {
					return nil, nil, fmt.Errorf("spec:%d: bad value %q", lineNo, fields[p])
				}
				tup[i] = x
			}
			val, err := strconv.ParseFloat(fields[eq+1], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("spec:%d: bad weight %q", lineNo, fields[eq+1])
			}
			tuples = append(tuples, tup)
			values = append(values, val)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if factorVars != nil {
		return nil, nil, fmt.Errorf("spec: unterminated factor block")
	}
	if err := q.Validate(); err != nil {
		return nil, nil, err
	}
	return q, layout, nil
}

func parseAgg(s string) (core.Aggregate[float64], error) {
	switch s {
	case "free":
		return core.Free[float64](), nil
	case "sum":
		return core.SemiringAgg(semiring.OpFloatSum()), nil
	case "max":
		return core.SemiringAgg(semiring.OpFloatMax()), nil
	case "min":
		// Rejected at parse time rather than at Validate time: min over
		// (float64, ·, 0) is not a lawful FAQ aggregate (min(x, 0) = 0 ≠ x),
		// and this float-only format cannot express the lawful alternative.
		return core.Aggregate[float64]{}, fmt.Errorf(
			"aggregate \"min\" is not a lawful semiring over the real product " +
				"(min(x, 0) = 0 ≠ x); lawful min-product is the tropical semiring " +
				"(min, +), not expressible in this float spec format")
	case "prod":
		return core.ProductAgg[float64](), nil
	}
	return core.Aggregate[float64]{}, fmt.Errorf("unknown aggregate %q (want free|sum|max|prod)", s)
}
