package spec

import (
	"strings"
	"testing"

	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/semiring"
)

const datasetSpec = `
use tri
var x 4 sum
var y 4 sum
var z 4 sum
factor x y @0
factor y z @1
factor x z @2
`

func TestParseUseDirective(t *testing.T) {
	doc, err := ParseDocument(strings.NewReader(datasetSpec))
	if err != nil {
		t.Fatalf("ParseDocument: %v", err)
	}
	if doc.Dataset != "tri" {
		t.Fatalf("Dataset = %q, want \"tri\"", doc.Dataset)
	}
	if len(doc.Blocks) != 3 {
		t.Fatalf("%d blocks, want 3", len(doc.Blocks))
	}
	for i, blk := range doc.Blocks {
		if blk.Ref == "" {
			t.Fatalf("block %d has no ref", i)
		}
	}
}

func TestParseUseErrors(t *testing.T) {
	cases := []struct {
		name, text, errSub string
	}{
		{"duplicate", "use a\nuse b\nvar x 2 sum\nfactor x @0\n", "duplicate use"},
		{"after block", "var x 2 sum\nfactor x\n0 = 1\nend\nuse a\n", "precede all factor blocks"},
		{"missing name", "use\n", "'use <dataset>'"},
		{"ref without use", "var x 2 sum\nfactor x @0\n", "without a use directive"},
		{"empty ref", "use a\nvar x 2 sum\nfactor x @\n", "empty factor reference"},
		{"inside block", "use a\nvar x 2 sum\nfactor x\nuse b\nend\n", "use inside factor block"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseDocument(strings.NewReader(tc.text))
			if err == nil || !strings.Contains(err.Error(), tc.errSub) {
				t.Fatalf("err = %v, want mention of %q", err, tc.errSub)
			}
		})
	}
}

func TestBuildRefNeedsResolver(t *testing.T) {
	doc, err := ParseDocument(strings.NewReader(datasetSpec))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := doc.BuildFloat(); err == nil ||
		!strings.Contains(err.Error(), "needs a dataset resolver") {
		t.Fatalf("BuildFloat without resolver: %v", err)
	}
}

func TestBuildRefWithResolver(t *testing.T) {
	doc, err := ParseDocument(strings.NewReader(datasetSpec))
	if err != nil {
		t.Fatal(err)
	}
	var gotRefs []string
	resolve := func(d *semiring.Domain[float64], ref string, declVars []int) (*factor.Factor[float64], error) {
		gotRefs = append(gotRefs, ref)
		sorted := append([]int(nil), declVars...)
		if len(sorted) == 2 && sorted[0] > sorted[1] {
			sorted[0], sorted[1] = sorted[1], sorted[0]
		}
		return factor.New(d, sorted, [][]int{{0, 1}}, []float64{2}, nil)
	}
	q, layout, err := doc.BuildFloat(resolve)
	if err != nil {
		t.Fatalf("BuildFloat: %v", err)
	}
	if len(q.Factors) != 3 || len(layout) != 3 {
		t.Fatalf("%d factors, %d layouts", len(q.Factors), len(layout))
	}
	if len(gotRefs) != 3 || gotRefs[0] != "0" || gotRefs[1] != "1" || gotRefs[2] != "2" {
		t.Fatalf("resolved refs = %v", gotRefs)
	}
	if q.Factors[0].Size() != 1 {
		t.Fatalf("factor 0 has %d rows", q.Factors[0].Size())
	}
}

func TestBuildRefResolverVarMismatch(t *testing.T) {
	doc, err := ParseDocument(strings.NewReader(datasetSpec))
	if err != nil {
		t.Fatal(err)
	}
	wrong := func(d *semiring.Domain[float64], ref string, declVars []int) (*factor.Factor[float64], error) {
		return factor.New(d, []int{0}, nil, nil, nil) // arity 1, blocks declare 2
	}
	if _, _, err := doc.BuildFloat(wrong); err == nil ||
		!strings.Contains(err.Error(), "arity") {
		t.Fatalf("arity mismatch: %v", err)
	}
}

func TestStubResolverShapes(t *testing.T) {
	doc, err := ParseDocument(strings.NewReader(datasetSpec))
	if err != nil {
		t.Fatal(err)
	}
	q, _, err := doc.BuildFloat(StubResolver[float64]())
	if err != nil {
		t.Fatalf("BuildFloat with stub: %v", err)
	}
	if len(q.Factors) != 3 {
		t.Fatalf("%d factors", len(q.Factors))
	}
	for i, f := range q.Factors {
		if f.Arity() != 2 || f.Size() != 0 {
			t.Fatalf("stub factor %d: arity %d size %d", i, f.Arity(), f.Size())
		}
	}
	if q.Shape() == nil {
		t.Fatal("nil shape")
	}
}

// TestUseAllDomains checks the directive composes with every domain's
// build method.
func TestUseAllDomains(t *testing.T) {
	for _, dom := range []string{DomainFloat, DomainInt, DomainBool, DomainTropical} {
		t.Run(dom, func(t *testing.T) {
			text := datasetSpec
			agg := "sum"
			if dom == DomainTropical {
				agg = "min"
			} else if dom == DomainBool {
				agg = "or"
			}
			text = strings.ReplaceAll(text, "sum", agg)
			if dom != DomainFloat {
				text = "domain " + dom + "\n" + text
			}
			doc, err := ParseDocument(strings.NewReader(text))
			if err != nil {
				t.Fatalf("ParseDocument: %v", err)
			}
			var buildErr error
			switch dom {
			case DomainFloat:
				_, _, buildErr = doc.BuildFloat(StubResolver[float64]())
			case DomainInt:
				_, _, buildErr = doc.BuildInt(StubResolver[int64]())
			case DomainBool:
				_, _, buildErr = doc.BuildBool(StubResolver[bool]())
			case DomainTropical:
				_, _, buildErr = doc.BuildTropical(StubResolver[float64]())
			}
			if buildErr != nil {
				t.Fatalf("build: %v", buildErr)
			}
		})
	}
}
