package spec

import (
	"math"
	"strings"
	"testing"

	"github.com/faqdb/faq/internal/core"
)

func TestParseDocumentDomainDirective(t *testing.T) {
	doc, err := ParseDocument(strings.NewReader("domain int\nvar a 2 sum\nfactor a\n0 = 1\n1 = 2\nend\n"))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Domain != DomainInt {
		t.Fatalf("domain %q, want int", doc.Domain)
	}
	if doc.NumFree() != 0 || len(doc.Vars) != 1 || len(doc.Blocks) != 1 {
		t.Fatalf("document structure: %+v", doc)
	}

	// No directive means float.
	doc, err = ParseDocument(strings.NewReader("var a 2 sum\nfactor a\n0 = 1\nend\n"))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Domain != DomainFloat {
		t.Fatalf("default domain %q, want float", doc.Domain)
	}
}

func TestParseDocumentDomainErrors(t *testing.T) {
	cases := map[string]string{
		"unknown domain":     "domain quantum\nvar a 2 sum\nfactor a\n0 = 1\nend\n",
		"duplicate domain":   "domain int\ndomain int\nvar a 2 sum\nfactor a\n0 = 1\nend\n",
		"domain after var":   "var a 2 sum\ndomain int\nfactor a\n0 = 1\nend\n",
		"bad directive form": "domain\nvar a 2 sum\nfactor a\n0 = 1\nend\n",
	}
	for name, input := range cases {
		if _, err := ParseDocument(strings.NewReader(input)); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
}

func TestBuildInt(t *testing.T) {
	doc, err := ParseDocument(strings.NewReader(
		"domain int\nvar a 2 sum\nvar b 2 max\nfactor b a\n0 1 = 3\n1 0 = 5\nend\n"))
	if err != nil {
		t.Fatal(err)
	}
	q, layout, err := doc.BuildInt()
	if err != nil {
		t.Fatal(err)
	}
	if q.D.Name != "int64" || q.NVars != 2 {
		t.Fatalf("query: domain %q, n=%d", q.D.Name, q.NVars)
	}
	// Declaration order (b, a) must surface in the layout; storage is sorted.
	if len(layout) != 1 || layout[0][0] != 1 || layout[0][1] != 0 {
		t.Fatalf("layout %v, want [[1 0]]", layout)
	}
	// Row "0 1" means b=0, a=1 → stored tuple (a=1, b=0).
	if v, ok := q.Factors[0].Value([]int{1, 0}); !ok || v != 3 {
		t.Fatalf("ψ(a=1,b=0) = %v, %v, want 3", v, ok)
	}
	got, err := core.BruteForceScalar(q)
	if err != nil {
		t.Fatal(err)
	}
	// Σ_a max_b ψ: a=0 → max(0, 5) = 5; a=1 → max(3, 0) = 3; total 8.
	if got != 8 {
		t.Fatalf("value %d, want 8", got)
	}
}

func TestBuildBool(t *testing.T) {
	doc, err := ParseDocument(strings.NewReader(
		"domain bool\nvar a 2 or\nvar b 2 or\nfactor a b\n0 1 = true\n1 0 = 1\n1 1 = false\nend\n"))
	if err != nil {
		t.Fatal(err)
	}
	q, _, err := doc.BuildBool()
	if err != nil {
		t.Fatal(err)
	}
	// false values are the additive identity and are dropped at build.
	if q.Factors[0].Size() != 2 {
		t.Fatalf("factor keeps %d rows, want 2 (false dropped)", q.Factors[0].Size())
	}
	got, err := core.BruteForceScalar(q)
	if err != nil {
		t.Fatal(err)
	}
	if got != true {
		t.Fatalf("∨∨ψ = %v, want true", got)
	}
}

func TestBuildTropical(t *testing.T) {
	// Two-edge path: min_{a,b,c} ψ(a,b) + ψ(b,c) — a shortest path.
	doc, err := ParseDocument(strings.NewReader(`domain tropical
var a 2 min
var b 2 min
var c 2 min
factor a b
0 0 = 1.5
0 1 = 4
end
factor b c
0 1 = 2
1 0 = inf
end
`))
	if err != nil {
		t.Fatal(err)
	}
	q, _, err := doc.BuildTropical()
	if err != nil {
		t.Fatal(err)
	}
	if q.D.Name != "tropical" {
		t.Fatalf("domain %q", q.D.Name)
	}
	// "inf" is the tropical zero and is dropped from the listing.
	if q.Factors[1].Size() != 1 {
		t.Fatalf("factor 1 keeps %d rows, want 1 (inf dropped)", q.Factors[1].Size())
	}
	got, err := core.BruteForceScalar(q)
	if err != nil {
		t.Fatal(err)
	}
	// Only supported route: a=0,b=0,c=1 → 1.5 + 2 = 3.5.
	if got != 3.5 {
		t.Fatalf("shortest path %v, want 3.5", got)
	}
	// Solve agrees (tropical runs through the full planner/executor stack).
	res, _, err := core.Solve(q, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(res.Scalar()) != math.Float64bits(got) {
		t.Fatalf("Solve %v != BruteForce %v", res.Scalar(), got)
	}
}

func TestBuildRejectsForeignAggregates(t *testing.T) {
	cases := map[string]string{
		"min in int":       "domain int\nvar a 2 min\nfactor a\n0 = 1\nend\n",
		"sum in bool":      "domain bool\nvar a 2 sum\nfactor a\n0 = 1\nend\n",
		"or in float":      "var a 2 or\nfactor a\n0 = 1\nend\n",
		"sum in tropical":  "domain tropical\nvar a 2 sum\nfactor a\n0 = 1\nend\n",
		"int float weight": "domain int\nvar a 2 sum\nfactor a\n0 = 1.5\nend\n",
		"bool bad weight":  "domain bool\nvar a 2 or\nfactor a\n0 = 2\nend\n",
	}
	for name, input := range cases {
		doc, err := ParseDocument(strings.NewReader(input))
		if err != nil {
			t.Errorf("%s: parse failed early: %v", name, err)
			continue
		}
		switch doc.Domain {
		case DomainFloat:
			_, _, err = doc.BuildFloat()
		case DomainInt:
			_, _, err = doc.BuildInt()
		case DomainBool:
			_, _, err = doc.BuildBool()
		case DomainTropical:
			_, _, err = doc.BuildTropical()
		}
		if err == nil {
			t.Errorf("%s: expected a build error", name)
		}
	}
}

func TestBuildRequiresMatchingDomain(t *testing.T) {
	doc, err := ParseDocument(strings.NewReader("domain int\nvar a 2 sum\nfactor a\n0 = 1\nend\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := doc.BuildFloat(); err == nil {
		t.Fatal("BuildFloat accepted an int document")
	}
	if _, err := Parse(strings.NewReader("domain int\nvar a 2 sum\nfactor a\n0 = 1\nend\n")); err == nil {
		t.Fatal("float-only Parse accepted an int document")
	}
}

// TestIntFloatShapeKeysMatch pins the cross-domain plan-sharing invariant
// the multi-domain server relies on: the same query text instantiated over
// float and int produces identical shape keys, so one plan-LRU entry
// serves both value types through core.Retype.
func TestIntFloatShapeKeysMatch(t *testing.T) {
	text := "var x 4 free\nvar y 4 sum\nvar z 4 max\nfactor x y\n0 0 = 1\nend\nfactor y z\n0 0 = 1\nend\n"
	qf, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ParseDocument(strings.NewReader("domain int\n" + text))
	if err != nil {
		t.Fatal(err)
	}
	qi, _, err := doc.BuildInt()
	if err != nil {
		t.Fatal(err)
	}
	if fk, ik := qf.Shape().Key(), qi.Shape().Key(); fk != ik {
		t.Fatalf("shape keys differ:\nfloat: %s\nint:   %s", fk, ik)
	}
}
