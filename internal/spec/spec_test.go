package spec

import (
	"strings"
	"testing"

	"github.com/faqdb/faq/internal/core"
)

const sample = `
# triangle-ish query
var a 2 free
var b 2 sum
var c 3 max
factor a b
0 0 = 1
0 1 = 2
1 1 = 3    # comment after a row
end
factor c b   # unsorted variable order
2 0 = 4
0 1 = 5
end
`

func TestParseSample(t *testing.T) {
	q, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if q.NVars != 3 || q.NumFree != 1 {
		t.Fatalf("n=%d f=%d", q.NVars, q.NumFree)
	}
	if q.Names[2] != "c" || q.DomSizes[2] != 3 {
		t.Fatal("variable metadata wrong")
	}
	if len(q.Factors) != 2 {
		t.Fatalf("%d factors", len(q.Factors))
	}
	// Second factor was declared (c, b) = vars (2, 1); stored sorted (1, 2)
	// with columns swapped: row "2 0" means c=2, b=0 → tuple (b=0, c=2).
	f := q.Factors[1]
	if f.Vars[0] != 1 || f.Vars[1] != 2 {
		t.Fatalf("factor vars = %v", f.Vars)
	}
	if v, ok := f.Value([]int{0, 2}); !ok || v != 4 {
		t.Fatalf("f(b=0,c=2) = %v, %v", v, ok)
	}
	// End-to-end: the parsed query must evaluate.
	res, _, err := core.Solve(q, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.BruteForce(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output.Equal(q.D, want) {
		t.Fatal("parsed query evaluates wrong")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"bad var arity":      "var a 2\n",
		"bad dom":            "var a x free\n",
		"bad agg":            "var a 2 avg\n",
		"dup var":            "var a 2 sum\nvar a 2 sum\n",
		"free after bound":   "var a 2 sum\nvar b 2 free\nfactor a b\n0 0 = 1\nend\n",
		"unknown factor var": "var a 2 sum\nfactor z\n0 = 1\nend\n",
		"row outside block":  "var a 2 sum\n0 = 1\n",
		"nested factor":      "var a 2 sum\nfactor a\nfactor a\n",
		"bad row arity":      "var a 2 sum\nfactor a\n0 0 = 1\nend\n",
		"bad weight":         "var a 2 sum\nfactor a\n0 = x\nend\n",
		"unterminated":       "var a 2 sum\nfactor a\n0 = 1\n",
		"stray end":          "var a 2 sum\nend\n",
		"uncovered variable": "var a 2 sum\nvar b 2 sum\nfactor a\n0 = 1\nend\n",
	}
	for name, input := range cases {
		if _, err := Parse(strings.NewReader(input)); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
}

func TestParseProductAggregate(t *testing.T) {
	input := `
var a 2 sum
var b 2 prod
factor a b
0 0 = 1
0 1 = 1
1 0 = 1
end
`
	q, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if q.Aggs[1].Kind != core.KindProduct {
		t.Fatal("b should be a product variable")
	}
	got, err := core.BruteForceScalar(q)
	if err != nil {
		t.Fatal(err)
	}
	// Σ_a Π_b ψ: a=0 → 1·1 = 1; a=1 → 1·0 = 0; total 1.
	if got != 1 {
		t.Fatalf("value = %v, want 1", got)
	}
}

// TestParseRejectsMinAggregate pins the lawfulness regression: "min" over
// the float spec format must fail at parse time with an error routing users
// to the tropical semiring, instead of compiling to the unlawful OpFloatMin.
func TestParseRejectsMinAggregate(t *testing.T) {
	_, err := Parse(strings.NewReader("var a 2 min\nfactor a\n0 = 1\nend\n"))
	if err == nil {
		t.Fatal("spec with a min aggregate should fail to parse")
	}
	if !strings.Contains(err.Error(), "tropical") {
		t.Fatalf("min rejection does not route to the tropical semiring: %v", err)
	}
}
