// Layout micro-benchmarks: the CSR trie build (identity and permuted column
// orders), the galloping probe loop, and the warm-cache path.  `make
// bench-layout` runs these with -benchmem and records BENCH_PR4.json.
package join

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/semiring"
	"github.com/faqdb/faq/internal/sortx"
)

func layoutFactor(seed int64, vars []int, dom, n int) *factor.Factor[float64] {
	d := semiring.Float()
	rng := rand.New(rand.NewSource(seed))
	var tuples [][]int
	var values []float64
	for i := 0; i < n; i++ {
		t := make([]int, len(vars))
		for j := range t {
			t[j] = rng.Intn(dom)
		}
		tuples = append(tuples, t)
		values = append(values, 1)
	}
	f, err := factor.New(d, vars, tuples, values, func(a, b float64) float64 { return a })
	if err != nil {
		panic(err)
	}
	return f
}

// BenchmarkLayoutTrieBuildIdentity: join order visits columns in stored
// order — the single-pass O(n) build from the sorted row block.
func BenchmarkLayoutTrieBuildIdentity(b *testing.B) {
	f := layoutFactor(1, []int{0, 1}, 3000, 48000)
	pos := map[int]int{0: 0, 1: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := buildTrie(f, pos); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLayoutTrieBuildPermuted: join order reverses the columns, so the
// build re-sorts the permuted block first.
func BenchmarkLayoutTrieBuildPermuted(b *testing.B) {
	f := layoutFactor(2, []int{0, 1}, 3000, 48000)
	pos := map[int]int{0: 1, 1: 0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := buildTrie(f, pos); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLayoutTrieBuildPermutedArity: the same permuted re-sort build at
// arity 3-5 — the range the old comparison fallback covered before the
// radix kernel.  `make bench-radix` records these to BENCH_PR9.json.
func BenchmarkLayoutTrieBuildPermutedArity(b *testing.B) {
	for _, arity := range []int{3, 4, 5} {
		vars := make([]int, arity)
		pos := map[int]int{}
		for i := range vars {
			vars[i] = i
			pos[i] = arity - 1 - i // reverse the columns: full re-sort
		}
		f := layoutFactor(int64(10+arity), vars, 3000, 48000)
		b.Run(fmt.Sprintf("arity%d", arity), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := buildTrie(f, pos); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLayoutTrieBuildPermutedArityBaseline is the same build with the
// radix cutoff raised past the block size, so the sort runs the comparison
// path — the pre-radix baseline the ≥4x acceptance ratio is taken against.
func BenchmarkLayoutTrieBuildPermutedArityBaseline(b *testing.B) {
	oldMin := sortx.RadixMinRows
	sortx.RadixMinRows = 1 << 30
	defer func() { sortx.RadixMinRows = oldMin }()
	for _, arity := range []int{3, 4, 5} {
		vars := make([]int, arity)
		pos := map[int]int{}
		for i := range vars {
			vars[i] = i
			pos[i] = arity - 1 - i
		}
		f := layoutFactor(int64(10+arity), vars, 3000, 48000)
		b.Run(fmt.Sprintf("arity%d", arity), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := buildTrie(f, pos); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLayoutTrieProbe: the triangle scan — build once, time the
// galloping intersection loop alone.
func BenchmarkLayoutTrieProbe(b *testing.B) {
	fs := []*factor.Factor[float64]{
		layoutFactor(3, []int{0, 1}, 1000, 16000),
		layoutFactor(4, []int{1, 2}, 1000, 16000),
		layoutFactor(5, []int{0, 2}, 1000, 16000),
	}
	d := semiring.Float()
	r, err := NewRunner(d, fs, []int{0, 1, 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		r.Run(func([]int, float64) { n++ })
		if n == 0 {
			b.Fatal("empty join")
		}
	}
}

// BenchmarkLayoutEliminateCold / Warm: one full elimination step with cold
// tries vs the prepared-query warm cache.
func BenchmarkLayoutEliminateCold(b *testing.B) {
	d := semiring.Float()
	op := semiring.OpFloatSum()
	fs := []*factor.Factor[float64]{
		layoutFactor(6, []int{0, 1}, 1000, 16000),
		layoutFactor(7, []int{1, 2}, 1000, 16000),
		layoutFactor(8, []int{0, 2}, 1000, 16000),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EliminateInnermost(d, op, fs, []int{0, 1, 2}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLayoutEliminateWarm(b *testing.B) {
	d := semiring.Float()
	op := semiring.OpFloatSum()
	fs := []*factor.Factor[float64]{
		layoutFactor(6, []int{0, 1}, 1000, 16000),
		layoutFactor(7, []int{1, 2}, 1000, 16000),
		layoutFactor(8, []int{0, 2}, 1000, 16000),
	}
	cache := NewTrieCache(fs)
	if _, err := EliminateInnermostOn(nil, nil, 1, cache, d, op, fs, []int{0, 1, 2}, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EliminateInnermostOn(nil, nil, 1, cache, d, op, fs, []int{0, 1, 2}, nil); err != nil {
			b.Fatal(err)
		}
	}
}
