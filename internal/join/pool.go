// Pool is the persistent executor pool behind the Engine API: a fixed set
// of long-lived worker goroutines shared by every elimination step of every
// query the engine runs, instead of the spawn-per-scan goroutines of
// ParallelFor.  Work arrives as index ranges (Run); each call keeps the
// caller as one of its runners, so a Run can always make progress even when
// the pool's workers are busy with concurrent queries, and a nil or closed
// pool degrades to the inline sequential loop.
//
// Cancellation: Run checks its context between tasks (block boundaries).
// On cancellation it stops handing out new indices, waits for in-flight
// tasks to return — no goroutine outlives the call — and reports ctx.Err().
package join

import (
	"context"
	"sync"
)

// Pool is a persistent worker pool.  The zero value is not usable; create
// pools with NewPool.  A nil *Pool is valid everywhere and means "inline".
type Pool struct {
	mu     sync.RWMutex
	size   int
	tasks  chan func()
	closed bool
	done   sync.WaitGroup // worker exits, for Close
}

// poolTaskBuffer is the task-queue depth: deep enough that concurrent Runs
// can hand their runners to momentarily busy workers, bounded so submission
// stays non-blocking (a full queue degrades a Run to fewer runners, never
// to waiting — the caller is always one of its own runners).
const poolTaskBuffer = 256

// NewPool starts a pool of n persistent workers (n < 1 means GOMAXPROCS).
// A pool of size 1 starts no goroutines: every Run executes inline.
func NewPool(n int) *Pool {
	p := &Pool{tasks: make(chan func(), poolTaskBuffer)}
	p.Grow(Workers(n))
	return p
}

// Size returns the current number of persistent workers.
func (p *Pool) Size() int {
	if p == nil {
		return 1
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.size
}

// Grow raises the worker count to n (never shrinks).  It is how the shared
// default pool adapts when a caller requests more parallelism than
// GOMAXPROCS: the extra workers are persistent, so repeated oversubscribed
// runs reuse them instead of re-spawning.
func (p *Pool) Grow(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	// size 1 means "inline": the first worker goroutine only exists once a
	// second runner could be active concurrently.
	if p.size == 0 {
		p.size = 1
	}
	for p.size < n {
		p.size++
		p.done.Add(1)
		go func() {
			defer p.done.Done()
			for fn := range p.tasks {
				fn()
			}
		}()
	}
}

// Close shuts the persistent workers down and waits for them to exit.
// Subsequent Runs execute inline; Close is idempotent.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.tasks)
	p.mu.Unlock()
	p.done.Wait()
}

// submit enqueues fn for a persistent worker without blocking; it reports
// false when the pool is closed or the task queue is full (the caller then
// absorbs the work itself).  The read lock orders the send against Close.
func (p *Pool) submit(fn func()) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	select {
	case p.tasks <- fn:
		return true
	default:
		return false
	}
}

// Run executes fn(0), ..., fn(n-1) with at most `limit` tasks in flight
// (limit < 1 or beyond the pool size means the pool size).  Indices are
// handed out through a shared counter, so callers must not depend on which
// runner executes which index — block merges stay deterministic because the
// caller reassembles outputs by index.  The calling goroutine acts as one of
// the runners, and completion is tracked per claimed index, not per helper:
// helper runners still queued behind other calls' work are simply never
// waited on (they no-op when eventually dequeued), so a short Run never
// blocks behind a long concurrent one.  ctx is checked between tasks; on
// cancellation Run waits for in-flight tasks, skips the rest and returns
// ctx.Err().  No fn invocation survives past Run's return.  A nil ctx means
// never cancelled.
func (p *Pool) Run(ctx context.Context, n, limit int, fn func(i int)) error {
	runners := n
	if p == nil {
		runners = 1
	} else if size := p.Size(); runners > size {
		runners = size
	}
	if limit > 0 && runners > limit {
		runners = limit
	}
	if runners <= 1 {
		for i := 0; i < n; i++ {
			if ctx != nil && ctx.Err() != nil {
				return ctx.Err()
			}
			fn(i)
		}
		return ctxErr(ctx)
	}

	st := &runState{ctx: ctx, fn: fn, n: n}
	st.cond = sync.NewCond(&st.mu)
	// The caller is runner 0; the rest go to the persistent workers.  A
	// failed submit (pool closed, or every worker busy with a full queue)
	// just means fewer helpers this call — the shared claim counter keeps
	// the remaining runners correct.
	for w := 1; w < runners; w++ {
		if !p.submit(st.runner) {
			break
		}
	}
	st.runner()
	// The caller's runner has drained the counter (or ctx fired).  Bar any
	// further claims — a helper dequeued from now on exits immediately —
	// and wait only for the indices already in flight.
	st.mu.Lock()
	st.stopped = true
	for st.active > 0 {
		st.cond.Wait()
	}
	st.mu.Unlock()
	return ctxErr(ctx)
}

// runState is the per-Run coordination record shared by the caller and its
// helper runners.  Claims and the stop flag are guarded by one mutex, so an
// index is either claimed (and then always executed and waited on) or
// barred — never executed after Run returns.
type runState struct {
	mu      sync.Mutex
	cond    *sync.Cond
	ctx     context.Context
	fn      func(int)
	n       int
	next    int
	active  int
	stopped bool
}

func (s *runState) runner() {
	for {
		s.mu.Lock()
		if s.stopped || s.next >= s.n || (s.ctx != nil && s.ctx.Err() != nil) {
			s.mu.Unlock()
			return
		}
		i := s.next
		s.next++
		s.active++
		s.mu.Unlock()
		s.fn(i)
		s.mu.Lock()
		s.active--
		if s.active == 0 {
			s.cond.Broadcast()
		}
		s.mu.Unlock()
	}
}

func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}
