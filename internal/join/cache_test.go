package join

import (
	"math/rand"
	"testing"

	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/semiring"
)

func TestTrieCacheMemoizesRegisteredFactors(t *testing.T) {
	d := semiring.Float()
	rng := rand.New(rand.NewSource(11))
	f := randomFactor(rng, d, []int{0, 1}, 8, 30)
	g := randomFactor(rng, d, []int{0, 1}, 8, 30) // not registered
	c := NewTrieCache([]*factor.Factor[float64]{f})
	pos := map[int]int{0: 0, 1: 1}

	t1, err := c.trieFor(f, pos)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := c.trieFor(f, pos)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Fatal("registered factor rebuilt its trie on the second call")
	}
	// A different column order is a distinct entry, also memoized.
	rev := map[int]int{0: 1, 1: 0}
	r1, _ := c.trieFor(f, rev)
	r2, _ := c.trieFor(f, rev)
	if r1 == t1 || r1 != r2 {
		t.Fatal("per-order memoization broken")
	}
	// Unregistered factors always build fresh and are never stored.
	u1, _ := c.trieFor(g, pos)
	u2, _ := c.trieFor(g, pos)
	if u1 == u2 {
		t.Fatal("unregistered factor was cached")
	}
	hits, misses := c.Counters()
	if hits != 2 || misses < 2 {
		t.Fatalf("counters hits=%d misses=%d, want 2 hits", hits, misses)
	}
}

func TestTrieCacheProjectionIdentityIsStable(t *testing.T) {
	d := semiring.Float()
	f := randomFactor(rand.New(rand.NewSource(12)), d, []int{0, 1, 2}, 6, 40)
	c := NewTrieCache([]*factor.Factor[float64]{f})

	p1 := c.Projection(d, f, []int{0, 1})
	p2 := c.Projection(d, f, []int{0, 1})
	if p1 != p2 {
		t.Fatal("projection identity changed between calls: its trie could never cache")
	}
	if !p1.Equal(d, f.IndicatorProjection(d, []int{0, 1})) {
		t.Fatal("cached projection differs from a fresh one")
	}
	// The cached projection is itself registered: its trie memoizes too.
	pos := map[int]int{0: 0, 1: 1}
	t1, _ := c.trieFor(p1, pos)
	t2, _ := c.trieFor(p1, pos)
	if t1 != t2 {
		t.Fatal("projection trie not memoized")
	}
	// Projections of unregistered factors are computed but not stored.
	g := randomFactor(rand.New(rand.NewSource(13)), d, []int{0, 1, 2}, 6, 40)
	if c.Projection(d, g, []int{0, 1}) == c.Projection(d, g, []int{0, 1}) {
		t.Fatal("unregistered projection was cached")
	}
}

func TestNilTrieCacheBuildsFresh(t *testing.T) {
	d := semiring.Float()
	f := randomFactor(rand.New(rand.NewSource(14)), d, []int{0, 1}, 8, 20)
	var c *TrieCache[float64]
	if _, err := c.trieFor(f, map[int]int{0: 0, 1: 1}); err != nil {
		t.Fatal(err)
	}
	if got := c.Projection(d, f, []int{0}); got == nil {
		t.Fatal("nil cache projection")
	}
	if h, m := c.Counters(); h != 0 || m != 0 {
		t.Fatal("nil cache counted something")
	}
}

// TestCachedScanMatchesUncached asserts the end-to-end invariant the engine
// relies on: the same elimination run answered through a warm cache is
// bit-identical to a cold build.
func TestCachedScanMatchesUncached(t *testing.T) {
	d := semiring.Float()
	op := semiring.OpFloatSum()
	rng := rand.New(rand.NewSource(15))
	fs := []*factor.Factor[float64]{
		randomFactor(rng, d, []int{0, 1}, 10, 50),
		randomFactor(rng, d, []int{1, 2}, 10, 50),
		randomFactor(rng, d, []int{0, 2}, 10, 50),
	}
	vars := []int{2, 0, 1}
	want, err := EliminateInnermost(d, op, fs, vars, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := NewTrieCache(fs)
	for round := 0; round < 3; round++ {
		got, err := EliminateInnermostOn(nil, nil, 1, c, d, op, fs, vars, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !want.Equal(d, got) {
			t.Fatalf("round %d: cached scan diverged", round)
		}
	}
	if hits, _ := c.Counters(); hits == 0 {
		t.Fatal("warm rounds never hit the cache")
	}
}

// TestTrieCacheUpdateInvalidates: swapping a factor for its successor must
// drop every entry derived from the old data — its tries AND the tries of
// projections built from it — and serve the successor's data afterwards.
func TestTrieCacheUpdateInvalidates(t *testing.T) {
	d := semiring.Float()
	rng := rand.New(rand.NewSource(21))
	old := randomFactor(rng, d, []int{0, 1, 2}, 6, 40)
	c := NewTrieCache([]*factor.Factor[float64]{old})
	pos := map[int]int{0: 0, 1: 1, 2: 2}

	t1, err := c.trieFor(old, pos)
	if err != nil {
		t.Fatal(err)
	}
	p1 := c.Projection(d, old, []int{0, 1})
	if _, err := c.trieFor(p1, map[int]int{0: 0, 1: 1}); err != nil {
		t.Fatal(err)
	}
	next := randomFactor(rng, d, []int{0, 1, 2}, 6, 40)
	c.Update(old, next, 0, 6)
	s := c.Stats()
	if s.Invalidations == 0 {
		t.Fatal("Update recorded no invalidations")
	}
	if s.Entries != 0 {
		t.Fatalf("entries survived the update: %d (the projection cascade leaked)", s.Entries)
	}
	// The old pointer is deregistered: rebuilt fresh, never stored.
	u1, _ := c.trieFor(old, pos)
	u2, _ := c.trieFor(old, pos)
	if u1 == t1 || u1 == u2 {
		t.Fatal("stale entry served for the replaced factor")
	}
	// The successor memoizes like any registered factor.
	n1, _ := c.trieFor(next, pos)
	n2, _ := c.trieFor(next, pos)
	if n1 != n2 {
		t.Fatal("updated factor does not memoize")
	}
}

// TestTrieCacheUpdateCycleBumpsVersion: an update cycle that returns to a
// pointer the cache still holds (old → new → old) must not serve entries
// built before the swap-out, even though the pointer is identical.
func TestTrieCacheUpdateCycleBumpsVersion(t *testing.T) {
	d := semiring.Float()
	rng := rand.New(rand.NewSource(22))
	a := randomFactor(rng, d, []int{0, 1}, 8, 30)
	b := randomFactor(rng, d, []int{0, 1}, 8, 30)
	c := NewTrieCache([]*factor.Factor[float64]{a})
	pos := map[int]int{0: 0, 1: 1}

	ta1, _ := c.trieFor(a, pos)
	c.Update(a, b, 0, 8)
	c.Register(a) // the same pointer re-enters (e.g. a rolled-back state)
	ta2, _ := c.trieFor(a, pos)
	ta3, _ := c.trieFor(a, pos)
	if ta2 != ta3 {
		t.Fatal("re-registered factor does not memoize")
	}
	_ = ta1 // the old trie object may legitimately equal a rebuild bit-wise

	// And updating INTO a still-registered pointer bumps its version: the
	// memoized trie from before the update may not be served after it.
	c.Update(b, a, 0, 8)
	ta4, _ := c.trieFor(a, pos)
	if ta4 == ta2 {
		t.Fatal("entry built before the update survived an update onto the same pointer")
	}
}

// TestTrieCacheEvictionOrdering: with a hard entry cap, the least recently
// used entry goes first, and touching an entry protects it.
func TestTrieCacheEvictionOrdering(t *testing.T) {
	d := semiring.Float()
	rng := rand.New(rand.NewSource(23))
	var fs []*factor.Factor[float64]
	for i := 0; i < 3; i++ {
		fs = append(fs, randomFactor(rng, d, []int{0, 1}, 8, 30))
	}
	c := NewTrieCache(fs)
	c.SetLimits(DefaultTrieCacheFactors, 2)
	pos := map[int]int{0: 0, 1: 1}

	t0, _ := c.trieFor(fs[0], pos) // entries: {0}
	t1, _ := c.trieFor(fs[1], pos) // entries: {1, 0}
	r0, _ := c.trieFor(fs[0], pos) // touch 0 → {0, 1}
	if r0 != t0 {
		t.Fatal("entry evicted below the cap")
	}
	if _, err := c.trieFor(fs[2], pos); err != nil { // evicts 1, the LRU
		t.Fatal(err)
	}
	if got := c.Stats(); got.Evictions == 0 || got.Entries != 2 {
		t.Fatalf("stats after eviction: %+v", got)
	}
	r1, _ := c.trieFor(fs[1], pos) // must rebuild: it was the victim
	if r1 == t1 {
		t.Fatal("LRU victim was still served")
	}
	r0b, _ := c.trieFor(fs[0], pos)
	if r0b == t0 {
		// 0 was most recent before 2 arrived, then 1's rebuild evicted it —
		// order must be 2,1 now, so 0 rebuilds too.  If it didn't, eviction
		// ignored recency.
		t.Fatal("eviction did not follow LRU order")
	}
}

// TestTrieCacheFactorCapExpelsOldest: the registered-factor LRU expels the
// least recently registered factor, taking its entries with it.
func TestTrieCacheFactorCapExpelsOldest(t *testing.T) {
	d := semiring.Float()
	rng := rand.New(rand.NewSource(24))
	var fs []*factor.Factor[float64]
	for i := 0; i < 3; i++ {
		fs = append(fs, randomFactor(rng, d, []int{0, 1}, 8, 30))
	}
	c := NewTrieCache[float64](nil)
	c.SetLimits(2, DefaultTrieCacheEntries)
	pos := map[int]int{0: 0, 1: 1}

	c.Register(fs[0], fs[1])
	t0, _ := c.trieFor(fs[0], pos)
	c.Register(fs[0]) // refresh 0's recency; 1 is now the expulsion victim
	c.Register(fs[2]) // expels 1
	u1a, _ := c.trieFor(fs[1], pos)
	u1b, _ := c.trieFor(fs[1], pos)
	if u1a == u1b {
		t.Fatal("expelled factor still memoizes")
	}
	r0, _ := c.trieFor(fs[0], pos)
	if r0 != t0 {
		t.Fatal("recency-refreshed factor lost its entry")
	}
	if got := c.Stats(); got.Factors != 2 {
		t.Fatalf("registered factors after expulsion: %d, want 2", got.Factors)
	}
}
