package join

import (
	"math/rand"
	"testing"

	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/semiring"
)

func TestTrieCacheMemoizesRegisteredFactors(t *testing.T) {
	d := semiring.Float()
	rng := rand.New(rand.NewSource(11))
	f := randomFactor(rng, d, []int{0, 1}, 8, 30)
	g := randomFactor(rng, d, []int{0, 1}, 8, 30) // not registered
	c := NewTrieCache([]*factor.Factor[float64]{f})
	pos := map[int]int{0: 0, 1: 1}

	t1, err := c.trieFor(f, pos)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := c.trieFor(f, pos)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Fatal("registered factor rebuilt its trie on the second call")
	}
	// A different column order is a distinct entry, also memoized.
	rev := map[int]int{0: 1, 1: 0}
	r1, _ := c.trieFor(f, rev)
	r2, _ := c.trieFor(f, rev)
	if r1 == t1 || r1 != r2 {
		t.Fatal("per-order memoization broken")
	}
	// Unregistered factors always build fresh and are never stored.
	u1, _ := c.trieFor(g, pos)
	u2, _ := c.trieFor(g, pos)
	if u1 == u2 {
		t.Fatal("unregistered factor was cached")
	}
	hits, misses := c.Counters()
	if hits != 2 || misses < 2 {
		t.Fatalf("counters hits=%d misses=%d, want 2 hits", hits, misses)
	}
}

func TestTrieCacheProjectionIdentityIsStable(t *testing.T) {
	d := semiring.Float()
	f := randomFactor(rand.New(rand.NewSource(12)), d, []int{0, 1, 2}, 6, 40)
	c := NewTrieCache([]*factor.Factor[float64]{f})

	p1 := c.Projection(d, f, []int{0, 1})
	p2 := c.Projection(d, f, []int{0, 1})
	if p1 != p2 {
		t.Fatal("projection identity changed between calls: its trie could never cache")
	}
	if !p1.Equal(d, f.IndicatorProjection(d, []int{0, 1})) {
		t.Fatal("cached projection differs from a fresh one")
	}
	// The cached projection is itself registered: its trie memoizes too.
	pos := map[int]int{0: 0, 1: 1}
	t1, _ := c.trieFor(p1, pos)
	t2, _ := c.trieFor(p1, pos)
	if t1 != t2 {
		t.Fatal("projection trie not memoized")
	}
	// Projections of unregistered factors are computed but not stored.
	g := randomFactor(rand.New(rand.NewSource(13)), d, []int{0, 1, 2}, 6, 40)
	if c.Projection(d, g, []int{0, 1}) == c.Projection(d, g, []int{0, 1}) {
		t.Fatal("unregistered projection was cached")
	}
}

func TestNilTrieCacheBuildsFresh(t *testing.T) {
	d := semiring.Float()
	f := randomFactor(rand.New(rand.NewSource(14)), d, []int{0, 1}, 8, 20)
	var c *TrieCache[float64]
	if _, err := c.trieFor(f, map[int]int{0: 0, 1: 1}); err != nil {
		t.Fatal(err)
	}
	if got := c.Projection(d, f, []int{0}); got == nil {
		t.Fatal("nil cache projection")
	}
	if h, m := c.Counters(); h != 0 || m != 0 {
		t.Fatal("nil cache counted something")
	}
}

// TestCachedScanMatchesUncached asserts the end-to-end invariant the engine
// relies on: the same elimination run answered through a warm cache is
// bit-identical to a cold build.
func TestCachedScanMatchesUncached(t *testing.T) {
	d := semiring.Float()
	op := semiring.OpFloatSum()
	rng := rand.New(rand.NewSource(15))
	fs := []*factor.Factor[float64]{
		randomFactor(rng, d, []int{0, 1}, 10, 50),
		randomFactor(rng, d, []int{1, 2}, 10, 50),
		randomFactor(rng, d, []int{0, 2}, 10, 50),
	}
	vars := []int{2, 0, 1}
	want, err := EliminateInnermost(d, op, fs, vars, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := NewTrieCache(fs)
	for round := 0; round < 3; round++ {
		got, err := EliminateInnermostOn(nil, nil, 1, c, d, op, fs, vars, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !want.Equal(d, got) {
			t.Fatalf("round %d: cached scan diverged", round)
		}
	}
	if hits, _ := c.Counters(); hits == 0 {
		t.Fatal("warm rounds never hit the cache")
	}
}
