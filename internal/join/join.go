// Package join implements OutsideIn (Section 5.1.1 of the paper): a
// backtracking-search evaluation of a multiway join of listing-representation
// factors, in the style of worst-case-optimal join algorithms (generic
// join / LeapFrog TrieJoin).  Variables are bound outermost-first; at each
// level the candidate values are the intersection of the children of every
// factor trie constraining the variable, enumerated from the smallest such
// set.  On AGM-tight instances the number of explored partial assignments is
// within the fractional-edge-cover bound of Theorem 5.1.
package join

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/semiring"
)

// Stats accumulates instrumentation counters for benchmark harnesses.
type Stats struct {
	Probes     int64 // candidate membership probes
	Emitted    int64 // tuples emitted (before aggregation)
	Multiplies int64
}

// Merge atomically folds t into s.  Block-parallel scans give every worker a
// private Stats and merge once per block, so parallel runs report the same
// true totals a sequential run would.  A nil receiver or argument is a no-op.
func (s *Stats) Merge(t *Stats) {
	if s == nil || t == nil {
		return
	}
	atomic.AddInt64(&s.Probes, t.Probes)
	atomic.AddInt64(&s.Emitted, t.Emitted)
	atomic.AddInt64(&s.Multiplies, t.Multiplies)
}

type node[V any] struct {
	children map[int]*node[V]
	keys     []int // sorted child keys
	value    V     // meaningful at leaves only
}

func (n *node[V]) child(key int) *node[V] {
	if n.children == nil {
		return nil
	}
	return n.children[key]
}

// trie is a factor re-keyed along the global variable order.
type trie[V any] struct {
	vars []int // factor vars sorted by global position
	root *node[V]
}

func buildTrie[V any](d *semiring.Domain[V], f *factor.Factor[V], pos map[int]int) (*trie[V], error) {
	order := make([]int, len(f.Vars)) // positions within f.Vars, sorted by global order
	for i := range order {
		order[i] = i
	}
	for _, v := range f.Vars {
		if _, ok := pos[v]; !ok {
			return nil, fmt.Errorf("join: factor over %v mentions variable %d outside the join order", f.Vars, v)
		}
	}
	sort.Slice(order, func(a, b int) bool { return pos[f.Vars[order[a]]] < pos[f.Vars[order[b]]] })
	t := &trie[V]{root: &node[V]{}}
	for _, i := range order {
		t.vars = append(t.vars, f.Vars[i])
	}
	for r, tup := range f.Tuples {
		cur := t.root
		for _, i := range order {
			key := tup[i]
			if cur.children == nil {
				cur.children = map[int]*node[V]{}
			}
			next := cur.children[key]
			if next == nil {
				next = &node[V]{}
				cur.children[key] = next
				cur.keys = append(cur.keys, key)
			}
			cur = next
		}
		cur.value = f.Values[r]
	}
	sortKeys(t.root)
	return t, nil
}

func sortKeys[V any](n *node[V]) {
	sort.Ints(n.keys)
	for _, c := range n.children {
		sortKeys(c)
	}
}

// Runner evaluates a join of factors over an explicit variable order.
type Runner[V any] struct {
	D     *semiring.Domain[V]
	Vars  []int
	Stats *Stats

	tries     []*trie[V]
	consumers [][]int // per depth: indices of tries consuming this variable
	finishers [][]int // per depth: tries whose last variable is this depth
	cursors   [][]*node[V]
	tuple     []int
	constProd V    // product of nullary factor values
	empty     bool // some factor is identically zero

	// Block restriction (see parallel.go): when topKeys is non-nil the
	// outermost variable enumerates exactly these candidate keys from trie
	// topLead instead of picking a lead dynamically.  Key blocks partition
	// the scan into disjoint, independently runnable key ranges.
	topLead int
	topKeys []int
}

// NewRunner prepares a join of the given factors over vars (outermost
// first).  Every variable of every factor must occur in vars, and every
// variable of vars must occur in at least one factor (otherwise its
// candidate set would be unconstrained).
func NewRunner[V any](d *semiring.Domain[V], factors []*factor.Factor[V], vars []int) (*Runner[V], error) {
	return newRunner(nil, nil, 1, d, factors, vars)
}

// newRunner is NewRunner with trie construction fanned out over the worker
// pool — factor tries are independent, so building them concurrently is
// deterministic.  A nil pool builds inline.
func newRunner[V any](ctx context.Context, pool *Pool, limit int,
	d *semiring.Domain[V], factors []*factor.Factor[V], vars []int) (*Runner[V], error) {
	pos := make(map[int]int, len(vars))
	for i, v := range vars {
		if _, dup := pos[v]; dup {
			return nil, fmt.Errorf("join: duplicate variable %d in order", v)
		}
		pos[v] = i
	}
	r := &Runner[V]{D: d, Vars: vars, constProd: d.One}
	var positive []*factor.Factor[V]
	for _, f := range factors {
		if f.Arity() == 0 {
			// Nullary factors contribute a constant multiplier; an empty one
			// is the constant 0 and annihilates the whole join.
			if f.Size() == 0 {
				r.empty = true
			} else {
				r.constProd = d.Mul(r.constProd, f.Values[0])
			}
			continue
		}
		positive = append(positive, f)
	}
	tries := make([]*trie[V], len(positive))
	errs := make([]error, len(positive))
	if err := pool.Run(ctx, len(positive), limit, func(i int) {
		tries[i], errs[i] = buildTrie(d, positive[i], pos)
	}); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	r.tries = tries
	r.consumers = make([][]int, len(vars))
	r.finishers = make([][]int, len(vars))
	for ti, t := range r.tries {
		for j, v := range t.vars {
			depth := pos[v]
			r.consumers[depth] = append(r.consumers[depth], ti)
			if j == len(t.vars)-1 {
				r.finishers[depth] = append(r.finishers[depth], ti)
			}
		}
	}
	for depth, c := range r.consumers {
		if len(c) == 0 {
			return nil, fmt.Errorf("join: variable %d is constrained by no factor", vars[depth])
		}
	}
	r.cursors = make([][]*node[V], len(r.tries))
	for i, t := range r.tries {
		r.cursors[i] = make([]*node[V], len(t.vars)+1)
		r.cursors[i][0] = t.root
	}
	r.tuple = make([]int, len(vars))
	return r, nil
}

// Run enumerates every assignment to Vars supported by all factors, calling
// emit with the assignment (aligned with Vars; the slice is reused between
// calls) and the ⊗-product of the factor values.  Assignments are emitted
// in lexicographic order of the tuple.
func (r *Runner[V]) Run(emit func(tuple []int, val V)) {
	if r.empty || r.D.IsZero(r.constProd) {
		return
	}
	r.search(0, r.constProd, emit)
}

func (r *Runner[V]) search(depth int, prod V, emit func([]int, V)) {
	if depth == len(r.Vars) {
		if r.Stats != nil {
			r.Stats.Emitted++
		}
		emit(r.tuple, prod)
		return
	}
	cons := r.consumers[depth]
	// Pick the consumer with the fewest candidates and probe the others.
	lead := cons[0]
	leadNode := r.cursorOf(lead)
	for _, ti := range cons[1:] {
		if n := r.cursorOf(ti); len(n.keys) < len(leadNode.keys) {
			lead, leadNode = ti, n
		}
	}
	keys := leadNode.keys
	if depth == 0 && r.topKeys != nil {
		lead = r.topLead
		keys = r.topKeys
	}
	for _, key := range keys {
		ok := true
		for _, ti := range cons {
			if ti == lead {
				continue
			}
			if r.Stats != nil {
				r.Stats.Probes++
			}
			if r.cursorOf(ti).child(key) == nil {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		// Descend all consumers.
		for _, ti := range cons {
			cur := r.cursorOf(ti)
			r.setCursor(ti, cur.child(key))
		}
		p := prod
		zero := false
		for _, ti := range r.finishers[depth] {
			leaf := r.cursorOf(ti)
			p = r.D.Mul(p, leaf.value)
			if r.Stats != nil {
				r.Stats.Multiplies++
			}
			if r.D.IsZero(p) {
				zero = true
				break
			}
		}
		if !zero {
			r.tuple[depth] = key
			r.search(depth+1, p, emit)
		}
		// Ascend.
		for _, ti := range cons {
			r.popCursor(ti)
		}
	}
}

// cursor bookkeeping: cursors[i] is a stack whose top is the deepest
// non-nil node; descending fills the first nil slot, ascending clears the
// last non-nil one.
func (r *Runner[V]) cursorOf(ti int) *node[V] {
	stack := r.cursors[ti]
	for d := len(stack) - 1; d >= 0; d-- {
		if stack[d] != nil {
			return stack[d]
		}
	}
	return nil
}

func (r *Runner[V]) setCursor(ti int, n *node[V]) {
	stack := r.cursors[ti]
	for d := 1; d < len(stack); d++ {
		if stack[d] == nil {
			stack[d] = n
			return
		}
	}
}

func (r *Runner[V]) popCursor(ti int) {
	stack := r.cursors[ti]
	for d := len(stack) - 1; d >= 1; d-- {
		if stack[d] != nil {
			stack[d] = nil
			return
		}
	}
}

// JoinAll materializes the join of factors over vars as a factor whose value
// at each tuple is the ⊗-product of the inputs (the output phase of
// InsideOut, Eq. (12)).
func JoinAll[V any](d *semiring.Domain[V], factors []*factor.Factor[V], vars []int, stats *Stats) (*factor.Factor[V], error) {
	r, err := NewRunner(d, factors, vars)
	if err != nil {
		return nil, err
	}
	r.Stats = stats
	sortedVars := append([]int(nil), vars...)
	sort.Ints(sortedVars)
	perm := permutationTo(vars, sortedVars)
	tuples, values := scanListing(r, perm)
	return factor.New(d, sortedVars, tuples, values, nil)
}

// scanListing runs the prepared runner and collects one row per emitted
// assignment, columns permuted to sorted-variable order.
func scanListing[V any](r *Runner[V], perm []int) ([][]int, []V) {
	var tuples [][]int
	var values []V
	r.Run(func(tuple []int, val V) {
		t := make([]int, len(tuple))
		for i, p := range perm {
			t[i] = tuple[p]
		}
		tuples = append(tuples, t)
		values = append(values, val)
	})
	return tuples, values
}

// EliminateInnermost evaluates the FAQ-SS sub-instance of Eq. (7): it joins
// the factors over vars, aggregates the innermost (last) variable with ⊕ and
// returns the factor over vars[:len(vars)-1].  This is one variable-
// elimination step of InsideOut executed by OutsideIn.
func EliminateInnermost[V any](d *semiring.Domain[V], op *semiring.Op[V],
	factors []*factor.Factor[V], vars []int, stats *Stats) (*factor.Factor[V], error) {

	if len(vars) == 0 {
		return nil, fmt.Errorf("join: EliminateInnermost needs at least the eliminated variable")
	}
	r, err := NewRunner(d, factors, vars)
	if err != nil {
		return nil, err
	}
	r.Stats = stats
	outVars := vars[:len(vars)-1]
	sortedVars := append([]int(nil), outVars...)
	sort.Ints(sortedVars)
	perm := permutationTo(outVars, sortedVars)
	tuples, values := scanGrouped(d, op, r, perm)
	return factor.New(d, sortedVars, tuples, values, nil)
}

// scanGrouped runs the prepared runner, ⊕-aggregating the innermost variable
// over each group of assignments sharing a prefix.  The emitted prefixes
// arrive in lexicographic order, so groups are contiguous; output rows are
// permuted to sorted-variable order.
func scanGrouped[V any](d *semiring.Domain[V], op *semiring.Op[V], r *Runner[V], perm []int) ([][]int, []V) {
	var tuples [][]int
	var values []V
	var prefix []int
	var acc V
	havePrefix := false

	flush := func() {
		if !havePrefix || d.IsZero(acc) {
			return
		}
		t := make([]int, len(prefix))
		for i, p := range perm {
			t[i] = prefix[p]
		}
		tuples = append(tuples, t)
		values = append(values, acc)
	}
	r.Run(func(tuple []int, val V) {
		cur := tuple[:len(tuple)-1]
		if havePrefix && samePrefix(prefix, cur) {
			acc = op.Combine(acc, val)
			return
		}
		flush()
		prefix = append(prefix[:0], cur...)
		acc = val
		havePrefix = true
	})
	flush()
	return tuples, values
}

func samePrefix(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// permutationTo returns perm with to[i] = from[perm[i]].
func permutationTo(from, to []int) []int {
	at := map[int]int{}
	for i, v := range from {
		at[v] = i
	}
	perm := make([]int, len(to))
	for i, v := range to {
		perm[i] = at[v]
	}
	return perm
}
