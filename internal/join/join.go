// Package join implements OutsideIn (Section 5.1.1 of the paper): a
// backtracking-search evaluation of a multiway join of listing-representation
// factors, in the style of worst-case-optimal join algorithms (generic
// join / LeapFrog TrieJoin).  Variables are bound outermost-first; at each
// level the candidate values are the intersection of the children of every
// factor trie constraining the variable, enumerated from the smallest such
// set.  On AGM-tight instances the number of explored partial assignments is
// within the fractional-edge-cover bound of Theorem 5.1.
//
// Tries are flat CSR structures, not pointer trees: each level is a pair of
// parallel arrays — sorted child keys plus child-offset ranges into the next
// level — built in one O(n) pass from the factor's already-sorted row block
// (plus one re-sort when the join order permutes the factor's columns).
// Candidate intersection walks the lead trie's key range and locates each
// key in the other tries by galloping binary search, with a moving lower
// bound per trie so a whole range scan stays O(k log gap).
package join

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/semiring"
	"github.com/faqdb/faq/internal/sortx"
)

// Stats accumulates instrumentation counters for benchmark harnesses and
// the observability layer.
type Stats struct {
	Probes     int64 // candidate membership probes
	Emitted    int64 // tuples emitted (before aggregation)
	Multiplies int64
	Blocks     int64 // parallel scan blocks executed (0 for sequential scans)
	PoolWaitNS int64 // summed per-block wait from scan submission to block start

	ParallelScans int64 // scans split into parallel blocks
	BlockKeys     int64 // summed lead-keys-per-block choice, one term per parallel scan
	CacheSplits   int64 // parallel scans whose block count was cache-target sized
}

// Merge atomically folds t into s.  Block-parallel scans give every worker a
// private Stats and merge once per block, so parallel runs report the same
// true totals a sequential run would.  A nil receiver or argument is a no-op.
func (s *Stats) Merge(t *Stats) {
	if s == nil || t == nil {
		return
	}
	atomic.AddInt64(&s.Probes, t.Probes)
	atomic.AddInt64(&s.Emitted, t.Emitted)
	atomic.AddInt64(&s.Multiplies, t.Multiplies)
	atomic.AddInt64(&s.Blocks, t.Blocks)
	atomic.AddInt64(&s.PoolWaitNS, t.PoolWaitNS)
	atomic.AddInt64(&s.ParallelScans, t.ParallelScans)
	atomic.AddInt64(&s.BlockKeys, t.BlockKeys)
	atomic.AddInt64(&s.CacheSplits, t.CacheSplits)
}

// trieLevel is one depth of a CSR trie: keys holds every node's key at this
// level grouped by parent (each group sorted ascending), and start[i] is the
// offset of node i's first child in the NEXT level's keys — a node's
// children are next.keys[start[i]:start[i+1]].  The deepest level carries no
// start array; its node indices index the trie's values directly.
type trieLevel struct {
	keys  []int32
	start []int32 // len(keys)+1 on non-leaf levels, nil on the leaf level
}

// trie is a factor re-keyed along the global variable order, in CSR layout.
type trie[V any] struct {
	vars   []int // factor vars sorted by global position
	levels []trieLevel
	values []V // leaf values, one per row, in trie row order
}

// buildTrie flattens f into CSR form along the global order.  When the join
// order visits the factor's columns in their stored order the build is a
// single pass over the sorted row block; otherwise the rows are permuted and
// re-sorted first (rows stay unique under a column permutation, so the sort
// is a strict total order and the result deterministic).
func buildTrie[V any](f *factor.Factor[V], pos map[int]int) (*trie[V], error) {
	k := f.Arity()
	order := make([]int, k) // positions within f.Vars, sorted by global order
	for i := range order {
		order[i] = i
	}
	for _, v := range f.Vars {
		if _, ok := pos[v]; !ok {
			return nil, fmt.Errorf("join: factor over %v mentions variable %d outside the join order", f.Vars, v)
		}
	}
	sort.Slice(order, func(a, b int) bool { return pos[f.Vars[order[a]]] < pos[f.Vars[order[b]]] })
	t := &trie[V]{vars: make([]int, k), levels: make([]trieLevel, k)}
	identity := true
	for i, o := range order {
		t.vars[i] = f.Vars[o]
		if o != i {
			identity = false
		}
	}
	n := f.Size()
	rows := f.Rows()
	if identity {
		t.values = f.Values // shared read-only with the factor
		t.buildLevels(rows, k, n)
		return t, nil
	}
	// Permute columns into trie order, then re-sort the permuted block.
	perm := make([]int32, n*k)
	for r := 0; r < n; r++ {
		row := rows[r*k : r*k+k]
		for i, o := range order {
			perm[r*k+i] = row[o]
		}
	}
	rowOrder := sortRowOrder(perm, k, n)
	sorted := make([]int32, 0, n*k)
	t.values = make([]V, n)
	for i, o := range rowOrder {
		sorted = append(sorted, perm[o*k:o*k+k]...)
		t.values[i] = f.Values[o]
	}
	t.buildLevels(sorted, k, n)
	return t, nil
}

// sortRowOrder argsorts n rows of width k lexicographically via the shared
// packed-key radix kernel — arity-agnostic, so permuted builds at arity 3+
// no longer fall back to a per-compare column loop.  Rows here are unique
// (a column permutation of a unique block), so the unstable variant
// suffices; it also retires this function's old k<=2 comparator, which
// returned 1 for equal keys and so violated strict weak ordering on any
// input with duplicate rows.
func sortRowOrder(rows []int32, k, n int) []int {
	return sortx.Argsort(rows, k, n, false)
}

// buildLevels fills the CSR levels from a sorted unique row block in one
// pass: for each row, levels above the longest common prefix with the
// previous row get a new node, and each new node records where its children
// begin in the level below.
func (t *trie[V]) buildLevels(rows []int32, k, n int) {
	for r := 0; r < n; r++ {
		row := rows[r*k : r*k+k]
		c := 0
		if r > 0 {
			prev := rows[(r-1)*k : r*k]
			for c < k && row[c] == prev[c] {
				c++
			}
		}
		for d := c; d < k; d++ {
			if d+1 < k {
				t.levels[d].start = append(t.levels[d].start, int32(len(t.levels[d+1].keys)))
			}
			t.levels[d].keys = append(t.levels[d].keys, row[d])
		}
	}
	for d := 0; d+1 < k; d++ {
		t.levels[d].start = append(t.levels[d].start, int32(len(t.levels[d+1].keys)))
	}
}

// gallop returns the first index in keys[lo:hi) holding a value >= key
// (hi if none) and whether it is an exact match, by exponential probing from
// lo followed by binary search — O(log distance), so a monotone sequence of
// lookups over one range costs O(k log gap) instead of O(k log n).
func gallop(keys []int32, lo, hi int, key int32) (int, bool) {
	if lo >= hi || keys[hi-1] < key {
		return hi, false
	}
	bound := 1
	for lo+bound < hi && keys[lo+bound] < key {
		bound <<= 1
	}
	l, h := lo+bound>>1, lo+bound
	if h > hi {
		h = hi
	}
	for l < h {
		m := int(uint(l+h) >> 1)
		if keys[m] < key {
			l = m + 1
		} else {
			h = m
		}
	}
	return l, keys[l] == key
}

// Runner evaluates a join of factors over an explicit variable order.
type Runner[V any] struct {
	D     *semiring.Domain[V]
	Vars  []int
	Stats *Stats

	tries     []*trie[V]
	consumers [][]int // per depth: indices of tries consuming this variable
	finishers [][]int // per depth: tries whose last variable is this depth

	// Traversal state (per clone): depth[ti] is trie ti's local depth, and
	// node[ti][d] the node index bound at its local level d.
	depth []int
	node  [][]int32
	tuple []int
	// Per-global-depth scratch for the intersection loop, sized to the
	// consumer count so the recursive scan allocates nothing.
	scratch   []depthScratch
	constProd V    // product of nullary factor values
	empty     bool // some factor is identically zero

	// Block restriction (see parallel.go): when hasTop is set the outermost
	// variable enumerates exactly lead-trie candidates [topLo, topHi)
	// instead of picking a lead dynamically.  Index blocks partition the
	// scan into disjoint, independently runnable key ranges.
	topLead      int
	topLo, topHi int
	hasTop       bool
}

// depthScratch holds the per-consumer cursors of one depth's intersection.
type depthScratch struct {
	keys  [][]int32 // consumer's candidate key array
	lo    []int     // consumer's moving lower bound (galloping resume point)
	hi    []int     // consumer's candidate range end
	found []int     // matched node index per consumer
}

// NewRunner prepares a join of the given factors over vars (outermost
// first).  Every variable of every factor must occur in vars, and every
// variable of vars must occur in at least one factor (otherwise its
// candidate set would be unconstrained).
func NewRunner[V any](d *semiring.Domain[V], factors []*factor.Factor[V], vars []int) (*Runner[V], error) {
	return newRunner(nil, nil, 1, nil, d, factors, vars)
}

// newRunner is NewRunner with trie construction fanned out over the worker
// pool — factor tries are independent, so building them concurrently is
// deterministic — and answered from the trie cache where possible.  A nil
// pool builds inline; a nil cache always builds.
func newRunner[V any](ctx context.Context, pool *Pool, limit int, cache *TrieCache[V],
	d *semiring.Domain[V], factors []*factor.Factor[V], vars []int) (*Runner[V], error) {
	pos := make(map[int]int, len(vars))
	for i, v := range vars {
		if _, dup := pos[v]; dup {
			return nil, fmt.Errorf("join: duplicate variable %d in order", v)
		}
		pos[v] = i
	}
	r := &Runner[V]{D: d, Vars: vars, constProd: d.One}
	var positive []*factor.Factor[V]
	for _, f := range factors {
		if f.Arity() == 0 {
			// Nullary factors contribute a constant multiplier; an empty one
			// is the constant 0 and annihilates the whole join.
			if f.Size() == 0 {
				r.empty = true
			} else {
				r.constProd = d.Mul(r.constProd, f.Values[0])
			}
			continue
		}
		positive = append(positive, f)
	}
	tries := make([]*trie[V], len(positive))
	errs := make([]error, len(positive))
	if err := pool.Run(ctx, len(positive), limit, func(i int) {
		tries[i], errs[i] = cache.trieFor(positive[i], pos)
	}); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	r.tries = tries
	r.consumers = make([][]int, len(vars))
	r.finishers = make([][]int, len(vars))
	for ti, t := range r.tries {
		for j, v := range t.vars {
			depth := pos[v]
			r.consumers[depth] = append(r.consumers[depth], ti)
			if j == len(t.vars)-1 {
				r.finishers[depth] = append(r.finishers[depth], ti)
			}
		}
	}
	for depth, c := range r.consumers {
		if len(c) == 0 {
			return nil, fmt.Errorf("join: variable %d is constrained by no factor", vars[depth])
		}
	}
	r.initTraversal()
	return r, nil
}

// initTraversal allocates the per-clone traversal state.
func (r *Runner[V]) initTraversal() {
	r.depth = make([]int, len(r.tries))
	r.node = make([][]int32, len(r.tries))
	for i, t := range r.tries {
		r.node[i] = make([]int32, len(t.vars))
	}
	r.tuple = make([]int, len(r.Vars))
	r.scratch = make([]depthScratch, len(r.Vars))
	for d, cons := range r.consumers {
		n := len(cons)
		r.scratch[d] = depthScratch{
			keys:  make([][]int32, n),
			lo:    make([]int, n),
			hi:    make([]int, n),
			found: make([]int, n),
		}
	}
}

// childRange returns trie ti's candidate node range at its current local
// depth: the whole first level at the root, else the CSR child range of the
// node bound one level up.
func (r *Runner[V]) childRange(ti int) (keys []int32, lo, hi int) {
	t := r.tries[ti]
	d := r.depth[ti]
	keys = t.levels[d].keys
	if d == 0 {
		return keys, 0, len(keys)
	}
	up := t.levels[d-1]
	p := r.node[ti][d-1]
	return keys, int(up.start[p]), int(up.start[p+1])
}

// Run enumerates every assignment to Vars supported by all factors, calling
// emit with the assignment (aligned with Vars; the slice is reused between
// calls) and the ⊗-product of the factor values.  Assignments are emitted
// in lexicographic order of the tuple.
func (r *Runner[V]) Run(emit func(tuple []int, val V)) {
	if r.empty || r.D.IsZero(r.constProd) {
		return
	}
	r.search(0, r.constProd, emit)
}

func (r *Runner[V]) search(depth int, prod V, emit func([]int, V)) {
	if depth == len(r.Vars) {
		if r.Stats != nil {
			r.Stats.Emitted++
		}
		emit(r.tuple, prod)
		return
	}
	cons := r.consumers[depth]
	sc := &r.scratch[depth]
	// Pick the consumer with the fewest candidates and probe the others.
	lead := 0
	for ci, ti := range cons {
		keys, lo, hi := r.childRange(ti)
		sc.keys[ci], sc.lo[ci], sc.hi[ci] = keys, lo, hi
		if hi-lo < sc.hi[lead]-sc.lo[lead] {
			lead = ci
		}
	}
	if depth == 0 && r.hasTop {
		for ci, ti := range cons {
			if ti == r.topLead {
				lead = ci
				sc.lo[ci], sc.hi[ci] = r.topLo, r.topHi
			}
		}
	}
	leadKeys := sc.keys[lead]
	for p := sc.lo[lead]; p < sc.hi[lead]; p++ {
		key := leadKeys[p]
		ok := true
		for ci := range cons {
			if ci == lead {
				sc.found[ci] = p
				continue
			}
			if r.Stats != nil {
				r.Stats.Probes++
			}
			at, exact := gallop(sc.keys[ci], sc.lo[ci], sc.hi[ci], key)
			sc.lo[ci] = at // lead keys ascend, so the next probe resumes here
			if !exact {
				ok = false
				break
			}
			sc.found[ci] = at
		}
		if !ok {
			continue
		}
		// Descend all consumers.
		for ci, ti := range cons {
			r.node[ti][r.depth[ti]] = int32(sc.found[ci])
			r.depth[ti]++
		}
		pr := prod
		zero := false
		for _, ti := range r.finishers[depth] {
			t := r.tries[ti]
			leaf := r.node[ti][len(t.vars)-1]
			pr = r.D.Mul(pr, t.values[leaf])
			if r.Stats != nil {
				r.Stats.Multiplies++
			}
			if r.D.IsZero(pr) {
				zero = true
				break
			}
		}
		if !zero {
			r.tuple[depth] = int(key)
			r.search(depth+1, pr, emit)
		}
		// Ascend.
		for _, ti := range cons {
			r.depth[ti]--
		}
	}
}

// JoinAll materializes the join of factors over vars as a factor whose value
// at each tuple is the ⊗-product of the inputs (the output phase of
// InsideOut, Eq. (12)).
func JoinAll[V any](d *semiring.Domain[V], factors []*factor.Factor[V], vars []int, stats *Stats) (*factor.Factor[V], error) {
	return JoinAllOn(context.Background(), nil, 1, nil, d, factors, vars, stats)
}

// scanListing runs the prepared runner and collects one flat row per emitted
// assignment, columns permuted to sorted-variable order.
func scanListing[V any](r *Runner[V], perm []int) ([]int32, []V) {
	var rows []int32
	var values []V
	r.Run(func(tuple []int, val V) {
		for _, p := range perm {
			rows = append(rows, int32(tuple[p]))
		}
		values = append(values, val)
	})
	return rows, values
}

// EliminateInnermost evaluates the FAQ-SS sub-instance of Eq. (7): it joins
// the factors over vars, aggregates the innermost (last) variable with ⊕ and
// returns the factor over vars[:len(vars)-1].  This is one variable-
// elimination step of InsideOut executed by OutsideIn.
func EliminateInnermost[V any](d *semiring.Domain[V], op *semiring.Op[V],
	factors []*factor.Factor[V], vars []int, stats *Stats) (*factor.Factor[V], error) {

	return EliminateInnermostOn(context.Background(), nil, 1, nil, d, op, factors, vars, stats)
}

// scanGrouped runs the prepared runner, ⊕-aggregating the innermost variable
// over each group of assignments sharing a prefix.  The emitted prefixes
// arrive in lexicographic order, so groups are contiguous; output rows are
// permuted to sorted-variable order.
func scanGrouped[V any](d *semiring.Domain[V], op *semiring.Op[V], r *Runner[V], perm []int) ([]int32, []V) {
	var rows []int32
	var values []V
	var prefix []int
	var acc V
	havePrefix := false

	flush := func() {
		if !havePrefix || d.IsZero(acc) {
			return
		}
		for _, p := range perm {
			rows = append(rows, int32(prefix[p]))
		}
		values = append(values, acc)
	}
	r.Run(func(tuple []int, val V) {
		cur := tuple[:len(tuple)-1]
		if havePrefix && samePrefix(prefix, cur) {
			acc = op.Combine(acc, val)
			return
		}
		flush()
		prefix = append(prefix[:0], cur...)
		acc = val
		havePrefix = true
	})
	flush()
	return rows, values
}

func samePrefix(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// permutationTo returns perm with to[i] = from[perm[i]].
func permutationTo(from, to []int) []int {
	at := map[int]int{}
	for i, v := range from {
		at[v] = i
	}
	perm := make([]int, len(to))
	for i, v := range to {
		perm[i] = at[v]
	}
	return perm
}
