package join

import (
	"math/rand"
	"testing"

	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/semiring"
)

// forceBlocks lowers the parallel threshold so block scans engage on tiny
// instances, restoring it when the test ends.
func forceBlocks(t *testing.T) {
	old := MinParallelRows
	MinParallelRows = 1
	t.Cleanup(func() { MinParallelRows = old })
}

func randomFactor(rng *rand.Rand, d *semiring.Domain[float64], vars []int, dom, n int) *factor.Factor[float64] {
	var tuples [][]int
	var values []float64
	for i := 0; i < n; i++ {
		t := make([]int, len(vars))
		for j := range t {
			t[j] = rng.Intn(dom)
		}
		tuples = append(tuples, t)
		values = append(values, float64(1+rng.Intn(5)))
	}
	f, err := factor.New(d, vars, tuples, values, func(a, b float64) float64 { return a })
	if err != nil {
		panic(err)
	}
	return f
}

func TestEliminateInnermostParMatchesSequential(t *testing.T) {
	forceBlocks(t)
	d := semiring.Float()
	op := semiring.OpFloatSum()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		dom := 2 + rng.Intn(12)
		n := 1 + rng.Intn(60)
		fs := []*factor.Factor[float64]{
			randomFactor(rng, d, []int{0, 1}, dom, n),
			randomFactor(rng, d, []int{1, 2}, dom, n),
			randomFactor(rng, d, []int{0, 2}, dom, n),
		}
		vars := []int{0, 1, 2}
		var seqStats Stats
		want, err := EliminateInnermost(d, op, fs, vars, &seqStats)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8} {
			var parStats Stats
			got, err := EliminateInnermostPar(d, op, fs, vars, workers, &parStats)
			if err != nil {
				t.Fatal(err)
			}
			if !want.Equal(d, got) {
				t.Fatalf("trial %d workers %d: parallel elimination diverged:\n%v\n%v",
					trial, workers, want, got)
			}
			if workCounters(parStats) != workCounters(seqStats) {
				t.Fatalf("trial %d workers %d: stats diverged: %+v vs %+v",
					trial, workers, parStats, seqStats)
			}
		}
	}
}

func TestJoinAllParMatchesSequential(t *testing.T) {
	forceBlocks(t)
	d := semiring.Float()
	rng := rand.New(rand.NewSource(100))
	for trial := 0; trial < 40; trial++ {
		dom := 2 + rng.Intn(10)
		n := 1 + rng.Intn(50)
		fs := []*factor.Factor[float64]{
			randomFactor(rng, d, []int{0, 1}, dom, n),
			randomFactor(rng, d, []int{1, 2}, dom, n),
		}
		vars := []int{2, 0, 1} // deliberately non-sorted join order
		want, err := JoinAll(d, fs, vars, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := JoinAllPar(d, fs, vars, 4, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !want.Equal(d, got) {
			t.Fatalf("trial %d: parallel join diverged:\n%v\n%v", trial, want, got)
		}
	}
}

// TestEliminateInnermostParScalar checks the scalar-output fallback: a single
// join variable must aggregate sequentially regardless of worker count.
func TestEliminateInnermostParScalar(t *testing.T) {
	forceBlocks(t)
	d := semiring.Float()
	op := semiring.OpFloatSum()
	f := randomFactor(rand.New(rand.NewSource(7)), d, []int{0}, 64, 64)
	want, err := EliminateInnermost(d, op, []*factor.Factor[float64]{f}, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EliminateInnermostPar(d, op, []*factor.Factor[float64]{f}, []int{0}, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(d, got) {
		t.Fatalf("scalar elimination diverged: %v vs %v", want, got)
	}
}

func TestSplitRange(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 100} {
		for _, w := range []int{1, 2, 4, 13} {
			for _, footprint := range []int{0, BlockTargetBytes / 2, 100 * BlockTargetBytes} {
				blocks, cacheAware := splitRange(n, w, footprint)
				next := 0
				for _, b := range blocks {
					if b.Lo >= b.Hi {
						t.Fatalf("n=%d w=%d fp=%d: empty block %+v", n, w, footprint, b)
					}
					if b.Lo != next {
						t.Fatalf("n=%d w=%d fp=%d: gap or overlap at %d (block %+v)", n, w, footprint, next, b)
					}
					next = b.Hi
				}
				if next != n {
					t.Fatalf("n=%d w=%d fp=%d: blocks cover %d of %d indices", n, w, footprint, next, n)
				}
				if len(blocks) > w*maxBlocksPerWorker {
					t.Fatalf("n=%d w=%d fp=%d: %d blocks exceeds hard cap", n, w, footprint, len(blocks))
				}
				if !cacheAware && len(blocks) > w*blocksPerWorker {
					t.Fatalf("n=%d w=%d fp=%d: %d blocks exceeds floor without cache sizing", n, w, footprint, len(blocks))
				}
				if cacheAware && footprint <= w*blocksPerWorker*BlockTargetBytes {
					t.Fatalf("n=%d w=%d fp=%d: cache-aware split though floor blocks fit the target", n, w, footprint)
				}
			}
		}
	}
	// The cache target grows the count exactly when a floor block's share
	// of the footprint would overflow BlockTargetBytes.
	blocks, cacheAware := splitRange(1<<20, 2, 32*BlockTargetBytes)
	if !cacheAware || len(blocks) != 32 {
		t.Fatalf("footprint sizing: got %d blocks (cacheAware=%v), want 32 cache-aware", len(blocks), cacheAware)
	}
	blocks, cacheAware = splitRange(1<<20, 2, 1000*BlockTargetBytes)
	if !cacheAware || len(blocks) != 2*maxBlocksPerWorker {
		t.Fatalf("footprint cap: got %d blocks (cacheAware=%v), want %d", len(blocks), cacheAware, 2*maxBlocksPerWorker)
	}
}

// workCounters strips the scheduling-dependent fields so parallel stats can
// be compared against a sequential reference: Blocks and PoolWaitNS depend
// on how the pool split and scheduled the scan, not on the work done.
func workCounters(s Stats) Stats {
	s.Blocks, s.PoolWaitNS = 0, 0
	s.ParallelScans, s.BlockKeys, s.CacheSplits = 0, 0, 0
	return s
}
