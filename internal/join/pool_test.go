package join

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunCoversAllIndices(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	for _, n := range []int{0, 1, 7, 100} {
		hits := make([]int32, n)
		if err := pool.Run(context.Background(), n, 0, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		}); err != nil {
			t.Fatalf("Run(n=%d): %v", n, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d executed %d times", n, i, h)
			}
		}
	}
}

func TestPoolRunNilAndClosedFallBackInline(t *testing.T) {
	var ran int
	var nilPool *Pool
	if err := nilPool.Run(context.Background(), 5, 0, func(i int) { ran++ }); err != nil {
		t.Fatal(err)
	}
	if ran != 5 {
		t.Fatalf("nil pool ran %d of 5 tasks", ran)
	}

	pool := NewPool(4)
	pool.Close()
	pool.Close() // idempotent
	var closedRan atomic.Int32
	if err := pool.Run(context.Background(), 5, 0, func(i int) { closedRan.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if closedRan.Load() != 5 {
		t.Fatalf("closed pool ran %d of 5 tasks", closedRan.Load())
	}
}

func TestPoolRunCancellation(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int32
	err := pool.Run(ctx, 1000, 0, func(i int) {
		if i == 0 {
			cancel() // tasks after the in-flight ones must be skipped
			return
		}
		done.Add(1)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if n := done.Load(); n >= 999 {
		t.Fatalf("cancellation skipped nothing (%d/999 tasks ran)", n)
	}
}

func TestPoolRunLimitCapsConcurrency(t *testing.T) {
	pool := NewPool(8)
	defer pool.Close()
	var inFlight, peak atomic.Int32
	if err := pool.Run(context.Background(), 64, 2, func(i int) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
	}); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 2 {
		t.Fatalf("limit 2 exceeded: peak in-flight %d", p)
	}
}

func TestPoolCloseStopsWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	pool := NewPool(8)
	if err := pool.Run(context.Background(), 32, 0, func(int) {}); err != nil {
		t.Fatal(err)
	}
	pool.Close()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked after Close: %d -> %d", before, after)
	}
}

func TestPoolGrow(t *testing.T) {
	pool := NewPool(1)
	defer pool.Close()
	if pool.Size() != 1 {
		t.Fatalf("size = %d, want 1", pool.Size())
	}
	pool.Grow(4)
	if pool.Size() != 4 {
		t.Fatalf("size after Grow(4) = %d", pool.Size())
	}
	pool.Grow(2) // never shrinks
	if pool.Size() != 4 {
		t.Fatalf("size after Grow(2) = %d, want 4", pool.Size())
	}
	var ran atomic.Int32
	if err := pool.Run(context.Background(), 16, 0, func(int) { ran.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 16 {
		t.Fatalf("grown pool ran %d of 16", ran.Load())
	}
}
