package join

import (
	"math/rand"
	"testing"

	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/semiring"
)

var fd = semiring.Float()

func mkF(t testing.TB, vars []int, tuples [][]int, values []float64) *factor.Factor[float64] {
	t.Helper()
	f, err := factor.New(fd, vars, tuples, values, nil)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestTwoWayJoinMatchesBruteForce(t *testing.T) {
	r := mkF(t, []int{0, 1}, [][]int{{0, 0}, {0, 1}, {1, 1}}, []float64{2, 3, 5})
	s := mkF(t, []int{1, 2}, [][]int{{0, 0}, {1, 0}, {1, 1}}, []float64{7, 11, 13})
	out, err := JoinAll(fd, []*factor.Factor[float64]{r, s}, []int{0, 1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Expected: (0,0,0)→14, (0,1,0)→33, (0,1,1)→39, (1,1,0)→55, (1,1,1)→65.
	want := map[[3]int]float64{
		{0, 0, 0}: 14, {0, 1, 0}: 33, {0, 1, 1}: 39, {1, 1, 0}: 55, {1, 1, 1}: 65,
	}
	if out.Size() != len(want) {
		t.Fatalf("join size = %d, want %d", out.Size(), len(want))
	}
	for k, v := range want {
		if got, _ := out.Value(k[:]); got != v {
			t.Fatalf("join(%v) = %v, want %v", k, got, v)
		}
	}
}

func TestJoinOrderIndependence(t *testing.T) {
	r := mkF(t, []int{0, 1}, [][]int{{0, 0}, {1, 0}, {1, 1}}, []float64{1, 2, 3})
	s := mkF(t, []int{1, 2}, [][]int{{0, 1}, {1, 1}}, []float64{5, 7})
	a, err := JoinAll(fd, []*factor.Factor[float64]{r, s}, []int{0, 1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := JoinAll(fd, []*factor.Factor[float64]{r, s}, []int{2, 1, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(fd, b) {
		t.Fatalf("different orders disagree:\n%v\n%v", a, b)
	}
}

func TestTriangleJoin(t *testing.T) {
	// Complete bipartite-ish edge set on 3 values: count triangles.
	edges := [][]int{{0, 1}, {1, 2}, {0, 2}, {1, 0}, {2, 2}}
	vals := []float64{1, 1, 1, 1, 1}
	r := mkF(t, []int{0, 1}, edges, vals)
	s := mkF(t, []int{1, 2}, edges, vals)
	u := mkF(t, []int{0, 2}, edges, vals)
	out, err := JoinAll(fd, []*factor.Factor[float64]{r, s, u}, []int{0, 1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force.
	count := 0
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			for c := 0; c < 3; c++ {
				if r.ValueOrZero(fd, []int{a, b}) != 0 &&
					s.ValueOrZero(fd, []int{b, c}) != 0 &&
					u.ValueOrZero(fd, []int{a, c}) != 0 {
					count++
				}
			}
		}
	}
	if out.Size() != count {
		t.Fatalf("triangle join size = %d, brute force %d", out.Size(), count)
	}
}

func TestEmptyFactorEmptiesJoin(t *testing.T) {
	r := mkF(t, []int{0}, [][]int{{0}}, []float64{1})
	empty := mkF(t, []int{0}, nil, nil)
	out, err := JoinAll(fd, []*factor.Factor[float64]{r, empty}, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 0 {
		t.Fatalf("join with empty factor has %d rows", out.Size())
	}
}

func TestNullaryScalarMultiplies(t *testing.T) {
	r := mkF(t, []int{0}, [][]int{{0}, {1}}, []float64{2, 3})
	k := factor.Scalar(fd, 10.0)
	out, err := JoinAll(fd, []*factor.Factor[float64]{r, k}, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := out.Value([]int{1}); v != 30 {
		t.Fatalf("scaled value = %v, want 30", v)
	}
}

func TestNullaryZeroScalarEmptiesJoin(t *testing.T) {
	r := mkF(t, []int{0}, [][]int{{0}}, []float64{2})
	z := factor.Scalar(fd, 0.0)
	out, err := JoinAll(fd, []*factor.Factor[float64]{r, z}, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 0 {
		t.Fatal("zero scalar should annihilate the join")
	}
}

func TestRunnerValidation(t *testing.T) {
	r := mkF(t, []int{0, 1}, [][]int{{0, 0}}, []float64{1})
	if _, err := NewRunner(fd, []*factor.Factor[float64]{r}, []int{0}); err == nil {
		t.Fatal("factor variable outside order should fail")
	}
	if _, err := NewRunner(fd, []*factor.Factor[float64]{r}, []int{0, 1, 2}); err == nil {
		t.Fatal("unconstrained order variable should fail")
	}
	if _, err := NewRunner(fd, []*factor.Factor[float64]{r}, []int{0, 0}); err == nil {
		t.Fatal("duplicate order variable should fail")
	}
}

func TestEliminateInnermostMatchesMarginalize(t *testing.T) {
	r := mkF(t, []int{0, 1}, [][]int{{0, 0}, {0, 1}, {1, 0}}, []float64{2, 3, 5})
	s := mkF(t, []int{1}, [][]int{{0}, {1}}, []float64{10, 100})
	// Σ_{x1} r(x0,x1)·s(x1) — eliminate variable 1.
	got, err := EliminateInnermost(fd, semiring.OpFloatSum(),
		[]*factor.Factor[float64]{r, s}, []int{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Value([]int{0}); v != 2*10+3*100 {
		t.Fatalf("got(0) = %v, want 320", v)
	}
	if v, _ := got.Value([]int{1}); v != 50 {
		t.Fatalf("got(1) = %v, want 50", v)
	}
}

func TestEliminateInnermostToScalar(t *testing.T) {
	r := mkF(t, []int{3}, [][]int{{0}, {1}, {2}}, []float64{1, 2, 3})
	got, err := EliminateInnermost(fd, semiring.OpFloatSum(),
		[]*factor.Factor[float64]{r}, []int{3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Arity() != 0 || got.Size() != 1 {
		t.Fatalf("want scalar, got %v", got)
	}
	if v, _ := got.Value([]int{}); v != 6 {
		t.Fatalf("sum = %v, want 6", v)
	}
}

func TestEliminateInnermostMax(t *testing.T) {
	r := mkF(t, []int{0, 1}, [][]int{{0, 0}, {0, 1}, {1, 1}}, []float64{2, 7, 5})
	got, err := EliminateInnermost(fd, semiring.OpFloatMax(),
		[]*factor.Factor[float64]{r}, []int{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Value([]int{0}); v != 7 {
		t.Fatalf("max over x1 at x0=0: %v, want 7", v)
	}
}

func TestStatsPopulated(t *testing.T) {
	r := mkF(t, []int{0, 1}, [][]int{{0, 0}, {1, 1}}, []float64{1, 1})
	s := mkF(t, []int{1, 2}, [][]int{{0, 0}, {1, 0}}, []float64{1, 1})
	var st Stats
	if _, err := JoinAll(fd, []*factor.Factor[float64]{r, s}, []int{0, 1, 2}, &st); err != nil {
		t.Fatal(err)
	}
	if st.Emitted != 2 {
		t.Fatalf("emitted = %d, want 2", st.Emitted)
	}
	if st.Multiplies == 0 {
		t.Fatal("expected some multiplications")
	}
}

// Property: joins over random factors agree with brute-force evaluation of
// the product over the whole assignment box, under random variable orders.
func TestQuickJoinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(3) // variables
		dom := 1 + rng.Intn(3)
		nf := 1 + rng.Intn(3)
		var fs []*factor.Factor[float64]
		// Ensure coverage of all variables.
		covered := make([]bool, n)
		for len(fs) < nf || !allTrue(covered) {
			arity := 1 + rng.Intn(n)
			vars := rng.Perm(n)[:arity]
			sortInts(vars)
			var tuples [][]int
			var values []float64
			total := 1
			for range vars {
				total *= dom
			}
			for enc := 0; enc < total; enc++ {
				if rng.Intn(3) == 0 {
					continue
				}
				tup := make([]int, len(vars))
				e := enc
				for i := range tup {
					tup[i] = e % dom
					e /= dom
				}
				tuples = append(tuples, tup)
				values = append(values, float64(1+rng.Intn(4)))
			}
			f, err := factor.New(fd, vars, tuples, values, func(a, b float64) float64 { return a })
			if err != nil {
				t.Fatal(err)
			}
			fs = append(fs, f)
			for _, v := range vars {
				covered[v] = true
			}
		}
		order := rng.Perm(n)
		out, err := JoinAll(fd, fs, order, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force over the box.
		assignment := make([]int, n)
		var rec func(i int)
		rec = func(i int) {
			if i == n {
				prod := 1.0
				for _, f := range fs {
					prod *= f.At(fd, assignment)
				}
				sorted := make([]int, n)
				for v := 0; v < n; v++ {
					sorted[v] = assignment[v]
				}
				got := out.ValueOrZero(fd, sorted)
				if got != prod {
					t.Fatalf("trial %d: join(%v) = %v, brute force %v", trial, assignment, got, prod)
				}
				return
			}
			for x := 0; x < dom; x++ {
				assignment[i] = x
				rec(i + 1)
			}
		}
		rec(0)
	}
}

func allTrue(bs []bool) bool {
	for _, b := range bs {
		if !b {
			return false
		}
	}
	return true
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func BenchmarkTriangleJoinN256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 256
	var tuples [][]int
	var values []float64
	for i := 0; i < n; i++ {
		tuples = append(tuples, []int{rng.Intn(64), rng.Intn(64)})
		values = append(values, 1)
	}
	combine := func(a, b float64) float64 { return a }
	r, _ := factor.New(fd, []int{0, 1}, tuples, values, combine)
	s, _ := factor.New(fd, []int{1, 2}, tuples, values, combine)
	u, _ := factor.New(fd, []int{0, 2}, tuples, values, combine)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := JoinAll(fd, []*factor.Factor[float64]{r, s, u}, []int{0, 1, 2}, nil); err != nil {
			b.Fatal(err)
		}
	}
}
