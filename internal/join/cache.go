// TrieCache: versioned memoization of CSR tries and indicator projections
// for the prepare-once-run-many serving path.  Entries are keyed by factor
// identity plus the order/projection fingerprint and stamped with the
// factor's registration version; Update swaps a factor for its successor
// (the delta path of incremental maintenance), bumping the version and
// dropping every entry derived from the old data — so a cache entry can
// never serve stale rows even though factors now evolve in place at the
// engine level.  One cache is shared engine-wide across PreparedQuery
// instances: registration is explicit (Register/Update), unregistered
// factors — intermediates, one-shot fresh data — always build fresh and
// are never stored.  Both the registered-factor set and the entry set are
// LRU-bounded, so a long-lived engine serving many sessions cannot pin
// unbounded factor data through its cache.
package join

import (
	"container/list"
	"sync"

	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/semiring"
)

// Default LRU bounds of a TrieCache: the registered-factor cap bounds how
// much factor data the cache can pin, the entry cap bounds derived
// structures (tries + projections).
const (
	DefaultTrieCacheFactors = 1024
	DefaultTrieCacheEntries = 4096
)

// TrieCacheStats is a snapshot of one cache's counters: Hits/Misses count
// lookups of registered factors, Invalidations counts entries dropped
// because their factor was updated past them, Evictions counts entries
// dropped by the capacity bounds, and Entries/Factors are the current
// populations.
type TrieCacheStats struct {
	Hits, Misses, Invalidations, Evictions int64
	Entries, Factors                       int64
}

// TrieCache memoizes per-factor derived structures across runs.  All
// methods are safe for concurrent use and on a nil receiver (nil means
// "build fresh, cache nothing").
type TrieCache[V any] struct {
	mu         sync.Mutex
	maxFactors int
	maxEntries int
	version    map[*factor.Factor[V]]uint64
	regLRU     *list.List // *factor.Factor[V]; front = most recently registered
	regEl      map[*factor.Factor[V]]*list.Element
	lru        *list.List // *cacheEntry[V]; front = most recently used
	byKey      map[entryKey[V]]*list.Element

	hits, misses, invalidations, evictions int64
}

// entry kinds.
const (
	kindTrie byte = 't'
	kindProj byte = 'p'
)

type entryKey[V any] struct {
	f    *factor.Factor[V]
	kind byte
	fp   string // order fingerprint (tries) or onto fingerprint (projections)
}

type cacheEntry[V any] struct {
	key     entryKey[V]
	version uint64            // key.f's version when the entry was built
	val     any               // *trie[V] or *factor.Factor[V]
	derived *factor.Factor[V] // projections: the registered result factor
}

// NewTrieCache returns a cache with the given factors registered (nil is a
// valid, empty start — an engine-wide cache registers factors at Prepare).
func NewTrieCache[V any](factors []*factor.Factor[V]) *TrieCache[V] {
	c := &TrieCache[V]{
		maxFactors: DefaultTrieCacheFactors,
		maxEntries: DefaultTrieCacheEntries,
		version:    map[*factor.Factor[V]]uint64{},
		regLRU:     list.New(),
		regEl:      map[*factor.Factor[V]]*list.Element{},
		lru:        list.New(),
		byKey:      map[entryKey[V]]*list.Element{},
	}
	c.Register(factors...)
	return c
}

// Register admits factors for memoization (idempotent; nil factors are
// skipped).  Registration is LRU-bounded: admitting a factor past the cap
// expels the least recently registered one along with its entries.
func (c *TrieCache[V]) Register(factors ...*factor.Factor[V]) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, f := range factors {
		c.registerLocked(f)
	}
}

func (c *TrieCache[V]) registerLocked(f *factor.Factor[V]) {
	if f == nil {
		return
	}
	if el, ok := c.regEl[f]; ok {
		c.regLRU.MoveToFront(el)
		return
	}
	c.version[f] = 1
	c.regEl[f] = c.regLRU.PushFront(f)
	for c.maxFactors > 0 && c.regLRU.Len() > c.maxFactors {
		last := c.regLRU.Back()
		old := last.Value.(*factor.Factor[V])
		c.evictions += int64(c.dropFactorLocked(old))
	}
}

// Update replaces a registered factor with its successor: old's entries
// (and the entries of projections derived from it) are invalidated, and
// new is registered at the next version.  lo/hi report the lead-key range
// the underlying delta touched; invalidation is conservatively whole-factor
// — range granularity lives in the delta executor's per-block dirtiness,
// which re-runs only the blocks intersecting [lo, hi) — so the range here
// is documentation of intent, not a partial-drop instruction.  Updating an
// unregistered old simply registers new.
func (c *TrieCache[V]) Update(old, new *factor.Factor[V], lo, hi int32) {
	if c == nil {
		return
	}
	_, _ = lo, hi
	c.mu.Lock()
	defer c.mu.Unlock()
	next := uint64(1)
	if old != nil {
		if v, ok := c.version[old]; ok {
			next = v + 1
			c.invalidations += int64(c.dropFactorLocked(old))
		}
	}
	if new == nil {
		return
	}
	if el, ok := c.regEl[new]; ok {
		// Already registered (e.g. an update cycle returning to a held
		// factor): bump its version so entries built before the swap-out
		// cannot be served, and refresh its registration recency.
		c.invalidations += int64(c.dropFactorEntriesLocked(new))
		if c.version[new] < next {
			c.version[new] = next
		} else {
			c.version[new]++
		}
		c.regLRU.MoveToFront(el)
		return
	}
	c.version[new] = next
	c.regEl[new] = c.regLRU.PushFront(new)
}

// SetLimits reconfigures the LRU bounds (<= 0 restores the defaults) and
// evicts down to them immediately.
func (c *TrieCache[V]) SetLimits(maxFactors, maxEntries int) {
	if c == nil {
		return
	}
	if maxFactors <= 0 {
		maxFactors = DefaultTrieCacheFactors
	}
	if maxEntries <= 0 {
		maxEntries = DefaultTrieCacheEntries
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maxFactors, c.maxEntries = maxFactors, maxEntries
	for c.regLRU.Len() > c.maxFactors {
		c.evictions += int64(c.dropFactorLocked(c.regLRU.Back().Value.(*factor.Factor[V])))
	}
	c.evictEntriesLocked()
}

// dropFactorLocked deregisters f and removes every entry keyed by it,
// cascading through derived projections.  Returns the number of entries
// removed.
func (c *TrieCache[V]) dropFactorLocked(f *factor.Factor[V]) int {
	if el, ok := c.regEl[f]; ok {
		c.regLRU.Remove(el)
		delete(c.regEl, f)
	}
	delete(c.version, f)
	return c.dropFactorEntriesLocked(f)
}

// dropFactorEntriesLocked removes every entry keyed by f (leaving f's own
// registration alone), cascading through derived projections.
func (c *TrieCache[V]) dropFactorEntriesLocked(f *factor.Factor[V]) int {
	var keys []entryKey[V]
	for k := range c.byKey {
		if k.f == f {
			keys = append(keys, k)
		}
	}
	n := 0
	for _, k := range keys {
		n += c.removeKeyLocked(k)
	}
	return n
}

// removeKeyLocked removes one entry if still present, cascading: dropping
// a projection entry also drops the projection factor's registration and
// the tries built from it.  Returns the number of entries removed.
func (c *TrieCache[V]) removeKeyLocked(k entryKey[V]) int {
	el, ok := c.byKey[k]
	if !ok {
		return 0
	}
	e := el.Value.(*cacheEntry[V])
	c.lru.Remove(el)
	delete(c.byKey, k)
	n := 1
	if e.derived != nil {
		n += c.dropFactorLocked(e.derived)
	}
	return n
}

// insertLocked stores a fresh entry and evicts down to the entry cap.
func (c *TrieCache[V]) insertLocked(k entryKey[V], version uint64, val any, derived *factor.Factor[V]) {
	c.byKey[k] = c.lru.PushFront(&cacheEntry[V]{key: k, version: version, val: val, derived: derived})
	c.evictEntriesLocked()
}

func (c *TrieCache[V]) evictEntriesLocked() {
	for c.maxEntries > 0 && c.lru.Len() > c.maxEntries {
		last := c.lru.Back()
		if last == nil {
			return
		}
		c.evictions += int64(c.removeKeyLocked(last.Value.(*cacheEntry[V]).key))
	}
}

// varsKey fingerprints a variable sequence.
func varsKey(vars []int) string {
	b := make([]byte, 0, len(vars)*4)
	for _, v := range vars {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

// trieOrderKey fingerprints the column permutation a trie would use for f
// under the global position map — the positions within f.Vars sorted by
// global position, exactly the `order` slice buildTrie derives.  The trie's
// contents depend only on this relative permutation, so two join orders
// that visit the factor's columns the same way share one cached trie.
func trieOrderKey[V any](f *factor.Factor[V], pos map[int]int) string {
	order := make([]int, 0, len(f.Vars))
	for i := range f.Vars {
		if _, ok := pos[f.Vars[i]]; !ok {
			return "" // unknown variable: let buildTrie report the error
		}
		order = append(order, i)
	}
	// Insertion sort by global position: factor arities are tiny.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && pos[f.Vars[order[j]]] < pos[f.Vars[order[j-1]]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return varsKey(order)
}

// trieFor returns the CSR trie of f along pos, from the cache when f is a
// registered factor (or a cached projection of one) at an unchanged
// version.  Concurrent first builds may both construct; both results are
// identical and either may win the store.
func (c *TrieCache[V]) trieFor(f *factor.Factor[V], pos map[int]int) (*trie[V], error) {
	if c == nil {
		return buildTrie(f, pos)
	}
	c.mu.Lock()
	ver, registered := c.version[f]
	if !registered {
		// Intermediate factors are fresh every run — expected builds, not
		// cache misses, so they stay out of the counters.
		c.mu.Unlock()
		return buildTrie(f, pos)
	}
	key := entryKey[V]{f: f, kind: kindTrie, fp: trieOrderKey(f, pos)}
	if el, ok := c.byKey[key]; ok {
		e := el.Value.(*cacheEntry[V])
		if e.version == ver {
			c.hits++
			c.lru.MoveToFront(el)
			c.mu.Unlock()
			return e.val.(*trie[V]), nil
		}
		// Stale under a re-registered pointer: drop and rebuild.
		c.invalidations += int64(c.removeKeyLocked(key))
	}
	c.misses++
	c.mu.Unlock()

	t, err := buildTrie(f, pos) // build outside the lock
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if cur, ok := c.version[f]; ok && cur == ver {
		if _, exists := c.byKey[key]; !exists {
			c.insertLocked(key, ver, t, nil)
		}
	}
	c.mu.Unlock()
	return t, nil
}

// Projection returns the indicator projection of f onto the given variable
// set, memoized when f is a registered factor at an unchanged version.
// Cached projections are themselves registered, so their tries are
// cacheable in turn — on a warm cache a repeat Run performs no trie or
// projection builds at all.
func (c *TrieCache[V]) Projection(d *semiring.Domain[V], f *factor.Factor[V], onto []int) *factor.Factor[V] {
	if c == nil {
		return f.IndicatorProjection(d, onto)
	}
	c.mu.Lock()
	ver, registered := c.version[f]
	if !registered {
		c.mu.Unlock()
		return f.IndicatorProjection(d, onto)
	}
	key := entryKey[V]{f: f, kind: kindProj, fp: varsKey(onto)}
	if el, ok := c.byKey[key]; ok {
		e := el.Value.(*cacheEntry[V])
		if e.version == ver {
			c.hits++
			c.lru.MoveToFront(el)
			c.mu.Unlock()
			return e.val.(*factor.Factor[V])
		}
		c.invalidations += int64(c.removeKeyLocked(key))
	}
	c.misses++
	c.mu.Unlock()

	p := f.IndicatorProjection(d, onto)
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.version[f]; !ok || cur != ver {
		return p // factor moved on while we built: serve but do not store
	}
	if el, ok := c.byKey[key]; ok {
		// Lost a race: keep the stored copy so trie keys stay stable.
		return el.Value.(*cacheEntry[V]).val.(*factor.Factor[V])
	}
	c.registerLocked(p)
	c.insertLocked(key, ver, p, p)
	return p
}

// Counters returns (hits, misses), the legacy subset of Stats.
func (c *TrieCache[V]) Counters() (hits, misses int64) {
	s := c.Stats()
	return s.Hits, s.Misses
}

// Stats returns a snapshot of the cache's counters and populations.
func (c *TrieCache[V]) Stats() TrieCacheStats {
	if c == nil {
		return TrieCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return TrieCacheStats{
		Hits:          c.hits,
		Misses:        c.misses,
		Invalidations: c.invalidations,
		Evictions:     c.evictions,
		Entries:       int64(c.lru.Len()),
		Factors:       int64(c.regLRU.Len()),
	}
}
