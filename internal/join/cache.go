// TrieCache: memoized CSR tries and indicator projections for the
// prepare-once-run-many serving path.  A PreparedQuery's input factors are
// immutable by contract, so a trie built from a factor for one join order —
// and an indicator projection of a factor onto one variable set — is valid
// for every subsequent run.  The cache is keyed by factor identity (the
// pointer) plus the order/projection fingerprint, and only admits factors
// registered at construction time: intermediate factors are fresh pointers
// every run and must not pin memory, so they always miss and are never
// stored.  Fresh data swapped in through RunWithFactors arrives as new
// pointers too, which is the invalidation story — a cache entry can never
// serve stale rows because its key IS the data it was built from.
package join

import (
	"sync"

	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/semiring"
)

// TrieCache memoizes per-factor derived structures across runs of one
// prepared query.  All methods are safe for concurrent use and on a nil
// receiver (nil means "build fresh, cache nothing").
type TrieCache[V any] struct {
	mu      sync.Mutex
	allowed map[*factor.Factor[V]]bool
	tries   map[trieKey[V]]any // *trie[V]; any avoids instantiating twice
	projs   map[projKey[V]]*factor.Factor[V]
	hits    int64
	misses  int64
}

type trieKey[V any] struct {
	f     *factor.Factor[V]
	order string
}

type projKey[V any] struct {
	f    *factor.Factor[V]
	onto string
}

// NewTrieCache returns a cache that will memoize tries and projections for
// exactly the given factors (a prepared query's inputs) plus the projections
// derived from them.
func NewTrieCache[V any](factors []*factor.Factor[V]) *TrieCache[V] {
	c := &TrieCache[V]{
		allowed: make(map[*factor.Factor[V]]bool, len(factors)),
		tries:   map[trieKey[V]]any{},
		projs:   map[projKey[V]]*factor.Factor[V]{},
	}
	for _, f := range factors {
		c.allowed[f] = true
	}
	return c
}

// varsKey fingerprints a variable sequence.
func varsKey(vars []int) string {
	b := make([]byte, 0, len(vars)*4)
	for _, v := range vars {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

// trieOrderKey fingerprints the column permutation a trie would use for f
// under the global position map — the positions within f.Vars sorted by
// global position, exactly the `order` slice buildTrie derives.  The trie's
// contents depend only on this relative permutation, so two join orders
// that visit the factor's columns the same way share one cached trie.
func trieOrderKey[V any](f *factor.Factor[V], pos map[int]int) string {
	order := make([]int, 0, len(f.Vars))
	for i := range f.Vars {
		if _, ok := pos[f.Vars[i]]; !ok {
			return "" // unknown variable: let buildTrie report the error
		}
		order = append(order, i)
	}
	// Insertion sort by global position: factor arities are tiny.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && pos[f.Vars[order[j]]] < pos[f.Vars[order[j-1]]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return varsKey(order)
}

// trieFor returns the CSR trie of f along pos, from the cache when f is a
// registered factor (or a cached projection of one) and the trie was built
// before.  Concurrent first builds may both construct; both results are
// identical and either may win the store.
func (c *TrieCache[V]) trieFor(f *factor.Factor[V], pos map[int]int) (*trie[V], error) {
	if c == nil {
		return buildTrie(f, pos)
	}
	c.mu.Lock()
	if !c.allowed[f] {
		// Intermediate factors are fresh every run — expected builds, not
		// cache misses, so they stay out of the counters.
		c.mu.Unlock()
		return buildTrie(f, pos)
	}
	key := trieKey[V]{f: f, order: trieOrderKey(f, pos)}
	if t, ok := c.tries[key]; ok {
		c.hits++
		c.mu.Unlock()
		return t.(*trie[V]), nil
	}
	c.misses++
	c.mu.Unlock()

	t, err := buildTrie(f, pos) // build outside the lock
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.tries[key] = t
	c.mu.Unlock()
	return t, nil
}

// Projection returns the indicator projection of f onto the given variable
// set, memoized when f is a registered factor.  Cached projections are
// themselves registered, so their tries are cacheable in turn — on a warm
// cache a repeat Run performs no trie or projection builds at all.
func (c *TrieCache[V]) Projection(d *semiring.Domain[V], f *factor.Factor[V], onto []int) *factor.Factor[V] {
	if c == nil {
		return f.IndicatorProjection(d, onto)
	}
	c.mu.Lock()
	if !c.allowed[f] {
		c.mu.Unlock()
		return f.IndicatorProjection(d, onto)
	}
	key := projKey[V]{f: f, onto: varsKey(onto)}
	if p, ok := c.projs[key]; ok {
		c.hits++
		c.mu.Unlock()
		return p
	}
	c.misses++
	c.mu.Unlock()

	p := f.IndicatorProjection(d, onto)
	c.mu.Lock()
	if prev, ok := c.projs[key]; ok {
		p = prev // lost a race: keep the stored copy so trie keys stay stable
	} else {
		c.projs[key] = p
		c.allowed[p] = true
	}
	c.mu.Unlock()
	return p
}

// Counters returns (hits, misses) for tests and /statsz-style monitoring.
func (c *TrieCache[V]) Counters() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
