// Block-parallel OutsideIn: the backtracking scan of a multiway join is
// embarrassingly parallel across disjoint ranges of the outermost variable's
// candidate keys.  The CSR tries are built once and shared read-only; each
// block gets a Runner clone with fresh traversal state restricted to its
// index range of the lead trie's root level, and block outputs are
// concatenated in block order, which keeps results bit-identical to the
// sequential scan:
//
//   - every output group of EliminateInnermost includes the outermost
//     variable in its prefix, so no ⊕-group spans two blocks and each group
//     is combined in exactly the sequential order;
//   - JoinAll emits one independent row per assignment.
//
// Scans whose output is a scalar (single join variable) stay sequential:
// their ⊕-fold crosses block boundaries, and re-associating it could change
// floating-point results between worker counts.
//
// Block scans run on a persistent Pool (see pool.go): EliminateInnermostOn
// and JoinAllOn take the pool plus a per-call concurrency limit, a context
// checked at block boundaries, and the prepared query's trie cache (nil
// when there is none).  The legacy ...Par entry points wrap them with a
// transient pool for callers without an engine.
package join

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/semiring"
)

// MinParallelRows is the minimum total input size (Σ‖ψ‖ over the joined
// factors) before a scan is split into blocks; below it the goroutine and
// clone overhead dominates.  Tests may lower it to force block scans on
// tiny instances.
var MinParallelRows = 2048

// blocksPerWorker oversubscribes the pool so skewed key ranges (heavy-hitter
// values, as in the AGM-tight skew instances) keep all workers busy.
const blocksPerWorker = 4

// BlockTargetBytes is the cache-aware split target: when the prepared
// tries' resident footprint is known, the scan is split into enough blocks
// that each block's share of the footprint fits a mid-size L2 slice, so a
// block's working set stays cache-resident while it runs.  Exposed as a
// variable for tests and tuning.
var BlockTargetBytes = 256 << 10

// maxBlocksPerWorker caps cache-aware oversubscription: past this the
// per-block clone and merge overhead outweighs locality.
const maxBlocksPerWorker = 64

// Workers resolves a worker-count knob: values < 1 mean GOMAXPROCS.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ParallelFor runs fn(0), ..., fn(n-1) on a pool of up to `workers`
// goroutines pulling indices from a shared channel; workers <= 1 runs
// inline.  It spawns transient goroutines per call — the one-shot shape
// used by the parallel brute-force oracle and the parallel merge sort;
// engine scans go through Pool.Run instead.
func ParallelFor(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// clone shares the prepared read-only state (tries, consumer tables) and
// allocates fresh traversal state, so block scans can run concurrently.
func (r *Runner[V]) clone() *Runner[V] {
	c := &Runner[V]{
		D:         r.D,
		Vars:      r.Vars,
		tries:     r.tries,
		consumers: r.consumers,
		finishers: r.finishers,
		constProd: r.constProd,
		empty:     r.empty,
	}
	c.initTraversal()
	return c
}

// topPlan picks the depth-0 lead trie exactly as the sequential search would
// (fewest root keys, first wins ties) and returns its candidate key count.
func (r *Runner[V]) topPlan() (lead, n int) {
	cons := r.consumers[0]
	lead = cons[0]
	n = len(r.tries[lead].levels[0].keys)
	for _, ti := range cons[1:] {
		if k := len(r.tries[ti].levels[0].keys); k < n {
			lead, n = ti, k
		}
	}
	return lead, n
}

// blockRange is a contiguous index range [Lo, Hi) of the lead trie's root
// keys.
type blockRange struct{ Lo, Hi int }

// splitRange partitions n candidate indices into contiguous non-empty
// blocks.  The floor is workers×blocksPerWorker blocks (skew tolerance);
// when the scan's resident footprint is known (footprint > 0) and a floor
// block's share would overflow BlockTargetBytes, the count grows until
// each block's share fits — capped at workers×maxBlocksPerWorker so clone
// and merge overhead stays bounded.  The bool reports whether the
// footprint target (rather than the floor) chose the count.
func splitRange(n, workers, footprint int) ([]blockRange, bool) {
	nb := workers * blocksPerWorker
	cacheAware := false
	if footprint > 0 {
		if want := (footprint + BlockTargetBytes - 1) / BlockTargetBytes; want > nb {
			nb = want
			if cap := workers * maxBlocksPerWorker; nb > cap {
				nb = cap
			}
			cacheAware = true
		}
	}
	if nb > n {
		nb = n
	}
	out := make([]blockRange, 0, nb)
	for b := 0; b < nb; b++ {
		lo, hi := b*n/nb, (b+1)*n/nb
		if lo < hi {
			out = append(out, blockRange{Lo: lo, Hi: hi})
		}
	}
	return out, cacheAware
}

// footprintBytes estimates the resident bytes a block scan touches: every
// trie's CSR arrays plus its leaf values.  Shared across blocks, so it is
// the scan's footprint, and each block touches roughly its index share.
func (r *Runner[V]) footprintBytes() int {
	var v V
	vSize := int(unsafe.Sizeof(v))
	total := 0
	for _, t := range r.tries {
		for _, lv := range t.levels {
			total += 4 * (len(lv.keys) + len(lv.start))
		}
		total += vSize * len(t.values)
	}
	return total
}

// Process-wide split counters, mirrored to /statsz and /metrics: scans
// split into parallel blocks, how many of those were sized by the cache
// target rather than the worker floor, and the most recent lead-keys-per-
// block choice.
var (
	splitScans         atomic.Int64
	splitCacheAware    atomic.Int64
	splitLastBlockKeys atomic.Int64
)

// SplitStats returns the process-wide split counters: parallel scans run,
// scans whose block count was cache-target sized, and the last scan's
// lead keys per block.
func SplitStats() (scans, cacheAware, lastBlockKeys int64) {
	return splitScans.Load(), splitCacheAware.Load(), splitLastBlockKeys.Load()
}

// recordSplit notes one block-parallel scan in both the per-run Stats and
// the process-wide counters.
func recordSplit(stats *Stats, blocks []blockRange, n int, cacheAware bool) {
	perBlock := int64(n / len(blocks))
	splitScans.Add(1)
	splitLastBlockKeys.Store(perBlock)
	if cacheAware {
		splitCacheAware.Add(1)
	}
	if stats == nil {
		return
	}
	atomic.AddInt64(&stats.ParallelScans, 1)
	atomic.AddInt64(&stats.BlockKeys, perBlock)
	if cacheAware {
		atomic.AddInt64(&stats.CacheSplits, 1)
	}
}

func totalRows[V any](factors []*factor.Factor[V]) int {
	n := 0
	for _, f := range factors {
		n += f.Size()
	}
	return n
}

// runBlocks scans the blocks on the pool with at most `limit` in flight.
// scan is called with the block index and a Runner restricted to that block,
// wired to a private Stats that is merged into stats when the pool drains.
// On cancellation the remaining blocks are skipped and ctx.Err() returned;
// in-flight blocks finish first, so no goroutine outlives the call.
func runBlocks[V any](ctx context.Context, pool *Pool, limit int, r *Runner[V],
	lead int, blocks []blockRange, stats *Stats, scan func(block int, rc *Runner[V])) error {

	local := make([]Stats, len(blocks))
	submitted := time.Now()
	err := pool.Run(ctx, len(blocks), limit, func(b int) {
		rc := r.clone()
		rc.topLead = lead
		rc.topLo, rc.topHi = blocks[b].Lo, blocks[b].Hi
		rc.hasTop = true
		if stats != nil {
			rc.Stats = &local[b]
			rc.Stats.Blocks = 1
			rc.Stats.PoolWaitNS = int64(time.Since(submitted))
		}
		scan(b, rc)
	})
	for i := range local {
		stats.Merge(&local[i])
	}
	return err
}

// EliminateInnermostOn is EliminateInnermost on a persistent worker pool:
// the scan is partitioned into contiguous index blocks of the outermost join
// variable's candidates, blocks aggregate in parallel (at most `limit` in
// flight), and outputs merge in block order.  The result is bit-identical
// to the sequential scan for every pool size and limit; sub-scale instances
// and scalar-output steps fall back to the sequential path.  Trie builds and
// indicator projections hit `cache` when the caller has one.
func EliminateInnermostOn[V any](ctx context.Context, pool *Pool, limit int,
	cache *TrieCache[V], d *semiring.Domain[V], op *semiring.Op[V],
	factors []*factor.Factor[V], vars []int, stats *Stats) (*factor.Factor[V], error) {

	if len(vars) == 0 {
		return nil, fmt.Errorf("join: EliminateInnermost needs at least the eliminated variable")
	}
	width := poolWidth(pool, limit)
	r, err := newRunner(ctx, pool, limit, cache, d, factors, vars)
	if err != nil {
		return nil, err
	}
	outVars := vars[:len(vars)-1]
	sortedVars := append([]int(nil), outVars...)
	sort.Ints(sortedVars)
	perm := permutationTo(outVars, sortedVars)

	if len(vars) >= 2 && width > 1 && totalRows(factors) >= MinParallelRows {
		lead, n := r.topPlan()
		if blocks, cacheAware := splitRange(n, width, r.footprintBytes()); len(blocks) >= 2 {
			recordSplit(stats, blocks, n, cacheAware)
			type part struct {
				rows   []int32
				values []V
			}
			parts := make([]part, len(blocks))
			err = runBlocks(ctx, pool, limit, r, lead, blocks, stats, func(b int, rc *Runner[V]) {
				parts[b].rows, parts[b].values = scanGrouped(d, op, rc, perm)
			})
			if err != nil {
				return nil, err
			}
			var rows []int32
			var values []V
			for _, p := range parts {
				rows = append(rows, p.rows...)
				values = append(values, p.values...)
			}
			return factor.NewRows(d, sortedVars, rows, values, nil)
		}
	}
	r.Stats = stats
	rows, values := scanGrouped(d, op, r, perm)
	return factor.NewRows(d, sortedVars, rows, values, nil)
}

// JoinAllOn is JoinAll on the same block-parallel persistent pool.
func JoinAllOn[V any](ctx context.Context, pool *Pool, limit int,
	cache *TrieCache[V], d *semiring.Domain[V], factors []*factor.Factor[V],
	vars []int, stats *Stats) (*factor.Factor[V], error) {

	width := poolWidth(pool, limit)
	r, err := newRunner(ctx, pool, limit, cache, d, factors, vars)
	if err != nil {
		return nil, err
	}
	sortedVars := append([]int(nil), vars...)
	sort.Ints(sortedVars)
	perm := permutationTo(vars, sortedVars)

	if len(vars) > 0 && width > 1 && totalRows(factors) >= MinParallelRows {
		lead, n := r.topPlan()
		if blocks, cacheAware := splitRange(n, width, r.footprintBytes()); len(blocks) >= 2 {
			recordSplit(stats, blocks, n, cacheAware)
			type part struct {
				rows   []int32
				values []V
			}
			parts := make([]part, len(blocks))
			err = runBlocks(ctx, pool, limit, r, lead, blocks, stats, func(b int, rc *Runner[V]) {
				parts[b].rows, parts[b].values = scanListing(rc, perm)
			})
			if err != nil {
				return nil, err
			}
			var rows []int32
			var values []V
			for _, p := range parts {
				rows = append(rows, p.rows...)
				values = append(values, p.values...)
			}
			return factor.NewRows(d, sortedVars, rows, values, nil)
		}
	}
	r.Stats = stats
	rows, values := scanListing(r, perm)
	return factor.NewRows(d, sortedVars, rows, values, nil)
}

// poolWidth is the effective block-split width of a scan: the per-call limit
// capped by the pool size (a nil pool is sequential).
func poolWidth(pool *Pool, limit int) int {
	width := pool.Size()
	if limit > 0 && limit < width {
		width = limit
	}
	return width
}

// EliminateInnermostPar is EliminateInnermostOn on a transient pool of
// `workers` goroutines (< 1 means GOMAXPROCS), for callers without a
// long-lived engine.
func EliminateInnermostPar[V any](d *semiring.Domain[V], op *semiring.Op[V],
	factors []*factor.Factor[V], vars []int, workers int, stats *Stats) (*factor.Factor[V], error) {

	pool := NewPool(workers)
	defer pool.Close()
	return EliminateInnermostOn(context.Background(), pool, 0, nil, d, op, factors, vars, stats)
}

// JoinAllPar is JoinAllOn on a transient pool.
func JoinAllPar[V any](d *semiring.Domain[V], factors []*factor.Factor[V],
	vars []int, workers int, stats *Stats) (*factor.Factor[V], error) {

	pool := NewPool(workers)
	defer pool.Close()
	return JoinAllOn(context.Background(), pool, 0, nil, d, factors, vars, stats)
}
