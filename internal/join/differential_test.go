// Differential test for the CSR trie layout: a reference implementation of
// the scan using the map-based pointer tries this package used to build
// (node{children map[int]*node, keys []int}) is kept here in test code, and
// the flat-trie Runner must reproduce its output factors bit-identically —
// same rows, same value bits, same Stats counters — across the Float, Int,
// Bool and Tropical domains and across worker counts.
package join

import (
	"math"
	"math/rand"
	"slices"
	"sort"
	"testing"

	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/semiring"
)

// refNode / refTrie are the retired pointer-trie layout.
type refNode[V any] struct {
	children map[int]*refNode[V]
	keys     []int
	value    V
}

type refTrie[V any] struct {
	vars []int
	root *refNode[V]
}

func refBuildTrie[V any](f *factor.Factor[V], pos map[int]int) *refTrie[V] {
	order := make([]int, f.Arity())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return pos[f.Vars[order[a]]] < pos[f.Vars[order[b]]] })
	t := &refTrie[V]{root: &refNode[V]{}}
	for _, i := range order {
		t.vars = append(t.vars, f.Vars[i])
	}
	var buf []int
	for r := 0; r < f.Size(); r++ {
		buf = f.Tuple(r, buf)
		cur := t.root
		for _, i := range order {
			key := buf[i]
			if cur.children == nil {
				cur.children = map[int]*refNode[V]{}
			}
			next := cur.children[key]
			if next == nil {
				next = &refNode[V]{}
				cur.children[key] = next
				cur.keys = append(cur.keys, key)
			}
			cur = next
		}
		cur.value = f.Values[r]
	}
	var sortKeys func(n *refNode[V])
	sortKeys = func(n *refNode[V]) {
		sort.Ints(n.keys)
		for _, c := range n.children {
			sortKeys(c)
		}
	}
	sortKeys(t.root)
	return t
}

// refScan is the retired backtracking scan: lead = fewest children, probe
// the rest through the hash maps, emit in lexicographic order.
type refScan[V any] struct {
	d         *semiring.Domain[V]
	vars      []int
	tries     []*refTrie[V]
	consumers [][]int
	finishers [][]int
	cursors   [][]*refNode[V]
	tuple     []int
	constProd V
	empty     bool
	stats     Stats
}

func newRefScan[V any](d *semiring.Domain[V], factors []*factor.Factor[V], vars []int) *refScan[V] {
	pos := make(map[int]int, len(vars))
	for i, v := range vars {
		pos[v] = i
	}
	r := &refScan[V]{d: d, vars: vars, constProd: d.One}
	for _, f := range factors {
		if f.Arity() == 0 {
			if f.Size() == 0 {
				r.empty = true
			} else {
				r.constProd = d.Mul(r.constProd, f.Values[0])
			}
			continue
		}
		r.tries = append(r.tries, refBuildTrie(f, pos))
	}
	r.consumers = make([][]int, len(vars))
	r.finishers = make([][]int, len(vars))
	for ti, t := range r.tries {
		for j, v := range t.vars {
			depth := pos[v]
			r.consumers[depth] = append(r.consumers[depth], ti)
			if j == len(t.vars)-1 {
				r.finishers[depth] = append(r.finishers[depth], ti)
			}
		}
	}
	r.cursors = make([][]*refNode[V], len(r.tries))
	for i, t := range r.tries {
		r.cursors[i] = make([]*refNode[V], len(t.vars)+1)
		r.cursors[i][0] = t.root
	}
	r.tuple = make([]int, len(vars))
	return r
}

func (r *refScan[V]) cursorOf(ti int) *refNode[V] {
	stack := r.cursors[ti]
	for d := len(stack) - 1; d >= 0; d-- {
		if stack[d] != nil {
			return stack[d]
		}
	}
	return nil
}

func (r *refScan[V]) run(emit func([]int, V)) {
	if r.empty || r.d.IsZero(r.constProd) {
		return
	}
	r.search(0, r.constProd, emit)
}

func (r *refScan[V]) search(depth int, prod V, emit func([]int, V)) {
	if depth == len(r.vars) {
		r.stats.Emitted++
		emit(r.tuple, prod)
		return
	}
	cons := r.consumers[depth]
	lead := cons[0]
	leadNode := r.cursorOf(lead)
	for _, ti := range cons[1:] {
		if n := r.cursorOf(ti); len(n.keys) < len(leadNode.keys) {
			lead, leadNode = ti, n
		}
	}
	for _, key := range leadNode.keys {
		ok := true
		for _, ti := range cons {
			if ti == lead {
				continue
			}
			r.stats.Probes++
			if r.cursorOf(ti).children[key] == nil {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, ti := range cons {
			cur := r.cursorOf(ti)
			stack := r.cursors[ti]
			for d := 1; d < len(stack); d++ {
				if stack[d] == nil {
					stack[d] = cur.children[key]
					break
				}
			}
		}
		p := prod
		zero := false
		for _, ti := range r.finishers[depth] {
			p = r.d.Mul(p, r.cursorOf(ti).value)
			r.stats.Multiplies++
			if r.d.IsZero(p) {
				zero = true
				break
			}
		}
		if !zero {
			r.tuple[depth] = key
			r.search(depth+1, p, emit)
		}
		for _, ti := range cons {
			stack := r.cursors[ti]
			for d := len(stack) - 1; d >= 1; d-- {
				if stack[d] != nil {
					stack[d] = nil
					break
				}
			}
		}
	}
}

// refEliminate reproduces the old EliminateInnermost on the reference scan.
func refEliminate[V any](d *semiring.Domain[V], op *semiring.Op[V],
	factors []*factor.Factor[V], vars []int, stats *Stats) (*factor.Factor[V], error) {

	r := newRefScan[V](d, factors, vars)
	outVars := vars[:len(vars)-1]
	sortedVars := append([]int(nil), outVars...)
	sort.Ints(sortedVars)
	perm := permutationTo(outVars, sortedVars)

	var tuples [][]int
	var values []V
	var prefix []int
	var acc V
	havePrefix := false
	flush := func() {
		if !havePrefix || d.IsZero(acc) {
			return
		}
		t := make([]int, len(prefix))
		for i, p := range perm {
			t[i] = prefix[p]
		}
		tuples = append(tuples, t)
		values = append(values, acc)
	}
	r.run(func(tuple []int, val V) {
		cur := tuple[:len(tuple)-1]
		if havePrefix && samePrefix(prefix, cur) {
			acc = op.Combine(acc, val)
			return
		}
		flush()
		prefix = append(prefix[:0], cur...)
		acc = val
		havePrefix = true
	})
	flush()
	*stats = r.stats
	return factor.New(d, sortedVars, tuples, values, nil)
}

// refJoinAll reproduces the old JoinAll on the reference scan.
func refJoinAll[V any](d *semiring.Domain[V], factors []*factor.Factor[V],
	vars []int, stats *Stats) (*factor.Factor[V], error) {

	r := newRefScan[V](d, factors, vars)
	sortedVars := append([]int(nil), vars...)
	sort.Ints(sortedVars)
	perm := permutationTo(vars, sortedVars)
	var tuples [][]int
	var values []V
	r.run(func(tuple []int, val V) {
		t := make([]int, len(tuple))
		for i, p := range perm {
			t[i] = tuple[p]
		}
		tuples = append(tuples, t)
		values = append(values, val)
	})
	*stats = r.stats
	return factor.New(d, sortedVars, tuples, values, nil)
}

// diffDomain runs the differential comparison for one domain.
func diffDomain[V any](t *testing.T, seed int64, d *semiring.Domain[V], op *semiring.Op[V],
	randVal func(*rand.Rand) V, bits func(V) uint64) {

	t.Helper()
	forceBlocks(t)
	rng := rand.New(rand.NewSource(seed))
	identical := func(trial string, got, want *factor.Factor[V]) {
		t.Helper()
		if got.Size() != want.Size() || got.Arity() != want.Arity() {
			t.Fatalf("%s: shape %dx%d vs reference %dx%d",
				trial, got.Size(), got.Arity(), want.Size(), want.Arity())
		}
		for i := 0; i < got.Size(); i++ {
			if !slices.Equal(got.Row(i), want.Row(i)) {
				t.Fatalf("%s: row %d = %v, reference %v", trial, i, got.Row(i), want.Row(i))
			}
			if bits(got.Values[i]) != bits(want.Values[i]) {
				t.Fatalf("%s: value %d = %v, reference %v (not bit-identical)",
					trial, i, got.Values[i], want.Values[i])
			}
		}
	}
	for trial := 0; trial < 30; trial++ {
		dom := 2 + rng.Intn(10)
		n := 1 + rng.Intn(60)
		mkf := func(vars []int) *factor.Factor[V] {
			var tuples [][]int
			var values []V
			for i := 0; i < n; i++ {
				tup := make([]int, len(vars))
				for j := range tup {
					tup[j] = rng.Intn(dom)
				}
				tuples = append(tuples, tup)
				values = append(values, randVal(rng))
			}
			f, err := factor.New(d, vars, tuples, values, func(a, b V) V { return a })
			if err != nil {
				panic(err)
			}
			return f
		}
		fs := []*factor.Factor[V]{mkf([]int{0, 1}), mkf([]int{1, 2}), mkf([]int{0, 2})}
		vars := []int{0, 1, 2}
		if trial%2 == 1 {
			vars = []int{1, 2, 0} // permuted join order: tries re-sort columns
		}

		var wantStats Stats
		want, err := refEliminate(d, op, fs, vars, &wantStats)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4} {
			var gotStats Stats
			got, err := EliminateInnermostPar(d, op, fs, vars, workers, &gotStats)
			if err != nil {
				t.Fatal(err)
			}
			identical("eliminate", got, want)
			if workCounters(gotStats) != workCounters(wantStats) {
				t.Fatalf("eliminate workers=%d: stats %+v, reference %+v", workers, gotStats, wantStats)
			}
		}

		var wantJoin Stats
		wantJ, err := refJoinAll(d, fs, vars, &wantJoin)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 3} {
			var gotJoin Stats
			gotJ, err := JoinAllPar(d, fs, vars, workers, &gotJoin)
			if err != nil {
				t.Fatal(err)
			}
			identical("joinAll", gotJ, wantJ)
			if workCounters(gotJoin) != workCounters(wantJoin) {
				t.Fatalf("joinAll workers=%d: stats %+v, reference %+v", workers, gotJoin, wantJoin)
			}
		}
	}
}

func TestDifferentialFlatTrieFloat(t *testing.T) {
	diffDomain(t, 501, semiring.Float(), semiring.OpFloatSum(),
		func(rng *rand.Rand) float64 { return float64(1+rng.Intn(9)) / 4 },
		math.Float64bits)
}

func TestDifferentialFlatTrieInt(t *testing.T) {
	diffDomain(t, 502, semiring.Int(), semiring.OpIntSum(),
		func(rng *rand.Rand) int64 { return int64(1 + rng.Intn(7)) },
		func(v int64) uint64 { return uint64(v) })
}

func TestDifferentialFlatTrieBool(t *testing.T) {
	diffDomain(t, 503, semiring.Bool(), semiring.OpOr(),
		func(*rand.Rand) bool { return true },
		func(v bool) uint64 {
			if v {
				return 1
			}
			return 0
		})
}

func TestDifferentialFlatTrieTropical(t *testing.T) {
	diffDomain(t, 504, semiring.Tropical(), semiring.OpTropicalMin(),
		func(rng *rand.Rand) float64 { return float64(rng.Intn(12)) },
		math.Float64bits)
}
