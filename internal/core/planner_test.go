package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/faqdb/faq/internal/hypergraph"
)

// TestPlanExactEqualsFHTWForFAQSS verifies Proposition 5.12: when every
// aggregate is the same semiring aggregate (and no free variables), the
// FAQ-width equals the fractional hypertree width of the hypergraph.
func TestPlanExactEqualsFHTWForFAQSS(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(5)
		h := hypergraph.Random(rng, n, 2+rng.Intn(4), 3)
		tags := make([]string, n)
		for i := range tags {
			tags[i] = "op:sum"
		}
		s := &Shape{H: h, N: n, NumFree: 0, Tags: tags}
		wc := hypergraph.NewWidthCalc(h)
		plan, err := PlanExact(s, wc)
		if err != nil {
			t.Fatal(err)
		}
		fhtw, _ := wc.FHTW()
		if math.Abs(plan.Width-fhtw) > 1e-6 {
			t.Fatalf("trial %d: faqw = %v but fhtw = %v on %v", trial, plan.Width, fhtw, h)
		}
	}
}

// TestPlanExactExample56 reproduces Example 5.6: the mixed query
// φ = max x0 max x1 Πx2 Σx3 max x4 max x5  ψ04 ψ14 ψ023 ψ125 has
// faqw(φ) = 2 in general but faqw(φ) = 1 under the {0,1}-range promise,
// realized by the ordering (x5, x1, x2, x3, x4, x6) of the paper.
func TestPlanExactExample56(t *testing.T) {
	tags := []string{"op:max", "op:max", tagProduct, "op:sum", "op:max", "op:max"}
	edges := [][]int{{0, 4}, {1, 4}, {0, 2, 3}, {1, 2, 5}}

	general := shapeOf(6, 0, tags, edges, false)
	wc := hypergraph.NewWidthCalc(general.H)
	plan, err := PlanExact(general, wc)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.Width-2) > 1e-6 {
		t.Fatalf("general faqw = %v, want 2 (paper: O(N²))", plan.Width)
	}

	idem := shapeOf(6, 0, tags, edges, true)
	plan2, err := PlanExact(idem, wc)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan2.Width-1) > 1e-6 {
		t.Fatalf("idempotent faqw = %v, want 1 (paper: O(N))", plan2.Width)
	}
	// The paper's ordering (X5,X1,X2,X3,X4,X6) = (4,0,1,2,3,5) realizes it.
	w, _, err := FAQWidth(idem, wc, []int{4, 0, 1, 2, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-1) > 1e-6 {
		t.Fatalf("paper ordering has width %v, want 1", w)
	}
}

// TestChenDalmauGap reproduces Section 7.2.1: the QCQ family
// Φ = ∀X_0 ... ∀X_{n-1} ∃X_n (S(X_0..X_{n-1}) ∧ ⋀ R(X_i, X_n))
// has prefix-graph width n+1 (Chen–Dalmau) but faqw = 2.
func TestChenDalmauGap(t *testing.T) {
	for _, n := range []int{3, 5, 8} {
		tags := make([]string, n+1)
		var edges [][]int
		var sEdge []int
		for i := 0; i < n; i++ {
			tags[i] = tagProduct
			sEdge = append(sEdge, i)
			edges = append(edges, []int{i, n})
		}
		tags[n] = "op:max"
		edges = append(edges, sEdge)
		s := shapeOf(n+1, 0, tags, edges, true)
		wc := hypergraph.NewWidthCalc(s.H)
		plan, err := PlanExact(s, wc)
		if err != nil {
			t.Fatal(err)
		}
		// The fractional cover of U = all variables is λ_S = (n-1)/n plus
		// λ_{R_i} = 1/n, so faqw = 2 − 1/n ≤ 2: bounded, as the paper
		// states, while the prefix width grows as n+1.
		want := 2 - 1.0/float64(n)
		if math.Abs(plan.Width-want) > 1e-6 {
			t.Fatalf("n=%d: faqw = %v, want %v", n, plan.Width, want)
		}
		// The prefix-width proxy: |U| when eliminating the ∃ variable first
		// is n+1 (every variable joins the elimination set).
		steps := s.H.EliminationSequence(s.ExpressionOrder(), s.Product)
		if got := steps[n].U.Len(); got != n+1 {
			t.Fatalf("n=%d: |U| for the ∃ variable = %d, want %d", n, got, n+1)
		}
	}
}

// TestPlannersAgreeWithBruteForce is the planner integration test: on random
// mixed queries every planner must emit a φ-equivalent ordering (a linear
// extension of the poset) under which InsideOut reproduces brute force, and
// widths must be ordered exact ≤ expression, exact ≤ greedy, and
// approx ≤ exact + g(exact) with the exact black box (g = identity).
func TestPlannersAgreeWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		nv := 2 + rng.Intn(4)
		nf := rng.Intn(nv)
		q := randomQuery(rng, nv, nf)
		s := q.Shape()
		wc := hypergraph.NewWidthCalc(s.H)
		poset, err := posetOf(s)
		if err != nil {
			t.Fatal(err)
		}
		want, err := BruteForce(q)
		if err != nil {
			t.Fatal(err)
		}

		exact, err := PlanExact(s, wc)
		if err != nil {
			t.Fatal(err)
		}
		greedy, err := PlanGreedy(s, wc)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := PlanApprox(s, wc, ExactDecomp)
		if err != nil {
			t.Fatal(err)
		}
		expr, err := PlanExpression(s, wc)
		if err != nil {
			t.Fatal(err)
		}

		if exact.Width > expr.Width+1e-6 {
			t.Fatalf("trial %d: exact %v worse than expression %v", trial, exact.Width, expr.Width)
		}
		if greedy.Width < exact.Width-1e-6 {
			t.Fatalf("trial %d: greedy %v beat exact %v", trial, greedy.Width, exact.Width)
		}
		if approx.Width > 2*exact.Width+1e-6 {
			t.Fatalf("trial %d: approx %v exceeds opt+g(opt) = %v (tags %v, edges %v)",
				trial, approx.Width, 2*exact.Width, s.Tags, s.H)
		}

		for _, plan := range []*Plan{exact, greedy, approx} {
			if !poset.IsLinearExtension(plan.Order) {
				t.Fatalf("trial %d: %s order %v not a linear extension", trial, plan.Method, plan.Order)
			}
			// Realized width must match the claim.
			w, _, err := FAQWidth(s, wc, plan.Order)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(w-plan.Width) > 1e-6 {
				t.Fatalf("trial %d: %s claims width %v, realizes %v", trial, plan.Method, plan.Width, w)
			}
			res, err := InsideOut(q, plan.Order, DefaultOptions())
			if err != nil {
				t.Fatalf("trial %d (%s): %v", trial, plan.Method, err)
			}
			if !res.Output.Equal(fd, want) {
				t.Fatalf("trial %d: InsideOut under %s order %v disagrees with brute force",
					trial, plan.Method, plan.Order)
			}
		}
	}
}

// TestPlanApproxFAQSSMatchesFHTW: for FAQ-SS the Section 7 construction with
// an exact black box achieves g(opt) = opt exactly (the stronger FAQ-SS
// guarantee mentioned in Section 2.3.1).
func TestPlanApproxFAQSSMatchesFHTW(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(4)
		h := hypergraph.Random(rng, n, 2+rng.Intn(4), 3)
		tags := make([]string, n)
		for i := range tags {
			tags[i] = "op:sum"
		}
		s := &Shape{H: h, N: n, NumFree: 0, Tags: tags}
		wc := hypergraph.NewWidthCalc(h)
		approx, err := PlanApprox(s, wc, ExactDecomp)
		if err != nil {
			t.Fatal(err)
		}
		fhtw, _ := wc.FHTW()
		if math.Abs(approx.Width-fhtw) > 1e-6 {
			t.Fatalf("trial %d: approx width %v, fhtw %v", trial, approx.Width, fhtw)
		}
	}
}

func TestSolveEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 20; trial++ {
		q := randomQuery(rng, 2+rng.Intn(4), rng.Intn(3))
		want, err := BruteForce(q)
		if err != nil {
			t.Fatal(err)
		}
		res, plan, err := Solve(q, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if plan == nil || len(plan.Order) != q.NVars {
			t.Fatal("solve returned a bogus plan")
		}
		if !res.Output.Equal(fd, want) {
			t.Fatalf("trial %d: Solve output mismatch under %s", trial, plan.Method)
		}
	}
}

func TestChoosePlanPrefersSmallerWidth(t *testing.T) {
	// Triangle with a bad expression order is still planned at fhtw = 1.5.
	tags := []string{"op:sum", "op:sum", "op:sum"}
	s := shapeOf(3, 0, tags, [][]int{{0, 1}, {1, 2}, {0, 2}}, false)
	wc := hypergraph.NewWidthCalc(s.H)
	plan := ChoosePlan(s, wc)
	if math.Abs(plan.Width-1.5) > 1e-6 {
		t.Fatalf("plan width = %v, want 1.5", plan.Width)
	}
}
