package core

import (
	"math/rand"
	"testing"

	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/semiring"
)

var fd = semiring.Float()

func mkFactor(t testing.TB, vars []int, tuples [][]int, values []float64) *factor.Factor[float64] {
	t.Helper()
	f, err := factor.New(fd, vars, tuples, values, nil)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// triangleQuery builds Σ_{x0,x1,x2} ψ01 ψ12 ψ02 over the given edge list.
func triangleQuery(t testing.TB, dom int, edges [][]int) *Query[float64] {
	t.Helper()
	ones := make([]float64, len(edges))
	for i := range ones {
		ones[i] = 1
	}
	combine := func(a, b float64) float64 { return a }
	f01, _ := factor.New(fd, []int{0, 1}, edges, ones, combine)
	f12, _ := factor.New(fd, []int{1, 2}, edges, ones, combine)
	f02, _ := factor.New(fd, []int{0, 2}, edges, ones, combine)
	return &Query[float64]{
		D:        fd,
		NVars:    3,
		DomSizes: []int{dom, dom, dom},
		NumFree:  0,
		Aggs: []Aggregate[float64]{
			SemiringAgg(semiring.OpFloatSum()),
			SemiringAgg(semiring.OpFloatSum()),
			SemiringAgg(semiring.OpFloatSum()),
		},
		Factors: []*factor.Factor[float64]{f01, f12, f02},
	}
}

func TestInsideOutTriangleCount(t *testing.T) {
	edges := [][]int{{0, 1}, {1, 2}, {0, 2}, {1, 0}, {2, 1}, {2, 0}, {0, 3}, {3, 0}}
	q := triangleQuery(t, 4, edges)
	res, err := InsideOut(q, q.Shape().ExpressionOrder(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want, err := BruteForceScalar(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Scalar(); got != want {
		t.Fatalf("triangle count = %v, brute force %v", got, want)
	}
	if want == 0 {
		t.Fatal("test instance should contain triangles")
	}
}

func TestInsideOutMarginalWithFreeVars(t *testing.T) {
	// Chain x0 - x1 - x2, marginalize x1, x2; free x0.
	f01 := mkFactor(t, []int{0, 1}, [][]int{{0, 0}, {0, 1}, {1, 0}}, []float64{0.5, 0.25, 0.125})
	f12 := mkFactor(t, []int{1, 2}, [][]int{{0, 0}, {1, 1}}, []float64{2, 4})
	q := &Query[float64]{
		D: fd, NVars: 3, DomSizes: []int{2, 2, 2}, NumFree: 1,
		Aggs: []Aggregate[float64]{
			Free[float64](),
			SemiringAgg(semiring.OpFloatSum()),
			SemiringAgg(semiring.OpFloatSum()),
		},
		Factors: []*factor.Factor[float64]{f01, f12},
	}
	res, err := InsideOut(q, []int{0, 1, 2}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want, err := BruteForce(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output.Equal(fd, want) {
		t.Fatalf("marginal mismatch:\n got %v\nwant %v", res.Output, want)
	}
}

func TestInsideOutMAP(t *testing.T) {
	f01 := mkFactor(t, []int{0, 1}, [][]int{{0, 0}, {0, 1}, {1, 1}}, []float64{0.5, 2, 3})
	f1 := mkFactor(t, []int{1}, [][]int{{0}, {1}}, []float64{5, 0.5})
	q := &Query[float64]{
		D: fd, NVars: 2, DomSizes: []int{2, 2}, NumFree: 0,
		Aggs: []Aggregate[float64]{
			SemiringAgg(semiring.OpFloatMax()),
			SemiringAgg(semiring.OpFloatMax()),
		},
		Factors: []*factor.Factor[float64]{f01, f1},
	}
	res, err := InsideOut(q, []int{0, 1}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want, _ := BruteForceScalar(q)
	if got := res.Scalar(); got != want {
		t.Fatalf("MAP = %v, want %v", got, want)
	}
}

func TestInsideOutMixedSumMax(t *testing.T) {
	// φ = Σ_{x0} max_{x1} Σ_{x2} ψ01 ψ12 — three different aggregate slots.
	f01 := mkFactor(t, []int{0, 1}, [][]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}}, []float64{1, 2, 3, 4})
	f12 := mkFactor(t, []int{1, 2}, [][]int{{0, 0}, {0, 1}, {1, 1}}, []float64{5, 6, 7})
	q := &Query[float64]{
		D: fd, NVars: 3, DomSizes: []int{2, 2, 2}, NumFree: 0,
		Aggs: []Aggregate[float64]{
			SemiringAgg(semiring.OpFloatSum()),
			SemiringAgg(semiring.OpFloatMax()),
			SemiringAgg(semiring.OpFloatSum()),
		},
		Factors: []*factor.Factor[float64]{f01, f12},
	}
	res, err := InsideOut(q, []int{0, 1, 2}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want, _ := BruteForceScalar(q)
	if got := res.Scalar(); got != want {
		t.Fatalf("mixed query = %v, want %v", got, want)
	}
}

func TestInsideOutProductAggregateIdempotent(t *testing.T) {
	// QCQ-style: max_{x0} Π_{x1} max_{x2} ψ01 ψ12 over {0,1} factors.
	f01 := mkFactor(t, []int{0, 1}, [][]int{{0, 0}, {0, 1}, {1, 0}}, []float64{1, 1, 1})
	f12 := mkFactor(t, []int{1, 2}, [][]int{{0, 0}, {1, 1}}, []float64{1, 1})
	q := &Query[float64]{
		D: fd, NVars: 3, DomSizes: []int{2, 2, 2}, NumFree: 0,
		Aggs: []Aggregate[float64]{
			SemiringAgg(semiring.OpFloatMax()),
			ProductAgg[float64](),
			SemiringAgg(semiring.OpFloatMax()),
		},
		Factors:          []*factor.Factor[float64]{f01, f12},
		IdempotentInputs: true,
	}
	res, err := InsideOut(q, []int{0, 1, 2}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want, _ := BruteForceScalar(q)
	if got := res.Scalar(); got != want {
		t.Fatalf("QCQ-style query = %v, want %v", got, want)
	}
}

func TestInsideOutProductAggregateNonIdempotent(t *testing.T) {
	// Π over a variable with general values exercises the powering path
	// (Eq. (8)): φ = Σ_{x0} Π_{x1} ψ01 ψ0.
	f01 := mkFactor(t, []int{0, 1}, [][]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}}, []float64{2, 3, 1, 5})
	f0 := mkFactor(t, []int{0}, [][]int{{0}, {1}}, []float64{2, 3})
	q := &Query[float64]{
		D: fd, NVars: 2, DomSizes: []int{2, 2}, NumFree: 0,
		Aggs: []Aggregate[float64]{
			SemiringAgg(semiring.OpFloatSum()),
			ProductAgg[float64](),
		},
		Factors: []*factor.Factor[float64]{f01, f0},
	}
	res, err := InsideOut(q, []int{0, 1}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Hand check: Σ_x0 f0(x0)^2 · Π_x1 f01(x0,x1)
	//   x0=0: f0=2 ... wait, Eq. (8) powers factors not containing x1:
	//   φ = Σ_x0 [f0(x0)]^{|Dom(x1)|} · Π_x1 f01(x0,x1)
	//   x0=0: 2^2 · (2·3) = 24; x0=1: 3^2 · (1·5) = 45; total 69.
	want, _ := BruteForceScalar(q)
	if want != 69 {
		t.Fatalf("brute force sanity: got %v, hand computed 69", want)
	}
	if got := res.Scalar(); got != want {
		t.Fatalf("product aggregate query = %v, want %v", got, want)
	}
}

func TestInsideOutMissingProductRow(t *testing.T) {
	// A product aggregate over a variable with an unlisted (zero) entry must
	// annihilate that branch.
	f01 := mkFactor(t, []int{0, 1}, [][]int{{0, 0}, {1, 0}, {1, 1}}, []float64{2, 3, 4})
	q := &Query[float64]{
		D: fd, NVars: 2, DomSizes: []int{2, 2}, NumFree: 1,
		Aggs:    []Aggregate[float64]{Free[float64](), ProductAgg[float64]()},
		Factors: []*factor.Factor[float64]{f01},
	}
	res, err := InsideOut(q, []int{0, 1}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want, _ := BruteForce(q)
	if !res.Output.Equal(fd, want) {
		t.Fatalf("got %v want %v", res.Output, want)
	}
	if _, ok := res.Output.Value([]int{0}); ok {
		t.Fatal("x0=0 misses x1=1 so its product must be zero")
	}
}

func TestInsideOutValidation(t *testing.T) {
	q := triangleQuery(t, 2, [][]int{{0, 0}})
	if _, err := InsideOut(q, []int{0, 1}, DefaultOptions()); err == nil {
		t.Fatal("short ordering should fail")
	}
	if _, err := InsideOut(q, []int{0, 1, 1}, DefaultOptions()); err == nil {
		t.Fatal("non-permutation should fail")
	}
	// Free variables must be listed first.
	q.NumFree = 1
	q.Aggs[0] = Free[float64]()
	if _, err := InsideOut(q, []int{1, 0, 2}, DefaultOptions()); err == nil {
		t.Fatal("free variable not first should fail")
	}
}

func TestInsideOutIsolatedVariableRejected(t *testing.T) {
	f := mkFactor(t, []int{0}, [][]int{{0}}, []float64{1})
	q := &Query[float64]{
		D: fd, NVars: 2, DomSizes: []int{2, 2}, NumFree: 0,
		Aggs: []Aggregate[float64]{
			SemiringAgg(semiring.OpFloatSum()), SemiringAgg(semiring.OpFloatSum()),
		},
		Factors: []*factor.Factor[float64]{f},
	}
	if _, err := InsideOut(q, []int{0, 1}, DefaultOptions()); err == nil {
		t.Fatal("variable in no factor should be rejected")
	}
}

func TestInsideOutAblationsAgree(t *testing.T) {
	q := randomQuery(rand.New(rand.NewSource(5)), 4, 2)
	want, err := BruteForce(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{
		{IndicatorProjections: true, FilterOutput: true},
		{IndicatorProjections: false, FilterOutput: true},
		{IndicatorProjections: true, FilterOutput: false},
		{IndicatorProjections: false, FilterOutput: false},
	} {
		res, err := InsideOut(q, q.Shape().ExpressionOrder(), opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if !res.Output.Equal(fd, want) {
			t.Fatalf("%+v: output mismatch", opts)
		}
	}
}

func TestFactorizedOutput(t *testing.T) {
	q := randomQuery(rand.New(rand.NewSource(7)), 4, 2)
	opts := DefaultOptions()
	opts.Factorized = true
	res, err := InsideOut(q, q.Shape().ExpressionOrder(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Factorized == nil || res.Output != nil {
		t.Fatal("factorized mode should not materialize the listing")
	}
	want, _ := BruteForce(q)
	listing, err := res.Factorized.ToListing(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !listing.Equal(fd, want) {
		t.Fatalf("factorized listing mismatch:\n got %v\nwant %v", listing, want)
	}
	// Point queries.
	assignment := make([]int, q.NVars)
	var rec func(i int)
	rec = func(i int) {
		if i == q.NumFree {
			wantV := want.At(fd, assignment)
			if got := res.Factorized.Value(assignment); got != wantV {
				t.Fatalf("Value(%v) = %v, want %v", assignment[:q.NumFree], got, wantV)
			}
			return
		}
		for x := 0; x < q.DomSizes[i]; x++ {
			assignment[i] = x
			rec(i + 1)
		}
	}
	rec(0)
	// Enumeration covers exactly the listing.
	n := 0
	if err := res.Factorized.Enumerate(func(tuple []int, val float64) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n != want.Size() {
		t.Fatalf("enumerated %d tuples, want %d", n, want.Size())
	}
}

// randomQuery builds a random FAQ query with nv variables and nf free
// variables: random aggregates on bound variables (sum, max or product),
// random sparse factors covering every variable.
func randomQuery(rng *rand.Rand, nv, nf int) *Query[float64] {
	doms := make([]int, nv)
	for i := range doms {
		doms[i] = 1 + rng.Intn(3)
	}
	aggs := make([]Aggregate[float64], nv)
	for i := 0; i < nv; i++ {
		if i < nf {
			aggs[i] = Free[float64]()
			continue
		}
		switch rng.Intn(3) {
		case 0:
			aggs[i] = SemiringAgg(semiring.OpFloatSum())
		case 1:
			aggs[i] = SemiringAgg(semiring.OpFloatMax())
		default:
			aggs[i] = ProductAgg[float64]()
		}
	}
	var factors []*factor.Factor[float64]
	covered := make([]bool, nv)
	for len(factors) < 2 || !all(covered) {
		arity := 1 + rng.Intn(minI(3, nv))
		perm := rng.Perm(nv)[:arity]
		sortI(perm)
		var tuples [][]int
		var values []float64
		total := 1
		for _, v := range perm {
			total *= doms[v]
		}
		for enc := 0; enc < total; enc++ {
			if rng.Intn(4) == 0 {
				continue // leave a zero hole
			}
			tup := make([]int, arity)
			e := enc
			for i, v := range perm {
				tup[i] = e % doms[v]
				e /= doms[v]
			}
			tuples = append(tuples, tup)
			values = append(values, float64(1+rng.Intn(3)))
		}
		f, err := factor.New(fd, perm, tuples, values, nil)
		if err != nil {
			panic(err)
		}
		factors = append(factors, f)
		for _, v := range perm {
			covered[v] = true
		}
	}
	return &Query[float64]{
		D: fd, NVars: nv, DomSizes: doms, NumFree: nf,
		Aggs: aggs, Factors: factors,
	}
}

func all(bs []bool) bool {
	for _, b := range bs {
		if !b {
			return false
		}
	}
	return true
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func sortI(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Property: InsideOut along the expression order equals brute force on
// random mixed-aggregate queries.  This exercises Case 1, Case 2, indicator
// projections, the powering path and the output phase together.
func TestQuickInsideOutMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 200; trial++ {
		nv := 1 + rng.Intn(5)
		nf := rng.Intn(nv + 1)
		q := randomQuery(rng, nv, nf)
		want, err := BruteForce(q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := InsideOut(q, q.Shape().ExpressionOrder(), DefaultOptions())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !res.Output.Equal(fd, want) {
			t.Fatalf("trial %d (n=%d f=%d): InsideOut disagrees with brute force\n got %v\nwant %v",
				trial, nv, nf, res.Output, want)
		}
	}
}
