package core

import (
	"testing"

	"github.com/faqdb/faq/internal/bitset"
	"github.com/faqdb/faq/internal/hypergraph"
)

// shapeOf builds a Shape directly (tests don't need factors).
func shapeOf(n, numFree int, tags []string, edges [][]int, idem bool) *Shape {
	s := &Shape{
		H:                hypergraph.NewWithEdges(n, edges...),
		N:                n,
		NumFree:          numFree,
		Tags:             tags,
		IdempotentInputs: idem,
	}
	for i, t := range tags {
		if t == tagProduct {
			s.Product.Add(i)
		}
		// Mirror Query.Shape's convention: sum is the one non-idempotent
		// (hence non-D_I-closed) aggregate used in these tests.
		if t == "op:sum" {
			s.NonClosed.Add(i)
		}
	}
	return s
}

// example62 is the query of Example 6.2 (Figures 2–3), 0-indexed:
// φ = Σx0 Σx1 max x2 Σx3 Σx4 max x5 max x6  ψ01 ψ024 ψ03 ψ135 ψ16 ψ26.
func example62() *Shape {
	tags := []string{"op:sum", "op:sum", "op:max", "op:sum", "op:sum", "op:max", "op:max"}
	edges := [][]int{{0, 1}, {0, 2, 4}, {0, 3}, {1, 3, 5}, {1, 6}, {2, 6}}
	return shapeOf(7, 0, tags, edges, false)
}

func TestExprTreeExample62(t *testing.T) {
	// Figure 3b: final tree is {1,2,4}Σ → [{3,7}max → {5}Σ, {6}max]
	// which in 0-indexed variables is {0,1,3}Σ → [{2,6}max → {4}Σ, {5}max].
	tree := BuildExprTree(example62())
	want := "{}free[{0,1,3}op:sum[{2,6}op:max[{4}op:sum] {5}op:max]]"
	if got := tree.Render(); got != want {
		t.Fatalf("expression tree mismatch:\n got  %s\n want %s", got, want)
	}
}

func TestExprTreeExample62Poset(t *testing.T) {
	s := example62()
	tree := BuildExprTree(s)
	p, err := NewPoset(tree, s.N)
	if err != nil {
		t.Fatal(err)
	}
	// Root block {0,1,3} precedes everything else.
	for _, u := range []int{0, 1, 3} {
		for _, v := range []int{2, 4, 5, 6} {
			if !p.Less(u, v) {
				t.Errorf("want %d ≺ %d", u, v)
			}
		}
	}
	// {2,6} precedes {4} but not {5}.
	if !p.Less(2, 4) || !p.Less(6, 4) {
		t.Error("want 2,6 ≺ 4")
	}
	if p.Less(2, 5) || p.Less(5, 2) {
		t.Error("2 and 5 must be incomparable")
	}
	if p.Less(0, 0) {
		t.Error("relation must be irreflexive")
	}
}

// example619 is Example 6.19 (Figures 4–6), 0-indexed:
// φ = max x0 max x1 Σx2 Σx3 Πx4 max x5 Πx6 max x7
//
//	ψ02 ψ13 ψ23 ψ04 ψ05 ψ15 ψ146 ψ056 ψ167, all factors {0,1}-valued.
func example619() *Shape {
	tags := []string{"op:max", "op:max", "op:sum", "op:sum", tagProduct, "op:max", tagProduct, "op:max"}
	edges := [][]int{{0, 2}, {1, 3}, {2, 3}, {0, 4}, {0, 5}, {1, 5}, {1, 4, 6}, {0, 5, 6}, {1, 6, 7}}
	return shapeOf(8, 0, tags, edges, true)
}

func TestExprTreeExample619Scoped(t *testing.T) {
	// Figure 6 (right): {1,2,6}max → [{5,7}Π, {3,4}Σ, {7}Π, {7}Π → {8}max]
	// 0-indexed: {0,1,5}max → [{4,6}⊗, {2,3}Σ, {6}⊗, {6}⊗ → {7}max].
	// This is Definition 6.18 verbatim, reproduced by the scoped builder.
	tree := BuildExprTreeScoped(example619())
	want := "{}free[{0,1,5}op:max[{2,3}op:sum {4,6}⊗ {6}⊗ {6}⊗[{7}op:max]]]"
	if got := tree.Render(); got != want {
		t.Fatalf("expression tree mismatch:\n got  %s\n want %s", got, want)
	}
}

func TestExprTreeExample619Sound(t *testing.T) {
	// Under flat rewriting semantics the Σ block {2,3} must stay outside the
	// product scopes (Σ over N is not closed under D_I = {0,1}), so the
	// sound tree anchors it above a {4,6}⊗ child.  See
	// TestFlatRewritingAnchorsNonClosedSums for the semantic counterexample.
	tree := BuildExprTree(example619())
	want := "{}free[{0,1,5}op:max[{2,3}op:sum[{4,6}⊗] {4,6}⊗ {6}⊗ {6}⊗[{7}op:max]]]"
	if got := tree.Render(); got != want {
		t.Fatalf("expression tree mismatch:\n got  %s\n want %s", got, want)
	}
}

func TestExprTreeExample619Poset(t *testing.T) {
	s := example619()
	p, err := NewPoset(BuildExprTreeScoped(s), s.N)
	if err != nil {
		t.Fatal(err)
	}
	// Product variable 6 has copies in several nodes; none is an ancestor of
	// another (Lemma 6.20), and 6 ≺ 7 through the {6}⊗ → {7}max branch.
	if !p.Less(6, 7) {
		t.Error("want 6 ≺ 7")
	}
	if !p.Less(0, 2) || !p.Less(5, 2) {
		t.Error("root block must precede Σ block")
	}
	if p.Less(2, 4) || p.Less(4, 2) {
		t.Error("{2,3} and dangling {4,6} are incomparable in the scoped tree")
	}
	// The sound tree additionally pins the Σ block before the products.
	ps, err := NewPoset(BuildExprTree(s), s.N)
	if err != nil {
		t.Fatal(err)
	}
	if !ps.Less(2, 4) || !ps.Less(3, 4) || !ps.Less(2, 6) {
		t.Error("sound tree must order the Σ block before product variables")
	}
}

func TestExprTreeFAQSSIsFlat(t *testing.T) {
	// For FAQ-SS (single semiring aggregate everywhere) the tree has depth
	// ≤ 1: root of free variables, one child per connected component.
	tags := []string{tagFree, "op:sum", "op:sum", "op:sum"}
	edges := [][]int{{0, 1}, {1, 2}, {3}}
	s := shapeOf(4, 1, tags, edges, false)
	tree := BuildExprTree(s)
	want := "{0}free[{1,2}op:sum {3}op:sum]"
	if got := tree.Render(); got != want {
		t.Fatalf("tree = %s, want %s", got, want)
	}
}

func TestExprTreeSingleBlock(t *testing.T) {
	tags := []string{"op:sum", "op:sum"}
	s := shapeOf(2, 0, tags, [][]int{{0, 1}}, false)
	tree := BuildExprTree(s)
	if got := tree.Render(); got != "{}free[{0,1}op:sum]" {
		t.Fatalf("tree = %s", got)
	}
}

func TestExprTreeNonIdempotentProductExtension(t *testing.T) {
	// Example 6.29: φ = Σx0 Πx1 Σx2 ψ02(x0,x2) ψ1(x1).  With non-idempotent
	// ⊗, x1 imposes an order: edges are extended with the product variable,
	// so x0 must precede x2 and x2 may not be pulled into x0's block.
	tags := []string{"op:sum", tagProduct, "op:sum"}
	edges := [][]int{{0, 2}, {1}}
	s := shapeOf(3, 0, tags, edges, false)
	tree := BuildExprTree(s)
	p, err := NewPoset(tree, s.N)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Less(0, 2) {
		t.Fatalf("with non-idempotent ⊗, 0 must precede 2; tree = %s", tree.Render())
	}
	// Σ is not closed under D_I, so even under the idempotent-inputs promise
	// the sound tree keeps 0 ≺ 2 (anchoring); the scoped Definition 6.18
	// tree would not.
	s2 := shapeOf(3, 0, tags, edges, true)
	p2, err := NewPoset(BuildExprTree(s2), s2.N)
	if err != nil {
		t.Fatal(err)
	}
	if !p2.Less(0, 2) {
		t.Fatalf("non-closed Σ must stay anchored; tree = %s", BuildExprTree(s2).Render())
	}
	p2s, err := NewPoset(BuildExprTreeScoped(s2), s2.N)
	if err != nil {
		t.Fatal(err)
	}
	if p2s.Less(0, 2) || p2s.Less(2, 0) {
		t.Fatalf("scoped tree leaves 0 and 2 unrelated; tree = %s", BuildExprTreeScoped(s2).Render())
	}
	// With a D_I-closed aggregate (max) the variables really are unrelated
	// even in the sound tree.
	s3 := shapeOf(3, 0, []string{"op:max", tagProduct, "op:max"}, edges, true)
	p3, err := NewPoset(BuildExprTree(s3), s3.N)
	if err != nil {
		t.Fatal(err)
	}
	if p3.Less(0, 2) || p3.Less(2, 0) {
		t.Fatalf("closed max aggregates may commute past the product; tree = %s", BuildExprTree(s3).Render())
	}
}

// TestFlatRewritingAnchorsNonClosedSums is the semantic counterexample
// behind the anchoring deviation: for φ = Σx0 Σx1 Πx2 ψ0 ψ02 ψ1 with
// {0,1}-valued inputs, hoisting Πx2 above Σx1 changes the value (the count
// Σx1 ψ1 ∉ {0,1} gets powered), so (0,2,1) must not be φ-equivalent.
func TestFlatRewritingAnchorsNonClosedSums(t *testing.T) {
	tags := []string{"op:sum", "op:sum", tagProduct}
	edges := [][]int{{0}, {0, 2}, {1}}
	s := shapeOf(3, 0, tags, edges, true)
	if ok, err := InEVO(s, []int{0, 2, 1}); err != nil || ok {
		t.Fatalf("InEVO((0,2,1)) = %v, %v; flat rewriting makes it inequivalent", ok, err)
	}
	if ok, err := InEVO(s, []int{0, 1, 2}); err != nil || !ok {
		t.Fatalf("InEVO(expression order) = %v, %v; want true", ok, err)
	}
	if ok, err := InEVO(s, []int{1, 0, 2}); err != nil || !ok {
		t.Fatalf("InEVO((1,0,2)) = %v, %v; the two Σ blocks may swap", ok, err)
	}
}

func TestPosetLinearExtensions(t *testing.T) {
	s := example62()
	p, err := NewPoset(BuildExprTree(s), s.N)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	p.EnumerateLinearExtensions(func(order []int) bool {
		count++
		if !p.IsLinearExtension(order) {
			t.Fatalf("enumerated order %v is not a linear extension", order)
		}
		return count < 10000
	})
	if count == 0 {
		t.Fatal("no linear extensions found")
	}
	// The expression order is NOT a linear extension here: compression
	// merged variable 3 into the root block, which now precedes variable 2
	// that is written earlier in the expression.  (It is still in EVO —
	// Theorem 6.12 says EVO = CWE(LinEx(P)), a strict superset.)
	if p.IsLinearExtension(s.ExpressionOrder()) {
		t.Fatal("compression should have reordered 3 before 2")
	}
	// An order violating the root block is not.
	if p.IsLinearExtension([]int{4, 0, 1, 2, 3, 5, 6}) {
		t.Fatal("4 before the root block must violate the poset")
	}
}

func TestExtendedComponentsDangling(t *testing.T) {
	// From Example 6.19's first level: removing L = {0,1} with product set
	// {4,6} leaves components {2,3}, {5,6}, {6,7} and dangling D = {4,6}.
	s := example619()
	comps, dangling := extendedComponents(s, s.H.Vertices(), effectiveEdges(s, true), bitset.New(0, 1))
	if len(comps) != 3 {
		t.Fatalf("got %d extended components, want 3", len(comps))
	}
	wantVerts := []bitset.Set{bitset.New(2, 3), bitset.New(4, 5, 6), bitset.New(6, 7)}
	// Note: component of {5} extends with product vars of its edges; edge
	// {0,5,6} brings 6, and... check against construction: {5}'s edges are
	// {0,5},{1,5},{0,5,6} so V' = {5,6}.
	wantVerts[1] = bitset.New(5, 6)
	for i, c := range comps {
		if !c.verts.Equal(wantVerts[i]) {
			t.Errorf("component %d = %v, want %v", i, c.verts, wantVerts[i])
		}
	}
	if !dangling.Equal(bitset.New(4, 6)) {
		t.Errorf("dangling = %v, want {4, 6}", dangling)
	}
}
