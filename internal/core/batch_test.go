package core

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"github.com/faqdb/faq/internal/factor"
)

// TestRunBatchMatchesSequential pins the batch contract: one Prepare, N
// pipelined runs, and every item's scalar is bit-identical to the
// sequential RunWithFactors result for the same data.
func TestRunBatchMatchesSequential(t *testing.T) {
	e := NewEngine[float64](EngineOptions{Workers: 4})
	defer e.Close()
	p, err := e.Prepare(engineTriangleQuery(t, 12, 0))
	if err != nil {
		t.Fatal(err)
	}

	const n = 9
	sets := make([][]*factor.Factor[float64], n)
	want := make([]float64, n)
	for i := range sets {
		if i%4 == 3 {
			sets[i] = nil // prepared-data item: must match Run()
			res, err := p.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			want[i] = res.Scalar()
			continue
		}
		sets[i] = engineTriangleQuery(t, 12, float64(i)).Factors
		res, err := p.RunWithFactors(context.Background(), sets[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Scalar()
	}

	for _, parallel := range []int{0, 1, 3, 16} {
		got := make([]float64, n)
		calls := make([]int, n)
		err := p.RunBatch(context.Background(), sets, parallel, func(i int, res *Result[float64], _ time.Duration, err error) {
			calls[i]++
			if err != nil {
				t.Errorf("item %d: %v", i, err)
				return
			}
			got[i] = res.Scalar()
		})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		for i := range want {
			if calls[i] != 1 {
				t.Fatalf("parallel=%d: item %d emitted %d times", parallel, i, calls[i])
			}
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("parallel=%d: item %d = %v, want %v", parallel, i, got[i], want[i])
			}
		}
	}
}

// TestRunBatchCancellation checks that a cancelled context reaches every
// item: already-admitted items fail inside the run, never-admitted items
// are emitted with ctx.Err() without starting, and RunBatch itself
// returns the context error.
func TestRunBatchCancellation(t *testing.T) {
	e := NewEngine[float64](EngineOptions{Workers: 2})
	defer e.Close()
	p, err := e.Prepare(engineTriangleQuery(t, 12, 0))
	if err != nil {
		t.Fatal(err)
	}
	sets := make([][]*factor.Factor[float64], 6)
	for i := range sets {
		sets[i] = engineTriangleQuery(t, 12, float64(i)).Factors
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var emitted atomic.Int32
	err = p.RunBatch(ctx, sets, 2, func(i int, res *Result[float64], _ time.Duration, err error) {
		emitted.Add(1)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("item %d: err %v, want context.Canceled", i, err)
		}
		if res != nil {
			t.Errorf("item %d: result delivered after cancel", i)
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunBatch returned %v, want context.Canceled", err)
	}
	if got := emitted.Load(); got != int32(len(sets)) {
		t.Fatalf("emitted %d items, want %d", got, len(sets))
	}
}

// TestRunBatchBadItem checks per-item isolation: one malformed factor set
// fails only its own item; the rest of the batch completes and RunBatch
// returns nil.
func TestRunBatchBadItem(t *testing.T) {
	e := NewEngine[float64](EngineOptions{Workers: 2})
	defer e.Close()
	p, err := e.Prepare(engineTriangleQuery(t, 12, 0))
	if err != nil {
		t.Fatal(err)
	}
	good := engineTriangleQuery(t, 12, 1).Factors
	bad := engineTriangleQuery(t, 12, 2).Factors[:2] // wrong factor count
	sets := [][]*factor.Factor[float64]{good, bad, good}

	var failures atomic.Int32
	err = p.RunBatch(context.Background(), sets, 2, func(i int, res *Result[float64], _ time.Duration, err error) {
		if i == 1 {
			failures.Add(1)
			if err == nil {
				t.Error("malformed item succeeded")
			}
			return
		}
		if err != nil {
			t.Errorf("item %d: %v", i, err)
		}
	})
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	if failures.Load() != 1 {
		t.Fatalf("bad item emitted %d times", failures.Load())
	}
}
