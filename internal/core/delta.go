// Incremental view maintenance: the delta executor behind
// PreparedQuery.ApplyDeltas.
//
// A prepared query over evolving factors has three maintenance strategies,
// chosen once per query from its algebra and plan:
//
//   - Ring Δ-propagation, when every bound aggregate is the same invertible
//     ⊕ (sum over float/int/complex/rat) and no variable is aggregated by ⊗.
//     Eq. (1) is then multilinear in each factor, so a batch against factor
//     i contributes exactly φ(ψ_1, ..., Δψ_i, ..., ψ_m) where
//     Δψ_i = new ⊖ old over the changed rows — one InsideOut run against a
//     tiny delta factor, semijoin-reduced by the indicator projections of
//     Eq. (7), folded into the cached result with ⊕.
//   - Affected-block re-execution, for idempotent aggregates (bool, tropical,
//     max, set) where ⊕ destroys information and nothing can be retracted.
//     The partition variable pv = σ(0) — the lead root of every scan — has
//     its domain cut into contiguous key ranges; each block's result is the
//     query evaluated with every pv-containing factor restricted to the
//     range, and a batch only re-executes the blocks its pv keys intersect.
//     Restriction commutes with the pipeline (pv is eliminated last, so it
//     persists in every intermediate derived from pv-carrying data), which
//     blockSafe verifies structurally before the mode is enabled.
//   - Full recompute, the fallback that still amortizes: committed factor
//     versions are registered in the engine-wide trie cache, so recomputing
//     after a small batch rebuilds only the changed factor's tries.
//
// All three maintain the same state — the current factor versions plus the
// cached result — under one mutex, committing atomically: a rejected batch
// (sentinel errors from internal/factor) leaves the query exactly as it was.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"slices"

	"github.com/faqdb/faq/internal/bitset"
	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/semiring"
)

// ErrDeltaFactor reports a delta addressed at a factor index the prepared
// query does not have.
var ErrDeltaFactor = errors.New("core: delta factor index out of range")

// Delta is one batch of row changes addressed at a factor of a prepared
// query: Rows is a row-major block with the factor's arity, Values holds one
// value per row for inserts (deletes carry none).  Batches in one
// ApplyDeltas call are applied in order and commit atomically.
type Delta[V any] struct {
	// Factor indexes the prepared query's factor list.
	Factor int
	// Op is the batch operation (insert/upsert or delete).
	Op factor.DeltaOp
	// Rows is the row-major key block, len = rows × arity.
	Rows []int32
	// Values holds one value per insert row; a zero value removes the row.
	Values []V
}

type deltaMode int

const (
	deltaRecompute deltaMode = iota
	deltaRing
	deltaBlocks
)

// deltaState is the maintenance state of one PreparedQuery, guarded by
// PreparedQuery.deltaMu and committed only after a whole batch succeeds.
type deltaState[V any] struct {
	mode   deltaMode
	ringOp *semiring.Op[V] // ring mode: the shared invertible ⊕
	pvOp   *semiring.Op[V] // block mode, scalar queries: ⊕ at pv (idempotent)
	pv     int             // block mode: partition variable σ(0)
	pvIn   []bool          // block mode: factor i covers pv
	bounds [][2]int32      // block mode: [lo, hi) key ranges over pv's domain

	cur    []*factor.Factor[V] // current factor versions
	result *Result[V]          // last maintained result
	blocks []*factor.Factor[V] // block mode: per-block outputs, nil until first run
}

// ApplyDeltas applies row-change batches to the prepared query's factors and
// returns the maintained result, equal to what a full Run over the updated
// factors would return — bit-identical when ⊕ is exact (int, bool, tropical,
// integer-valued floats) at every worker count.  Batches are validated
// against the factor arities and the query's domain sizes and commit
// atomically: on any error (sentinels factor.ErrDeltaArity, ErrDeltaDup,
// ErrDeltaAbsent, ErrDeltaRange, or ErrDeltaFactor) the query state is
// unchanged.  Committed factor versions replace their predecessors in the
// engine-wide trie cache.  ApplyDeltas calls are serialized per prepared
// query; concurrent Runs are unaffected and keep serving the prepared
// factors.
func (p *PreparedQuery[V]) ApplyDeltas(ctx context.Context, deltas []Delta[V]) (*Result[V], error) {
	if ctx == nil {
		ctx = context.Background()
	}
	p.deltaMu.Lock()
	defer p.deltaMu.Unlock()
	st := p.deltaSt
	if st == nil {
		st = p.newDeltaState()
	}
	for i := range deltas {
		if deltas[i].Factor < 0 || deltas[i].Factor >= len(st.cur) {
			return nil, fmt.Errorf("%w: factor %d of a query with %d",
				ErrDeltaFactor, deltas[i].Factor, len(st.cur))
		}
	}
	if len(deltas) == 0 && st.result != nil {
		out := *st.result
		return &out, nil
	}
	var res *Result[V]
	var err error
	switch st.mode {
	case deltaRing:
		res, err = p.applyRing(ctx, st, deltas)
	case deltaBlocks:
		res, err = p.applyBlocks(ctx, st, deltas)
	default:
		res, err = p.applyRecompute(ctx, st, deltas)
	}
	if err != nil {
		if ctx.Err() != nil {
			p.rt.cancelled.Add(1)
		}
		return nil, err
	}
	p.deltaSt = st
	p.rt.deltas.Add(1)
	out := *res
	return &out, nil
}

// DeltaStrategy names the maintenance strategy ApplyDeltas uses for this
// query: "ring" (algebraic Δ-propagation), "blocks" (affected-block
// re-execution keyed by the lead root's key range) or "recompute".
func (p *PreparedQuery[V]) DeltaStrategy() string {
	p.deltaMu.Lock()
	defer p.deltaMu.Unlock()
	st := p.deltaSt
	if st == nil {
		st = p.newDeltaState()
		p.deltaSt = st
	}
	switch st.mode {
	case deltaRing:
		return "ring"
	case deltaBlocks:
		return "blocks"
	}
	return "recompute"
}

// CurrentFactors returns the factor versions ApplyDeltas has committed so
// far (the prepared factors before any batch).  The slice is fresh; the
// factors are shared and must not be mutated.
func (p *PreparedQuery[V]) CurrentFactors() []*factor.Factor[V] {
	p.deltaMu.Lock()
	defer p.deltaMu.Unlock()
	if p.deltaSt != nil {
		return append([]*factor.Factor[V](nil), p.deltaSt.cur...)
	}
	return append([]*factor.Factor[V](nil), p.q.Factors...)
}

// newDeltaState picks the maintenance strategy from the query's algebra:
// ring Δ-propagation needs one shared invertible ⊕ and no product variables;
// block re-execution needs restriction by the lead root to commute with the
// plan (blockSafe) and, for scalar queries, an idempotent ⊕ at the lead so
// the cross-block fold is an exact pick.  Everything else — including
// factorized output, whose representation holds live factor references —
// falls back to recompute.
func (p *PreparedQuery[V]) newDeltaState() *deltaState[V] {
	st := &deltaState[V]{
		mode: deltaRecompute,
		cur:  append([]*factor.Factor[V](nil), p.q.Factors...),
	}
	if p.opts.Factorized {
		return st
	}
	if op := ringAggOp(p.q); op != nil {
		st.mode, st.ringOp = deltaRing, op
		return st
	}
	pv := p.plan.Order[0]
	if p.q.NumFree == 0 {
		agg := p.q.Aggs[pv]
		if agg.Kind != KindSemiring || agg.Op == nil || !agg.Op.Idempotent {
			return st
		}
		st.pvOp = agg.Op
	}
	if !blockSafe(p.q, p.plan.Order, p.opts, pv) {
		return st
	}
	st.mode, st.pv = deltaBlocks, pv
	st.pvIn = make([]bool, len(p.q.Factors))
	for i, f := range p.q.Factors {
		st.pvIn[i] = slices.Contains(f.Vars, pv)
	}
	st.bounds = blockBounds(p.q.DomSizes[pv])
	return st
}

// ringAggOp returns the single invertible semiring aggregate shared by all
// bound variables, or nil when the query is not ring-maintainable (mixed
// aggregates, a product variable, a non-invertible ⊕, or no bound variable
// at all — a pure join has no ring addition to merge deltas with).
func ringAggOp[V any](q *Query[V]) *semiring.Op[V] {
	var op *semiring.Op[V]
	for _, a := range q.Aggs {
		switch a.Kind {
		case KindProduct:
			return nil
		case KindSemiring:
			if op == nil {
				op = a.Op
			} else if !semiring.SameOp(op, a.Op) {
				return nil
			}
		}
	}
	if !op.Invertible() {
		return nil
	}
	return op
}

// blockBounds cuts [0, dom) into contiguous key ranges, a few per core so
// small batches dirty a small fraction of the work.  The partition is fixed
// for the life of the prepared query; results are bit-identical at any cut.
func blockBounds(dom int) [][2]int32 {
	nb := 2 * runtime.GOMAXPROCS(0)
	if nb > dom {
		nb = dom
	}
	if nb < 1 {
		nb = 1
	}
	bounds := make([][2]int32, nb)
	for b := 0; b < nb; b++ {
		bounds[b] = [2]int32{int32(b * dom / nb), int32((b + 1) * dom / nb)}
	}
	return bounds
}

// blockSafe reports whether restricting every pv-covering factor to a key
// range of pv commutes with the plan, i.e. whether the restricted pipeline
// provably computes exactly the full pipeline's rows with pv in range.  It
// replays the eliminations of insideOutValidated over variable sets alone.
// Restriction is sound as long as pv sticks to every intermediate derived
// from pv-carrying data — pv is σ(0), eliminated last, so ordinary
// eliminations never drop it.  The two escapes are (a) an indicator
// projection of a pv-carrying factor onto a set without pv (Eq. (7) would
// then see support the restriction removed) and (b) a product aggregate at
// pv itself (ProductMarginalize needs full-domain coverage of each group).
// Product steps at other variables commute: restriction drops whole groups,
// never group members, so coverage counts are unchanged.
func blockSafe[V any](q *Query[V], order []int, opts Options, pv int) bool {
	entries := make([]bitset.Set, 0, len(q.Factors))
	for _, f := range q.Factors {
		entries = append(entries, bitset.FromSlice(f.Vars))
	}
	// step replays one semiring elimination (or one free-phase 01-OR step,
	// which selects inputs the same way) and reports whether it is safe.
	step := func(working []bitset.Set, v int) ([]bitset.Set, bool) {
		var u bitset.Set
		found := false
		for _, e := range working {
			if e.Contains(v) {
				found = true
				u.UnionWith(e)
			}
		}
		if !found {
			return nil, false
		}
		out := make([]bitset.Set, 0, len(working))
		for _, e := range working {
			if e.Contains(v) {
				continue
			}
			if opts.IndicatorProjections && e.Intersects(u) && e.Contains(pv) && !u.Contains(pv) {
				return nil, false
			}
			out = append(out, e)
		}
		res := u.Clone()
		res.Remove(v)
		return append(out, res), true
	}
	for k := q.NVars - 1; k >= q.NumFree; k-- {
		v := order[k]
		if q.Aggs[v].Kind == KindProduct {
			if v == pv {
				return false
			}
			next := make([]bitset.Set, 0, len(entries))
			found := false
			for _, e := range entries {
				if e.Contains(v) {
					found = true
					nv := e.Clone()
					nv.Remove(v)
					next = append(next, nv)
					continue
				}
				next = append(next, e)
			}
			if !found {
				return false
			}
			entries = next
			continue
		}
		var ok bool
		entries, ok = step(entries, v)
		if !ok {
			return false
		}
	}
	if q.NumFree > 0 && opts.FilterOutput {
		working := append([]bitset.Set(nil), entries...)
		for k := q.NumFree - 1; k >= 0; k-- {
			var ok bool
			working, ok = step(working, order[k])
			if !ok {
				return false
			}
		}
	}
	return true
}

// factorDomSizes maps the query's per-variable domain sizes onto one
// factor's variable list, the layout factor-level delta validation expects.
func factorDomSizes[V any](q *Query[V], f *factor.Factor[V]) []int {
	ds := make([]int, len(f.Vars))
	for i, v := range f.Vars {
		ds[i] = q.DomSizes[v]
	}
	return ds
}

// deltaRun executes the prepared plan over a substituted factor list on the
// engine-wide trie cache: registered (committed) factors serve their tries
// from cache, transient delta/restricted factors bypass it.
func (p *PreparedQuery[V]) deltaRun(ctx context.Context, factors []*factor.Factor[V]) (*Result[V], error) {
	nq := *p.q
	nq.Factors = factors
	return insideOutValidated(ctx, &nq, p.plan.Order, p.opts, rtExecutor(p.rt, p.opts.Workers, p.tries))
}

// applyRing maintains the result by Δ-propagation: each batch against
// factor i becomes one run with Δψ_i substituted for ψ_i, whose output is
// folded into the cached result with ⊕.  Exact whenever ⊕ is (int64 mod
// 2⁶⁴, integer-valued floats); for general floats the result is the usual
// floating-point reassociation away from a recompute.
func (p *PreparedQuery[V]) applyRing(ctx context.Context, st *deltaState[V], deltas []Delta[V]) (*Result[V], error) {
	d := p.q.D
	cur := append([]*factor.Factor[V](nil), st.cur...)
	res := st.result
	var stats Stats
	if res == nil { // first call: establish the baseline
		full, err := p.deltaRun(ctx, cur)
		if err != nil {
			return nil, err
		}
		p.rt.deltaRecomputes.Add(1)
		res = full
		stats = full.Stats
	}
	out := res.Output
	for _, dl := range deltas {
		f := cur[dl.Factor]
		fd := factor.Delta[V]{Op: dl.Op, Rows: dl.Rows, Values: dl.Values}
		ds := factorDomSizes(p.q, f)
		df, err := f.DeltaFactor(d, st.ringOp.Inverse, fd, ds)
		if err != nil {
			return nil, fmt.Errorf("core: delta for factor %d: %w", dl.Factor, err)
		}
		nf, err := f.ApplyDelta(d, fd, ds)
		if err != nil {
			return nil, fmt.Errorf("core: delta for factor %d: %w", dl.Factor, err)
		}
		if df.Size() > 0 {
			run := append([]*factor.Factor[V](nil), cur...)
			run[dl.Factor] = df
			dres, err := p.deltaRun(ctx, run)
			if err != nil {
				return nil, err
			}
			out = out.Add(d, st.ringOp.Combine, dres.Output)
			mergeRunStats(&stats, &dres.Stats)
			p.rt.deltaRingRuns.Add(1)
		}
		cur[dl.Factor] = nf
	}
	p.commitFactors(st, cur, nil)
	st.result = &Result[V]{D: d, FreeVars: res.FreeVars, Output: out, Stats: stats}
	return st.result, nil
}

// applyBlocks maintains per-block results: a batch dirties the blocks its
// pv key range intersects (every block, for factors not covering pv) and
// only those re-execute, each over factors restricted to the block's range.
func (p *PreparedQuery[V]) applyBlocks(ctx context.Context, st *deltaState[V], deltas []Delta[V]) (*Result[V], error) {
	d := p.q.D
	cur := append([]*factor.Factor[V](nil), st.cur...)
	dirty := make([]bool, len(st.bounds))
	blocks := st.blocks
	if blocks == nil { // first call: every block computes
		blocks = make([]*factor.Factor[V], len(st.bounds))
		for b := range dirty {
			dirty[b] = true
		}
	} else {
		blocks = append([]*factor.Factor[V](nil), blocks...)
	}
	ranges := map[int][2]int32{}
	for _, dl := range deltas {
		f := cur[dl.Factor]
		fd := factor.Delta[V]{Op: dl.Op, Rows: dl.Rows, Values: dl.Values}
		nf, err := f.ApplyDelta(d, fd, factorDomSizes(p.q, f))
		if err != nil {
			return nil, fmt.Errorf("core: delta for factor %d: %w", dl.Factor, err)
		}
		cur[dl.Factor] = nf
		if !st.pvIn[dl.Factor] {
			for b := range dirty {
				dirty[b] = true
			}
			continue
		}
		if lo, hi, ok := fd.KeyRange(f.Vars, st.pv, len(f.Vars)); ok {
			for b, bb := range st.bounds {
				if lo < bb[1] && hi >= bb[0] {
					dirty[b] = true
				}
			}
			if r, seen := ranges[dl.Factor]; seen {
				ranges[dl.Factor] = [2]int32{min(r[0], lo), max(r[1], hi+1)}
			} else {
				ranges[dl.Factor] = [2]int32{lo, hi + 1}
			}
		}
	}
	var stats Stats
	reran := 0
	for b, isDirty := range dirty {
		if !isDirty {
			continue
		}
		restricted := append([]*factor.Factor[V](nil), cur...)
		for i := range cur {
			if st.pvIn[i] {
				restricted[i] = cur[i].RestrictRange(st.pv, st.bounds[b][0], st.bounds[b][1])
			}
		}
		bres, err := p.deltaRun(ctx, restricted)
		if err != nil {
			return nil, err
		}
		blocks[b] = bres.Output
		mergeRunStats(&stats, &bres.Stats)
		reran++
	}
	p.rt.deltaBlockRuns.Add(int64(reran))
	res, err := p.mergeBlocks(st, blocks)
	if err != nil {
		return nil, err
	}
	res.Stats = stats
	p.commitFactors(st, cur, ranges)
	st.blocks = blocks
	st.result = res
	return res, nil
}

// mergeBlocks reassembles the full result from per-block outputs.  Output
// queries union disjoint row sets (each block holds the rows whose pv key is
// in its range); scalar queries ⊕-fold the block scalars in block order —
// an exact pick, since block mode requires an idempotent ⊕ at pv.
func (p *PreparedQuery[V]) mergeBlocks(st *deltaState[V], blocks []*factor.Factor[V]) (*Result[V], error) {
	d := p.q.D
	res := &Result[V]{D: d}
	for i := 0; i < p.q.NumFree; i++ {
		res.FreeVars = append(res.FreeVars, i)
	}
	if p.q.NumFree == 0 {
		acc := d.Zero
		for _, bf := range blocks {
			v := d.Zero
			if bf != nil && bf.Size() > 0 {
				v = bf.Values[0]
			}
			acc = st.pvOp.Combine(acc, v)
		}
		res.Output = factor.Scalar(d, acc)
		return res, nil
	}
	vars := make([]int, p.q.NumFree)
	for i := range vars {
		vars[i] = i
	}
	var n int
	for _, bf := range blocks {
		n += bf.Size()
	}
	rows := make([]int32, 0, n*len(vars))
	vals := make([]V, 0, n)
	for _, bf := range blocks {
		rows = append(rows, bf.Rows()...)
		vals = append(vals, bf.Values...)
	}
	out, err := factor.NewRows(d, vars, rows, vals, nil)
	if err != nil {
		return nil, err
	}
	res.Output = out
	return res, nil
}

// applyRecompute applies the batches and re-runs the plan over the updated
// factors.  Committed versions stay registered in the trie cache, so only
// the changed factors rebuild their tries.
func (p *PreparedQuery[V]) applyRecompute(ctx context.Context, st *deltaState[V], deltas []Delta[V]) (*Result[V], error) {
	d := p.q.D
	cur := append([]*factor.Factor[V](nil), st.cur...)
	for _, dl := range deltas {
		f := cur[dl.Factor]
		fd := factor.Delta[V]{Op: dl.Op, Rows: dl.Rows, Values: dl.Values}
		nf, err := f.ApplyDelta(d, fd, factorDomSizes(p.q, f))
		if err != nil {
			return nil, fmt.Errorf("core: delta for factor %d: %w", dl.Factor, err)
		}
		cur[dl.Factor] = nf
	}
	res, err := p.deltaRun(ctx, cur)
	if err != nil {
		return nil, err
	}
	p.rt.deltaRecomputes.Add(1)
	p.commitFactors(st, cur, nil)
	st.result = res
	return res, nil
}

// commitFactors publishes the new factor versions: each superseded factor is
// replaced in the engine-wide trie cache (invalidation of its entries plus
// registration of the successor), with the batch's pv key range when the
// caller tracked one.
func (p *PreparedQuery[V]) commitFactors(st *deltaState[V], cur []*factor.Factor[V], ranges map[int][2]int32) {
	for i := range cur {
		if cur[i] == st.cur[i] {
			continue
		}
		lo, hi := int32(0), int32(math.MaxInt32)
		if r, ok := ranges[i]; ok {
			lo, hi = r[0], r[1]
		}
		p.tries.Update(st.cur[i], cur[i], lo, hi)
	}
	st.cur = cur
}

// mergeRunStats folds one maintenance run's counters into the batch total.
func mergeRunStats(dst, src *Stats) {
	dst.Join.Merge(&src.Join)
	dst.IntermediateRows += src.IntermediateRows
	if src.MaxIntermediate > dst.MaxIntermediate {
		dst.MaxIntermediate = src.MaxIntermediate
	}
	dst.Eliminations += src.Eliminations
	dst.PowerSteps += src.PowerSteps
}
