package core

import (
	"context"
	"math/rand"
	"testing"

	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/semiring"
)

// deltaMatches compares two outputs value-wise, reading absent tuples as
// Zero: incremental maintenance may keep an explicit zero row (sum
// cancellation) where a recompute drops it, and both spellings are the same
// function.
func deltaMatches(d *semiring.Domain[int64], got, want *factor.Factor[int64]) bool {
	if got == nil || want == nil {
		return got == want
	}
	var tup []int
	for i := 0; i < got.Size(); i++ {
		tup = got.Tuple(i, tup)
		if got.Values[i] != want.ValueOrZero(d, tup) {
			return false
		}
	}
	for i := 0; i < want.Size(); i++ {
		tup = want.Tuple(i, tup)
		if got.ValueOrZero(d, tup) != want.Values[i] {
			return false
		}
	}
	return true
}

// FuzzApplyDeltas drives incremental maintenance with fuzz-chosen delta
// streams over small random int64 queries and asserts, after every batch,
// that ApplyDeltas agrees with a brute-force recompute over independently
// maintained factors — and that a batch the factor layer rejects is also
// rejected by the executor, leaving the maintained state untouched.  The
// raw bytes pick the target factor, the operation and the row cells, so
// duplicate rows, absent deletes and out-of-domain keys are all reached.
func FuzzApplyDeltas(f *testing.F) {
	f.Add(int64(1), []byte{0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add(int64(7), []byte{255, 1, 9, 9, 0, 0, 0, 1, 2, 250, 4, 0, 0, 3})
	f.Add(int64(42), []byte{3, 2, 1})
	f.Fuzz(func(t *testing.T, seed int64, data []byte) {
		rng := rand.New(rand.NewSource(seed))
		d := semiring.Int()
		nvars := 2 + rng.Intn(2)
		doms := make([]int, nvars)
		for i := range doms {
			doms[i] = 1 + rng.Intn(3)
		}
		numFree := rng.Intn(nvars)
		aggs := make([]Aggregate[int64], nvars)
		for i := range aggs {
			switch {
			case i < numFree:
				aggs[i] = Free[int64]()
			case rng.Intn(2) == 0:
				aggs[i] = SemiringAgg(semiring.OpIntSum())
			default:
				aggs[i] = SemiringAgg(semiring.OpIntMax())
			}
		}
		var factors []*factor.Factor[int64]
		for i := 0; i < 2; i++ {
			arity := 1 + rng.Intn(min(2, nvars))
			vars := rng.Perm(nvars)[:arity]
			for i := 1; i < len(vars); i++ {
				for j := i; j > 0 && vars[j] < vars[j-1]; j-- {
					vars[j], vars[j-1] = vars[j-1], vars[j]
				}
			}
			factors = append(factors, factor.FromFunc(d, vars, doms, func([]int) int64 {
				if rng.Intn(3) == 0 {
					return 0
				}
				return int64(1 + rng.Intn(3))
			}))
		}
		for v := 0; v < nvars; v++ { // every variable must occur somewhere
			factors = append(factors, factor.FromFunc(d, []int{v}, doms, func([]int) int64 { return 1 }))
		}
		q := &Query[int64]{D: d, NVars: nvars, DomSizes: doms, NumFree: numFree,
			Aggs: aggs, Factors: factors}

		eng := NewEngine[int64](EngineOptions{Workers: 2})
		defer eng.Close()
		opts := DefaultOptions()
		opts.IndicatorProjections = rng.Intn(2) == 0
		opts.FilterOutput = rng.Intn(2) == 0
		opts.Workers = 1 + rng.Intn(3)
		prep, err := eng.PrepareOpts(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()

		cur := append([]*factor.Factor[int64](nil), q.Factors...)
		for len(data) >= 3 {
			fi := int(data[0]) % len(cur)
			op := factor.DeltaInsert
			if data[1]%2 == 1 {
				op = factor.DeltaDelete
			}
			n := int(data[2])%3 + 1
			data = data[3:]
			fvars := cur[fi].Vars
			arity := len(fvars)
			if len(data) < n*(arity+1) {
				break
			}
			var rows []int32
			var vals []int64
			for r := 0; r < n; r++ {
				for c := 0; c < arity; c++ {
					// Mostly in-domain cells; one byte value in 16 escapes
					// the domain so range rejection is exercised too.
					cell := int32(data[c])
					if cell < 16 || doms[fvars[c]] == 0 {
						cell %= int32(doms[fvars[c]])
					}
					rows = append(rows, cell)
				}
				vals = append(vals, int64(data[arity])%4)
				data = data[arity+1:]
			}
			dl := factor.Delta[int64]{Op: op, Rows: rows}
			if op == factor.DeltaInsert {
				dl.Values = vals
			}

			nf, ferr := cur[fi].ApplyDelta(d, dl, factorDomSizes(q, cur[fi]))
			res, aerr := prep.ApplyDeltas(ctx, []Delta[int64]{
				{Factor: fi, Op: op, Rows: dl.Rows, Values: dl.Values}})
			if ferr != nil {
				if aerr == nil {
					t.Fatalf("executor accepted a batch the factor layer rejects (%v)", ferr)
				}
				continue // state must be untouched; later batches verify that
			}
			if aerr != nil {
				t.Fatalf("ApplyDeltas rejected a valid batch: %v", aerr)
			}
			cur[fi] = nf

			nq := *q
			nq.Factors = cur
			want, err := BruteForce(&nq)
			if err != nil {
				t.Fatalf("brute force: %v", err)
			}
			if !deltaMatches(d, res.Output, want) {
				t.Fatalf("ApplyDeltas (%s) diverged from recompute\nquery: doms=%v free=%d\ngot  %v\nwant %v",
					prep.DeltaStrategy(), doms, numFree, res.Output, want)
			}
		}
	})
}
