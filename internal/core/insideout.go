package core

import (
	"context"
	"fmt"
	"sort"

	"github.com/faqdb/faq/internal/bitset"
	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/join"
	"github.com/faqdb/faq/internal/obs"
	"github.com/faqdb/faq/internal/semiring"
)

// Options tune a single InsideOut run.
type Options struct {
	// IndicatorProjections enables the semijoin-style reduction of Eq. (7):
	// factors outside ∂(k) that intersect U_k contribute their indicator
	// projections to the intermediate join.  Disabling it reproduces plain
	// variable elimination (Section 5.1.2) for ablation benchmarks.
	IndicatorProjections bool
	// FilterOutput enables the 01-OR free-variable phase of Section 5.2.3
	// (Eq. (10)–(12)): free variables are eliminated under the 01 semiring
	// and the recorded ψ_{U_k} factors guide the final OutsideIn pass so
	// output is produced in time Õ(‖φ‖), Yannakakis-style.
	FilterOutput bool
	// Factorized keeps the output in the factorized representation of
	// Section 8.4 instead of listing it.  Result.Output stays nil; use
	// Result.Factorized.
	Factorized bool
	// Workers sizes the block-parallel executor that runs each
	// variable-elimination scan and output join: 0 (the default) means
	// GOMAXPROCS, 1 forces the sequential executor, larger values cap the
	// worker pool.  Every worker count produces bit-identical results;
	// scalar-output scans always run sequentially so ⊕-folds never
	// re-associate.
	Workers int
}

// DefaultOptions returns the configuration matching Algorithm 1, with the
// parallel executor sized to GOMAXPROCS.
func DefaultOptions() Options {
	return Options{IndicatorProjections: true, FilterOutput: true}
}

// Stats reports work done by one InsideOut run.  Counters are updated with
// atomic operations (via addIntermediate and join.Stats.Merge), so parallel
// executor runs report the same true totals as sequential ones.
type Stats struct {
	Join             join.Stats
	IntermediateRows int64 // total rows across intermediate factors
	MaxIntermediate  int64 // largest intermediate factor
	Eliminations     int
	PowerSteps       int
}

// Result holds the outcome of an InsideOut run.  For queries without free
// variables Output is a nullary factor whose single value (or absence) is
// also exposed through Scalar.
type Result[V any] struct {
	D          *semiring.Domain[V]
	FreeVars   []int
	Output     *factor.Factor[V]
	Factorized *Factorized[V]
	Stats      Stats
}

// Scalar returns the value of a nullary (no free variables) result.
func (r *Result[V]) Scalar() V {
	if r.Output != nil && r.Output.Size() > 0 {
		return r.Output.Values[0]
	}
	return r.D.Zero
}

// entry is a live hyperedge of the evolving FAQ instance.
type entry[V any] struct {
	vars bitset.Set
	f    *factor.Factor[V]
}

// InsideOut evaluates the query along the variable ordering order, which
// must be φ-equivalent (members of LinEx(P) always are; the expression order
// 0..n-1 trivially is).  This is Algorithm 1 of the paper.
func InsideOut[V any](q *Query[V], order []int, opts Options) (*Result[V], error) {
	return InsideOutCtx(context.Background(), q, order, opts)
}

// InsideOutCtx is InsideOut under a context: cancellation is observed
// between elimination steps and at the block boundaries of every scan, so a
// cancelled run returns ctx.Err() promptly and leaks no goroutines.
func InsideOutCtx[V any](ctx context.Context, q *Query[V], order []int, opts Options) (*Result[V], error) {
	return insideOutOn(ctx, q, order, opts, newExecutor[V](opts.Workers))
}

// insideOutOn is the engine-internal entry point: the executor (and with it
// the worker pool) is chosen by the caller, so a long-lived Engine reuses
// one persistent pool across elimination steps, runs and queries.
func insideOutOn[V any](ctx context.Context, q *Query[V], order []int, opts Options,
	exec executor[V]) (*Result[V], error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return insideOutValidated(ctx, q, order, opts, exec)
}

// insideOutValidated is insideOutOn for callers that have already validated
// q (PreparedQuery runs validate at Prepare/RunWithFactors time, not per
// run — Validate walks every input tuple, which would tax exactly the hot
// path the prepared API amortizes).
func insideOutValidated[V any](ctx context.Context, q *Query[V], order []int, opts Options,
	exec executor[V]) (*Result[V], error) {
	shape := q.Shape()
	if err := shape.checkOrder(order); err != nil {
		return nil, err
	}
	pos := make([]int, q.NVars) // variable -> position in order
	for i, v := range order {
		pos[v] = i
	}

	res := &Result[V]{D: q.D}
	for i := 0; i < q.NumFree; i++ {
		res.FreeVars = append(res.FreeVars, i)
	}

	entries := make([]entry[V], 0, len(q.Factors))
	for _, f := range q.Factors {
		entries = append(entries, entry[V]{vars: bitset.FromSlice(f.Vars), f: f})
	}

	// tr is nil unless the request asked for a trace; every per-step hook
	// below is guarded on it, so the disabled path does no extra work.
	tr := obs.FromContext(ctx)

	// Eliminate bound variables from the innermost out.
	for k := q.NVars - 1; k >= q.NumFree; k-- {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		v := order[k]
		agg := q.Aggs[v]
		var err error
		var sp *obs.Span
		var before join.Stats
		if tr != nil {
			// Safe to copy non-atomically: res.Stats.Join is only mutated
			// from this goroutine (parallel scans merge worker-private
			// stats in the caller after the pool drains).
			before = res.Stats.Join
			sp = tr.Start("eliminate")
		}
		if agg.Kind == KindSemiring {
			entries, err = eliminateSemiring(ctx, q, exec, &res.Stats, entries, v, agg.Op, pos, opts)
		} else {
			entries, err = eliminateProduct(q, &res.Stats, entries, v)
		}
		if sp != nil {
			sp.Set("var", q.VarName(v))
			if agg.Kind == KindSemiring {
				sp.Set("kind", "semiring")
			} else {
				sp.Set("kind", "product")
			}
			after := res.Stats.Join
			sp.Set("probes", after.Probes-before.Probes)
			sp.Set("rows", after.Emitted-before.Emitted)
			if blocks := after.Blocks - before.Blocks; blocks > 0 {
				sp.Set("blocks", blocks)
				sp.Set("pool_wait_ms", float64(after.PoolWaitNS-before.PoolWaitNS)/1e6)
			}
			if scans := after.ParallelScans - before.ParallelScans; scans > 0 {
				sp.Set("block_keys", (after.BlockKeys-before.BlockKeys)/scans)
				if after.CacheSplits-before.CacheSplits > 0 {
					sp.Set("split", "cache-aware")
				} else {
					sp.Set("split", "floor")
				}
			}
			sp.End()
		}
		if err != nil {
			return nil, err
		}
		res.Stats.Eliminations++
	}

	if q.NumFree == 0 {
		// All remaining factors are nullary; their product is the answer.
		val := q.D.One
		for _, e := range entries {
			if e.f.Size() == 0 {
				val = q.D.Zero
				break
			}
			val = q.D.Mul(val, e.f.Values[0])
		}
		res.Output = factor.Scalar(q.D, val)
		return res, nil
	}

	// Free-variable phase.
	base := make([]*factor.Factor[V], len(entries))
	for i, e := range entries {
		base[i] = e.f
	}
	freeOrder := append([]int(nil), order[:q.NumFree]...)
	var filters []*factor.Factor[V]
	if opts.FilterOutput {
		var err error
		sp := tr.Start("output_filters")
		filters, err = buildOutputFilters(ctx, q, exec, &res.Stats, entries, order, pos, opts)
		sp.End()
		if err != nil {
			return nil, err
		}
	}
	fz := &Factorized[V]{
		D:         q.D,
		FreeOrder: freeOrder,
		Base:      base,
		Filters:   filters,
		exec:      exec,
	}
	if opts.Factorized {
		res.Factorized = fz
		return res, nil
	}
	sp := tr.Start("listing")
	out, err := fz.toListing(ctx, &res.Stats.Join)
	if sp != nil {
		if out != nil {
			sp.Set("rows", out.Size())
		}
		sp.End()
	}
	if err != nil {
		return nil, err
	}
	res.Output = out
	return res, nil
}

// eliminateSemiring performs one Case-1 step (Section 5.2.1): it joins
// ∂(v) with the indicator projections of the other U-intersecting factors
// and aggregates v out with ⊕ using OutsideIn on the configured executor.
func eliminateSemiring[V any](ctx context.Context, q *Query[V], exec executor[V], st *Stats, entries []entry[V], v int,
	op *semiring.Op[V], pos []int, opts Options) ([]entry[V], error) {

	var boundary []int
	var u bitset.Set
	for i, e := range entries {
		if e.vars.Contains(v) {
			boundary = append(boundary, i)
			u.UnionWith(e.vars)
		}
	}
	if len(boundary) == 0 {
		return nil, fmt.Errorf("core: variable %d has no incident factor at elimination time", v)
	}
	inputs := make([]*factor.Factor[V], 0, len(entries))
	var toProject []*factor.Factor[V]
	bi := 0
	var rest []entry[V]
	for i, e := range entries {
		if bi < len(boundary) && boundary[bi] == i {
			bi++
			inputs = append(inputs, e.f)
			continue
		}
		rest = append(rest, e)
		if opts.IndicatorProjections && e.vars.Intersects(u) {
			toProject = append(toProject, e.f)
		}
	}
	projected, err := exec.project(ctx, q.D, toProject, u.Elems())
	if err != nil {
		return nil, err
	}
	inputs = append(inputs, projected...)
	// Join over U ordered by σ-position; v has the maximal position among
	// the not-yet-eliminated variables, so it comes last.
	orderedU := u.Elems()
	sort.Slice(orderedU, func(a, b int) bool { return pos[orderedU[a]] < pos[orderedU[b]] })
	nf, err := exec.eliminate(ctx, q.D, op, inputs, orderedU, &st.Join)
	if err != nil {
		return nil, err
	}
	st.addIntermediate(nf.Size())
	res := u.Clone()
	res.Remove(v)
	return append(rest, entry[V]{vars: res, f: nf}), nil
}

// eliminateProduct performs one Case-2 step (Section 5.2.2): factors
// containing v are product-marginalized; every other factor is raised to
// the |Dom(X_v)|-th power pointwise, skipping ⊗-idempotent values.
func eliminateProduct[V any](q *Query[V], st *Stats, entries []entry[V], v int) ([]entry[V], error) {
	dom := q.DomSizes[v]
	out := make([]entry[V], 0, len(entries))
	touched := false
	for _, e := range entries {
		if e.vars.Contains(v) {
			touched = true
			nf := e.f.ProductMarginalize(q.D, v, dom)
			st.addIntermediate(nf.Size())
			nv := e.vars.Clone()
			nv.Remove(v)
			out = append(out, entry[V]{vars: nv, f: nf})
			continue
		}
		if dom > 1 && !e.f.RangeIdempotent(q.D) {
			st.PowerSteps++
			out = append(out, entry[V]{vars: e.vars, f: e.f.Clone().PowValues(q.D, dom)})
			continue
		}
		out = append(out, e)
	}
	if !touched {
		return nil, fmt.Errorf("core: product variable %d has no incident factor at elimination time", v)
	}
	return out, nil
}

// buildOutputFilters runs the 01-OR elimination of the free variables
// (Algorithm 1, lines 8–10) and returns the recorded ψ_{U_k} factors that
// Eq. (12) multiplies into the final OutsideIn pass.
func buildOutputFilters[V any](ctx context.Context, q *Query[V], exec executor[V], st *Stats, entries []entry[V],
	order []int, pos []int, opts Options) ([]*factor.Factor[V], error) {

	working := append([]entry[V](nil), entries...)
	var filters []*factor.Factor[V]
	for k := q.NumFree - 1; k >= 0; k-- {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		v := order[k]
		var boundary []int
		var u bitset.Set
		for i, e := range working {
			if e.vars.Contains(v) {
				boundary = append(boundary, i)
				u.UnionWith(e.vars)
			}
		}
		if len(boundary) == 0 {
			return nil, fmt.Errorf("core: free variable %d has no incident factor at output time", v)
		}
		var toProject []*factor.Factor[V]
		bi := 0
		var rest []entry[V]
		for i, e := range working {
			include := false
			if bi < len(boundary) && boundary[bi] == i {
				bi++
				include = true
			} else {
				rest = append(rest, e)
				include = opts.IndicatorProjections && e.vars.Intersects(u)
			}
			if include {
				toProject = append(toProject, e.f)
			}
		}
		inputs, err := exec.project(ctx, q.D, toProject, u.Elems())
		if err != nil {
			return nil, err
		}
		orderedU := u.Elems()
		sort.Slice(orderedU, func(a, b int) bool { return pos[orderedU[a]] < pos[orderedU[b]] })
		psiU, err := exec.joinAll(ctx, q.D, inputs, orderedU, &st.Join)
		if err != nil {
			return nil, err
		}
		st.addIntermediate(psiU.Size())
		filters = append(filters, psiU)
		res := u.Clone()
		res.Remove(v)
		reduced := psiU.Marginalize(q.D, semiring.OpZeroOneOr(q.D), v)
		working = append(rest, entry[V]{vars: res, f: reduced})
	}
	return filters, nil
}

// Factorized is the §8.4 "O(1)-delay enumeration" output representation:
// the E_f factors plus the ψ_{U_k} filter factors, kept unjoined.  Value
// queries cost O(f + m) hash probes; Enumerate lists the output with
// constant delay per tuple; ToListing materializes Eq. (12).
type Factorized[V any] struct {
	D         *semiring.Domain[V]
	FreeOrder []int // free variables in σ order
	Base      []*factor.Factor[V]
	Filters   []*factor.Factor[V]

	exec executor[V] // set by InsideOut; nil means sequential
}

func (fz *Factorized[V]) joinInputs() []*factor.Factor[V] {
	inputs := make([]*factor.Factor[V], 0, len(fz.Base)+len(fz.Filters))
	inputs = append(inputs, fz.Base...)
	inputs = append(inputs, fz.Filters...)
	return inputs
}

// ToListing materializes the output in listing representation over the free
// variables sorted ascending, on the executor the run was configured with.
func (fz *Factorized[V]) ToListing(st *join.Stats) (*factor.Factor[V], error) {
	return fz.toListing(context.Background(), st)
}

func (fz *Factorized[V]) toListing(ctx context.Context, st *join.Stats) (*factor.Factor[V], error) {
	exec := fz.exec
	if exec == nil {
		exec = seqExecutor[V]{}
	}
	return exec.joinAll(ctx, fz.D, fz.joinInputs(), fz.FreeOrder, st)
}

// Enumerate streams output tuples (aligned with sorted free variables) in
// lexicographic order of the σ-ordered free variables.  The tuple slice is
// reused across calls.
func (fz *Factorized[V]) Enumerate(emit func(tuple []int, val V)) error {
	r, err := join.NewRunner(fz.D, fz.joinInputs(), fz.FreeOrder)
	if err != nil {
		return err
	}
	r.Run(emit)
	return nil
}

// Value answers a point query φ(t) where assignment maps variable id to
// value, without materializing the output.
func (fz *Factorized[V]) Value(assignment []int) V {
	val := fz.D.One
	for _, f := range fz.Base {
		val = fz.D.Mul(val, f.At(fz.D, assignment))
		if fz.D.IsZero(val) {
			return fz.D.Zero
		}
	}
	for _, f := range fz.Filters {
		if fz.D.IsZero(f.At(fz.D, assignment)) {
			return fz.D.Zero
		}
	}
	return val
}
