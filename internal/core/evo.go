package core

import (
	"fmt"

	"github.com/faqdb/faq/internal/bitset"
)

// Poset is the precedence poset of Definition 6.3/6.22: u ≺ v whenever u
// lies in a strict ancestor (in the expression tree) of some node containing
// v.  The relation is stored transitively closed.
type Poset struct {
	N    int
	less [][]bool // less[u][v]: u ≺ v
}

// NewPoset builds the precedence poset from an expression tree.  It returns
// an error if the relation is not antisymmetric, which Corollary 6.21 rules
// out for trees produced by BuildExprTree.
func NewPoset(root *ExprNode, n int) (*Poset, error) {
	p := &Poset{N: n, less: make([][]bool, n)}
	for i := range p.less {
		p.less[i] = make([]bool, n)
	}
	var walk func(node *ExprNode, ancestors []int)
	walk = func(node *ExprNode, ancestors []int) {
		for _, u := range ancestors {
			for _, v := range node.Vars {
				if u != v {
					p.less[u][v] = true
				}
			}
		}
		next := append(append([]int(nil), ancestors...), node.Vars...)
		for _, c := range node.Children {
			walk(c, next)
		}
	}
	walk(root, nil)
	// Transitive closure (copies of product variables can chain relations
	// across branches).
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !p.less[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if p.less[k][j] {
					p.less[i][j] = true
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && p.less[i][j] && p.less[j][i] {
				return nil, fmt.Errorf("core: precedence relation has a cycle through %d and %d", i, j)
			}
		}
	}
	return p, nil
}

// Less reports u ≺ v.
func (p *Poset) Less(u, v int) bool { return p.less[u][v] }

// MaximalIn reports whether v is maximal within the set remaining, i.e. no
// w ∈ remaining has v ≺ w.  Maximal elements are the ones an elimination
// order may remove first.
func (p *Poset) MaximalIn(remaining bitset.Set, v int) bool {
	ok := true
	remaining.ForEach(func(w int) {
		if ok && p.less[v][w] {
			ok = false
		}
	})
	return ok
}

// IsLinearExtension reports whether order respects the poset.
func (p *Poset) IsLinearExtension(order []int) bool {
	pos := make([]int, p.N)
	for i, v := range order {
		pos[v] = i
	}
	for u := 0; u < p.N; u++ {
		for v := 0; v < p.N; v++ {
			if p.less[u][v] && pos[u] > pos[v] {
				return false
			}
		}
	}
	return true
}

// EnumerateLinearExtensions yields every linear extension of the poset until
// yield returns false.  Exponential; intended for query-complexity-sized
// instances.
func (p *Poset) EnumerateLinearExtensions(yield func(order []int) bool) {
	order := make([]int, 0, p.N)
	used := make([]bool, p.N)
	placedBefore := func(v int) bool {
		for u := 0; u < p.N; u++ {
			if p.less[u][v] && !used[u] {
				return false
			}
		}
		return true
	}
	stop := false
	var rec func()
	rec = func() {
		if stop {
			return
		}
		if len(order) == p.N {
			if !yield(order) {
				stop = true
			}
			return
		}
		for v := 0; v < p.N; v++ {
			if used[v] || !placedBefore(v) {
				continue
			}
			used[v] = true
			order = append(order, v)
			rec()
			order = order[:len(order)-1]
			used[v] = false
		}
	}
	rec()
}

// CountLinearExtensions counts linear extensions up to the given cap.
func (p *Poset) CountLinearExtensions(cap int) int {
	n := 0
	p.EnumerateLinearExtensions(func([]int) bool {
		n++
		return n < cap
	})
	return n
}

// ---------------------------------------------------------------------------
// EVO membership via component-wise equivalence (Definitions 6.10/6.25,
// Theorems 6.12/6.27: EVO(φ) = CWE(LinEx(P))).
// ---------------------------------------------------------------------------

// InEVO reports whether order is a φ-equivalent variable ordering, by
// checking component-wise equivalence against the linear extensions of the
// precedence poset.  Exponential in query size; used by tests, tools and
// small instances.  Orderings produced by the planners are linear extensions
// by construction and do not need this check.
func InEVO(s *Shape, order []int) (bool, error) {
	if err := s.checkOrder(order); err != nil {
		return false, err
	}
	tree := BuildExprTree(s)
	poset, err := NewPoset(tree, s.N)
	if err != nil {
		return false, err
	}
	found := false
	poset.EnumerateLinearExtensions(func(pi []int) bool {
		if cwEquivalent(s, s.H.Vertices(), soundEdges(s), order, pi) {
			found = true
			return false
		}
		return true
	})
	return found, nil
}

// CWEquivalent reports component-wise equivalence of two orderings of the
// full variable set (Definition 6.25).
func CWEquivalent(s *Shape, sigma, pi []int) bool {
	return cwEquivalent(s, s.H.Vertices(), soundEdges(s), sigma, pi)
}

func cwEquivalent(s *Shape, vars bitset.Set, edges []bitset.Set, sigma, pi []int) bool {
	if vars.Len() <= 1 {
		return true
	}
	comps, _ := extendedComponents(s, vars, edges, bitset.Set{})
	switch len(comps) {
	case 0:
		// Only dangling product variables remain: order is immaterial.
		return true
	case 1:
		c := comps[0]
		sig := filterOrder(sigma, c.verts)
		p := filterOrder(pi, c.verts)
		if len(sig) == 0 {
			return true
		}
		if c.verts.Len() < vars.Len() {
			// Shrink to the component (dangling vars are unconstrained).
			if !c.verts.Equal(vars) {
				return cwEquivalent(s, c.verts, c.edges, sig, p)
			}
		}
		v0 := sig[0]
		if !s.Product.Contains(v0) {
			// Free or semiring head: both orderings must start with it.
			if p[0] != v0 {
				return false
			}
			rest := c.verts.Clone()
			rest.Remove(v0)
			return cwEquivalent(s, rest, removeVar(c.edges, v0), sig[1:], p[1:])
		}
		// Product head: some shared product prefix L of length ≥ 1 must
		// match as a set; try every feasible split.
		maxP := productPrefixLen(s, sig)
		if q := productPrefixLen(s, p); q < maxP {
			maxP = q
		}
		for plen := 1; plen <= maxP; plen++ {
			a := bitset.FromSlice(sig[:plen])
			b := bitset.FromSlice(p[:plen])
			if !a.Equal(b) {
				continue
			}
			rest := c.verts.Minus(a)
			ed := c.edges
			a.ForEach(func(v int) { ed = removeVar(ed, v) })
			if cwEquivalent(s, rest, ed, sig[plen:], p[plen:]) {
				return true
			}
		}
		return false
	default:
		for _, c := range comps {
			if !cwEquivalent(s, c.verts, c.edges, filterOrder(sigma, c.verts), filterOrder(pi, c.verts)) {
				return false
			}
		}
		return true
	}
}

func filterOrder(order []int, within bitset.Set) []int {
	var out []int
	for _, v := range order {
		if within.Contains(v) {
			out = append(out, v)
		}
	}
	return out
}

func removeVar(edges []bitset.Set, v int) []bitset.Set {
	out := make([]bitset.Set, 0, len(edges))
	for _, e := range edges {
		c := e.Clone()
		c.Remove(v)
		if !c.IsEmpty() {
			out = append(out, c)
		}
	}
	return out
}

func productPrefixLen(s *Shape, order []int) int {
	n := 0
	for _, v := range order {
		if !s.Product.Contains(v) {
			break
		}
		n++
	}
	return n
}

// EnumerateEVO lists every φ-equivalent ordering by exhaustive search over
// permutations; exponential, for tests and the faqplan tool only.
func EnumerateEVO(s *Shape) ([][]int, error) {
	tree := BuildExprTree(s)
	poset, err := NewPoset(tree, s.N)
	if err != nil {
		return nil, err
	}
	var linex [][]int
	poset.EnumerateLinearExtensions(func(pi []int) bool {
		linex = append(linex, append([]int(nil), pi...))
		return true
	})
	var out [][]int
	perm := make([]int, s.N)
	for i := range perm {
		perm[i] = i
	}
	edges := soundEdges(s)
	var rec func(k int)
	rec = func(k int) {
		if k == s.N {
			if err := s.checkOrder(perm); err != nil {
				return
			}
			for _, pi := range linex {
				if cwEquivalent(s, s.H.Vertices(), edges, perm, pi) {
					out = append(out, append([]int(nil), perm...))
					return
				}
			}
			return
		}
		for i := k; i < s.N; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return out, nil
}
