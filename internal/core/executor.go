package core

import (
	"sync/atomic"

	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/join"
	"github.com/faqdb/faq/internal/semiring"
)

// executor runs the data-parallel inner loops of one InsideOut pass: the
// ⊕-elimination scan of one variable-elimination step (Eq. (7)) and the
// output-phase joins (Eq. (12)).  Implementations must produce bit-identical
// factors — the pool executor achieves this by partitioning each scan into
// contiguous key-range blocks of the outermost join variable and merging
// block outputs in block order, so every ⊕-group is combined in the same
// sequence the sequential scan would use.
type executor[V any] interface {
	// eliminate joins inputs over vars and ⊕-aggregates the last variable.
	eliminate(d *semiring.Domain[V], op *semiring.Op[V], inputs []*factor.Factor[V],
		vars []int, st *join.Stats) (*factor.Factor[V], error)
	// joinAll materializes the join of inputs over vars.
	joinAll(d *semiring.Domain[V], inputs []*factor.Factor[V],
		vars []int, st *join.Stats) (*factor.Factor[V], error)
	// project computes the indicator projections (Definition 4.2) of fs
	// onto the variable set `onto`, preserving order.  Projections of
	// distinct factors are independent, so the pool executor computes them
	// concurrently.
	project(d *semiring.Domain[V], fs []*factor.Factor[V], onto []int) []*factor.Factor[V]
}

// newExecutor resolves Options.Workers: 0 means GOMAXPROCS, 1 forces the
// sequential executor, anything larger sizes the worker pool.
func newExecutor[V any](workers int) executor[V] {
	if w := join.Workers(workers); w > 1 {
		return poolExecutor[V]{workers: w}
	}
	return seqExecutor[V]{}
}

// seqExecutor is the single-goroutine reference implementation.
type seqExecutor[V any] struct{}

func (seqExecutor[V]) eliminate(d *semiring.Domain[V], op *semiring.Op[V],
	inputs []*factor.Factor[V], vars []int, st *join.Stats) (*factor.Factor[V], error) {
	return join.EliminateInnermost(d, op, inputs, vars, st)
}

func (seqExecutor[V]) joinAll(d *semiring.Domain[V], inputs []*factor.Factor[V],
	vars []int, st *join.Stats) (*factor.Factor[V], error) {
	return join.JoinAll(d, inputs, vars, st)
}

func (seqExecutor[V]) project(d *semiring.Domain[V], fs []*factor.Factor[V], onto []int) []*factor.Factor[V] {
	out := make([]*factor.Factor[V], len(fs))
	for i, f := range fs {
		out[i] = f.IndicatorProjection(d, onto)
	}
	return out
}

// poolExecutor fans each scan out over a pool of workers in contiguous
// key-range blocks; sub-scale scans fall back to the sequential path inside
// the join package.
type poolExecutor[V any] struct{ workers int }

func (e poolExecutor[V]) eliminate(d *semiring.Domain[V], op *semiring.Op[V],
	inputs []*factor.Factor[V], vars []int, st *join.Stats) (*factor.Factor[V], error) {
	return join.EliminateInnermostPar(d, op, inputs, vars, e.workers, st)
}

func (e poolExecutor[V]) joinAll(d *semiring.Domain[V], inputs []*factor.Factor[V],
	vars []int, st *join.Stats) (*factor.Factor[V], error) {
	return join.JoinAllPar(d, inputs, vars, e.workers, st)
}

func (e poolExecutor[V]) project(d *semiring.Domain[V], fs []*factor.Factor[V], onto []int) []*factor.Factor[V] {
	out := make([]*factor.Factor[V], len(fs))
	join.ParallelFor(len(fs), e.workers, func(i int) {
		out[i] = fs[i].IndicatorProjection(d, onto)
	})
	return out
}

// addIntermediate atomically records an intermediate factor of the given
// row count, so concurrent recorders keep Stats exact.
func (st *Stats) addIntermediate(rows int) {
	atomic.AddInt64(&st.IntermediateRows, int64(rows))
	for {
		cur := atomic.LoadInt64(&st.MaxIntermediate)
		if int64(rows) <= cur || atomic.CompareAndSwapInt64(&st.MaxIntermediate, cur, int64(rows)) {
			return
		}
	}
}
