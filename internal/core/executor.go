package core

import (
	"context"
	"sync/atomic"

	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/join"
	"github.com/faqdb/faq/internal/semiring"
)

// executor runs the data-parallel inner loops of one InsideOut pass: the
// ⊕-elimination scan of one variable-elimination step (Eq. (7)) and the
// output-phase joins (Eq. (12)).  Implementations must produce bit-identical
// factors — the pool executor achieves this by partitioning each scan into
// contiguous key-range blocks of the outermost join variable and merging
// block outputs in block order, so every ⊕-group is combined in the same
// sequence the sequential scan would use.
//
// Every method takes the run's context and observes cancellation at block
// boundaries: a cancelled scan drops its remaining blocks, waits for blocks
// in flight and returns ctx.Err() — no goroutine outlives the call.
//
// Both executors carry the run's trie cache (nil outside the prepared-query
// path): CSR tries and indicator projections of the prepared input factors
// are built once and reused by every subsequent run of the same
// PreparedQuery.
type executor[V any] interface {
	// eliminate joins inputs over vars and ⊕-aggregates the last variable.
	eliminate(ctx context.Context, d *semiring.Domain[V], op *semiring.Op[V],
		inputs []*factor.Factor[V], vars []int, st *join.Stats) (*factor.Factor[V], error)
	// joinAll materializes the join of inputs over vars.
	joinAll(ctx context.Context, d *semiring.Domain[V], inputs []*factor.Factor[V],
		vars []int, st *join.Stats) (*factor.Factor[V], error)
	// project computes the indicator projections (Definition 4.2) of fs
	// onto the variable set `onto`, preserving order.  Projections of
	// distinct factors are independent, so the pool executor computes them
	// concurrently.
	project(ctx context.Context, d *semiring.Domain[V], fs []*factor.Factor[V],
		onto []int) ([]*factor.Factor[V], error)
}

// newExecutor resolves Options.Workers for the compatibility entry points:
// 1 forces the sequential executor; 0 (= GOMAXPROCS) or more run on the
// process-wide shared pool of the default engine, grown on demand so an
// explicit Workers above the pool size still gets that much concurrency.
// One-shot runs have no prepared factors, hence no trie cache.
func newExecutor[V any](workers int) executor[V] {
	return rtExecutor[V](defaultRT(), workers, nil)
}

// seqExecutor is the single-goroutine reference implementation.  Its block
// boundary is the whole scan: cancellation is observed between scans (the
// InsideOut loop additionally checks between elimination steps).
type seqExecutor[V any] struct {
	cache *join.TrieCache[V]
}

func (e seqExecutor[V]) eliminate(ctx context.Context, d *semiring.Domain[V], op *semiring.Op[V],
	inputs []*factor.Factor[V], vars []int, st *join.Stats) (*factor.Factor[V], error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return join.EliminateInnermostOn(ctx, nil, 1, e.cache, d, op, inputs, vars, st)
}

func (e seqExecutor[V]) joinAll(ctx context.Context, d *semiring.Domain[V], inputs []*factor.Factor[V],
	vars []int, st *join.Stats) (*factor.Factor[V], error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return join.JoinAllOn(ctx, nil, 1, e.cache, d, inputs, vars, st)
}

func (e seqExecutor[V]) project(ctx context.Context, d *semiring.Domain[V],
	fs []*factor.Factor[V], onto []int) ([]*factor.Factor[V], error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]*factor.Factor[V], len(fs))
	for i, f := range fs {
		out[i] = e.cache.Projection(d, f, onto)
	}
	return out, nil
}

// poolExecutor fans each scan out over a persistent worker pool in
// contiguous key-range blocks, at most `limit` blocks in flight per scan;
// sub-scale scans fall back to the sequential path inside the join package.
type poolExecutor[V any] struct {
	pool  *join.Pool
	limit int
	cache *join.TrieCache[V]
}

func (e poolExecutor[V]) eliminate(ctx context.Context, d *semiring.Domain[V], op *semiring.Op[V],
	inputs []*factor.Factor[V], vars []int, st *join.Stats) (*factor.Factor[V], error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return join.EliminateInnermostOn(ctx, e.pool, e.limit, e.cache, d, op, inputs, vars, st)
}

func (e poolExecutor[V]) joinAll(ctx context.Context, d *semiring.Domain[V], inputs []*factor.Factor[V],
	vars []int, st *join.Stats) (*factor.Factor[V], error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return join.JoinAllOn(ctx, e.pool, e.limit, e.cache, d, inputs, vars, st)
}

func (e poolExecutor[V]) project(ctx context.Context, d *semiring.Domain[V],
	fs []*factor.Factor[V], onto []int) ([]*factor.Factor[V], error) {
	out := make([]*factor.Factor[V], len(fs))
	if err := e.pool.Run(ctx, len(fs), e.limit, func(i int) {
		out[i] = e.cache.Projection(d, fs[i], onto)
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// addIntermediate atomically records an intermediate factor of the given
// row count, so concurrent recorders keep Stats exact.
func (st *Stats) addIntermediate(rows int) {
	atomic.AddInt64(&st.IntermediateRows, int64(rows))
	for {
		cur := atomic.LoadInt64(&st.MaxIntermediate)
		if int64(rows) <= cur || atomic.CompareAndSwapInt64(&st.MaxIntermediate, cur, int64(rows)) {
			return
		}
	}
}
