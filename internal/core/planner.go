package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"github.com/faqdb/faq/internal/bitset"
	"github.com/faqdb/faq/internal/hypergraph"
)

// Plan is a chosen φ-equivalent variable ordering with its realized width.
type Plan struct {
	Order  []int
	Width  float64
	Method string
}

// PlanExpression returns the trivial plan: the ordering as written in the
// query expression.
func PlanExpression(s *Shape, wc *hypergraph.WidthCalc) (*Plan, error) {
	order := s.ExpressionOrder()
	w, _, err := FAQWidth(s, wc, order)
	if err != nil {
		return nil, err
	}
	return &Plan{Order: order, Width: w, Method: "expression"}, nil
}

// PlanExact computes faqw(φ) = min over LinEx(P) of faqw(σ) exactly
// (Corollaries 6.14/6.28: linear extensions of the precedence poset suffice)
// via dynamic programming over vertex subsets.  Exponential in n.
func PlanExact(s *Shape, wc *hypergraph.WidthCalc) (*Plan, error) {
	return PlanExactCtx(context.Background(), s, wc)
}

// PlanExactCtx is PlanExact under a context: the subset DP polls ctx, so a
// cancelled Prepare abandons an adversarially wide planning problem.
func PlanExactCtx(ctx context.Context, s *Shape, wc *hypergraph.WidthCalc) (*Plan, error) {
	poset, err := posetOf(s)
	if err != nil {
		return nil, err
	}
	dp := &hypergraph.ElimDP{
		H: s.H,
		Cost: func(v int, u bitset.Set) float64 {
			if s.Product.Contains(v) {
				return 0
			}
			return wc.RhoStar(u)
		},
		Product: s.Product,
		Allowed: func(remaining bitset.Set, v int) bool {
			return poset.MaximalIn(remaining, v)
		},
		Ctx: ctx,
	}
	w, order, err := dp.Solve()
	if err != nil {
		return nil, err
	}
	if err := s.checkOrder(order); err != nil {
		return nil, fmt.Errorf("core: exact planner produced an invalid order: %w", err)
	}
	return &Plan{Order: order, Width: w, Method: "exact-dp"}, nil
}

// PlanGreedy picks, at each elimination step, the poset-maximal variable
// with the smallest ρ*(U); polynomial and safe for large queries.
func PlanGreedy(s *Shape, wc *hypergraph.WidthCalc) (*Plan, error) {
	poset, err := posetOf(s)
	if err != nil {
		return nil, err
	}
	cost := func(v int, u bitset.Set) float64 {
		if s.Product.Contains(v) {
			return 0
		}
		return wc.RhoStar(u)
	}
	order, width := hypergraph.GreedyOrder(s.H, cost, cost, s.Product,
		func(remaining bitset.Set, v int) bool { return poset.MaximalIn(remaining, v) })
	if err := s.checkOrder(order); err != nil {
		return nil, fmt.Errorf("core: greedy planner produced an invalid order: %w", err)
	}
	return &Plan{Order: order, Width: width, Method: "greedy"}, nil
}

// DecompBlackbox produces a vertex ordering realizing a (hopefully small)
// fractional hypertree width for the given hypergraph — the black box of
// Theorems 7.2/7.5.  ExactDecomp uses the exponential DP (g = identity);
// GreedyDecomp uses min-fill (g unbounded but fast).
type DecompBlackbox func(h *hypergraph.Hypergraph) []int

// ExactDecomp is the exact fhtw ordering oracle.
func ExactDecomp(h *hypergraph.Hypergraph) []int {
	wc := hypergraph.NewWidthCalc(h)
	_, order := wc.FHTW()
	return order
}

// GreedyDecomp is the min-fill heuristic ordering oracle.
func GreedyDecomp(h *hypergraph.Hypergraph) []int {
	wc := hypergraph.NewWidthCalc(h)
	cost := func(v int, u bitset.Set) float64 { return wc.RhoStar(u) }
	order, _ := hypergraph.GreedyOrder(h, hypergraph.MinFillScore(h), cost, bitset.Set{}, nil)
	return order
}

// PlanApprox implements the approximation algorithm of Section 7 (Theorems
// 7.2 and 7.5): for every free/semiring node L of the expression tree it
// builds the local hypergraph H_L, obtains an ordering from the black box,
// and concatenates the per-node orderings respecting the precedence poset.
// With a g-approximate black box the result satisfies
// faqw(σ) ≤ faqw(φ) + g(faqw(φ)).
func PlanApprox(s *Shape, wc *hypergraph.WidthCalc, blackbox DecompBlackbox) (*Plan, error) {
	tree := BuildExprTree(s)
	poset, err := NewPoset(tree, s.N)
	if err != nil {
		return nil, err
	}

	var sigma []int
	emitted := bitset.New()
	emit := func(v int) {
		if !emitted.Contains(v) {
			emitted.Add(v)
			sigma = append(sigma, v)
		}
	}
	for _, node := range tree.Nodes() { // preorder: parents first
		if len(node.Vars) == 0 {
			continue
		}
		if node.Tag == tagProduct {
			// Product variables do not contribute to faqw; keep their
			// expression order (Theorem 6.27 keeps product copies in their
			// original relative order).
			for _, v := range node.Vars {
				emit(v)
			}
			continue
		}
		hl := nodeHypergraph(s, tree, node)
		sub, back := relabel(hl, node.Vars)
		local := blackbox(sub)
		for _, lv := range local {
			emit(back[lv])
		}
	}
	// Safety: every variable must be emitted (copies were deduplicated).
	for v := 0; v < s.N; v++ {
		emit(v)
	}
	sigma = stableLinearize(sigma, poset)
	w, _, err := FAQWidth(s, wc, sigma)
	if err != nil {
		return nil, err
	}
	return &Plan{Order: sigma, Width: w, Method: "approx-tree"}, nil
}

// posetOf builds the precedence poset of the query's expression tree.
func posetOf(s *Shape) (*Poset, error) {
	return NewPoset(BuildExprTree(s), s.N)
}

// nodeHypergraph constructs H_L for a free/semiring node L per Sections
// 7.1/7.2: projections S∩L of edges that avoid every semiring descendant,
// plus one edge S_{L,C} per child C summarizing the contribution of the
// C-branch (the union of all E̅(C) edges restricted to L), where E̅(C)
// contains the edges meeting a semiring (or free) node in the subtree of C.
func nodeHypergraph(s *Shape, root *ExprNode, target *ExprNode) *hypergraph.Hypergraph {
	lset := bitset.FromSlice(target.Vars)
	h := hypergraph.New(s.N)

	// Vars of semiring/free nodes in the subtree of each child.
	semiringBelow := func(n *ExprNode) bitset.Set {
		acc := bitset.New()
		for _, d := range n.Nodes() {
			if d.Tag != tagProduct {
				acc.UnionWith(bitset.FromSlice(d.Vars))
			}
		}
		return acc
	}
	var childSets []bitset.Set
	allBelow := bitset.New()
	for _, c := range target.Children {
		cs := semiringBelow(c)
		childSets = append(childSets, cs)
		allBelow.UnionWith(cs)
	}

	for _, e := range s.H.Edges {
		if e.Intersects(lset) && !e.Intersects(allBelow) {
			proj := e.Intersect(lset)
			h.AddEdgeSet(proj)
		}
	}
	for _, cs := range childSets {
		slc := bitset.New()
		for _, e := range s.H.Edges {
			if e.Intersects(cs) {
				slc.UnionWith(e.Intersect(lset))
			}
		}
		if !slc.IsEmpty() {
			h.AddEdgeSet(slc)
		}
	}
	// Vertices of L untouched by any edge get singleton edges so the local
	// ordering problem stays well-defined.
	covered := bitset.New()
	for _, e := range h.Edges {
		covered.UnionWith(e)
	}
	lset.ForEach(func(v int) {
		if !covered.Contains(v) {
			h.AddEdge(v)
		}
	})
	return h
}

// relabel extracts the sub-hypergraph on verts with dense local ids,
// returning it plus the local→global mapping.
func relabel(h *hypergraph.Hypergraph, verts []int) (*hypergraph.Hypergraph, []int) {
	local := map[int]int{}
	back := make([]int, len(verts))
	for i, v := range verts {
		local[v] = i
		back[i] = v
	}
	sub := hypergraph.New(len(verts))
	vset := bitset.FromSlice(verts)
	for _, e := range h.Edges {
		in := e.Intersect(vset)
		if in.IsEmpty() {
			continue
		}
		var le []int
		in.ForEach(func(v int) { le = append(le, local[v]) })
		sub.AddEdge(le...)
	}
	return sub, back
}

// stableLinearize turns a variable sequence into a linear extension of the
// poset while preserving the input's relative order wherever legal: it
// repeatedly emits the earliest not-yet-emitted variable whose predecessors
// are all emitted.
func stableLinearize(seq []int, poset *Poset) []int {
	n := len(seq)
	emitted := make([]bool, poset.N)
	out := make([]int, 0, n)
	ready := func(v int) bool {
		for u := 0; u < poset.N; u++ {
			if poset.Less(u, v) && !emitted[u] {
				return false
			}
		}
		return true
	}
	done := make([]bool, poset.N)
	for len(out) < n {
		progress := false
		for _, v := range seq {
			if done[v] || !ready(v) {
				continue
			}
			done[v] = true
			emitted[v] = true
			out = append(out, v)
			progress = true
		}
		if !progress {
			// Cannot happen for a valid poset; avoid an infinite loop.
			for _, v := range seq {
				if !done[v] {
					done[v] = true
					emitted[v] = true
					out = append(out, v)
				}
			}
		}
	}
	return out
}

// Solve plans an ordering and runs InsideOut with it: the one-shot
// compatibility entry point, now a thin wrapper over the default engine's
// persistent runtime.  Every call replans from scratch (unlike
// Engine.Prepare it does not consult the plan cache, so its cost model is
// unchanged from the pre-engine API), then executes on the default engine's
// persistent worker pool.  Callers issuing the same query shape repeatedly
// should Prepare once on an Engine instead.
func Solve[V any](q *Query[V], opts Options) (*Result[V], *Plan, error) {
	return SolveCtx(context.Background(), q, opts)
}

// SolveCtx is Solve under a context, observed by the exact planner and at
// the block boundaries of every scan.
func SolveCtx[V any](ctx context.Context, q *Query[V], opts Options) (*Result[V], *Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, nil, err
	}
	s := q.Shape()
	plan, err := planWith(ctx, s, "auto")
	if err != nil {
		return nil, nil, err
	}
	res, err := insideOutValidated(ctx, q, plan.Order, opts, newExecutor[V](opts.Workers))
	if err != nil {
		return nil, nil, err
	}
	return res, plan, nil
}

// ChoosePlan picks the best available planning strategy for the query size:
// exact DP for up to 18 variables, else the Section 7 approximation with the
// greedy black box, keeping whichever beats the expression order.
func ChoosePlan(s *Shape, wc *hypergraph.WidthCalc) *Plan {
	p, _ := ChoosePlanCtx(context.Background(), s, wc)
	return p
}

// ChoosePlanCtx is ChoosePlan under a context.  The only error it can
// return is the context's: planner failures fall back to cheaper
// strategies, ending at the always-valid expression order.
func ChoosePlanCtx(ctx context.Context, s *Shape, wc *hypergraph.WidthCalc) (*Plan, error) {
	best, err := PlanExpression(s, wc)
	if err != nil {
		// checkOrder cannot fail for the identity order of a valid query.
		best = &Plan{Order: s.ExpressionOrder(), Width: 0, Method: "expression"}
	}
	if s.N <= 18 {
		p, err := PlanExactCtx(ctx, s, wc)
		if err == nil && p.Width <= best.Width {
			return p, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return best, nil
	}
	// PlanApprox and PlanGreedy are polynomial but not internally
	// context-aware; honor cancellation between them so large-N Prepare
	// keeps the PrepareCtx guarantee.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if p, err := PlanApprox(s, wc, GreedyDecomp); err == nil && p.Width < best.Width {
		best = p
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if p, err := PlanGreedy(s, wc); err == nil && p.Width < best.Width {
		best = p
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return best, nil
}

// OrderString renders an ordering with variable names.
func OrderString(order []int, name func(int) string) string {
	parts := make([]string, len(order))
	for i, v := range order {
		parts[i] = name(v)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// SortedCopy returns a sorted copy of xs (small helper for tools).
func SortedCopy(xs []int) []int {
	c := append([]int(nil), xs...)
	sort.Ints(c)
	return c
}
