// The Engine / PreparedQuery API: prepare-once-run-many FAQ serving.
//
// The FAQ paper separates the *ordering* phase (Sections 6–7: expression
// trees, precedence posets, the exact DP over LinEx(P), the Section 7
// approximation) from the *evaluation* phase (InsideOut, Section 5).  The
// one-shot Solve entry point re-runs both on every call; an Engine keeps the
// two apart the way the paper does.  Engine.Prepare runs the planners once —
// memoized in an LRU keyed by the query's untyped Shape, so shape-identical
// queries across calls and across value types of the same engine hit the
// cache — and PreparedQuery.Run / RunWithFactors execute InsideOut against
// the cached plan with fresh data on the engine's persistent worker pool.
// That is the "questions asked frequently" workload: the same query shape
// over changing data or parameters, planned once and answered many times.
package core

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/hypergraph"
	"github.com/faqdb/faq/internal/join"
	"github.com/faqdb/faq/internal/obs"
)

// DefaultPlanCacheSize is the plan-LRU capacity when EngineOptions leaves
// PlanCacheSize zero.  Plans are a few hundred bytes (an ordering plus a
// width), so the default is generous.
const DefaultPlanCacheSize = 256

// EngineOptions configures a long-lived Engine.
type EngineOptions struct {
	// Workers sizes the engine's persistent executor pool, reused across
	// elimination steps, runs and queries: 0 means GOMAXPROCS, 1 means the
	// sequential executor.  Per-run Options.Workers may cap concurrency
	// below the pool size but never above it.
	Workers int
	// PlanCacheSize bounds the plan LRU (entries).  0 means
	// DefaultPlanCacheSize; negative disables caching.
	PlanCacheSize int
	// Planner selects the ordering strategy and is part of the plan-cache
	// key: "auto" (default: exact DP for small queries, else the best of
	// the Section 7 approximation, greedy and the expression order),
	// "exact", "greedy", "approx" or "expression".
	Planner string
}

// EngineStats are cumulative counters of one Engine (monotone except
// PlansCached, which is the current cache population).
type EngineStats struct {
	Prepared        int64 // Prepare calls that returned a PreparedQuery
	PlanCacheHits   int64 // Prepares answered from the plan LRU
	PlanCacheMisses int64 // Prepares that ran the Section 6–7 planners
	PlanCoalesced   int64 // Prepares that adopted another goroutine's in-flight planning pass
	PlansCached     int64 // entries currently in the LRU
	Runs            int64 // prepared runs completed successfully
	RunsCancelled   int64 // prepared runs aborted by their context

	DeltasApplied   int64 // ApplyDeltas calls committed successfully
	DeltaRingRuns   int64 // algebraic Δ-propagation runs (invertible ⊕)
	DeltaBlockRuns  int64 // affected-block re-executions
	DeltaRecomputes int64 // full recomputes taken by the delta path

	TrieCacheHits          int64 // trie/projection lookups served from cache
	TrieCacheMisses        int64 // lookups that built fresh
	TrieCacheInvalidations int64 // entries dropped by version bumps
	TrieCacheEvictions     int64 // entries dropped by LRU capacity
	TrieCacheEntries       int64 // entries currently cached (all value types)
}

// engineRT is the untyped runtime shared by every Engine[V] handle onto it:
// the persistent pool, the plan cache and the counters.  Plans depend only
// on the untyped Shape, so one runtime serves all value types.
type engineRT struct {
	opts     EngineOptions
	pool     *join.Pool
	cache    *planCache
	growable bool // default runtime: pool grows to explicit Workers requests

	// flight is the in-flight single-prepare guard: one entry per shape key
	// currently being planned, so a thundering herd of cold same-shape
	// Prepares runs the Section 6–7 planners exactly once.
	flightMu sync.Mutex
	flight   map[string]*planFlight

	// trieCaches holds one engine-wide versioned trie cache per value type,
	// keyed by reflect.Type of *V.  Every PreparedQuery of that value type
	// shares it, so shape-distinct queries over the same factors reuse each
	// other's tries, and a delta committed through one prepared query
	// invalidates stale entries for all of them.
	trieCaches sync.Map // reflect.Type -> *join.TrieCache[V]

	prepared, hits, misses, coalesced, runs, cancelled     atomic.Int64
	deltas, deltaRingRuns, deltaBlockRuns, deltaRecomputes atomic.Int64
}

// trieCacheFor returns the runtime's shared trie cache for value type V,
// creating it on first use.
func trieCacheFor[V any](rt *engineRT) *join.TrieCache[V] {
	key := reflect.TypeOf((*V)(nil))
	if c, ok := rt.trieCaches.Load(key); ok {
		return c.(*join.TrieCache[V])
	}
	c, _ := rt.trieCaches.LoadOrStore(key, join.NewTrieCache[V](nil))
	return c.(*join.TrieCache[V])
}

func newEngineRT(opts EngineOptions, growable bool) *engineRT {
	cacheSize := opts.PlanCacheSize
	if cacheSize == 0 {
		cacheSize = DefaultPlanCacheSize
	}
	return &engineRT{
		opts:     opts,
		pool:     join.NewPool(opts.Workers),
		cache:    newPlanCache(cacheSize),
		growable: growable,
	}
}

func (rt *engineRT) planner() string {
	if rt.opts.Planner == "" {
		return "auto"
	}
	return rt.opts.Planner
}

func (rt *engineRT) stats() EngineStats {
	s := EngineStats{
		Prepared:        rt.prepared.Load(),
		PlanCacheHits:   rt.hits.Load(),
		PlanCacheMisses: rt.misses.Load(),
		PlanCoalesced:   rt.coalesced.Load(),
		PlansCached:     int64(rt.cache.len()),
		Runs:            rt.runs.Load(),
		RunsCancelled:   rt.cancelled.Load(),
		DeltasApplied:   rt.deltas.Load(),
		DeltaRingRuns:   rt.deltaRingRuns.Load(),
		DeltaBlockRuns:  rt.deltaBlockRuns.Load(),
		DeltaRecomputes: rt.deltaRecomputes.Load(),
	}
	rt.trieCaches.Range(func(_, v any) bool {
		tc := v.(interface{ Stats() join.TrieCacheStats }).Stats()
		s.TrieCacheHits += tc.Hits
		s.TrieCacheMisses += tc.Misses
		s.TrieCacheInvalidations += tc.Invalidations
		s.TrieCacheEvictions += tc.Evictions
		s.TrieCacheEntries += tc.Entries
		return true
	})
	return s
}

// ErrPlannerPanic marks the error handed to singleflight waiters when the
// planning leader died in a panic: the failure is a server-side bug, not a
// property of the waiters' queries, and callers (the faqd error mapper)
// should classify it as internal.
var ErrPlannerPanic = errors.New("planner panicked")

// planFlight is one in-flight planning pass: the leader closes done after
// writing plan/err, so waiters that receive on done read both race-free.
type planFlight struct {
	done chan struct{}
	plan *Plan
	err  error
}

// planFor resolves the plan for a shape through the LRU with an in-flight
// single-prepare guard: when concurrent Prepares race on a cold shape, one
// of them (the leader) runs the Section 6–7 planners and the rest adopt its
// result, counted as PlanCoalesced.  If the leader fails because its own
// context was cancelled, waiters retry — the next one through becomes the
// new leader — so one impatient client cannot poison a shape for the herd.
// shapeKey is the caller-computed s.Key(); the cache-outcome annotation on
// any context-carried trace lands on the caller's open "prepare" span.
func (rt *engineRT) planFor(ctx context.Context, s *Shape, shapeKey string) (*Plan, error) {
	key := shapeKey + ";planner=" + rt.planner()
	tr := obs.FromContext(ctx)
	for {
		if p, ok := rt.cache.get(key); ok {
			rt.hits.Add(1)
			tr.Annotate("plan", "hit")
			return p, nil
		}
		rt.flightMu.Lock()
		if f, ok := rt.flight[key]; ok {
			rt.flightMu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if f.err != nil && (errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded)) {
				continue // leader's own deadline, not ours: retry
			}
			rt.coalesced.Add(1)
			tr.Annotate("plan", "coalesced")
			return f.plan, f.err
		}
		// Re-check under the lock: the previous leader may have finished
		// between our cache miss and taking flightMu.
		if p, ok := rt.cache.get(key); ok {
			rt.flightMu.Unlock()
			rt.hits.Add(1)
			tr.Annotate("plan", "hit")
			return p, nil
		}
		f := &planFlight{done: make(chan struct{})}
		if rt.flight == nil {
			rt.flight = map[string]*planFlight{}
		}
		rt.flight[key] = f
		rt.flightMu.Unlock()

		rt.misses.Add(1)
		var p *Plan
		var err error
		func() {
			// The flight entry must be cleared and done closed even if a
			// planner panics — otherwise the stale entry blocks every later
			// Prepare of this shape until its deadline (net/http recovers
			// handler panics, so a serving process would live on, poisoned).
			// The panic itself still propagates to the leader; waiters get
			// an error instead of a nil plan.
			defer func() {
				if p == nil && err == nil {
					err = fmt.Errorf("core: %w while planning shape %q", ErrPlannerPanic, key)
				}
				f.plan, f.err = p, err
				rt.flightMu.Lock()
				delete(rt.flight, key)
				rt.flightMu.Unlock()
				close(f.done)
			}()
			p, err = planWith(ctx, s, rt.planner())
			if err == nil {
				rt.cache.put(key, p)
			}
		}()
		if err == nil {
			tr.Annotate("plan", "planned")
		}
		return p, err
	}
}

// planWith runs the configured Section 6–7 planner.
func planWith(ctx context.Context, s *Shape, planner string) (*Plan, error) {
	wc := hypergraph.NewWidthCalc(s.H)
	switch planner {
	case "", "auto":
		return ChoosePlanCtx(ctx, s, wc)
	case "exact":
		return PlanExactCtx(ctx, s, wc)
	case "greedy":
		return PlanGreedy(s, wc)
	case "approx":
		return PlanApprox(s, wc, GreedyDecomp)
	case "expression":
		return PlanExpression(s, wc)
	}
	return nil, fmt.Errorf("core: unknown planner %q (want auto, exact, greedy, approx or expression)", planner)
}

// rtExecutor resolves a per-run Workers knob against a runtime: 1 is the
// sequential executor; 0 runs at the pool's full width; larger values cap a
// run's in-flight blocks below the pool size (the default runtime instead
// grows its pool, preserving the historical "Workers = that much
// concurrency" contract of the one-shot entry points).
func rtExecutor[V any](rt *engineRT, workers int, cache *join.TrieCache[V]) executor[V] {
	if workers == 1 {
		return seqExecutor[V]{cache: cache}
	}
	if workers > 1 && rt.growable {
		// Growth is capped: pool workers are persistent, so an oversized
		// per-call Workers must not pin unbounded goroutines forever.
		// Beyond the cap the scan splits at the clamped pool width, which
		// is safe because block outputs always merge in block order —
		// results are bit-identical at every split width.
		rt.pool.Grow(min(workers, maxDefaultPoolSize()))
	}
	if rt.pool.Size() <= 1 && workers <= 1 {
		return seqExecutor[V]{cache: cache}
	}
	return poolExecutor[V]{pool: rt.pool, limit: workers, cache: cache}
}

// maxDefaultPoolSize bounds the shared default pool: generous enough that
// tests and oversubscribed single-core runs get real concurrency, bounded
// so a stray Workers value cannot leak goroutines for the process lifetime.
func maxDefaultPoolSize() int {
	if n := 4 * runtime.GOMAXPROCS(0); n > 16 {
		return n
	}
	return 16
}

// defaultRT is the process-wide runtime behind the compatibility wrappers
// (Solve, InsideOut) and DefaultEngine.  Its pool starts at GOMAXPROCS and
// grows to meet explicit Workers requests.
var (
	defaultRTOnce sync.Once
	defaultRTVal  *engineRT
)

func defaultRT() *engineRT {
	defaultRTOnce.Do(func() {
		defaultRTVal = newEngineRT(EngineOptions{}, true)
	})
	return defaultRTVal
}

// Engine is a long-lived FAQ serving handle for value type V: a plan cache
// plus a persistent executor pool.  Engines are safe for concurrent use;
// create one per process (or per tenant) and Prepare queries against it.
type Engine[V any] struct {
	rt *engineRT
}

// NewEngine creates an engine with its own pool and plan cache.  Call Close
// when done to stop the pool's workers.
func NewEngine[V any](opts EngineOptions) *Engine[V] {
	return &Engine[V]{rt: newEngineRT(opts, false)}
}

// DefaultEngine returns a handle on the shared process-wide engine that
// also backs the Solve and InsideOut compatibility wrappers.  All value
// types share its plan cache, pool and stats; Close is a no-op on it.
func DefaultEngine[V any]() *Engine[V] {
	return &Engine[V]{rt: defaultRT()}
}

// StatsSnapshot returns a race-safe snapshot of the engine's counters:
// every field is an atomic load (PlansCached reads the LRU length under its
// mutex), so a snapshot taken while prepares and runs are in flight — the
// /statsz path of a serving daemon — never tears.  The snapshot is not a
// consistent cut across counters: a prepare between two loads can make
// Prepared and PlanCacheHits disagree by one, which is fine for monitoring.
func (e *Engine[V]) StatsSnapshot() EngineStats { return e.rt.stats() }

// Stats is the historical name of StatsSnapshot, kept for existing callers
// and tests; both read the same atomics.  New code — in particular anything
// polling a live engine — should call StatsSnapshot.
func (e *Engine[V]) Stats() EngineStats { return e.StatsSnapshot() }

// Retype returns a handle of value type V2 onto e's runtime: both handles
// share the plan cache, the persistent pool and the stats.  Plans depend
// only on the untyped shape, so a plan prepared through either handle
// serves shape-identical queries of both value types.  Closing either
// handle closes the shared runtime.
func Retype[V2, V1 any](e *Engine[V1]) *Engine[V2] { return &Engine[V2]{rt: e.rt} }

// Close stops the engine's persistent workers and waits for them to exit.
// Prepared queries remain usable — runs after Close execute sequentially.
// Closing the default engine is a no-op.  (The default runtime is the only
// growable one, so the flag doubles as its identity — avoiding a racy read
// of the lazily-written package variable.)
func (e *Engine[V]) Close() {
	if e.rt.growable {
		return
	}
	e.rt.pool.Close()
}

// Prepare plans q (through the plan cache) with the Algorithm-1 execution
// options at the engine's full pool width.
func (e *Engine[V]) Prepare(q *Query[V]) (*PreparedQuery[V], error) {
	return e.PrepareCtx(context.Background(), q, DefaultOptions())
}

// PrepareOpts is Prepare with explicit execution options (captured for
// every subsequent Run).
func (e *Engine[V]) PrepareOpts(q *Query[V], opts Options) (*PreparedQuery[V], error) {
	return e.PrepareCtx(context.Background(), q, opts)
}

// PrepareCtx is PrepareOpts under a context: the exact-DP planner observes
// cancellation, so preparing an adversarially wide query can be bounded.
func (e *Engine[V]) PrepareCtx(ctx context.Context, q *Query[V], opts Options) (*PreparedQuery[V], error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	s := q.Shape()
	sk := s.Key()
	plan, err := e.rt.planFor(ctx, s, sk)
	if err != nil {
		return nil, err
	}
	e.rt.prepared.Add(1)
	tc := trieCacheFor[V](e.rt)
	tc.Register(q.Factors...)
	return &PreparedQuery[V]{rt: e.rt, q: q, plan: plan, opts: opts, tries: tc, shapeKey: sk}, nil
}

// PrepareOrder binds q to an explicit variable ordering with the given
// execution options, bypassing the planners and the cache.  Like InsideOut,
// it checks that order is a permutation listing the free variables first;
// φ-equivalence (membership in EVO(φ)) is the caller's responsibility —
// InEVO verifies it.
func (e *Engine[V]) PrepareOrder(q *Query[V], order []int, opts Options) (*PreparedQuery[V], error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	s := q.Shape()
	if err := s.checkOrder(order); err != nil {
		return nil, err
	}
	w, _, err := FAQWidth(s, hypergraph.NewWidthCalc(s.H), order)
	if err != nil {
		return nil, err
	}
	plan := &Plan{Order: append([]int(nil), order...), Width: w, Method: "user"}
	e.rt.prepared.Add(1)
	tc := trieCacheFor[V](e.rt)
	tc.Register(q.Factors...)
	return &PreparedQuery[V]{rt: e.rt, q: q, plan: plan, opts: opts, tries: tc, shapeKey: s.Key()}, nil
}

// PreparedQuery is a planned FAQ query bound to an engine: the Section 6–7
// work is done, every Run is pure InsideOut.  A PreparedQuery is safe for
// concurrent Runs; the prepared query and its factors must not be mutated
// (swap data with RunWithFactors instead).
type PreparedQuery[V any] struct {
	rt   *engineRT
	q    *Query[V]
	plan *Plan
	opts Options
	// shapeKey is the query's Shape.Key(), captured at Prepare so serving
	// paths (shape metrics, pprof labels, slow-query log) never recompute
	// it — Shape() allocates.
	shapeKey string
	// tries is the engine-wide versioned trie cache for this value type,
	// shared by every PreparedQuery of the engine.  Prepare registers the
	// query's factors, so a warm repeat Run skips the trie-build phase
	// entirely; ApplyDeltas commits new factor versions through
	// TrieCache.Update, which drops the superseded entries, so nothing
	// stale is ever served.  Unregistered (transient) factors bypass the
	// cache and never pin memory.
	tries *join.TrieCache[V]

	// deltaMu serializes ApplyDeltas calls; deltaSt is the incremental
	// maintenance state (current factor versions plus the cached result or
	// per-block results), created lazily on first use.
	deltaMu sync.Mutex
	deltaSt *deltaState[V]
}

// Plan returns the cached plan.  Treat it as read-only: it may be shared
// with other prepared queries of the same shape.
func (p *PreparedQuery[V]) Plan() *Plan { return p.plan }

// ShapeKey returns the query's plan-shape key (Shape.Key form), captured
// once at Prepare time.
func (p *PreparedQuery[V]) ShapeKey() string { return p.shapeKey }

// Query returns the underlying query (read-only).
func (p *PreparedQuery[V]) Query() *Query[V] { return p.q }

// Run executes InsideOut against the cached plan on the engine's pool.
// Cancellation is observed between elimination steps and at block
// boundaries; a cancelled run returns ctx.Err() with no goroutine leaked.
func (p *PreparedQuery[V]) Run(ctx context.Context) (*Result[V], error) {
	return p.run(ctx, p.q, p.tries)
}

// RunWithFactors is Run with the prepared factors replaced by fresh data of
// the same shape: factors[i] must cover exactly the same variables as the
// prepared query's i-th factor, so the cached plan (a property of the shape
// alone) stays valid.  This is the data-refresh path of a serving loop.
func (p *PreparedQuery[V]) RunWithFactors(ctx context.Context, factors []*factor.Factor[V]) (*Result[V], error) {
	if len(factors) != len(p.q.Factors) {
		return nil, fmt.Errorf("core: RunWithFactors got %d factors, prepared query has %d",
			len(factors), len(p.q.Factors))
	}
	for i, f := range factors {
		if f == nil || !slices.Equal(f.Vars, p.q.Factors[i].Vars) {
			return nil, fmt.Errorf("core: RunWithFactors factor %d covers %v, prepared factor covers %v",
				i, factorVars(factors[i]), p.q.Factors[i].Vars)
		}
	}
	nq := *p.q
	nq.Factors = factors
	if err := nq.Validate(); err != nil { // fresh data: check domain bounds once
		return nil, err
	}
	// Fresh factors are not registered in the engine's versioned trie cache,
	// so they would bypass it anyway; passing no cache keeps the bypass
	// explicit and skips the lookups.  Callers mutating data in place should
	// prefer ApplyDeltas, which registers the new versions and invalidates
	// the superseded ones.
	return p.run(ctx, &nq, nil)
}

func factorVars[V any](f *factor.Factor[V]) []int {
	if f == nil {
		return nil
	}
	return f.Vars
}

// run executes an already-validated query against the cached plan (Prepare
// and RunWithFactors validate; Run reuses the data validated at Prepare).
func (p *PreparedQuery[V]) run(ctx context.Context, q *Query[V], cache *join.TrieCache[V]) (*Result[V], error) {
	if ctx == nil {
		ctx = context.Background()
	}
	res, err := insideOutValidated(ctx, q, p.plan.Order, p.opts, rtExecutor(p.rt, p.opts.Workers, cache))
	if err != nil {
		if ctx.Err() != nil {
			p.rt.cancelled.Add(1)
		}
		return nil, err
	}
	p.rt.runs.Add(1)
	return res, nil
}

// planCache is a mutex-guarded LRU from shape keys to plans.
type planCache struct {
	mu    sync.Mutex
	cap   int
	lru   *list.List // front = most recently used; values are *cacheSlot
	byKey map[string]*list.Element
}

type cacheSlot struct {
	key  string
	plan *Plan
}

// newPlanCache returns nil (caching disabled) for capacity < 1; the nil
// receiver is valid on every method.
func newPlanCache(capacity int) *planCache {
	if capacity < 1 {
		return nil
	}
	return &planCache{cap: capacity, lru: list.New(), byKey: map[string]*list.Element{}}
}

func (c *planCache) get(key string) (*Plan, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*cacheSlot).plan, true
}

func (c *planCache) put(key string, p *Plan) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok { // lost a plan race; keep the newest
		c.lru.MoveToFront(el)
		el.Value.(*cacheSlot).plan = p
		return
	}
	c.byKey[key] = c.lru.PushFront(&cacheSlot{key: key, plan: p})
	for c.lru.Len() > c.cap {
		last := c.lru.Back()
		c.lru.Remove(last)
		delete(c.byKey, last.Value.(*cacheSlot).key)
	}
}

func (c *planCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
