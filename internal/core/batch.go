package core

import (
	"context"
	"sync"
	"time"

	"github.com/faqdb/faq/internal/factor"
)

// RunBatch pipelines many executions of one prepared query: the Section
// 6–7 work (validation, planning, trie registration) is paid once by
// Prepare, and each batch item is a pure InsideOut run.  sets[i] is the
// i-th item's factor data, with the same shape contract as
// RunWithFactors; a nil entry runs the prepared factors themselves (the
// warm trie-cache path).  At most parallel items run concurrently
// (values < 1 mean 1); items are admitted in index order but complete in
// any order.
//
// emit is called exactly once per item — (index, result, elapsed, nil) on
// success, (index, nil, elapsed, err) on failure, elapsed being the
// item's own run wall time (zero for items aborted before admission) —
// serialized under an internal mutex, so the callback may write to
// shared state (a response stream, a result slice) without its own
// locking.  Cancellation is observed both at admission (items not yet
// started emit ctx.Err() immediately) and inside running items, between
// elimination steps and at block boundaries; no goroutine outlives the
// call.  RunBatch returns ctx.Err(), nil when the batch ran to
// completion — per-item failures are reported through emit only, so one
// bad item does not mask the rest.
func (p *PreparedQuery[V]) RunBatch(ctx context.Context, sets [][]*factor.Factor[V], parallel int, emit func(i int, res *Result[V], elapsed time.Duration, err error)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if parallel < 1 {
		parallel = 1
	}
	var (
		mu  sync.Mutex
		wg  sync.WaitGroup
		sem = make(chan struct{}, parallel)
	)
	report := func(i int, res *Result[V], elapsed time.Duration, err error) {
		mu.Lock()
		defer mu.Unlock()
		emit(i, res, elapsed, err)
	}
	for i := range sets {
		if err := ctx.Err(); err != nil {
			report(i, nil, 0, err)
			continue
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			report(i, nil, 0, ctx.Err())
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			start := time.Now()
			var res *Result[V]
			var err error
			if sets[i] == nil {
				res, err = p.Run(ctx)
			} else {
				res, err = p.RunWithFactors(ctx, sets[i])
			}
			report(i, res, time.Since(start), err)
		}(i)
	}
	wg.Wait()
	return ctx.Err()
}
