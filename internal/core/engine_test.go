package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/semiring"
)

// triangleQuery builds the triangle-count query over a deterministic edge
// set parameterized by a value shift, so different data shares one shape.
func engineTriangleQuery(t *testing.T, dom int, shift float64) *Query[float64] {
	t.Helper()
	d := semiring.Float()
	var tuples [][]int
	var values []float64
	for a := 0; a < dom; a++ {
		for b := 0; b < dom; b++ {
			if (a*7+b*3)%4 == 0 && a != b {
				tuples = append(tuples, []int{a, b})
				values = append(values, 1+shift)
			}
		}
	}
	mk := func(vars []int) *factor.Factor[float64] {
		f, err := factor.New(d, vars, tuples, values, nil)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	return &Query[float64]{
		D: d, NVars: 3, DomSizes: []int{dom, dom, dom}, NumFree: 0,
		Aggs: []Aggregate[float64]{
			SemiringAgg(semiring.OpFloatSum()),
			SemiringAgg(semiring.OpFloatSum()),
			SemiringAgg(semiring.OpFloatSum()),
		},
		Factors: []*factor.Factor[float64]{mk([]int{0, 1}), mk([]int{1, 2}), mk([]int{0, 2})},
	}
}

func TestShapeKeyDistinguishesShapes(t *testing.T) {
	qa := engineTriangleQuery(t, 8, 0)
	qb := engineTriangleQuery(t, 12, 1) // different data + domain, same shape
	if qa.Shape().Key() != qb.Shape().Key() {
		t.Fatalf("shape keys differ for shape-identical queries:\n%s\n%s",
			qa.Shape().Key(), qb.Shape().Key())
	}
	qc := engineTriangleQuery(t, 8, 0)
	qc.Aggs[2] = SemiringAgg(semiring.OpFloatMax())
	if qa.Shape().Key() == qc.Shape().Key() {
		t.Fatal("shape keys collide across different aggregates")
	}
	qd := engineTriangleQuery(t, 8, 0)
	qd.NumFree = 1
	qd.Aggs[0] = Free[float64]()
	if qa.Shape().Key() == qd.Shape().Key() {
		t.Fatal("shape keys collide across different free prefixes")
	}
}

func TestEnginePlanCacheAccounting(t *testing.T) {
	e := NewEngine[float64](EngineOptions{Workers: 2})
	defer e.Close()

	if _, err := e.Prepare(engineTriangleQuery(t, 8, 0)); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Prepared != 1 || st.PlanCacheMisses != 1 || st.PlanCacheHits != 0 || st.PlansCached != 1 {
		t.Fatalf("after first prepare: %+v", st)
	}
	// Shape-identical query (different data): must hit.
	if _, err := e.Prepare(engineTriangleQuery(t, 16, 2)); err != nil {
		t.Fatal(err)
	}
	st = e.Stats()
	if st.Prepared != 2 || st.PlanCacheMisses != 1 || st.PlanCacheHits != 1 || st.PlansCached != 1 {
		t.Fatalf("after shape-identical prepare: %+v", st)
	}
	// Different shape: miss again.
	q := engineTriangleQuery(t, 8, 0)
	q.NumFree = 1
	q.Aggs[0] = Free[float64]()
	if _, err := e.Prepare(q); err != nil {
		t.Fatal(err)
	}
	st = e.Stats()
	if st.PlanCacheMisses != 2 || st.PlansCached != 2 {
		t.Fatalf("after different-shape prepare: %+v", st)
	}
}

func TestEnginePlanCacheLRUEviction(t *testing.T) {
	e := NewEngine[float64](EngineOptions{Workers: 1, PlanCacheSize: 2})
	defer e.Close()
	shapes := []*Query[float64]{engineTriangleQuery(t, 6, 0), nil, nil}
	q1 := engineTriangleQuery(t, 6, 0)
	q1.NumFree = 1
	q1.Aggs[0] = Free[float64]()
	q2 := engineTriangleQuery(t, 6, 0)
	q2.NumFree = 2
	q2.Aggs[0] = Free[float64]()
	q2.Aggs[1] = Free[float64]()
	shapes[1], shapes[2] = q1, q2

	for _, q := range shapes { // 3 distinct shapes through a 2-entry cache
		if _, err := e.Prepare(q); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.Stats(); st.PlansCached != 2 || st.PlanCacheMisses != 3 {
		t.Fatalf("after filling: %+v", st)
	}
	// shapes[0] was evicted (LRU): preparing it again must miss.
	if _, err := e.Prepare(shapes[0]); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.PlanCacheMisses != 4 {
		t.Fatalf("evicted shape did not miss: %+v", st)
	}
	// shapes[2] is still resident: hit.
	if _, err := e.Prepare(shapes[2]); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.PlanCacheHits != 1 {
		t.Fatalf("resident shape did not hit: %+v", st)
	}
}

func TestPreparedRunMatchesBruteForce(t *testing.T) {
	e := NewEngine[float64](EngineOptions{Workers: 3})
	defer e.Close()
	q := engineTriangleQuery(t, 10, 0)
	prep, err := e.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prep.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := BruteForceScalar(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalar() != want {
		t.Fatalf("prepared run = %v, brute force = %v", res.Scalar(), want)
	}
	if st := e.Stats(); st.Runs != 1 {
		t.Fatalf("runs counter: %+v", st)
	}
}

func TestRunWithFactorsFreshData(t *testing.T) {
	e := NewEngine[float64](EngineOptions{Workers: 2})
	defer e.Close()
	prep, err := e.Prepare(engineTriangleQuery(t, 10, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Mutated data of the same shape: the cached plan must serve it and
	// match the oracle on the new query.
	fresh := engineTriangleQuery(t, 10, 3)
	res, err := prep.RunWithFactors(context.Background(), fresh.Factors)
	if err != nil {
		t.Fatal(err)
	}
	want, err := BruteForceScalar(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalar() != want {
		t.Fatalf("RunWithFactors = %v, brute force = %v", res.Scalar(), want)
	}
	// And the original data still runs unchanged afterwards.
	orig, err := prep.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	origWant, err := BruteForceScalar(engineTriangleQuery(t, 10, 0))
	if err != nil {
		t.Fatal(err)
	}
	if orig.Scalar() != origWant {
		t.Fatalf("original data after RunWithFactors = %v, want %v", orig.Scalar(), origWant)
	}
}

func TestRunWithFactorsRejectsShapeMismatch(t *testing.T) {
	e := NewEngine[float64](EngineOptions{Workers: 1})
	defer e.Close()
	q := engineTriangleQuery(t, 6, 0)
	prep, err := e.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prep.RunWithFactors(context.Background(), q.Factors[:2]); err == nil {
		t.Fatal("factor-count mismatch not rejected")
	}
	bad := engineTriangleQuery(t, 6, 0).Factors
	bad[0], bad[1] = bad[1], bad[0] // ψ_{12} where ψ_{01} was prepared
	if _, err := prep.RunWithFactors(context.Background(), bad); err == nil ||
		!strings.Contains(err.Error(), "covers") {
		t.Fatalf("support mismatch not rejected: %v", err)
	}
	// Fresh data exceeding the prepared domain must fail validation.
	big := engineTriangleQuery(t, 12, 0)
	if _, err := prep.RunWithFactors(context.Background(), big.Factors); err == nil {
		t.Fatal("out-of-domain fresh data not rejected")
	}
}

func TestPrepareOrderExplicitOrdering(t *testing.T) {
	e := NewEngine[float64](EngineOptions{Workers: 2})
	defer e.Close()
	q := engineTriangleQuery(t, 8, 0)
	prep, err := e.PrepareOrder(q, []int{2, 0, 1}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if prep.Plan().Method != "user" {
		t.Fatalf("method = %q", prep.Plan().Method)
	}
	res, err := prep.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := BruteForceScalar(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalar() != want {
		t.Fatalf("explicit-order run = %v, want %v", res.Scalar(), want)
	}
	if _, err := e.PrepareOrder(q, []int{0, 0, 1}, DefaultOptions()); err == nil {
		t.Fatal("non-permutation ordering not rejected")
	}
}

func TestPrepareCancelledPlanner(t *testing.T) {
	e := NewEngine[float64](EngineOptions{Workers: 1})
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.PrepareCtx(ctx, engineTriangleQuery(t, 6, 0), DefaultOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Prepare returned %v", err)
	}
}

func TestEnginePlannerOption(t *testing.T) {
	for _, planner := range []string{"auto", "exact", "greedy", "approx", "expression"} {
		e := NewEngine[float64](EngineOptions{Workers: 1, Planner: planner})
		prep, err := e.Prepare(engineTriangleQuery(t, 6, 0))
		if err != nil {
			t.Fatalf("planner %q: %v", planner, err)
		}
		res, err := prep.Run(context.Background())
		if err != nil {
			t.Fatalf("planner %q run: %v", planner, err)
		}
		want, _ := BruteForceScalar(engineTriangleQuery(t, 6, 0))
		if res.Scalar() != want {
			t.Fatalf("planner %q: got %v want %v", planner, res.Scalar(), want)
		}
		e.Close()
	}
	e := NewEngine[float64](EngineOptions{Planner: "nonsense"})
	defer e.Close()
	if _, err := e.Prepare(engineTriangleQuery(t, 6, 0)); err == nil {
		t.Fatal("unknown planner not rejected")
	}
}

func TestValidateRejectsNonSemiringAggregate(t *testing.T) {
	// Regression for the OpFloatMin lawfulness quirk surfaced by the PR-1
	// harness: min over (float64, ·) silently violates min(x, 0) = x, so
	// the engine must refuse it and point at the Tropical domain.
	q := engineTriangleQuery(t, 6, 0)
	q.Aggs[1] = SemiringAgg(semiring.OpFloatMin())
	err := q.Validate()
	if err == nil {
		t.Fatal("OpFloatMin aggregate passed Validate")
	}
	if !strings.Contains(err.Error(), "Tropical") {
		t.Fatalf("error does not route users to Tropical: %v", err)
	}
	if _, _, err := Solve(q, DefaultOptions()); err == nil {
		t.Fatal("Solve accepted an OpFloatMin aggregate")
	}
	e := NewEngine[float64](EngineOptions{})
	defer e.Close()
	if _, err := e.Prepare(q); err == nil {
		t.Fatal("Prepare accepted an OpFloatMin aggregate")
	}

	// The lawful formulation: same min-product program in the Tropical
	// domain (Zero = +∞, ⊗ = +), where min(x, Zero) = x holds.
	d := semiring.Tropical()
	mk := func(vars []int) *factor.Factor[float64] {
		return factor.FromFunc(d, vars, []int{4, 4, 4}, func(tup []int) float64 {
			return float64(tup[0] + 2*tup[1])
		})
	}
	tq := &Query[float64]{
		D: d, NVars: 3, DomSizes: []int{4, 4, 4}, NumFree: 0,
		Aggs: []Aggregate[float64]{
			SemiringAgg(semiring.OpTropicalMin()),
			SemiringAgg(semiring.OpTropicalMin()),
			SemiringAgg(semiring.OpTropicalMin()),
		},
		Factors: []*factor.Factor[float64]{mk([]int{0, 1}), mk([]int{1, 2}), mk([]int{0, 2})},
	}
	res, _, err := Solve(tq, DefaultOptions())
	if err != nil {
		t.Fatalf("tropical min-product: %v", err)
	}
	want, err := BruteForceScalar(tq)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalar() != want {
		t.Fatalf("tropical min-product = %v, brute force = %v", res.Scalar(), want)
	}
}
