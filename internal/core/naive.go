package core

import (
	"github.com/faqdb/faq/internal/factor"
)

// BruteForce evaluates the query by direct recursion over Eq. (1): for every
// assignment of the free variables it folds the bound aggregates from the
// outermost in, enumerating the full domain box.  Exponential in n; it is
// the ground-truth oracle for the test suite and the "no non-trivial
// algorithm" baseline of Table 1.
func BruteForce[V any](q *Query[V]) (*factor.Factor[V], error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	assignment := make([]int, q.NVars)
	var evalBound func(i int) V
	evalBound = func(i int) V {
		if i == q.NVars {
			val := q.D.One
			for _, f := range q.Factors {
				val = q.D.Mul(val, f.At(q.D, assignment))
				if q.D.IsZero(val) {
					return q.D.Zero
				}
			}
			return val
		}
		var acc V
		first := true
		for x := 0; x < q.DomSizes[i]; x++ {
			assignment[i] = x
			v := evalBound(i + 1)
			if first {
				acc = v
				first = false
				continue
			}
			if q.Aggs[i].Kind == KindProduct {
				acc = q.D.Mul(acc, v)
			} else {
				acc = q.Aggs[i].Op.Combine(acc, v)
			}
		}
		return acc
	}

	var tuples [][]int
	var values []V
	var freeRec func(i int)
	freeRec = func(i int) {
		if i == q.NumFree {
			v := evalBound(q.NumFree)
			if !q.D.IsZero(v) {
				t := make([]int, q.NumFree)
				copy(t, assignment[:q.NumFree])
				tuples = append(tuples, t)
				values = append(values, v)
			}
			return
		}
		for x := 0; x < q.DomSizes[i]; x++ {
			assignment[i] = x
			freeRec(i + 1)
		}
	}
	freeRec(0)
	freeVars := make([]int, q.NumFree)
	for i := range freeVars {
		freeVars[i] = i
	}
	return factor.New(q.D, freeVars, tuples, values, nil)
}

// BruteForceScalar is BruteForce for queries without free variables.
func BruteForceScalar[V any](q *Query[V]) (V, error) {
	out, err := BruteForce(q)
	if err != nil {
		var zero V
		return zero, err
	}
	if out.Size() == 0 {
		return q.D.Zero, nil
	}
	return out.Values[0], nil
}
