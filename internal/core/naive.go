package core

import (
	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/join"
)

// BruteForce evaluates the query by direct recursion over Eq. (1): for every
// assignment of the free variables it folds the bound aggregates from the
// outermost in, enumerating the full domain box.  Exponential in n; it is
// the ground-truth oracle for the test suite and the "no non-trivial
// algorithm" baseline of Table 1.
func BruteForce[V any](q *Query[V]) (*factor.Factor[V], error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	assignment := make([]int, q.NVars)
	var tuples [][]int
	var values []V
	bruteFree(q, assignment, 0, func(t []int, v V) {
		tuples = append(tuples, t)
		values = append(values, v)
	})
	freeVars := make([]int, q.NumFree)
	for i := range freeVars {
		freeVars[i] = i
	}
	return factor.New(q.D, freeVars, tuples, values, nil)
}

// bruteFree enumerates assignments of the free variables from index i on,
// emitting each tuple with a non-zero value of the bound fold.
func bruteFree[V any](q *Query[V], assignment []int, i int, emit func(t []int, v V)) {
	if i == q.NumFree {
		v := bruteBound(q, assignment, q.NumFree)
		if !q.D.IsZero(v) {
			t := make([]int, q.NumFree)
			copy(t, assignment[:q.NumFree])
			emit(t, v)
		}
		return
	}
	for x := 0; x < q.DomSizes[i]; x++ {
		assignment[i] = x
		bruteFree(q, assignment, i+1, emit)
	}
}

// bruteBound folds the bound aggregates from variable i inward under the
// given partial assignment.
func bruteBound[V any](q *Query[V], assignment []int, i int) V {
	if i == q.NVars {
		val := q.D.One
		for _, f := range q.Factors {
			val = q.D.Mul(val, f.At(q.D, assignment))
			if q.D.IsZero(val) {
				return q.D.Zero
			}
		}
		return val
	}
	var acc V
	for x := 0; x < q.DomSizes[i]; x++ {
		assignment[i] = x
		v := bruteBound(q, assignment, i+1)
		if x == 0 {
			acc = v
			continue
		}
		acc = bruteCombine(q, i, acc, v)
	}
	return acc
}

func bruteCombine[V any](q *Query[V], i int, acc, v V) V {
	if q.Aggs[i].Kind == KindProduct {
		return q.D.Mul(acc, v)
	}
	return q.Aggs[i].Op.Combine(acc, v)
}

// BruteForcePar is BruteForce with the outermost variable's domain fanned
// out over a worker pool (0 means GOMAXPROCS).  Per-value partial results
// are folded back in domain order — the exact operation sequence of the
// sequential oracle — so every worker count returns bit-identical factors.
// It exists to keep randomized cross-checking harnesses fast.
func BruteForcePar[V any](q *Query[V], workers int) (*factor.Factor[V], error) {
	workers = join.Workers(workers)
	if q.NVars == 0 || workers <= 1 {
		return BruteForce(q)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	type part struct {
		tuples [][]int
		values []V
		scalar V
	}
	dom0 := q.DomSizes[0]
	parts := make([]part, dom0)
	join.ParallelFor(dom0, workers, func(x int) {
		assignment := make([]int, q.NVars)
		assignment[0] = x
		p := &parts[x]
		if q.NumFree > 0 {
			bruteFree(q, assignment, 1, func(t []int, v V) {
				p.tuples = append(p.tuples, t)
				p.values = append(p.values, v)
			})
		} else {
			p.scalar = bruteBound(q, assignment, 1)
		}
	})

	freeVars := make([]int, q.NumFree)
	for i := range freeVars {
		freeVars[i] = i
	}
	if q.NumFree == 0 {
		acc := parts[0].scalar
		for x := 1; x < dom0; x++ {
			acc = bruteCombine(q, 0, acc, parts[x].scalar)
		}
		var tuples [][]int
		var values []V
		if !q.D.IsZero(acc) {
			tuples, values = [][]int{{}}, []V{acc}
		}
		return factor.New(q.D, freeVars, tuples, values, nil)
	}
	var tuples [][]int
	var values []V
	for x := range parts {
		tuples = append(tuples, parts[x].tuples...)
		values = append(values, parts[x].values...)
	}
	return factor.New(q.D, freeVars, tuples, values, nil)
}

// BruteForceScalar is BruteForce for queries without free variables.
func BruteForceScalar[V any](q *Query[V]) (V, error) {
	out, err := BruteForce(q)
	if err != nil {
		var zero V
		return zero, err
	}
	if out.Size() == 0 {
		return q.D.Zero, nil
	}
	return out.Values[0], nil
}
