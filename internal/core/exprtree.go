package core

import (
	"fmt"
	"sort"
	"strings"

	"github.com/faqdb/faq/internal/bitset"
)

// ExprNode is a node of the expression tree (Definitions 6.1/6.18): a set of
// variables sharing one tag, with children for the (extended) connected
// components that arise after conditioning on the node.  Product variables
// may occur in several nodes (copies); semiring and free variables occur in
// exactly one.
type ExprNode struct {
	Vars     []int // sorted ascending
	Tag      string
	Children []*ExprNode
}

// effectiveEdges returns the hyperedges the ordering theory operates on.
//
// When the product ⊗ is not promised idempotent on the inputs, every edge
// is extended with all product variables (Definition 6.30) so that product
// variables impose order on the rest even across components.
//
// Under the idempotent-inputs promise a further anchoring is required for
// soundness under flat rewriting (Definition 5.7 semantics, which is what
// running InsideOut along σ implements): a semiring aggregate not closed
// under D_I (Σ over N in #QCQ, say) produces intermediate values outside
// D_I, so it may not move inside a product scope even when its component
// is disjoint from the product variable — the product would raise its
// value to the |Dom| power.  (The paper's Figure 6 tree is sound under the
// scoped-factorization reading used in Example 6.19's derivation; see
// BuildExprTreeScoped.)  We therefore extend every edge touching a
// non-closed variable with all product variables, which pins those
// variables outside all product scopes exactly as in the input form (21).
func effectiveEdges(s *Shape, scoped bool) []bitset.Set {
	edges := make([]bitset.Set, len(s.H.Edges))
	extendAll := !s.IdempotentInputs && !s.Product.IsEmpty()
	anchor := !scoped && !s.Product.IsEmpty() && !s.NonClosed.IsEmpty()
	for i, e := range s.H.Edges {
		c := e.Clone()
		if extendAll || (anchor && e.Intersects(s.NonClosed)) {
			c.UnionWith(s.Product)
		}
		edges[i] = c
	}
	return edges
}

// soundEdges is effectiveEdges in the flat-rewriting (sound) mode used by
// the planner and the EVO machinery.
func soundEdges(s *Shape) []bitset.Set { return effectiveEdges(s, false) }

// BuildExprTree constructs the compressed expression tree of the query
// (compartmentalization then compression).  The root always carries the
// free variables with tag "free"; it is empty when the query has none
// (the paper's dummy variable X₀ device).
func BuildExprTree(s *Shape) *ExprNode {
	return buildTree(s, soundEdges(s))
}

// BuildExprTreeScoped builds the expression tree exactly as in Definition
// 6.18, without the non-closed-aggregate anchoring of BuildExprTree.  The
// resulting tree matches the paper's Figures 2–6 and is sound under the
// scoped factorization of Example 6.19, but its linear extensions are not
// all value-preserving under flat rewriting; use it for display and for
// reproducing the paper's figures only.
func BuildExprTreeScoped(s *Shape) *ExprNode {
	return buildTree(s, effectiveEdges(s, true))
}

func buildTree(s *Shape, edges []bitset.Set) *ExprNode {
	seq := make([]int, s.N)
	for i := range seq {
		seq[i] = i
	}
	root := compartmentalize(s, seq, edges, true)
	compress(root)
	sortTree(root)
	return root
}

// extComponent is one extended component: its vertex set V′ (component
// vertices plus adjacent product variables) and edge set E′.
type extComponent struct {
	verts bitset.Set
	edges []bitset.Set
}

// extendedComponents splits (vars, edges) around the removed block L:
// W is the set of product variables of vars outside L; base components of
// vars − L − W are extended with their adjacent W variables (Definition
// 6.18).  The second result is the dangling product set D.
func extendedComponents(s *Shape, vars bitset.Set, edges []bitset.Set, l bitset.Set) ([]extComponent, bitset.Set) {
	w := vars.Intersect(s.Product).Minus(l)
	base := vars.Minus(l).Minus(w)

	// Union-find over base vertices through edge intersections.
	parent := map[int]int{}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	base.ForEach(func(v int) { parent[v] = v })
	for _, e := range edges {
		in := e.Intersect(base).Elems()
		for i := 1; i < len(in); i++ {
			ra, rb := find(in[0]), find(in[i])
			if ra != rb {
				parent[ra] = rb
			}
		}
	}
	groups := map[int]*bitset.Set{}
	var roots []int
	base.ForEach(func(v int) {
		r := find(v)
		g, ok := groups[r]
		if !ok {
			sset := bitset.New()
			groups[r] = &sset
			g = &sset
			roots = append(roots, r)
		}
		g.Add(v)
	})
	sort.Ints(roots)

	var comps []extComponent
	for _, r := range roots {
		c := *groups[r]
		vprime := c.Clone()
		var eprime []bitset.Set
		for _, e := range edges {
			if !e.Intersects(c) {
				continue
			}
			vprime.UnionWith(e.Intersect(w))
		}
		for _, e := range edges {
			if !e.Intersects(c) {
				continue
			}
			ee := e.Intersect(vprime)
			if !ee.IsEmpty() {
				eprime = append(eprime, ee)
			}
		}
		comps = append(comps, extComponent{verts: vprime, edges: eprime})
	}

	// Dangling product set: D = ∪ { S∩W : S ∈ E, (S \ L) ⊆ W }.
	dangling := bitset.New()
	for _, e := range edges {
		rest := e.Intersect(vars).Minus(l)
		if rest.SubsetOf(w) {
			dangling.UnionWith(rest)
		}
	}
	return comps, dangling
}

// compartmentalize builds the uncompressed expression tree for the tagged
// variable sequence seq with hyperedges edges.  At the top level the root is
// forced to be the (possibly empty) free block.
func compartmentalize(s *Shape, seq []int, edges []bitset.Set, top bool) *ExprNode {
	if len(seq) == 0 && !top {
		return nil
	}
	var l []int
	if top {
		for _, v := range seq {
			if s.Tags[v] != tagFree {
				break
			}
			l = append(l, v)
		}
	} else {
		tag := s.Tags[seq[0]]
		for _, v := range seq {
			if s.Tags[v] != tag {
				break
			}
			l = append(l, v)
		}
	}
	tag := tagFree
	if !top {
		tag = s.Tags[seq[0]]
	}
	node := &ExprNode{Vars: append([]int(nil), l...), Tag: tag}
	sort.Ints(node.Vars)
	if len(l) == len(seq) {
		return node
	}

	varSet := bitset.FromSlice(seq)
	lset := bitset.FromSlice(l)
	comps, dangling := extendedComponents(s, varSet, edges, lset)
	for _, c := range comps {
		var sub []int
		for _, v := range seq {
			if c.verts.Contains(v) {
				sub = append(sub, v)
			}
		}
		if child := compartmentalize(s, sub, c.edges, false); child != nil {
			node.Children = append(node.Children, child)
		}
	}
	if !dangling.IsEmpty() {
		node.Children = append(node.Children, &ExprNode{Vars: dangling.Elems(), Tag: tagProduct})
	}
	return node
}

// compress repeatedly merges children sharing the parent's tag
// (Definition 6.1, compression step).
func compress(n *ExprNode) {
	for {
		merged := false
		var kids []*ExprNode
		for _, c := range n.Children {
			if c.Tag == n.Tag {
				n.Vars = unionSorted(n.Vars, c.Vars)
				kids = append(kids, c.Children...)
				merged = true
			} else {
				kids = append(kids, c)
			}
		}
		n.Children = kids
		if !merged {
			break
		}
	}
	for _, c := range n.Children {
		compress(c)
	}
}

func unionSorted(a, b []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, x := range a {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	for _, x := range b {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	sort.Ints(out)
	return out
}

// sortTree orders children canonically (by their rendered form) so golden
// tests and printouts are deterministic.
func sortTree(n *ExprNode) {
	for _, c := range n.Children {
		sortTree(c)
	}
	sort.Slice(n.Children, func(i, j int) bool {
		return n.Children[i].Render() < n.Children[j].Render()
	})
}

// Render serializes the tree one-line: "{1,2}op:sum[{3}op:max[...] ...]".
func (n *ExprNode) Render() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, v := range n.Vars {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteByte('}')
	b.WriteString(n.Tag)
	if len(n.Children) > 0 {
		b.WriteByte('[')
		for i, c := range n.Children {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(c.Render())
		}
		b.WriteByte(']')
	}
	return b.String()
}

// Pretty renders the tree as an indented multi-line listing with variable
// names supplied by name(v).
func (n *ExprNode) Pretty(name func(int) string) string {
	var b strings.Builder
	var walk func(node *ExprNode, depth int)
	walk = func(node *ExprNode, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		var names []string
		for _, v := range node.Vars {
			names = append(names, name(v))
		}
		fmt.Fprintf(&b, "[%s] %s\n", strings.Join(names, ","), node.Tag)
		for _, c := range node.Children {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return b.String()
}

// Nodes returns the tree in preorder.
func (n *ExprNode) Nodes() []*ExprNode {
	var out []*ExprNode
	var walk func(node *ExprNode)
	walk = func(node *ExprNode) {
		out = append(out, node)
		for _, c := range node.Children {
			walk(c)
		}
	}
	walk(n)
	return out
}
