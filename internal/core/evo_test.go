package core

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/hypergraph"
	"github.com/faqdb/faq/internal/semiring"
)

// TestEVOExample613 reproduces Example 6.13: for
// φ = Σx0 max_x1 Σx2 ψ01 ψ02 we must get
// EVO(φ) = {(0,1,2), (0,2,1), (2,0,1)} and LinEx(P) = {(0,2,1), (2,0,1)}.
func TestEVOExample613(t *testing.T) {
	tags := []string{"op:sum", "op:max", "op:sum"}
	s := shapeOf(3, 0, tags, [][]int{{0, 1}, {0, 2}}, false)
	tree := BuildExprTree(s)
	if got := tree.Render(); got != "{}free[{0,2}op:sum[{1}op:max]]" {
		t.Fatalf("tree = %s", got)
	}
	p, err := NewPoset(tree, s.N)
	if err != nil {
		t.Fatal(err)
	}
	var linex [][]int
	p.EnumerateLinearExtensions(func(order []int) bool {
		linex = append(linex, append([]int(nil), order...))
		return true
	})
	wantLinex := [][]int{{0, 2, 1}, {2, 0, 1}}
	if !sameOrderSet(linex, wantLinex) {
		t.Fatalf("LinEx = %v, want %v", linex, wantLinex)
	}

	evo, err := EnumerateEVO(s)
	if err != nil {
		t.Fatal(err)
	}
	wantEVO := [][]int{{0, 1, 2}, {0, 2, 1}, {2, 0, 1}}
	if !sameOrderSet(evo, wantEVO) {
		t.Fatalf("EVO = %v, want %v", evo, wantEVO)
	}
	for _, order := range wantEVO {
		if ok, err := InEVO(s, order); err != nil || !ok {
			t.Fatalf("InEVO(%v) = %v, %v; want true", order, ok, err)
		}
	}
	for _, order := range [][]int{{1, 0, 2}, {1, 2, 0}, {2, 1, 0}} {
		if ok, _ := InEVO(s, order); ok {
			t.Fatalf("InEVO(%v) = true; want false", order)
		}
	}
	// Proposition 6.11: all EVO members share the FAQ-width (here 1).
	wc := hypergraph.NewWidthCalc(s.H)
	for _, order := range wantEVO {
		w, _, err := FAQWidth(s, wc, order)
		if err != nil {
			t.Fatal(err)
		}
		if w != 1 {
			t.Fatalf("faqw(%v) = %v, want 1", order, w)
		}
	}
}

// TestEVOBeyondLinEx reproduces the Section 6.1 counterexample: for
// φ = Σx0 Σx1 max_x2 max_x3 Σx4 ψ04 ψ14 ψ02 ψ13, the orderings
// (4,0,2,1,3) and (4,1,3,0,2) are φ-equivalent but not linear extensions.
func TestEVOBeyondLinEx(t *testing.T) {
	tags := []string{"op:sum", "op:sum", "op:max", "op:max", "op:sum"}
	s := shapeOf(5, 0, tags, [][]int{{0, 4}, {1, 4}, {0, 2}, {1, 3}}, false)
	tree := BuildExprTree(s)
	if got := tree.Render(); got != "{}free[{0,1,4}op:sum[{2}op:max {3}op:max]]" {
		t.Fatalf("tree = %s", got)
	}
	p, err := NewPoset(tree, s.N)
	if err != nil {
		t.Fatal(err)
	}
	for _, order := range [][]int{{4, 0, 2, 1, 3}, {4, 1, 3, 0, 2}} {
		if p.IsLinearExtension(order) {
			t.Fatalf("%v should not be a linear extension (2 precedes 1)", order)
		}
		ok, err := InEVO(s, order)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("InEVO(%v) = false; the paper shows it is equivalent", order)
		}
	}
	// An ordering that hoists a max above the Σ block is not equivalent.
	if ok, _ := InEVO(s, []int{2, 0, 1, 4, 3}); ok {
		t.Fatal("(2,0,1,4,3) must not be φ-equivalent")
	}
}

// TestEVOSoundnessBySemantics verifies Theorem 6.8/6.23 end to end: running
// InsideOut under any enumerated EVO ordering yields the same function as
// the expression order, on random inputs.  Odd trials use {0,1}-valued
// factors under the idempotent-inputs promise — the regime where Σ blocks
// must stay anchored outside product scopes.
func TestEVOSoundnessBySemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 80; trial++ {
		nv := 2 + rng.Intn(3)
		nf := rng.Intn(nv)
		q := randomQuery(rng, nv, nf)
		if trial%2 == 1 {
			for _, f := range q.Factors {
				for i := range f.Values {
					f.Values[i] = 1
				}
			}
			q.IdempotentInputs = true
		}
		s := q.Shape()
		want, err := BruteForce(q)
		if err != nil {
			t.Fatal(err)
		}
		evo, err := EnumerateEVO(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(evo) == 0 {
			t.Fatalf("trial %d: EVO is empty (must contain the expression order)", trial)
		}
		foundIdentity := false
		for _, order := range evo {
			if reflect.DeepEqual(order, s.ExpressionOrder()) {
				foundIdentity = true
			}
			res, err := InsideOut(q, order, DefaultOptions())
			if err != nil {
				t.Fatalf("trial %d order %v: %v", trial, order, err)
			}
			if !res.Output.Equal(fd, want) {
				t.Fatalf("trial %d: InsideOut under EVO order %v disagrees with brute force\nquery tags %v\n got %v\nwant %v",
					trial, order, s.Tags, res.Output, want)
			}
		}
		if !foundIdentity {
			t.Fatalf("trial %d: expression order missing from EVO (tags %v, edges %v)", trial, s.Tags, s.H)
		}
	}
}

// TestNonEVOOrderingCanDiffer demonstrates the converse of soundness:
// swapping sum past max (a non-EVO ordering) changes the result on the
// witness function of Proposition 6.7.
func TestNonEVOOrderingCanDiffer(t *testing.T) {
	// φ = Σ_x0 max_x1 ψ01 with ψ01 the 2×2 identity matrix:
	// Σ max = 1 + 1 = 2, but max Σ = max(1, 1) = 1.
	f01 := mkFactor(t, []int{0, 1}, [][]int{{0, 0}, {1, 1}}, []float64{1, 1})
	q := &Query[float64]{
		D: fd, NVars: 2, DomSizes: []int{2, 2}, NumFree: 0,
		Aggs: []Aggregate[float64]{
			SemiringAgg(semiring.OpFloatSum()),
			SemiringAgg(semiring.OpFloatMax()),
		},
		Factors: []*factor.Factor[float64]{f01},
	}
	if ok, _ := InEVO(q.Shape(), []int{1, 0}); ok {
		t.Fatal("(1,0) must not be φ-equivalent for Σ max")
	}
	want, err := BruteForceScalar(q)
	if err != nil {
		t.Fatal(err)
	}
	if want != 2 {
		t.Fatalf("brute force = %v, hand computed 2", want)
	}
	res, err := InsideOut(q, []int{1, 0}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Scalar(); got != 1 {
		t.Fatalf("swapped ordering computed %v, expected the different value 1", got)
	}
}

// sameOrderSet compares two sets of orderings ignoring sequence.
func sameOrderSet(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(o []int) string {
		s := ""
		for _, v := range o {
			s += string(rune('a' + v))
		}
		return s
	}
	m := map[string]bool{}
	for _, o := range a {
		m[key(o)] = true
	}
	for _, o := range b {
		if !m[key(o)] {
			return false
		}
	}
	return true
}
