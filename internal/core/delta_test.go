package core

import (
	"context"
	"errors"
	"testing"

	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/semiring"
)

// deltaTriangle builds a float triangle-count query small enough to reason
// about by hand: each relation holds the full 2×2 cross product.
func deltaTriangle() *Query[float64] {
	d := semiring.Float()
	mk := func(vars []int) *factor.Factor[float64] {
		return factor.FromFunc(d, vars, []int{2, 2, 2}, func([]int) float64 { return 1 })
	}
	return &Query[float64]{
		D: d, NVars: 3, DomSizes: []int{2, 2, 2}, NumFree: 0,
		Aggs: []Aggregate[float64]{
			SemiringAgg(semiring.OpFloatSum()),
			SemiringAgg(semiring.OpFloatSum()),
			SemiringAgg(semiring.OpFloatSum()),
		},
		Factors: []*factor.Factor[float64]{mk([]int{0, 1}), mk([]int{1, 2}), mk([]int{0, 2})},
	}
}

// TestApplyDeltasBatchIsAtomic: a batch whose FIRST delta is valid and whose
// SECOND is not must change nothing — no partial application, no committed
// factors, and the next result identical to the pre-batch one.
func TestApplyDeltasBatchIsAtomic(t *testing.T) {
	eng := NewEngine[float64](EngineOptions{Workers: 2})
	defer eng.Close()
	q := deltaTriangle()
	prep, err := eng.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	base, err := prep.ApplyDeltas(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}

	bad := []Delta[float64]{
		{Factor: 0, Op: factor.DeltaInsert, Rows: []int32{0, 0}, Values: []float64{7}},
		{Factor: 1, Op: factor.DeltaDelete, Rows: []int32{9, 9}}, // out of domain
	}
	if _, err := prep.ApplyDeltas(ctx, bad); !errors.Is(err, factor.ErrDeltaRange) {
		t.Fatalf("mixed batch: %v, want ErrDeltaRange", err)
	}
	for i, f := range prep.CurrentFactors() {
		if !f.Equal(q.D, q.Factors[i]) {
			t.Fatalf("factor %d changed after a rejected batch", i)
		}
	}
	res, err := prep.ApplyDeltas(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalar() != base.Scalar() {
		t.Fatalf("result drifted after a rejected batch: %v != %v", res.Scalar(), base.Scalar())
	}

	// Same shape through the other sentinels: absent delete and in-batch
	// duplicate, each preceded by a valid delta.
	for _, tc := range []struct {
		name string
		dl   Delta[float64]
		want error
	}{
		{"absent", Delta[float64]{Factor: 2, Op: factor.DeltaDelete, Rows: []int32{0, 0}}, factor.ErrDeltaAbsent},
		{"dup", Delta[float64]{Factor: 2, Op: factor.DeltaInsert,
			Rows: []int32{0, 0, 0, 0}, Values: []float64{1, 2}}, factor.ErrDeltaDup},
	} {
		batch := []Delta[float64]{
			{Factor: 0, Op: factor.DeltaInsert, Rows: []int32{0, 1}, Values: []float64{3}},
			tc.dl,
		}
		if tc.name == "absent" {
			// (0,0) is present in the base state, so delete it validly
			// first — the second delete of the same row is then absent.
			batch = append(batch, Delta[float64]{Factor: 2, Op: factor.DeltaDelete, Rows: []int32{0, 0}})
		}
		if _, err := prep.ApplyDeltas(ctx, batch); !errors.Is(err, tc.want) {
			t.Fatalf("%s batch: %v, want %v", tc.name, err, tc.want)
		}
		res, err := prep.ApplyDeltas(ctx, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Scalar() != base.Scalar() {
			t.Fatalf("%s: state drifted after rejection: %v != %v", tc.name, res.Scalar(), base.Scalar())
		}
	}
}

// TestApplyDeltasDeleteToEmptyFactor: draining a relation empties the join;
// re-inserting restores it — through the full executor, not just the factor
// layer — and the trie cache serves the evolving states correctly.
func TestApplyDeltasDeleteToEmptyFactor(t *testing.T) {
	eng := NewEngine[float64](EngineOptions{Workers: 2})
	defer eng.Close()
	q := deltaTriangle()
	prep, err := eng.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	base, err := prep.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if base.Scalar() != 8 { // 2×2×2 cross product
		t.Fatalf("baseline: %v, want 8", base.Scalar())
	}

	drain := []Delta[float64]{{Factor: 1, Op: factor.DeltaDelete,
		Rows: []int32{0, 0, 0, 1, 1, 0, 1, 1}}}
	res, err := prep.ApplyDeltas(ctx, drain)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalar() != 0 {
		t.Fatalf("drained join: %v, want 0", res.Scalar())
	}
	if got := prep.CurrentFactors()[1].Size(); got != 0 {
		t.Fatalf("factor 1 holds %d rows after the drain", got)
	}

	refill := []Delta[float64]{{Factor: 1, Op: factor.DeltaInsert,
		Rows: []int32{0, 0, 0, 1, 1, 0, 1, 1}, Values: []float64{1, 1, 1, 1}}}
	res, err = prep.ApplyDeltas(ctx, refill)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalar() != 8 {
		t.Fatalf("refilled join: %v, want 8", res.Scalar())
	}

	if _, err := prep.ApplyDeltas(ctx, []Delta[float64]{{Factor: -1}}); !errors.Is(err, ErrDeltaFactor) {
		t.Fatalf("negative factor index: %v, want ErrDeltaFactor", err)
	}
}

// TestApplyDeltasCountsStats: the engine counters must attribute work to the
// strategy that did it.
func TestApplyDeltasCountsStats(t *testing.T) {
	eng := NewEngine[float64](EngineOptions{Workers: 2})
	defer eng.Close()
	q := deltaTriangle()
	prep, err := eng.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := prep.DeltaStrategy(); got != "ring" {
		t.Fatalf("triangle count strategy: %q, want ring", got)
	}
	ctx := context.Background()
	if _, err := prep.ApplyDeltas(ctx, []Delta[float64]{{Factor: 0, Op: factor.DeltaInsert,
		Rows: []int32{0, 0}, Values: []float64{2}}}); err != nil {
		t.Fatal(err)
	}
	s := eng.StatsSnapshot()
	if s.DeltasApplied != 1 {
		t.Fatalf("DeltasApplied = %d, want 1", s.DeltasApplied)
	}
	if s.DeltaRingRuns == 0 {
		t.Fatalf("ring strategy ran but DeltaRingRuns = 0 (%+v)", s)
	}
}
