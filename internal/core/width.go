package core

import (
	"github.com/faqdb/faq/internal/bitset"
	"github.com/faqdb/faq/internal/hypergraph"
)

// K returns the variable set K of Eq. (13): free variables plus semiring
// variables.  Only their elimination sets U_k contribute to faqw.
func (s *Shape) K() bitset.Set {
	k := bitset.New()
	for v := 0; v < s.N; v++ {
		if !s.Product.Contains(v) {
			k.Add(v)
		}
	}
	return k
}

// FAQWidth computes the fractional FAQ-width faqw(σ) of a variable ordering
// (Definition 5.10): run the elimination hypergraph sequence of Definition
// 5.4 (product variables strip, semiring/free variables merge) and take the
// maximum ρ*_H(U_k) over k ∈ K, with ρ* measured against the original
// hyperedges.  The returned argmax names the responsible variable.
func FAQWidth(s *Shape, wc *hypergraph.WidthCalc, order []int) (width float64, argmax int, err error) {
	if err := s.checkOrder(order); err != nil {
		return 0, -1, err
	}
	steps := s.H.EliminationSequence(order, s.Product)
	argmax = -1
	for _, st := range steps {
		if s.Product.Contains(st.Vertex) {
			continue
		}
		if w := wc.RhoStar(st.U); w > width {
			width = w
			argmax = st.Vertex
		}
	}
	return width, argmax, nil
}

// InducedSets returns the elimination sets U_k (aligned with order) for
// diagnostic output.
func (s *Shape) InducedSets(order []int) []bitset.Set {
	steps := s.H.EliminationSequence(order, s.Product)
	out := make([]bitset.Set, len(steps))
	for i, st := range steps {
		out[i] = st.U
	}
	return out
}
