package core

import (
	"context"
	"math/rand"
	"testing"

	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/semiring"
)

// cacheTriangle builds a triangle-count query over random edge sets.
func cacheTriangle(seed int64, dom, edges int) *Query[float64] {
	d := semiring.Float()
	rng := rand.New(rand.NewSource(seed))
	mk := func(vars []int) *factor.Factor[float64] {
		var tuples [][]int
		var values []float64
		for i := 0; i < edges; i++ {
			tuples = append(tuples, []int{rng.Intn(dom), rng.Intn(dom)})
			values = append(values, 1)
		}
		f, err := factor.New(d, vars, tuples, values, func(a, b float64) float64 { return a })
		if err != nil {
			panic(err)
		}
		return f
	}
	return &Query[float64]{
		D: d, NVars: 3, DomSizes: []int{dom, dom, dom}, NumFree: 0,
		Aggs: []Aggregate[float64]{
			SemiringAgg(semiring.OpFloatSum()),
			SemiringAgg(semiring.OpFloatSum()),
			SemiringAgg(semiring.OpFloatSum()),
		},
		Factors: []*factor.Factor[float64]{mk([]int{0, 1}), mk([]int{1, 2}), mk([]int{0, 2})},
	}
}

// TestPreparedRunsWarmTrieCache: repeat Runs of a PreparedQuery must hit the
// engine-wide trie cache and keep returning the bit-identical scalar, and a
// RunWithFactors interleaved between them must neither read from nor write
// to it (fresh factors are unregistered and bypass the cache).
func TestPreparedRunsWarmTrieCache(t *testing.T) {
	eng := NewEngine[float64](EngineOptions{Workers: 2})
	defer eng.Close()
	q := cacheTriangle(31, 24, 160)
	prep, err := eng.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	first, err := prep.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	_, coldMisses := prep.tries.Counters()
	if coldMisses == 0 {
		t.Fatal("cold run recorded no cache misses: the cache is not wired in")
	}
	for i := 0; i < 3; i++ {
		res, err := prep.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if res.Scalar() != first.Scalar() {
			t.Fatalf("warm run %d: %v != %v", i, res.Scalar(), first.Scalar())
		}
	}
	hits, misses := prep.tries.Counters()
	if hits == 0 {
		t.Fatal("warm runs never hit the trie cache")
	}
	if misses != coldMisses {
		t.Fatalf("warm runs missed the cache (%d -> %d misses): per-run garbage is being keyed",
			coldMisses, misses)
	}

	// Fresh data through RunWithFactors: correct result, cache untouched.
	// (The cache is engine-wide, so the oracle's own Prepare+Run records
	// misses of its own — snapshot the counters after it, before the
	// RunWithFactors under test.)
	fresh := cacheTriangle(32, 24, 160)
	wantFresh, err := eng.Prepare(fresh)
	if err != nil {
		t.Fatal(err)
	}
	wf, err := wantFresh.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	h1, m1 := prep.tries.Counters()
	got, err := prep.RunWithFactors(ctx, fresh.Factors)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scalar() != wf.Scalar() {
		t.Fatalf("RunWithFactors = %v, want %v", got.Scalar(), wf.Scalar())
	}
	h2, m2 := prep.tries.Counters()
	if h2 != h1 || m2 != m1 {
		t.Fatalf("RunWithFactors touched the trie cache (%d/%d -> %d/%d)", h1, m1, h2, m2)
	}

	// And the prepared data still runs correctly off the warm cache.
	res, err := prep.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalar() != first.Scalar() {
		t.Fatalf("post-refresh run diverged: %v != %v", res.Scalar(), first.Scalar())
	}
}
