package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/faqdb/faq/internal/hypergraph"
)

// randomShape draws a small random query shape (used by the pure
// ordering-theory properties, which need no factor data).
func randomShape(rng *rand.Rand) *Shape {
	n := 2 + rng.Intn(4)
	nf := rng.Intn(n)
	tags := make([]string, n)
	for i := 0; i < n; i++ {
		switch {
		case i < nf:
			tags[i] = tagFree
		default:
			switch rng.Intn(3) {
			case 0:
				tags[i] = "op:sum"
			case 1:
				tags[i] = "op:max"
			default:
				tags[i] = tagProduct
			}
		}
	}
	h := hypergraph.Random(rng, n, 1+rng.Intn(4), 3)
	return shapeOf(n, nf, tags, edgesOf(h), rng.Intn(2) == 0)
}

func edgesOf(h *hypergraph.Hypergraph) [][]int {
	var out [][]int
	for _, e := range h.Edges {
		out = append(out, e.Elems())
	}
	return out
}

// Property: every linear extension of the precedence poset passes the EVO
// membership test (soundness: LinEx(P) ⊆ EVO) and realizes a width equal to
// faqw of itself (trivially) — and the expression order is always in EVO.
func TestQuickLinExSubsetOfEVO(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 60; trial++ {
		s := randomShape(rng)
		tree := BuildExprTree(s)
		poset, err := NewPoset(tree, s.N)
		if err != nil {
			t.Fatal(err)
		}
		checked := 0
		poset.EnumerateLinearExtensions(func(pi []int) bool {
			order := append([]int(nil), pi...)
			if err := s.checkOrder(order); err != nil {
				// Linear extensions always list free variables first
				// because the root is the free block.
				t.Fatalf("trial %d: linear extension %v breaks the free prefix: %v", trial, order, err)
			}
			ok, err := InEVO(s, order)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("trial %d: linear extension %v rejected by InEVO (tags %v, edges %v)",
					trial, order, s.Tags, s.H)
			}
			checked++
			return checked < 12
		})
		if ok, err := InEVO(s, s.ExpressionOrder()); err != nil || !ok {
			t.Fatalf("trial %d: expression order not in EVO: %v (tags %v)", trial, err, s.Tags)
		}
	}
}

// Property (Proposition 6.11): every ordering in EVO has the same FAQ-width
// as some linear extension of the precedence poset.
func TestQuickEVOWidthsCoveredByLinEx(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	for trial := 0; trial < 40; trial++ {
		s := randomShape(rng)
		if s.N > 5 {
			continue
		}
		wc := hypergraph.NewWidthCalc(s.H)
		tree := BuildExprTree(s)
		poset, err := NewPoset(tree, s.N)
		if err != nil {
			t.Fatal(err)
		}
		linexWidths := map[float64]bool{}
		poset.EnumerateLinearExtensions(func(pi []int) bool {
			w, _, err := FAQWidth(s, wc, pi)
			if err != nil {
				t.Fatal(err)
			}
			linexWidths[round6(w)] = true
			return true
		})
		evo, err := EnumerateEVO(s)
		if err != nil {
			t.Fatal(err)
		}
		for _, order := range evo {
			w, _, err := FAQWidth(s, wc, order)
			if err != nil {
				t.Fatal(err)
			}
			if !linexWidths[round6(w)] {
				t.Fatalf("trial %d: EVO order %v has width %v not realized by any linear extension (%v)",
					trial, order, w, linexWidths)
			}
		}
	}
}

func round6(x float64) float64 {
	if math.IsInf(x, 1) {
		return x
	}
	return math.Round(x*1e6) / 1e6
}

// Property: CW-equivalence is reflexive and symmetric on random orderings.
func TestQuickCWEquivalenceSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	for trial := 0; trial < 80; trial++ {
		s := randomShape(rng)
		sigma := s.ExpressionOrder()
		if !CWEquivalent(s, sigma, sigma) {
			t.Fatalf("trial %d: CW-equivalence not reflexive", trial)
		}
		// Random permutation of the bound suffix.
		pi := append([]int(nil), sigma...)
		bound := pi[s.NumFree:]
		rng.Shuffle(len(bound), func(i, j int) { bound[i], bound[j] = bound[j], bound[i] })
		if CWEquivalent(s, sigma, pi) != CWEquivalent(s, pi, sigma) {
			t.Fatalf("trial %d: CW-equivalence not symmetric for %v vs %v", trial, sigma, pi)
		}
	}
}

// Property (via testing/quick): the elimination-sequence U sets of the
// expression order cover every original edge incident to the eliminated
// vertex, and each U is a subset of the not-yet-eliminated variables.
func TestQuickEliminationSequenceInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(707))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomShape(r)
		steps := s.H.EliminationSequence(s.ExpressionOrder(), s.Product)
		for k, st := range steps {
			for later := k + 1; later < len(steps); later++ {
				if st.U.Contains(steps[later].Vertex) && steps[later].Vertex != st.Vertex {
					return false // U contains an already-eliminated variable
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property (via testing/quick): FAQWidth of the expression order is finite
// for covered hypergraphs and never below 1 when the query has at least one
// semiring/free variable touching an edge.
func TestQuickFAQWidthBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomShape(r)
		wc := hypergraph.NewWidthCalc(s.H)
		w, _, err := FAQWidth(s, wc, s.ExpressionOrder())
		if err != nil {
			return false
		}
		if math.IsInf(w, 1) || w < 0 {
			return false
		}
		// The exact plan never exceeds the expression order's width.
		if s.N <= 6 {
			p, err := PlanExact(s, wc)
			if err != nil {
				return false
			}
			if p.Width > w+1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
