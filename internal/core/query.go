// Package core implements the FAQ problem and the InsideOut algorithm of
// the paper, together with its planning machinery: expression trees and
// precedence posets (Section 6), equivalent variable orderings EVO(φ),
// the FAQ-width faqw (Definitions 5.10/5.11), an exact width optimizer over
// LinEx(P) (Corollaries 6.14/6.28) and the approximation algorithm of
// Section 7.
package core

import (
	"fmt"
	"sort"
	"strings"

	"github.com/faqdb/faq/internal/bitset"
	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/hypergraph"
	"github.com/faqdb/faq/internal/semiring"
)

// Kind classifies a variable of an FAQ query.
type Kind int

const (
	// KindFree marks a free (output) variable.
	KindFree Kind = iota
	// KindSemiring marks a bound variable whose aggregate ⊕ forms a
	// semiring (D, ⊕, ⊗).
	KindSemiring
	// KindProduct marks a bound variable aggregated by ⊗ itself.
	KindProduct
)

func (k Kind) String() string {
	switch k {
	case KindFree:
		return "free"
	case KindSemiring:
		return "semiring"
	case KindProduct:
		return "product"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Aggregate is the per-variable aggregate ⊕(i) of Eq. (1).
type Aggregate[V any] struct {
	Kind Kind
	Op   *semiring.Op[V] // non-nil exactly when Kind == KindSemiring
}

// Free, SemiringAgg and ProductAgg are aggregate constructors.
func Free[V any]() Aggregate[V] { return Aggregate[V]{Kind: KindFree} }

// SemiringAgg wraps a semiring aggregate operator.
func SemiringAgg[V any](op *semiring.Op[V]) Aggregate[V] {
	return Aggregate[V]{Kind: KindSemiring, Op: op}
}

// ProductAgg marks the variable as aggregated by the product ⊗.
func ProductAgg[V any]() Aggregate[V] { return Aggregate[V]{Kind: KindProduct} }

// Query is an FAQ instance in the normal form of Eq. (1): variables are
// numbered 0..NVars-1 in expression order, the first NumFree of them are
// free, and every bound variable i carries its aggregate Aggs[i].
type Query[V any] struct {
	D        *semiring.Domain[V]
	NVars    int
	DomSizes []int
	Names    []string // optional; defaults to x0, x1, ...
	NumFree  int
	Aggs     []Aggregate[V]
	Factors  []*factor.Factor[V]

	// IdempotentInputs promises that every input factor takes only
	// ⊗-idempotent values (e.g. {0, 1} in logic reductions).  It widens
	// EVO(φ, F(D_I)) per Section 6.2 and lets product aggregates commute
	// with factoring-out (Definition 5.2).
	IdempotentInputs bool
}

// Validate checks structural invariants.  It is called by the solver
// entry points; queries must pass before evaluation.
func (q *Query[V]) Validate() error {
	if q.D == nil {
		return fmt.Errorf("core: query has no domain")
	}
	if q.NVars < 0 || q.NumFree < 0 || q.NumFree > q.NVars {
		return fmt.Errorf("core: bad variable counts (n=%d, f=%d)", q.NVars, q.NumFree)
	}
	if len(q.DomSizes) != q.NVars {
		return fmt.Errorf("core: %d domain sizes for %d variables", len(q.DomSizes), q.NVars)
	}
	if len(q.Aggs) != q.NVars {
		return fmt.Errorf("core: %d aggregates for %d variables", len(q.Aggs), q.NVars)
	}
	for i, a := range q.Aggs {
		switch {
		case i < q.NumFree && a.Kind != KindFree:
			return fmt.Errorf("core: variable %d is in the free prefix but tagged %v", i, a.Kind)
		case i >= q.NumFree && a.Kind == KindFree:
			return fmt.Errorf("core: variable %d is bound but tagged free", i)
		case a.Kind == KindSemiring && a.Op == nil:
			return fmt.Errorf("core: semiring variable %d has no operator", i)
		case a.Kind == KindSemiring && a.Op.NonSemiring != "":
			return fmt.Errorf("core: variable %d aggregates with %q, which is not a lawful semiring aggregate: %s",
				i, a.Op.Name, a.Op.NonSemiring)
		}
	}
	for i, d := range q.DomSizes {
		if d < 1 {
			return fmt.Errorf("core: variable %d has domain size %d", i, d)
		}
	}
	covered := make([]bool, q.NVars)
	for fi, f := range q.Factors {
		for _, v := range f.Vars {
			if v < 0 || v >= q.NVars {
				return fmt.Errorf("core: factor %d mentions unknown variable %d", fi, v)
			}
			covered[v] = true
		}
		rows, k := f.Rows(), f.Arity()
		for i := 0; i < f.Size(); i++ {
			for j, x := range rows[i*k : i*k+k] {
				if x < 0 || int(x) >= q.DomSizes[f.Vars[j]] {
					return fmt.Errorf("core: factor %d tuple %v exceeds domain of variable %d",
						fi, f.Tuple(i, nil), f.Vars[j])
				}
			}
		}
	}
	for v, ok := range covered {
		if !ok {
			return fmt.Errorf("core: variable %d occurs in no factor (add a unit factor if it is unconstrained)", v)
		}
	}
	return nil
}

// VarName returns the display name of variable v.
func (q *Query[V]) VarName(v int) string {
	if v < len(q.Names) && q.Names[v] != "" {
		return q.Names[v]
	}
	return fmt.Sprintf("x%d", v)
}

// Hypergraph returns the query hypergraph: one edge per factor support.
func (q *Query[V]) Hypergraph() *hypergraph.Hypergraph {
	h := hypergraph.New(q.NVars)
	for _, f := range q.Factors {
		h.AddEdge(f.Vars...)
	}
	return h
}

// tagFree and tagProduct are the non-semiring tag strings of Shape.Tags.
const (
	tagFree    = "free"
	tagProduct = "⊗"
)

// Shape is the untyped skeleton of a query: everything the ordering theory
// of Sections 6–7 needs, independent of the value type V.  Semiring tags are
// "op:<name>"; two aggregates compare equal iff their names do
// (Proposition 6.6: non-identical aggregates never commute).
type Shape struct {
	H                *hypergraph.Hypergraph
	N                int
	NumFree          int
	Tags             []string
	Product          bitset.Set
	IdempotentInputs bool
	// NonClosed marks semiring variables whose aggregate is not closed
	// under the ⊗-idempotent elements D_I (e.g. Σ over N in #QCQ, where
	// 1+1 ∉ {0,1}).  Such aggregates may never move inside a product
	// aggregate's scope under flat rewriting — see BuildExprTree.
	NonClosed bitset.Set
}

// Shape extracts the query's shape.  An aggregate is taken to be closed
// under D_I exactly when it is idempotent (a semilattice join of two
// idempotent elements stays idempotent for all domains shipped here).
func (q *Query[V]) Shape() *Shape {
	s := &Shape{
		H:                q.Hypergraph(),
		N:                q.NVars,
		NumFree:          q.NumFree,
		Tags:             make([]string, q.NVars),
		IdempotentInputs: q.IdempotentInputs,
	}
	for i, a := range q.Aggs {
		switch a.Kind {
		case KindFree:
			s.Tags[i] = tagFree
		case KindProduct:
			s.Tags[i] = tagProduct
			s.Product.Add(i)
		default:
			s.Tags[i] = "op:" + a.Op.Name
			if !a.Op.Idempotent {
				s.NonClosed.Add(i)
			}
		}
	}
	return s
}

// Key returns a canonical fingerprint of the shape, used by the engine's
// plan cache: two queries with equal keys have identical ordering theory
// (same variable count, free prefix, aggregate tags and hypergraph), so a
// plan computed for one is valid — and equally wide — for the other.  Domain
// sizes and factor contents are deliberately absent: the Section 6–7
// planners never look at data, only at the untyped skeleton.  Edges are
// sorted so factor-listing order does not split cache entries.
func (s *Shape) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d;f=%d;idem=%v;tags=%s;edges=", s.N, s.NumFree,
		s.IdempotentInputs, strings.Join(s.Tags, ","))
	edges := make([]string, len(s.H.Edges))
	for i, e := range s.H.Edges {
		edges[i] = e.Key()
	}
	sort.Strings(edges)
	b.WriteString(strings.Join(edges, "|"))
	return b.String()
}

// IsProduct reports whether variable v is a product variable.
func (s *Shape) IsProduct(v int) bool { return s.Product.Contains(v) }

// Counts returns (free, semiring, product) variable counts.
func (s *Shape) Counts() (free, semi, prod int) {
	for i, t := range s.Tags {
		switch {
		case t == tagFree:
			free++
		case s.Product.Contains(i):
			prod++
		default:
			semi++
		}
	}
	return
}

// ExpressionOrder returns the identity ordering 0..n-1, i.e. the variable
// ordering as written in the input expression.  It is always in EVO(φ).
func (s *Shape) ExpressionOrder() []int {
	order := make([]int, s.N)
	for i := range order {
		order[i] = i
	}
	return order
}

// checkOrder validates that order is a permutation of 0..n-1 whose first
// NumFree entries are exactly the free variables.
func (s *Shape) checkOrder(order []int) error {
	if len(order) != s.N {
		return fmt.Errorf("core: ordering has %d entries, want %d", len(order), s.N)
	}
	seen := make([]bool, s.N)
	for _, v := range order {
		if v < 0 || v >= s.N || seen[v] {
			return fmt.Errorf("core: ordering %v is not a permutation", order)
		}
		seen[v] = true
	}
	for i := 0; i < s.NumFree; i++ {
		if order[i] >= s.NumFree {
			return fmt.Errorf("core: ordering %v does not list the %d free variables first", order, s.NumFree)
		}
	}
	return nil
}
