package core

import (
	"sync"
	"testing"

	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/semiring"
)

// freeVarsQuery returns the triangle query with its first nfree variables
// freed — nfree ∈ {0, 1, 2} gives three distinct shapes over the same
// hypergraph.
func freeVarsQuery(t *testing.T, nfree int) *Query[float64] {
	t.Helper()
	q := engineTriangleQuery(t, 6, 0)
	q.NumFree = nfree
	for i := 0; i < nfree; i++ {
		q.Aggs[i] = Free[float64]()
	}
	return q
}

// TestEnginePlanCacheEvictionOrder fills a 2-entry cache past capacity and
// checks that a recency touch changes which entry is evicted: after
// A, B, touch-A, C the victim is B, not A.
func TestEnginePlanCacheEvictionOrder(t *testing.T) {
	e := NewEngine[float64](EngineOptions{Workers: 1, PlanCacheSize: 2})
	defer e.Close()
	qa, qb, qc := freeVarsQuery(t, 0), freeVarsQuery(t, 1), freeVarsQuery(t, 2)

	for _, q := range []*Query[float64]{qa, qb} {
		if _, err := e.Prepare(q); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Prepare(qa); err != nil { // touch A: B becomes LRU
		t.Fatal(err)
	}
	if st := e.StatsSnapshot(); st.PlanCacheMisses != 2 || st.PlanCacheHits != 1 || st.PlansCached != 2 {
		t.Fatalf("before overflow: %+v", st)
	}
	if _, err := e.Prepare(qc); err != nil { // overflow: evicts B
		t.Fatal(err)
	}
	if st := e.StatsSnapshot(); st.PlansCached != 2 || st.PlanCacheMisses != 3 {
		t.Fatalf("after overflow: %+v", st)
	}
	// A survived the overflow (it was touched), B did not.
	if _, err := e.Prepare(qa); err != nil {
		t.Fatal(err)
	}
	if st := e.StatsSnapshot(); st.PlanCacheHits != 2 {
		t.Fatalf("touched entry was evicted: %+v", st)
	}
	if _, err := e.Prepare(qb); err != nil {
		t.Fatal(err)
	}
	if st := e.StatsSnapshot(); st.PlanCacheMisses != 4 {
		t.Fatalf("LRU entry was not evicted: %+v", st)
	}
}

// TestRetypeSharesPlanAcrossValueTypes prepares the same shape through a
// Float handle and an Int handle on one runtime and checks they reuse one
// cached plan: the plan cache is keyed by the untyped shape only.
func TestRetypeSharesPlanAcrossValueTypes(t *testing.T) {
	ef := NewEngine[float64](EngineOptions{Workers: 1})
	defer ef.Close()
	ei := Retype[int64](ef)

	pf, err := ef.Prepare(freeVarsQuery(t, 0))
	if err != nil {
		t.Fatal(err)
	}

	// Same shape over int64 data.
	d := semiring.Int()
	var tuples [][]int
	var values []int64
	for a := 0; a < 6; a++ {
		for b := 0; b < 6; b++ {
			if (a*7+b*3)%4 == 0 && a != b {
				tuples = append(tuples, []int{a, b})
				values = append(values, 1)
			}
		}
	}
	mk := func(vars []int) *factor.Factor[int64] {
		f, err := factor.New(d, vars, tuples, values, nil)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	qi := &Query[int64]{
		D: d, NVars: 3, DomSizes: []int{6, 6, 6}, NumFree: 0,
		Aggs: []Aggregate[int64]{
			SemiringAgg(semiring.OpIntSum()),
			SemiringAgg(semiring.OpIntSum()),
			SemiringAgg(semiring.OpIntSum()),
		},
		Factors: []*factor.Factor[int64]{mk([]int{0, 1}), mk([]int{1, 2}), mk([]int{0, 2})},
	}
	pi, err := ei.Prepare(qi)
	if err != nil {
		t.Fatal(err)
	}
	if pf.Plan() != pi.Plan() {
		t.Fatalf("Float and Int handles cached separate plans for one shape: %p vs %p", pf.Plan(), pi.Plan())
	}
	st := ef.StatsSnapshot()
	if st.PlanCacheMisses != 1 || st.PlanCacheHits != 1 || st.PlansCached != 1 {
		t.Fatalf("shared runtime stats: %+v", st)
	}
	if ei.StatsSnapshot() != st {
		t.Fatalf("handles disagree on shared stats: %+v vs %+v", ei.StatsSnapshot(), st)
	}
}

// TestPrepareSingleflight releases a herd of goroutines at one cold shape
// and checks the Section 6–7 planners ran exactly once: every other prepare
// was either coalesced onto the in-flight pass or answered from the cache
// it filled.
func TestPrepareSingleflight(t *testing.T) {
	const herd = 64
	e := NewEngine[float64](EngineOptions{Workers: 1})
	defer e.Close()

	q := freeVarsQuery(t, 1) // shared: Prepare never mutates its query
	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			_, err := e.Prepare(q)
			errs <- err
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := e.StatsSnapshot()
	if st.PlanCacheMisses != 1 {
		t.Fatalf("cold shape planned %d times under the herd, want 1: %+v", st.PlanCacheMisses, st)
	}
	if st.PlanCacheHits+st.PlanCoalesced != herd-1 {
		t.Fatalf("hits %d + coalesced %d != %d: %+v", st.PlanCacheHits, st.PlanCoalesced, herd-1, st)
	}
	if st.Prepared != herd {
		t.Fatalf("prepared %d, want %d", st.Prepared, herd)
	}
}
