// Delta frames: the binary encoding of factor row-batch changes, the wire
// half of incremental view maintenance (POST /v1/delta).  A delta frame
// reuses the factor frame's framing discipline — uvarint payload-length
// prefix, exact-length validation, little-endian columns — but carries an
// operation byte and the index of the spec factor it applies to, and a
// delete frame ships no value column at all.
//
// # Delta frame layout
//
//	uvarint  payload length in bytes (everything after this prefix)
//	payload:
//	  uvarint  version        (currently 1)
//	  byte     op             (1=insert, 2=delete)
//	  byte     value domain   (1=float, 2=int, 3=bool, 4=tropical)
//	  uvarint  factor index   (position in the spec's factor list)
//	  uvarint  arity          (columns per row)
//	  uvarint  row count
//	  rows     row count × arity × int32, little-endian, row-major
//	  values   insert only: row count × value, same encoding as factor
//	           frames; a delete payload ends after the row block
//
// A delta stream — the request body of POST /v1/delta with Content-Type
// application/x-faq-deltas — uses the same "FAQW" envelope as factor
// streams (the opaque header carries the DeltaRequest JSON without
// "deltas"), followed by delta frames instead of factor frames.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// DeltaVersion is the delta-frame version this package encodes and the
// only version it accepts when decoding.
const DeltaVersion = 1

// DeltaContentType is the MIME type of a delta stream, accepted by
// POST /v1/delta as an alternative to application/json.
const DeltaContentType = "application/x-faq-deltas"

// ErrDeltaOp means a delta frame declared an unknown operation byte.
var ErrDeltaOp = errors.New("wire: unknown delta op")

// DeltaOp is the operation byte of a delta frame.  The numeric values
// match factor.DeltaOp, so frames translate to batches without mapping.
type DeltaOp byte

// The wire delta operations.
const (
	// DeltaOpInvalid is the zero DeltaOp; never valid on the wire.
	DeltaOpInvalid DeltaOp = 0
	// DeltaOpInsert upserts the frame's rows with its values.
	DeltaOpInsert DeltaOp = 1
	// DeltaOpDelete removes the frame's rows; the frame has no values.
	DeltaOpDelete DeltaOp = 2
)

// Valid reports whether o is a defined delta operation.
func (o DeltaOp) Valid() bool { return o == DeltaOpInsert || o == DeltaOpDelete }

// String names the operation ("insert", "delete").
func (o DeltaOp) String() string {
	switch o {
	case DeltaOpInsert:
		return "insert"
	case DeltaOpDelete:
		return "delete"
	}
	return fmt.Sprintf("DeltaOp(%d)", byte(o))
}

// DeltaFrame is one decoded (or to-be-encoded) row-batch change against
// one factor of a prepared query.  Insert frames carry exactly one value
// column, selected by Domain, parallel to the rows; delete frames carry
// none.
type DeltaFrame struct {
	// Op says whether the rows are upserted or deleted.
	Op DeltaOp
	// Domain selects the value column of insert frames, exactly as in
	// Frame.  Delete frames still declare it so the receiver can check it
	// against the spec's domain before touching any data.
	Domain Domain
	// Factor is the index of the target factor in the spec's factor list.
	Factor int
	// Arity is the number of columns per row.
	Arity int
	// Rows is the row-major tuple block: NumRows() × Arity cells.
	Rows []int32
	// Floats is the insert value column of DomainFloat/DomainTropical frames.
	Floats []float64
	// Ints is the insert value column of DomainInt frames.
	Ints []int64
	// Bools is the insert value column of DomainBool frames.
	Bools []bool
}

// NumRows returns the number of rows in the frame.
func (f *DeltaFrame) NumRows() int {
	if f.Op == DeltaOpDelete {
		if f.Arity == 0 {
			return 0
		}
		return len(f.Rows) / f.Arity
	}
	switch f.Domain {
	case DomainFloat, DomainTropical:
		return len(f.Floats)
	case DomainInt:
		return len(f.Ints)
	case DomainBool:
		return len(f.Bools)
	}
	return 0
}

// check validates internal consistency before encoding.
func (f *DeltaFrame) check() error {
	if !f.Op.Valid() {
		return fmt.Errorf("%w: %d", ErrDeltaOp, byte(f.Op))
	}
	if !f.Domain.Valid() {
		return fmt.Errorf("%w: %d", ErrDomain, byte(f.Domain))
	}
	if f.Factor < 0 {
		return fmt.Errorf("wire: negative factor index %d", f.Factor)
	}
	if f.Arity < 0 || f.Arity > MaxArity {
		return fmt.Errorf("wire: arity %d out of range [0, %d]", f.Arity, MaxArity)
	}
	var wrong bool
	switch {
	case f.Op == DeltaOpDelete:
		wrong = f.Floats != nil || f.Ints != nil || f.Bools != nil
	case f.Domain == DomainFloat || f.Domain == DomainTropical:
		wrong = f.Ints != nil || f.Bools != nil
	case f.Domain == DomainInt:
		wrong = f.Floats != nil || f.Bools != nil
	case f.Domain == DomainBool:
		wrong = f.Floats != nil || f.Ints != nil
	}
	if wrong {
		return fmt.Errorf("wire: delta frame carries a value column foreign to %v/%v", f.Op, f.Domain)
	}
	if f.Arity == 0 {
		if len(f.Rows) != 0 {
			return fmt.Errorf("wire: nullary delta frame carries %d row cells", len(f.Rows))
		}
		return nil
	}
	if len(f.Rows)%f.Arity != 0 {
		return fmt.Errorf("wire: row block has %d cells for arity %d", len(f.Rows), f.Arity)
	}
	if f.Op == DeltaOpInsert && len(f.Rows) != f.NumRows()*f.Arity {
		return fmt.Errorf("wire: row block has %d cells for %d rows of arity %d",
			len(f.Rows), f.NumRows(), f.Arity)
	}
	return nil
}

// EncodeDelta writes one delta frame: the uvarint payload-length prefix,
// the header and the columns, in a single Write.
func (e *Encoder) EncodeDelta(f *DeltaFrame) error {
	if err := f.check(); err != nil {
		return err
	}
	n := f.NumRows()
	var hdr [4*binary.MaxVarintLen64 + 2]byte
	h := binary.PutUvarint(hdr[:], DeltaVersion)
	hdr[h] = byte(f.Op)
	h++
	hdr[h] = byte(f.Domain)
	h++
	h += binary.PutUvarint(hdr[h:], uint64(f.Factor))
	h += binary.PutUvarint(hdr[h:], uint64(f.Arity))
	h += binary.PutUvarint(hdr[h:], uint64(n))
	vsize := 0
	if f.Op == DeltaOpInsert {
		vsize = f.Domain.ValueSize()
	}
	payload := h + 4*len(f.Rows) + vsize*n

	e.buf = e.buf[:0]
	if cap(e.buf) < payload+binary.MaxVarintLen64 {
		e.buf = make([]byte, 0, payload+binary.MaxVarintLen64)
	}
	e.buf = binary.AppendUvarint(e.buf, uint64(payload))
	e.buf = append(e.buf, hdr[:h]...)
	for _, x := range f.Rows {
		e.buf = binary.LittleEndian.AppendUint32(e.buf, uint32(x))
	}
	if f.Op == DeltaOpInsert {
		switch f.Domain {
		case DomainFloat, DomainTropical:
			for _, v := range f.Floats {
				e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
			}
		case DomainInt:
			for _, v := range f.Ints {
				e.buf = binary.LittleEndian.AppendUint64(e.buf, uint64(v))
			}
		case DomainBool:
			for _, v := range f.Bools {
				if v {
					e.buf = append(e.buf, 1)
				} else {
					e.buf = append(e.buf, 0)
				}
			}
		}
	}
	_, err := e.w.Write(e.buf)
	return err
}

// DecodeDelta reads one delta frame.  A clean end of input returns io.EOF;
// an end inside a frame returns ErrTruncated.  The payload length must
// equal the header plus the columns exactly, as for factor frames.
func (d *Decoder) DecodeDelta() (*DeltaFrame, error) {
	payload, err := binary.ReadUvarint(d.br)
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: reading delta frame length: %w", ErrTruncated, err)
	}
	if payload > uint64(d.max) {
		return nil, fmt.Errorf("%w: %d-byte delta frame (limit %d)", ErrTooLarge, payload, d.max)
	}
	if uint64(cap(d.buf)) < payload {
		d.buf = make([]byte, payload)
	}
	buf := d.buf[:payload]
	if _, err := io.ReadFull(d.br, buf); err != nil {
		return nil, fmt.Errorf("%w: delta frame declared %d bytes: %w", ErrTruncated, payload, err)
	}

	v, h := binary.Uvarint(buf)
	if h <= 0 {
		return nil, fmt.Errorf("%w: unreadable version", ErrFrameLength)
	}
	if v != DeltaVersion {
		return nil, fmt.Errorf("%w: delta frame version %d (want %d)", ErrVersion, v, DeltaVersion)
	}
	if h+1 >= len(buf) {
		return nil, fmt.Errorf("%w: header ends before op/domain bytes", ErrFrameLength)
	}
	op := DeltaOp(buf[h])
	h++
	if !op.Valid() {
		return nil, fmt.Errorf("%w: %d", ErrDeltaOp, byte(op))
	}
	dom := Domain(buf[h])
	h++
	if !dom.Valid() {
		return nil, fmt.Errorf("%w: %d", ErrDomain, byte(dom))
	}
	idx, k := binary.Uvarint(buf[h:])
	if k <= 0 {
		return nil, fmt.Errorf("%w: unreadable factor index", ErrFrameLength)
	}
	h += k
	if idx > uint64(d.max) {
		return nil, fmt.Errorf("%w: factor index %d (limit %d)", ErrTooLarge, idx, d.max)
	}
	arity, k := binary.Uvarint(buf[h:])
	if k <= 0 {
		return nil, fmt.Errorf("%w: unreadable arity", ErrFrameLength)
	}
	h += k
	if arity > MaxArity {
		return nil, fmt.Errorf("%w: arity %d (limit %d)", ErrTooLarge, arity, MaxArity)
	}
	rows, k := binary.Uvarint(buf[h:])
	if k <= 0 {
		return nil, fmt.Errorf("%w: unreadable row count", ErrFrameLength)
	}
	h += k

	if rows > uint64(d.max) {
		return nil, fmt.Errorf("%w: %d rows (limit %d)", ErrTooLarge, rows, d.max)
	}
	vsize := uint64(0)
	if op == DeltaOpInsert {
		vsize = uint64(dom.ValueSize())
	}
	need := rows * (4*arity + vsize) // no overflow: rows ≤ max, arity ≤ MaxArity
	if need != uint64(len(buf)-h) {
		return nil, fmt.Errorf("%w: %d delta rows of arity %d need %d column bytes, frame carries %d",
			ErrFrameLength, rows, arity, need, len(buf)-h)
	}

	f := &DeltaFrame{Op: op, Domain: dom, Factor: int(idx), Arity: int(arity)}
	f.Rows = make([]int32, rows*arity)
	for i := range f.Rows {
		f.Rows[i] = int32(binary.LittleEndian.Uint32(buf[h+4*i:]))
	}
	h += 4 * len(f.Rows)
	if op == DeltaOpDelete {
		return f, nil
	}
	switch dom {
	case DomainFloat, DomainTropical:
		f.Floats = make([]float64, rows)
		for i := range f.Floats {
			f.Floats[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[h+8*i:]))
		}
	case DomainInt:
		f.Ints = make([]int64, rows)
		for i := range f.Ints {
			f.Ints[i] = int64(binary.LittleEndian.Uint64(buf[h+8*i:]))
		}
	case DomainBool:
		f.Bools = make([]bool, rows)
		for i := range f.Bools {
			switch buf[h+i] {
			case 0:
			case 1:
				f.Bools[i] = true
			default:
				return nil, fmt.Errorf("%w: bool value %d at row %d (want 0 or 1)",
					ErrFrameLength, buf[h+i], i)
			}
		}
	}
	return f, nil
}
