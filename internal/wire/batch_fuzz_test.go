package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"
)

// wireSentinels are the only errors the batch/result decode paths may
// surface; anything else on arbitrary input is a contract break.
var wireSentinels = []error{
	ErrBadMagic, ErrVersion, ErrDomain, ErrTooLarge, ErrTruncated,
	ErrFrameLength, ErrResultKind, io.EOF,
}

func requireSentinel(t *testing.T, op string, err error) {
	t.Helper()
	for _, s := range wireSentinels {
		if errors.Is(err, s) {
			return
		}
	}
	t.Fatalf("%s: non-sentinel error %v", op, err)
}

// FuzzBatchDecode throws raw bytes at the batch-envelope reader: header,
// item headers and the per-item frame loop.  It must never panic, every
// rejection must be one of the package sentinels, and any batch it does
// accept must survive a re-encode/re-decode cycle with the same header,
// counts and frame payloads.
func FuzzBatchDecode(f *testing.F) {
	var seed bytes.Buffer
	enc := NewEncoder(&seed)
	_ = enc.WriteBatchHeader([]byte(`{"spec":"t"}`), 2)
	_ = enc.WriteBatchItemHeader(1)
	_ = enc.Encode(&Frame{Domain: DomainInt, Arity: 1, Rows: []int32{4}, Ints: []int64{-7}})
	_ = enc.WriteBatchItemHeader(0)
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("FAQB"))
	f.Add([]byte("FAQB\x01\x00\xff\xff\xff\xff\x0f"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder(bytes.NewReader(data))
		dec.SetMaxFrameBytes(1 << 20) // keep hostile length prefixes cheap
		header, items, err := dec.ReadBatchHeader(1 << 16)
		if err != nil {
			requireSentinel(t, "batch header", err)
			return
		}
		var groups [][]*Frame
		for i := 0; i < items; i++ {
			frames, err := dec.ReadBatchItemHeader()
			if err != nil {
				requireSentinel(t, "item header", err)
				return
			}
			group := make([]*Frame, 0, frames)
			for j := 0; j < frames; j++ {
				fr, err := dec.Decode()
				if err != nil {
					requireSentinel(t, "item frame", err)
					return
				}
				group = append(group, fr)
			}
			groups = append(groups, group)
		}

		var buf bytes.Buffer
		re := NewEncoder(&buf)
		if err := re.WriteBatchHeader(header, len(groups)); err != nil {
			t.Fatalf("accepted batch does not re-encode: %v", err)
		}
		for _, group := range groups {
			if err := re.WriteBatchItemHeader(len(group)); err != nil {
				t.Fatal(err)
			}
			for _, fr := range group {
				if err := re.Encode(fr); err != nil {
					t.Fatalf("accepted frame does not re-encode: %v", err)
				}
			}
		}
		rdec := NewDecoder(&buf)
		rheader, ritems, err := rdec.ReadBatchHeader(1 << 16)
		if err != nil {
			t.Fatalf("re-decode header: %v", err)
		}
		if !bytes.Equal(rheader, header) || ritems != len(groups) {
			t.Fatalf("re-decode changed the envelope: %d items, header %q", ritems, rheader)
		}
		for i, group := range groups {
			m, err := rdec.ReadBatchItemHeader()
			if err != nil || m != len(group) {
				t.Fatalf("re-decode item %d: %d frames, err %v", i, m, err)
			}
			for j, want := range group {
				got, err := rdec.Decode()
				if err != nil {
					t.Fatalf("re-decode item %d frame %d: %v", i, j, err)
				}
				if got.Domain != want.Domain || got.Arity != want.Arity || got.NumRows() != want.NumRows() {
					t.Fatalf("re-decode changed item %d frame %d header", i, j)
				}
			}
		}
	})
}

// FuzzResultFrameRoundTrip drives the result-record codec from both ends:
// a record constructed from the fuzzed fields must encode and decode back
// bit-identically, and the same bytes reinterpreted as a raw decoder input
// must never panic and only ever fail with package sentinels.
func FuzzResultFrameRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint16(0), []byte(`{"index":0}`), true, uint8(2), []byte{0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xf0, 0x3f})
	f.Add(uint8(2), uint16(3), []byte(`{"error":"x"}`), false, uint8(0), []byte{})
	f.Add(uint8(3), uint16(9), []byte(`{"completed":9}`), false, uint8(0), []byte{})
	f.Add(uint8(0), uint16(65535), []byte{}, true, uint8(9), []byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, kindB uint8, index uint16, header []byte, withOutput bool, domB uint8, raw []byte) {
		rf := &ResultFrame{Kind: ResultKind(kindB), Index: int(index), Header: header}
		if withOutput {
			// Build a consistent arity-1 frame from the raw bytes: rows
			// first, then one value encoding per row.
			dom := Domain(domB%4 + 1)
			n := len(raw) / (4 + dom.ValueSize())
			out := &Frame{Domain: dom, Arity: 1, Rows: make([]int32, n)}
			for i := 0; i < n; i++ {
				out.Rows[i] = int32(binary.LittleEndian.Uint32(raw[4*i:]))
			}
			vals := raw[4*n:]
			switch dom {
			case DomainFloat, DomainTropical:
				out.Floats = make([]float64, n)
				for i := range out.Floats {
					out.Floats[i] = math.Float64frombits(binary.LittleEndian.Uint64(vals[8*i:]))
				}
			case DomainInt:
				out.Ints = make([]int64, n)
				for i := range out.Ints {
					out.Ints[i] = int64(binary.LittleEndian.Uint64(vals[8*i:]))
				}
			case DomainBool:
				out.Bools = make([]bool, n)
				for i := range out.Bools {
					out.Bools[i] = vals[i]&1 == 1
				}
			}
			rf.Output = out
		}

		var buf bytes.Buffer
		err := NewEncoder(&buf).EncodeResult(rf)
		if !rf.Kind.Valid() || (rf.Output != nil && rf.Kind != ResultItem) {
			if err == nil {
				t.Fatalf("encode accepted an invalid record: kind %v, output %v", rf.Kind, rf.Output != nil)
			}
		} else if err != nil {
			t.Fatalf("encode rejected a consistent record: %v", err)
		} else {
			dec := NewDecoder(&buf)
			got, err := dec.DecodeResult()
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if _, err := dec.DecodeResult(); err != io.EOF {
				t.Fatalf("trailing read: %v, want io.EOF", err)
			}
			if got.Kind != rf.Kind || got.Index != rf.Index || !bytes.Equal(got.Header, rf.Header) {
				t.Fatalf("record changed: %+v, want %+v", got, rf)
			}
			if (got.Output == nil) != (rf.Output == nil) {
				t.Fatalf("output presence changed")
			}
			if rf.Output != nil {
				w, g := rf.Output, got.Output
				if g.Domain != w.Domain || g.Arity != w.Arity || g.NumRows() != w.NumRows() {
					t.Fatalf("output header changed")
				}
				for i := range w.Rows {
					if g.Rows[i] != w.Rows[i] {
						t.Fatalf("output row cell %d changed", i)
					}
				}
				for i := range w.Floats {
					if math.Float64bits(g.Floats[i]) != math.Float64bits(w.Floats[i]) {
						t.Fatalf("output float %d bits changed", i)
					}
				}
				for i := range w.Ints {
					if g.Ints[i] != w.Ints[i] {
						t.Fatalf("output int %d changed", i)
					}
				}
				for i := range w.Bools {
					if g.Bools[i] != w.Bools[i] {
						t.Fatalf("output bool %d changed", i)
					}
				}
			}
		}

		// The raw-byte leg: header bytes and the fuzz payload fed straight
		// into the record decoder must fail only with sentinels.
		rdec := NewDecoder(bytes.NewReader(raw))
		rdec.SetMaxFrameBytes(1 << 20)
		if _, err := rdec.DecodeResult(); err != nil {
			requireSentinel(t, "raw record", err)
		}
		hdec := NewDecoder(bytes.NewReader(header))
		hdec.SetMaxFrameBytes(1 << 20)
		if _, err := hdec.ReadResultHeader(1 << 16); err != nil {
			requireSentinel(t, "raw stream header", err)
		}
	})
}
