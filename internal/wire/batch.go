// Batch and result framing: the multi-item request envelope of
// POST /v1/batch and the length-prefixed result stream its streaming
// responses (and binary /v1/query responses) are built from.
//
// # Batch envelope layout
//
// A batch stream — the request body of POST /v1/batch with Content-Type
// application/x-faq-batch — is one envelope followed by per-item frame
// groups.  Every multi-byte integer is little-endian; varint fields use
// the unsigned LEB128 encoding of encoding/binary.
//
//	"FAQB"   4-byte magic
//	uvarint  batch version (currently 1)
//	uvarint  header length, then that many opaque header bytes
//	         (for /v1/batch: the BatchRequest JSON without "items")
//	uvarint  item count N
//	items    N × item, each:
//	           uvarint  frame count M (one frame per spec factor)
//	           frames   M × frame (the standard factor-frame encoding)
//
// # Result stream layout
//
// A result stream — the response body of POST /v1/batch under
// Accept: application/x-faq-results — is an envelope followed by
// length-prefixed result records, one written (and flushed) per completed
// item, in completion order.  Records carry their item index, so clients
// reassemble out-of-order completions.
//
//	"FAQR"   4-byte magic
//	uvarint  result-stream version (currently 1)
//	uvarint  header length, then that many opaque header bytes
//	         (for /v1/batch: the BatchStreamHeader JSON)
//	records  result records until the end record:
//	           uvarint  payload length in bytes
//	           payload:
//	             uvarint  version (currently 1)
//	             byte     kind (1=item, 2=error, 3=end)
//	             uvarint  item index (end: completed-item count)
//	             uvarint  header length, then that many opaque header
//	                      bytes (for /v1/batch: the item's JSON)
//	             byte     output flag (1 = a frame payload follows)
//	             frame    the item's free-variable output as one frame
//	                      payload (the factor-frame encoding without its
//	                      own length prefix), present only when the
//	                      output flag is 1
//
// The end record (kind 3) terminates a well-formed stream; input that
// stops before it is truncated, which DecodeResult reports as io.EOF at a
// record boundary — the caller knows completion only by having seen the
// end record.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// BatchVersion is the batch-envelope version this package encodes and the
// only one it accepts.
const BatchVersion = 1

// ResultVersion is the result-stream and result-record version.
const ResultVersion = 1

// BatchContentType is the MIME type of a batch request stream, accepted
// by POST /v1/batch as an alternative to application/json.
const BatchContentType = "application/x-faq-batch"

// ResultContentType is the MIME type of a binary result stream, returned
// by POST /v1/batch (and, with a single frame, by POST /v1/query) when
// the client sends it in Accept.
const ResultContentType = "application/x-faq-results"

// batchMagic starts every batch request stream.
const batchMagic = "FAQB"

// resultMagic starts every result stream.
const resultMagic = "FAQR"

// ErrResultKind means a result record declared an unknown kind byte.
var ErrResultKind = errors.New("wire: unknown result kind")

// ResultKind tags one result record: a completed item, a failed item, or
// the stream-terminating end record.
type ResultKind byte

// The result-record kinds.
const (
	// ResultItem is a completed item: the header carries the item JSON
	// and the output flag may introduce a free-variable output frame.
	ResultItem ResultKind = 1
	// ResultError is a failed item: the header carries the item JSON
	// with its error; no output frame follows.
	ResultError ResultKind = 2
	// ResultEnd terminates the stream: the index is the completed-item
	// count and the header carries the batch summary JSON.
	ResultEnd ResultKind = 3
)

// Valid reports whether k is a defined result kind.
func (k ResultKind) Valid() bool { return k >= ResultItem && k <= ResultEnd }

// String names the kind ("item", "error", "end").
func (k ResultKind) String() string {
	switch k {
	case ResultItem:
		return "item"
	case ResultError:
		return "error"
	case ResultEnd:
		return "end"
	}
	return fmt.Sprintf("ResultKind(%d)", byte(k))
}

// ResultFrame is one decoded (or to-be-encoded) result record: the item
// index, the opaque header bytes (for /v1/batch: the item's JSON) and,
// for items with free variables, the output as an embedded factor frame.
type ResultFrame struct {
	// Kind tags the record (item, error, end).
	Kind ResultKind
	// Index is the item's position in the batch; for an end record it is
	// the completed-item count.
	Index int
	// Header is the record's opaque header (for /v1/batch: the item
	// JSON, or the summary JSON on the end record).
	Header []byte
	// Output is the item's free-variable output frame; nil for scalar
	// items, error records and end records.
	Output *Frame
}

// WriteBatchHeader writes the batch envelope: magic, version, the opaque
// header bytes (for /v1/batch: the BatchRequest JSON without "items") and
// the number of items that follow.
func (e *Encoder) WriteBatchHeader(header []byte, items int) error {
	if items < 0 {
		return fmt.Errorf("wire: negative item count %d", items)
	}
	e.buf = e.buf[:0]
	e.buf = append(e.buf, batchMagic...)
	e.buf = binary.AppendUvarint(e.buf, BatchVersion)
	e.buf = binary.AppendUvarint(e.buf, uint64(len(header)))
	e.buf = append(e.buf, header...)
	e.buf = binary.AppendUvarint(e.buf, uint64(items))
	_, err := e.w.Write(e.buf)
	return err
}

// WriteBatchItemHeader writes one item's frame count; the item's frames
// follow via Encode, one per spec factor in spec order.
func (e *Encoder) WriteBatchItemHeader(frames int) error {
	if frames < 0 {
		return fmt.Errorf("wire: negative frame count %d", frames)
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(frames))
	_, err := e.w.Write(buf[:n])
	return err
}

// WriteResultHeader writes the result-stream envelope: magic, version and
// the opaque header bytes (for /v1/batch: the BatchStreamHeader JSON).
func (e *Encoder) WriteResultHeader(header []byte) error {
	e.buf = e.buf[:0]
	e.buf = append(e.buf, resultMagic...)
	e.buf = binary.AppendUvarint(e.buf, ResultVersion)
	e.buf = binary.AppendUvarint(e.buf, uint64(len(header)))
	e.buf = append(e.buf, header...)
	_, err := e.w.Write(e.buf)
	return err
}

// EncodeResult writes one result record — the uvarint payload-length
// prefix, the record fields and the optional embedded output frame — in a
// single Write, so a streaming handler can flush record boundaries.
func (e *Encoder) EncodeResult(rf *ResultFrame) error {
	if !rf.Kind.Valid() {
		return fmt.Errorf("%w: %d", ErrResultKind, byte(rf.Kind))
	}
	if rf.Index < 0 {
		return fmt.Errorf("wire: negative result index %d", rf.Index)
	}
	if rf.Output != nil {
		if rf.Kind != ResultItem {
			return fmt.Errorf("wire: %v record carries an output frame", rf.Kind)
		}
		if err := rf.Output.check(); err != nil {
			return err
		}
	}

	var rec []byte
	rec = binary.AppendUvarint(rec, ResultVersion)
	rec = append(rec, byte(rf.Kind))
	rec = binary.AppendUvarint(rec, uint64(rf.Index))
	rec = binary.AppendUvarint(rec, uint64(len(rf.Header)))
	rec = append(rec, rf.Header...)
	if rf.Output != nil {
		rec = append(rec, 1)
		rec = appendFramePayload(rec, rf.Output)
	} else {
		rec = append(rec, 0)
	}

	e.buf = e.buf[:0]
	if cap(e.buf) < len(rec)+binary.MaxVarintLen64 {
		e.buf = make([]byte, 0, len(rec)+binary.MaxVarintLen64)
	}
	e.buf = binary.AppendUvarint(e.buf, uint64(len(rec)))
	e.buf = append(e.buf, rec...)
	_, err := e.w.Write(e.buf)
	return err
}

// ReadBatchHeader reads the batch envelope and returns the opaque header
// bytes and the declared item count.  maxHeader bounds the header length
// (<= 0 means the decoder's frame limit).
func (d *Decoder) ReadBatchHeader(maxHeader int) (header []byte, items int, err error) {
	if maxHeader <= 0 {
		maxHeader = d.max
	}
	var magic [len(batchMagic)]byte
	if _, err := io.ReadFull(d.br, magic[:]); err != nil {
		return nil, 0, fmt.Errorf("%w: reading batch magic: %w", ErrTruncated, err)
	}
	if string(magic[:]) != batchMagic {
		return nil, 0, fmt.Errorf("%w: got %q", ErrBadMagic, magic[:])
	}
	v, err := binary.ReadUvarint(d.br)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: reading batch version: %w", ErrTruncated, err)
	}
	if v != BatchVersion {
		return nil, 0, fmt.Errorf("%w: batch version %d (want %d)", ErrVersion, v, BatchVersion)
	}
	hlen, err := binary.ReadUvarint(d.br)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: reading batch header length: %w", ErrTruncated, err)
	}
	if hlen > uint64(maxHeader) {
		return nil, 0, fmt.Errorf("%w: %d-byte batch header (limit %d)", ErrTooLarge, hlen, maxHeader)
	}
	header = make([]byte, hlen)
	if _, err := io.ReadFull(d.br, header); err != nil {
		return nil, 0, fmt.Errorf("%w: reading batch header: %w", ErrTruncated, err)
	}
	n, err := binary.ReadUvarint(d.br)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: reading item count: %w", ErrTruncated, err)
	}
	// Each item costs at least one frame-count byte; a count the input
	// cannot possibly satisfy is rejected up front.
	if n > uint64(d.max) {
		return nil, 0, fmt.Errorf("%w: %d items declared (limit %d)", ErrTooLarge, n, d.max)
	}
	return header, int(n), nil
}

// ReadBatchItemHeader reads one item's frame count; the item's frames
// follow via Decode.
func (d *Decoder) ReadBatchItemHeader() (frames int, err error) {
	n, err := binary.ReadUvarint(d.br)
	if err != nil {
		return 0, fmt.Errorf("%w: reading item frame count: %w", ErrTruncated, err)
	}
	if n > uint64(d.max) {
		return 0, fmt.Errorf("%w: %d frames declared (limit %d)", ErrTooLarge, n, d.max)
	}
	return int(n), nil
}

// ReadResultHeader reads the result-stream envelope and returns the
// opaque header bytes.  maxHeader bounds the header length (<= 0 means
// the decoder's frame limit).
func (d *Decoder) ReadResultHeader(maxHeader int) (header []byte, err error) {
	if maxHeader <= 0 {
		maxHeader = d.max
	}
	var magic [len(resultMagic)]byte
	if _, err := io.ReadFull(d.br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: reading result magic: %w", ErrTruncated, err)
	}
	if string(magic[:]) != resultMagic {
		return nil, fmt.Errorf("%w: got %q", ErrBadMagic, magic[:])
	}
	v, err := binary.ReadUvarint(d.br)
	if err != nil {
		return nil, fmt.Errorf("%w: reading result version: %w", ErrTruncated, err)
	}
	if v != ResultVersion {
		return nil, fmt.Errorf("%w: result version %d (want %d)", ErrVersion, v, ResultVersion)
	}
	hlen, err := binary.ReadUvarint(d.br)
	if err != nil {
		return nil, fmt.Errorf("%w: reading result header length: %w", ErrTruncated, err)
	}
	if hlen > uint64(maxHeader) {
		return nil, fmt.Errorf("%w: %d-byte result header (limit %d)", ErrTooLarge, hlen, maxHeader)
	}
	header = make([]byte, hlen)
	if _, err := io.ReadFull(d.br, header); err != nil {
		return nil, fmt.Errorf("%w: reading result header: %w", ErrTruncated, err)
	}
	return header, nil
}

// DecodeResult reads one result record.  A clean end of input at a record
// boundary returns io.EOF — completion is signaled in-band by the end
// record, so a caller that hits io.EOF without having seen ResultEnd is
// looking at a truncated stream.  An end inside a record returns
// ErrTruncated.
func (d *Decoder) DecodeResult() (*ResultFrame, error) {
	payload, err := binary.ReadUvarint(d.br)
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: reading result record length: %w", ErrTruncated, err)
	}
	if payload > uint64(d.max) {
		return nil, fmt.Errorf("%w: %d-byte result record (limit %d)", ErrTooLarge, payload, d.max)
	}
	if uint64(cap(d.buf)) < payload {
		d.buf = make([]byte, payload)
	}
	buf := d.buf[:payload]
	if _, err := io.ReadFull(d.br, buf); err != nil {
		return nil, fmt.Errorf("%w: result record declared %d bytes: %w", ErrTruncated, payload, err)
	}

	v, h := binary.Uvarint(buf)
	if h <= 0 {
		return nil, fmt.Errorf("%w: unreadable result record version", ErrFrameLength)
	}
	if v != ResultVersion {
		return nil, fmt.Errorf("%w: result record version %d (want %d)", ErrVersion, v, ResultVersion)
	}
	if h >= len(buf) {
		return nil, fmt.Errorf("%w: record ends before kind byte", ErrFrameLength)
	}
	rf := &ResultFrame{Kind: ResultKind(buf[h])}
	h++
	if !rf.Kind.Valid() {
		return nil, fmt.Errorf("%w: %d", ErrResultKind, byte(rf.Kind))
	}
	idx, k := binary.Uvarint(buf[h:])
	if k <= 0 {
		return nil, fmt.Errorf("%w: unreadable result index", ErrFrameLength)
	}
	h += k
	if idx > uint64(d.max) {
		return nil, fmt.Errorf("%w: result index %d (limit %d)", ErrTooLarge, idx, d.max)
	}
	rf.Index = int(idx)
	hlen, k := binary.Uvarint(buf[h:])
	if k <= 0 {
		return nil, fmt.Errorf("%w: unreadable result header length", ErrFrameLength)
	}
	h += k
	if hlen > uint64(len(buf)-h) {
		return nil, fmt.Errorf("%w: record header declares %d bytes, %d remain", ErrFrameLength, hlen, len(buf)-h)
	}
	rf.Header = append([]byte(nil), buf[h:h+int(hlen)]...)
	h += int(hlen)
	if h >= len(buf) {
		return nil, fmt.Errorf("%w: record ends before output flag", ErrFrameLength)
	}
	flag := buf[h]
	h++
	switch flag {
	case 0:
		if h != len(buf) {
			return nil, fmt.Errorf("%w: %d trailing bytes after flagless record", ErrFrameLength, len(buf)-h)
		}
	case 1:
		if rf.Kind != ResultItem {
			return nil, fmt.Errorf("%w: %v record declares an output frame", ErrFrameLength, rf.Kind)
		}
		out, err := parseFramePayload(buf[h:])
		if err != nil {
			return nil, err
		}
		rf.Output = out
	default:
		return nil, fmt.Errorf("%w: output flag %d (want 0 or 1)", ErrFrameLength, flag)
	}
	return rf, nil
}
