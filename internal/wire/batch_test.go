package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
)

// TestBatchEnvelopeRoundTrip drives the batch request codec end to end:
// header, item count, per-item frame groups, clean EOF.
func TestBatchEnvelopeRoundTrip(t *testing.T) {
	items := [][]*Frame{
		{
			{Domain: DomainFloat, Arity: 2, Rows: []int32{0, 1, 2, 3}, Floats: []float64{1.5, -2}},
			{Domain: DomainFloat, Arity: 1, Rows: []int32{7}, Floats: []float64{math.Inf(1)}},
		},
		{}, // an item may ship zero frames (run the spec's own data)
		{
			{Domain: DomainFloat, Arity: 0, Rows: nil, Floats: []float64{42}},
		},
	}
	header := []byte(`{"spec":"..."}`)

	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.WriteBatchHeader(header, len(items)); err != nil {
		t.Fatal(err)
	}
	for _, frames := range items {
		if err := enc.WriteBatchItemHeader(len(frames)); err != nil {
			t.Fatal(err)
		}
		for _, f := range frames {
			if err := enc.Encode(f); err != nil {
				t.Fatal(err)
			}
		}
	}

	dec := NewDecoder(&buf)
	gotHeader, n, err := dec.ReadBatchHeader(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotHeader, header) || n != len(items) {
		t.Fatalf("header %q / %d items, want %q / %d", gotHeader, n, header, len(items))
	}
	for i, frames := range items {
		m, err := dec.ReadBatchItemHeader()
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
		if m != len(frames) {
			t.Fatalf("item %d: %d frames declared, want %d", i, m, len(frames))
		}
		for j, want := range frames {
			got, err := dec.Decode()
			if err != nil {
				t.Fatalf("item %d frame %d: %v", i, j, err)
			}
			if got.Domain != want.Domain || got.Arity != want.Arity || got.NumRows() != want.NumRows() {
				t.Fatalf("item %d frame %d header changed", i, j)
			}
			for k := range want.Floats {
				if math.Float64bits(got.Floats[k]) != math.Float64bits(want.Floats[k]) {
					t.Fatalf("item %d frame %d value %d changed", i, j, k)
				}
			}
		}
	}
	if _, err := dec.Decode(); err != io.EOF {
		t.Fatalf("trailing read: %v, want io.EOF", err)
	}
}

// TestBatchEnvelopeErrors pins the typed sentinels on the batch decode
// paths: wrong magic, wrong version, oversized header, hostile counts.
func TestBatchEnvelopeErrors(t *testing.T) {
	read := func(b []byte) error {
		_, _, err := NewDecoder(bytes.NewReader(b)).ReadBatchHeader(16)
		return err
	}
	if err := read([]byte("FAQW\x01\x00\x00")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("factor-stream magic on a batch: %v, want ErrBadMagic", err)
	}
	if err := read([]byte("FAQB\x09\x00\x00")); !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: %v, want ErrVersion", err)
	}
	if err := read([]byte("FAQB\x01\x7f")); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized header: %v, want ErrTooLarge", err)
	}
	if err := read([]byte("FAQB\x01")); !errors.Is(err, ErrTruncated) {
		t.Fatalf("cut envelope: %v, want ErrTruncated", err)
	}
	// A tiny body declaring an absurd item count is rejected before any
	// allocation keyed to the count.
	var hostile bytes.Buffer
	if err := NewEncoder(&hostile).WriteBatchHeader(nil, 1<<30); err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(bytes.NewReader(hostile.Bytes()))
	dec.SetMaxFrameBytes(1 << 20)
	if _, _, err := dec.ReadBatchHeader(16); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("hostile item count: %v, want ErrTooLarge", err)
	}
	// Same for a hostile per-item frame count.
	dec = NewDecoder(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff, 0x7f}))
	dec.SetMaxFrameBytes(1 << 20)
	if _, err := dec.ReadBatchItemHeader(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("hostile frame count: %v, want ErrTooLarge", err)
	}
}

// TestResultStreamRoundTrip drives the result codec: stream header, item
// records with and without output frames, an error record, the end
// record, clean EOF after it.
func TestResultStreamRoundTrip(t *testing.T) {
	records := []*ResultFrame{
		{Kind: ResultItem, Index: 2, Header: []byte(`{"index":2,"value":7}`)},
		{Kind: ResultItem, Index: 0, Header: []byte(`{"index":0}`), Output: &Frame{
			Domain: DomainTropical, Arity: 2,
			Rows:   []int32{0, 1, 3, 2},
			Floats: []float64{1.25, math.Inf(1)},
		}},
		{Kind: ResultError, Index: 1, Header: []byte(`{"index":1,"error":"boom"}`)},
		{Kind: ResultEnd, Index: 2, Header: []byte(`{"completed":2}`)},
	}
	header := []byte(`{"domain":"tropical","items":3}`)

	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.WriteResultHeader(header); err != nil {
		t.Fatal(err)
	}
	for i, rf := range records {
		if err := enc.EncodeResult(rf); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}

	dec := NewDecoder(&buf)
	gotHeader, err := dec.ReadResultHeader(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotHeader, header) {
		t.Fatalf("header %q, want %q", gotHeader, header)
	}
	for i, want := range records {
		got, err := dec.DecodeResult()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.Kind != want.Kind || got.Index != want.Index || !bytes.Equal(got.Header, want.Header) {
			t.Fatalf("record %d: %+v, want %+v", i, got, want)
		}
		if (got.Output == nil) != (want.Output == nil) {
			t.Fatalf("record %d output presence changed", i)
		}
		if want.Output != nil {
			if got.Output.Domain != want.Output.Domain || got.Output.Arity != want.Output.Arity {
				t.Fatalf("record %d output header changed", i)
			}
			for k := range want.Output.Rows {
				if got.Output.Rows[k] != want.Output.Rows[k] {
					t.Fatalf("record %d output row cell %d changed", i, k)
				}
			}
			for k := range want.Output.Floats {
				if math.Float64bits(got.Output.Floats[k]) != math.Float64bits(want.Output.Floats[k]) {
					t.Fatalf("record %d output value %d changed", i, k)
				}
			}
		}
	}
	if _, err := dec.DecodeResult(); err != io.EOF {
		t.Fatalf("trailing read: %v, want io.EOF", err)
	}
}

// TestResultRecordErrors pins the result-record error contract: every
// malformed record surfaces a package sentinel, and encode rejects
// records that could not decode.
func TestResultRecordErrors(t *testing.T) {
	enc := NewEncoder(io.Discard)
	if err := enc.EncodeResult(&ResultFrame{Kind: 9}); !errors.Is(err, ErrResultKind) {
		t.Fatalf("bad kind: %v, want ErrResultKind", err)
	}
	if err := enc.EncodeResult(&ResultFrame{Kind: ResultEnd, Output: &Frame{Domain: DomainFloat}}); err == nil {
		t.Fatal("end record with an output frame accepted")
	}
	if err := enc.EncodeResult(&ResultFrame{Kind: ResultItem, Index: -1}); err == nil {
		t.Fatal("negative index accepted")
	}

	// A record whose payload length lies about the embedded frame.
	var buf bytes.Buffer
	if err := NewEncoder(&buf).EncodeResult(&ResultFrame{
		Kind: ResultItem, Index: 0, Output: &Frame{Domain: DomainFloat, Arity: 1,
			Rows: []int32{1}, Floats: []float64{2}},
	}); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	if _, err := NewDecoder(bytes.NewReader(whole[:len(whole)-3])).DecodeResult(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("cut record: %v, want ErrTruncated", err)
	}
	mangled := append([]byte(nil), whole...)
	mangled[len(mangled)-1] ^= 0xff // corrupt the embedded value column tail
	if rf, err := NewDecoder(bytes.NewReader(mangled)).DecodeResult(); err != nil {
		t.Fatalf("bit-flipped value should still frame-decode: %v", err)
	} else if math.Float64bits(rf.Output.Floats[0]) == math.Float64bits(2) {
		t.Fatal("corruption not visible in the decoded value")
	}
}
