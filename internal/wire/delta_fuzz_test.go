package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"testing"
)

// buildDeltaFrame assembles a consistent delta frame from raw fuzzed bytes:
// the row block is cut to complete rows, the value column (insert only) to
// complete values, and the row count to the shorter of the two, so every
// generated frame is one the encoder must accept.
func buildDeltaFrame(opB, domB, arityB uint8, factorIdx uint16, rowBytes, valBytes []byte) *DeltaFrame {
	op := DeltaOp(opB%2 + 1)
	dom := Domain(domB%4 + 1)
	arity := int(arityB % 4)
	f := &DeltaFrame{Op: op, Domain: dom, Factor: int(factorIdx), Arity: arity}
	var n int
	if op == DeltaOpInsert {
		n = len(valBytes) / dom.ValueSize()
	} else if arity > 0 {
		n = len(rowBytes) / (4 * arity)
	}
	if arity > 0 {
		if nr := len(rowBytes) / (4 * arity); nr < n {
			n = nr
		}
	} else if op == DeltaOpDelete {
		n = 0
	}
	f.Rows = make([]int32, n*arity)
	for i := range f.Rows {
		f.Rows[i] = int32(binary.LittleEndian.Uint32(rowBytes[4*i:]))
	}
	if op != DeltaOpInsert {
		return f
	}
	switch dom {
	case DomainFloat, DomainTropical:
		f.Floats = make([]float64, n)
		for i := range f.Floats {
			f.Floats[i] = math.Float64frombits(binary.LittleEndian.Uint64(valBytes[8*i:]))
		}
	case DomainInt:
		f.Ints = make([]int64, n)
		for i := range f.Ints {
			f.Ints[i] = int64(binary.LittleEndian.Uint64(valBytes[8*i:]))
		}
	case DomainBool:
		f.Bools = make([]bool, n)
		for i := range f.Bools {
			f.Bools[i] = valBytes[i]&1 == 1
		}
	}
	return f
}

// FuzzDeltaFrameRoundTrip holds the delta codec to the IVM wire contract:
// any consistent hand-built batch encodes, decodes back bit-identically
// (op, domain, factor index, rows and value bits), and a delete frame never
// grows a value column.  NaNs, negative cells and duplicate rows all pass
// through untouched — semantic validation belongs to factor.ApplyDelta, not
// the codec.
func FuzzDeltaFrameRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint8(1), uint8(2), uint16(0), []byte{0, 0, 0, 0, 1, 0, 0, 0}, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(0), uint8(2), uint8(1), uint16(3), []byte{255, 255, 255, 255}, []byte{})
	f.Add(uint8(1), uint8(3), uint8(3), uint16(9), make([]byte, 24), []byte{1, 0})
	f.Add(uint8(1), uint8(4), uint8(0), uint16(1), []byte{}, []byte{0, 0, 0, 0, 0, 0, 0, 64})
	f.Fuzz(func(t *testing.T, opB, domB, arityB uint8, factorIdx uint16, rowBytes, valBytes []byte) {
		frame := buildDeltaFrame(opB, domB, arityB, factorIdx, rowBytes, valBytes)

		var buf bytes.Buffer
		if err := NewEncoder(&buf).EncodeDelta(frame); err != nil {
			t.Fatalf("encode rejected a consistent delta frame: %v", err)
		}
		dec := NewDecoder(&buf)
		got, err := dec.DecodeDelta()
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if _, err := dec.DecodeDelta(); err != io.EOF {
			t.Fatalf("trailing read: %v, want io.EOF", err)
		}

		if got.Op != frame.Op || got.Domain != frame.Domain || got.Factor != frame.Factor ||
			got.Arity != frame.Arity || got.NumRows() != frame.NumRows() {
			t.Fatalf("header changed: %v/%v/%d/%d/%d, want %v/%v/%d/%d/%d",
				got.Op, got.Domain, got.Factor, got.Arity, got.NumRows(),
				frame.Op, frame.Domain, frame.Factor, frame.Arity, frame.NumRows())
		}
		for i := range frame.Rows {
			if got.Rows[i] != frame.Rows[i] {
				t.Fatalf("row cell %d: %d != %d", i, got.Rows[i], frame.Rows[i])
			}
		}
		if frame.Op == DeltaOpDelete {
			if got.Floats != nil || got.Ints != nil || got.Bools != nil {
				t.Fatal("delete frame decoded with a value column")
			}
			return
		}
		for i := range frame.Floats {
			if math.Float64bits(got.Floats[i]) != math.Float64bits(frame.Floats[i]) {
				t.Fatalf("float %d: bits changed", i)
			}
		}
		for i := range frame.Ints {
			if got.Ints[i] != frame.Ints[i] {
				t.Fatalf("int %d: %d != %d", i, got.Ints[i], frame.Ints[i])
			}
		}
		for i := range frame.Bools {
			if got.Bools[i] != frame.Bools[i] {
				t.Fatalf("bool %d: %v != %v", i, got.Bools[i], frame.Bools[i])
			}
		}
	})
}

// FuzzDeltaDecode throws raw bytes at the delta decoder: it must never
// panic, and every frame it accepts must survive re-encode/re-decode with
// an identical header.
func FuzzDeltaDecode(f *testing.F) {
	var seed bytes.Buffer
	_ = NewEncoder(&seed).EncodeDelta(&DeltaFrame{Op: DeltaOpInsert, Domain: DomainFloat,
		Arity: 2, Rows: []int32{0, 1, 2, 3}, Floats: []float64{1, 2}})
	f.Add(seed.Bytes())
	seed.Reset()
	_ = NewEncoder(&seed).EncodeDelta(&DeltaFrame{Op: DeltaOpDelete, Domain: DomainInt,
		Factor: 2, Arity: 1, Rows: []int32{7}})
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x24, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder(bytes.NewReader(data))
		dec.SetMaxFrameBytes(1 << 20) // keep hostile length prefixes cheap
		frame, err := dec.DecodeDelta()
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := NewEncoder(&buf).EncodeDelta(frame); err != nil {
			t.Fatalf("decoded delta frame does not re-encode: %v", err)
		}
		again, err := NewDecoder(&buf).DecodeDelta()
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if again.Op != frame.Op || again.Domain != frame.Domain || again.Factor != frame.Factor ||
			again.Arity != frame.Arity || again.NumRows() != frame.NumRows() {
			t.Fatalf("re-decode changed the header")
		}
	})
}
