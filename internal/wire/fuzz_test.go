package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"testing"

	"github.com/faqdb/faq/internal/factor"
	"github.com/faqdb/faq/internal/semiring"
)

// FuzzWireRoundTrip holds the codec to the contract the serving path
// relies on: whatever column data a client frames, the decoded frame is
// bit-identical to the encoded one, and feeding either side into
// factor.NewRows produces the same factor (same rows, same value bits) or
// the same rejection.  The value column is built from raw fuzzed bytes, so
// NaNs, infinities, negative cells and duplicate rows are all exercised.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(uint8(2), uint8(1), []byte{0, 0, 0, 0, 1, 0, 0, 0}, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(1), uint8(2), []byte{255, 255, 255, 255}, []byte{9, 9, 9, 9, 9, 9, 9, 9})
	f.Add(uint8(3), uint8(3), make([]byte, 24), []byte{1, 0})
	f.Add(uint8(0), uint8(4), []byte{}, []byte{0, 0, 0, 0, 0, 0, 0, 64})
	f.Fuzz(func(t *testing.T, arityB, domB uint8, rowBytes, valBytes []byte) {
		dom := Domain(domB%4 + 1)
		arity := int(arityB % 4)
		// Row count: as many complete value encodings as valBytes holds,
		// bounded by the complete rows rowBytes holds (for arity > 0).
		n := len(valBytes) / dom.ValueSize()
		if arity > 0 {
			if nr := len(rowBytes) / (4 * arity); nr < n {
				n = nr
			}
		}
		frame := &Frame{Domain: dom, Arity: arity}
		frame.Rows = make([]int32, n*arity)
		for i := range frame.Rows {
			frame.Rows[i] = int32(binary.LittleEndian.Uint32(rowBytes[4*i:]))
		}
		switch dom {
		case DomainFloat, DomainTropical:
			frame.Floats = make([]float64, n)
			for i := range frame.Floats {
				frame.Floats[i] = math.Float64frombits(binary.LittleEndian.Uint64(valBytes[8*i:]))
			}
		case DomainInt:
			frame.Ints = make([]int64, n)
			for i := range frame.Ints {
				frame.Ints[i] = int64(binary.LittleEndian.Uint64(valBytes[8*i:]))
			}
		case DomainBool:
			frame.Bools = make([]bool, n)
			for i := range frame.Bools {
				frame.Bools[i] = valBytes[i]&1 == 1
			}
		}

		var buf bytes.Buffer
		if err := NewEncoder(&buf).Encode(frame); err != nil {
			t.Fatalf("encode rejected a consistent frame: %v", err)
		}
		dec := NewDecoder(&buf)
		got, err := dec.Decode()
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if _, err := dec.Decode(); err != io.EOF {
			t.Fatalf("trailing read: %v, want io.EOF", err)
		}
		if got.Domain != frame.Domain || got.Arity != frame.Arity || got.NumRows() != n {
			t.Fatalf("header changed: %v/%d/%d, want %v/%d/%d",
				got.Domain, got.Arity, got.NumRows(), frame.Domain, frame.Arity, n)
		}
		for i := range frame.Rows {
			if got.Rows[i] != frame.Rows[i] {
				t.Fatalf("row cell %d: %d != %d", i, got.Rows[i], frame.Rows[i])
			}
		}

		vars := make([]int, arity)
		for i := range vars {
			vars[i] = i
		}
		switch dom {
		case DomainFloat, DomainTropical:
			for i := range frame.Floats {
				if math.Float64bits(got.Floats[i]) != math.Float64bits(frame.Floats[i]) {
					t.Fatalf("float %d: bits changed", i)
				}
			}
			d := semiring.Float()
			if dom == DomainTropical {
				d = semiring.Tropical()
			}
			compareNewRows(t, d, vars, arity, frame.Rows, frame.Floats, got.Rows, got.Floats,
				math.Float64bits, func(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) })
		case DomainInt:
			compareNewRows(t, semiring.Int(), vars, arity, frame.Rows, frame.Ints, got.Rows, got.Ints,
				func(v int64) uint64 { return uint64(v) }, func(a, b int64) bool { return a == b })
		case DomainBool:
			compareNewRows(t, semiring.Bool(), vars, arity, frame.Rows, frame.Bools, got.Rows, got.Bools,
				func(v bool) uint64 {
					if v {
						return 1
					}
					return 0
				}, func(a, b bool) bool { return a == b })
		}
	})
}

// compareNewRows feeds the pre-encode and post-decode columns through
// factor.NewRows and requires identical outcomes.  NewRows consumes its
// arguments, so both sides get copies.
func compareNewRows[V any](t *testing.T, d *semiring.Domain[V], vars []int, arity int,
	rowsA []int32, valsA []V, rowsB []int32, valsB []V,
	bits func(V) uint64, eq func(a, b V) bool) {
	t.Helper()
	fa, errA := factor.NewRows(d, vars, append([]int32(nil), rowsA...), append([]V(nil), valsA...), nil)
	fb, errB := factor.NewRows(d, vars, append([]int32(nil), rowsB...), append([]V(nil), valsB...), nil)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("NewRows disagreement: pre-encode err %v, post-decode err %v", errA, errB)
	}
	if errA != nil {
		return
	}
	if fa.Size() != fb.Size() || fa.Arity() != fb.Arity() {
		t.Fatalf("factor size/arity: %d/%d != %d/%d", fa.Size(), fa.Arity(), fb.Size(), fb.Arity())
	}
	ra, rb := fa.Rows(), fb.Rows()
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("factor row cell %d: %d != %d", i, ra[i], rb[i])
		}
	}
	for i := range fa.Values {
		if !eq(fa.Values[i], fb.Values[i]) {
			t.Fatalf("factor value %d: bits %x != %x", i, bits(fa.Values[i]), bits(fb.Values[i]))
		}
	}
	_ = arity
}

// FuzzDecode throws raw bytes at the frame decoder: it must never panic
// and every frame it does accept must survive a re-encode/re-decode cycle
// bit-identically.
func FuzzDecode(f *testing.F) {
	var seed bytes.Buffer
	_ = NewEncoder(&seed).Encode(&Frame{Domain: DomainFloat, Arity: 2,
		Rows: []int32{0, 1, 2, 3}, Floats: []float64{1, 2}})
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x24, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder(bytes.NewReader(data))
		dec.SetMaxFrameBytes(1 << 20) // keep hostile length prefixes cheap
		frame, err := dec.Decode()
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := NewEncoder(&buf).Encode(frame); err != nil {
			t.Fatalf("decoded frame does not re-encode: %v", err)
		}
		again, err := NewDecoder(&buf).Decode()
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if again.Domain != frame.Domain || again.Arity != frame.Arity || again.NumRows() != frame.NumRows() {
			t.Fatalf("re-decode changed the header")
		}
	})
}
