// Package wire implements the faqd binary factor encoding: a
// length-prefixed framing for shipping factor data (the fresh-data path of
// POST /v1/query) without the JSON tuple-decoding cost that dominates
// refresh-heavy serving workloads.
//
// A frame carries one factor as the two flat columns internal/factor
// stores natively — the row-major []int32 tuple block and the value
// column — so decoding is a header check plus two raw copies, with zero
// per-row allocation, and the result feeds factor.NewRows directly.
//
// # Frame layout
//
// Every multi-byte integer is little-endian; varint fields use the
// unsigned LEB128 encoding of encoding/binary.
//
//	uvarint  payload length in bytes (everything after this prefix)
//	payload:
//	  uvarint  version        (currently 1)
//	  byte     value domain   (1=float, 2=int, 3=bool, 4=tropical)
//	  uvarint  arity          (columns per row)
//	  uvarint  row count
//	  rows     row count × arity × int32, little-endian, row-major
//	  values   row count × value, little-endian:
//	             float/tropical  8-byte IEEE 754 bits
//	             int             8-byte two's complement
//	             bool            1 byte (0 or 1)
//
// The payload length must equal the header plus the two columns exactly:
// truncated and padded frames are both rejected, so a frame boundary error
// cannot silently shift row data into the value column.
//
// # Stream layout
//
// A factor stream — the request body of POST /v1/query with Content-Type
// application/x-faq-factors — is a small envelope followed by the frames:
//
//	"FAQW"   4-byte magic
//	uvarint  stream version (currently 1)
//	uvarint  header length, then that many opaque header bytes
//	         (for /v1/query: the QueryRequest JSON without "factors")
//	uvarint  frame count
//	frames   frame count × frame, one per spec factor in spec order
//
// See docs/PROTOCOL.md for the full wire reference.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Version is the frame version this package encodes and the only version
// it accepts when decoding.
const Version = 1

// StreamVersion is the stream-envelope version (the magic + header + count
// prefix), independent of the per-frame version.
const StreamVersion = 1

// ContentType is the MIME type of a factor stream, accepted by
// POST /v1/query as an alternative to application/json.
const ContentType = "application/x-faq-factors"

// DefaultMaxFrameBytes bounds a single frame's payload unless the decoder
// is reconfigured with SetMaxFrameBytes — large enough for hundreds of
// millions of binary-factor rows, small enough that a corrupt length
// prefix cannot drive a huge allocation.
const DefaultMaxFrameBytes = 1 << 28

// MaxArity bounds the declared arity of a frame.  No planner in this
// repository handles queries anywhere near this wide; the bound exists so
// arity × row-count products cannot overflow during validation.
const MaxArity = 1 << 16

// streamMagic starts every factor stream.
const streamMagic = "FAQW"

// Sentinel errors returned (wrapped, with detail) by Decoder.  Match with
// errors.Is.
var (
	// ErrBadMagic means the stream does not start with the "FAQW" magic.
	ErrBadMagic = errors.New("wire: bad stream magic")
	// ErrVersion means a frame or stream declared an unsupported version.
	ErrVersion = errors.New("wire: unsupported version")
	// ErrDomain means a frame declared an unknown value-domain byte.
	ErrDomain = errors.New("wire: unknown value domain")
	// ErrTooLarge means a declared length exceeds the decoder's limit.
	ErrTooLarge = errors.New("wire: length exceeds limit")
	// ErrTruncated means the input ended inside a frame or the envelope.
	ErrTruncated = errors.New("wire: truncated input")
	// ErrFrameLength means a frame's declared payload length does not
	// match its header plus its two columns exactly.
	ErrFrameLength = errors.New("wire: frame length mismatch")
)

// Domain identifies the value encoding of a frame's value column.  It is
// the wire twin of the spec format's domain directive: the faqd handler
// requires a request's frames to match its spec's declared domain.
type Domain byte

// The wire value domains.  Float and Tropical share the float64 encoding
// but are distinct codes: the spec domain decides the algebra, and a
// mismatch between spec and frames is a client error worth catching.
const (
	// DomainInvalid is the zero Domain; never valid on the wire.
	DomainInvalid Domain = 0
	// DomainFloat is float64 (IEEE 754 bits, little-endian).
	DomainFloat Domain = 1
	// DomainInt is int64 (two's complement, little-endian).
	DomainInt Domain = 2
	// DomainBool is bool (one byte, 0 or 1).
	DomainBool Domain = 3
	// DomainTropical is float64 over the tropical (min, +) semiring.
	DomainTropical Domain = 4
)

// Valid reports whether d is a defined wire domain.
func (d Domain) Valid() bool { return d >= DomainFloat && d <= DomainTropical }

// ValueSize returns the encoded size of one value in bytes (0 for an
// invalid domain).
func (d Domain) ValueSize() int {
	switch d {
	case DomainFloat, DomainInt, DomainTropical:
		return 8
	case DomainBool:
		return 1
	}
	return 0
}

// String returns the spec-format domain name ("float", "int", "bool",
// "tropical").
func (d Domain) String() string {
	switch d {
	case DomainFloat:
		return "float"
	case DomainInt:
		return "int"
	case DomainBool:
		return "bool"
	case DomainTropical:
		return "tropical"
	}
	return fmt.Sprintf("Domain(%d)", byte(d))
}

// ParseDomain maps a spec-format domain name to its wire code.
func ParseDomain(name string) (Domain, error) {
	switch name {
	case "float":
		return DomainFloat, nil
	case "int":
		return DomainInt, nil
	case "bool":
		return DomainBool, nil
	case "tropical":
		return DomainTropical, nil
	}
	return DomainInvalid, fmt.Errorf("%w: %q (want float, int, bool or tropical)", ErrDomain, name)
}

// Frame is one decoded (or to-be-encoded) factor: the row-major tuple
// block plus exactly one value column, selected by Domain.  Rows holds
// NumRows() × Arity int32 cells; columns follow the order the sender
// declared (for /v1/query: the spec factor block's declaration order).
type Frame struct {
	// Domain selects the value column: Floats for DomainFloat and
	// DomainTropical, Ints for DomainInt, Bools for DomainBool.
	Domain Domain
	// Arity is the number of columns per row.
	Arity int
	// Rows is the row-major tuple block: NumRows() × Arity cells.
	Rows []int32
	// Floats is the value column of DomainFloat and DomainTropical frames.
	Floats []float64
	// Ints is the value column of DomainInt frames.
	Ints []int64
	// Bools is the value column of DomainBool frames.
	Bools []bool
}

// NumRows returns the number of rows, i.e. the length of the domain's
// value column.
func (f *Frame) NumRows() int {
	switch f.Domain {
	case DomainFloat, DomainTropical:
		return len(f.Floats)
	case DomainInt:
		return len(f.Ints)
	case DomainBool:
		return len(f.Bools)
	}
	return 0
}

// FrameHeader is the fixed prelude of a frame payload: version, domain
// byte, arity and row count, in the uvarint encoding described in the
// package comment.  It is shared verbatim by the on-disk segment format of
// internal/store, so a stored factor's header bytes are exactly the bytes
// a frame would put on the network.
type FrameHeader struct {
	// Domain is the value-domain byte.
	Domain Domain
	// Arity is the number of columns per row.
	Arity int
	// Rows is the row count.
	Rows int
}

// AppendFrameHeader appends h in the frame-payload prelude encoding
// (uvarint version, domain byte, uvarint arity, uvarint row count) and
// returns the extended slice.
func AppendFrameHeader(dst []byte, h FrameHeader) []byte {
	dst = binary.AppendUvarint(dst, Version)
	dst = append(dst, byte(h.Domain))
	dst = binary.AppendUvarint(dst, uint64(h.Arity))
	dst = binary.AppendUvarint(dst, uint64(h.Rows))
	return dst
}

// ParseFrameHeader decodes a frame-payload prelude from the start of b and
// returns the header plus the number of bytes consumed.  Errors carry the
// package sentinels: ErrVersion for an unsupported version, ErrDomain for
// an unknown domain byte, ErrTooLarge for an arity beyond MaxArity and
// ErrFrameLength for a prelude the bytes cannot express.
func ParseFrameHeader(b []byte) (FrameHeader, int, error) {
	var hdr FrameHeader
	v, h := binary.Uvarint(b)
	if h <= 0 {
		return hdr, 0, fmt.Errorf("%w: unreadable version", ErrFrameLength)
	}
	if v != Version {
		return hdr, 0, fmt.Errorf("%w: frame version %d (want %d)", ErrVersion, v, Version)
	}
	if h >= len(b) {
		return hdr, 0, fmt.Errorf("%w: header ends before domain byte", ErrFrameLength)
	}
	hdr.Domain = Domain(b[h])
	h++
	if !hdr.Domain.Valid() {
		return hdr, 0, fmt.Errorf("%w: %d", ErrDomain, byte(hdr.Domain))
	}
	arity, k := binary.Uvarint(b[h:])
	if k <= 0 {
		return hdr, 0, fmt.Errorf("%w: unreadable arity", ErrFrameLength)
	}
	h += k
	if arity > MaxArity {
		return hdr, 0, fmt.Errorf("%w: arity %d (limit %d)", ErrTooLarge, arity, MaxArity)
	}
	hdr.Arity = int(arity)
	rows, k := binary.Uvarint(b[h:])
	if k <= 0 {
		return hdr, 0, fmt.Errorf("%w: unreadable row count", ErrFrameLength)
	}
	h += k
	if rows > uint64(math.MaxInt/4)/(arity+1) {
		return hdr, 0, fmt.Errorf("%w: %d rows of arity %d", ErrTooLarge, rows, arity)
	}
	hdr.Rows = int(rows)
	return hdr, h, nil
}

// check validates internal consistency before encoding.
func (f *Frame) check() error {
	if !f.Domain.Valid() {
		return fmt.Errorf("%w: %d", ErrDomain, byte(f.Domain))
	}
	if f.Arity < 0 || f.Arity > MaxArity {
		return fmt.Errorf("wire: arity %d out of range [0, %d]", f.Arity, MaxArity)
	}
	var wrong bool
	switch f.Domain {
	case DomainFloat, DomainTropical:
		wrong = f.Ints != nil || f.Bools != nil
	case DomainInt:
		wrong = f.Floats != nil || f.Bools != nil
	case DomainBool:
		wrong = f.Floats != nil || f.Ints != nil
	}
	if wrong {
		return fmt.Errorf("wire: frame carries a value column foreign to domain %v", f.Domain)
	}
	if len(f.Rows) != f.NumRows()*f.Arity {
		return fmt.Errorf("wire: row block has %d cells for %d rows of arity %d",
			len(f.Rows), f.NumRows(), f.Arity)
	}
	return nil
}

// Encoder writes factor streams and frames to an io.Writer, reusing one
// scratch buffer across calls.  An Encoder is not safe for concurrent use.
type Encoder struct {
	w   io.Writer
	buf []byte
}

// NewEncoder returns an Encoder writing to w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

// WriteStreamHeader writes the stream envelope: magic, stream version, the
// opaque header bytes (for /v1/query: the QueryRequest JSON without
// "factors") and the number of frames that follow.
func (e *Encoder) WriteStreamHeader(header []byte, frames int) error {
	if frames < 0 {
		return fmt.Errorf("wire: negative frame count %d", frames)
	}
	e.buf = e.buf[:0]
	e.buf = append(e.buf, streamMagic...)
	e.buf = binary.AppendUvarint(e.buf, StreamVersion)
	e.buf = binary.AppendUvarint(e.buf, uint64(len(header)))
	e.buf = append(e.buf, header...)
	e.buf = binary.AppendUvarint(e.buf, uint64(frames))
	_, err := e.w.Write(e.buf)
	return err
}

// framePayloadSize returns the encoded payload size of a checked frame.
func framePayloadSize(f *Frame) int {
	var hbuf [3*binary.MaxVarintLen64 + 1]byte
	hdr := AppendFrameHeader(hbuf[:0], FrameHeader{Domain: f.Domain, Arity: f.Arity, Rows: f.NumRows()})
	return len(hdr) + 4*len(f.Rows) + f.Domain.ValueSize()*f.NumRows()
}

// appendFramePayload appends a checked frame's payload — the header
// prelude and the two raw columns, without the outer length prefix — and
// returns the extended slice.  It is the shared body of Encode and of the
// result records that embed an output frame.
func appendFramePayload(dst []byte, f *Frame) []byte {
	dst = AppendFrameHeader(dst, FrameHeader{Domain: f.Domain, Arity: f.Arity, Rows: f.NumRows()})
	for _, x := range f.Rows {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(x))
	}
	switch f.Domain {
	case DomainFloat, DomainTropical:
		for _, v := range f.Floats {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	case DomainInt:
		for _, v := range f.Ints {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
		}
	case DomainBool:
		for _, v := range f.Bools {
			if v {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		}
	}
	return dst
}

// Encode writes one frame: the uvarint payload-length prefix, the header
// and the two raw columns, in a single Write.
func (e *Encoder) Encode(f *Frame) error {
	if err := f.check(); err != nil {
		return err
	}
	payload := framePayloadSize(f)
	e.buf = e.buf[:0]
	if cap(e.buf) < payload+binary.MaxVarintLen64 {
		e.buf = make([]byte, 0, payload+binary.MaxVarintLen64)
	}
	e.buf = binary.AppendUvarint(e.buf, uint64(payload))
	e.buf = appendFramePayload(e.buf, f)
	_, err := e.w.Write(e.buf)
	return err
}

// Decoder reads factor streams and frames.  A Decoder is not safe for
// concurrent use.
type Decoder struct {
	br  *bufio.Reader
	max int
	buf []byte
}

// NewDecoder returns a Decoder reading from r with the
// DefaultMaxFrameBytes frame limit.
func NewDecoder(r io.Reader) *Decoder {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	return &Decoder{br: br, max: DefaultMaxFrameBytes}
}

// SetMaxFrameBytes bounds the payload length Decode accepts; n <= 0
// restores DefaultMaxFrameBytes.  The bound is checked before any
// allocation, so a corrupt or hostile length prefix cannot drive memory
// use past it.
func (d *Decoder) SetMaxFrameBytes(n int) {
	if n <= 0 {
		n = DefaultMaxFrameBytes
	}
	d.max = n
}

// ReadStreamHeader reads the stream envelope and returns the opaque header
// bytes and the declared frame count.  maxHeader bounds the header length
// (<= 0 means the decoder's frame limit).
func (d *Decoder) ReadStreamHeader(maxHeader int) (header []byte, frames int, err error) {
	if maxHeader <= 0 {
		maxHeader = d.max
	}
	var magic [len(streamMagic)]byte
	if _, err := io.ReadFull(d.br, magic[:]); err != nil {
		return nil, 0, fmt.Errorf("%w: reading magic: %w", ErrTruncated, err)
	}
	if string(magic[:]) != streamMagic {
		return nil, 0, fmt.Errorf("%w: got %q", ErrBadMagic, magic[:])
	}
	v, err := binary.ReadUvarint(d.br)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: reading stream version: %w", ErrTruncated, err)
	}
	if v != StreamVersion {
		return nil, 0, fmt.Errorf("%w: stream version %d (want %d)", ErrVersion, v, StreamVersion)
	}
	hlen, err := binary.ReadUvarint(d.br)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: reading header length: %w", ErrTruncated, err)
	}
	if hlen > uint64(maxHeader) {
		return nil, 0, fmt.Errorf("%w: %d-byte stream header (limit %d)", ErrTooLarge, hlen, maxHeader)
	}
	header = make([]byte, hlen)
	if _, err := io.ReadFull(d.br, header); err != nil {
		return nil, 0, fmt.Errorf("%w: reading stream header: %w", ErrTruncated, err)
	}
	n, err := binary.ReadUvarint(d.br)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: reading frame count: %w", ErrTruncated, err)
	}
	// Each frame costs at least one length byte; a count the input cannot
	// possibly satisfy is rejected up front rather than discovered frame
	// by frame.
	if n > uint64(d.max) {
		return nil, 0, fmt.Errorf("%w: %d frames declared (limit %d)", ErrTooLarge, n, d.max)
	}
	return header, int(n), nil
}

// Decode reads one frame.  A clean end of input (no bytes at all) returns
// io.EOF; an end inside a frame returns ErrTruncated.
func (d *Decoder) Decode() (*Frame, error) {
	payload, err := binary.ReadUvarint(d.br)
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: reading frame length: %w", ErrTruncated, err)
	}
	if payload > uint64(d.max) {
		return nil, fmt.Errorf("%w: %d-byte frame (limit %d)", ErrTooLarge, payload, d.max)
	}
	if uint64(cap(d.buf)) < payload {
		d.buf = make([]byte, payload)
	}
	buf := d.buf[:payload]
	if _, err := io.ReadFull(d.br, buf); err != nil {
		return nil, fmt.Errorf("%w: frame declared %d bytes: %w", ErrTruncated, payload, err)
	}
	return parseFramePayload(buf)
}

// parseFramePayload decodes one complete frame payload (header prelude
// plus columns, no outer length prefix) — the shared body of Decode and
// of the result records that embed an output frame.  The payload must be
// exactly consumed; leftover or missing column bytes are ErrFrameLength.
func parseFramePayload(buf []byte) (*Frame, error) {
	hdr, h, err := ParseFrameHeader(buf)
	if err != nil {
		return nil, err
	}
	dom, arity, rows := hdr.Domain, uint64(hdr.Arity), uint64(hdr.Rows)

	need := rows * (4*arity + uint64(dom.ValueSize())) // no overflow: ParseFrameHeader bounds rows×arity
	if need != uint64(len(buf)-h) {
		return nil, fmt.Errorf("%w: %d rows of arity %d need %d column bytes, frame carries %d",
			ErrFrameLength, rows, arity, need, len(buf)-h)
	}

	f := &Frame{Domain: dom, Arity: int(arity)}
	f.Rows = make([]int32, rows*arity)
	for i := range f.Rows {
		f.Rows[i] = int32(binary.LittleEndian.Uint32(buf[h+4*i:]))
	}
	h += 4 * len(f.Rows)
	switch dom {
	case DomainFloat, DomainTropical:
		f.Floats = make([]float64, rows)
		for i := range f.Floats {
			f.Floats[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[h+8*i:]))
		}
	case DomainInt:
		f.Ints = make([]int64, rows)
		for i := range f.Ints {
			f.Ints[i] = int64(binary.LittleEndian.Uint64(buf[h+8*i:]))
		}
	case DomainBool:
		f.Bools = make([]bool, rows)
		for i := range f.Bools {
			switch buf[h+i] {
			case 0:
			case 1:
				f.Bools[i] = true
			default:
				return nil, fmt.Errorf("%w: bool value %d at row %d (want 0 or 1)",
					ErrFrameLength, buf[h+i], i)
			}
		}
	}
	return f, nil
}
