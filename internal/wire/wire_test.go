package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"
)

// roundTrip encodes f and decodes it back through a fresh Decoder.
func roundTrip(t *testing.T, f *Frame) *Frame {
	t.Helper()
	var buf bytes.Buffer
	if err := NewEncoder(&buf).Encode(f); err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec := NewDecoder(&buf)
	got, err := dec.Decode()
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if _, err := dec.Decode(); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
	return got
}

func TestRoundTripAllDomains(t *testing.T) {
	rows := []int32{0, 1, 1, 0, 2, 2}
	frames := []*Frame{
		{Domain: DomainFloat, Arity: 2, Rows: rows, Floats: []float64{1.5, -0, math.Inf(1)}},
		{Domain: DomainTropical, Arity: 2, Rows: rows, Floats: []float64{0, 7.25, math.Inf(1)}},
		{Domain: DomainInt, Arity: 2, Rows: rows, Ints: []int64{math.MinInt64, 0, math.MaxInt64}},
		{Domain: DomainBool, Arity: 2, Rows: rows, Bools: []bool{true, false, true}},
		{Domain: DomainFloat, Arity: 0, Rows: nil, Floats: []float64{42}}, // scalar factor
		{Domain: DomainInt, Arity: 3, Rows: nil, Ints: nil},               // empty factor
	}
	for _, f := range frames {
		got := roundTrip(t, f)
		if got.Domain != f.Domain || got.Arity != f.Arity {
			t.Fatalf("domain/arity: got %v/%d, want %v/%d", got.Domain, got.Arity, f.Domain, f.Arity)
		}
		if len(got.Rows) != len(f.Rows) {
			t.Fatalf("rows: got %v, want %v", got.Rows, f.Rows)
		}
		for i := range f.Rows {
			if got.Rows[i] != f.Rows[i] {
				t.Fatalf("row cell %d: got %d, want %d", i, got.Rows[i], f.Rows[i])
			}
		}
		switch f.Domain {
		case DomainFloat, DomainTropical:
			for i := range f.Floats {
				if math.Float64bits(got.Floats[i]) != math.Float64bits(f.Floats[i]) {
					t.Fatalf("float %d: bits differ (%v vs %v)", i, got.Floats[i], f.Floats[i])
				}
			}
		case DomainInt:
			if len(f.Ints) > 0 && !reflect.DeepEqual(got.Ints, f.Ints) {
				t.Fatalf("ints: got %v, want %v", got.Ints, f.Ints)
			}
		case DomainBool:
			if !reflect.DeepEqual(got.Bools, f.Bools) {
				t.Fatalf("bools: got %v, want %v", got.Bools, f.Bools)
			}
		}
	}
}

func TestStreamHeaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	header := []byte(`{"spec":"var x 2 sum\n..."}`)
	if err := enc.WriteStreamHeader(header, 3); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(&Frame{Domain: DomainFloat, Arity: 1, Rows: []int32{0}, Floats: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(&buf)
	got, frames, err := dec.ReadStreamHeader(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, header) || frames != 3 {
		t.Fatalf("header %q frames %d, want %q / 3", got, frames, header)
	}
	if f, err := dec.Decode(); err != nil || f.NumRows() != 1 {
		t.Fatalf("frame after header: %v, %v", f, err)
	}
}

// encodeValid returns the encoding of a small valid float frame.
func encodeValid(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	err := NewEncoder(&buf).Encode(&Frame{
		Domain: DomainFloat, Arity: 2,
		Rows: []int32{0, 1, 2, 3}, Floats: []float64{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func decodeErr(t *testing.T, raw []byte) error {
	t.Helper()
	_, err := NewDecoder(bytes.NewReader(raw)).Decode()
	if err == nil {
		t.Fatal("corrupt frame decoded without error")
	}
	return err
}

func TestDecodeRejectsTruncated(t *testing.T) {
	raw := encodeValid(t)
	// Every strict prefix (except the empty one, which is a clean EOF)
	// must fail with ErrTruncated — the declared payload never arrives.
	for cut := 1; cut < len(raw); cut++ {
		err := decodeErr(t, raw[:cut])
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("prefix of %d/%d bytes: %v, want ErrTruncated", cut, len(raw), err)
		}
	}
	if _, err := NewDecoder(bytes.NewReader(nil)).Decode(); err != io.EOF {
		t.Fatalf("empty input: %v, want io.EOF", err)
	}
}

func TestDecodeRejectsOversized(t *testing.T) {
	raw := encodeValid(t)
	dec := NewDecoder(bytes.NewReader(raw))
	dec.SetMaxFrameBytes(8) // smaller than the frame's payload
	if _, err := dec.Decode(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}

	// A forged length prefix claiming more bytes than the limit is
	// rejected before any allocation.
	huge := binary.AppendUvarint(nil, uint64(DefaultMaxFrameBytes)+1)
	if err := decodeErr(t, huge); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("forged huge length: %v, want ErrTooLarge", err)
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	raw := encodeValid(t)
	// The version uvarint is the first payload byte (after the 1-byte
	// length prefix for this small frame).
	raw[1] = 99
	if err := decodeErr(t, raw); !errors.Is(err, ErrVersion) {
		t.Fatalf("got %v, want ErrVersion", err)
	}
}

func TestDecodeRejectsBadDomain(t *testing.T) {
	raw := encodeValid(t)
	raw[2] = 200 // domain byte follows the version
	if err := decodeErr(t, raw); !errors.Is(err, ErrDomain) {
		t.Fatalf("got %v, want ErrDomain", err)
	}
}

func TestDecodeRejectsPaddedFrame(t *testing.T) {
	raw := encodeValid(t)
	// Grow the declared payload length by one and append a padding byte:
	// columns no longer fill the payload exactly.
	n, k := binary.Uvarint(raw)
	grown := binary.AppendUvarint(nil, n+1)
	grown = append(grown, raw[k:]...)
	grown = append(grown, 0)
	if err := decodeErr(t, grown); !errors.Is(err, ErrFrameLength) {
		t.Fatalf("got %v, want ErrFrameLength", err)
	}
}

func TestDecodeRejectsBadBool(t *testing.T) {
	var buf bytes.Buffer
	err := NewEncoder(&buf).Encode(&Frame{Domain: DomainBool, Arity: 1, Rows: []int32{0}, Bools: []bool{true}})
	if err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] = 7 // not 0/1
	if err := decodeErr(t, raw); !errors.Is(err, ErrFrameLength) {
		t.Fatalf("got %v, want ErrFrameLength", err)
	}
}

func TestStreamHeaderRejections(t *testing.T) {
	mk := func(mutate func([]byte) []byte) error {
		var buf bytes.Buffer
		if err := NewEncoder(&buf).WriteStreamHeader([]byte("hdr"), 1); err != nil {
			t.Fatal(err)
		}
		raw := mutate(buf.Bytes())
		_, _, err := NewDecoder(bytes.NewReader(raw)).ReadStreamHeader(0)
		return err
	}
	if err := mk(func(b []byte) []byte { b[0] = 'X'; return b }); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: %v", err)
	}
	if err := mk(func(b []byte) []byte { b[4] = 9; return b }); !errors.Is(err, ErrVersion) {
		t.Fatalf("bad stream version: %v", err)
	}
	if err := mk(func(b []byte) []byte { return b[:5] }); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated envelope: %v", err)
	}
}

func TestEncodeRejectsInconsistentFrame(t *testing.T) {
	bad := []*Frame{
		{Domain: DomainInvalid, Arity: 1, Rows: []int32{0}, Floats: []float64{1}},
		{Domain: DomainFloat, Arity: 2, Rows: []int32{0}, Floats: []float64{1}}, // short row block
		{Domain: DomainFloat, Arity: 1, Rows: []int32{0}, Ints: []int64{1}},     // wrong column
		{Domain: DomainInt, Arity: 1, Rows: []int32{0}, Ints: []int64{1}, Bools: []bool{true}},
	}
	for i, f := range bad {
		if err := NewEncoder(io.Discard).Encode(f); err == nil {
			t.Fatalf("bad frame %d encoded without error", i)
		}
	}
}
