// Differential tests for the sort-based grouping operations: reference
// implementations using the string-keyed maps this package used to contain
// (Marginalize / ProductMarginalize / IndicatorProjection accumulating into
// map[string]V) are kept here in test code, and the columnar versions must
// reproduce their outputs bit-identically — the map accumulated in row
// order per group, exactly what stable-sorted run folding does.
package factor

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/faqdb/faq/internal/semiring"
)

func encRef(t []int) string {
	b := make([]byte, 0, len(t)*4)
	for _, x := range t {
		b = append(b, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
	}
	return string(b)
}

// refGroup projects every row of f to the columns not holding v and returns
// the groups in first-occurrence order, each with its member row indices in
// row order — the retired map-based grouping.
func refGroup[V any](f *Factor[V], v int) (rests [][]int, members [][]int) {
	pos := f.VarPos(v)
	index := map[string]int{}
	var buf []int
	for i := 0; i < f.Size(); i++ {
		buf = f.Tuple(i, buf)
		rest := make([]int, 0, len(buf)-1)
		for j, x := range buf {
			if j != pos {
				rest = append(rest, x)
			}
		}
		k := encRef(rest)
		g, ok := index[k]
		if !ok {
			g = len(rests)
			index[k] = g
			rests = append(rests, rest)
			members = append(members, nil)
		}
		members[g] = append(members[g], i)
	}
	return rests, members
}

func refMarginalize[V any](d *semiring.Domain[V], op *semiring.Op[V], f *Factor[V], v int) *Factor[V] {
	vars := make([]int, 0, len(f.Vars)-1)
	for _, u := range f.Vars {
		if u != v {
			vars = append(vars, u)
		}
	}
	rests, members := refGroup(f, v)
	var tuples [][]int
	var values []V
	for g, rest := range rests {
		acc := f.Values[members[g][0]]
		for _, i := range members[g][1:] {
			acc = op.Combine(acc, f.Values[i])
		}
		if d.IsZero(acc) {
			continue
		}
		tuples = append(tuples, rest)
		values = append(values, acc)
	}
	out, err := New(d, vars, tuples, values, nil)
	if err != nil {
		panic(err)
	}
	return out
}

func refProductMarginalize[V any](d *semiring.Domain[V], f *Factor[V], v, domSize int) *Factor[V] {
	vars := make([]int, 0, len(f.Vars)-1)
	for _, u := range f.Vars {
		if u != v {
			vars = append(vars, u)
		}
	}
	rests, members := refGroup(f, v)
	var tuples [][]int
	var values []V
	for g, rest := range rests {
		if len(members[g]) < domSize {
			continue
		}
		p := d.One
		for _, i := range members[g] {
			p = d.Mul(p, f.Values[i])
		}
		if d.IsZero(p) {
			continue
		}
		tuples = append(tuples, rest)
		values = append(values, p)
	}
	out, err := New(d, vars, tuples, values, nil)
	if err != nil {
		panic(err)
	}
	return out
}

func refIndicatorProjection[V any](d *semiring.Domain[V], f *Factor[V], onto []int) *Factor[V] {
	ontoSet := map[int]bool{}
	for _, u := range onto {
		ontoSet[u] = true
	}
	var keep []int
	var vars []int
	for i, u := range f.Vars {
		if ontoSet[u] {
			keep = append(keep, i)
			vars = append(vars, u)
		}
	}
	seen := map[string]bool{}
	var tuples [][]int
	var values []V
	var buf []int
	for i := 0; i < f.Size(); i++ {
		buf = f.Tuple(i, buf)
		proj := make([]int, len(keep))
		for j, p := range keep {
			proj[j] = buf[p]
		}
		k := encRef(proj)
		if seen[k] {
			continue
		}
		seen[k] = true
		tuples = append(tuples, proj)
		values = append(values, d.One)
	}
	out, err := New(d, vars, tuples, values, nil)
	if err != nil {
		panic(err)
	}
	return out
}

func diffFactorDomain[V any](t *testing.T, seed int64, d *semiring.Domain[V], op *semiring.Op[V],
	randVal func(*rand.Rand) V, bits func(V) uint64) {

	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	identical := func(what string, got, want *Factor[V]) {
		t.Helper()
		if got.Size() != want.Size() || !sort.IntsAreSorted(got.Vars) {
			t.Fatalf("%s: size %d vs %d (vars %v)", what, got.Size(), want.Size(), got.Vars)
		}
		for i := 0; i < got.Size(); i++ {
			if compareRows(got.Row(i), want.Row(i)) != 0 {
				t.Fatalf("%s: row %d = %v, reference %v", what, i, got.Row(i), want.Row(i))
			}
			if bits(got.Values[i]) != bits(want.Values[i]) {
				t.Fatalf("%s: value %d = %v, reference %v (not bit-identical)",
					what, i, got.Values[i], want.Values[i])
			}
		}
	}
	for trial := 0; trial < 60; trial++ {
		arity := 1 + rng.Intn(3)
		vars := make([]int, arity)
		for i := range vars {
			vars[i] = i * 3 // sorted, sparse ids
		}
		dom := 1 + rng.Intn(5)
		var tuples [][]int
		var values []V
		for i := 0; i < 1+rng.Intn(40); i++ {
			tup := make([]int, arity)
			for j := range tup {
				tup[j] = rng.Intn(dom)
			}
			tuples = append(tuples, tup)
			values = append(values, randVal(rng))
		}
		f, err := New(d, vars, tuples, values, func(a, b V) V { return a })
		if err != nil {
			t.Fatal(err)
		}
		v := vars[rng.Intn(arity)] // any column, not just the last: exercises the re-sort path
		identical("marginalize", f.Marginalize(d, op, v), refMarginalize(d, op, f, v))
		identical("product-marginalize", f.ProductMarginalize(d, v, dom), refProductMarginalize(d, f, v, dom))
		onto := []int{v, 100} // intersection {v}
		identical("indicator-projection", f.IndicatorProjection(d, onto), refIndicatorProjection(d, f, onto))
	}
}

func TestDifferentialGroupingFloat(t *testing.T) {
	diffFactorDomain(t, 601, semiring.Float(), semiring.OpFloatSum(),
		func(rng *rand.Rand) float64 { return float64(1+rng.Intn(9)) / 8 },
		math.Float64bits)
}

func TestDifferentialGroupingInt(t *testing.T) {
	diffFactorDomain(t, 602, semiring.Int(), semiring.OpIntSum(),
		func(rng *rand.Rand) int64 { return int64(1 + rng.Intn(5)) },
		func(v int64) uint64 { return uint64(v) })
}

func TestDifferentialGroupingBool(t *testing.T) {
	diffFactorDomain(t, 603, semiring.Bool(), semiring.OpOr(),
		func(*rand.Rand) bool { return true },
		func(v bool) uint64 {
			if v {
				return 1
			}
			return 0
		})
}

func TestDifferentialGroupingTropical(t *testing.T) {
	diffFactorDomain(t, 604, semiring.Tropical(), semiring.OpTropicalMin(),
		func(rng *rand.Rand) float64 { return float64(rng.Intn(9)) },
		math.Float64bits)
}
