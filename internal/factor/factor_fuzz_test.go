package factor

import (
	"math"
	"sort"
	"testing"
)

// refNew is the map-based reference construction the flat New replaced:
// drop zeros on input, combine duplicates into their first occurrence in
// input order, drop zeros produced by combining, sort rows
// lexicographically.  FuzzFactorNew holds the columnar implementation to
// bit-identical agreement with it.
func refNew(vars []int, tuples [][]int, values []float64,
	combine func(a, b float64) float64) (outTuples [][]int, outValues []float64, dupErr bool) {

	type row struct {
		t []int
		v float64
	}
	index := map[string]int{}
	var rows []row
	enc := func(t []int) string {
		b := make([]byte, 0, len(t)*4)
		for _, x := range t {
			b = append(b, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
		}
		return string(b)
	}
	for i, t := range tuples {
		if values[i] == 0 {
			continue
		}
		k := enc(t)
		if at, ok := index[k]; ok {
			if combine == nil {
				return nil, nil, true
			}
			rows[at].v = combine(rows[at].v, values[i])
			continue
		}
		index[k] = len(rows)
		rows = append(rows, row{t: append([]int(nil), t...), v: values[i]})
	}
	kept := rows[:0]
	for _, r := range rows {
		if r.v != 0 {
			kept = append(kept, r)
		}
	}
	sort.SliceStable(kept, func(a, b int) bool {
		for i := range kept[a].t {
			if kept[a].t[i] != kept[b].t[i] {
				return kept[a].t[i] < kept[b].t[i]
			}
		}
		return false
	})
	for _, r := range kept {
		outTuples = append(outTuples, r.t)
		outValues = append(outValues, r.v)
	}
	return outTuples, outValues, false
}

// decodeFuzzFactor turns raw fuzz bytes into (vars, tuples, values): byte 0
// picks the arity (0..3), then each row consumes arity tuple bytes (values
// 0..7, so collisions are frequent) plus one signed value byte in −2..2 —
// zeros exercise zero-dropping, ±x pairs exercise cancellation.
func decodeFuzzFactor(data []byte) (vars []int, tuples [][]int, values []float64) {
	if len(data) == 0 {
		return []int{}, nil, nil
	}
	arity := int(data[0]) % 4
	data = data[1:]
	vars = make([]int, arity)
	for i := range vars {
		vars[i] = i * 2 // sorted, non-contiguous ids
	}
	rowBytes := arity + 1
	for len(data) >= rowBytes && len(tuples) < 512 {
		t := make([]int, arity)
		for j := 0; j < arity; j++ {
			t[j] = int(data[j]) % 8
		}
		values = append(values, float64(int(data[arity])%5-2))
		tuples = append(tuples, t)
		data = data[rowBytes:]
	}
	return vars, tuples, values
}

// FuzzFactorNew differential-tests the columnar constructor against the
// map-based reference: zero-dropping, duplicate-combining (in input order,
// so float accumulation is bit-identical), row sorting and binary-search
// lookup must all agree, for both the [][]int and the flat-block entry
// points.
func FuzzFactorNew(f *testing.F) {
	f.Add([]byte{2, 1, 2, 3, 1, 2, 1, 1, 2, 200})
	f.Add([]byte{0, 1, 2})
	f.Add([]byte{1, 4, 1, 4, 255, 4, 0})
	f.Add([]byte{3, 1, 1, 1, 1, 1, 1, 1, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		vars, tuples, values := decodeFuzzFactor(data)
		combine := func(a, b float64) float64 { return a + b }

		wantTuples, wantValues, _ := refNew(vars, tuples, values, combine)
		got, err := New(fd, vars, tuples, values, combine)
		if err != nil {
			t.Fatalf("New failed on fuzz input: %v", err)
		}
		if got.Size() != len(wantValues) {
			t.Fatalf("size %d, reference %d", got.Size(), len(wantValues))
		}
		for i := 0; i < got.Size(); i++ {
			row := got.Tuple(i, nil)
			for j := range row {
				if row[j] != wantTuples[i][j] {
					t.Fatalf("row %d = %v, reference %v", i, row, wantTuples[i])
				}
			}
			if math.Float64bits(got.Values[i]) != math.Float64bits(wantValues[i]) {
				t.Fatalf("value %d = %v, reference %v (accumulation order changed)",
					i, got.Values[i], wantValues[i])
			}
			if i > 0 && compareRows(got.Row(i-1), got.Row(i)) >= 0 {
				t.Fatalf("rows %d,%d out of order: %v then %v", i-1, i, got.Row(i-1), got.Row(i))
			}
			if v, ok := got.Value(wantTuples[i]); !ok || math.Float64bits(v) != math.Float64bits(wantValues[i]) {
				t.Fatalf("lookup(%v) = %v,%v, reference %v", wantTuples[i], v, ok, wantValues[i])
			}
		}

		// The flat-block constructor must agree with the [][]int one.
		rows := make([]int32, 0, len(tuples)*len(vars))
		for _, tup := range tuples {
			for _, x := range tup {
				rows = append(rows, int32(x))
			}
		}
		gotFlat, err := NewRows(fd, vars, rows, append([]float64(nil), values...), combine)
		if err != nil {
			t.Fatalf("NewRows failed on fuzz input: %v", err)
		}
		if !got.Equal(fd, gotFlat) {
			t.Fatalf("NewRows diverged from New:\n%v\n%v", gotFlat, got)
		}

		// Duplicate detection without a combiner must agree too.
		_, _, wantDup := refNew(vars, tuples, values, nil)
		_, err = New(fd, vars, tuples, values, nil)
		if wantDup != (err != nil) {
			t.Fatalf("nil-combine duplicate error = %v, reference %v", err, wantDup)
		}
	})
}
