// Parallel row sorting.  Listing factors keep their rows in lexicographic
// order, and re-sorting after every join, projection and marginalization is
// the dominant cost of the OutsideIn inner loop on large intermediates — so
// big row sets are sorted with a chunked parallel merge sort: chunks sort
// concurrently, then pairs of sorted runs merge concurrently until one run
// remains.  The comparator is a strict total order (tuples within a factor
// are unique), so the result is deterministic for every worker count.
package factor

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// parallelSortMin is the minimum number of rows before sorting is split
// across goroutines; below it sort.Slice is faster.
const parallelSortMin = 4096

// sortActive admits at most one parallel sort at a time process-wide:
// a sort attempted while another runs (e.g. inside a pool-executor worker,
// where sibling workers already occupy the CPUs) degrades to sort.Slice
// instead of stacking another GOMAXPROCS-wide fan-out on top of the pool.
var sortActive atomic.Bool

// parallelSort sorts order by less — with a chunked parallel merge sort
// sized to GOMAXPROCS for large inputs, and sort.Slice otherwise.  Both
// paths produce the identical permutation (less is a strict total order).
func parallelSort(order []int, less func(a, b int) bool) {
	n := len(order)
	workers := runtime.GOMAXPROCS(0)
	if n < parallelSortMin || workers <= 1 || !sortActive.CompareAndSwap(false, true) {
		sort.Slice(order, func(a, b int) bool { return less(order[a], order[b]) })
		return
	}
	defer sortActive.Store(false)
	nc := workers
	if nc > n {
		nc = n
	}
	bounds := make([]int, nc+1)
	for i := range bounds {
		bounds[i] = i * n / nc
	}
	var wg sync.WaitGroup
	for i := 0; i < nc; i++ {
		seg := order[bounds[i]:bounds[i+1]]
		wg.Add(1)
		go func(seg []int) {
			defer wg.Done()
			sort.Slice(seg, func(a, b int) bool { return less(seg[a], seg[b]) })
		}(seg)
	}
	wg.Wait()

	src, dst := order, make([]int, n)
	for len(bounds) > 2 {
		next := make([]int, 0, len(bounds)/2+2)
		next = append(next, 0)
		i := 0
		for ; i+2 < len(bounds); i += 2 {
			lo, mid, hi := bounds[i], bounds[i+1], bounds[i+2]
			wg.Add(1)
			go func(lo, mid, hi int) {
				defer wg.Done()
				mergeRuns(dst[lo:hi], src[lo:mid], src[mid:hi], less)
			}(lo, mid, hi)
			next = append(next, hi)
		}
		if i+1 < len(bounds) { // odd run out: carry it over unchanged
			copy(dst[bounds[i]:bounds[i+1]], src[bounds[i]:bounds[i+1]])
			next = append(next, bounds[i+1])
		}
		wg.Wait()
		src, dst = dst, src
		bounds = next
	}
	if &src[0] != &order[0] {
		copy(order, src)
	}
}

// mergeRuns merges two sorted runs into out (len(out) = len(a) + len(b)),
// preferring a on ties.
func mergeRuns(out, a, b []int, less func(x, y int) bool) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			out[i+j] = b[j]
			j++
		} else {
			out[i+j] = a[i]
			i++
		}
	}
	copy(out[i+j:], a[i:])
	copy(out[i+j:], b[j:])
}
