package factor

import (
	"fmt"

	"github.com/faqdb/faq/internal/semiring"
)

// NewView builds a factor over caller-owned row/value storage without
// copying or mutating it — the zero-copy construction path for factors
// served straight out of memory-mapped dataset segments.  Unlike NewRows it
// takes no ownership and performs no compaction or re-sort: the block must
// already satisfy every Factor invariant (rows strictly sorted and
// duplicate-free, values non-zero), and construction fails if it does not.
// The backing slices may live on read-only pages; NewView never writes to
// them, and neither do the engine's read paths (trie builds copy or alias
// them read-only).
func NewView[V any](d *semiring.Domain[V], vars []int, rows []int32, values []V) (*Factor[V], error) {
	if err := checkVars(vars); err != nil {
		return nil, err
	}
	if len(rows) != len(values)*len(vars) {
		return nil, fmt.Errorf("factor: row block has %d cells for %d values of arity %d",
			len(rows), len(values), len(vars))
	}
	for i, v := range values {
		if d.IsZero(v) {
			return nil, fmt.Errorf("factor: view value %d is the domain zero", i)
		}
	}
	f := &Factor[V]{Vars: vars, Values: values, rows: rows}
	if !f.strictlySorted() {
		return nil, fmt.Errorf("factor: view rows not in strict lexicographic order")
	}
	return f, nil
}
