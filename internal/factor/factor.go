// Package factor implements the listing representation of FAQ factors
// (Definition 4.1 of the paper): a factor ψ_S is stored as the table of
// tuples 〈x_S, ψ_S(x_S)〉 with ψ_S(x_S) ≠ 0; absent tuples are 0.  The
// package provides the primitive operations InsideOut needs — conditional
// lookup, indicator projection (Definition 4.2), product marginalization
// (the "factor oracle" assumptions of Section 8.1), pointwise powering for
// product aggregates (Section 5.2.2) — plus aggregation helpers used by
// baseline algorithms.
//
// Data layout: rows live in one contiguous row-major []int32 block (Arity
// columns per row, rows in strict lexicographic order, parallel to Values).
// Point lookups are binary searches over the sorted block — there is no
// hash index — and the grouping operations (Marginalize,
// ProductMarginalize, IndicatorProjection) work by sorting projected rows
// and folding contiguous runs instead of accumulating into string-keyed
// maps.  The flat block is what the join package's CSR tries are built
// from in a single O(n) pass.
package factor

import (
	"fmt"
	"math"
	"sort"

	"github.com/faqdb/faq/internal/semiring"
	"github.com/faqdb/faq/internal/sortx"
)

// Factor is a function ψ over Vars in listing representation.  Vars are
// global variable ids in strictly increasing order; each row assigns a
// domain value (small int) to the corresponding variable.  Rows are unique,
// lexicographically sorted, and values are non-zero.  The zero Factor value
// is an empty (identically zero) factor over no variables.
type Factor[V any] struct {
	Vars   []int
	Values []V

	rows []int32 // row-major block: len(Values) rows × len(Vars) columns
}

// New builds a factor from parallel tuple/value slices, dropping zero
// values, combining duplicate tuples with ⊕ (combine may be nil, in which
// case duplicates are an error) and sorting rows lexicographically.
func New[V any](d *semiring.Domain[V], vars []int, tuples [][]int, values []V,
	combine func(a, b V) V) (*Factor[V], error) {

	if err := checkVars(vars); err != nil {
		return nil, err
	}
	if len(tuples) != len(values) {
		return nil, fmt.Errorf("factor: %d tuples but %d values", len(tuples), len(values))
	}
	k := len(vars)
	rows := make([]int32, 0, len(tuples)*k)
	vals := make([]V, 0, len(values))
	for i, t := range tuples {
		if len(t) != k {
			return nil, fmt.Errorf("factor: tuple %v has arity %d, want %d", t, len(t), k)
		}
		if d.IsZero(values[i]) {
			continue
		}
		for _, x := range t {
			if x < math.MinInt32 || x > math.MaxInt32 {
				return nil, fmt.Errorf("factor: tuple %v exceeds the int32 domain-value range", t)
			}
			rows = append(rows, int32(x))
		}
		vals = append(vals, values[i])
	}
	return build(d, vars, rows, vals, combine)
}

// NewRows is New over an already-flat row block: len(rows) must be
// len(values)×len(vars) and rows is consumed (the factor takes ownership).
// It is the allocation-free construction path for scan outputs and network
// decoders that produce columnar data directly.
func NewRows[V any](d *semiring.Domain[V], vars []int, rows []int32, values []V,
	combine func(a, b V) V) (*Factor[V], error) {

	if err := checkVars(vars); err != nil {
		return nil, err
	}
	if len(rows) != len(values)*len(vars) {
		return nil, fmt.Errorf("factor: row block has %d cells for %d values of arity %d",
			len(rows), len(values), len(vars))
	}
	f := &Factor[V]{Vars: vars, Values: values, rows: rows}
	f.compact(d)
	return build(d, vars, f.rows, f.Values, combine)
}

func checkVars(vars []int) error {
	if !sort.IntsAreSorted(vars) {
		return fmt.Errorf("factor: variables %v not sorted", vars)
	}
	for i := 1; i < len(vars); i++ {
		if vars[i] == vars[i-1] {
			return fmt.Errorf("factor: duplicate variable %d", vars[i])
		}
	}
	return nil
}

// build finishes construction from a zero-free row block: rows are sorted
// (stably, so duplicates keep input order and combine left to right exactly
// as the map-based accumulation did), adjacent duplicates are folded with
// combine, and zeros produced by combining are dropped.  Already strictly
// sorted blocks — scan outputs emitted in lexicographic order — skip both
// passes.
func build[V any](d *semiring.Domain[V], vars []int, rows []int32, values []V,
	combine func(a, b V) V) (*Factor[V], error) {

	f := &Factor[V]{Vars: vars, Values: values, rows: rows}
	k := len(vars)
	if f.strictlySorted() {
		return f, nil
	}
	n := len(values)
	order := argsortRows(rows, k, n, true) // stable: duplicates fold in input order
	sorted := make([]int32, 0, len(rows))
	outVals := make([]V, 0, n)
	for _, o := range order {
		row := rows[o*k : o*k+k]
		if m := len(outVals); m > 0 && compareRows(sorted[(m-1)*k:m*k], row) == 0 {
			if combine == nil {
				return nil, fmt.Errorf("factor: duplicate tuple %v", f.tupleOf(row))
			}
			outVals[m-1] = combine(outVals[m-1], values[o])
			continue
		}
		sorted = append(sorted, row...)
		outVals = append(outVals, values[o])
	}
	f.rows = sorted
	f.Values = outVals
	f.compact(d) // combining may have produced zeros (e.g. +1 and -1)
	return f, nil
}

// MustNew is New that panics on error; for tests and literals.
func MustNew[V any](d *semiring.Domain[V], vars []int, tuples [][]int, values []V) *Factor[V] {
	f, err := New(d, vars, tuples, values, nil)
	if err != nil {
		panic(err)
	}
	return f
}

// FromFunc materializes ψ over the full box Π dom(vars[i]) keeping non-zero
// entries: the bridge from "truth table" representations (dense matrices,
// CPTs) into the listing representation (Section 8.2).  Enumeration is
// lexicographic, so the block is born sorted.
func FromFunc[V any](d *semiring.Domain[V], vars []int, domSizes []int, f func(tuple []int) V) *Factor[V] {
	if err := checkVars(vars); err != nil {
		panic(fmt.Sprintf("factor: FromFunc %v", err))
	}
	out := &Factor[V]{Vars: append([]int(nil), vars...)}
	tuple := make([]int, len(vars))
	var rec func(i int)
	rec = func(i int) {
		if i == len(vars) {
			v := f(tuple)
			if !d.IsZero(v) {
				for _, x := range tuple {
					out.rows = append(out.rows, int32(x))
				}
				out.Values = append(out.Values, v)
			}
			return
		}
		for x := 0; x < domSizes[vars[i]]; x++ {
			tuple[i] = x
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

// Scalar returns a nullary factor with the given value (or an empty factor
// if the value is zero).
func Scalar[V any](d *semiring.Domain[V], v V) *Factor[V] {
	f := &Factor[V]{Vars: []int{}}
	if !d.IsZero(v) {
		f.Values = []V{v}
	}
	return f
}

// compact drops zero-valued rows in place.
func (f *Factor[V]) compact(d *semiring.Domain[V]) {
	k := len(f.Vars)
	keptRows := f.rows[:0]
	keptVals := f.Values[:0]
	for i, v := range f.Values {
		if !d.IsZero(v) {
			keptRows = append(keptRows, f.rows[i*k:i*k+k]...)
			keptVals = append(keptVals, v)
		}
	}
	f.rows = keptRows
	f.Values = keptVals
}

// strictlySorted reports whether the block is already in strict ascending
// row order (sorted and duplicate-free).
func (f *Factor[V]) strictlySorted() bool {
	k := len(f.Vars)
	if k == 0 {
		return len(f.Values) <= 1
	}
	for i := 1; i < len(f.Values); i++ {
		if compareRows(f.rows[(i-1)*k:i*k], f.rows[i*k:i*k+k]) >= 0 {
			return false
		}
	}
	return true
}

// compareRows lexicographically compares two equal-length rows.
func compareRows(a, b []int32) int {
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// compareRowTuple compares a stored row against an []int probe tuple.
func compareRowTuple(row []int32, t []int) int {
	for i := range row {
		if int(row[i]) != t[i] {
			if int(row[i]) < t[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Size returns ‖ψ‖, the number of non-zero tuples.
func (f *Factor[V]) Size() int { return len(f.Values) }

// Arity returns the number of variables.
func (f *Factor[V]) Arity() int { return len(f.Vars) }

// Rows exposes the contiguous row-major block (Size()×Arity() cells).
// Callers must treat it as read-only; the join package builds its CSR tries
// straight from this block.
func (f *Factor[V]) Rows() []int32 { return f.rows }

// Row returns row i as a view into the block; it must not be mutated.
func (f *Factor[V]) Row(i int) []int32 {
	k := len(f.Vars)
	return f.rows[i*k : i*k+k]
}

// Tuple copies row i into buf (grown as needed) and returns it as []int.
func (f *Factor[V]) Tuple(i int, buf []int) []int {
	buf = buf[:0]
	for _, x := range f.Row(i) {
		buf = append(buf, int(x))
	}
	return buf
}

// Tuples materializes every row as a fresh [][]int — the compatibility and
// serialization view of the block.  Hot paths should iterate Row/Rows
// instead.
func (f *Factor[V]) Tuples() [][]int {
	out := make([][]int, f.Size())
	for i := range out {
		out[i] = f.Tuple(i, make([]int, 0, len(f.Vars)))
	}
	return out
}

func (f *Factor[V]) tupleOf(row []int32) []int {
	t := make([]int, len(row))
	for i, x := range row {
		t[i] = int(x)
	}
	return t
}

// find binary-searches the sorted block for a tuple aligned with Vars.  A
// probe of the wrong arity is simply absent, as it was for the map index.
func (f *Factor[V]) find(tuple []int) (int, bool) {
	k := len(f.Vars)
	if len(tuple) != k {
		return 0, false
	}
	if k == 0 {
		return 0, len(f.Values) > 0
	}
	i := sort.Search(len(f.Values), func(i int) bool {
		return compareRowTuple(f.rows[i*k:i*k+k], tuple) >= 0
	})
	if i < len(f.Values) && compareRowTuple(f.rows[i*k:i*k+k], tuple) == 0 {
		return i, true
	}
	return i, false
}

// Value looks up ψ(tuple) where tuple is aligned with Vars.  The second
// result reports whether the tuple is present (absent means 0).
func (f *Factor[V]) Value(tuple []int) (V, bool) {
	if i, ok := f.find(tuple); ok {
		return f.Values[i], true
	}
	var zero V
	return zero, false
}

// ValueOrZero returns ψ(tuple), using the domain's zero for absent tuples.
func (f *Factor[V]) ValueOrZero(d *semiring.Domain[V], tuple []int) V {
	if v, ok := f.Value(tuple); ok {
		return v
	}
	return d.Zero
}

// At evaluates ψ under a full assignment to all query variables
// (assignment[v] = value of variable v).
func (f *Factor[V]) At(d *semiring.Domain[V], assignment []int) V {
	tuple := make([]int, len(f.Vars))
	for i, v := range f.Vars {
		tuple[i] = assignment[v]
	}
	return f.ValueOrZero(d, tuple)
}

// VarPos returns the position of variable v in Vars, or -1.
func (f *Factor[V]) VarPos(v int) int {
	for i, u := range f.Vars {
		if u == v {
			return i
		}
	}
	return -1
}

// Clone returns a deep copy (values copied shallowly; value types are
// treated as immutable throughout the engine).
func (f *Factor[V]) Clone() *Factor[V] {
	return &Factor[V]{
		Vars:   append([]int(nil), f.Vars...),
		Values: append([]V(nil), f.Values...),
		rows:   append([]int32(nil), f.rows...),
	}
}

// keepPositions returns the positions of f.Vars retained by a projection
// onto the given variable set, plus the projected variable list.
func (f *Factor[V]) keepPositions(onto []int) (keep []int, vars []int) {
	ontoSet := map[int]bool{}
	for _, v := range onto {
		ontoSet[v] = true
	}
	for i, v := range f.Vars {
		if ontoSet[v] {
			keep = append(keep, i)
			vars = append(vars, v)
		}
	}
	return keep, vars
}

// isPrefix reports whether keep is exactly positions 0..len(keep)-1: such
// projections preserve lexicographic row order, so grouping needs no
// re-sort.
func isPrefix(keep []int) bool {
	for i, p := range keep {
		if p != i {
			return false
		}
	}
	return true
}

// projectRows builds the flat projected block (len(keep) columns).
func (f *Factor[V]) projectRows(keep []int) []int32 {
	k := len(f.Vars)
	out := make([]int32, 0, len(f.Values)*len(keep))
	for i := 0; i < len(f.Values); i++ {
		row := f.rows[i*k : i*k+k]
		for _, p := range keep {
			out = append(out, row[p])
		}
	}
	return out
}

// groupOrder returns row indices ordered by projected-row content, stable by
// row index, so each group is contiguous and folds in original row order —
// the same accumulation sequence the map-based grouping used.  A nil return
// means rows are already grouped in place (order-preserving projection).
func groupOrder(proj []int32, m, n int, prefix bool) []int {
	if prefix {
		return nil
	}
	return argsortRows(proj, m, n, true)
}

// argsortRows returns the row indices of an n×k block in lexicographic row
// order; stable guarantees equal rows keep their input order (required
// wherever duplicates fold in input order).  The work happens in the shared
// packed-key radix kernel, which goes chunk-parallel on very large blocks.
func argsortRows(rows []int32, k, n int, stable bool) []int {
	return sortx.Argsort(rows, k, n, stable)
}

// foldGroups iterates the projected rows group by group (a group is a
// maximal run of equal projected rows, visited in original row order) and
// calls emit once per group with the group's row and member indices.
func foldGroups(proj []int32, m, n int, order []int, emit func(row []int32, members []int)) {
	if n == 0 {
		return
	}
	at := func(i int) int {
		if order == nil {
			return i
		}
		return order[i]
	}
	var members []int
	start := at(0)
	cur := proj[start*m : start*m+m]
	members = append(members, start)
	for i := 1; i < n; i++ {
		o := at(i)
		row := proj[o*m : o*m+m]
		if compareRows(cur, row) == 0 {
			members = append(members, o)
			continue
		}
		emit(cur, members)
		cur = row
		members = append(members[:0], o)
	}
	emit(cur, members)
}

// IndicatorProjection returns ψ_{S/T} of Definition 4.2: the {0,1}-valued
// function on S ∩ T that is One wherever some extension of the tuple has
// ψ ≠ 0.  The intersection must be non-empty.
func (f *Factor[V]) IndicatorProjection(d *semiring.Domain[V], onto []int) *Factor[V] {
	keep, vars := f.keepPositions(onto)
	out := &Factor[V]{Vars: vars}
	m := len(keep)
	n := f.Size()
	proj := f.projectRows(keep)
	order := groupOrder(proj, m, n, isPrefix(keep))
	foldGroups(proj, m, n, order, func(row []int32, _ []int) {
		out.rows = append(out.rows, row...)
		out.Values = append(out.Values, d.One)
	})
	return out
}

// ProductMarginalize computes ψ'_{S−{v}}(x_{S−v}) = ⊗_{x_v ∈ Dom(X_v)} ψ(x_S)
// (Section 5.2.2, "product marginalization").  Groups that do not cover the
// full domain of v contain a zero entry, so their product is zero and they
// are dropped — this realizes the product-marginalization oracle assumption
// (Assumption 2) on listing factors.
func (f *Factor[V]) ProductMarginalize(d *semiring.Domain[V], v, domSize int) *Factor[V] {
	keep, vars, _ := f.dropPosition(v)
	out := &Factor[V]{Vars: vars}
	m := len(keep)
	n := f.Size()
	proj := f.projectRows(keep)
	order := groupOrder(proj, m, n, isPrefix(keep))
	foldGroups(proj, m, n, order, func(row []int32, members []int) {
		if len(members) < domSize {
			return // an unlisted x_v is a zero entry: the product is zero
		}
		p := d.One
		for _, i := range members {
			p = d.Mul(p, f.Values[i])
		}
		if d.IsZero(p) {
			return
		}
		out.rows = append(out.rows, row...)
		out.Values = append(out.Values, p)
	})
	return out
}

// Marginalize aggregates variable v out with ⊕: ψ'(x_{S−v}) = ⊕_{x_v} ψ(x_S).
// Unlisted entries are zeros and contribute the identity of ⊕.
func (f *Factor[V]) Marginalize(d *semiring.Domain[V], op *semiring.Op[V], v int) *Factor[V] {
	keep, vars, _ := f.dropPosition(v)
	out := &Factor[V]{Vars: vars}
	m := len(keep)
	n := f.Size()
	proj := f.projectRows(keep)
	order := groupOrder(proj, m, n, isPrefix(keep))
	foldGroups(proj, m, n, order, func(row []int32, members []int) {
		acc := f.Values[members[0]]
		for _, i := range members[1:] {
			acc = op.Combine(acc, f.Values[i])
		}
		if d.IsZero(acc) {
			return
		}
		out.rows = append(out.rows, row...)
		out.Values = append(out.Values, acc)
	})
	return out
}

// dropPosition returns the kept positions and variable list with v removed.
func (f *Factor[V]) dropPosition(v int) (keep []int, vars []int, pos int) {
	pos = f.VarPos(v)
	if pos < 0 {
		panic(fmt.Sprintf("factor: variable %d not in factor over %v", v, f.Vars))
	}
	keep = make([]int, 0, len(f.Vars)-1)
	vars = make([]int, 0, len(f.Vars)-1)
	for i, u := range f.Vars {
		if i != pos {
			keep = append(keep, i)
			vars = append(vars, u)
		}
	}
	return keep, vars, pos
}

// PowValues raises every non-⊗-idempotent value to the k-th power in place
// (Algorithm 1, lines 16–17).  It returns the receiver.
func (f *Factor[V]) PowValues(d *semiring.Domain[V], k int) *Factor[V] {
	for i, v := range f.Values {
		if d.MulIdempotent(v) {
			continue
		}
		f.Values[i] = d.Pow(v, k)
	}
	f.compact(d)
	return f
}

// RangeIdempotent reports whether every value of ψ is ⊗-idempotent
// (Definition 5.2); such factors pass unchanged through product aggregates.
func (f *Factor[V]) RangeIdempotent(d *semiring.Domain[V]) bool {
	for _, v := range f.Values {
		if !d.MulIdempotent(v) {
			return false
		}
	}
	return true
}

// Condition returns ψ(· | y_W): rows matching the partial assignment keep
// their value, all others are dropped (Section 4.1).  W is given as a
// map from variable id to value; variables absent from the factor are
// ignored per the conditional-factor definition.  Filtering preserves the
// sorted row order.
func (f *Factor[V]) Condition(assign map[int]int) *Factor[V] {
	var positions []int
	var want []int32
	for i, v := range f.Vars {
		if val, ok := assign[v]; ok {
			if val < math.MinInt32 || val > math.MaxInt32 {
				// Stored values always fit int32, so an out-of-range probe
				// matches nothing — don't let the conversion wrap.
				return &Factor[V]{Vars: append([]int(nil), f.Vars...)}
			}
			positions = append(positions, i)
			want = append(want, int32(val))
		}
	}
	out := &Factor[V]{Vars: append([]int(nil), f.Vars...)}
	k := len(f.Vars)
	for i := 0; i < len(f.Values); i++ {
		row := f.rows[i*k : i*k+k]
		ok := true
		for j, p := range positions {
			if row[p] != want[j] {
				ok = false
				break
			}
		}
		if ok {
			out.rows = append(out.rows, row...)
			out.Values = append(out.Values, f.Values[i])
		}
	}
	return out
}

// Rename returns a copy of the factor with every variable v replaced by
// mapping[v], re-sorting columns to keep Vars ascending.  The mapping must
// be injective on the factor's variables.
func (f *Factor[V]) Rename(mapping []int) *Factor[V] {
	vars := make([]int, len(f.Vars))
	for i, v := range f.Vars {
		vars[i] = mapping[v]
	}
	perm := make([]int, len(vars)) // positions ordered by new variable id
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return vars[perm[a]] < vars[perm[b]] })
	newVars := make([]int, len(vars))
	for i, p := range perm {
		newVars[i] = vars[p]
	}
	for i := 1; i < len(newVars); i++ {
		if newVars[i] == newVars[i-1] {
			panic(fmt.Sprintf("factor: Rename mapping collides on variable %d", newVars[i]))
		}
	}
	k := len(f.Vars)
	rows := make([]int32, 0, len(f.rows))
	for r := 0; r < len(f.Values); r++ {
		row := f.rows[r*k : r*k+k]
		for _, p := range perm {
			rows = append(rows, row[p])
		}
	}
	out := &Factor[V]{Vars: newVars, Values: append([]V(nil), f.Values...), rows: rows}
	out.sortUnique()
	return out
}

// sortUnique re-sorts the block lexicographically.  Rows must be unique
// (they are whenever columns were permuted injectively), so the comparator
// is a strict total order and the permutation is deterministic.
func (f *Factor[V]) sortUnique() {
	if f.strictlySorted() {
		return
	}
	k := len(f.Vars)
	n := len(f.Values)
	order := argsortRows(f.rows, k, n, false) // rows unique: no tie-break needed
	rows := make([]int32, 0, len(f.rows))
	values := make([]V, n)
	for i, o := range order {
		rows = append(rows, f.rows[o*k:o*k+k]...)
		values[i] = f.Values[o]
	}
	f.rows = rows
	f.Values = values
}

// Equal reports whether two factors define the same function (same variable
// set, same non-zero tuples, equal values).  Both blocks are sorted and
// duplicate-free, so equality is one linear pass.
func (f *Factor[V]) Equal(d *semiring.Domain[V], g *Factor[V]) bool {
	if len(f.Vars) != len(g.Vars) || len(f.Values) != len(g.Values) {
		return false
	}
	for i := range f.Vars {
		if f.Vars[i] != g.Vars[i] {
			return false
		}
	}
	for i := range f.rows {
		if f.rows[i] != g.rows[i] {
			return false
		}
	}
	for i := range f.Values {
		if !d.Equal(f.Values[i], g.Values[i]) {
			return false
		}
	}
	return true
}

// String renders a small factor for debugging.
func (f *Factor[V]) String() string {
	s := fmt.Sprintf("ψ%v[%d rows]", f.Vars, f.Size())
	if f.Size() <= 8 {
		for i := 0; i < f.Size(); i++ {
			s += fmt.Sprintf(" %v=%v", f.Tuple(i, nil), f.Values[i])
		}
	}
	return s
}
