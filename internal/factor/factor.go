// Package factor implements the listing representation of FAQ factors
// (Definition 4.1 of the paper): a factor ψ_S is stored as the table of
// tuples 〈x_S, ψ_S(x_S)〉 with ψ_S(x_S) ≠ 0; absent tuples are 0.  The
// package provides the primitive operations InsideOut needs — conditional
// lookup, indicator projection (Definition 4.2), product marginalization
// (the "factor oracle" assumptions of Section 8.1), pointwise powering for
// product aggregates (Section 5.2.2) — plus aggregation helpers used by
// baseline algorithms.
package factor

import (
	"fmt"
	"sort"

	"github.com/faqdb/faq/internal/semiring"
)

// Factor is a function ψ over Vars in listing representation.  Vars are
// global variable ids in strictly increasing order; each tuple assigns a
// domain value (small int) to the corresponding variable.  Tuples are unique
// and values are non-zero.  The zero Factor value is an empty (identically
// zero) factor over no variables.
type Factor[V any] struct {
	Vars   []int
	Tuples [][]int
	Values []V

	index map[string]int
}

// New builds a factor from parallel tuple/value slices, dropping zero
// values, combining duplicate tuples with ⊕ (combine may be nil, in which
// case duplicates are an error) and sorting rows lexicographically.
func New[V any](d *semiring.Domain[V], vars []int, tuples [][]int, values []V,
	combine func(a, b V) V) (*Factor[V], error) {

	if !sort.IntsAreSorted(vars) {
		return nil, fmt.Errorf("factor: variables %v not sorted", vars)
	}
	for i := 1; i < len(vars); i++ {
		if vars[i] == vars[i-1] {
			return nil, fmt.Errorf("factor: duplicate variable %d", vars[i])
		}
	}
	if len(tuples) != len(values) {
		return nil, fmt.Errorf("factor: %d tuples but %d values", len(tuples), len(values))
	}
	f := &Factor[V]{Vars: vars}
	idx := map[string]int{}
	for i, t := range tuples {
		if len(t) != len(vars) {
			return nil, fmt.Errorf("factor: tuple %v has arity %d, want %d", t, len(t), len(vars))
		}
		if d.IsZero(values[i]) {
			continue
		}
		k := encode(t)
		if at, ok := idx[k]; ok {
			if combine == nil {
				return nil, fmt.Errorf("factor: duplicate tuple %v", t)
			}
			f.Values[at] = combine(f.Values[at], values[i])
			continue
		}
		idx[k] = len(f.Tuples)
		tt := make([]int, len(t))
		copy(tt, t)
		f.Tuples = append(f.Tuples, tt)
		f.Values = append(f.Values, values[i])
	}
	// Combining may have produced zeros (e.g. +1 and -1); drop them.
	f.compact(d)
	f.sortRows()
	return f, nil
}

// MustNew is New that panics on error; for tests and literals.
func MustNew[V any](d *semiring.Domain[V], vars []int, tuples [][]int, values []V) *Factor[V] {
	f, err := New(d, vars, tuples, values, nil)
	if err != nil {
		panic(err)
	}
	return f
}

// FromFunc materializes ψ over the full box Π dom(vars[i]) keeping non-zero
// entries: the bridge from "truth table" representations (dense matrices,
// CPTs) into the listing representation (Section 8.2).
func FromFunc[V any](d *semiring.Domain[V], vars []int, domSizes []int, f func(tuple []int) V) *Factor[V] {
	if !sort.IntsAreSorted(vars) {
		panic(fmt.Sprintf("factor: FromFunc variables %v not sorted", vars))
	}
	out := &Factor[V]{Vars: append([]int(nil), vars...)}
	tuple := make([]int, len(vars))
	var rec func(i int)
	rec = func(i int) {
		if i == len(vars) {
			v := f(tuple)
			if !d.IsZero(v) {
				t := make([]int, len(tuple))
				copy(t, tuple)
				out.Tuples = append(out.Tuples, t)
				out.Values = append(out.Values, v)
			}
			return
		}
		for x := 0; x < domSizes[vars[i]]; x++ {
			tuple[i] = x
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

// Scalar returns a nullary factor with the given value (or an empty factor
// if the value is zero).
func Scalar[V any](d *semiring.Domain[V], v V) *Factor[V] {
	f := &Factor[V]{Vars: []int{}}
	if !d.IsZero(v) {
		f.Tuples = [][]int{{}}
		f.Values = []V{v}
	}
	return f
}

func (f *Factor[V]) compact(d *semiring.Domain[V]) {
	keptT := f.Tuples[:0]
	keptV := f.Values[:0]
	for i, v := range f.Values {
		if !d.IsZero(v) {
			keptT = append(keptT, f.Tuples[i])
			keptV = append(keptV, v)
		}
	}
	f.Tuples = keptT
	f.Values = keptV
	f.index = nil
}

func (f *Factor[V]) sortRows() {
	order := make([]int, len(f.Tuples))
	for i := range order {
		order[i] = i
	}
	parallelSort(order, func(a, b int) bool {
		return lessTuple(f.Tuples[a], f.Tuples[b])
	})
	tuples := make([][]int, len(order))
	values := make([]V, len(order))
	for i, o := range order {
		tuples[i] = f.Tuples[o]
		values[i] = f.Values[o]
	}
	f.Tuples = tuples
	f.Values = values
	f.index = nil
}

func lessTuple(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// encode renders a tuple as a map key.
func encode(t []int) string {
	b := make([]byte, 0, len(t)*4)
	for _, x := range t {
		b = append(b, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
	}
	return string(b)
}

// Size returns ‖ψ‖, the number of non-zero tuples.
func (f *Factor[V]) Size() int { return len(f.Tuples) }

// Arity returns the number of variables.
func (f *Factor[V]) Arity() int { return len(f.Vars) }

func (f *Factor[V]) buildIndex() {
	if f.index != nil {
		return
	}
	f.index = make(map[string]int, len(f.Tuples))
	for i, t := range f.Tuples {
		f.index[encode(t)] = i
	}
}

// Value looks up ψ(tuple) where tuple is aligned with Vars.  The second
// result reports whether the tuple is present (absent means 0).
func (f *Factor[V]) Value(tuple []int) (V, bool) {
	f.buildIndex()
	i, ok := f.index[encode(tuple)]
	if !ok {
		var zero V
		return zero, false
	}
	return f.Values[i], true
}

// ValueOrZero returns ψ(tuple), using the domain's zero for absent tuples.
func (f *Factor[V]) ValueOrZero(d *semiring.Domain[V], tuple []int) V {
	if v, ok := f.Value(tuple); ok {
		return v
	}
	return d.Zero
}

// At evaluates ψ under a full assignment to all query variables
// (assignment[v] = value of variable v).
func (f *Factor[V]) At(d *semiring.Domain[V], assignment []int) V {
	tuple := make([]int, len(f.Vars))
	for i, v := range f.Vars {
		tuple[i] = assignment[v]
	}
	return f.ValueOrZero(d, tuple)
}

// VarPos returns the position of variable v in Vars, or -1.
func (f *Factor[V]) VarPos(v int) int {
	for i, u := range f.Vars {
		if u == v {
			return i
		}
	}
	return -1
}

// Clone returns a deep copy (values copied shallowly; value types are
// treated as immutable throughout the engine).
func (f *Factor[V]) Clone() *Factor[V] {
	c := &Factor[V]{Vars: append([]int(nil), f.Vars...)}
	c.Tuples = make([][]int, len(f.Tuples))
	for i, t := range f.Tuples {
		c.Tuples[i] = append([]int(nil), t...)
	}
	c.Values = append([]V(nil), f.Values...)
	return c
}

// IndicatorProjection returns ψ_{S/T} of Definition 4.2: the {0,1}-valued
// function on S ∩ T that is One wherever some extension of the tuple has
// ψ ≠ 0.  The intersection must be non-empty.
func (f *Factor[V]) IndicatorProjection(d *semiring.Domain[V], onto []int) *Factor[V] {
	var keep []int // positions in f.Vars to keep
	ontoSet := map[int]bool{}
	for _, v := range onto {
		ontoSet[v] = true
	}
	var vars []int
	for i, v := range f.Vars {
		if ontoSet[v] {
			keep = append(keep, i)
			vars = append(vars, v)
		}
	}
	out := &Factor[V]{Vars: vars}
	seen := map[string]bool{}
	for _, t := range f.Tuples {
		proj := make([]int, len(keep))
		for j, i := range keep {
			proj[j] = t[i]
		}
		k := encode(proj)
		if seen[k] {
			continue
		}
		seen[k] = true
		out.Tuples = append(out.Tuples, proj)
		out.Values = append(out.Values, d.One)
	}
	out.sortRows()
	return out
}

// ProductMarginalize computes ψ'_{S−{v}}(x_{S−v}) = ⊗_{x_v ∈ Dom(X_v)} ψ(x_S)
// (Section 5.2.2, "product marginalization").  Groups that do not cover the
// full domain of v contain a zero entry, so their product is zero and they
// are dropped — this realizes the product-marginalization oracle assumption
// (Assumption 2) on listing factors.
func (f *Factor[V]) ProductMarginalize(d *semiring.Domain[V], v, domSize int) *Factor[V] {
	pos := f.VarPos(v)
	if pos < 0 {
		panic(fmt.Sprintf("factor: variable %d not in factor over %v", v, f.Vars))
	}
	vars := make([]int, 0, len(f.Vars)-1)
	for _, u := range f.Vars {
		if u != v {
			vars = append(vars, u)
		}
	}
	type group struct {
		product V
		count   int
	}
	groups := map[string]*group{}
	var keys []string
	tuples := map[string][]int{}
	for i, t := range f.Tuples {
		rest := make([]int, 0, len(t)-1)
		for j, x := range t {
			if j != pos {
				rest = append(rest, x)
			}
		}
		k := encode(rest)
		g, ok := groups[k]
		if !ok {
			g = &group{product: d.One}
			groups[k] = g
			keys = append(keys, k)
			tuples[k] = rest
		}
		g.product = d.Mul(g.product, f.Values[i])
		g.count++
	}
	out := &Factor[V]{Vars: vars}
	for _, k := range keys {
		g := groups[k]
		if g.count < domSize {
			continue // an unlisted x_v is a zero entry: the product is zero
		}
		if d.IsZero(g.product) {
			continue
		}
		out.Tuples = append(out.Tuples, tuples[k])
		out.Values = append(out.Values, g.product)
	}
	out.sortRows()
	return out
}

// Marginalize aggregates variable v out with ⊕: ψ'(x_{S−v}) = ⊕_{x_v} ψ(x_S).
// Unlisted entries are zeros and contribute the identity of ⊕.
func (f *Factor[V]) Marginalize(d *semiring.Domain[V], op *semiring.Op[V], v int) *Factor[V] {
	pos := f.VarPos(v)
	if pos < 0 {
		panic(fmt.Sprintf("factor: variable %d not in factor over %v", v, f.Vars))
	}
	vars := make([]int, 0, len(f.Vars)-1)
	for _, u := range f.Vars {
		if u != v {
			vars = append(vars, u)
		}
	}
	acc := map[string]V{}
	var keys []string
	tuples := map[string][]int{}
	for i, t := range f.Tuples {
		rest := make([]int, 0, len(t)-1)
		for j, x := range t {
			if j != pos {
				rest = append(rest, x)
			}
		}
		k := encode(rest)
		if cur, ok := acc[k]; ok {
			acc[k] = op.Combine(cur, f.Values[i])
		} else {
			acc[k] = f.Values[i]
			keys = append(keys, k)
			tuples[k] = rest
		}
	}
	out := &Factor[V]{Vars: vars}
	for _, k := range keys {
		if d.IsZero(acc[k]) {
			continue
		}
		out.Tuples = append(out.Tuples, tuples[k])
		out.Values = append(out.Values, acc[k])
	}
	out.sortRows()
	return out
}

// PowValues raises every non-⊗-idempotent value to the k-th power in place
// (Algorithm 1, lines 16–17).  It returns the receiver.
func (f *Factor[V]) PowValues(d *semiring.Domain[V], k int) *Factor[V] {
	for i, v := range f.Values {
		if d.MulIdempotent(v) {
			continue
		}
		f.Values[i] = d.Pow(v, k)
	}
	f.compact(d)
	return f
}

// RangeIdempotent reports whether every value of ψ is ⊗-idempotent
// (Definition 5.2); such factors pass unchanged through product aggregates.
func (f *Factor[V]) RangeIdempotent(d *semiring.Domain[V]) bool {
	for _, v := range f.Values {
		if !d.MulIdempotent(v) {
			return false
		}
	}
	return true
}

// Condition returns ψ(· | y_W): rows matching the partial assignment keep
// their value, all others are dropped (Section 4.1).  W is given as a
// map from variable id to value; variables absent from the factor are
// ignored per the conditional-factor definition.
func (f *Factor[V]) Condition(assign map[int]int) *Factor[V] {
	var positions []int
	var want []int
	for i, v := range f.Vars {
		if val, ok := assign[v]; ok {
			positions = append(positions, i)
			want = append(want, val)
		}
	}
	out := &Factor[V]{Vars: append([]int(nil), f.Vars...)}
	for i, t := range f.Tuples {
		ok := true
		for j, p := range positions {
			if t[p] != want[j] {
				ok = false
				break
			}
		}
		if ok {
			out.Tuples = append(out.Tuples, t)
			out.Values = append(out.Values, f.Values[i])
		}
	}
	return out
}

// Rename returns a copy of the factor with every variable v replaced by
// mapping[v], re-sorting columns to keep Vars ascending.  The mapping must
// be injective on the factor's variables.
func (f *Factor[V]) Rename(mapping []int) *Factor[V] {
	vars := make([]int, len(f.Vars))
	for i, v := range f.Vars {
		vars[i] = mapping[v]
	}
	perm := make([]int, len(vars)) // positions ordered by new variable id
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return vars[perm[a]] < vars[perm[b]] })
	out := &Factor[V]{Vars: make([]int, len(vars))}
	for i, p := range perm {
		out.Vars[i] = vars[p]
	}
	for i := 1; i < len(out.Vars); i++ {
		if out.Vars[i] == out.Vars[i-1] {
			panic(fmt.Sprintf("factor: Rename mapping collides on variable %d", out.Vars[i]))
		}
	}
	out.Tuples = make([][]int, len(f.Tuples))
	for r, t := range f.Tuples {
		nt := make([]int, len(t))
		for i, p := range perm {
			nt[i] = t[p]
		}
		out.Tuples[r] = nt
	}
	out.Values = append([]V(nil), f.Values...)
	out.sortRows()
	return out
}

// Equal reports whether two factors define the same function (same variable
// set, same non-zero tuples, equal values).
func (f *Factor[V]) Equal(d *semiring.Domain[V], g *Factor[V]) bool {
	if len(f.Vars) != len(g.Vars) || len(f.Tuples) != len(g.Tuples) {
		return false
	}
	for i := range f.Vars {
		if f.Vars[i] != g.Vars[i] {
			return false
		}
	}
	g.buildIndex()
	for i, t := range f.Tuples {
		j, ok := g.index[encode(t)]
		if !ok || !d.Equal(f.Values[i], g.Values[j]) {
			return false
		}
	}
	return true
}

// String renders a small factor for debugging.
func (f *Factor[V]) String() string {
	s := fmt.Sprintf("ψ%v[%d rows]", f.Vars, len(f.Tuples))
	if len(f.Tuples) <= 8 {
		for i, t := range f.Tuples {
			s += fmt.Sprintf(" %v=%v", t, f.Values[i])
		}
	}
	return s
}
