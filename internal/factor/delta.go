// Delta batches: the factor-level half of incremental view maintenance.
// A Delta is one validated batch of row changes against a single factor;
// ApplyDelta merges it into the sorted flat block in one linear pass and
// returns a new factor (bases are immutable — the engine's trie cache and
// concurrent readers may still hold the old one).  DeltaFactor extracts the
// algebraic difference new ⊖ old as a factor of its own, which is what ring
// Δ-propagation joins against the unchanged inputs.
package factor

import (
	"errors"
	"fmt"

	"github.com/faqdb/faq/internal/semiring"
)

// Sentinel errors for delta validation, matched with errors.Is.
var (
	// ErrDeltaArity reports a batch whose row block does not match the
	// factor's arity (or whose value count does not match its row count).
	ErrDeltaArity = errors.New("factor: delta arity mismatch")
	// ErrDeltaDup reports a batch listing the same row twice: the merge
	// would have to pick an order, so the batch is rejected instead.
	ErrDeltaDup = errors.New("factor: duplicate row in delta batch")
	// ErrDeltaAbsent reports a delete of a row the factor does not hold.
	ErrDeltaAbsent = errors.New("factor: delete of absent row")
	// ErrDeltaRange reports a key outside the variable's domain.
	ErrDeltaRange = errors.New("factor: delta key outside variable domain")
)

// DeltaOp says what a delta batch does to its rows.  The numeric values
// are shared with the wire encoding of delta frames.
type DeltaOp byte

const (
	// DeltaInsert upserts rows: present rows take the batch value, absent
	// rows are added.  A zero batch value removes the row (the listing
	// representation never stores zeros).
	DeltaInsert DeltaOp = 1
	// DeltaDelete removes rows; every row must be present.
	DeltaDelete DeltaOp = 2
)

// Valid reports whether the op byte is a known delta operation.
func (o DeltaOp) Valid() bool { return o == DeltaInsert || o == DeltaDelete }

// String names the op for error messages.
func (o DeltaOp) String() string {
	switch o {
	case DeltaInsert:
		return "insert"
	case DeltaDelete:
		return "delete"
	}
	return fmt.Sprintf("DeltaOp(%d)", byte(o))
}

// Delta is one batch of row changes against a single factor: a row-major
// block with the factor's arity, plus parallel values for inserts (deletes
// carry none).  Rows need not be sorted; ApplyDelta sorts a copy.
type Delta[V any] struct {
	Op     DeltaOp
	Rows   []int32
	Values []V
}

// NumRows returns the number of rows in the batch for the given arity.
func (dl *Delta[V]) NumRows(arity int) int {
	if arity == 0 {
		return 0
	}
	return len(dl.Rows) / arity
}

// check validates batch shape against the factor's arity and, when
// domSizes is non-nil (one entry per factor variable, aligned with Vars),
// that every key lies inside its variable's domain.  It returns the batch
// rows in sorted order along with the matching value permutation.
func (dl *Delta[V]) check(arity int, domSizes []int) (rows []int32, vals []V, err error) {
	if !dl.Op.Valid() {
		return nil, nil, fmt.Errorf("%w: unknown op %d", ErrDeltaArity, byte(dl.Op))
	}
	if arity == 0 || len(dl.Rows)%arity != 0 {
		return nil, nil, fmt.Errorf("%w: row block of %d cells for arity %d",
			ErrDeltaArity, len(dl.Rows), arity)
	}
	n := len(dl.Rows) / arity
	switch dl.Op {
	case DeltaInsert:
		if len(dl.Values) != n {
			return nil, nil, fmt.Errorf("%w: %d values for %d insert rows",
				ErrDeltaArity, len(dl.Values), n)
		}
	case DeltaDelete:
		if len(dl.Values) != 0 {
			return nil, nil, fmt.Errorf("%w: delete batch carries %d values",
				ErrDeltaArity, len(dl.Values))
		}
	}
	if domSizes != nil {
		if len(domSizes) != arity {
			return nil, nil, fmt.Errorf("%w: %d domain sizes for arity %d",
				ErrDeltaArity, len(domSizes), arity)
		}
		for i, x := range dl.Rows {
			if s := domSizes[i%arity]; x < 0 || int(x) >= s {
				return nil, nil, fmt.Errorf("%w: key %d at column %d, domain size %d",
					ErrDeltaRange, x, i%arity, s)
			}
		}
	}
	order := argsortRows(dl.Rows, arity, n, true)
	rows = make([]int32, 0, len(dl.Rows))
	if dl.Op == DeltaInsert {
		vals = make([]V, 0, n)
	}
	for i, o := range order {
		row := dl.Rows[o*arity : o*arity+arity]
		if i > 0 && compareRows(rows[(i-1)*arity:i*arity], row) == 0 {
			return nil, nil, fmt.Errorf("%w: row %v", ErrDeltaDup, tupleOfRow(row))
		}
		rows = append(rows, row...)
		if dl.Op == DeltaInsert {
			vals = append(vals, dl.Values[o])
		}
	}
	return rows, vals, nil
}

func tupleOfRow(row []int32) []int {
	t := make([]int, len(row))
	for i, x := range row {
		t[i] = int(x)
	}
	return t
}

// ApplyDelta merges a batch into the factor and returns the result as a
// NEW factor; the receiver is never mutated.  Inserts upsert (a zero value
// removes the row), deletes require the row to be present.  When domSizes
// is non-nil (one size per factor variable) every key is bounds-checked
// against it.  The merge is one linear pass over block and batch, so the
// result block stays strictly sorted by construction.
func (f *Factor[V]) ApplyDelta(d *semiring.Domain[V], dl Delta[V], domSizes []int) (*Factor[V], error) {
	k := len(f.Vars)
	rows, vals, err := dl.check(k, domSizes)
	if err != nil {
		return nil, err
	}
	n := f.Size()
	m := len(rows) / k
	out := &Factor[V]{
		Vars:   append([]int(nil), f.Vars...),
		Values: make([]V, 0, n+m),
		rows:   make([]int32, 0, (n+m)*k),
	}
	i, j := 0, 0
	for i < n && j < m {
		c := compareRows(f.rows[i*k:i*k+k], rows[j*k:j*k+k])
		switch {
		case c < 0: // only in the old block: keep
			out.rows = append(out.rows, f.rows[i*k:i*k+k]...)
			out.Values = append(out.Values, f.Values[i])
			i++
		case c > 0: // only in the batch
			if dl.Op == DeltaDelete {
				return nil, fmt.Errorf("%w: row %v", ErrDeltaAbsent, tupleOfRow(rows[j*k:j*k+k]))
			}
			if !d.IsZero(vals[j]) {
				out.rows = append(out.rows, rows[j*k:j*k+k]...)
				out.Values = append(out.Values, vals[j])
			}
			j++
		default: // in both: the batch wins
			if dl.Op == DeltaInsert && !d.IsZero(vals[j]) {
				out.rows = append(out.rows, rows[j*k:j*k+k]...)
				out.Values = append(out.Values, vals[j])
			}
			i++
			j++
		}
	}
	for ; i < n; i++ {
		out.rows = append(out.rows, f.rows[i*k:i*k+k]...)
		out.Values = append(out.Values, f.Values[i])
	}
	for ; j < m; j++ {
		if dl.Op == DeltaDelete {
			return nil, fmt.Errorf("%w: row %v", ErrDeltaAbsent, tupleOfRow(rows[j*k:j*k+k]))
		}
		if !d.IsZero(vals[j]) {
			out.rows = append(out.rows, rows[j*k:j*k+k]...)
			out.Values = append(out.Values, vals[j])
		}
	}
	return out, nil
}

// DeltaFactor returns the algebraic difference the batch induces, as a
// factor Δψ with Δψ(r) = new(r) ⊖ old(r) over exactly the batch's rows
// (rows whose value does not change are dropped).  inverse is the ⊕-group
// subtraction (a ⊖ b); ψ_after = ψ_before ⊕ Δψ pointwise.  Validation
// matches ApplyDelta so the two views of a batch always agree.
func (f *Factor[V]) DeltaFactor(d *semiring.Domain[V], inverse func(a, b V) V,
	dl Delta[V], domSizes []int) (*Factor[V], error) {

	k := len(f.Vars)
	rows, vals, err := dl.check(k, domSizes)
	if err != nil {
		return nil, err
	}
	m := len(rows) / k
	out := &Factor[V]{Vars: append([]int(nil), f.Vars...)}
	for j := 0; j < m; j++ {
		row := rows[j*k : j*k+k]
		old := f.ValueOrZero(d, tupleOfRow(row))
		next := d.Zero
		if dl.Op == DeltaInsert {
			next = vals[j]
		} else if _, ok := f.find(tupleOfRow(row)); !ok {
			return nil, fmt.Errorf("%w: row %v", ErrDeltaAbsent, tupleOfRow(row))
		}
		dv := inverse(next, old)
		if d.IsZero(dv) {
			continue
		}
		out.rows = append(out.rows, row...)
		out.Values = append(out.Values, dv)
	}
	return out, nil
}

// Add returns ψ ⊕ φ pointwise over two factors on the same variable set:
// a linear merge of the two sorted blocks, dropping rows that combine to
// zero.  This is how a Δ-propagated result folds back into the cached one.
func (f *Factor[V]) Add(d *semiring.Domain[V], combine func(a, b V) V, g *Factor[V]) *Factor[V] {
	k := len(f.Vars)
	if len(g.Vars) != k {
		panic(fmt.Sprintf("factor: Add over mismatched variable sets %v vs %v", f.Vars, g.Vars))
	}
	for i := range f.Vars {
		if f.Vars[i] != g.Vars[i] {
			panic(fmt.Sprintf("factor: Add over mismatched variable sets %v vs %v", f.Vars, g.Vars))
		}
	}
	n, m := f.Size(), g.Size()
	out := &Factor[V]{
		Vars:   append([]int(nil), f.Vars...),
		Values: make([]V, 0, n+m),
		rows:   make([]int32, 0, (n+m)*k),
	}
	emit := func(row []int32, v V) {
		if d.IsZero(v) {
			return
		}
		out.rows = append(out.rows, row...)
		out.Values = append(out.Values, v)
	}
	i, j := 0, 0
	for i < n && j < m {
		fr, gr := f.rows[i*k:i*k+k], g.rows[j*k:j*k+k]
		switch c := compareRows(fr, gr); {
		case c < 0:
			emit(fr, f.Values[i])
			i++
		case c > 0:
			emit(gr, g.Values[j])
			j++
		default:
			emit(fr, combine(f.Values[i], g.Values[j]))
			i++
			j++
		}
	}
	for ; i < n; i++ {
		emit(f.rows[i*k:i*k+k], f.Values[i])
	}
	for ; j < m; j++ {
		emit(g.rows[j*k:j*k+k], g.Values[j])
	}
	return out
}

// RestrictRange returns the rows whose value for variable v lies in
// [lo, hi).  Filtering preserves the sorted row order, so the result block
// needs no re-sort; this is the slicing primitive behind affected-block
// re-execution, where v is the partition variable of the block layout.
func (f *Factor[V]) RestrictRange(v int, lo, hi int32) *Factor[V] {
	pos := f.VarPos(v)
	if pos < 0 {
		panic(fmt.Sprintf("factor: RestrictRange variable %d not in factor over %v", v, f.Vars))
	}
	out := &Factor[V]{Vars: append([]int(nil), f.Vars...)}
	k := len(f.Vars)
	for i := 0; i < len(f.Values); i++ {
		x := f.rows[i*k+pos]
		if x < lo || x >= hi {
			continue
		}
		out.rows = append(out.rows, f.rows[i*k:i*k+k]...)
		out.Values = append(out.Values, f.Values[i])
	}
	return out
}

// KeyRange returns the minimum and maximum value variable v takes in the
// batch's rows, for dirtying only the blocks a delta can touch.  ok is
// false when the batch is empty or v is not a factor variable.
func (dl *Delta[V]) KeyRange(vars []int, v, arity int) (lo, hi int32, ok bool) {
	pos := -1
	for i, u := range vars {
		if u == v {
			pos = i
			break
		}
	}
	if pos < 0 || arity == 0 || len(dl.Rows) < arity {
		return 0, 0, false
	}
	lo, hi = dl.Rows[pos], dl.Rows[pos]
	for i := pos; i < len(dl.Rows); i += arity {
		if x := dl.Rows[i]; x < lo {
			lo = x
		} else if x > hi {
			hi = x
		}
	}
	return lo, hi, true
}
