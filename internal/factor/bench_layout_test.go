// Layout micro-benchmarks for the columnar factor block: construction
// (sort + dedup into the flat block), binary-search lookup, and the
// sort-based grouping of Marginalize.  Run by `make bench-layout`.
package factor

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/faqdb/faq/internal/semiring"
)

func layoutInput(seed int64, arity, dom, n int) ([][]int, []float64) {
	rng := rand.New(rand.NewSource(seed))
	tuples := make([][]int, n)
	values := make([]float64, n)
	for i := range tuples {
		t := make([]int, arity)
		for j := range t {
			t[j] = rng.Intn(dom)
		}
		tuples[i] = t
		values[i] = float64(1 + rng.Intn(7))
	}
	return tuples, values
}

func BenchmarkLayoutFactorNew(b *testing.B) {
	d := semiring.Float()
	tuples, values := layoutInput(21, 2, 3000, 48000)
	combine := func(a, x float64) float64 { return a + x }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(d, []int{0, 1}, tuples, append([]float64(nil), values...), combine); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLayoutFactorLookup(b *testing.B) {
	d := semiring.Float()
	tuples, values := layoutInput(22, 2, 3000, 48000)
	f, err := New(d, []int{0, 1}, tuples, values, func(a, x float64) float64 { return a })
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := f.ValueOrZero(d, tuples[i%len(tuples)]); v == 0 {
			b.Fatal("present tuple read as zero")
		}
	}
}

// BenchmarkLayoutProjection: marginalizing out the FIRST column keeps a
// non-prefix projection, so grouping runs through the sort-based path
// (argsortRows over the projected block) at arity 3-5.  `make bench-radix`
// records these to BENCH_PR9.json.
func BenchmarkLayoutProjection(b *testing.B) {
	d := semiring.Float()
	op := semiring.OpFloatSum()
	for _, arity := range []int{3, 4, 5} {
		vars := make([]int, arity)
		for i := range vars {
			vars[i] = i
		}
		tuples, values := layoutInput(int64(30+arity), arity, 3000, 48000)
		f, err := New(d, vars, tuples, values, func(a, x float64) float64 { return a + x })
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("arity%d", arity), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if g := f.Marginalize(d, op, 0); g.Size() == 0 {
					b.Fatal("empty marginal")
				}
			}
		})
	}
}

func BenchmarkLayoutMarginalize(b *testing.B) {
	d := semiring.Float()
	op := semiring.OpFloatSum()
	tuples, values := layoutInput(23, 3, 64, 100000)
	f, err := New(d, []int{0, 1, 2}, tuples, values, func(a, x float64) float64 { return a + x })
	if err != nil {
		b.Fatal(err)
	}
	b.Run("last-column", func(b *testing.B) { // order-preserving fast path
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.Marginalize(d, op, 2)
		}
	})
	b.Run("middle-column", func(b *testing.B) { // sort-based grouping
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.Marginalize(d, op, 1)
		}
	})
}
