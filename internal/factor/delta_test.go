package factor

import (
	"errors"
	"testing"

	"github.com/faqdb/faq/internal/semiring"
)

// deltaBase builds the shared fixture: a 2-ary factor over variables {0, 1}
// with domain sizes {3, 3} holding rows (0,0)=1, (1,2)=2, (2,1)=3.
func deltaBase(t *testing.T) (*semiring.Domain[float64], *Factor[float64], []int) {
	t.Helper()
	d := semiring.Float()
	f, err := New(d, []int{0, 1},
		[][]int{{0, 0}, {1, 2}, {2, 1}}, []float64{1, 2, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d, f, []int{3, 3}
}

func TestApplyDeltaDeleteToEmpty(t *testing.T) {
	d, f, doms := deltaBase(t)
	g, err := f.ApplyDelta(d, Delta[float64]{Op: DeltaDelete,
		Rows: []int32{2, 1, 0, 0, 1, 2}}, doms)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 0 {
		t.Fatalf("delete-all left %d rows", g.Size())
	}
	if f.Size() != 3 {
		t.Fatalf("ApplyDelta mutated the receiver: %d rows", f.Size())
	}
	// The empty factor keeps working: an insert brings rows back, and a
	// delete against it is an absent-row error, not a panic.
	h, err := g.ApplyDelta(d, Delta[float64]{Op: DeltaInsert,
		Rows: []int32{1, 1}, Values: []float64{5}}, doms)
	if err != nil {
		t.Fatal(err)
	}
	if h.Size() != 1 || h.ValueOrZero(d, []int{1, 1}) != 5 {
		t.Fatalf("insert into emptied factor: %v", h)
	}
	if _, err := g.ApplyDelta(d, Delta[float64]{Op: DeltaDelete,
		Rows: []int32{0, 0}}, doms); !errors.Is(err, ErrDeltaAbsent) {
		t.Fatalf("delete from empty factor: %v, want ErrDeltaAbsent", err)
	}
}

func TestApplyDeltaDuplicateRowRejected(t *testing.T) {
	d, f, doms := deltaBase(t)
	if _, err := f.ApplyDelta(d, Delta[float64]{Op: DeltaInsert,
		Rows: []int32{1, 1, 1, 1}, Values: []float64{4, 5}}, doms); !errors.Is(err, ErrDeltaDup) {
		t.Fatalf("duplicate insert rows: %v, want ErrDeltaDup", err)
	}
	if _, err := f.ApplyDelta(d, Delta[float64]{Op: DeltaDelete,
		Rows: []int32{0, 0, 0, 0}}, doms); !errors.Is(err, ErrDeltaDup) {
		t.Fatalf("duplicate delete rows: %v, want ErrDeltaDup", err)
	}
}

func TestApplyDeltaOutOfRangeRejected(t *testing.T) {
	d, f, doms := deltaBase(t)
	for _, rows := range [][]int32{{3, 0}, {0, 3}, {-1, 0}} {
		if _, err := f.ApplyDelta(d, Delta[float64]{Op: DeltaInsert,
			Rows: rows, Values: []float64{1}}, doms); !errors.Is(err, ErrDeltaRange) {
			t.Fatalf("insert of key %v: %v, want ErrDeltaRange", rows, err)
		}
		if _, err := f.ApplyDelta(d, Delta[float64]{Op: DeltaDelete,
			Rows: rows}, doms); !errors.Is(err, ErrDeltaRange) {
			t.Fatalf("delete of key %v: %v, want ErrDeltaRange", rows, err)
		}
	}
	// Without domain sizes the same keys pass shape validation (the caller
	// opted out of bounds checking).
	if _, err := f.ApplyDelta(d, Delta[float64]{Op: DeltaInsert,
		Rows: []int32{7, 9}, Values: []float64{1}}, nil); err != nil {
		t.Fatalf("unchecked insert: %v", err)
	}
}

func TestApplyDeltaShapeRejected(t *testing.T) {
	d, f, doms := deltaBase(t)
	cases := []Delta[float64]{
		{Op: DeltaInsert, Rows: []int32{0, 0, 1}, Values: []float64{1}}, // ragged row block
		{Op: DeltaInsert, Rows: []int32{0, 0}, Values: []float64{1, 2}}, // value count off
		{Op: DeltaDelete, Rows: []int32{0, 0}, Values: []float64{1}},    // delete with values
		{Op: DeltaOp(9), Rows: []int32{0, 0}},                           // unknown op
	}
	for i, dl := range cases {
		if _, err := f.ApplyDelta(d, dl, doms); !errors.Is(err, ErrDeltaArity) {
			t.Fatalf("case %d: %v, want ErrDeltaArity", i, err)
		}
	}
}

func TestApplyDeltaZeroInsertRemoves(t *testing.T) {
	d, f, doms := deltaBase(t)
	// A zero value on a present row removes it; on an absent row it is a
	// no-op — the listing representation never stores zeros.
	g, err := f.ApplyDelta(d, Delta[float64]{Op: DeltaInsert,
		Rows: []int32{1, 2, 2, 2}, Values: []float64{0, 0}}, doms)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 2 {
		t.Fatalf("zero upsert: %d rows, want 2", g.Size())
	}
	if got := g.ValueOrZero(d, []int{1, 2}); got != 0 {
		t.Fatalf("zero upsert left (1,2)=%v", got)
	}
}

// TestDeltaFactorFoldsBack pins the algebra ring propagation rests on:
// old ⊕ Δψ = new pointwise, with unchanged rows absent from Δψ.
func TestDeltaFactorFoldsBack(t *testing.T) {
	d, f, doms := deltaBase(t)
	dl := Delta[float64]{Op: DeltaInsert,
		Rows: []int32{0, 0, 1, 1, 1, 2}, Values: []float64{1, 4, 7}}
	diff, err := f.DeltaFactor(d, func(a, b float64) float64 { return a - b }, dl, doms)
	if err != nil {
		t.Fatal(err)
	}
	// (0,0) is unchanged (1 → 1) and must be dropped from Δψ.
	if diff.Size() != 2 {
		t.Fatalf("Δψ has %d rows, want 2: %v", diff.Size(), diff)
	}
	if got := diff.ValueOrZero(d, []int{0, 0}); got != 0 {
		t.Fatalf("unchanged row in Δψ: %v", got)
	}
	want, err := f.ApplyDelta(d, dl, doms)
	if err != nil {
		t.Fatal(err)
	}
	got := f.Add(d, func(a, b float64) float64 { return a + b }, diff)
	if !got.Equal(d, want) {
		t.Fatalf("old ⊕ Δψ = %v, want %v", got, want)
	}
}

func TestRestrictRangeAndKeyRange(t *testing.T) {
	d, f, _ := deltaBase(t)
	r := f.RestrictRange(0, 1, 3)
	if r.Size() != 2 || r.ValueOrZero(d, []int{1, 2}) != 2 || r.ValueOrZero(d, []int{2, 1}) != 3 {
		t.Fatalf("RestrictRange(0, 1, 3) = %v", r)
	}
	if f.RestrictRange(1, 2, 3).Size() != 1 {
		t.Fatal("RestrictRange on the second column failed")
	}

	dl := Delta[float64]{Op: DeltaDelete, Rows: []int32{2, 1, 0, 0}}
	lo, hi, ok := dl.KeyRange([]int{0, 1}, 0, 2)
	if !ok || lo != 0 || hi != 2 {
		t.Fatalf("KeyRange over var 0 = %d, %d, %v", lo, hi, ok)
	}
	lo, hi, ok = dl.KeyRange([]int{0, 1}, 1, 2)
	if !ok || lo != 0 || hi != 1 {
		t.Fatalf("KeyRange over var 1 = %d, %d, %v", lo, hi, ok)
	}
	if _, _, ok := dl.KeyRange([]int{0, 1}, 5, 2); ok {
		t.Fatal("KeyRange accepted a variable the factor does not hold")
	}
	empty := Delta[float64]{Op: DeltaDelete}
	if _, _, ok := empty.KeyRange([]int{0, 1}, 0, 2); ok {
		t.Fatal("KeyRange accepted an empty batch")
	}
}
