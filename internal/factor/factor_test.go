package factor

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/faqdb/faq/internal/semiring"
)

var fd = semiring.Float()

func mk(t *testing.T, vars []int, rows map[string]float64) *Factor[float64] {
	t.Helper()
	var tuples [][]int
	var values []float64
	for k, v := range rows {
		var tup []int
		for _, c := range k {
			tup = append(tup, int(c-'0'))
		}
		if len(k) == 0 {
			tup = []int{}
		}
		tuples = append(tuples, tup)
		values = append(values, v)
	}
	f, err := New(fd, vars, tuples, values, nil)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewValidation(t *testing.T) {
	if _, err := New(fd, []int{2, 1}, nil, nil, nil); err == nil {
		t.Fatal("unsorted vars should fail")
	}
	if _, err := New(fd, []int{1, 1}, nil, nil, nil); err == nil {
		t.Fatal("duplicate vars should fail")
	}
	if _, err := New(fd, []int{0}, [][]int{{1}}, []float64{1, 2}, nil); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if _, err := New(fd, []int{0}, [][]int{{1, 2}}, []float64{1}, nil); err == nil {
		t.Fatal("arity mismatch should fail")
	}
	if _, err := New(fd, []int{0}, [][]int{{1}, {1}}, []float64{1, 2}, nil); err == nil {
		t.Fatal("duplicate tuple without combiner should fail")
	}
}

func TestNewDropsZerosAndCombines(t *testing.T) {
	f, err := New(fd, []int{0}, [][]int{{0}, {1}, {1}, {2}}, []float64{0, 2, 3, -1},
		func(a, b float64) float64 { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 2 {
		t.Fatalf("size = %d, want 2 (zero dropped, duplicates combined)", f.Size())
	}
	if v, ok := f.Value([]int{1}); !ok || v != 5 {
		t.Fatalf("f(1) = %v, %v", v, ok)
	}
	if _, ok := f.Value([]int{0}); ok {
		t.Fatal("explicit zero should have been dropped")
	}
}

func TestCombineToZeroDropsRow(t *testing.T) {
	f, err := New(fd, []int{0}, [][]int{{1}, {1}}, []float64{2, -2},
		func(a, b float64) float64 { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 0 {
		t.Fatalf("size = %d, want 0 (values cancelled)", f.Size())
	}
}

func TestFromFunc(t *testing.T) {
	domSizes := []int{2, 3}
	// ψ(x0, x1) = x0 * x1 over 2×3.
	f := FromFunc(fd, []int{0, 1}, domSizes, func(t []int) float64 {
		return float64(t[0] * t[1])
	})
	if f.Size() != 2 { // (1,1)->1 and (1,2)->2
		t.Fatalf("size = %d, want 2", f.Size())
	}
	if v, _ := f.Value([]int{1, 2}); v != 2 {
		t.Fatalf("f(1,2) = %v", v)
	}
}

func TestAtAndValueOrZero(t *testing.T) {
	f := mk(t, []int{1, 3}, map[string]float64{"01": 5, "10": 7})
	assignment := []int{9, 0, 9, 1} // x1=0, x3=1
	if got := f.At(fd, assignment); got != 5 {
		t.Fatalf("At = %v, want 5", got)
	}
	if got := f.ValueOrZero(fd, []int{1, 1}); got != 0 {
		t.Fatalf("missing tuple should be 0, got %v", got)
	}
}

func TestScalar(t *testing.T) {
	s := Scalar(fd, 4.0)
	if s.Size() != 1 || s.Arity() != 0 {
		t.Fatal("scalar malformed")
	}
	z := Scalar(fd, 0.0)
	if z.Size() != 0 {
		t.Fatal("zero scalar should be an empty factor")
	}
}

func TestIndicatorProjection(t *testing.T) {
	// ψ over {0,1}: rows (0,0)→2, (0,1)→3, (1,0)→4.
	f := mk(t, []int{0, 1}, map[string]float64{"00": 2, "01": 3, "10": 4})
	p := f.IndicatorProjection(fd, []int{0, 7})
	if !reflect.DeepEqual(p.Vars, []int{0}) {
		t.Fatalf("projection vars = %v", p.Vars)
	}
	if p.Size() != 2 {
		t.Fatalf("projection size = %d, want 2", p.Size())
	}
	for _, v := range p.Values {
		if v != 1 {
			t.Fatalf("indicator value %v, want 1", v)
		}
	}
}

func TestProductMarginalize(t *testing.T) {
	// Dom(x1) = 2.  Group x0=0 covers both x1 values (2*3=6);
	// group x0=1 misses x1=1 so it contains a zero: dropped.
	f := mk(t, []int{0, 1}, map[string]float64{"00": 2, "01": 3, "10": 4})
	m := f.ProductMarginalize(fd, 1, 2)
	if !reflect.DeepEqual(m.Vars, []int{0}) {
		t.Fatalf("vars = %v", m.Vars)
	}
	if m.Size() != 1 {
		t.Fatalf("size = %d, want 1", m.Size())
	}
	if v, _ := m.Value([]int{0}); v != 6 {
		t.Fatalf("m(0) = %v, want 6", v)
	}
}

func TestProductMarginalizeToScalar(t *testing.T) {
	f := mk(t, []int{2}, map[string]float64{"0": 2, "1": 5})
	m := f.ProductMarginalize(fd, 2, 2)
	if m.Arity() != 0 || m.Size() != 1 {
		t.Fatalf("expected scalar, got %v", m)
	}
	if v, _ := m.Value([]int{}); v != 10 {
		t.Fatalf("value = %v, want 10", v)
	}
}

func TestMarginalizeSum(t *testing.T) {
	f := mk(t, []int{0, 1}, map[string]float64{"00": 1, "01": 2, "11": 4})
	m := f.Marginalize(fd, semiring.OpFloatSum(), 1)
	if v, _ := m.Value([]int{0}); v != 3 {
		t.Fatalf("m(0) = %v, want 3", v)
	}
	if v, _ := m.Value([]int{1}); v != 4 {
		t.Fatalf("m(1) = %v, want 4", v)
	}
}

func TestMarginalizeMax(t *testing.T) {
	f := mk(t, []int{0, 1}, map[string]float64{"00": 1, "01": 2, "11": 4})
	m := f.Marginalize(fd, semiring.OpFloatMax(), 0)
	if v, _ := m.Value([]int{0}); v != 1 {
		t.Fatalf("m(x1=0) = %v, want 1", v)
	}
	if v, _ := m.Value([]int{1}); v != 4 {
		t.Fatalf("m(x1=1) = %v, want 4", v)
	}
}

func TestPowValuesSkipsIdempotent(t *testing.T) {
	f := mk(t, []int{0}, map[string]float64{"0": 1, "1": 2})
	f.PowValues(fd, 3)
	if v, _ := f.Value([]int{0}); v != 1 {
		t.Fatalf("idempotent 1 should stay 1, got %v", v)
	}
	if v, _ := f.Value([]int{1}); v != 8 {
		t.Fatalf("2^3 = %v, want 8", v)
	}
}

func TestRangeIdempotent(t *testing.T) {
	if !mk(t, []int{0}, map[string]float64{"0": 1}).RangeIdempotent(fd) {
		t.Fatal("all-ones factor is idempotent-ranged")
	}
	if mk(t, []int{0}, map[string]float64{"0": 2}).RangeIdempotent(fd) {
		t.Fatal("2 is not idempotent")
	}
}

func TestCondition(t *testing.T) {
	f := mk(t, []int{0, 1}, map[string]float64{"00": 1, "01": 2, "10": 3})
	c := f.Condition(map[int]int{0: 0, 5: 3})
	if c.Size() != 2 {
		t.Fatalf("size = %d, want 2", c.Size())
	}
	if _, ok := c.Value([]int{1, 0}); ok {
		t.Fatal("row with x0=1 should be gone")
	}
}

func TestEqual(t *testing.T) {
	a := mk(t, []int{0, 1}, map[string]float64{"00": 1, "01": 2})
	b := mk(t, []int{0, 1}, map[string]float64{"01": 2, "00": 1})
	if !a.Equal(fd, b) {
		t.Fatal("same function should be Equal")
	}
	c := mk(t, []int{0, 1}, map[string]float64{"00": 1, "01": 3})
	if a.Equal(fd, c) {
		t.Fatal("different values should differ")
	}
	d := mk(t, []int{0, 2}, map[string]float64{"00": 1, "01": 2})
	if a.Equal(fd, d) {
		t.Fatal("different vars should differ")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := mk(t, []int{0}, map[string]float64{"0": 1})
	c := a.Clone()
	c.Values[0] = 9
	c.rows[0] = 1
	if v, _ := a.Value([]int{0}); v != 1 {
		t.Fatal("clone aliases original")
	}
}

// Property: Marginalize with sum agrees with brute-force summation over the
// full box, for random sparse factors.
func TestQuickMarginalizeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		d0, d1 := 1+rng.Intn(4), 1+rng.Intn(4)
		var tuples [][]int
		var values []float64
		for x0 := 0; x0 < d0; x0++ {
			for x1 := 0; x1 < d1; x1++ {
				if rng.Intn(2) == 0 {
					tuples = append(tuples, []int{x0, x1})
					values = append(values, float64(1+rng.Intn(5)))
				}
			}
		}
		f, err := New(fd, []int{0, 1}, tuples, values, nil)
		if err != nil {
			t.Fatal(err)
		}
		m := f.Marginalize(fd, semiring.OpFloatSum(), 1)
		for x0 := 0; x0 < d0; x0++ {
			want := 0.0
			for x1 := 0; x1 < d1; x1++ {
				want += f.ValueOrZero(fd, []int{x0, x1})
			}
			if got := m.ValueOrZero(fd, []int{x0}); got != want {
				t.Fatalf("trial %d: marginal(%d) = %v, want %v", trial, x0, got, want)
			}
		}
		// Product marginalization against brute force over the full domain.
		p := f.ProductMarginalize(fd, 1, d1)
		for x0 := 0; x0 < d0; x0++ {
			want := 1.0
			for x1 := 0; x1 < d1; x1++ {
				want *= f.ValueOrZero(fd, []int{x0, x1})
			}
			if got := p.ValueOrZero(fd, []int{x0}); got != want {
				t.Fatalf("trial %d: product-marginal(%d) = %v, want %v", trial, x0, got, want)
			}
		}
	}
}

func TestRowsSortedAfterNew(t *testing.T) {
	f := mk(t, []int{0, 1}, map[string]float64{"10": 1, "00": 2, "01": 3})
	for i := 1; i < f.Size(); i++ {
		if compareRows(f.Row(i-1), f.Row(i)) >= 0 {
			t.Fatalf("rows not sorted: %v then %v", f.Row(i-1), f.Row(i))
		}
	}
}

func TestRename(t *testing.T) {
	f := mk(t, []int{0, 2}, map[string]float64{"01": 5, "10": 7})
	// Map 0→3, 2→1: columns must swap so Vars stays sorted.
	mapping := []int{3, 9, 1}
	g := f.Rename(mapping)
	if !reflect.DeepEqual(g.Vars, []int{1, 3}) {
		t.Fatalf("renamed vars = %v", g.Vars)
	}
	// f(x0=0, x2=1) = 5 becomes g(x1=1, x3=0) = 5.
	if v, _ := g.Value([]int{1, 0}); v != 5 {
		t.Fatalf("g(1,0) = %v, want 5", v)
	}
	if v, _ := g.Value([]int{0, 1}); v != 7 {
		t.Fatalf("g(0,1) = %v, want 7", v)
	}
}

func TestRenameCollisionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("colliding rename should panic")
		}
	}()
	f := mk(t, []int{0, 1}, map[string]float64{"00": 1})
	f.Rename([]int{2, 2})
}
