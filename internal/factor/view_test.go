package factor

import (
	"strings"
	"testing"

	"github.com/faqdb/faq/internal/semiring"
)

func TestNewViewAdoptsCanonicalColumns(t *testing.T) {
	d := semiring.Float()
	rows := []int32{0, 1, 2, 0, 2, 5}
	values := []float64{1.5, 2, 3}
	f, err := NewView(d, []int{0, 1}, rows, values)
	if err != nil {
		t.Fatalf("NewView: %v", err)
	}
	// Zero copy: the factor must alias the caller's slices, not copies.
	if &f.Values[0] != &values[0] || &f.rows[0] != &rows[0] {
		t.Fatal("NewView copied its columns")
	}
	if f.Size() != 3 {
		t.Fatalf("NumRows = %d, want 3", f.Size())
	}
	got := f.Tuples()
	want := [][]int{{0, 1}, {2, 0}, {2, 5}}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("Tuples = %v, want %v", got, want)
			}
		}
	}
}

func TestNewViewEmpty(t *testing.T) {
	f, err := NewView(semiring.Float(), []int{0, 1}, nil, nil)
	if err != nil {
		t.Fatalf("NewView empty: %v", err)
	}
	if f.Size() != 0 {
		t.Fatalf("NumRows = %d, want 0", f.Size())
	}
}

func TestNewViewRejectsInvalid(t *testing.T) {
	d := semiring.Float()
	cases := []struct {
		name   string
		vars   []int
		rows   []int32
		values []float64
		errSub string
	}{
		{"unsorted rows", []int{0, 1}, []int32{2, 0, 0, 1}, []float64{1, 2}, "lexicographic"},
		{"duplicate rows", []int{0, 1}, []int32{0, 1, 0, 1}, []float64{1, 2}, "lexicographic"},
		{"zero value", []int{0, 1}, []int32{0, 1}, []float64{0}, "domain zero"},
		{"ragged block", []int{0, 1}, []int32{0, 1, 2}, []float64{1}, "cells"},
		{"unsorted vars", []int{1, 0}, []int32{0, 1}, []float64{1}, "sorted"},
		{"duplicate vars", []int{0, 0}, []int32{0, 1}, []float64{1}, "duplicate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewView(d, tc.vars, tc.rows, tc.values)
			if err == nil {
				t.Fatal("NewView accepted invalid input")
			}
			if !strings.Contains(err.Error(), tc.errSub) {
				t.Fatalf("err = %v, want mention of %q", err, tc.errSub)
			}
		})
	}
}

// TestNewViewEqualsNewRows checks the view constructor against the heap
// constructor on identical canonical data: same tuples, same values.
func TestNewViewEqualsNewRows(t *testing.T) {
	d := semiring.Int()
	rows := []int32{0, 3, 1, 1, 4, 0}
	values := []int64{7, -1, 9}
	view, err := NewView(d, []int{2, 5}, rows, values)
	if err != nil {
		t.Fatalf("NewView: %v", err)
	}
	heap, err := NewRows(d, []int{2, 5}, append([]int32(nil), rows...), append([]int64(nil), values...), nil)
	if err != nil {
		t.Fatalf("NewRows: %v", err)
	}
	if !view.Equal(d, heap) {
		t.Fatal("view and heap factors differ on identical data")
	}
}
